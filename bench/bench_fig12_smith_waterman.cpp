//===- bench_fig12_smith_waterman.cpp - Figure 12 ------------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 12: Smith-Waterman database search against query sequence size.
///
/// The figure is reproduced in two parts (see EXPERIMENTS.md):
///  * 12a — the query-size sweep on a moderate database: ParRec's
///    synthesized intra-task kernel vs CUDASW++-style intra-task vs the
///    serial ssearch-style CPU scan. Expected shape: ParRec tracks the
///    hand-coded intra kernel closely; both beat the CPU comfortably.
///  * 12b — the kernel comparison at database scale (hand-coded kernels
///    only; the simulator's interpretive evaluator makes ParRec too slow
///    in wall-clock terms at this size): intra vs inter vs hybrid vs
///    CPU over growing databases. Expected shape: inter-task degrades on
///    long subjects (DP rows spill to global memory), intra-task pays
///    per-diagonal barriers, and the hybrid dispatch is fastest once the
///    database fills the device.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace parrec;
using namespace parrecbench;

namespace {

baselines::SwParams swParams() {
  baselines::SwParams Params;
  Params.Matrix = &bio::SubstitutionMatrix::blosum62();
  Params.GapPenalty = 4;
  return Params;
}

bio::Sequence queryOfLength(int64_t Length) {
  return bio::randomSequence(bio::Alphabet::protein(), Length,
                             /*Seed=*/0xCAFE + Length, "query");
}

//===----------------------------------------------------------------------===//
// 12a: query-size sweep
//===----------------------------------------------------------------------===//

constexpr unsigned SweepDatabaseSize = 150;
constexpr const char *Fig12a =
    "Figure 12a: Smith-Waterman vs query size (150-seq database)";

const bio::SequenceDatabase &sweepDatabase() {
  static const bio::SequenceDatabase Db =
      proteinDatabase(SweepDatabaseSize);
  return Db;
}

void BM_Fig12a_ParRec(benchmark::State &State) {
  gpu::Device Device;
  bio::Sequence Query = queryOfLength(State.range(0));
  double Seconds = 0.0;
  for (auto _ : State)
    Seconds = parrecSwSearch(Query, sweepDatabase(), Device);
  State.counters["modelled_s"] = Seconds;
  FigureTable::instance().record(Fig12a, "parrec", State.range(0),
                                 Seconds);
}

void BM_Fig12a_CudaSwIntra(benchmark::State &State) {
  gpu::Device Device;
  bio::Sequence Query = queryOfLength(State.range(0));
  double Seconds = 0.0;
  for (auto _ : State)
    Seconds = baselines::searchCudaSwIntra(Query, sweepDatabase(),
                                           swParams(), Device)
                  .Seconds;
  State.counters["modelled_s"] = Seconds;
  FigureTable::instance().record(Fig12a, "cudasw_intra", State.range(0),
                                 Seconds);
}

void BM_Fig12a_SsearchCpu(benchmark::State &State) {
  gpu::CostModel Model;
  bio::Sequence Query = queryOfLength(State.range(0));
  double Seconds = 0.0;
  for (auto _ : State)
    Seconds = baselines::searchSmithWatermanCpu(Query, sweepDatabase(),
                                                swParams(), Model)
                  .Seconds;
  State.counters["modelled_s"] = Seconds;
  FigureTable::instance().record(Fig12a, "ssearch_cpu", State.range(0),
                                 Seconds);
}

void querySizes(benchmark::internal::Benchmark *B) {
  for (int64_t Length : {100, 200, 300, 400, 600, 800})
    B->Arg(Length);
  B->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Fig12a_ParRec)->Apply(querySizes);
BENCHMARK(BM_Fig12a_CudaSwIntra)->Apply(querySizes);
BENCHMARK(BM_Fig12a_SsearchCpu)->Apply(querySizes);

//===----------------------------------------------------------------------===//
// 12b: kernel comparison at database scale
//===----------------------------------------------------------------------===//

constexpr int64_t ScaleQueryLength = 400;
constexpr const char *Fig12b =
    "Figure 12b: kernel comparison vs database size (query 400)";

const bio::SequenceDatabase &scaleDatabase(unsigned Count) {
  static const bio::SequenceDatabase Full = proteinDatabase(20000);
  static std::map<unsigned, bio::SequenceDatabase> Cache;
  auto It = Cache.find(Count);
  if (It == Cache.end())
    It = Cache
             .emplace(Count, bio::SequenceDatabase(Full.begin(),
                                                   Full.begin() + Count))
             .first;
  return It->second;
}

template <typename SearchFn>
void runScale(benchmark::State &State, SearchFn &&Search,
              const char *Series) {
  bio::Sequence Query = queryOfLength(ScaleQueryLength);
  const bio::SequenceDatabase &Db =
      scaleDatabase(static_cast<unsigned>(State.range(0)));
  double Seconds = 0.0;
  for (auto _ : State)
    Seconds = Search(Query, Db);
  State.counters["modelled_s"] = Seconds;
  FigureTable::instance().record(Fig12b, Series, State.range(0), Seconds);
}

void BM_Fig12b_Intra(benchmark::State &State) {
  gpu::Device Device;
  runScale(State,
           [&](const bio::Sequence &Q, const bio::SequenceDatabase &Db) {
             return baselines::searchCudaSwIntra(Q, Db, swParams(),
                                                 Device)
                 .Seconds;
           },
           "cudasw_intra");
}

void BM_Fig12b_Inter(benchmark::State &State) {
  gpu::Device Device;
  runScale(State,
           [&](const bio::Sequence &Q, const bio::SequenceDatabase &Db) {
             return baselines::searchCudaSwInter(Q, Db, swParams(),
                                                 Device)
                 .Seconds;
           },
           "cudasw_inter");
}

void BM_Fig12b_Hybrid(benchmark::State &State) {
  gpu::Device Device;
  runScale(State,
           [&](const bio::Sequence &Q, const bio::SequenceDatabase &Db) {
             return baselines::searchCudaSwHybrid(Q, Db, swParams(),
                                                  Device)
                 .Seconds;
           },
           "cudasw_hybrid");
}

void BM_Fig12b_SsearchCpu(benchmark::State &State) {
  gpu::CostModel Model;
  runScale(State,
           [&](const bio::Sequence &Q, const bio::SequenceDatabase &Db) {
             return baselines::searchSmithWatermanCpu(Q, Db, swParams(),
                                                      Model)
                 .Seconds;
           },
           "ssearch_cpu");
}

void databaseSizes(benchmark::internal::Benchmark *B) {
  for (int64_t Count : {500, 2000, 8000, 20000})
    B->Arg(Count);
  B->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Fig12b_Intra)->Apply(databaseSizes);
BENCHMARK(BM_Fig12b_Inter)->Apply(databaseSizes);
BENCHMARK(BM_Fig12b_Hybrid)->Apply(databaseSizes);
BENCHMARK(BM_Fig12b_SsearchCpu)->Apply(databaseSizes);

} // namespace

int main(int Argc, char **Argv) { return benchMain(Argc, Argv); }
