//===- bench_fig13_genefinder.cpp - Figure 13 ----------------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 13: gene finding with the HMM extension — forward-algorithm
/// scoring of DNA sequences against a gene model, execution time vs
/// database size. Series: ParRec's synthesized GPU code vs HMMoC-style
/// single-threaded CPU code.
///
/// Expected shape (paper): a large GPU win growing with database size
/// ("about x60" at full utilisation).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace parrec;
using namespace parrecbench;

namespace {

constexpr int64_t SequenceLength = 300;

const bio::Hmm &geneModel() {
  static const bio::Hmm Model = bio::makeGeneFinderModel();
  return Model;
}

const bio::SequenceDatabase &databaseOfSize(unsigned Count) {
  // Build the largest database once; prefixes give the smaller sweeps.
  static const bio::SequenceDatabase Full =
      geneDatabase(geneModel(), 12000, SequenceLength);
  static std::map<unsigned, bio::SequenceDatabase> Cache;
  auto It = Cache.find(Count);
  if (It == Cache.end())
    It = Cache
             .emplace(Count, bio::SequenceDatabase(Full.begin(),
                                                   Full.begin() + Count))
             .first;
  return It->second;
}

void BM_Fig13_ParRec(benchmark::State &State) {
  gpu::Device Device;
  const bio::SequenceDatabase &Db =
      databaseOfSize(static_cast<unsigned>(State.range(0)));
  double Seconds = 0.0;
  for (auto _ : State)
    Seconds = parrecForwardSearch(geneModel(), Db, Device);
  State.counters["modelled_s"] = Seconds;
  FigureTable::instance().record(
      "Figure 13: gene finding vs database size", "parrec",
      State.range(0), Seconds);
}

void BM_Fig13_HmmocCpu(benchmark::State &State) {
  gpu::CostModel Model;
  const bio::SequenceDatabase &Db =
      databaseOfSize(static_cast<unsigned>(State.range(0)));
  double Seconds = 0.0;
  for (auto _ : State)
    Seconds = baselines::searchHmmocCpu(geneModel(), Db, Model).Seconds;
  State.counters["modelled_s"] = Seconds;
  FigureTable::instance().record(
      "Figure 13: gene finding vs database size", "hmmoc_cpu",
      State.range(0), Seconds);
}

void databaseSizes(benchmark::internal::Benchmark *B) {
  // Small sizes underfill the device's multiprocessors, so the speed-up
  // grows with database size before flattening out — the paper's "when
  // we are using the GPU to its full extent" observation.
  for (int64_t Count : {15, 60, 250, 1000, 3000, 12000})
    B->Arg(Count);
  B->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Fig13_ParRec)->Apply(databaseSizes);
BENCHMARK(BM_Fig13_HmmocCpu)->Apply(databaseSizes);

} // namespace

int main(int Argc, char **Argv) { return benchMain(Argc, Argv); }
