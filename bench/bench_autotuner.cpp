//===- bench_autotuner.cpp - Schedule autotuner vs default planning ----------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation gate for the cost-model schedule autotuner: on the three
/// case-study recursions (Smith-Waterman, gene-finder Viterbi, profile
/// HMM forward) the autotuned plan's modelled busiest-device cycles must
/// be less than or equal to the default plan's, with bit-identical
/// results — the tuner may only ever change how the answer is reached,
/// never the answer. Also asserts that a second same-shaped compile hits
/// the plan cache and evaluates zero candidates (the
/// compile.autotune.candidates metric stays flat). Writes
/// BENCH_autotuner.json.
///
/// Usage: bench_autotuner [--smoke] [--out=PATH]
///   --smoke     small problem sizes (CI gate)
///   --out=PATH  JSON output path (default BENCH_autotuner.json)
///
/// Exits non-zero if the tuned plan is slower, diverges, or re-searches
/// on a cache hit.
///
//===----------------------------------------------------------------------===//

#include "bio/Fasta.h"
#include "bio/HmmZoo.h"
#include "gpu/Device.h"
#include "obs/Metrics.h"
#include "runtime/CompiledRecurrence.h"
#include "support/Random.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace parrec;
using runtime::CompiledRecurrence;
using runtime::RunOptions;
using runtime::RunResult;
using codegen::ArgValue;

namespace {

const char *SmithWatermanSource =
    "int sw(matrix[protein] m, seq[protein] a, index[a] i,\n"
    "       seq[protein] b, index[b] j) =\n"
    "  if i == 0 then 0\n"
    "  else if j == 0 then 0\n"
    "  else 0 max (sw(i-1, j-1) + m[a[i-1], b[j-1]])\n"
    "       max (sw(i-1, j) - 4) max (sw(i, j-1) - 4)\n";

const char *ViterbiSource =
    "prob viterbi(hmm h, state[h] s, seq[dna] x, index[x] i) =\n"
    "  if i == 0 then\n"
    "    if s.isstart then 1.0 else 0.0\n"
    "  else\n"
    "    (if s.isend then 1.0 else s.emission[x[i-1]]) *\n"
    "    max(t in s.transitionsto : t.prob * viterbi(t.start, i - 1))\n";

const char *ForwardSource =
    "prob forward(hmm h, state[h] s, seq[protein] x, index[x] i) =\n"
    "  if i == 0 then\n"
    "    if s.isstart then 1.0 else 0.0\n"
    "  else\n"
    "    (if s.isend then 1.0 else s.emission[x[i-1]]) *\n"
    "    sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))\n";

struct CaseResult {
  std::string Name;
  uint64_t Cells = 0;
  uint64_t DefaultCycles = 0;
  uint64_t TunedCycles = 0;
  uint64_t CandidatesEvaluated = 0;
  uint64_t CandidatesOnCacheHit = 0;
  double Ratio = 0.0;
  bool ResultsMatch = false;
};

CompiledRecurrence compileOrDie(const char *Source) {
  DiagnosticEngine Diags;
  auto Compiled = CompiledRecurrence::compile(Source, Diags);
  if (!Compiled) {
    std::fprintf(stderr, "bench compile failure:\n%s",
                 Diags.str().c_str());
    std::exit(2);
  }
  return std::move(*Compiled);
}

std::string padSample(const bio::Hmm &Model, uint64_t Seed,
                      size_t Length) {
  SplitMix64 Rng(Seed);
  std::string S = Model.sample(Rng.next(), Length);
  while (S.size() < Length)
    S += Model.alphabet().charAt(
        static_cast<unsigned>(Rng.nextBelow(Model.alphabet().size())));
  S.resize(Length);
  return S;
}

CaseResult runCase(const std::string &Name, const CompiledRecurrence &Fn,
                   const std::vector<ArgValue> &Args) {
  gpu::Device Dev;
  DiagnosticEngine Diags;
  RunOptions Default;
  RunOptions Tuned;
  Tuned.Autotune = true;

  auto fail = [&](const char *What) {
    std::fprintf(stderr, "%s: %s:\n%s", Name.c_str(), What,
                 Diags.str().c_str());
    std::exit(2);
  };

  std::optional<RunResult> Base = Fn.runGpu(Args, Dev, Diags, Default);
  if (!Base)
    fail("default run failed");

  obs::MetricsSnapshot S0 = obs::MetricsRegistry::global().snapshot();
  std::optional<RunResult> Tune = Fn.runGpu(Args, Dev, Diags, Tuned);
  if (!Tune)
    fail("autotuned run failed");
  obs::MetricsSnapshot S1 = obs::MetricsRegistry::global().snapshot();

  // Same shape again: the tuned plan is cached, the search must not
  // re-run.
  std::optional<RunResult> Again = Fn.runGpu(Args, Dev, Diags, Tuned);
  if (!Again)
    fail("cached autotuned run failed");
  obs::MetricsSnapshot S2 = obs::MetricsRegistry::global().snapshot();

  CaseResult C;
  C.Name = Name;
  C.Cells = Base->Cells;
  C.DefaultCycles = Base->Cycles;
  C.TunedCycles = Tune->Cycles;
  C.CandidatesEvaluated = S1.counter("compile.autotune.candidates") -
                          S0.counter("compile.autotune.candidates");
  C.CandidatesOnCacheHit = S2.counter("compile.autotune.candidates") -
                           S1.counter("compile.autotune.candidates");
  C.Ratio = C.DefaultCycles
                ? static_cast<double>(C.TunedCycles) /
                      static_cast<double>(C.DefaultCycles)
                : 0.0;
  C.ResultsMatch = Base->RootValue == Tune->RootValue &&
                   Base->TableMax == Tune->TableMax &&
                   Base->Cells == Tune->Cells &&
                   Tune->Cycles == Again->Cycles &&
                   Tune->RootValue == Again->RootValue;
  return C;
}

void writeJson(const std::string &Path,
               const std::vector<CaseResult> &Cases, bool Smoke) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    std::exit(2);
  }
  std::fprintf(F, "{\n  \"benchmark\": \"autotuner_ablation\",\n");
  std::fprintf(F, "  \"mode\": \"%s\",\n", Smoke ? "smoke" : "full");
  std::fprintf(F, "  \"cases\": [\n");
  for (size_t I = 0; I != Cases.size(); ++I) {
    const CaseResult &C = Cases[I];
    std::fprintf(F,
                 "    {\n"
                 "      \"name\": \"%s\",\n"
                 "      \"cells\": %llu,\n"
                 "      \"default_cycles\": %llu,\n"
                 "      \"tuned_cycles\": %llu,\n"
                 "      \"tuned_over_default\": %.6f,\n"
                 "      \"candidates_evaluated\": %llu,\n"
                 "      \"candidates_on_cache_hit\": %llu,\n"
                 "      \"results_match\": %s\n"
                 "    }%s\n",
                 C.Name.c_str(), static_cast<unsigned long long>(C.Cells),
                 static_cast<unsigned long long>(C.DefaultCycles),
                 static_cast<unsigned long long>(C.TunedCycles), C.Ratio,
                 static_cast<unsigned long long>(C.CandidatesEvaluated),
                 static_cast<unsigned long long>(C.CandidatesOnCacheHit),
                 C.ResultsMatch ? "true" : "false",
                 I + 1 == Cases.size() ? "" : ",");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  std::string OutPath = "BENCH_autotuner.json";
  for (int I = 1; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Smoke = true;
    else if (std::strncmp(Argv[I], "--out=", 6) == 0)
      OutPath = Argv[I] + 6;
    else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=PATH]\n", Argv[0]);
      return 2;
    }
  }

  const int64_t SwLen = Smoke ? 150 : 700;
  const size_t ViterbiLen = Smoke ? 400 : 4000;
  const size_t ForwardLen = Smoke ? 120 : 500;
  const unsigned ProfilePositions = Smoke ? 10 : 30;

  std::vector<CaseResult> Cases;

  // Case study 1 (Section 6.1): Smith-Waterman, protein x protein.
  {
    CompiledRecurrence Fn = compileOrDie(SmithWatermanSource);
    const bio::SubstitutionMatrix &M = bio::SubstitutionMatrix::blosum62();
    bio::Sequence A = bio::randomSequence(bio::Alphabet::protein(), SwLen,
                                          /*Seed=*/31, "a");
    bio::Sequence B = bio::randomSequence(bio::Alphabet::protein(), SwLen,
                                          /*Seed=*/32, "b");
    Cases.push_back(runCase("smith_waterman", Fn,
                            {ArgValue::ofMatrix(&M), ArgValue::ofSeq(&A),
                             ArgValue(), ArgValue::ofSeq(&B), ArgValue()}));
  }

  // Case study 2 (Section 6.2): Viterbi over the gene-finder model.
  {
    CompiledRecurrence Fn = compileOrDie(ViterbiSource);
    bio::Hmm Genes = bio::makeGeneFinderModel();
    bio::Sequence X("x", padSample(Genes, /*Seed=*/0x6E43, ViterbiLen));
    Cases.push_back(runCase("viterbi_genefinder", Fn,
                            {ArgValue::ofHmm(&Genes), ArgValue(),
                             ArgValue::ofSeq(&X), ArgValue()}));
  }

  // Case study 3 (Section 6.3): forward over a profile HMM.
  {
    CompiledRecurrence Fn = compileOrDie(ForwardSource);
    DiagnosticEngine Diags;
    bio::Hmm Raw = bio::makeProfileHmm(ProfilePositions,
                                       bio::Alphabet::protein(),
                                       /*Seed=*/9);
    auto Profile = bio::eliminateSilentStates(Raw, Diags);
    if (!Profile) {
      std::fprintf(stderr, "profile build failure:\n%s",
                   Diags.str().c_str());
      return 2;
    }
    bio::Sequence X = bio::randomSequence(bio::Alphabet::protein(),
                                          static_cast<int64_t>(ForwardLen),
                                          /*Seed=*/41, "x");
    Cases.push_back(runCase("forward_profile", Fn,
                            {ArgValue::ofHmm(&*Profile), ArgValue(),
                             ArgValue::ofSeq(&X), ArgValue()}));
  }

  std::printf("== Autotuner ablation: tuned vs default plan (%s) ==\n",
              Smoke ? "smoke" : "full");
  std::printf("%20s %12s %14s %14s %8s %6s %6s\n", "case", "cells",
              "default cyc", "tuned cyc", "ratio", "cand", "match");
  bool Ok = true;
  for (const CaseResult &C : Cases) {
    std::printf("%20s %12llu %14llu %14llu %7.3fx %6llu %6s\n",
                C.Name.c_str(), static_cast<unsigned long long>(C.Cells),
                static_cast<unsigned long long>(C.DefaultCycles),
                static_cast<unsigned long long>(C.TunedCycles), C.Ratio,
                static_cast<unsigned long long>(C.CandidatesEvaluated),
                C.ResultsMatch ? "yes" : "NO");
    Ok &= C.ResultsMatch;
    if (C.TunedCycles > C.DefaultCycles) {
      std::fprintf(stderr,
                   "FAIL: tuned plan slower than default on %s "
                   "(%llu > %llu cycles)\n",
                   C.Name.c_str(),
                   static_cast<unsigned long long>(C.TunedCycles),
                   static_cast<unsigned long long>(C.DefaultCycles));
      Ok = false;
    }
    if (C.CandidatesEvaluated == 0) {
      std::fprintf(stderr, "FAIL: autotuner evaluated no candidates on %s\n",
                   C.Name.c_str());
      Ok = false;
    }
    if (C.CandidatesOnCacheHit != 0) {
      std::fprintf(stderr,
                   "FAIL: plan-cache hit re-ran the search on %s "
                   "(%llu candidates)\n",
                   C.Name.c_str(),
                   static_cast<unsigned long long>(C.CandidatesOnCacheHit));
      Ok = false;
    }
  }
  writeJson(OutPath, Cases, Smoke);
  std::printf("wrote %s\n", OutPath.c_str());
  return Ok ? 0 : 1;
}
