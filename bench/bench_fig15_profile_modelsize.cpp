//===- bench_fig15_profile_modelsize.cpp - Figure 15 ---------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 15: profile-HMM forward on a fixed database, execution time vs
/// model size (number of positions). The paper runs 13,355 sequences;
/// the simulator's evaluator is the wall-clock bottleneck here, so we
/// keep the paper's *shape* with a 2,000-sequence database (documented
/// in EXPERIMENTS.md). Series as in Figure 14.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace parrec;
using namespace parrecbench;

namespace {

constexpr unsigned DatabaseSize = 2000;
constexpr int64_t ReadLength = 100;

const bio::SequenceDatabase &database() {
  static const bio::SequenceDatabase Db =
      proteinReads(DatabaseSize, ReadLength);
  return Db;
}

const bio::Hmm &profileModelOfSize(unsigned Positions) {
  static std::map<unsigned, bio::Hmm> Cache;
  auto It = Cache.find(Positions);
  if (It == Cache.end()) {
    DiagnosticEngine Diags;
    bio::Hmm Raw = bio::makeProfileHmm(
        Positions, bio::Alphabet::protein(), 0xABCD + Positions);
    auto Emitting = bio::eliminateSilentStates(Raw, Diags);
    if (!Emitting) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      std::abort();
    }
    It = Cache.emplace(Positions, std::move(*Emitting)).first;
  }
  return It->second;
}

constexpr const char *FigureName =
    "Figure 15: profile forward vs model size";

void BM_Fig15_ParRec(benchmark::State &State) {
  gpu::Device Device;
  const bio::Hmm &Model =
      profileModelOfSize(static_cast<unsigned>(State.range(0)));
  double Seconds = 0.0;
  for (auto _ : State)
    Seconds = parrecForwardSearch(Model, database(), Device);
  State.counters["modelled_s"] = Seconds;
  FigureTable::instance().record(FigureName, "parrec", State.range(0),
                                 Seconds);
}

void BM_Fig15_HmmocCpu(benchmark::State &State) {
  gpu::CostModel CostModel;
  const bio::Hmm &Model =
      profileModelOfSize(static_cast<unsigned>(State.range(0)));
  double Seconds = 0.0;
  for (auto _ : State)
    Seconds =
        baselines::searchHmmocCpu(Model, database(), CostModel).Seconds;
  State.counters["modelled_s"] = Seconds;
  FigureTable::instance().record(FigureName, "hmmoc_cpu", State.range(0),
                                 Seconds);
}

void BM_Fig15_Hmmer2Cpu(benchmark::State &State) {
  gpu::CostModel CostModel;
  const bio::Hmm &Model =
      profileModelOfSize(static_cast<unsigned>(State.range(0)));
  double Seconds = 0.0;
  for (auto _ : State)
    Seconds =
        baselines::searchHmmer2Cpu(Model, database(), CostModel).Seconds;
  State.counters["modelled_s"] = Seconds;
  FigureTable::instance().record(FigureName, "hmmer2_cpu",
                                 State.range(0), Seconds);
}

void BM_Fig15_GpuHmmer(benchmark::State &State) {
  gpu::Device Device;
  const bio::Hmm &Model =
      profileModelOfSize(static_cast<unsigned>(State.range(0)));
  double Seconds = 0.0;
  for (auto _ : State)
    Seconds = baselines::searchGpuHmmer(Model, database(), Device).Seconds;
  State.counters["modelled_s"] = Seconds;
  FigureTable::instance().record(FigureName, "gpu_hmmer",
                                 State.range(0), Seconds);
}

void BM_Fig15_Hmmer3Cpu(benchmark::State &State) {
  gpu::CostModel CostModel;
  const bio::Hmm &Model =
      profileModelOfSize(static_cast<unsigned>(State.range(0)));
  double Seconds = 0.0;
  for (auto _ : State)
    Seconds =
        baselines::searchHmmer3Cpu(Model, database(), CostModel).Seconds;
  State.counters["modelled_s"] = Seconds;
  FigureTable::instance().record(FigureName, "hmmer3_cpu",
                                 State.range(0), Seconds);
}

void modelSizes(benchmark::internal::Benchmark *B) {
  for (int64_t Positions : {10, 20, 40, 60, 80})
    B->Arg(Positions);
  B->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Fig15_ParRec)->Apply(modelSizes);
BENCHMARK(BM_Fig15_HmmocCpu)->Apply(modelSizes);
BENCHMARK(BM_Fig15_Hmmer2Cpu)->Apply(modelSizes);
BENCHMARK(BM_Fig15_GpuHmmer)->Apply(modelSizes);
BENCHMARK(BM_Fig15_Hmmer3Cpu)->Apply(modelSizes);

} // namespace

int main(int Argc, char **Argv) { return benchMain(Argc, Argv); }
