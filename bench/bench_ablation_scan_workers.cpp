//===- bench_ablation_scan_workers.cpp - Wavefront host parallelism ----------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation A5: the wavefront-parallel host scan. One simulated block's
/// threads run on real worker threads (RunOptions::ScanWorkers), with
/// results, cost counters and modelled cycles bit-identical to serial by
/// construction. What changes — and what this bench measures — is *host*
/// wall-clock for a single large Smith-Waterman problem at 1, 2, 4 and 8
/// scan workers.
///
/// Usage: bench_ablation_scan_workers [--smoke] [--out=PATH]
///                                    [--metrics-out=PATH]
///   --smoke            small problem + fewer repetitions (CI gate)
///   --out=PATH         JSON output path (default BENCH_scan_workers.json)
///   --metrics-out=PATH dump the metrics registry as JSON after the run
///
/// Always exits non-zero if any parallel run diverges from the serial
/// one in any observable. In full mode, additionally fails if the
/// 4-worker speedup is below 2x — but only when the host actually has
/// at least 4 hardware threads; the recorded "hardware_concurrency"
/// field says which regime produced the file.
///
//===----------------------------------------------------------------------===//

#include "bio/Fasta.h"
#include "obs/Metrics.h"
#include "runtime/CompiledRecurrence.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace parrec;
using runtime::CompiledRecurrence;
using runtime::RunOptions;
using runtime::RunResult;
using codegen::ArgValue;

namespace {

const char *SmithWatermanSource =
    "int sw(matrix[protein] m, seq[protein] a, index[a] i,\n"
    "       seq[protein] b, index[b] j) =\n"
    "  if i == 0 then 0\n"
    "  else if j == 0 then 0\n"
    "  else 0 max (sw(i-1, j-1) + m[a[i-1], b[j-1]])\n"
    "       max (sw(i-1, j) - 4) max (sw(i, j-1) - 4)\n";

struct WorkerResult {
  unsigned Workers = 0;
  double Seconds = 0.0;
  double CellsPerSec = 0.0;
  double Speedup = 0.0;
  bool ResultsMatch = false;
};

CompiledRecurrence compileOrDie(const char *Source) {
  DiagnosticEngine Diags;
  auto Compiled = CompiledRecurrence::compile(Source, Diags);
  if (!Compiled) {
    std::fprintf(stderr, "bench compile failure:\n%s", Diags.str().c_str());
    std::exit(2);
  }
  return std::move(*Compiled);
}

/// Best-of-N wall clock for one worker count; Out receives the last run.
double timeScan(const CompiledRecurrence &Fn,
                const std::vector<ArgValue> &Args, unsigned Workers,
                unsigned Reps, RunResult &Out) {
  gpu::Device Dev;
  DiagnosticEngine Diags;
  RunOptions Options;
  Options.ScanWorkers = Workers;
  double Best = 1e300;
  for (unsigned I = 0; I != Reps; ++I) {
    auto T0 = std::chrono::steady_clock::now();
    std::optional<RunResult> R = Fn.runGpu(Args, Dev, Diags, Options);
    auto T1 = std::chrono::steady_clock::now();
    if (!R) {
      std::fprintf(stderr, "bench run failure:\n%s", Diags.str().c_str());
      std::exit(2);
    }
    Out = *R;
    double S = std::chrono::duration<double>(T1 - T0).count();
    if (S < Best)
      Best = S;
  }
  return Best;
}

/// Every observable must match bit-for-bit; divergence is a correctness
/// bug, never noise.
bool identical(const RunResult &A, const RunResult &B) {
  return A.RootValue == B.RootValue && A.TableMax == B.TableMax &&
         A.Cells == B.Cells && A.Partitions == B.Partitions &&
         A.Cost == B.Cost && A.Cycles == B.Cycles && A.Metrics == B.Metrics;
}

void writeJson(const std::string &Path, bool Smoke, unsigned HostThreads,
               int64_t Length, uint64_t Cells,
               const std::vector<WorkerResult> &Results) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    std::exit(2);
  }
  std::fprintf(F, "{\n  \"benchmark\": \"scan_workers_ablation\",\n");
  std::fprintf(F, "  \"mode\": \"%s\",\n", Smoke ? "smoke" : "full");
  std::fprintf(F, "  \"hardware_concurrency\": %u,\n", HostThreads);
  std::fprintf(F, "  \"sequence_length\": %lld,\n",
               static_cast<long long>(Length));
  std::fprintf(F, "  \"cells\": %llu,\n",
               static_cast<unsigned long long>(Cells));
  std::fprintf(F, "  \"workers\": [\n");
  for (size_t I = 0; I != Results.size(); ++I) {
    const WorkerResult &R = Results[I];
    std::fprintf(F,
                 "    {\"workers\": %u, \"seconds\": %.9f, "
                 "\"cells_per_sec\": %.1f, \"speedup\": %.3f, "
                 "\"results_match\": %s}%s\n",
                 R.Workers, R.Seconds, R.CellsPerSec, R.Speedup,
                 R.ResultsMatch ? "true" : "false",
                 I + 1 == Results.size() ? "" : ",");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  std::string OutPath = "BENCH_scan_workers.json";
  std::string MetricsOut;
  for (int I = 1; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Smoke = true;
    else if (std::strncmp(Argv[I], "--out=", 6) == 0)
      OutPath = Argv[I] + 6;
    else if (std::strncmp(Argv[I], "--metrics-out=", 14) == 0)
      MetricsOut = Argv[I] + 14;
    else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out=PATH] [--metrics-out=PATH]\n",
                   Argv[0]);
      return 2;
    }
  }

  const unsigned Reps = Smoke ? 3 : 5;
  const int64_t Length = Smoke ? 200 : 1500;
  const unsigned HostThreads = std::thread::hardware_concurrency();

  CompiledRecurrence Fn = compileOrDie(SmithWatermanSource);
  const bio::SubstitutionMatrix &M = bio::SubstitutionMatrix::blosum62();
  bio::Sequence A =
      bio::randomSequence(bio::Alphabet::protein(), Length, 0xA5, "a");
  bio::Sequence B =
      bio::randomSequence(bio::Alphabet::protein(), Length, 0xB5, "b");
  std::vector<ArgValue> Args = {ArgValue::ofMatrix(&M), ArgValue::ofSeq(&A),
                                ArgValue(), ArgValue::ofSeq(&B),
                                ArgValue()};

  // Warm the plan cache so no configuration pays schedule synthesis.
  {
    gpu::Device Dev;
    DiagnosticEngine Diags;
    RunOptions Warm;
    (void)Fn.runGpu(Args, Dev, Diags, Warm);
  }

  RunResult Serial;
  double SerialSeconds = timeScan(Fn, Args, 1, Reps, Serial);

  std::vector<WorkerResult> Results;
  {
    WorkerResult R;
    R.Workers = 1;
    R.Seconds = SerialSeconds;
    R.CellsPerSec = SerialSeconds > 0.0
                        ? static_cast<double>(Serial.Cells) / SerialSeconds
                        : 0.0;
    R.Speedup = 1.0;
    R.ResultsMatch = true;
    Results.push_back(R);
  }

  bool Diverged = false;
  for (unsigned Workers : {2u, 4u, 8u}) {
    RunResult Out;
    WorkerResult R;
    R.Workers = Workers;
    R.Seconds = timeScan(Fn, Args, Workers, Reps, Out);
    R.CellsPerSec =
        R.Seconds > 0.0 ? static_cast<double>(Out.Cells) / R.Seconds : 0.0;
    R.Speedup = R.Seconds > 0.0 ? SerialSeconds / R.Seconds : 0.0;
    R.ResultsMatch = identical(Serial, Out);
    Diverged |= !R.ResultsMatch;
    Results.push_back(R);
  }

  writeJson(OutPath, Smoke, HostThreads, Length, Serial.Cells, Results);
  if (!MetricsOut.empty()) {
    std::ofstream Out(MetricsOut, std::ios::binary | std::ios::trunc);
    Out << obs::MetricsRegistry::global().snapshot().json() << '\n';
    if (!Out) {
      std::fprintf(stderr, "cannot write metrics to %s\n",
                   MetricsOut.c_str());
      return 2;
    }
  }

  for (const WorkerResult &R : Results)
    std::printf("scan_workers=%u  %.6fs  %.0f cells/s  speedup %.2fx  %s\n",
                R.Workers, R.Seconds, R.CellsPerSec, R.Speedup,
                R.ResultsMatch ? "identical" : "DIVERGED");

  if (Diverged) {
    std::fprintf(stderr,
                 "FAIL: parallel scan diverged from the serial result\n");
    return 1;
  }
  // The speedup gate only binds where the hardware can express it: a
  // 1-core container runs everything serially interleaved.
  if (!Smoke && HostThreads >= 4) {
    double FourWorker = 0.0;
    for (const WorkerResult &R : Results)
      if (R.Workers == 4)
        FourWorker = R.Speedup;
    if (FourWorker < 2.0) {
      std::fprintf(stderr,
                   "FAIL: 4-worker speedup %.2fx below the 2x gate "
                   "(%u hardware threads)\n",
                   FourWorker, HostThreads);
      return 1;
    }
  }
  return 0;
}
