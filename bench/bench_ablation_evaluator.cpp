//===- bench_ablation_evaluator.cpp - Bytecode VM vs AST walker -------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: the three cell evaluators — AST tree-walker, register
/// bytecode VM and native JIT kernel — on the per-cell hot path, across
/// the three case-study recursions (Smith-Waterman, gene-finder Viterbi,
/// profile-HMM forward). Reports host wall-clock and cells/second for
/// all three and writes the results to BENCH_evaluator.json.
///
/// Unlike the figure benches this measures *host* time, not modelled GPU
/// time — the two evaluators produce identical cost-model cycles by
/// construction (see tests/DifferentialTest.cpp); what differs is how
/// fast the simulator itself runs.
///
/// Usage: bench_ablation_evaluator [--smoke] [--out=PATH]
///   --smoke     small problem sizes + fewer repetitions (CI gate)
///   --out=PATH  JSON output path (default BENCH_evaluator.json)
///
/// Exits non-zero if the VM is slower than the AST walker on any case
/// study, or if the JIT is slower than the VM on Smith-Waterman or
/// Viterbi (the loop-dominated cases where native code must win).
///
//===----------------------------------------------------------------------===//

#include "bio/Fasta.h"
#include "bio/HmmZoo.h"
#include "runtime/CompiledRecurrence.h"
#include "support/Random.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace parrec;
using runtime::CompiledRecurrence;
using runtime::RunOptions;
using runtime::RunResult;
using codegen::ArgValue;

namespace {

const char *SmithWatermanSource =
    "int sw(matrix[protein] m, seq[protein] a, index[a] i,\n"
    "       seq[protein] b, index[b] j) =\n"
    "  if i == 0 then 0\n"
    "  else if j == 0 then 0\n"
    "  else 0 max (sw(i-1, j-1) + m[a[i-1], b[j-1]])\n"
    "       max (sw(i-1, j) - 4) max (sw(i, j-1) - 4)\n";

const char *ViterbiSource =
    "prob viterbi(hmm h, state[h] s, seq[dna] x, index[x] i) =\n"
    "  if i == 0 then\n"
    "    if s.isstart then 1.0 else 0.0\n"
    "  else\n"
    "    (if s.isend then 1.0 else s.emission[x[i-1]]) *\n"
    "    max(t in s.transitionsto : t.prob * viterbi(t.start, i - 1))\n";

const char *ForwardSource =
    "prob forward(hmm h, state[h] s, seq[protein] x, index[x] i) =\n"
    "  if i == 0 then\n"
    "    if s.isstart then 1.0 else 0.0\n"
    "  else\n"
    "    (if s.isend then 1.0 else s.emission[x[i-1]]) *\n"
    "    sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))\n";

struct Timing {
  double Seconds = 0.0;
  double CellsPerSec = 0.0;
};

struct CaseResult {
  std::string Name;
  uint64_t Cells = 0;
  Timing Ast, Vm, Jit;
  double Speedup = 0.0;    // AST / VM
  double JitSpeedup = 0.0; // VM / JIT
  bool ResultsMatch = false;
};

/// Runs \p Fn on \p Args \p Reps times with \p Options and returns the
/// best (minimum) wall-clock, the standard way to suppress scheduler
/// noise when the quantity of interest is the code's own speed.
Timing timeEvaluator(const CompiledRecurrence &Fn,
                     const std::vector<ArgValue> &Args,
                     const RunOptions &Options, unsigned Reps,
                     const gpu::CostModel &Model, RunResult &Out) {
  DiagnosticEngine Diags;
  double Best = 1e300;
  for (unsigned I = 0; I != Reps; ++I) {
    auto T0 = std::chrono::steady_clock::now();
    std::optional<RunResult> R = Fn.runCpu(Args, Model, Diags, Options);
    auto T1 = std::chrono::steady_clock::now();
    if (!R) {
      std::fprintf(stderr, "bench run failure:\n%s", Diags.str().c_str());
      std::exit(2);
    }
    Out = *R;
    double S = std::chrono::duration<double>(T1 - T0).count();
    if (S < Best)
      Best = S;
  }
  Timing T;
  T.Seconds = Best;
  T.CellsPerSec = Best > 0.0 ? static_cast<double>(Out.Cells) / Best : 0.0;
  return T;
}

CaseResult runCase(const std::string &Name, const CompiledRecurrence &Fn,
                   const std::vector<ArgValue> &Args, unsigned Reps) {
  if (!Fn.bytecode()) {
    std::fprintf(stderr, "%s: recursion did not compile to bytecode\n",
                 Name.c_str());
    std::exit(2);
  }
  gpu::CostModel Model;
  RunOptions VmOpts;
  RunOptions AstOpts;
  AstOpts.UseAstEvaluator = true;
  RunOptions JitOpts;
  JitOpts.Evaluator = exec::EvalKind::Jit;
  JitOpts.JitCacheDir = "/tmp/parrec-jit-bench";

  // Warm the plan caches so no timed run pays schedule synthesis (or,
  // for the JIT, the one-off native compile).
  {
    DiagnosticEngine Diags;
    (void)Fn.runCpu(Args, Model, Diags, VmOpts);
    (void)Fn.runCpu(Args, Model, Diags, JitOpts);
  }

  CaseResult C;
  C.Name = Name;
  RunResult VmRes, AstRes, JitRes;
  C.Vm = timeEvaluator(Fn, Args, VmOpts, Reps, Model, VmRes);
  C.Ast = timeEvaluator(Fn, Args, AstOpts, Reps, Model, AstRes);
  C.Jit = timeEvaluator(Fn, Args, JitOpts, Reps, Model, JitRes);
  C.Cells = VmRes.Cells;
  C.Speedup = C.Vm.Seconds > 0.0 ? C.Ast.Seconds / C.Vm.Seconds : 0.0;
  C.JitSpeedup = C.Jit.Seconds > 0.0 ? C.Vm.Seconds / C.Jit.Seconds : 0.0;
  C.ResultsMatch = VmRes.RootValue == AstRes.RootValue &&
                   VmRes.TableMax == AstRes.TableMax &&
                   VmRes.Cost == AstRes.Cost &&
                   VmRes.Cycles == AstRes.Cycles &&
                   VmRes.RootValue == JitRes.RootValue &&
                   VmRes.TableMax == JitRes.TableMax &&
                   VmRes.Cost == JitRes.Cost &&
                   VmRes.Cycles == JitRes.Cycles;
  return C;
}

CompiledRecurrence compileOrDie(const char *Source) {
  DiagnosticEngine Diags;
  auto Compiled = CompiledRecurrence::compile(Source, Diags);
  if (!Compiled) {
    std::fprintf(stderr, "bench compile failure:\n%s",
                 Diags.str().c_str());
    std::exit(2);
  }
  return std::move(*Compiled);
}

std::string padSample(const bio::Hmm &Model, uint64_t Seed,
                      size_t Length) {
  SplitMix64 Rng(Seed);
  std::string S = Model.sample(Rng.next(), Length);
  while (S.size() < Length)
    S += Model.alphabet().charAt(
        static_cast<unsigned>(Rng.nextBelow(Model.alphabet().size())));
  S.resize(Length);
  return S;
}

void writeJson(const std::string &Path,
               const std::vector<CaseResult> &Cases, bool Smoke) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    std::exit(2);
  }
  std::fprintf(F, "{\n  \"benchmark\": \"evaluator_ablation\",\n");
  std::fprintf(F, "  \"mode\": \"%s\",\n", Smoke ? "smoke" : "full");
  std::fprintf(F, "  \"cases\": [\n");
  for (size_t I = 0; I != Cases.size(); ++I) {
    const CaseResult &C = Cases[I];
    std::fprintf(F,
                 "    {\n"
                 "      \"name\": \"%s\",\n"
                 "      \"cells\": %llu,\n"
                 "      \"ast\": {\"seconds\": %.9f, \"cells_per_sec\": "
                 "%.1f},\n"
                 "      \"vm\": {\"seconds\": %.9f, \"cells_per_sec\": "
                 "%.1f},\n"
                 "      \"jit\": {\"seconds\": %.9f, \"cells_per_sec\": "
                 "%.1f},\n"
                 "      \"speedup\": %.3f,\n"
                 "      \"jit_speedup\": %.3f,\n"
                 "      \"results_match\": %s\n"
                 "    }%s\n",
                 C.Name.c_str(), static_cast<unsigned long long>(C.Cells),
                 C.Ast.Seconds, C.Ast.CellsPerSec, C.Vm.Seconds,
                 C.Vm.CellsPerSec, C.Jit.Seconds, C.Jit.CellsPerSec,
                 C.Speedup, C.JitSpeedup,
                 C.ResultsMatch ? "true" : "false",
                 I + 1 == Cases.size() ? "" : ",");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  std::string OutPath = "BENCH_evaluator.json";
  for (int I = 1; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Smoke = true;
    else if (std::strncmp(Argv[I], "--out=", 6) == 0)
      OutPath = Argv[I] + 6;
    else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out=PATH]\n", Argv[0]);
      return 2;
    }
  }

  const unsigned Reps = Smoke ? 3 : 5;
  const int64_t SwLen = Smoke ? 150 : 700;
  const size_t ViterbiLen = Smoke ? 400 : 4000;
  const size_t ForwardLen = Smoke ? 120 : 500;
  const unsigned ProfilePositions = Smoke ? 10 : 30;

  std::vector<CaseResult> Cases;

  // Case study 1 (Section 6.1): Smith-Waterman, protein x protein.
  {
    CompiledRecurrence Fn = compileOrDie(SmithWatermanSource);
    const bio::SubstitutionMatrix &M = bio::SubstitutionMatrix::blosum62();
    bio::Sequence A = bio::randomSequence(bio::Alphabet::protein(), SwLen,
                                          /*Seed=*/31, "a");
    bio::Sequence B = bio::randomSequence(bio::Alphabet::protein(), SwLen,
                                          /*Seed=*/32, "b");
    Cases.push_back(runCase(
        "smith_waterman", Fn,
        {ArgValue::ofMatrix(&M), ArgValue::ofSeq(&A), ArgValue(),
         ArgValue::ofSeq(&B), ArgValue()},
        Reps));
  }

  // Case study 2 (Section 6.2): Viterbi over the gene-finder model.
  {
    CompiledRecurrence Fn = compileOrDie(ViterbiSource);
    bio::Hmm Genes = bio::makeGeneFinderModel();
    bio::Sequence X("x", padSample(Genes, /*Seed=*/0x6E43, ViterbiLen));
    Cases.push_back(runCase("viterbi_genefinder", Fn,
                            {ArgValue::ofHmm(&Genes), ArgValue(),
                             ArgValue::ofSeq(&X), ArgValue()},
                            Reps));
  }

  // Case study 3 (Section 6.3): forward over a profile HMM.
  {
    CompiledRecurrence Fn = compileOrDie(ForwardSource);
    DiagnosticEngine Diags;
    bio::Hmm Raw = bio::makeProfileHmm(ProfilePositions,
                                       bio::Alphabet::protein(),
                                       /*Seed=*/9);
    auto Profile = bio::eliminateSilentStates(Raw, Diags);
    if (!Profile) {
      std::fprintf(stderr, "profile build failure:\n%s",
                   Diags.str().c_str());
      return 2;
    }
    bio::Sequence X = bio::randomSequence(bio::Alphabet::protein(),
                                          static_cast<int64_t>(ForwardLen),
                                          /*Seed=*/41, "x");
    Cases.push_back(runCase("forward_profile", Fn,
                            {ArgValue::ofHmm(&*Profile), ArgValue(),
                             ArgValue::ofSeq(&X), ArgValue()},
                            Reps));
  }

  std::printf(
      "== Evaluator ablation: AST walker vs bytecode VM vs JIT (%s) ==\n",
      Smoke ? "smoke" : "full");
  std::printf("%20s %12s %14s %14s %14s %9s %9s %6s\n", "case", "cells",
              "ast cells/s", "vm cells/s", "jit cells/s", "vm/ast",
              "jit/vm", "match");
  bool Ok = true;
  for (const CaseResult &C : Cases) {
    std::printf("%20s %12llu %14.0f %14.0f %14.0f %8.2fx %8.2fx %6s\n",
                C.Name.c_str(),
                static_cast<unsigned long long>(C.Cells),
                C.Ast.CellsPerSec, C.Vm.CellsPerSec, C.Jit.CellsPerSec,
                C.Speedup, C.JitSpeedup, C.ResultsMatch ? "yes" : "NO");
    Ok &= C.ResultsMatch;
    if (C.Speedup < 1.0) {
      std::fprintf(stderr, "FAIL: VM slower than AST on %s (%.2fx)\n",
                   C.Name.c_str(), C.Speedup);
      Ok = false;
    }
    // The gate the JIT must hold: at least VM speed on the two
    // loop-dominated case studies (the reduce-heavy profile forward is
    // reported but not gated — its hot path is the CSR reduction the VM
    // already runs tight).
    if ((C.Name == "smith_waterman" || C.Name == "viterbi_genefinder") &&
        C.JitSpeedup < 1.0) {
      std::fprintf(stderr, "FAIL: JIT slower than VM on %s (%.2fx)\n",
                   C.Name.c_str(), C.JitSpeedup);
      Ok = false;
    }
  }
  writeJson(OutPath, Cases, Smoke);
  std::printf("wrote %s\n", OutPath.c_str());
  return Ok ? 0 : 1;
}
