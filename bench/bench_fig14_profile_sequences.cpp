//===- bench_fig14_profile_sequences.cpp - Figure 14 ---------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 14: profile-HMM database search with the full forward algorithm
/// on a 10-position model, execution time vs number of sequences.
/// Series: ParRec, HMMoC-style CPU, HMMER2-style CPU, GPU-HMMER-style
/// inter-task GPU, and HMMER3 with filters off.
///
/// Expected shape (paper): ParRec on par with GPU-HMMER; both well ahead
/// of HMMoC and HMMER2; HMMER3's optimised CPU pipeline beats everything.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace parrec;
using namespace parrecbench;

namespace {

constexpr unsigned ModelPositions = 10;
constexpr int64_t ReadLength = 150;

const bio::Hmm &profileModel() {
  // Interior silent (delete) states are eliminated up front: the DSL's
  // forward recursion consumes one symbol per step (see DESIGN.md), and
  // every baseline runs on the same emitting-only model for a fair
  // comparison.
  static const bio::Hmm Model = [] {
    DiagnosticEngine Diags;
    bio::Hmm Raw = bio::makeProfileHmm(ModelPositions,
                                       bio::Alphabet::protein(), 0xABCD);
    auto Emitting = bio::eliminateSilentStates(Raw, Diags);
    if (!Emitting) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      std::abort();
    }
    return *Emitting;
  }();
  return Model;
}

const bio::SequenceDatabase &databaseOfSize(unsigned Count) {
  static const bio::SequenceDatabase Full =
      proteinReads(24000, ReadLength);
  static std::map<unsigned, bio::SequenceDatabase> Cache;
  auto It = Cache.find(Count);
  if (It == Cache.end())
    It = Cache
             .emplace(Count, bio::SequenceDatabase(Full.begin(),
                                                   Full.begin() + Count))
             .first;
  return It->second;
}

constexpr const char *FigureName =
    "Figure 14: profile forward vs number of sequences";

void BM_Fig14_ParRec(benchmark::State &State) {
  gpu::Device Device;
  const bio::SequenceDatabase &Db =
      databaseOfSize(static_cast<unsigned>(State.range(0)));
  double Seconds = 0.0;
  for (auto _ : State)
    Seconds = parrecForwardSearch(profileModel(), Db, Device);
  State.counters["modelled_s"] = Seconds;
  FigureTable::instance().record(FigureName, "parrec", State.range(0),
                                 Seconds);
}

void BM_Fig14_HmmocCpu(benchmark::State &State) {
  gpu::CostModel Model;
  const bio::SequenceDatabase &Db =
      databaseOfSize(static_cast<unsigned>(State.range(0)));
  double Seconds = 0.0;
  for (auto _ : State)
    Seconds =
        baselines::searchHmmocCpu(profileModel(), Db, Model).Seconds;
  State.counters["modelled_s"] = Seconds;
  FigureTable::instance().record(FigureName, "hmmoc_cpu", State.range(0),
                                 Seconds);
}

void BM_Fig14_Hmmer2Cpu(benchmark::State &State) {
  gpu::CostModel Model;
  const bio::SequenceDatabase &Db =
      databaseOfSize(static_cast<unsigned>(State.range(0)));
  double Seconds = 0.0;
  for (auto _ : State)
    Seconds =
        baselines::searchHmmer2Cpu(profileModel(), Db, Model).Seconds;
  State.counters["modelled_s"] = Seconds;
  FigureTable::instance().record(FigureName, "hmmer2_cpu",
                                 State.range(0), Seconds);
}

void BM_Fig14_GpuHmmer(benchmark::State &State) {
  gpu::Device Device;
  const bio::SequenceDatabase &Db =
      databaseOfSize(static_cast<unsigned>(State.range(0)));
  double Seconds = 0.0;
  for (auto _ : State)
    Seconds =
        baselines::searchGpuHmmer(profileModel(), Db, Device).Seconds;
  State.counters["modelled_s"] = Seconds;
  FigureTable::instance().record(FigureName, "gpu_hmmer",
                                 State.range(0), Seconds);
}

void BM_Fig14_Hmmer3Cpu(benchmark::State &State) {
  gpu::CostModel Model;
  const bio::SequenceDatabase &Db =
      databaseOfSize(static_cast<unsigned>(State.range(0)));
  double Seconds = 0.0;
  for (auto _ : State)
    Seconds =
        baselines::searchHmmer3Cpu(profileModel(), Db, Model).Seconds;
  State.counters["modelled_s"] = Seconds;
  FigureTable::instance().record(FigureName, "hmmer3_cpu",
                                 State.range(0), Seconds);
}

void sequenceCounts(benchmark::internal::Benchmark *B) {
  for (int64_t Count : {1500, 3000, 6000, 12000, 24000})
    B->Arg(Count);
  B->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Fig14_ParRec)->Apply(sequenceCounts);
BENCHMARK(BM_Fig14_HmmocCpu)->Apply(sequenceCounts);
BENCHMARK(BM_Fig14_Hmmer2Cpu)->Apply(sequenceCounts);
BENCHMARK(BM_Fig14_GpuHmmer)->Apply(sequenceCounts);
BENCHMARK(BM_Fig14_Hmmer3Cpu)->Apply(sequenceCounts);

} // namespace

int main(int Argc, char **Argv) { return benchMain(Argc, Argv); }
