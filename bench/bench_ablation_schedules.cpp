//===- bench_ablation_schedules.cpp - Schedule-quality ablation ----------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation A2 (DESIGN.md), two halves:
///  * Section 2.3's claim that the minimal-partition schedule is the
///    efficient one: edit distance under the minimal x + y against the
///    valid-but-wasteful 2x + y.
///  * Section 4.7's conditional parallelisation: a diagonal-only
///    recursion over rectangles of fixed area and varying aspect ratio,
///    comparing the runtime-selected schedule against each fixed
///    candidate.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace parrec;
using namespace parrecbench;

namespace {

const char *EditDistanceSource =
    "int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =\n"
    "  if i == 0 then j\n"
    "  else if j == 0 then i\n"
    "  else if s[i-1] == t[j-1] then d(i-1, j-1)\n"
    "  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1\n";

// A recursion with only the diagonal dependency: the Section 4.7
// motivating example, counting matching characters along the diagonal.
const char *DiagonalSource =
    "int g(seq[en] a, index[a] i, seq[en] b, index[b] j) =\n"
    "  if i == 0 then 0\n"
    "  else if j == 0 then 0\n"
    "  else g(i-1, j-1) + (if a[i-1] == b[j-1] then 1 else 0)\n";

void runEditDistance(benchmark::State &State,
                     std::optional<solver::Schedule> Forced,
                     const char *Series) {
  const auto &Fn = compiledOnce(EditDistanceSource);
  int64_t N = State.range(0);
  bio::Sequence S =
      bio::randomSequence(bio::Alphabet::english(), N, 31, "s");
  bio::Sequence T =
      bio::randomSequence(bio::Alphabet::english(), N, 32, "t");
  std::vector<codegen::ArgValue> Args = {
      codegen::ArgValue::ofSeq(&S), codegen::ArgValue(),
      codegen::ArgValue::ofSeq(&T), codegen::ArgValue()};

  gpu::Device Device;
  runtime::RunOptions Options;
  Options.ForcedSchedule = std::move(Forced);
  DiagnosticEngine Diags;
  std::optional<runtime::RunResult> R;
  for (auto _ : State)
    R = Fn.runGpu(Args, Device, Diags, Options);
  if (!R) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    std::abort();
  }
  double Seconds = Device.costModel().gpuSeconds(R->Cycles);
  State.counters["modelled_s"] = Seconds;
  State.counters["partitions"] = static_cast<double>(R->Partitions);
  FigureTable::instance().record(
      "Ablation A2a: minimal vs non-minimal schedule (edit distance)",
      Series, N, Seconds);
}

void BM_MinimalSchedule(benchmark::State &State) {
  runEditDistance(State, std::nullopt, "minimal_x_plus_y");
}
void BM_WastefulSchedule(benchmark::State &State) {
  runEditDistance(State, solver::Schedule{{2, 1}}, "valid_2x_plus_y");
}

void editSizes(benchmark::internal::Benchmark *B) {
  for (int64_t N : {100, 200, 400})
    B->Arg(N);
  B->Unit(benchmark::kMillisecond)->Iterations(1);
}
BENCHMARK(BM_MinimalSchedule)->Apply(editSizes);
BENCHMARK(BM_WastefulSchedule)->Apply(editSizes);

/// Aspect-ratio sweep at (roughly) constant area 65536: range(0) is the
/// first side.
void runDiagonal(benchmark::State &State,
                 std::optional<solver::Schedule> Forced,
                 const char *Series) {
  const auto &Fn = compiledOnce(DiagonalSource);
  int64_t A = State.range(0);
  int64_t B = 65536 / A;
  bio::Sequence SA =
      bio::randomSequence(bio::Alphabet::english(), A, 41, "a");
  bio::Sequence SB =
      bio::randomSequence(bio::Alphabet::english(), B, 42, "b");
  std::vector<codegen::ArgValue> Args = {
      codegen::ArgValue::ofSeq(&SA), codegen::ArgValue(),
      codegen::ArgValue::ofSeq(&SB), codegen::ArgValue()};

  gpu::Device Device;
  runtime::RunOptions Options;
  Options.ForcedSchedule = std::move(Forced);
  DiagnosticEngine Diags;
  std::optional<runtime::RunResult> R;
  for (auto _ : State)
    R = Fn.runGpu(Args, Device, Diags, Options);
  if (!R) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    std::abort();
  }
  double Seconds = Device.costModel().gpuSeconds(R->Cycles);
  State.counters["modelled_s"] = Seconds;
  State.counters["partitions"] = static_cast<double>(R->Partitions);
  FigureTable::instance().record(
      "Ablation A2b: conditional schedules (diagonal recursion, "
      "area 64k, x = first side)",
      Series, A, Seconds);
}

void BM_ConditionalSelected(benchmark::State &State) {
  // No forced schedule: the batch/auto path picks the minimal candidate
  // per problem shape (S = i or S = j).
  runDiagonal(State, std::nullopt, "selected");
}
void BM_AlwaysSi(benchmark::State &State) {
  runDiagonal(State, solver::Schedule{{1, 0}}, "fixed_S_i");
}
void BM_AlwaysSj(benchmark::State &State) {
  runDiagonal(State, solver::Schedule{{0, 1}}, "fixed_S_j");
}

void aspects(benchmark::internal::Benchmark *B) {
  for (int64_t A : {64, 128, 256, 512, 1024})
    B->Arg(A);
  B->Unit(benchmark::kMillisecond)->Iterations(1);
}
BENCHMARK(BM_ConditionalSelected)->Apply(aspects);
BENCHMARK(BM_AlwaysSi)->Apply(aspects);
BENCHMARK(BM_AlwaysSj)->Apply(aspects);

} // namespace

int main(int Argc, char **Argv) { return benchMain(Argc, Argv); }
