//===- bench_ablation_batch_workers.cpp - Host-side batch parallelism --------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Host-side ablation of the execution architecture: runGpuBatch
/// simulates the device's independent multiprocessors, so the per-problem
/// simulations fan out across host worker threads. This bench measures
/// *wall-clock* host time (not modelled GPU seconds, which are identical
/// by construction for any worker count) for a Smith-Waterman database
/// batch at 1 worker vs. one per hardware thread. The plan cache means
/// every iteration after the first runs with zero synthesis work in
/// both configurations.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "exec/ParallelFor.h"

#include <chrono>
#include <thread>

using namespace parrec;
using namespace parrecbench;

namespace {

constexpr const char *FigureName =
    "Ablation A4: batch host workers (Smith-Waterman, wall seconds)";

void runBatch(benchmark::State &State, unsigned Workers) {
  const auto &Fn = compiledOnce(smithWatermanSource());
  const auto &Matrix = bio::SubstitutionMatrix::blosum62();
  bio::Sequence Query =
      bio::randomSequence(bio::Alphabet::protein(), 160, 0xACE, "query");
  bio::SequenceDatabase Db =
      proteinDatabase(static_cast<unsigned>(State.range(0)));

  std::vector<std::vector<codegen::ArgValue>> Problems;
  Problems.reserve(Db.size());
  for (const bio::Sequence &Subject : Db)
    Problems.push_back({codegen::ArgValue::ofMatrix(&Matrix),
                        codegen::ArgValue::ofSeq(&Query),
                        codegen::ArgValue(),
                        codegen::ArgValue::ofSeq(&Subject),
                        codegen::ArgValue()});

  gpu::Device Device;
  runtime::RunOptions Options;
  Options.BatchWorkers = Workers;
  // Keep each per-problem scan serial so the measurement isolates the
  // batch axis from the wavefront scan-worker axis (A5).
  Options.ScanWorkers = 1;

  DiagnosticEngine Diags;
  double BestWallSeconds = 0.0;
  for (auto _ : State) {
    auto Start = std::chrono::steady_clock::now();
    auto Batch = Fn.runGpuBatch(Problems, Device, Diags, Options);
    double Wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
    if (!Batch) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      std::abort();
    }
    benchmark::DoNotOptimize(Batch->TotalCycles);
    if (BestWallSeconds == 0.0 || Wall < BestWallSeconds)
      BestWallSeconds = Wall;
  }

  unsigned Resolved =
      exec::resolveWorkerCount(Workers, Problems.size());
  State.counters["host_workers"] = Resolved;
  State.counters["wall_s"] = BestWallSeconds;
  FigureTable::instance().record(
      FigureName,
      Workers == 1 ? "1_worker"
                   : "hw_workers_" + std::to_string(Resolved),
      State.range(0), BestWallSeconds);
}

void BM_OneWorker(benchmark::State &State) { runBatch(State, 1); }
void BM_AllWorkers(benchmark::State &State) { runBatch(State, 0); }

void sizes(benchmark::internal::Benchmark *B) {
  for (int64_t N : {8, 32, 128})
    B->Arg(N);
  B->Unit(benchmark::kMillisecond)->UseRealTime();
}

BENCHMARK(BM_OneWorker)->Apply(sizes);
BENCHMARK(BM_AllWorkers)->Apply(sizes);

} // namespace

int main(int Argc, char **Argv) { return benchMain(Argc, Argv); }
