//===- bench_ablation_compile_time.cpp - Pipeline cost ablation ----------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation A3 (DESIGN.md): the compilation pipeline's own cost. The
/// paper quotes ~1 s of code-generation overhead, dominated by calling
/// CLooG from Java; these benchmarks time each stage of our native
/// pipeline (parse+analyse, schedule synthesis, conditional derivation,
/// loop generation, CUDA emission) with real wall-clock timing.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "codegen/CudaEmitter.h"
#include "lang/Parser.h"
#include "poly/LoopGen.h"

using namespace parrec;
using namespace parrecbench;

namespace {

struct CaseStudy {
  const char *Name;
  const char *Source;
};

const CaseStudy Cases[] = {
    {"edit_distance",
     "int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =\n"
     "  if i == 0 then j\n"
     "  else if j == 0 then i\n"
     "  else if s[i-1] == t[j-1] then d(i-1, j-1)\n"
     "  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1\n"},
    {"smith_waterman", nullptr}, // Filled from BenchCommon below.
    {"forward", nullptr},
};

const CaseStudy &caseStudy(int64_t Index) {
  static CaseStudy Filled[3];
  static bool Initialised = false;
  if (!Initialised) {
    Filled[0] = Cases[0];
    Filled[1] = {"smith_waterman", smithWatermanSource()};
    Filled[2] = {"forward", forwardSource()};
    Initialised = true;
  }
  return Filled[Index];
}

struct Analyzed {
  std::unique_ptr<lang::FunctionDecl> Decl;
  lang::FunctionInfo Info;
};

Analyzed analyzeOrDie(const char *Source) {
  DiagnosticEngine Diags;
  lang::Parser P(Source, Diags);
  Analyzed Result;
  Result.Decl = P.parseFunctionOnly();
  lang::Sema S(Diags, {"dna", "rna", "protein", "en"});
  auto Info = S.analyze(*Result.Decl);
  if (!Info) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    std::abort();
  }
  Result.Info = std::move(*Info);
  return Result;
}

void BM_ParseAndAnalyse(benchmark::State &State) {
  const CaseStudy &Case = caseStudy(State.range(0));
  for (auto _ : State) {
    Analyzed A = analyzeOrDie(Case.Source);
    benchmark::DoNotOptimize(A.Info.Dims.data());
  }
  State.SetLabel(Case.Name);
}

void BM_ScheduleSearch(benchmark::State &State) {
  const CaseStudy &Case = caseStudy(State.range(0));
  Analyzed A = analyzeOrDie(Case.Source);
  solver::DomainBox Box = solver::DomainBox::fromExtents(
      std::vector<int64_t>(A.Info.numDims(), 512));
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto S = solver::findMinimalSchedule(A.Info.Recurrence, Box, Diags);
    benchmark::DoNotOptimize(S.has_value());
  }
  State.SetLabel(Case.Name);
}

void BM_ConditionalSchedules(benchmark::State &State) {
  const CaseStudy &Case = caseStudy(State.range(0));
  Analyzed A = analyzeOrDie(Case.Source);
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto Candidates =
        solver::findConditionalSchedules(A.Info.Recurrence, Diags);
    benchmark::DoNotOptimize(Candidates.has_value());
  }
  State.SetLabel(Case.Name);
}

void BM_LoopGeneration(benchmark::State &State) {
  const CaseStudy &Case = caseStudy(State.range(0));
  Analyzed A = analyzeOrDie(Case.Source);
  DiagnosticEngine Diags;
  solver::DomainBox Box = solver::DomainBox::fromExtents(
      std::vector<int64_t>(A.Info.numDims(), 512));
  auto S = solver::findMinimalSchedule(A.Info.Recurrence, Box, Diags);
  std::vector<std::string> Names = A.Info.Recurrence.DimNames;
  poly::Polyhedron Domain(Names);
  for (unsigned D = 0; D != Box.numDims(); ++D)
    Domain.addBounds(D, Box.Lower[D], Box.Upper[D]);
  for (auto _ : State) {
    poly::LoopNest Nest =
        poly::generateLoops(Domain, 0, S->toAffineExpr(0));
    benchmark::DoNotOptimize(Nest.Levels.data());
  }
  State.SetLabel(Case.Name);
}

void BM_CudaEmission(benchmark::State &State) {
  const CaseStudy &Case = caseStudy(State.range(0));
  Analyzed A = analyzeOrDie(Case.Source);
  DiagnosticEngine Diags;
  solver::DomainBox Box = solver::DomainBox::fromExtents(
      std::vector<int64_t>(A.Info.numDims(), 512));
  auto S = solver::findMinimalSchedule(A.Info.Recurrence, Box, Diags);
  for (auto _ : State) {
    std::string Source = codegen::emitCudaKernel(*A.Decl, A.Info, *S);
    benchmark::DoNotOptimize(Source.data());
  }
  State.SetLabel(Case.Name);
}

void allCases(benchmark::internal::Benchmark *B) {
  B->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_ParseAndAnalyse)->Apply(allCases);
BENCHMARK(BM_ScheduleSearch)->Apply(allCases);
BENCHMARK(BM_ConditionalSchedules)->Apply(allCases);
BENCHMARK(BM_LoopGeneration)->Apply(allCases);
BENCHMARK(BM_CudaEmission)->Apply(allCases);

} // namespace

int main(int Argc, char **Argv) { return benchMain(Argc, Argv); }
