//===- bench_serve_soak.cpp - Router-stack soak: batching, fairness, memo ----==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Soak gates for the serving stack's three scheduling features, each
/// driven to a deterministic conclusion and recorded with latency
/// percentiles:
///
///  1. Continuous batching at saturation. A plug request wedges the only
///     device inside its completion callback while a stream of
///     same-shape requests arrives. With continuous batching they join
///     the one queued batch; without it each opens its own batch behind
///     a serial device. Gate: continuous batching strictly reduces both
///     the mean queue wait and the batch count.
///
///  2. Weighted fairness. Two tenants with a 10:1 weight ratio backlog a
///     paused single-device engine; the deficit-round-robin drain must
///     hand them goodput in that ratio. Gate: over the contended prefix
///     the heavy:light completion ratio is within 15% of 10, and the
///     heavy tenant's p99 latency beats the light tenant's.
///
///  3. Memoization. A repeated-request workload (every unique executed
///     once, then streamed again as repeats) must hit the cache at
///     >= 90% and never re-execute. Gate: hit rate >= 0.9 and the
///     devices saw exactly one request per unique problem.
///
/// All three phases are scheduling-deterministic (virtual clock, paused
/// fills, plugged devices); only wall-clock latencies vary run to run,
/// and every wall-clock gate compares two measurements of the same run
/// whose difference is execution-serialization, not noise.
///
/// Usage: bench_serve_soak [--smoke] [--out=PATH]
///   --smoke    smaller streams (CI gate)
///   --out=PATH JSON output path (default BENCH_soak.json)
///
//===----------------------------------------------------------------------===//

#include "bio/Fasta.h"
#include "bio/SubstitutionMatrix.h"
#include "runtime/CompiledRecurrence.h"
#include "serve/Engine.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace parrec;
using namespace parrec::runtime;
using codegen::ArgValue;

namespace {

const char *SwSource =
    "int sw(matrix[protein] m, seq[protein] a, index[a] i,\n"
    "       seq[protein] b, index[b] j) =\n"
    "  if i == 0 then 0\n"
    "  else if j == 0 then 0\n"
    "  else 0 max (sw(i-1, j-1) + m[a[i-1], b[j-1]])\n"
    "       max (sw(i-1, j) - 4) max (sw(i, j-1) - 4)\n";

struct Percentiles {
  double P50 = 0.0;
  double P95 = 0.0;
  double P99 = 0.0;
};

Percentiles percentiles(std::vector<double> Latencies) {
  Percentiles P;
  if (Latencies.empty())
    return P;
  std::sort(Latencies.begin(), Latencies.end());
  auto At = [&](double Q) {
    size_t I = static_cast<size_t>(Q * static_cast<double>(Latencies.size()));
    return Latencies[std::min(I, Latencies.size() - 1)];
  };
  P.P50 = At(0.50);
  P.P95 = At(0.95);
  P.P99 = At(0.99);
  return P;
}

/// Smith-Waterman requests against one query; Subject length selects the
/// plan key, Seed the contents.
struct SwFactory {
  CompiledRecurrence Sw = [] {
    DiagnosticEngine Diags;
    auto Compiled = CompiledRecurrence::compile(SwSource, Diags);
    if (!Compiled) {
      std::fprintf(stderr, "bench recurrence failure:\n%s",
                   Diags.str().c_str());
      std::exit(2);
    }
    return std::move(*Compiled);
  }();
  const bio::SubstitutionMatrix &Blosum = bio::SubstitutionMatrix::blosum62();
  std::deque<bio::Sequence> Seqs;

  SwFactory() {
    Seqs.push_back(bio::randomSequence(bio::Alphabet::protein(), 32,
                                       /*Seed=*/0x50AC, "query"));
  }

  serve::Request request(int64_t SubjectLength, uint64_t Seed) {
    Seqs.push_back(bio::randomSequence(bio::Alphabet::protein(),
                                       SubjectLength, Seed, "s"));
    serve::Request Req;
    Req.Fn = &Sw;
    Req.Args = {ArgValue::ofMatrix(&Blosum), ArgValue::ofSeq(&Seqs.front()),
                ArgValue(), ArgValue::ofSeq(&Seqs.back()), ArgValue()};
    return Req;
  }
};

bool waitFor(const std::function<bool()> &Done) {
  for (int Spin = 0; Spin != 10000; ++Spin) {
    if (Done())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return Done();
}

int Failures = 0;

void gate(bool Ok, const char *What) {
  if (!Ok) {
    std::fprintf(stderr, "FAIL: %s\n", What);
    ++Failures;
  }
}

//===----------------------------------------------------------------------===//
// Phase 1: continuous batching at saturation
//===----------------------------------------------------------------------===//

struct SaturationResult {
  uint64_t Requests = 0;
  uint64_t Batches = 0;
  uint64_t Joins = 0;
  double MeanQueueWaitSeconds = 0.0;
  Percentiles Latency;
};

SaturationResult runSaturation(bool Continuous, uint64_t Stream) {
  SwFactory Factory;
  serve::Engine::Options Opts;
  Opts.Devices = 1;
  Opts.MaxBatch = Stream + 1;
  Opts.QueueCapacity = Stream + 16;
  Opts.ContinuousBatch = Continuous;
  serve::Engine Engine(Opts);

  // The plug wedges the device inside its callback, so everything that
  // arrives next queues behind a busy device: saturation, on demand.
  std::mutex Mutex;
  std::condition_variable Cv;
  bool PlugDone = false, Released = false;
  serve::Future Plug = Engine.submit(
      Factory.request(/*SubjectLength=*/96, /*Seed=*/1),
      [&](const serve::Response &) {
        std::unique_lock<std::mutex> Lock(Mutex);
        PlugDone = true;
        Cv.notify_all();
        Cv.wait(Lock, [&] { return Released; });
      });
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Cv.wait(Lock, [&] { return PlugDone; });
  }

  // A same-shape stream: the seed opens one queued batch; with
  // continuous batching every later arrival joins it, without it each
  // opens a batch of its own behind the serial device.
  std::vector<serve::Future> Stragglers;
  Stragglers.push_back(Engine.submit(Factory.request(48, 100)));
  waitFor([&] { return Engine.stats().Batches == 2; });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  for (uint64_t I = 1; I != Stream; ++I)
    Stragglers.push_back(Engine.submit(Factory.request(48, 100 + I)));
  if (Continuous)
    waitFor([&] { return Engine.stats().ContinuousJoins == Stream - 1; });
  else
    waitFor([&] { return Engine.stats().Batches == Stream + 1; });

  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Released = true;
  }
  Cv.notify_all();
  Engine.shutdown(serve::Engine::ShutdownMode::Drain);
  gate(Plug.wait().St == serve::Status::Ok, "saturation: plug not Ok");

  SaturationResult R;
  R.Requests = Stragglers.size();
  std::vector<double> Latencies;
  double WaitSum = 0.0;
  for (serve::Future &F : Stragglers) {
    const serve::Response &Resp = F.wait();
    gate(Resp.St == serve::Status::Ok, "saturation: request not Ok");
    WaitSum += Resp.QueueSeconds;
    Latencies.push_back(Resp.TotalSeconds);
  }
  R.MeanQueueWaitSeconds = WaitSum / static_cast<double>(Stragglers.size());
  R.Latency = percentiles(std::move(Latencies));
  serve::Engine::Stats Stats = Engine.stats();
  R.Batches = Stats.Batches;
  R.Joins = Stats.ContinuousJoins;
  return R;
}

//===----------------------------------------------------------------------===//
// Phase 2: 10:1 weighted fairness under backlog
//===----------------------------------------------------------------------===//

struct FairnessResult {
  uint64_t PerTenant = 0;
  uint64_t PrefixHeavy = 0;
  uint64_t PrefixLight = 0;
  double GoodputRatio = 0.0;
  Percentiles HeavyLatency;
  Percentiles LightLatency;
};

FairnessResult runFairness(uint64_t PerTenant) {
  SwFactory Factory;
  serve::Engine::Options Opts;
  Opts.Devices = 1;
  Opts.Coalesce = false; // Dispatch order == schedule order, exactly.
  Opts.StartPaused = true;
  Opts.QueueCapacity = 2 * PerTenant + 16;
  Opts.TenantWeights = {{"heavy", 10}, {"light", 1}};
  serve::Engine Engine(Opts);

  std::vector<serve::Future> Heavy, Light;
  for (uint64_t I = 0; I != PerTenant; ++I) {
    serve::Request H = Factory.request(24, 1000 + I);
    H.Tenant = "heavy";
    Heavy.push_back(Engine.submit(std::move(H)));
    serve::Request L = Factory.request(24, 5000 + I);
    L.Tenant = "light";
    Light.push_back(Engine.submit(std::move(L)));
  }
  Engine.shutdown(serve::Engine::ShutdownMode::Drain);

  // Completion order over the contended prefix — the window where both
  // tenants are still backlogged — is the goodput split the fair queue
  // actually delivered.
  std::vector<std::pair<uint64_t, bool>> Order; // (CompletionSeq, heavy)
  std::vector<double> HeavyLat, LightLat;
  for (serve::Future &F : Heavy) {
    const serve::Response &R = F.wait();
    gate(R.St == serve::Status::Ok, "fairness: heavy request not Ok");
    Order.push_back({R.CompletionSeq, true});
    HeavyLat.push_back(R.TotalSeconds);
  }
  for (serve::Future &F : Light) {
    const serve::Response &R = F.wait();
    gate(R.St == serve::Status::Ok, "fairness: light request not Ok");
    Order.push_back({R.CompletionSeq, false});
    LightLat.push_back(R.TotalSeconds);
  }
  std::sort(Order.begin(), Order.end());

  // Heavy exhausts after PerTenant + PerTenant/10 dispatches; stop the
  // prefix one full round earlier so both sides stay contended in it.
  size_t Prefix = static_cast<size_t>(PerTenant / 10 * 11);
  FairnessResult R;
  R.PerTenant = PerTenant;
  for (size_t I = 0; I != Prefix && I != Order.size(); ++I)
    ++(Order[I].second ? R.PrefixHeavy : R.PrefixLight);
  R.GoodputRatio = R.PrefixLight
                       ? static_cast<double>(R.PrefixHeavy) /
                             static_cast<double>(R.PrefixLight)
                       : 0.0;
  R.HeavyLatency = percentiles(std::move(HeavyLat));
  R.LightLatency = percentiles(std::move(LightLat));
  return R;
}

//===----------------------------------------------------------------------===//
// Phase 3: memoized repeats
//===----------------------------------------------------------------------===//

struct MemoResult {
  uint64_t Unique = 0;
  uint64_t Total = 0;
  uint64_t Hits = 0;
  uint64_t Executed = 0;
  double HitRate = 0.0;
  Percentiles WarmLatency;
  Percentiles RepeatLatency;
};

MemoResult runMemo(uint64_t Unique, uint64_t RepeatsPerUnique) {
  SwFactory Factory;
  serve::Engine::Options Opts;
  Opts.Devices = 1;
  Opts.MemoCapacity = Unique + 8;
  Opts.QueueCapacity = Unique * (RepeatsPerUnique + 1) + 16;
  serve::Engine Engine(Opts);

  // One submission per unique problem, completed before the repeat
  // stream starts (the warm phase of any steady-state cache).
  std::vector<serve::Request> Uniques;
  std::vector<double> WarmLat;
  for (uint64_t I = 0; I != Unique; ++I)
    Uniques.push_back(Factory.request(32 + 4 * (I % 4), 9000 + I));
  for (const serve::Request &Req : Uniques) {
    const serve::Response &R = Engine.submit(Req).wait();
    gate(R.St == serve::Status::Ok && !R.Memoized,
         "memo: warm-up request not executed Ok");
    WarmLat.push_back(R.TotalSeconds);
  }

  MemoResult R;
  R.Unique = Unique;
  R.WarmLatency = percentiles(std::move(WarmLat));
  R.Total = Unique * (RepeatsPerUnique + 1);
  std::vector<double> Latencies;
  for (uint64_t Round = 0; Round != RepeatsPerUnique; ++Round)
    for (const serve::Request &Req : Uniques) {
      const serve::Response &Resp = Engine.submit(Req).wait();
      gate(Resp.St == serve::Status::Ok, "memo: repeat not Ok");
      gate(Resp.Memoized, "memo: repeat missed the cache");
      Latencies.push_back(Resp.TotalSeconds);
    }
  Engine.shutdown(serve::Engine::ShutdownMode::Drain);

  serve::Engine::Stats Stats = Engine.stats();
  R.Hits = Stats.MemoHits;
  R.HitRate = static_cast<double>(R.Hits) / static_cast<double>(R.Total);
  for (uint64_t N : Stats.DeviceRequests)
    R.Executed += N;
  R.RepeatLatency = percentiles(std::move(Latencies));
  return R;
}

void writeJson(const std::string &Path, bool Smoke,
               const SaturationResult &Off, const SaturationResult &On,
               const FairnessResult &Fair, const MemoResult &Memo) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    std::exit(2);
  }
  auto Sat = [&](const char *Name, const SaturationResult &R,
                 const char *Tail) {
    std::fprintf(F,
                 "    \"%s\": {\"requests\": %llu, \"batches\": %llu, "
                 "\"continuous_joins\": %llu, "
                 "\"mean_queue_wait_seconds\": %.6f, "
                 "\"latency_seconds\": {\"p50\": %.6f, \"p95\": %.6f, "
                 "\"p99\": %.6f}}%s\n",
                 Name, static_cast<unsigned long long>(R.Requests),
                 static_cast<unsigned long long>(R.Batches),
                 static_cast<unsigned long long>(R.Joins),
                 R.MeanQueueWaitSeconds, R.Latency.P50, R.Latency.P95,
                 R.Latency.P99, Tail);
  };
  std::fprintf(F, "{\n  \"benchmark\": \"serve_soak\",\n");
  std::fprintf(F, "  \"mode\": \"%s\",\n", Smoke ? "smoke" : "full");
  std::fprintf(F, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(F, "  \"continuous_batching\": {\n");
  Sat("off", Off, ",");
  Sat("on", On, "");
  std::fprintf(F, "  },\n");
  std::fprintf(
      F,
      "  \"fairness\": {\"per_tenant\": %llu, \"weights\": [10, 1], "
      "\"prefix_heavy\": %llu, \"prefix_light\": %llu, "
      "\"goodput_ratio\": %.3f,\n"
      "    \"heavy_latency_seconds\": {\"p50\": %.6f, \"p95\": %.6f, "
      "\"p99\": %.6f},\n"
      "    \"light_latency_seconds\": {\"p50\": %.6f, \"p95\": %.6f, "
      "\"p99\": %.6f}},\n",
      static_cast<unsigned long long>(Fair.PerTenant),
      static_cast<unsigned long long>(Fair.PrefixHeavy),
      static_cast<unsigned long long>(Fair.PrefixLight), Fair.GoodputRatio,
      Fair.HeavyLatency.P50, Fair.HeavyLatency.P95, Fair.HeavyLatency.P99,
      Fair.LightLatency.P50, Fair.LightLatency.P95, Fair.LightLatency.P99);
  std::fprintf(
      F,
      "  \"memoization\": {\"unique\": %llu, \"total\": %llu, "
      "\"hits\": %llu, \"executed\": %llu, \"hit_rate\": %.3f,\n"
      "    \"warm_latency_seconds\": {\"p50\": %.6f, \"p95\": %.6f, "
      "\"p99\": %.6f},\n"
      "    \"repeat_latency_seconds\": {\"p50\": %.6f, \"p95\": %.6f, "
      "\"p99\": %.6f}}\n",
      static_cast<unsigned long long>(Memo.Unique),
      static_cast<unsigned long long>(Memo.Total),
      static_cast<unsigned long long>(Memo.Hits),
      static_cast<unsigned long long>(Memo.Executed), Memo.HitRate,
      Memo.WarmLatency.P50, Memo.WarmLatency.P95, Memo.WarmLatency.P99,
      Memo.RepeatLatency.P50, Memo.RepeatLatency.P95,
      Memo.RepeatLatency.P99);
  std::fprintf(F, "}\n");
  std::fclose(F);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  std::string OutPath = "BENCH_soak.json";
  for (int I = 1; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Smoke = true;
    else if (std::strncmp(Argv[I], "--out=", 6) == 0)
      OutPath = Argv[I] + 6;
    else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=PATH]\n", Argv[0]);
      return 2;
    }
  }

  const uint64_t Stream = Smoke ? 12 : 32;
  const uint64_t PerTenant = Smoke ? 40 : 120;
  const uint64_t Unique = Smoke ? 4 : 8;

  SaturationResult Off = runSaturation(false, Stream);
  SaturationResult On = runSaturation(true, Stream);
  FairnessResult Fair = runFairness(PerTenant);
  MemoResult Memo = runMemo(Unique, /*RepeatsPerUnique=*/9);

  std::printf("continuous off: batches=%llu joins=%llu mean-wait=%.4fs "
              "p99=%.4fs\n",
              static_cast<unsigned long long>(Off.Batches),
              static_cast<unsigned long long>(Off.Joins),
              Off.MeanQueueWaitSeconds, Off.Latency.P99);
  std::printf("continuous on:  batches=%llu joins=%llu mean-wait=%.4fs "
              "p99=%.4fs\n",
              static_cast<unsigned long long>(On.Batches),
              static_cast<unsigned long long>(On.Joins),
              On.MeanQueueWaitSeconds, On.Latency.P99);
  std::printf("fairness 10:1:  prefix heavy=%llu light=%llu ratio=%.2f "
              "heavy-p99=%.4fs light-p99=%.4fs\n",
              static_cast<unsigned long long>(Fair.PrefixHeavy),
              static_cast<unsigned long long>(Fair.PrefixLight),
              Fair.GoodputRatio, Fair.HeavyLatency.P99,
              Fair.LightLatency.P99);
  std::printf("memoization:    hits=%llu/%llu (%.0f%%) executed=%llu "
              "repeat-p99=%.6fs\n",
              static_cast<unsigned long long>(Memo.Hits),
              static_cast<unsigned long long>(Memo.Total),
              100.0 * Memo.HitRate,
              static_cast<unsigned long long>(Memo.Executed),
              Memo.RepeatLatency.P99);

  // Gate (a): continuous batching strictly reduces mean queue wait at
  // saturation — and does it the honest way, by collapsing batches.
  gate(On.Joins == Stream - 1, "continuous batching joined nothing");
  gate(Off.Joins == 0, "baseline joined batches with the feature off");
  gate(On.Batches < Off.Batches,
       "continuous batching did not reduce batch count");
  gate(On.MeanQueueWaitSeconds < Off.MeanQueueWaitSeconds,
       "continuous batching did not reduce mean queue wait");
  // Gate (b): goodput within 15% of the 10:1 weight ratio, and the
  // favoured tenant's p99 ahead of the unfavoured one's.
  gate(Fair.GoodputRatio > 10.0 * 0.85 && Fair.GoodputRatio < 10.0 * 1.15,
       "weighted goodput ratio outside 10:1 +/- 15%");
  gate(Fair.HeavyLatency.P99 < Fair.LightLatency.P99,
       "heavy tenant's p99 not ahead of light tenant's");
  // Gate (c): >= 90% memo hits, zero extra executions, and hit p99
  // beating even the executed path's median (the point of the cache).
  gate(Memo.HitRate >= 0.9, "memo hit rate below 90%");
  gate(Memo.Executed == Memo.Unique,
       "memoized repeats reached a device (extra executions)");
  gate(Memo.RepeatLatency.P99 < Memo.WarmLatency.P50,
       "memo-hit p99 latency not below executed-path p50");

  writeJson(OutPath, Smoke, Off, On, Fair, Memo);
  return Failures == 0 ? 0 : 1;
}
