//===- bench_serve_engine.cpp - Serving-engine coalescing ablation -----------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation A6: dynamic batch coalescing in the serving engine. A fixed
/// three-tenant workload (Smith-Waterman, Viterbi, forward; pinned
/// problem shapes so requests share ExecutablePlan fingerprints) is
/// replayed against serve::Engine at every point of
/// {coalescing on, off} x {1, 2 devices}. Each batch pays one modelled
/// kernel launch, so coalescing must strictly reduce the busiest
/// device's modelled cycles — equivalently, strictly increase modelled
/// throughput — and the bench exits non-zero if it does not, or if any
/// request finishes with a status other than Ok.
///
/// The engine starts paused and the whole workload is admitted before
/// the drain, so batch composition — and with it every modelled number
/// in the output — is deterministic. Host wall times are recorded for
/// context only; on a small container they mostly measure scheduling
/// noise and are never gated.
///
/// Usage: bench_serve_engine [--smoke] [--out=PATH] [--metrics-out=PATH]
///                           [--seed=N]
///   --smoke            fewer requests per tenant (CI gate)
///   --out=PATH         JSON output path (default BENCH_serve.json)
///   --metrics-out=PATH dump the metrics registry as JSON after the run
///   --seed=N           re-seed the workload (0/absent = baked-in seeds)
///
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "serve/Workload.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace parrec;

namespace {

struct ConfigResult {
  unsigned Devices = 0;
  bool Coalesce = false;
  uint64_t Total = 0;
  uint64_t Ok = 0;
  uint64_t Batches = 0;
  double RequestsPerBatch = 0.0;
  uint64_t ModelledCycles = 0;
  double ModelledSeconds = 0.0;
  double ModelledThroughput = 0.0;
  double WallSeconds = 0.0;
};

serve::WorkloadSpec makeSpec(bool Smoke, uint64_t Seed) {
  // A non-zero --seed re-keys every tenant while keeping the streams
  // decorrelated; 0 keeps the baked-in seeds (historical output).
  uint64_t Mix = Seed ? Seed * 0x9E3779B97F4A7C15ull : 0;
  auto Tenant = [&](const char *Name, const char *Kind, uint64_t Requests,
                    int64_t Length, uint64_t Gap, uint64_t Base) {
    serve::TenantSpec T;
    T.Name = Name;
    T.Kind = Kind;
    T.Requests = Requests;
    // Pinned lengths: the plan fingerprint covers the domain box, so
    // only same-shape requests can share a batch.
    T.MinLength = Length;
    T.MaxLength = Length;
    T.MeanGapTicks = Gap;
    T.Seed = Base ^ Mix;
    return T;
  };
  const uint64_t N = Smoke ? 8 : 24;
  serve::WorkloadSpec Spec;
  Spec.Tenants.push_back(Tenant("blast", "smith_waterman", N, 32, 2, 0x5101));
  Spec.Tenants.push_back(Tenant("genes", "viterbi", N, 48, 3, 0x5202));
  Spec.Tenants.push_back(Tenant("scan", "forward", N, 48, 3, 0x5303));
  return Spec;
}

ConfigResult runConfig(const serve::Workload &W, unsigned Devices,
                       bool Coalesce) {
  serve::Engine::Options Opts;
  Opts.Devices = Devices;
  Opts.QueueCapacity = W.events().size() + 8;
  Opts.MaxBatch = 8;
  Opts.Coalesce = Coalesce;
  // Admit everything before the drain: batch composition, and with it
  // every modelled number, is then deterministic.
  Opts.StartPaused = true;
  serve::Engine E(Opts);

  auto T0 = std::chrono::steady_clock::now();
  serve::ReplayReport Report = serve::replay(E, W);
  auto T1 = std::chrono::steady_clock::now();

  ConfigResult R;
  R.Devices = Devices;
  R.Coalesce = Coalesce;
  R.Total = Report.Total;
  R.Ok = Report.okCount();
  R.Batches = Report.Stats.Batches;
  R.RequestsPerBatch =
      R.Batches ? static_cast<double>(R.Ok) / static_cast<double>(R.Batches)
                : 0.0;
  R.ModelledCycles = Report.ModelledCycles;
  R.ModelledSeconds = Report.ModelledSeconds;
  R.ModelledThroughput =
      Report.ModelledSeconds > 0.0
          ? static_cast<double>(R.Ok) / Report.ModelledSeconds
          : 0.0;
  R.WallSeconds = std::chrono::duration<double>(T1 - T0).count();
  return R;
}

void writeJson(const std::string &Path, bool Smoke, unsigned HostThreads,
               uint64_t Seed, uint64_t Requests,
               const std::vector<ConfigResult> &Results) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    std::exit(2);
  }
  std::fprintf(F, "{\n  \"benchmark\": \"serve_engine_ablation\",\n");
  std::fprintf(F, "  \"mode\": \"%s\",\n", Smoke ? "smoke" : "full");
  std::fprintf(F, "  \"hardware_concurrency\": %u,\n", HostThreads);
  std::fprintf(F, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(Seed));
  std::fprintf(F, "  \"requests\": %llu,\n",
               static_cast<unsigned long long>(Requests));
  std::fprintf(F, "  \"configs\": [\n");
  for (size_t I = 0; I != Results.size(); ++I) {
    const ConfigResult &R = Results[I];
    std::fprintf(F,
                 "    {\"devices\": %u, \"coalesce\": %s, \"ok\": %llu, "
                 "\"batches\": %llu, \"requests_per_batch\": %.3f, "
                 "\"modelled_cycles\": %llu, \"modelled_seconds\": %.9f, "
                 "\"modelled_throughput\": %.1f, "
                 "\"wall_seconds\": %.6f}%s\n",
                 R.Devices, R.Coalesce ? "true" : "false",
                 static_cast<unsigned long long>(R.Ok),
                 static_cast<unsigned long long>(R.Batches),
                 R.RequestsPerBatch,
                 static_cast<unsigned long long>(R.ModelledCycles),
                 R.ModelledSeconds, R.ModelledThroughput, R.WallSeconds,
                 I + 1 == Results.size() ? "" : ",");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  std::string OutPath = "BENCH_serve.json";
  std::string MetricsOut;
  uint64_t Seed = 0;
  for (int I = 1; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Smoke = true;
    else if (std::strncmp(Argv[I], "--out=", 6) == 0)
      OutPath = Argv[I] + 6;
    else if (std::strncmp(Argv[I], "--metrics-out=", 14) == 0)
      MetricsOut = Argv[I] + 14;
    else if (std::strncmp(Argv[I], "--seed=", 7) == 0)
      Seed = std::strtoull(Argv[I] + 7, nullptr, 10);
    else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out=PATH] [--metrics-out=PATH] "
                   "[--seed=N]\n",
                   Argv[0]);
      return 2;
    }
  }

  const unsigned HostThreads = std::thread::hardware_concurrency();
  serve::WorkloadSpec Spec = makeSpec(Smoke, Seed);
  DiagnosticEngine Diags;
  std::optional<serve::Workload> W = serve::Workload::build(Spec, Diags);
  if (!W) {
    std::fprintf(stderr, "bench workload failure:\n%s",
                 Diags.str().c_str());
    return 2;
  }

  std::vector<ConfigResult> Results;
  for (unsigned Devices : {1u, 2u})
    for (bool Coalesce : {false, true})
      Results.push_back(runConfig(*W, Devices, Coalesce));

  writeJson(OutPath, Smoke, HostThreads, Seed, W->events().size(),
            Results);
  if (!MetricsOut.empty()) {
    std::ofstream Out(MetricsOut, std::ios::binary | std::ios::trunc);
    Out << obs::MetricsRegistry::global().snapshot().json() << '\n';
    if (!Out) {
      std::fprintf(stderr, "cannot write metrics to %s\n",
                   MetricsOut.c_str());
      return 2;
    }
  }

  for (const ConfigResult &R : Results)
    std::printf("devices=%u coalesce=%-3s  ok=%llu/%llu  batches=%llu "
                "(%.2f req/batch)  modelled %.6fs (%llu cycles, "
                "%.0f req/s)  wall %.3fs\n",
                R.Devices, R.Coalesce ? "on" : "off",
                static_cast<unsigned long long>(R.Ok),
                static_cast<unsigned long long>(R.Total),
                static_cast<unsigned long long>(R.Batches),
                R.RequestsPerBatch, R.ModelledSeconds,
                static_cast<unsigned long long>(R.ModelledCycles),
                R.ModelledThroughput, R.WallSeconds);

  bool Failed = false;
  for (const ConfigResult &R : Results)
    if (R.Ok != R.Total) {
      std::fprintf(stderr,
                   "FAIL: devices=%u coalesce=%s finished %llu/%llu Ok\n",
                   R.Devices, R.Coalesce ? "on" : "off",
                   static_cast<unsigned long long>(R.Ok),
                   static_cast<unsigned long long>(R.Total));
      Failed = true;
    }
  // The gate: at every device count, coalescing must strictly reduce
  // the busiest device's modelled cycles (one kernel launch per batch).
  for (unsigned Devices : {1u, 2u}) {
    uint64_t On = 0, Off = 0;
    for (const ConfigResult &R : Results)
      if (R.Devices == Devices)
        (R.Coalesce ? On : Off) = R.ModelledCycles;
    if (On >= Off) {
      std::fprintf(stderr,
                   "FAIL: devices=%u coalescing did not reduce modelled "
                   "cycles (%llu on vs %llu off)\n",
                   Devices, static_cast<unsigned long long>(On),
                   static_cast<unsigned long long>(Off));
      Failed = true;
    }
  }
  return Failed ? 1 : 0;
}
