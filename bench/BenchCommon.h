//===- BenchCommon.h - Shared workloads for the figure benches ----*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared between the bench binaries: the case-study DSL sources, seeded
/// synthetic workload builders matching the paper's evaluation shapes,
/// run helpers, and a collector that prints each figure's series as a
/// paper-style table after the google-benchmark run.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_BENCH_BENCHCOMMON_H
#define PARREC_BENCH_BENCHCOMMON_H

#include "baselines/HmmBaselines.h"
#include "baselines/SmithWaterman.h"
#include "bio/Fasta.h"
#include "bio/HmmZoo.h"
#include "obs/Metrics.h"
#include "runtime/CompiledRecurrence.h"

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

namespace parrecbench {

/// The Smith-Waterman recursion of the Section 6.1 case study (linear gap
/// penalty 4, substitution-matrix extension).
inline const char *smithWatermanSource() {
  return "int sw(matrix[protein] m, seq[protein] a, index[a] i,\n"
         "       seq[protein] b, index[b] j) =\n"
         "  if i == 0 then 0\n"
         "  else if j == 0 then 0\n"
         "  else 0 max (sw(i-1, j-1) + m[a[i-1], b[j-1]])\n"
         "       max (sw(i-1, j) - 4) max (sw(i, j-1) - 4)\n";
}

/// The Figure 11 forward algorithm (HMM extension), over any alphabet.
inline const char *forwardSource() {
  return "prob forward(hmm h, state[h] s, seq[*] x, index[x] i) =\n"
         "  if i == 0 then\n"
         "    if s.isstart then 1.0 else 0.0\n"
         "  else\n"
         "    (if s.isend then 1.0 else s.emission[x[i-1]]) *\n"
         "    sum(t in s.transitionsto : t.prob * forward(t.start, "
         "i - 1))\n";
}

/// Collects (figure, series, x, y) points during benchmark runs and
/// prints them as tables afterwards; this regenerates the paper's
/// figures as text.
class FigureTable {
public:
  static FigureTable &instance() {
    static FigureTable Table;
    return Table;
  }

  void record(const std::string &Figure, const std::string &Series,
              int64_t X, double Seconds) {
    Data[Figure][X][Series] = Seconds;
  }

  void printAll() {
    for (const auto &[Figure, Rows] : Data) {
      // Collect the union of series names for the header.
      std::vector<std::string> SeriesNames;
      for (const auto &[X, Cells] : Rows)
        for (const auto &[Name, Value] : Cells) {
          (void)Value;
          bool Known = false;
          for (const std::string &Existing : SeriesNames)
            Known |= Existing == Name;
          if (!Known)
            SeriesNames.push_back(Name);
        }
      std::printf("\n== %s (modelled seconds) ==\n", Figure.c_str());
      std::printf("%12s", "x");
      for (const std::string &Name : SeriesNames)
        std::printf(" %16s", Name.c_str());
      std::printf("\n");
      for (const auto &[X, Cells] : Rows) {
        std::printf("%12lld", static_cast<long long>(X));
        for (const std::string &Name : SeriesNames) {
          auto It = Cells.find(Name);
          if (It == Cells.end())
            std::printf(" %16s", "-");
          else
            std::printf(" %16.6f", It->second);
        }
        std::printf("\n");
      }
    }
  }

private:
  std::map<std::string, std::map<int64_t, std::map<std::string, double>>>
      Data;
};

/// Scan-worker count the bench run helpers pass to every batch
/// (RunOptions::ScanWorkers): 0 shares the host budget with the batch
/// stripe, 1 forces serial scans. Set by benchMain from --scan-workers=.
inline unsigned &benchScanWorkers() {
  static unsigned Workers = 0;
  return Workers;
}

/// Workload-seed override set by benchMain from --seed=. 0 (the default)
/// keeps every builder's baked-in seed, so runs without the flag are
/// bit-identical to historical ones.
inline uint64_t &benchSeed() {
  static uint64_t Seed = 0;
  return Seed;
}

/// Mixes the --seed override into a builder's baked-in base seed.
/// Identity when no override is set; otherwise a splitmix-style blend so
/// distinct builders still draw decorrelated streams under one --seed.
inline uint64_t benchMixSeed(uint64_t Base) {
  uint64_t Override = benchSeed();
  if (!Override)
    return Base;
  return Base ^ (Override * 0x9E3779B97F4A7C15ull);
}

/// Runs registered benchmarks, then prints the figure tables. Every bench
/// binary uses this main. `--metrics-out=<file>` (stripped before
/// google-benchmark sees the arguments) dumps the parrec metrics
/// registry as JSON after the run; `--scan-workers=<n>` (also stripped)
/// sets the wavefront scan-worker count used by the run helpers;
/// `--seed=<n>` (also stripped) re-seeds the synthetic workload builders
/// so a figure can be replicated over independent draws.
inline int benchMain(int Argc, char **Argv) {
  std::string MetricsOut;
  {
    int Out = 1;
    for (int In = 1; In < Argc; ++In) {
      constexpr const char *MetricsFlag = "--metrics-out=";
      constexpr const char *ScanFlag = "--scan-workers=";
      constexpr const char *SeedFlag = "--seed=";
      if (std::strncmp(Argv[In], MetricsFlag, std::strlen(MetricsFlag)) ==
          0)
        MetricsOut = Argv[In] + std::strlen(MetricsFlag);
      else if (std::strncmp(Argv[In], ScanFlag, std::strlen(ScanFlag)) ==
               0)
        benchScanWorkers() = static_cast<unsigned>(
            std::atoi(Argv[In] + std::strlen(ScanFlag)));
      else if (std::strncmp(Argv[In], SeedFlag, std::strlen(SeedFlag)) ==
               0)
        benchSeed() = std::strtoull(Argv[In] + std::strlen(SeedFlag),
                                    nullptr, 10);
      else
        Argv[Out++] = Argv[In];
    }
    Argc = Out;
  }
  ::benchmark::Initialize(&Argc, Argv);
  if (::benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  FigureTable::instance().printAll();
  if (!MetricsOut.empty()) {
    std::ofstream Out(MetricsOut, std::ios::binary | std::ios::trunc);
    Out << parrec::obs::MetricsRegistry::global().snapshot().json()
        << '\n';
    if (!Out) {
      std::fprintf(stderr, "bench: cannot write metrics to '%s'\n",
                   MetricsOut.c_str());
      return 1;
    }
  }
  return 0;
}

//===----------------------------------------------------------------------===//
// Workload builders (all deterministic in their seeds)
//===----------------------------------------------------------------------===//

/// The protein database the Smith-Waterman figure searches. The paper
/// used a real sequence database; shape-preserving substitute: uniform
/// random proteins with the length spread of typical entries.
inline parrec::bio::SequenceDatabase
proteinDatabase(unsigned Count, int64_t MinLength = 30,
                int64_t MaxLength = 600) {
  return parrec::bio::randomDatabase(parrec::bio::Alphabet::protein(),
                                     Count, MinLength, MaxLength,
                                     benchMixSeed(0xB105));
}

/// DNA sequences drawn from the gene-finder model itself (so likelihoods
/// are meaningful), padded from uniform DNA when sampling ends early.
inline parrec::bio::SequenceDatabase
geneDatabase(const parrec::bio::Hmm &Model, unsigned Count,
             int64_t Length) {
  parrec::bio::SequenceDatabase Db;
  Db.reserve(Count);
  parrec::SplitMix64 Rng(benchMixSeed(0x6E43));
  for (unsigned I = 0; I != Count; ++I) {
    std::string S = Model.sample(Rng.next(),
                                 static_cast<size_t>(Length));
    while (static_cast<int64_t>(S.size()) < Length)
      S += Model.alphabet().charAt(
          static_cast<unsigned>(Rng.nextBelow(Model.alphabet().size())));
    S.resize(static_cast<size_t>(Length));
    Db.emplace_back("g" + std::to_string(I), std::move(S));
  }
  return Db;
}

/// Protein sequences for the profile-HMM searches.
inline parrec::bio::SequenceDatabase proteinReads(unsigned Count,
                                                  int64_t Length) {
  return parrec::bio::randomDatabase(parrec::bio::Alphabet::protein(),
                                     Count, Length, Length,
                                     benchMixSeed(0xF00D));
}

//===----------------------------------------------------------------------===//
// Run helpers
//===----------------------------------------------------------------------===//

/// Compiles a case-study source once per process.
inline const parrec::runtime::CompiledRecurrence &
compiledOnce(const char *Source) {
  static std::map<std::string, parrec::runtime::CompiledRecurrence>
      Cache;
  auto It = Cache.find(Source);
  if (It == Cache.end()) {
    parrec::DiagnosticEngine Diags;
    auto Compiled =
        parrec::runtime::CompiledRecurrence::compile(Source, Diags);
    if (!Compiled) {
      std::fprintf(stderr, "bench compile failure:\n%s",
                   Diags.str().c_str());
      std::abort();
    }
    It = Cache.emplace(Source, std::move(*Compiled)).first;
  }
  return It->second;
}

/// ParRec database search with the Smith-Waterman recursion: one problem
/// per subject, table-max scores. Returns modelled GPU seconds.
inline double parrecSwSearch(const parrec::bio::Sequence &Query,
                             const parrec::bio::SequenceDatabase &Db,
                             const parrec::gpu::Device &Device,
                             std::vector<int> *ScoresOut = nullptr) {
  const auto &Fn = compiledOnce(smithWatermanSource());
  const auto &Matrix = parrec::bio::SubstitutionMatrix::blosum62();
  std::vector<std::vector<parrec::codegen::ArgValue>> Problems;
  Problems.reserve(Db.size());
  for (const parrec::bio::Sequence &Subject : Db)
    Problems.push_back({parrec::codegen::ArgValue::ofMatrix(&Matrix),
                        parrec::codegen::ArgValue::ofSeq(&Query),
                        parrec::codegen::ArgValue(),
                        parrec::codegen::ArgValue::ofSeq(&Subject),
                        parrec::codegen::ArgValue()});
  parrec::DiagnosticEngine Diags;
  parrec::runtime::RunOptions Options;
  Options.ScanWorkers = benchScanWorkers();
  auto Batch = Fn.runGpuBatch(Problems, Device, Diags, Options);
  if (!Batch) {
    std::fprintf(stderr, "bench run failure:\n%s", Diags.str().c_str());
    std::abort();
  }
  if (ScoresOut) {
    ScoresOut->clear();
    for (const parrec::runtime::RunResult &R : Batch->Problems)
      ScoresOut->push_back(static_cast<int>(R.TableMax));
  }
  return Batch->Seconds;
}

/// ParRec database scoring with the forward recursion. Returns modelled
/// GPU seconds.
inline double
parrecForwardSearch(const parrec::bio::Hmm &Model,
                    const parrec::bio::SequenceDatabase &Db,
                    const parrec::gpu::Device &Device,
                    std::vector<double> *LogLiksOut = nullptr) {
  const auto &Fn = compiledOnce(forwardSource());
  std::vector<std::vector<parrec::codegen::ArgValue>> Problems;
  Problems.reserve(Db.size());
  for (const parrec::bio::Sequence &Seq : Db)
    Problems.push_back({parrec::codegen::ArgValue::ofHmm(&Model),
                        parrec::codegen::ArgValue(),
                        parrec::codegen::ArgValue::ofSeq(&Seq),
                        parrec::codegen::ArgValue()});
  parrec::DiagnosticEngine Diags;
  parrec::runtime::RunOptions Options;
  Options.ScanWorkers = benchScanWorkers();
  auto Batch = Fn.runGpuBatch(Problems, Device, Diags, Options);
  if (!Batch) {
    std::fprintf(stderr, "bench run failure:\n%s", Diags.str().c_str());
    std::abort();
  }
  if (LogLiksOut) {
    LogLiksOut->clear();
    for (const parrec::runtime::RunResult &R : Batch->Problems)
      LogLiksOut->push_back(R.RootValue);
  }
  return Batch->Seconds;
}

} // namespace parrecbench

#endif // PARREC_BENCH_BENCHCOMMON_H
