//===- bench_pipeline.cpp - Systolic batch-overlap ablation -------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation A8: cross-problem pipelined execution. A single-tenant
/// short-sequence Smith-Waterman workload (pinned length, so every
/// request shares an ExecutablePlan fingerprint and coalesces freely)
/// is replayed against serve::Engine on a deliberately *saturated*
/// cost model — two multiprocessors — at every point of
/// MaxBatch {1, 4, 8} x {barrier, pipelined, pipelined+packed}.
///
/// The gates mirror the contract of RunOptions::Pipeline:
///   - every request finishes Ok in every configuration;
///   - responses are bit-identical across the three modes at each
///     MaxBatch (RootValue, TableMax, Cells, Partitions, per-problem
///     Cycles — everything except modelled wall-clock);
///   - at MaxBatch >= 4 the pipelined busiest-device cycles are
///     *strictly* below barrier, and packing is never worse than plain
///     pipelining; equality across modes is allowed only for singleton
///     batches (MaxBatch == 1), where it is required.
///
/// The engine starts paused and the whole workload is admitted before
/// the drain, so batch composition — and with it every modelled number
/// — is deterministic. Host wall times are context only, never gated.
///
/// Usage: bench_pipeline [--smoke] [--out=PATH] [--metrics-out=PATH]
///                       [--seed=N]
///   --smoke            fewer requests (CI gate)
///   --out=PATH         JSON output path (default BENCH_pipeline.json)
///   --metrics-out=PATH dump the metrics registry as JSON after the run
///   --seed=N           re-seed the workload (0/absent = baked-in seed)
///
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "serve/Workload.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace parrec;

namespace {

enum class Mode { Barrier, Pipelined, Packed };

const char *modeName(Mode M) {
  switch (M) {
  case Mode::Barrier:
    return "barrier";
  case Mode::Pipelined:
    return "pipelined";
  case Mode::Packed:
    return "packed";
  }
  return "?";
}

struct ConfigResult {
  size_t MaxBatch = 0;
  Mode M = Mode::Barrier;
  uint64_t Total = 0;
  uint64_t Ok = 0;
  uint64_t Batches = 0;
  /// Busiest-device modelled cycles (the gated number).
  uint64_t ModelledCycles = 0;
  /// Per-request modelled completion cycles, batch-start domain.
  uint64_t CompletionP50 = 0;
  uint64_t CompletionMax = 0;
  double WallSeconds = 0.0;
  std::vector<serve::Response> Responses; // Submission order.
};

serve::WorkloadSpec makeSpec(bool Smoke, uint64_t Seed) {
  // Short pinned-length problems: a length-12 query fills well under a
  // 32-lane block, so small-problem packing has lanes to recover, and
  // two modelled multiprocessors saturate at batch >= 3 so the tandem
  // recurrence has something to overlap.
  serve::TenantSpec T;
  T.Name = "short";
  T.Kind = "smith_waterman";
  T.Requests = Smoke ? 8 : 24;
  T.MinLength = 12;
  T.MaxLength = 12;
  T.MeanGapTicks = 1;
  T.Seed = 0x7101 ^ (Seed ? Seed * 0x9E3779B97F4A7C15ull : 0);
  serve::WorkloadSpec Spec;
  Spec.Tenants.push_back(T);
  return Spec;
}

ConfigResult runConfig(const serve::Workload &W, size_t MaxBatch, Mode M) {
  serve::Engine::Options Opts;
  Opts.Model.NumMultiprocessors = 2; // Saturated on purpose.
  Opts.Devices = 1;
  Opts.QueueCapacity = W.events().size() + 8;
  Opts.MaxBatch = MaxBatch;
  Opts.Coalesce = true;
  Opts.Pipeline = M != Mode::Barrier;
  Opts.PackSmall = M == Mode::Packed;
  // Admit everything before the drain: batch composition, and with it
  // every modelled number, is then deterministic.
  Opts.StartPaused = true;
  serve::Engine E(Opts);

  auto T0 = std::chrono::steady_clock::now();
  std::vector<serve::Future> Futures;
  Futures.reserve(W.events().size());
  for (const serve::ReplayEvent &Ev : W.events()) {
    serve::Request Req;
    Req.Fn = Ev.Fn;
    Req.Args = Ev.Args;
    Req.Priority = Ev.Priority;
    Req.Tenant = Ev.Tenant;
    Futures.push_back(E.submit(std::move(Req)));
  }
  E.shutdown(serve::Engine::ShutdownMode::Drain);
  auto T1 = std::chrono::steady_clock::now();

  ConfigResult R;
  R.MaxBatch = MaxBatch;
  R.M = M;
  R.Total = W.events().size();
  std::vector<uint64_t> Completions;
  for (const serve::Future &F : Futures) {
    const serve::Response &Resp = F.wait();
    if (Resp.St == serve::Status::Ok) {
      ++R.Ok;
      Completions.push_back(Resp.CompletionCycle);
    }
    R.Responses.push_back(Resp);
  }
  serve::Engine::Stats Stats = E.stats();
  R.Batches = Stats.Batches;
  R.ModelledCycles = Stats.maxDeviceCycles();
  if (!Completions.empty()) {
    std::sort(Completions.begin(), Completions.end());
    R.CompletionP50 = Completions[(Completions.size() - 1) / 2];
    R.CompletionMax = Completions.back();
  }
  R.WallSeconds = std::chrono::duration<double>(T1 - T0).count();
  return R;
}

/// Bit-level equality of the mode-invariant response fields. Doubles are
/// compared by representation — the contract is bit-identity, not
/// tolerance.
bool sameBits(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

bool identicalResponses(const ConfigResult &A, const ConfigResult &B,
                        std::string &Why) {
  if (A.Responses.size() != B.Responses.size()) {
    Why = "response count";
    return false;
  }
  for (size_t I = 0; I != A.Responses.size(); ++I) {
    const exec::RunResult &X = A.Responses[I].Result;
    const exec::RunResult &Y = B.Responses[I].Result;
    if (A.Responses[I].St != B.Responses[I].St) {
      Why = "status of request " + std::to_string(I);
      return false;
    }
    if (!sameBits(X.RootValue, Y.RootValue) ||
        !sameBits(X.TableMax, Y.TableMax)) {
      Why = "values of request " + std::to_string(I);
      return false;
    }
    if (X.Cells != Y.Cells || X.Partitions != Y.Partitions ||
        X.Cycles != Y.Cycles) {
      Why = "shape/cycles of request " + std::to_string(I);
      return false;
    }
  }
  return true;
}

void writeJson(const std::string &Path, bool Smoke, unsigned HostThreads,
               uint64_t Seed, uint64_t Requests,
               const std::vector<ConfigResult> &Results) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    std::exit(2);
  }
  std::fprintf(F, "{\n  \"benchmark\": \"pipeline_ablation\",\n");
  std::fprintf(F, "  \"mode\": \"%s\",\n", Smoke ? "smoke" : "full");
  std::fprintf(F, "  \"hardware_concurrency\": %u,\n", HostThreads);
  std::fprintf(F, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(Seed));
  std::fprintf(F, "  \"requests\": %llu,\n",
               static_cast<unsigned long long>(Requests));
  std::fprintf(F, "  \"multiprocessors\": 2,\n");
  std::fprintf(F, "  \"configs\": [\n");
  for (size_t I = 0; I != Results.size(); ++I) {
    const ConfigResult &R = Results[I];
    std::fprintf(F,
                 "    {\"max_batch\": %zu, \"mode\": \"%s\", "
                 "\"ok\": %llu, \"batches\": %llu, "
                 "\"modelled_cycles\": %llu, "
                 "\"completion_p50\": %llu, \"completion_max\": %llu, "
                 "\"wall_seconds\": %.6f}%s\n",
                 R.MaxBatch, modeName(R.M),
                 static_cast<unsigned long long>(R.Ok),
                 static_cast<unsigned long long>(R.Batches),
                 static_cast<unsigned long long>(R.ModelledCycles),
                 static_cast<unsigned long long>(R.CompletionP50),
                 static_cast<unsigned long long>(R.CompletionMax),
                 R.WallSeconds, I + 1 == Results.size() ? "" : ",");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  std::string OutPath = "BENCH_pipeline.json";
  std::string MetricsOut;
  uint64_t Seed = 0;
  for (int I = 1; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Smoke = true;
    else if (std::strncmp(Argv[I], "--out=", 6) == 0)
      OutPath = Argv[I] + 6;
    else if (std::strncmp(Argv[I], "--metrics-out=", 14) == 0)
      MetricsOut = Argv[I] + 14;
    else if (std::strncmp(Argv[I], "--seed=", 7) == 0)
      Seed = std::strtoull(Argv[I] + 7, nullptr, 10);
    else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out=PATH] [--metrics-out=PATH] "
                   "[--seed=N]\n",
                   Argv[0]);
      return 2;
    }
  }

  const unsigned HostThreads = std::thread::hardware_concurrency();
  serve::WorkloadSpec Spec = makeSpec(Smoke, Seed);
  DiagnosticEngine Diags;
  std::optional<serve::Workload> W = serve::Workload::build(Spec, Diags);
  if (!W) {
    std::fprintf(stderr, "bench workload failure:\n%s",
                 Diags.str().c_str());
    return 2;
  }

  const size_t Batches[] = {1, 4, 8};
  const Mode Modes[] = {Mode::Barrier, Mode::Pipelined, Mode::Packed};
  std::vector<ConfigResult> Results;
  for (size_t MaxBatch : Batches)
    for (Mode M : Modes)
      Results.push_back(runConfig(*W, MaxBatch, M));

  writeJson(OutPath, Smoke, HostThreads, Seed, W->events().size(),
            Results);
  if (!MetricsOut.empty()) {
    std::ofstream Out(MetricsOut, std::ios::binary | std::ios::trunc);
    Out << obs::MetricsRegistry::global().snapshot().json() << '\n';
    if (!Out) {
      std::fprintf(stderr, "cannot write metrics to %s\n",
                   MetricsOut.c_str());
      return 2;
    }
  }

  for (const ConfigResult &R : Results)
    std::printf("max_batch=%zu mode=%-9s  ok=%llu/%llu  batches=%llu  "
                "busiest device %llu cycles  completion p50/max "
                "%llu/%llu  wall %.3fs\n",
                R.MaxBatch, modeName(R.M),
                static_cast<unsigned long long>(R.Ok),
                static_cast<unsigned long long>(R.Total),
                static_cast<unsigned long long>(R.Batches),
                static_cast<unsigned long long>(R.ModelledCycles),
                static_cast<unsigned long long>(R.CompletionP50),
                static_cast<unsigned long long>(R.CompletionMax),
                R.WallSeconds);

  bool Failed = false;
  for (const ConfigResult &R : Results)
    if (R.Ok != R.Total) {
      std::fprintf(stderr,
                   "FAIL: max_batch=%zu mode=%s finished %llu/%llu Ok\n",
                   R.MaxBatch, modeName(R.M),
                   static_cast<unsigned long long>(R.Ok),
                   static_cast<unsigned long long>(R.Total));
      Failed = true;
    }

  auto Find = [&](size_t MaxBatch, Mode M) -> const ConfigResult & {
    for (const ConfigResult &R : Results)
      if (R.MaxBatch == MaxBatch && R.M == M)
        return R;
    std::fprintf(stderr, "internal: missing config\n");
    std::exit(2);
  };

  for (size_t MaxBatch : Batches) {
    const ConfigResult &Barrier = Find(MaxBatch, Mode::Barrier);
    const ConfigResult &Piped = Find(MaxBatch, Mode::Pipelined);
    const ConfigResult &Packed = Find(MaxBatch, Mode::Packed);

    // Gate 1: results are bit-identical across the three modes.
    std::string Why;
    for (const ConfigResult *R : {&Piped, &Packed})
      if (!identicalResponses(Barrier, *R, Why)) {
        std::fprintf(stderr,
                     "FAIL: max_batch=%zu mode=%s responses differ from "
                     "barrier (%s)\n",
                     MaxBatch, modeName(R->M), Why.c_str());
        Failed = true;
      }

    // Gate 2: the overlap win. Singleton batches have one group per
    // launch, so all three modes must agree exactly; from MaxBatch 4 the
    // tandem recurrence must strictly beat the barrier, and packing must
    // never lose to plain pipelining.
    if (MaxBatch == 1) {
      if (Piped.ModelledCycles != Barrier.ModelledCycles ||
          Packed.ModelledCycles != Barrier.ModelledCycles) {
        std::fprintf(stderr,
                     "FAIL: max_batch=1 modes disagree on modelled cycles "
                     "(%llu barrier, %llu pipelined, %llu packed)\n",
                     static_cast<unsigned long long>(Barrier.ModelledCycles),
                     static_cast<unsigned long long>(Piped.ModelledCycles),
                     static_cast<unsigned long long>(Packed.ModelledCycles));
        Failed = true;
      }
    } else {
      if (Piped.ModelledCycles >= Barrier.ModelledCycles) {
        std::fprintf(stderr,
                     "FAIL: max_batch=%zu pipelining did not strictly "
                     "reduce busiest-device cycles (%llu vs %llu "
                     "barrier)\n",
                     MaxBatch,
                     static_cast<unsigned long long>(Piped.ModelledCycles),
                     static_cast<unsigned long long>(Barrier.ModelledCycles));
        Failed = true;
      }
      if (Packed.ModelledCycles > Piped.ModelledCycles) {
        std::fprintf(stderr,
                     "FAIL: max_batch=%zu packing lost to plain "
                     "pipelining (%llu vs %llu)\n",
                     MaxBatch,
                     static_cast<unsigned long long>(Packed.ModelledCycles),
                     static_cast<unsigned long long>(Piped.ModelledCycles));
        Failed = true;
      }
    }
  }
  return Failed ? 1 : 0;
}
