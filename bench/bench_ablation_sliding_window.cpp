//===- bench_ablation_sliding_window.cpp - Section 4.8 ablation ---------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation A1 (DESIGN.md): the sliding-window optimisation of
/// Section 4.8. With the window, intermediate values fit in shared
/// memory, "almost eliminating the significant latency to global
/// memory"; without it the full table spills to global memory as the
/// problem grows. We sweep edit-distance problem sizes and report
/// modelled time and table footprint for both configurations.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace parrec;
using namespace parrecbench;

namespace {

const char *EditDistanceSource =
    "int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =\n"
    "  if i == 0 then j\n"
    "  else if j == 0 then i\n"
    "  else if s[i-1] == t[j-1] then d(i-1, j-1)\n"
    "  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1\n";

constexpr const char *FigureName =
    "Ablation A1: sliding window (edit distance, n x n)";

void runOne(benchmark::State &State, bool UseWindow) {
  const auto &Fn = compiledOnce(EditDistanceSource);
  int64_t N = State.range(0);
  bio::Sequence S =
      bio::randomSequence(bio::Alphabet::english(), N, 11, "s");
  bio::Sequence T =
      bio::randomSequence(bio::Alphabet::english(), N, 22, "t");
  std::vector<codegen::ArgValue> Args = {
      codegen::ArgValue::ofSeq(&S), codegen::ArgValue(),
      codegen::ArgValue::ofSeq(&T), codegen::ArgValue()};

  gpu::Device Device;
  runtime::RunOptions Options;
  Options.UseSlidingWindow = UseWindow;

  DiagnosticEngine Diags;
  std::optional<runtime::RunResult> R;
  for (auto _ : State)
    R = Fn.runGpu(Args, Device, Diags, Options);
  if (!R) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    std::abort();
  }
  double Seconds = Device.costModel().gpuSeconds(R->Cycles);
  State.counters["modelled_s"] = Seconds;
  State.counters["table_bytes"] =
      static_cast<double>(R->Metrics.TableBytes);
  FigureTable::instance().record(
      FigureName, UseWindow ? "window" : "full_table", N, Seconds);
}

void BM_Window(benchmark::State &State) { runOne(State, true); }
void BM_FullTable(benchmark::State &State) { runOne(State, false); }

void sizes(benchmark::internal::Benchmark *B) {
  for (int64_t N : {50, 100, 200, 400, 800})
    B->Arg(N);
  B->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Window)->Apply(sizes);
BENCHMARK(BM_FullTable)->Apply(sizes);

} // namespace

int main(int Argc, char **Argv) { return benchMain(Argc, Argv); }
