#!/usr/bin/env python3
"""Validate a Prometheus text-exposition file written by parrec.

Checks, line by line:
  * every line is either `# TYPE <family> <counter|summary|histogram>`
    or a sample `name[{labels}] value`;
  * each family has exactly one TYPE line, appearing before its samples;
  * metric names stay inside [a-zA-Z_:][a-zA-Z0-9_:]*;
  * label blocks parse ({k="v",...} with \\\\, \\" and \\n escapes only);
  * no duplicate (name, label set) sample;
  * histogram bucket series are cumulative, end with le="+Inf", and the
    +Inf bucket equals the series' _count sample.

Usage: check_prom.py FILE [--require FAMILY]...
Exits non-zero with a message on the first violation.
"""

import argparse
import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|summary|histogram)$")
# One label: key="value" where value allows only \\, \" and \n escapes.
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\\\|\\"|\\n)*)"')


def fail(lineno, msg):
    sys.exit(f"check_prom: line {lineno}: {msg}")


def parse_labels(block, lineno):
    """Parses the inside of a {...} block into a sorted label tuple."""
    labels = []
    pos = 0
    while pos < len(block):
        m = LABEL_RE.match(block, pos)
        if not m:
            fail(lineno, f"bad label syntax at ...{block[pos:]!r}")
        labels.append((m.group(1), m.group(2)))
        pos = m.end()
        if pos < len(block):
            if block[pos] != ",":
                fail(lineno, f"expected ',' between labels at ...{block[pos:]!r}")
            pos += 1
    return tuple(labels)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("file")
    ap.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="FAMILY",
        help="fail unless this family has a TYPE line and at least one sample",
    )
    args = ap.parse_args()

    types = {}  # family -> type
    seen_samples = set()  # (name, labels)
    families_with_samples = set()
    # (family, non-le labels) -> [(le, cumulative)] in file order.
    buckets = {}
    counts = {}  # (family, labels) -> _count value
    lines = 0

    with open(args.file) as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.rstrip("\n")
            if not line:
                fail(lineno, "empty line")
            lines += 1
            if line.startswith("#"):
                m = TYPE_RE.match(line)
                if not m:
                    fail(lineno, f"unrecognised comment {line!r}")
                family = m.group(1)
                if family in types:
                    fail(lineno, f"duplicate TYPE line for {family}")
                types[family] = m.group(2)
                continue

            m = NAME_RE.match(line)
            if not m:
                fail(lineno, f"bad metric name in {line!r}")
            name = m.group(0)
            rest = line[m.end() :]
            labels = ()
            if rest.startswith("{"):
                close = rest.find("}")
                if close < 0:
                    fail(lineno, "unterminated label block")
                labels = parse_labels(rest[1:close], lineno)
                rest = rest[close + 1 :]
            if not rest.startswith(" "):
                fail(lineno, f"expected ' value' after sample name in {line!r}")
            try:
                value = float(rest[1:])
            except ValueError:
                fail(lineno, f"bad sample value {rest[1:]!r}")

            key = (name, labels)
            if key in seen_samples:
                fail(lineno, f"duplicate sample {name}{dict(labels)}")
            seen_samples.add(key)

            # A sample belongs to the longest declared family that is a
            # prefix of its name (histogram/summary emit _bucket/_sum/
            # _count under the family's TYPE line).
            family = None
            for suffix in ("", "_bucket", "_sum", "_count"):
                if suffix and name.endswith(suffix):
                    base = name[: -len(suffix)]
                else:
                    base = name if not suffix else None
                if base and base in types:
                    family = base
                    break
            if family is None:
                fail(lineno, f"sample {name} has no TYPE line")
            families_with_samples.add(family)

            if name.endswith("_bucket") and types.get(family) == "histogram":
                le = dict(labels).get("le")
                if le is None:
                    fail(lineno, f"histogram bucket {name} lacks an le label")
                series = tuple(kv for kv in labels if kv[0] != "le")
                buckets.setdefault((family, series), []).append((le, value, lineno))
            if name.endswith("_count") and types.get(family) == "histogram":
                counts[(family, labels)] = (value, lineno)

    for (family, series), rows in buckets.items():
        prev = -1.0
        for le, cumulative, lineno in rows:
            if cumulative < prev:
                fail(lineno, f"{family}_bucket cumulative count decreases")
            prev = cumulative
        last_le, last_value, lineno = rows[-1]
        if last_le != "+Inf":
            fail(lineno, f"{family}_bucket series does not end with le=\"+Inf\"")
        count = counts.get((family, series))
        if count is None:
            fail(lineno, f"{family} histogram series has buckets but no _count")
        if count[0] != last_value:
            fail(count[1], f"{family}_count != le=\"+Inf\" bucket ({count[0]} vs {last_value})")

    for family in args.require:
        if family not in types:
            sys.exit(f"check_prom: required family {family} has no TYPE line")
        if family not in families_with_samples:
            sys.exit(f"check_prom: required family {family} has no samples")

    if lines == 0:
        sys.exit("check_prom: file is empty")
    print(
        f"check_prom: OK: {len(seen_samples)} samples across "
        f"{len(types)} families in {args.file}"
    )


if __name__ == "__main__":
    main()
