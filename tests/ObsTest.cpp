//===- ObsTest.cpp - Tests for the observability layer ------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the tracing facility (span nesting/ordering, Chrome trace-event
/// JSON well-formedness), the metrics registry (snapshot determinism,
/// plan-cache registration), and the simulator profiling depth: the
/// per-partition timeline must sum exactly to the run's modelled cycle
/// and cell totals, and tracing must never change results. Also checks
/// that the serving engine's serve.* counters, distributions and spans
/// land in the global registry and trace.
///
//===----------------------------------------------------------------------===//

#include "bio/Fasta.h"
#include "compiler/Pipeline.h"
#include "exec/PlanCache.h"
#include "gpu/Device.h"
#include "obs/Export.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "runtime/CompiledRecurrence.h"
#include "serve/Engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

using namespace parrec;
using namespace parrec::obs;
using codegen::ArgValue;
using runtime::CompiledRecurrence;

namespace {

/// RAII guard: resets the global tracer and restores the disabled state,
/// so tests cannot leak trace state into each other.
struct TracerSandbox {
  TracerSandbox() {
    Tracer::instance().disable();
    Tracer::instance().reset();
  }
  ~TracerSandbox() {
    Tracer::instance().disable();
    Tracer::instance().reset();
  }
};

//===----------------------------------------------------------------------===//
// A minimal JSON parser, used to check the exported trace parses back.
//===----------------------------------------------------------------------===//

class JsonValidator {
public:
  explicit JsonValidator(const std::string &Text) : Text(Text) {}

  /// True iff the whole text is exactly one valid JSON value.
  bool valid() {
    Pos = 0;
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == Text.size();
  }

private:
  const std::string &Text;
  size_t Pos = 0;

  bool eof() const { return Pos >= Text.size(); }
  char peek() const { return Text[Pos]; }

  void skipWs() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++Pos;
  }

  bool literal(const char *Word) {
    size_t Len = std::strlen(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return false;
    Pos += Len;
    return true;
  }

  bool string() {
    if (eof() || peek() != '"')
      return false;
    ++Pos;
    while (!eof() && peek() != '"') {
      if (peek() == '\\') {
        ++Pos;
        if (eof())
          return false;
        char Escape = peek();
        if (Escape == 'u') {
          for (int I = 0; I < 4; ++I) {
            ++Pos;
            if (eof() || !std::isxdigit(static_cast<unsigned char>(peek())))
              return false;
          }
        } else if (!std::strchr("\"\\/bfnrt", Escape)) {
          return false;
        }
      } else if (static_cast<unsigned char>(peek()) < 0x20) {
        return false; // Control characters must be escaped.
      }
      ++Pos;
    }
    if (eof())
      return false;
    ++Pos; // Closing quote.
    return true;
  }

  bool number() {
    size_t Start = Pos;
    if (!eof() && peek() == '-')
      ++Pos;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
      ++Pos;
    if (Pos == Start || (Text[Start] == '-' && Pos == Start + 1))
      return false;
    if (!eof() && peek() == '.') {
      ++Pos;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++Pos;
      if (!eof() && (peek() == '+' || peek() == '-'))
        ++Pos;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    return true;
  }

  bool object() {
    ++Pos; // '{'
    skipWs();
    if (!eof() && peek() == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (eof() || peek() != ':')
        return false;
      ++Pos;
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (eof())
        return false;
      if (peek() == '}') {
        ++Pos;
        return true;
      }
      if (peek() != ',')
        return false;
      ++Pos;
    }
  }

  bool array() {
    ++Pos; // '['
    skipWs();
    if (!eof() && peek() == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (eof())
        return false;
      if (peek() == ']') {
        ++Pos;
        return true;
      }
      if (peek() != ',')
        return false;
      ++Pos;
    }
  }

  bool value() {
    if (eof())
      return false;
    switch (peek()) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }
};

const char *EditDistanceSource =
    "int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =\n"
    "  if i == 0 then j\n"
    "  else if j == 0 then i\n"
    "  else if s[i-1] == t[j-1] then d(i-1, j-1)\n"
    "  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1\n";

CompiledRecurrence compileOrDie(const char *Source) {
  DiagnosticEngine Diags;
  auto Compiled = CompiledRecurrence::compile(Source, Diags);
  EXPECT_TRUE(Compiled.has_value()) << Diags.str();
  return std::move(*Compiled);
}

std::vector<ArgValue> editDistanceArgs(const bio::Sequence &S,
                                       const bio::Sequence &T) {
  return {ArgValue::ofSeq(&S), ArgValue(), ArgValue::ofSeq(&T), ArgValue()};
}

} // namespace

//===----------------------------------------------------------------------===//
// Spans
//===----------------------------------------------------------------------===//

TEST(TraceTest, DisabledSpansRecordNothing) {
  TracerSandbox Sandbox;
  {
    Span S("should.not.appear");
    S.arg("key", int64_t(1));
    EXPECT_FALSE(S.active());
  }
  EXPECT_TRUE(Tracer::instance().hostEvents().empty());
}

TEST(TraceTest, SpanNestingAndOrdering) {
  TracerSandbox Sandbox;
  Tracer::instance().enable();
  {
    Span Outer("outer");
    Outer.arg("phase", "test");
    {
      Span First("inner.first");
      (void)First;
    }
    {
      Span Second("inner.second");
      Second.arg("n", int64_t(42));
    }
  }
  Tracer::instance().disable();

  std::vector<TraceEvent> Events = Tracer::instance().hostEvents();
  ASSERT_EQ(Events.size(), 3u);
  // Sorted for display: the enclosing span precedes its children even
  // though it was recorded last (it closes last).
  EXPECT_EQ(Events[0].Name, "outer");
  EXPECT_EQ(Events[1].Name, "inner.first");
  EXPECT_EQ(Events[2].Name, "inner.second");
  // Children nest inside the parent's interval, in start order.
  EXPECT_GE(Events[1].StartNs, Events[0].StartNs);
  EXPECT_LE(Events[1].endNs(), Events[0].endNs());
  EXPECT_GE(Events[2].StartNs, Events[1].endNs());
  EXPECT_LE(Events[2].endNs(), Events[0].endNs());
  ASSERT_EQ(Events[0].Args.size(), 1u);
  EXPECT_EQ(Events[0].Args[0].Key, "phase");
  EXPECT_EQ(Events[0].Args[0].Json, "\"test\"");

  std::string Tree = Tracer::instance().spanTree();
  EXPECT_NE(Tree.find("outer"), std::string::npos);
  EXPECT_NE(Tree.find("    inner.first"), std::string::npos)
      << "children must be indented under the parent:\n"
      << Tree;
}

TEST(TraceTest, ChromeTraceJsonParsesBack) {
  TracerSandbox Sandbox;
  Tracer::instance().enable();
  {
    Span S("phase with \"quotes\" and \\ backslash");
    S.arg("text", "line\nbreak");
    S.arg("count", uint64_t(7));
    S.arg("ratio", 0.25);
    S.arg("flag", true);
  }
  Tracer::instance().recordDevice(
      {/*Block=*/0, "partition 0", /*StartCycles=*/0, /*DurCycles=*/10,
       {{"cells", "5"}}});
  Tracer::instance().recordDevice(
      {/*Block=*/1, "partition 0", /*StartCycles=*/0, /*DurCycles=*/4, {}});
  Tracer::instance().disable();

  std::string Json = Tracer::instance().chromeTraceJson();
  EXPECT_TRUE(JsonValidator(Json).valid()) << Json;
  // The two clock domains are present as separate processes.
  EXPECT_NE(Json.find("\"parrec host (wall clock)\""), std::string::npos);
  EXPECT_NE(Json.find("\"simulated device (ts = modelled cycles)\""),
            std::string::npos);
  // One lane per simulated block.
  EXPECT_NE(Json.find("\"block 0\""), std::string::npos);
  EXPECT_NE(Json.find("\"block 1\""), std::string::npos);
}

TEST(TraceTest, JsonWriterEscapesControlCharacters) {
  EXPECT_EQ(jsonEscape("a\"b\\c\nd\te\x01"
                       "f"),
            "a\\\"b\\\\c\\nd\\te\\u0001f");
  JsonWriter W;
  W.beginObject().key("k\n").value("v\x02").endObject();
  EXPECT_TRUE(JsonValidator(W.str()).valid()) << W.str();
}

//===----------------------------------------------------------------------===//
// Metrics registry
//===----------------------------------------------------------------------===//

TEST(MetricsTest, SnapshotIsDeterministicAndSorted) {
  MetricsRegistry Registry;
  Registry.add("zeta", 3);
  Registry.add("alpha");
  Registry.add("alpha");
  Registry.record("latency", 2.0);
  Registry.record("latency", 4.0);
  Registry.record("latency", 6.0);

  MetricsSnapshot A = Registry.snapshot();
  MetricsSnapshot B = Registry.snapshot();
  EXPECT_EQ(A.json(), B.json());
  EXPECT_EQ(A.str(), B.str());
  EXPECT_TRUE(JsonValidator(A.json()).valid()) << A.json();

  EXPECT_EQ(A.counter("alpha"), 2u);
  EXPECT_EQ(A.counter("zeta"), 3u);
  EXPECT_EQ(A.counter("missing"), 0u);
  ASSERT_EQ(A.Distributions.count("latency"), 1u);
  const Distribution &D = A.Distributions.at("latency");
  EXPECT_EQ(D.Count, 3u);
  EXPECT_DOUBLE_EQ(D.Sum, 12.0);
  EXPECT_DOUBLE_EQ(D.Min, 2.0);
  EXPECT_DOUBLE_EQ(D.Max, 6.0);
  EXPECT_DOUBLE_EQ(D.mean(), 4.0);

  // Sorted by name in both renderings.
  std::string Json = A.json();
  EXPECT_LT(Json.find("\"alpha\""), Json.find("\"zeta\""));

  Registry.reset();
  EXPECT_TRUE(Registry.snapshot().Counters.empty());
}

TEST(MetricsTest, PlanCacheFeedsGlobalRegistry) {
  MetricsSnapshot Before = MetricsRegistry::global().snapshot();

  exec::PlanCache Cache(/*Capacity=*/1);
  exec::PlanKey KeyA, KeyB;
  KeyA.Upper = {4, 4};
  KeyB.Upper = {8, 8};
  auto Plan = std::make_shared<const exec::ExecutablePlan>();
  EXPECT_EQ(Cache.lookup(KeyA), nullptr); // Miss.
  Cache.insert(KeyA, Plan);
  EXPECT_NE(Cache.lookup(KeyA), nullptr); // Hit.
  Cache.insert(KeyB, Plan);               // Evicts KeyA.

  MetricsSnapshot After = MetricsRegistry::global().snapshot();
  EXPECT_EQ(After.counter("plan_cache.misses"),
            Before.counter("plan_cache.misses") + 1);
  EXPECT_EQ(After.counter("plan_cache.hits"),
            Before.counter("plan_cache.hits") + 1);
  EXPECT_EQ(After.counter("plan_cache.evictions"),
            Before.counter("plan_cache.evictions") + 1);
}

//===----------------------------------------------------------------------===//
// Simulator profiling depth
//===----------------------------------------------------------------------===//

TEST(ProfilingTest, TimelineSumsToRunTotals) {
  TracerSandbox Sandbox;
  CompiledRecurrence Fn = compileOrDie(EditDistanceSource);
  bio::Sequence S("s", "kitten"), T("t", "sitting");
  gpu::Device Dev;
  DiagnosticEngine Diags;
  exec::RunOptions Options;
  Options.Trace = true;
  auto Result = Fn.runGpu(editDistanceArgs(S, T), Dev, Diags, Options);
  ASSERT_TRUE(Result.has_value()) << Diags.str();
  ASSERT_NE(Result->Timeline, nullptr);
  ASSERT_FALSE(Result->Timeline->empty());

  uint64_t Cycles = 0, Cells = 0, ThreadCycles = 0;
  for (const gpu::PartitionSample &Sample : *Result->Timeline) {
    // The lockstep model: each partition contributes its slowest
    // thread plus the closing barrier.
    Cycles += Sample.MaxThreadCycles + Sample.BarrierCycles;
    Cells += Sample.Cells;
    ThreadCycles += Sample.SumThreadCycles;
    EXPECT_LE(Sample.SumThreadCycles,
              uint64_t(Sample.Threads) * Sample.MaxThreadCycles);
    double Occupancy = Sample.occupancy();
    EXPECT_GE(Occupancy, 0.0);
    EXPECT_LE(Occupancy, 1.0);
  }
  EXPECT_EQ(Cycles, Result->Metrics.Cycles);
  EXPECT_EQ(Cells, Result->Cells);
  EXPECT_EQ(ThreadCycles, Result->Metrics.ThreadCycles);
  EXPECT_GT(Result->Metrics.occupancy(), 0.0);
  EXPECT_LE(Result->Metrics.occupancy(), 1.0);
}

TEST(ProfilingTest, TracingDoesNotChangeResults) {
  TracerSandbox Sandbox;
  CompiledRecurrence Fn = compileOrDie(EditDistanceSource);
  bio::Sequence S("s", "kitten"), T("t", "sitting");
  gpu::Device Dev;
  DiagnosticEngine Diags;

  exec::RunOptions Plain;
  auto Baseline = Fn.runGpu(editDistanceArgs(S, T), Dev, Diags, Plain);
  ASSERT_TRUE(Baseline.has_value()) << Diags.str();
  EXPECT_EQ(Baseline->Timeline, nullptr);

  Tracer::instance().enable();
  auto Traced = Fn.runGpu(editDistanceArgs(S, T), Dev, Diags, Plain);
  Tracer::instance().disable();
  ASSERT_TRUE(Traced.has_value()) << Diags.str();

  EXPECT_EQ(Baseline->RootValue, Traced->RootValue);
  EXPECT_EQ(Baseline->Cells, Traced->Cells);
  EXPECT_EQ(Baseline->Metrics.Cycles, Traced->Metrics.Cycles);
  EXPECT_EQ(Baseline->Metrics.SharedAccesses,
            Traced->Metrics.SharedAccesses);
  EXPECT_EQ(Baseline->Metrics.GlobalAccesses,
            Traced->Metrics.GlobalAccesses);

  // The traced run collected both host spans and device slices, and the
  // whole trace exports as valid JSON.
  EXPECT_FALSE(Tracer::instance().hostEvents().empty());
  EXPECT_FALSE(Tracer::instance().deviceSlices().empty());
  std::string Json = Tracer::instance().chromeTraceJson();
  EXPECT_TRUE(JsonValidator(Json).valid());
  EXPECT_NE(Json.find("\"exec.scan\""), std::string::npos);
}

TEST(MetricsTest, ParallelScanFeedsGlobalRegistry) {
  TracerSandbox Sandbox;
  CompiledRecurrence Fn = compileOrDie(EditDistanceSource);
  bio::Sequence S("s", "observability"), T("t", "obstreperously");
  gpu::Device Dev;
  DiagnosticEngine Diags;

  // A forked run: every worker count is recorded as a distribution
  // sample, and the fork-join / serial-fallback counters advance (the
  // first partition of a scan is always serial).
  MetricsSnapshot Before = MetricsRegistry::global().snapshot();
  exec::RunOptions Forked;
  Forked.ScanWorkers = 3;
  Forked.ScanGrainCells = 1;
  auto Result = Fn.runGpu(editDistanceArgs(S, T), Dev, Diags, Forked);
  ASSERT_TRUE(Result.has_value()) << Diags.str();
  MetricsSnapshot After = MetricsRegistry::global().snapshot();

  auto It = After.Distributions.find("exec.scan_workers");
  ASSERT_NE(It, After.Distributions.end());
  EXPECT_GE(It->second.Max, 3.0);
  uint64_t SamplesBefore = 0;
  if (auto B = Before.Distributions.find("exec.scan_workers");
      B != Before.Distributions.end())
    SamplesBefore = B->second.Count;
  EXPECT_EQ(It->second.Count, SamplesBefore + 1);
  EXPECT_GT(After.counter("exec.scan_fork_joins"),
            Before.counter("exec.scan_fork_joins"));
  EXPECT_GT(After.counter("exec.scan_serial_partitions"),
            Before.counter("exec.scan_serial_partitions"));

  // A serial run must leave the fork-join counter untouched.
  MetricsSnapshot SerialBefore = MetricsRegistry::global().snapshot();
  exec::RunOptions Serial;
  Serial.ScanWorkers = 1;
  ASSERT_TRUE(
      Fn.runGpu(editDistanceArgs(S, T), Dev, Diags, Serial).has_value())
      << Diags.str();
  MetricsSnapshot SerialAfter = MetricsRegistry::global().snapshot();
  EXPECT_EQ(SerialAfter.counter("exec.scan_fork_joins"),
            SerialBefore.counter("exec.scan_fork_joins"));

  // The traced parallel run exported its fork span.
  Tracer::instance().enable();
  ASSERT_TRUE(
      Fn.runGpu(editDistanceArgs(S, T), Dev, Diags, Forked).has_value())
      << Diags.str();
  Tracer::instance().disable();
  std::string Json = Tracer::instance().chromeTraceJson();
  EXPECT_TRUE(JsonValidator(Json).valid());
  EXPECT_NE(Json.find("\"exec.scan_fork\""), std::string::npos);
}

TEST(MetricsTest, ServingEngineFeedsGlobalRegistry) {
  TracerSandbox Sandbox;
  CompiledRecurrence Fn = compileOrDie(EditDistanceSource);
  bio::Sequence S("s", "metric"), T("t", "metrics");
  auto request = [&] {
    serve::Request Req;
    Req.Fn = &Fn;
    Req.Args = editDistanceArgs(S, T);
    return Req;
  };

  MetricsSnapshot Before = MetricsRegistry::global().snapshot();
  Tracer::instance().enable();
  {
    serve::Engine::Options Opts;
    Opts.QueueCapacity = 2;
    Opts.StartPaused = true;
    serve::Engine Engine(Opts);
    // Two admitted, the third rejected, one of the admitted expired.
    serve::Future A = Engine.submit(request());
    serve::Request Expiring = request();
    Expiring.DeadlineTick = 1;
    serve::Future B = Engine.submit(std::move(Expiring));
    serve::Future C = Engine.submit(request());
    Engine.advanceTo(5);
    Engine.shutdown(serve::Engine::ShutdownMode::Drain);
    EXPECT_EQ(A.wait().St, serve::Status::Ok);
    EXPECT_EQ(B.wait().St, serve::Status::Deadline);
    EXPECT_EQ(C.wait().St, serve::Status::QueueFull);
  }
  Tracer::instance().disable();
  MetricsSnapshot After = MetricsRegistry::global().snapshot();

  EXPECT_EQ(After.counter("serve.requests"),
            Before.counter("serve.requests") + 2);
  EXPECT_EQ(After.counter("serve.rejected"),
            Before.counter("serve.rejected") + 1);
  EXPECT_EQ(After.counter("serve.deadline_shed"),
            Before.counter("serve.deadline_shed") + 1);
  EXPECT_GT(After.counter("serve.batches"),
            Before.counter("serve.batches"));

  // Queue depth, batch occupancy and the latency split all record as
  // log-bucketed histogram families, so percentiles read directly off
  // the registry.
  for (const char *Name :
       {"serve.queue_depth", "serve.coalesced_per_batch",
        "serve.latency.queue_wait_seconds",
        "serve.latency.execute_seconds",
        "serve.latency.total_seconds"}) {
    Histogram Total = After.histogramTotal(Name);
    EXPECT_GT(Total.Count, Before.histogramTotal(Name).Count) << Name;
  }
  // The per-tenant and per-status labelled counters saw the same
  // traffic: two admissions, one ok / one deadline / one queue_full.
  EXPECT_EQ(After.labelledTotal("serve.requests_by_tenant"),
            Before.labelledTotal("serve.requests_by_tenant") + 2);
  EXPECT_EQ(After.labelled("serve.responses",
                           "{status=\"ok\",tenant=\"none\"}"),
            Before.labelled("serve.responses",
                            "{status=\"ok\",tenant=\"none\"}") +
                1);
  EXPECT_EQ(After.labelled("serve.responses",
                           "{status=\"deadline\",tenant=\"none\"}"),
            Before.labelled("serve.responses",
                            "{status=\"deadline\",tenant=\"none\"}") +
                1);
  EXPECT_EQ(After.labelled("serve.responses",
                           "{status=\"queue_full\",tenant=\"none\"}"),
            Before.labelled("serve.responses",
                            "{status=\"queue_full\",tenant=\"none\"}") +
                1);

  // The snapshot JSON (what `parrec serve --stats-out` writes) carries
  // the serve section and parses back.
  std::string Json = After.json();
  EXPECT_TRUE(JsonValidator(Json).valid());
  EXPECT_NE(Json.find("serve.queue_depth"), std::string::npos);

  // The engine's pipeline spans made it into the trace.
  std::string Trace = Tracer::instance().chromeTraceJson();
  EXPECT_TRUE(JsonValidator(Trace).valid());
  EXPECT_NE(Trace.find("\"serve.enqueue\""), std::string::npos);
  EXPECT_NE(Trace.find("\"serve.coalesce\""), std::string::npos);
  EXPECT_NE(Trace.find("\"serve.dispatch\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// The pass pipeline's unified naming: span == pass == metric
//===----------------------------------------------------------------------===//

/// One name per pass, everywhere: the pipeline wrapper emits span
/// "compile.<pass>" and duration distribution "compile.pass.<pass>.ns",
/// both derived from the registered pass name. Every compile.* span in a
/// traced compile+run must map back to a registered pass (or one of the
/// two non-pass wrappers), and every pass that ran must have recorded a
/// duration sample.
TEST(MetricsTest, PassSpanAndMetricNamesMatchRegisteredPasses) {
  TracerSandbox Sandbox;
  MetricsSnapshot Before = MetricsRegistry::global().snapshot();
  Tracer::instance().enable();
  CompiledRecurrence Fn = compileOrDie(EditDistanceSource);
  bio::Sequence S("s", "kitten"), T("t", "sitting");
  gpu::Device Dev;
  DiagnosticEngine Diags;
  ASSERT_TRUE(Fn.runGpu(editDistanceArgs(S, T), Dev, Diags).has_value())
      << Diags.str();
  Tracer::instance().disable();
  MetricsSnapshot After = MetricsRegistry::global().snapshot();

  // Collect the compile.* spans. Anything under that prefix is either a
  // registered pass or one of the two deliberate non-pass wrappers (the
  // whole-function frontend span and the cached conditional-schedule
  // derivation).
  std::vector<std::string> SpanPasses;
  for (const TraceEvent &E : Tracer::instance().hostEvents()) {
    if (E.Name.rfind("compile.", 0) != 0)
      continue;
    std::string Suffix = E.Name.substr(std::strlen("compile."));
    if (Suffix == "function" || Suffix == "conditional_schedules")
      continue;
    EXPECT_TRUE(compiler::isKnownPass(Suffix))
        << "span '" << E.Name << "' does not match any registered pass";
    SpanPasses.push_back(Suffix);
  }

  // The full frontend and default planning pipelines ran under the
  // tracer: every one of their passes produced its span...
  std::vector<std::string> Expected =
      compiler::frontendPipeline().passNames();
  for (const std::string &Name : compiler::planningPipeline().passNames())
    Expected.push_back(Name);
  for (const std::string &Name : Expected) {
    EXPECT_NE(std::find(SpanPasses.begin(), SpanPasses.end(), Name),
              SpanPasses.end())
        << "no compile." << Name << " span recorded";

    // ...and its compile.pass.<name>.ns duration sample, keyed by the
    // same pass name.
    std::string Metric = "compile.pass." + Name + ".ns";
    auto It = After.Distributions.find(Metric);
    ASSERT_NE(It, After.Distributions.end()) << Metric;
    uint64_t CountBefore = 0;
    if (auto B = Before.Distributions.find(Metric);
        B != Before.Distributions.end())
      CountBefore = B->second.Count;
    EXPECT_GT(It->second.Count, CountBefore) << Metric;
  }
}

/// The jit pass follows the same naming law as every other pass — span
/// "compile.jit", metric "compile.pass.jit.ns" — and the JIT machinery
/// itself reports under the "jit." prefix (jit.cache_hits,
/// jit.cache_misses, jit.fallbacks counters; jit.compile_ns duration).
TEST(MetricsTest, JitPassFollowsTheNamingLaw) {
  TracerSandbox Sandbox;
  Tracer::instance().enable();
  CompiledRecurrence Fn = compileOrDie(EditDistanceSource);
  bio::Sequence S("s", "kitten"), T("t", "sitting");
  gpu::Device Dev;
  DiagnosticEngine Diags;
  exec::RunOptions Opts;
  Opts.Evaluator = exec::EvalKind::Jit;
  Opts.JitCacheDir =
      "/tmp/parrec-jit-obstest-" + std::to_string(::getpid());
  ASSERT_TRUE(
      Fn.runGpu(editDistanceArgs(S, T), Dev, Diags, Opts).has_value())
      << Diags.str();
  Tracer::instance().disable();

  EXPECT_TRUE(compiler::isKnownPass("jit"));
  bool SawJitSpan = false;
  for (const TraceEvent &E : Tracer::instance().hostEvents())
    SawJitSpan |= E.Name == "compile.jit";
  EXPECT_TRUE(SawJitSpan) << "no compile.jit span recorded";

  MetricsSnapshot After = MetricsRegistry::global().snapshot();
  EXPECT_NE(After.Distributions.find("compile.pass.jit.ns"),
            After.Distributions.end());
  // Exactly one of hit/miss fired, plus the compile duration on a miss;
  // either way the counters exist under the documented names.
  EXPECT_GE(After.counter("jit.cache_hits") +
                After.counter("jit.cache_misses") +
                After.counter("jit.fallbacks"),
            1u);
}

//===----------------------------------------------------------------------===//
// Labels, log-bucketed histograms, Prometheus text, continuous export
//===----------------------------------------------------------------------===//

TEST(MetricsTest, LabelRenderingIsOrderIndependentAndEscaped) {
  Labels A{{"tenant", "acme"}, {"device", "0"}};
  Labels B{{"device", "0"}, {"tenant", "acme"}};
  EXPECT_EQ(A.render(), B.render());
  EXPECT_EQ(A.render(), "{device=\"0\",tenant=\"acme\"}");
  EXPECT_EQ(Labels{}.render(), "");
  EXPECT_EQ(A.collapsed().render(), "{device=\"other\",tenant=\"other\"}");
  // Hostile values escape so the rendering stays both a stable snapshot
  // key and a syntactically valid Prometheus label block.
  Labels Hostile{{"tenant", "a\"b\\c\nd"}};
  EXPECT_EQ(Hostile.render(), "{tenant=\"a\\\"b\\\\c\\nd\"}");
}

TEST(MetricsTest, LabelCardinalityCapCollapsesOverflowToOther) {
  MetricsRegistry Registry;
  const size_t Cap = MetricsRegistry::MaxSeriesPerFamily;
  const size_t Tenants = Cap + 40;
  for (size_t I = 0; I != Tenants; ++I)
    Registry.add("requests", Labels{{"tenant", "t" + std::to_string(I)}});
  // Admitted series keep absorbing their own traffic after the cap hits.
  Registry.add("requests", Labels{{"tenant", "t0"}});
  // A post-cap name that never got a series still lands in the overflow.
  Registry.add("requests", Labels{{"tenant", "one-more"}});

  MetricsSnapshot S = Registry.snapshot();
  const auto &Series = S.LabelledCounters.at("requests");
  // Cap distinct admitted series plus the single all-"other" overflow.
  EXPECT_EQ(Series.size(), Cap + 1);
  EXPECT_EQ(S.labelledTotal("requests"), Tenants + 2);
  EXPECT_EQ(S.labelled("requests", "{tenant=\"t0\"}"), 2u);
  EXPECT_EQ(S.labelled("requests", "{tenant=\"other\"}"),
            (Tenants - Cap) + 1);
  // The overflow tenants never became series of their own.
  EXPECT_EQ(S.labelled("requests", "{tenant=\"one-more\"}"), 0u);
  EXPECT_EQ(S.labelled("requests",
                       "{tenant=\"t" + std::to_string(Cap) + "\"}"),
            0u);
  EXPECT_TRUE(JsonValidator(S.json()).valid());
}

TEST(MetricsTest, HistogramPercentilesMatchExactSortWithinOneBucket) {
  // Three latency-like shapes: uniform, log-uniform (spans ~19 octaves),
  // and a near-constant distribution with one outlier.
  std::vector<std::vector<double>> Cases;
  {
    std::vector<double> Uniform;
    for (int I = 1; I <= 1000; ++I)
      Uniform.push_back(static_cast<double>(I) * 0.001);
    Cases.push_back(std::move(Uniform));
  }
  {
    std::vector<double> Geometric;
    double V = 1e-6;
    for (int I = 0; I != 200; ++I) {
      Geometric.push_back(V);
      V *= 1.1;
    }
    Cases.push_back(std::move(Geometric));
  }
  {
    std::vector<double> Spike(500, 0.25);
    Spike.push_back(7.0);
    Cases.push_back(std::move(Spike));
  }

  for (const std::vector<double> &Values : Cases) {
    Histogram H;
    for (double V : Values)
      H.record(V);
    EXPECT_EQ(H.Count, Values.size());

    std::vector<double> Sorted = Values;
    std::sort(Sorted.begin(), Sorted.end());
    for (double Q : {0.50, 0.95, 0.99}) {
      size_t Rank =
          static_cast<size_t>(std::ceil(Q * static_cast<double>(Sorted.size())));
      double Exact = Sorted[Rank - 1];
      double Approx = H.percentile(Q);
      EXPECT_NEAR(Approx, Exact, Exact * Histogram::relativeError())
          << "q=" << Q << " n=" << Sorted.size();
    }
    EXPECT_DOUBLE_EQ(H.Min, Sorted.front());
    EXPECT_DOUBLE_EQ(H.Max, Sorted.back());
  }

  // Non-positive samples take the dedicated bucket and resolve to Min.
  Histogram NonPos;
  NonPos.record(-1.0);
  NonPos.record(0.0);
  NonPos.record(2.0);
  EXPECT_EQ(NonPos.NonPositive, 2u);
  EXPECT_DOUBLE_EQ(NonPos.percentile(0.50), -1.0);
  EXPECT_LE(NonPos.percentile(0.99), 2.0);

  // Merging series preserves totals (histogramTotal's contract).
  Histogram Left, Right;
  Left.record(1.0);
  Left.record(4.0);
  Right.record(2.0);
  Left.merge(Right);
  EXPECT_EQ(Left.Count, 3u);
  EXPECT_DOUBLE_EQ(Left.Sum, 7.0);
  EXPECT_DOUBLE_EQ(Left.Min, 1.0);
  EXPECT_DOUBLE_EQ(Left.Max, 4.0);
}

TEST(MetricsTest, PrometheusTextIsWellFormedAndDuplicateFree) {
  MetricsRegistry Registry;
  Registry.add("serve.requests", 3);
  Registry.add("serve.responses", Labels{{"status", "ok"}, {"tenant", "a"}}, 2);
  Registry.add("serve.responses", Labels{{"status", "deadline"}, {"tenant", "a"}});
  Registry.record("compile.pass.fuse.ns", 120.0);
  Registry.observe("serve.latency.total_seconds", Labels{{"tenant", "a"}}, 0.5);
  Registry.observe("serve.latency.total_seconds", Labels{{"tenant", "a"}},
                   0.002);
  Registry.observe("serve.latency.total_seconds", Labels{{"tenant", "a"}},
                   -0.1);
  Registry.observe("serve.queue_depth", 4.0);

  std::string Text = prometheusText(Registry.snapshot());
  EXPECT_NE(Text.find("# TYPE parrec_serve_requests counter\n"),
            std::string::npos);
  EXPECT_NE(Text.find("# TYPE parrec_serve_responses counter\n"),
            std::string::npos);
  EXPECT_NE(Text.find("# TYPE parrec_compile_pass_fuse_ns summary\n"),
            std::string::npos);
  EXPECT_NE(
      Text.find("# TYPE parrec_serve_latency_total_seconds histogram\n"),
      std::string::npos);
  EXPECT_NE(Text.find("parrec_serve_requests 3\n"), std::string::npos);
  EXPECT_NE(Text.find("parrec_serve_responses{status=\"ok\",tenant=\"a\"} 2\n"),
            std::string::npos);
  // The non-positive sample folds into the le="0" cumulative bucket and
  // every labelled bucket merges le into the existing label block.
  EXPECT_NE(Text.find(
                "parrec_serve_latency_total_seconds_bucket{tenant=\"a\",le="),
            std::string::npos);
  EXPECT_NE(
      Text.find("parrec_serve_latency_total_seconds_bucket{tenant=\"a\","
                "le=\"0\"} 1\n"),
      std::string::npos);
  EXPECT_NE(
      Text.find("parrec_serve_latency_total_seconds_bucket{tenant=\"a\","
                "le=\"+Inf\"} 3\n"),
      std::string::npos);
  EXPECT_NE(Text.find("parrec_serve_latency_total_seconds_count{tenant=\"a\"}"
                      " 3\n"),
            std::string::npos);

  // Line-level invariants: TYPE once per family, no duplicate
  // (name, label set) sample, cumulative buckets never decrease.
  std::set<std::string> TypedFamilies;
  std::set<std::string> SampleKeys;
  uint64_t LastCumulative = 0;
  std::istringstream Lines(Text);
  std::string Line;
  while (std::getline(Lines, Line)) {
    ASSERT_FALSE(Line.empty());
    if (Line.rfind("# TYPE ", 0) == 0) {
      std::string Family = Line.substr(7, Line.find(' ', 7) - 7);
      EXPECT_TRUE(TypedFamilies.insert(Family).second)
          << "duplicate TYPE line for " << Family;
      continue;
    }
    size_t ValueAt = Line.rfind(' ');
    ASSERT_NE(ValueAt, std::string::npos) << Line;
    std::string Key = Line.substr(0, ValueAt);
    EXPECT_TRUE(SampleKeys.insert(Key).second)
        << "duplicate sample " << Key;
    // Metric names stay inside Prometheus' [a-zA-Z0-9_:] alphabet.
    for (char C : Key.substr(0, Key.find('{')))
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
                  C == ':')
          << Line;
    if (Key.find("_bucket{") != std::string::npos) {
      uint64_t Cumulative = std::stoull(Line.substr(ValueAt + 1));
      EXPECT_GE(Cumulative, LastCumulative) << Line;
      LastCumulative = Key.find("le=\"+Inf\"") != std::string::npos
                           ? 0
                           : Cumulative;
    }
  }
}

TEST(MetricsTest, ExporterWritesPromFileAndJsonlSeries) {
  const std::string Base =
      "/tmp/parrec-obstest-export-" + std::to_string(::getpid());
  const std::string Prom = Base + ".prom";
  const std::string Jsonl = Base + ".jsonl";
  std::remove(Prom.c_str());
  std::remove(Jsonl.c_str());

  uint64_t Tick = 41;
  MetricsRegistry::global().add("obs.exporter_test_flushes");
  {
    MetricsExporter::Options Opts;
    Opts.PromPath = Prom;
    Opts.JsonlPath = Jsonl;
    Opts.IntervalMs = 0; // No background thread: flushes are explicit.
    Opts.TickSource = [&Tick] { return Tick; };
    MetricsExporter Exporter(Opts);
    Exporter.flushNow();
    Tick = 42;
    Exporter.stop(); // stop() always writes one final flush.
    Exporter.stop(); // Idempotent.
    EXPECT_EQ(Exporter.flushes(), 2u);
  }

  std::ifstream PromIn(Prom);
  ASSERT_TRUE(PromIn.good()) << Prom;
  std::stringstream PromText;
  PromText << PromIn.rdbuf();
  EXPECT_NE(PromText.str().find("parrec_obs_exporter_test_flushes"),
            std::string::npos);
  // The scrape file is the atomically-renamed final copy; no .tmp left.
  EXPECT_FALSE(std::ifstream(Prom + ".tmp").good());

  std::ifstream JsonlIn(Jsonl);
  ASSERT_TRUE(JsonlIn.good()) << Jsonl;
  std::string Line;
  uint64_t Seq = 0;
  const uint64_t ExpectedTicks[] = {41, 42};
  while (std::getline(JsonlIn, Line)) {
    std::string Error;
    std::optional<JsonValue> Doc = parseJson(Line, &Error);
    ASSERT_TRUE(Doc.has_value()) << Error << ": " << Line;
    EXPECT_EQ(Doc->integerOr("seq", -1), static_cast<int64_t>(Seq));
    ASSERT_LT(Seq, 2u);
    EXPECT_EQ(Doc->integerOr("tick", -1),
              static_cast<int64_t>(ExpectedTicks[Seq]));
    const JsonValue *Metrics = Doc->member("metrics");
    ASSERT_TRUE(Metrics && Metrics->isObject());
    EXPECT_TRUE(Metrics->member("counters"));
    EXPECT_TRUE(Metrics->member("histograms"));
    ++Seq;
  }
  EXPECT_EQ(Seq, 2u);

  std::remove(Prom.c_str());
  std::remove(Jsonl.c_str());
}
