//===- PipelineTest.cpp - End-to-end compile-and-run tests -------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "baselines/SmithWaterman.h"
#include "bio/Fasta.h"
#include "bio/HmmZoo.h"
#include "runtime/CompiledRecurrence.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace parrec;
using namespace parrec::runtime;
using codegen::ArgValue;

namespace {

const char *EditDistanceSource =
    "int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =\n"
    "  if i == 0 then j\n"
    "  else if j == 0 then i\n"
    "  else if s[i-1] == t[j-1] then d(i-1, j-1)\n"
    "  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1\n";

const char *ForwardSource =
    "prob forward(hmm h, state[h] s, seq[dna] x, index[x] i) =\n"
    "  if i == 0 then\n"
    "    if s.isstart then 1.0 else 0.0\n"
    "  else\n"
    "    (if s.isend then 1.0 else s.emission[x[i-1]]) *\n"
    "    sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))\n";

/// Classic serial Levenshtein distance as an independent reference.
int64_t levenshtein(const std::string &A, const std::string &B) {
  std::vector<int64_t> Prev(B.size() + 1), Cur(B.size() + 1);
  for (size_t J = 0; J <= B.size(); ++J)
    Prev[J] = static_cast<int64_t>(J);
  for (size_t I = 1; I <= A.size(); ++I) {
    Cur[0] = static_cast<int64_t>(I);
    for (size_t J = 1; J <= B.size(); ++J) {
      if (A[I - 1] == B[J - 1])
        Cur[J] = Prev[J - 1];
      else
        Cur[J] = 1 + std::min({Prev[J], Cur[J - 1], Prev[J - 1]});
    }
    std::swap(Prev, Cur);
  }
  return Prev[B.size()];
}

/// Independent linear-space forward algorithm over an emitting-only HMM,
/// matching the DSL semantics of Figure 11: F(s, i) is the probability of
/// emitting the first i symbols and being *about to leave* state s (the
/// end state is silent).
double forwardReference(const bio::Hmm &M, const std::string &X) {
  unsigned N = M.numStates();
  size_t L = X.size();
  std::vector<double> Prev(N, 0.0), Cur(N, 0.0);
  for (unsigned S = 0; S != N; ++S)
    Prev[S] = M.state(S).IsStart ? 1.0 : 0.0;
  for (size_t I = 1; I <= L; ++I) {
    for (unsigned S = 0; S != N; ++S) {
      double Incoming = 0.0;
      for (unsigned T : M.transitionsTo(S))
        Incoming += M.transition(T).Prob * Prev[M.transition(T).From];
      double Emit =
          M.state(S).IsEnd ? 1.0 : M.emission(S, X[I - 1]);
      Cur[S] = Emit * Incoming;
    }
    std::swap(Prev, Cur);
  }
  return Prev[M.endState()];
}

gpu::Device testDevice() { return gpu::Device(gpu::CostModel()); }

} // namespace

//===----------------------------------------------------------------------===//
// Edit distance end to end
//===----------------------------------------------------------------------===//

struct EditDistanceCase {
  const char *A;
  const char *B;

  friend std::ostream &operator<<(std::ostream &Os,
                                  const EditDistanceCase &C) {
    return Os << "\"" << C.A << "\" vs \"" << C.B << "\"";
  }
};

class EditDistancePipelineTest
    : public ::testing::TestWithParam<EditDistanceCase> {};

TEST_P(EditDistancePipelineTest, MatchesReferenceOnCpuAndGpu) {
  DiagnosticEngine Diags;
  auto Compiled = CompiledRecurrence::compile(EditDistanceSource, Diags);
  ASSERT_TRUE(Compiled.has_value()) << Diags.str();

  bio::Sequence S("s", GetParam().A);
  bio::Sequence T("t", GetParam().B);
  std::vector<ArgValue> Args = {ArgValue::ofSeq(&S), ArgValue(),
                                ArgValue::ofSeq(&T), ArgValue()};

  int64_t Expected = levenshtein(GetParam().A, GetParam().B);

  gpu::CostModel Model;
  auto Cpu = Compiled->runCpu(Args, Model, Diags);
  ASSERT_TRUE(Cpu.has_value()) << Diags.str();
  EXPECT_DOUBLE_EQ(Cpu->RootValue, static_cast<double>(Expected));

  gpu::Device Dev = testDevice();
  auto Gpu = Compiled->runGpu(Args, Dev, Diags);
  ASSERT_TRUE(Gpu.has_value()) << Diags.str();
  EXPECT_DOUBLE_EQ(Gpu->RootValue, static_cast<double>(Expected));

  // The diagonal schedule and partition count (Figure 3 generalised).
  EXPECT_EQ(Gpu->UsedSchedule.Coefficients,
            (std::vector<int64_t>{1, 1}));
  EXPECT_EQ(Gpu->Partitions,
            static_cast<int64_t>(S.length() + T.length() + 1));
  EXPECT_EQ(Gpu->Cells, static_cast<uint64_t>((S.length() + 1) *
                                              (T.length() + 1)));
}

INSTANTIATE_TEST_SUITE_P(
    Strings, EditDistancePipelineTest,
    ::testing::Values(EditDistanceCase{"", ""},
                      EditDistanceCase{"a", ""},
                      EditDistanceCase{"", "abc"},
                      EditDistanceCase{"kitten", "sitting"},
                      EditDistanceCase{"flaw", "lawn"},
                      EditDistanceCase{"abcdefg", "abcdefg"},
                      EditDistanceCase{"aaaaaaaaaa", "bbbbbbbbbb"},
                      EditDistanceCase{"intention", "execution"}));

TEST(EditDistancePipelineTest, SlidingWindowMatchesFullTable) {
  DiagnosticEngine Diags;
  auto Compiled = CompiledRecurrence::compile(EditDistanceSource, Diags);
  ASSERT_TRUE(Compiled.has_value()) << Diags.str();

  // Large enough that the full table exceeds shared memory (48 KiB)
  // while the 3-diagonal window fits comfortably.
  bio::Sequence S = bio::randomSequence(bio::Alphabet::english(), 120, 3);
  bio::Sequence T = bio::randomSequence(bio::Alphabet::english(), 90, 4);
  std::vector<ArgValue> Args = {ArgValue::ofSeq(&S), ArgValue(),
                                ArgValue::ofSeq(&T), ArgValue()};
  gpu::Device Dev = testDevice();

  RunOptions WithWindow;
  WithWindow.UseSlidingWindow = true;
  RunOptions NoWindow;
  NoWindow.UseSlidingWindow = false;

  auto A = Compiled->runGpu(Args, Dev, Diags, WithWindow);
  auto B = Compiled->runGpu(Args, Dev, Diags, NoWindow);
  ASSERT_TRUE(A.has_value() && B.has_value()) << Diags.str();
  EXPECT_DOUBLE_EQ(A->RootValue, B->RootValue);
  EXPECT_DOUBLE_EQ(A->TableMax, B->TableMax);
  // The window keeps only 3 diagonals alive: far less memory.
  EXPECT_LT(A->Metrics.TableBytes, B->Metrics.TableBytes);
  // Shared-memory residency makes the windowed run faster.
  EXPECT_LT(A->Cycles, B->Cycles);
}

TEST(EditDistancePipelineTest, ForcedScheduleValidatedAndUsed) {
  DiagnosticEngine Diags;
  auto Compiled = CompiledRecurrence::compile(EditDistanceSource, Diags);
  ASSERT_TRUE(Compiled.has_value()) << Diags.str();

  bio::Sequence S("s", "abcd");
  bio::Sequence T("t", "efg");
  std::vector<ArgValue> Args = {ArgValue::ofSeq(&S), ArgValue(),
                                ArgValue::ofSeq(&T), ArgValue()};
  gpu::Device Dev = testDevice();

  // 2x + y is valid (Section 2.3's "less efficient" example) and must
  // produce the same values with more partitions.
  RunOptions Forced;
  Forced.ForcedSchedule = solver::Schedule{{2, 1}};
  auto R = Compiled->runGpu(Args, Dev, Diags, Forced);
  ASSERT_TRUE(R.has_value()) << Diags.str();
  EXPECT_DOUBLE_EQ(R->RootValue,
                   static_cast<double>(levenshtein("abcd", "efg")));
  EXPECT_EQ(R->Partitions, 2 * 4 + 3 + 1);

  // S = x is invalid and must be rejected.
  DiagnosticEngine Diags2;
  RunOptions Bad;
  Bad.ForcedSchedule = solver::Schedule{{1, 0}};
  EXPECT_FALSE(Compiled->runGpu(Args, Dev, Diags2, Bad).has_value());
  EXPECT_TRUE(Diags2.hasErrors());
}

//===----------------------------------------------------------------------===//
// Forward algorithm end to end (HMM extension)
//===----------------------------------------------------------------------===//

TEST(ForwardPipelineTest, MatchesLinearSpaceReference) {
  DiagnosticEngine Diags;
  auto Compiled = CompiledRecurrence::compile(ForwardSource, Diags);
  ASSERT_TRUE(Compiled.has_value()) << Diags.str();

  bio::Hmm Model = bio::makeCpgIslandModel();
  std::string Observed = Model.sample(2024);
  ASSERT_FALSE(Observed.empty());
  bio::Sequence X("x", Observed);

  std::vector<ArgValue> Args = {ArgValue::ofHmm(&Model), ArgValue(),
                                ArgValue::ofSeq(&X), ArgValue()};
  gpu::CostModel CostModel;
  auto Cpu = Compiled->runCpu(Args, CostModel, Diags);
  ASSERT_TRUE(Cpu.has_value()) << Diags.str();

  double Expected = forwardReference(Model, Observed);
  ASSERT_GT(Expected, 0.0);
  EXPECT_NEAR(Cpu->RootValue, std::log(Expected), 1e-9)
      << "prob results are log-space";

  gpu::Device Dev = testDevice();
  auto Gpu = Compiled->runGpu(Args, Dev, Diags);
  ASSERT_TRUE(Gpu.has_value()) << Diags.str();
  EXPECT_DOUBLE_EQ(Gpu->RootValue, Cpu->RootValue);

  // Section 5.2: the only schedule is S(s, i) = i; one partition per
  // sequence position (plus the base column).
  EXPECT_EQ(Gpu->UsedSchedule.Coefficients,
            (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(Gpu->Partitions,
            static_cast<int64_t>(Observed.size()) + 1);
}

TEST(ForwardPipelineTest, GeneratedSequencesScoreHigherThanRandom) {
  DiagnosticEngine Diags;
  auto Compiled = CompiledRecurrence::compile(ForwardSource, Diags);
  ASSERT_TRUE(Compiled.has_value()) << Diags.str();

  bio::Hmm Model = bio::makeGeneFinderModel();
  gpu::CostModel CostModel;

  std::string FromModel = Model.sample(7);
  // Use a random string of the same length for a fair comparison.
  bio::Sequence Random = bio::randomSequence(
      bio::Alphabet::dna(), static_cast<int64_t>(FromModel.size()), 99);
  bio::Sequence Sampled("m", FromModel);

  auto Score = [&](const bio::Sequence &S) {
    std::vector<ArgValue> Args = {ArgValue::ofHmm(&Model), ArgValue(),
                                  ArgValue::ofSeq(&S), ArgValue()};
    auto R = Compiled->runCpu(Args, CostModel, Diags);
    EXPECT_TRUE(R.has_value()) << Diags.str();
    return R ? R->RootValue : 0.0;
  };
  EXPECT_GT(Score(Sampled), Score(Random))
      << "the model must prefer its own samples (log-likelihoods)";
}

TEST(ForwardPipelineTest, BatchRunsAcrossMultiprocessors) {
  DiagnosticEngine Diags;
  auto Compiled = CompiledRecurrence::compile(ForwardSource, Diags);
  ASSERT_TRUE(Compiled.has_value()) << Diags.str();

  bio::Hmm Model = bio::makeCasinoModel();
  bio::SequenceDatabase Db;
  for (uint64_t Seed = 0; Seed != 20; ++Seed) {
    std::string S = Model.sample(Seed);
    if (S.empty())
      S = "a";
    Db.emplace_back("s" + std::to_string(Seed), S);
  }

  std::vector<std::vector<ArgValue>> Problems;
  for (const bio::Sequence &S : Db)
    Problems.push_back({ArgValue::ofHmm(&Model), ArgValue(),
                        ArgValue::ofSeq(&S), ArgValue()});

  gpu::Device Dev = testDevice();
  auto Batch = Compiled->runGpuBatch(Problems, Dev, Diags);
  ASSERT_TRUE(Batch.has_value()) << Diags.str();
  ASSERT_EQ(Batch->Problems.size(), 20u);

  // The makespan must be far below the sum (problems run on different
  // multiprocessors) but at least the largest single problem.
  uint64_t Sum = 0, MaxOne = 0;
  for (const RunResult &R : Batch->Problems) {
    Sum += R.Cycles;
    MaxOne = std::max(MaxOne, R.Cycles);
    EXPECT_DOUBLE_EQ(
        R.RootValue,
        Compiled
            ->runCpu({ArgValue::ofHmm(&Model), ArgValue(),
                      ArgValue::ofSeq(&Db[&R - Batch->Problems.data()]),
                      ArgValue()},
                     Dev.costModel(), Diags)
            ->RootValue);
  }
  EXPECT_LT(Batch->TotalCycles, Sum);
  EXPECT_GE(Batch->TotalCycles, MaxOne);
}

TEST(EditDistancePipelineTest, ThreadCountNeverChangesResults) {
  // Lockstep striping is a pure re-timing: any thread count produces
  // bit-identical values; more threads only shrink the partition time
  // (until the partition runs out of cells).
  DiagnosticEngine Diags;
  auto Compiled = CompiledRecurrence::compile(EditDistanceSource, Diags);
  ASSERT_TRUE(Compiled.has_value()) << Diags.str();

  bio::Sequence S = bio::randomSequence(bio::Alphabet::english(), 60, 5);
  bio::Sequence T = bio::randomSequence(bio::Alphabet::english(), 80, 6);
  std::vector<ArgValue> Args = {ArgValue::ofSeq(&S), ArgValue(),
                                ArgValue::ofSeq(&T), ArgValue()};
  gpu::Device Dev = testDevice();

  std::optional<double> Value;
  uint64_t PrevCycles = 0;
  for (unsigned Threads : {1u, 2u, 8u, 32u, 64u}) {
    RunOptions Options;
    Options.Threads = Threads;
    auto R = Compiled->runGpu(Args, Dev, Diags, Options);
    ASSERT_TRUE(R.has_value()) << Diags.str();
    if (Value) {
      EXPECT_DOUBLE_EQ(*Value, R->RootValue) << Threads << " threads";
      EXPECT_LE(R->Cycles, PrevCycles)
          << "more threads must never be slower in the lockstep model";
    }
    Value = R->RootValue;
    PrevCycles = R->Cycles;
  }
}

TEST(EditDistancePipelineTest, DeterministicAcrossRuns) {
  DiagnosticEngine Diags;
  auto Compiled = CompiledRecurrence::compile(EditDistanceSource, Diags);
  ASSERT_TRUE(Compiled.has_value()) << Diags.str();
  bio::Sequence S = bio::randomSequence(bio::Alphabet::english(), 50, 9);
  bio::Sequence T = bio::randomSequence(bio::Alphabet::english(), 50, 10);
  std::vector<ArgValue> Args = {ArgValue::ofSeq(&S), ArgValue(),
                                ArgValue::ofSeq(&T), ArgValue()};
  gpu::Device Dev = testDevice();
  auto A = Compiled->runGpu(Args, Dev, Diags);
  auto B = Compiled->runGpu(Args, Dev, Diags);
  ASSERT_TRUE(A.has_value() && B.has_value());
  EXPECT_DOUBLE_EQ(A->RootValue, B->RootValue);
  EXPECT_EQ(A->Cycles, B->Cycles);
  EXPECT_EQ(A->Cost.Ops, B->Cost.Ops);
  EXPECT_EQ(A->Cost.Transcendentals, B->Cost.Transcendentals);
}

TEST(EditDistancePipelineTest, BatchHonoursForcedSchedule) {
  DiagnosticEngine Diags;
  auto Compiled = CompiledRecurrence::compile(EditDistanceSource, Diags);
  ASSERT_TRUE(Compiled.has_value()) << Diags.str();
  bio::Sequence S("s", "abcde");
  bio::Sequence T("t", "fghij");
  std::vector<std::vector<ArgValue>> Problems = {
      {ArgValue::ofSeq(&S), ArgValue(), ArgValue::ofSeq(&T),
       ArgValue()}};
  gpu::Device Dev = testDevice();
  RunOptions Forced;
  Forced.ForcedSchedule = solver::Schedule{{2, 1}};
  auto Batch = Compiled->runGpuBatch(Problems, Dev, Diags, Forced);
  ASSERT_TRUE(Batch.has_value()) << Diags.str();
  EXPECT_EQ(Batch->Problems[0].UsedSchedule.Coefficients,
            (std::vector<int64_t>{2, 1}));
}

TEST(ForwardPipelineTest, ViterbiMatchesIndependentReference) {
  // Same recursion with max instead of sum: the Viterbi algorithm. An
  // empty transition set must contribute probability zero (regression
  // test: the begin state has no incoming transitions).
  const char *ViterbiSource =
      "prob viterbi(hmm h, state[h] s, seq[dna] x, index[x] i) =\n"
      "  if i == 0 then\n"
      "    if s.isstart then 1.0 else 0.0\n"
      "  else\n"
      "    (if s.isend then 1.0 else s.emission[x[i-1]]) *\n"
      "    max(t in s.transitionsto : t.prob * viterbi(t.start, "
      "i - 1))\n";
  DiagnosticEngine Diags;
  auto Compiled = CompiledRecurrence::compile(ViterbiSource, Diags);
  ASSERT_TRUE(Compiled.has_value()) << Diags.str();

  bio::Hmm Model = bio::makeCpgIslandModel();
  std::string Observed = Model.sample(77);
  ASSERT_FALSE(Observed.empty());
  bio::Sequence X("x", Observed);

  // Independent max-product reference.
  unsigned N = Model.numStates();
  std::vector<double> Prev(N, 0.0), Cur(N, 0.0);
  for (unsigned S = 0; S != N; ++S)
    Prev[S] = Model.state(S).IsStart ? 1.0 : 0.0;
  for (size_t I = 1; I <= Observed.size(); ++I) {
    for (unsigned S = 0; S != N; ++S) {
      double BestIncoming = 0.0;
      for (unsigned T : Model.transitionsTo(S))
        BestIncoming = std::max(
            BestIncoming,
            Model.transition(T).Prob * Prev[Model.transition(T).From]);
      double Emit = Model.state(S).IsEnd
                        ? 1.0
                        : Model.emission(S, Observed[I - 1]);
      Cur[S] = Emit * BestIncoming;
    }
    std::swap(Prev, Cur);
  }
  double Expected = Prev[Model.endState()];
  ASSERT_GT(Expected, 0.0);

  std::vector<ArgValue> Args = {ArgValue::ofHmm(&Model), ArgValue(),
                                ArgValue::ofSeq(&X), ArgValue()};
  gpu::Device Dev = testDevice();
  auto R = Compiled->runGpu(Args, Dev, Diags);
  ASSERT_TRUE(R.has_value()) << Diags.str();
  EXPECT_NEAR(R->RootValue, std::log(Expected), 1e-9);

  // Viterbi (max over paths) never exceeds forward (sum over paths).
  auto Forward = CompiledRecurrence::compile(ForwardSource, Diags);
  ASSERT_TRUE(Forward.has_value());
  auto F = Forward->runGpu(Args, Dev, Diags);
  ASSERT_TRUE(F.has_value());
  EXPECT_LE(R->RootValue, F->RootValue + 1e-12);
}

TEST(IntDimPipelineTest, FibonacciViaIntParameter) {
  // Integer parameters are both calling and recursive (Section 3.2): the
  // bound value sizes the domain. fib's minimal schedule is serial (one
  // element per partition, Figure 2b).
  DiagnosticEngine Diags;
  auto Compiled = CompiledRecurrence::compile(
      "int fib(int n) = if n < 2 then n else fib(n-1) + fib(n-2)\n",
      Diags);
  ASSERT_TRUE(Compiled.has_value()) << Diags.str();

  std::vector<ArgValue> Args = {ArgValue::ofInt(25)};
  gpu::Device Dev = testDevice();
  auto R = Compiled->runGpu(Args, Dev, Diags);
  ASSERT_TRUE(R.has_value()) << Diags.str();
  EXPECT_DOUBLE_EQ(R->RootValue, 75025.0);
  EXPECT_EQ(R->Partitions, 26);
  EXPECT_EQ(R->UsedSchedule.Coefficients, (std::vector<int64_t>{1}));
}

const char *SmithWatermanSource =
    "int sw(matrix[protein] m, seq[protein] a, index[a] i,\n"
    "       seq[protein] b, index[b] j) =\n"
    "  if i == 0 then 0\n"
    "  else if j == 0 then 0\n"
    "  else 0 max (sw(i-1, j-1) + m[a[i-1], b[j-1]])\n"
    "       max (sw(i-1, j) - 4) max (sw(i, j-1) - 4)\n";

class SmithWatermanPropertyTest : public ::testing::TestWithParam<int> {
};

TEST_P(SmithWatermanPropertyTest, TableMaxEqualsBaselineScore) {
  DiagnosticEngine Diags;
  static auto Compiled =
      CompiledRecurrence::compile(SmithWatermanSource, Diags);
  ASSERT_TRUE(Compiled.has_value()) << Diags.str();

  SplitMix64 Rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  bio::Sequence A = bio::randomSequence(bio::Alphabet::protein(),
                                        Rng.nextInRange(1, 40),
                                        Rng.next());
  bio::Sequence B = bio::randomSequence(bio::Alphabet::protein(),
                                        Rng.nextInRange(1, 40),
                                        Rng.next());
  const bio::SubstitutionMatrix &M = bio::SubstitutionMatrix::blosum62();
  std::vector<ArgValue> Args = {ArgValue::ofMatrix(&M),
                                ArgValue::ofSeq(&A), ArgValue(),
                                ArgValue::ofSeq(&B), ArgValue()};
  gpu::Device Dev = testDevice();
  auto R = Compiled->runGpu(Args, Dev, Diags);
  ASSERT_TRUE(R.has_value()) << Diags.str();

  baselines::SwParams Params;
  Params.Matrix = &M;
  Params.GapPenalty = 4;
  gpu::CostCounter Cost;
  int Expected = baselines::smithWatermanScore(A, B, Params, Cost);
  EXPECT_DOUBLE_EQ(R->TableMax, static_cast<double>(Expected));
}

INSTANTIATE_TEST_SUITE_P(RandomPairs, SmithWatermanPropertyTest,
                         ::testing::Range(0, 16));

TEST(ConditionalPipelineTest, BatchSelectsPerProblemSchedules) {
  // The diagonal-only recursion over rectangles of opposite aspect
  // ratios: the batch path must pick S = i for the wide problem and
  // S = j for the tall one (Section 4.7's runtime dispatch).
  const char *DiagonalSource =
      "int g(seq[en] a, index[a] i, seq[en] b, index[b] j) =\n"
      "  if i == 0 then 0\n"
      "  else if j == 0 then 0\n"
      "  else g(i-1, j-1) + (if a[i-1] == b[j-1] then 1 else 0)\n";
  DiagnosticEngine Diags;
  auto Compiled = CompiledRecurrence::compile(DiagonalSource, Diags);
  ASSERT_TRUE(Compiled.has_value()) << Diags.str();

  bio::Sequence Short =
      bio::randomSequence(bio::Alphabet::english(), 5, 1);
  bio::Sequence Long =
      bio::randomSequence(bio::Alphabet::english(), 40, 2);

  std::vector<std::vector<ArgValue>> Problems = {
      {ArgValue::ofSeq(&Short), ArgValue(), ArgValue::ofSeq(&Long),
       ArgValue()},
      {ArgValue::ofSeq(&Long), ArgValue(), ArgValue::ofSeq(&Short),
       ArgValue()},
  };
  gpu::Device Dev = testDevice();
  auto Batch = Compiled->runGpuBatch(Problems, Dev, Diags);
  ASSERT_TRUE(Batch.has_value()) << Diags.str();
  EXPECT_EQ(Batch->Problems[0].UsedSchedule.Coefficients,
            (std::vector<int64_t>{1, 0}))
      << "wide problem: partition along the short i axis";
  EXPECT_EQ(Batch->Problems[1].UsedSchedule.Coefficients,
            (std::vector<int64_t>{0, 1}))
      << "tall problem: partition along the short j axis";
  EXPECT_EQ(Batch->Problems[0].Partitions, 6);
  EXPECT_EQ(Batch->Problems[1].Partitions, 6);
}

TEST(ForwardPipelineTest, BackwardAlgorithmUsesNegativeSchedule) {
  // The backward algorithm recurses on i+1 (transitionsfrom), so the
  // only valid schedules have a *negative* coefficient on the index
  // dimension: partitions sweep the sequence right to left. Its
  // interesting value sits at B(start, 0), not the root corner, so the
  // run keeps the table. Forward/backward consistency pins the numerics:
  // B(start, 0, L) == F(end, L).
  const char *Source =
      "prob backward(hmm h, state[h] s, seq[dna] x, index[x] i, "
      "int len) =\n"
      "  if i >= len then\n"
      "    if s.isend then 1.0 else 0.0\n"
      "  else\n"
      "    sum(t in s.transitionsfrom :\n"
      "        t.prob *\n"
      "        (if t.end.isend then 1.0 else t.end.emission[x[i]]) *\n"
      "        backward(t.end, i + 1, len))\n";

  DiagnosticEngine Diags;
  auto Backward = CompiledRecurrence::compile(Source, Diags);
  ASSERT_TRUE(Backward.has_value()) << Diags.str();

  bio::Hmm Model = bio::makeCasinoModel();
  std::string Observed = Model.sample(11);
  ASSERT_FALSE(Observed.empty());
  bio::Sequence X("x", Observed);
  int64_t L = X.length();

  std::vector<ArgValue> Args = {ArgValue::ofHmm(&Model), ArgValue(),
                                ArgValue::ofSeq(&X), ArgValue(),
                                ArgValue::ofInt(L)};
  gpu::Device Dev = testDevice();
  RunOptions Keep;
  Keep.KeepTable = true;
  auto B = Backward->runGpu(Args, Dev, Diags, Keep);
  ASSERT_TRUE(B.has_value()) << Diags.str();

  // Negative index coefficient; state (free) and len contribute nothing.
  EXPECT_LT(B->UsedSchedule.Coefficients[1], 0)
      << B->UsedSchedule.str({"s", "i", "len"});
  EXPECT_EQ(B->UsedSchedule.Coefficients[0], 0);

  auto Forward = CompiledRecurrence::compile(ForwardSource, Diags);
  ASSERT_TRUE(Forward.has_value()) << Diags.str();
  std::vector<ArgValue> FArgs = {ArgValue::ofHmm(&Model), ArgValue(),
                                 ArgValue::ofSeq(&X), ArgValue()};
  auto F = Forward->runGpu(FArgs, Dev, Diags);
  ASSERT_TRUE(F.has_value()) << Diags.str();

  double BackwardAtStart = B->cellValue(
      {static_cast<int64_t>(Model.startState()), 0, L});
  EXPECT_NEAR(BackwardAtStart, F->RootValue, 1e-9)
      << "forward/backward consistency (log-space)";
}

TEST(AffineDescentPipelineTest, NonUniformRecursionRunsEndToEnd) {
  // g(x) = g(2x - 12) + 1 above 6: a genuinely affine (non-uniform)
  // descent. Criteria come from the runtime box vertices (Section 4.5's
  // general case), and the sliding window is correctly unavailable.
  DiagnosticEngine Diags;
  auto Compiled = CompiledRecurrence::compile(
      "int g(int x) = if x <= 6 then x else g(2 * x - 12) + 1\n",
      Diags);
  ASSERT_TRUE(Compiled.has_value()) << Diags.str();

  std::vector<ArgValue> Args = {ArgValue::ofInt(11)};
  gpu::Device Dev = testDevice();
  auto R = Compiled->runGpu(Args, Dev, Diags);
  ASSERT_TRUE(R.has_value()) << Diags.str();
  // g(11) = g(10)+1 = g(8)+2 = g(4)+3 = 7.
  EXPECT_DOUBLE_EQ(R->RootValue, 7.0);
  EXPECT_FALSE(solver::slidingWindowDepth(
                   Compiled->info().Recurrence, R->UsedSchedule)
                   .has_value());
  EXPECT_EQ(R->Metrics.TableBytes, 12u * sizeof(double))
      << "affine descents force a full table";
}

TEST(ThreeDimPipelineTest, ThreeWayAlignment) {
  // Three-sequence edit distance: a genuinely three-dimensional
  // recursion with seven dependencies; the minimal schedule is the
  // 3D anti-diagonal i + j + k.
  const char *Source =
      "int d3(seq[en] a, index[a] i, seq[en] b, index[b] j,\n"
      "       seq[en] c, index[c] k) =\n"
      "  if i == 0 then j max k\n"
      "  else if j == 0 then i max k\n"
      "  else if k == 0 then i max j\n"
      "  else ((d3(i-1, j-1, k-1) +\n"
      "         (if a[i-1] == b[j-1] then 0 else 1) +\n"
      "         (if a[i-1] == c[k-1] then 0 else 1) +\n"
      "         (if b[j-1] == c[k-1] then 0 else 1))\n"
      "    min (d3(i-1, j, k) + 2) min (d3(i, j-1, k) + 2)\n"
      "    min (d3(i, j, k-1) + 2)\n"
      "    min (d3(i-1, j-1, k) + 1 +\n"
      "         (if a[i-1] == b[j-1] then 0 else 1))\n"
      "    min (d3(i-1, j, k-1) + 1 +\n"
      "         (if a[i-1] == c[k-1] then 0 else 1))\n"
      "    min (d3(i, j-1, k-1) + 1 +\n"
      "         (if b[j-1] == c[k-1] then 0 else 1)))\n";
  DiagnosticEngine Diags;
  auto Compiled = CompiledRecurrence::compile(Source, Diags);
  ASSERT_TRUE(Compiled.has_value()) << Diags.str();

  bio::Sequence A("a", "acb");
  bio::Sequence B("b", "abc");
  bio::Sequence C("c", "bc");
  std::vector<ArgValue> Args = {
      ArgValue::ofSeq(&A), ArgValue(), ArgValue::ofSeq(&B), ArgValue(),
      ArgValue::ofSeq(&C), ArgValue()};
  gpu::Device Dev = testDevice();
  auto R = Compiled->runGpu(Args, Dev, Diags);
  ASSERT_TRUE(R.has_value()) << Diags.str();
  EXPECT_EQ(R->UsedSchedule.Coefficients,
            (std::vector<int64_t>{1, 1, 1}));
  EXPECT_EQ(R->Partitions, 3 + 3 + 2 + 1);
  EXPECT_EQ(R->Cells, 4u * 4u * 3u);

  // Identical CPU result and agreement with the windowless run.
  auto Cpu = Compiled->runCpu(Args, Dev.costModel(), Diags);
  ASSERT_TRUE(Cpu.has_value());
  EXPECT_DOUBLE_EQ(Cpu->RootValue, R->RootValue);
  RunOptions NoWindow;
  NoWindow.UseSlidingWindow = false;
  auto Full = Compiled->runGpu(Args, Dev, Diags, NoWindow);
  EXPECT_DOUBLE_EQ(Full->RootValue, R->RootValue);

  // Identical sequences align for free.
  std::vector<ArgValue> Same = {
      ArgValue::ofSeq(&A), ArgValue(), ArgValue::ofSeq(&A), ArgValue(),
      ArgValue::ofSeq(&A), ArgValue()};
  auto Zero = Compiled->runGpu(Same, Dev, Diags);
  EXPECT_DOUBLE_EQ(Zero->RootValue, 0.0);
}

//===----------------------------------------------------------------------===//
// GPU speed-up sanity: the simulated intra-task kernel beats the modelled
// serial CPU on large problems (the paper's headline effect).
//===----------------------------------------------------------------------===//

TEST(SpeedupTest, GpuBeatsCpuOnLargeEditDistance) {
  DiagnosticEngine Diags;
  auto Compiled = CompiledRecurrence::compile(EditDistanceSource, Diags);
  ASSERT_TRUE(Compiled.has_value()) << Diags.str();

  bio::Sequence S = bio::randomSequence(bio::Alphabet::english(), 300, 1);
  bio::Sequence T = bio::randomSequence(bio::Alphabet::english(), 300, 2);
  std::vector<ArgValue> Args = {ArgValue::ofSeq(&S), ArgValue(),
                                ArgValue::ofSeq(&T), ArgValue()};

  gpu::Device Dev = testDevice();
  auto Cpu = Compiled->runCpu(Args, Dev.costModel(), Diags);
  auto Gpu = Compiled->runGpu(Args, Dev, Diags);
  ASSERT_TRUE(Cpu.has_value() && Gpu.has_value()) << Diags.str();
  EXPECT_DOUBLE_EQ(Cpu->RootValue, Gpu->RootValue);

  double CpuSeconds = Dev.costModel().cpuSeconds(Cpu->Cycles);
  double GpuSeconds = Dev.costModel().gpuSeconds(Gpu->Cycles);
  EXPECT_LT(GpuSeconds * 4, CpuSeconds)
      << "one block alone should already be several times faster";
}
