//===- LexerTest.cpp - Tests for the DSL tokenizer ----------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <gtest/gtest.h>

using namespace parrec;
using namespace parrec::lang;

namespace {

std::vector<Token> lexAll(std::string_view Source) {
  DiagnosticEngine Diags;
  Lexer L(Source, Diags);
  std::vector<Token> Tokens = L.lexAll();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Tokens;
}

std::vector<TokenKind> kindsOf(std::string_view Source) {
  std::vector<TokenKind> Kinds;
  for (const Token &T : lexAll(Source))
    Kinds.push_back(T.Kind);
  return Kinds;
}

} // namespace

TEST(LexerTest, Keywords) {
  auto Kinds = kindsOf("if then else min max sum in int prob hmm");
  std::vector<TokenKind> Expected = {
      TokenKind::KwIf,  TokenKind::KwThen, TokenKind::KwElse,
      TokenKind::KwMin, TokenKind::KwMax,  TokenKind::KwSum,
      TokenKind::KwIn,  TokenKind::KwInt,  TokenKind::KwProb,
      TokenKind::KwHmm, TokenKind::EndOfFile};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, IdentifiersVsKeywords) {
  auto Tokens = lexAll("iff forward index2");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[0].Text, "iff");
  EXPECT_EQ(Tokens[1].Text, "forward");
  EXPECT_EQ(Tokens[2].Text, "index2");
}

TEST(LexerTest, NumbersAndOperators) {
  auto Tokens = lexAll("42 3.5 1e3 x==y a!=b i<=j k>=l m<n o>p");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::IntegerLiteral);
  EXPECT_EQ(Tokens[0].IntValue, 42);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(Tokens[1].FloatValue, 3.5);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(Tokens[2].FloatValue, 1000.0);
  EXPECT_EQ(Tokens[4].Kind, TokenKind::EqualEqual);
  EXPECT_EQ(Tokens[7].Kind, TokenKind::NotEqual);
  EXPECT_EQ(Tokens[10].Kind, TokenKind::LessEqual);
  EXPECT_EQ(Tokens[13].Kind, TokenKind::GreaterEqual);
  EXPECT_EQ(Tokens[16].Kind, TokenKind::Less);
  EXPECT_EQ(Tokens[19].Kind, TokenKind::Greater);
}

TEST(LexerTest, Figure7Source) {
  // The paper's edit-distance function must tokenize cleanly.
  const char *Source =
      "int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =\n"
      "  if i == 0 then j\n"
      "  else if j == 0 then i\n"
      "  else if s[i-1] == t[j-1] then d(i-1, j-1)\n"
      "  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1\n";
  auto Tokens = lexAll(Source);
  EXPECT_GT(Tokens.size(), 40u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwInt);
  EXPECT_EQ(Tokens[1].Text, "d");
}

TEST(LexerTest, CommentsAndLocations) {
  auto Tokens = lexAll("a # comment to end\nb // another\nc");
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_EQ(Tokens[2].Loc.Line, 3u);
  EXPECT_EQ(Tokens[2].Loc.Column, 1u);
}

TEST(LexerTest, StringsAndChars) {
  auto Tokens = lexAll("\"hello\\nworld\" 'x' '\\t'");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::StringLiteral);
  EXPECT_EQ(Tokens[0].Text, "hello\nworld");
  EXPECT_EQ(Tokens[1].Kind, TokenKind::CharLiteral);
  EXPECT_EQ(Tokens[1].CharValue, 'x');
  EXPECT_EQ(Tokens[2].CharValue, '\t');
}

TEST(LexerTest, ArrowAndDots) {
  auto Kinds = kindsOf("a -> b . c - d");
  std::vector<TokenKind> Expected = {
      TokenKind::Identifier, TokenKind::Arrow,      TokenKind::Identifier,
      TokenKind::Dot,        TokenKind::Identifier, TokenKind::Minus,
      TokenKind::Identifier, TokenKind::EndOfFile};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, ErrorRecovery) {
  DiagnosticEngine Diags;
  Lexer L("a ? b", Diags);
  std::vector<Token> Tokens = L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
  // The '?' becomes an error token; lexing continues.
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Error);
  EXPECT_EQ(Tokens[2].Text, "b");
}

TEST(LexerTest, UnterminatedString) {
  DiagnosticEngine Diags;
  Lexer L("\"oops", Diags);
  L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}
