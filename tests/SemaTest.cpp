//===- SemaTest.cpp - Tests for semantic analysis ------------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "lang/Sema.h"

#include <gtest/gtest.h>

using namespace parrec;
using namespace parrec::lang;

namespace {

const char *EditDistanceSource =
    "int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =\n"
    "  if i == 0 then j\n"
    "  else if j == 0 then i\n"
    "  else if s[i-1] == t[j-1] then d(i-1, j-1)\n"
    "  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1\n";

const char *ForwardSource =
    "prob forward(hmm h, state[h] s, seq[dna] x, index[x] i) =\n"
    "  if i == 0 then\n"
    "    if s.isstart then 1.0 else 0.0\n"
    "  else\n"
    "    (if s.isend then 1.0 else s.emission[x[i-1]]) *\n"
    "    sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))\n";

struct AnalysisResult {
  std::unique_ptr<FunctionDecl> Decl;
  std::optional<FunctionInfo> Info;
  DiagnosticEngine Diags;
};

AnalysisResult analyze(std::string_view Source) {
  AnalysisResult R;
  Parser P(Source, R.Diags);
  R.Decl = P.parseFunctionOnly();
  if (!R.Decl)
    return R;
  Sema S(R.Diags, {"dna", "rna", "protein", "en"});
  R.Info = S.analyze(*R.Decl);
  return R;
}

} // namespace

TEST(SemaTest, EditDistanceAnalysis) {
  AnalysisResult R = analyze(EditDistanceSource);
  ASSERT_TRUE(R.Info.has_value()) << R.Diags.str();

  // Recursive parameters: the two indices.
  EXPECT_EQ(R.Info->RecursiveParams, (std::vector<unsigned>{1, 3}));
  ASSERT_EQ(R.Info->Dims.size(), 2u);
  EXPECT_EQ(R.Info->Dims[0].Kind, DimKind::IndexDim);
  EXPECT_EQ(R.Info->Dims[0].Name, "i");
  EXPECT_EQ(R.Info->Dims[0].RefParamIndex, 0);
  EXPECT_EQ(R.Info->Dims[1].RefParamIndex, 2);

  // Three recursive calls with the expected uniform descents.
  ASSERT_EQ(R.Info->Recurrence.Calls.size(), 4u)
      << "d(i-1,j-1) appears twice in the source";
  for (const auto &Call : R.Info->Recurrence.Calls)
    EXPECT_TRUE(Call.isUniform());
}

TEST(SemaTest, ForwardAnalysis) {
  AnalysisResult R = analyze(ForwardSource);
  ASSERT_TRUE(R.Info.has_value()) << R.Diags.str();
  ASSERT_EQ(R.Info->Dims.size(), 2u);
  EXPECT_EQ(R.Info->Dims[0].Kind, DimKind::StateDim);
  EXPECT_EQ(R.Info->Dims[1].Kind, DimKind::IndexDim);

  // The call forward(t.start, i-1): state dimension free, index uniform
  // with offset -1 (the Section 5.2 analysis).
  ASSERT_EQ(R.Info->Recurrence.Calls.size(), 1u);
  const auto &Call = R.Info->Recurrence.Calls[0];
  EXPECT_TRUE(Call.isFreeDim(0));
  EXPECT_FALSE(Call.isFreeDim(1));
  EXPECT_TRUE(Call.isUniform());
  EXPECT_EQ(Call.uniformOffsets(), (std::vector<int64_t>{0, -1}));
}

TEST(SemaTest, TypeAnnotations) {
  AnalysisResult R = analyze(EditDistanceSource);
  ASSERT_TRUE(R.Info.has_value());
  EXPECT_EQ(R.Decl->Body->ExprType.Kind, TypeKind::Int);
}

TEST(SemaTest, RejectsMutualRecursion) {
  AnalysisResult R = analyze(
      "int f(int x) = if x == 0 then 0 else g(x - 1)\n");
  EXPECT_FALSE(R.Info.has_value());
  EXPECT_NE(R.Diags.str().find("mutual"), std::string::npos)
      << R.Diags.str();
}

TEST(SemaTest, RejectsNonAffineDescent) {
  AnalysisResult R = analyze(
      "int f(int x) = if x == 0 then 0 else f(x * x)\n");
  EXPECT_FALSE(R.Info.has_value());
  EXPECT_NE(R.Diags.str().find("affine"), std::string::npos)
      << R.Diags.str();
}

TEST(SemaTest, AcceptsAffineNonUniformDescent) {
  AnalysisResult R = analyze(
      "int f(int x) = if x <= 1 then 1 else f(2 * x - 6)\n");
  ASSERT_TRUE(R.Info.has_value()) << R.Diags.str();
  ASSERT_EQ(R.Info->Recurrence.Calls.size(), 1u);
  EXPECT_FALSE(R.Info->Recurrence.Calls[0].isUniform());
}

TEST(SemaTest, RejectsUnknownVariable) {
  AnalysisResult R = analyze("int f(int x) = y + 1\n");
  EXPECT_FALSE(R.Info.has_value());
  EXPECT_NE(R.Diags.str().find("unknown variable"), std::string::npos);
}

TEST(SemaTest, RejectsUnknownAlphabet) {
  AnalysisResult R = analyze(
      "int f(seq[klingon] s, index[s] i) = if i == 0 then 0 else f(i-1)\n");
  EXPECT_FALSE(R.Info.has_value());
  EXPECT_NE(R.Diags.str().find("unknown alphabet"), std::string::npos);
}

TEST(SemaTest, RejectsIndexWithoutSequence) {
  AnalysisResult R = analyze(
      "int f(index[s] i) = if i == 0 then 0 else f(i-1)\n");
  EXPECT_FALSE(R.Info.has_value());
}

TEST(SemaTest, RejectsNoRecursiveParams) {
  AnalysisResult R = analyze("int f(seq[en] s) = 0\n");
  EXPECT_FALSE(R.Info.has_value());
  EXPECT_NE(R.Diags.str().find("no recursive parameters"),
            std::string::npos);
}

TEST(SemaTest, RejectsWrongArity) {
  AnalysisResult R = analyze(
      "int f(int x, int y) = if x == 0 then 0 else f(x - 1)\n");
  EXPECT_FALSE(R.Info.has_value());
}

TEST(SemaTest, RejectsBadConditionType) {
  AnalysisResult R =
      analyze("int f(int x) = if x then 0 else f(x - 1)\n");
  EXPECT_FALSE(R.Info.has_value());
  EXPECT_NE(R.Diags.str().find("bool"), std::string::npos);
}

TEST(SemaTest, RejectsDuplicateParams) {
  AnalysisResult R = analyze(
      "int f(int x, int x) = if x == 0 then 0 else f(x - 1, x - 1)\n");
  EXPECT_FALSE(R.Info.has_value());
  EXPECT_NE(R.Diags.str().find("duplicate"), std::string::npos);
}

TEST(SemaTest, JoinsNumericTypes) {
  AnalysisResult R = analyze(
      "float f(int x) = if x == 0 then 1.5 else f(x - 1) + 1\n");
  ASSERT_TRUE(R.Info.has_value()) << R.Diags.str();
  EXPECT_EQ(R.Decl->Body->ExprType.Kind, TypeKind::Float);
}

TEST(SemaTest, MatrixParameterUse) {
  AnalysisResult R = analyze(
      "int sw(matrix[protein] m, seq[protein] a, index[a] i,\n"
      "       seq[protein] b, index[b] j) =\n"
      "  if i == 0 then 0\n"
      "  else if j == 0 then 0\n"
      "  else 0 max (sw(i-1, j-1) + m[a[i-1], b[j-1]])\n");
  ASSERT_TRUE(R.Info.has_value()) << R.Diags.str();
  EXPECT_EQ(R.Info->Dims.size(), 2u);
}

TEST(SemaTest, SmithWatermanAnalysis) {
  AnalysisResult R = analyze(
      "int sw(matrix[protein] m, seq[protein] a, index[a] i,\n"
      "       seq[protein] b, index[b] j) =\n"
      "  if i == 0 then 0\n"
      "  else if j == 0 then 0\n"
      "  else 0 max (sw(i-1, j-1) + m[a[i-1], b[j-1]])\n"
      "       max (sw(i-1, j) - 4) max (sw(i, j-1) - 4)\n");
  ASSERT_TRUE(R.Info.has_value()) << R.Diags.str();
  ASSERT_EQ(R.Info->Recurrence.Calls.size(), 3u);
  EXPECT_EQ(R.Info->Recurrence.Calls[0].uniformOffsets(),
            (std::vector<int64_t>{-1, -1}));
  EXPECT_EQ(R.Info->Recurrence.Calls[1].uniformOffsets(),
            (std::vector<int64_t>{-1, 0}));
  EXPECT_EQ(R.Info->Recurrence.Calls[2].uniformOffsets(),
            (std::vector<int64_t>{0, -1}));
}

TEST(SemaTest, DescentWithScaledDimension) {
  // 2*i - 3 is affine (not uniform) and must be extracted exactly.
  AnalysisResult R = analyze(
      "int f(int i) = if i <= 2 then i else f(2 * i - 6)\n");
  ASSERT_TRUE(R.Info.has_value()) << R.Diags.str();
  const auto &Call = R.Info->Recurrence.Calls[0];
  EXPECT_FALSE(Call.isUniform());
  EXPECT_EQ(Call.Components[0].coefficient(0), 2);
  EXPECT_EQ(Call.Components[0].constantTerm(), -6);
}

TEST(SemaTest, RejectsReductionVarInDescent) {
  // t.prob is not an affine function of the recursion dimensions, and a
  // raw reduction variable cannot appear in an index argument.
  AnalysisResult R = analyze(
      "prob f(hmm h, state[h] s, seq[dna] x, index[x] i) =\n"
      "  if i == 0 then 1.0\n"
      "  else sum(t in s.transitionsto : f(t.start, t))\n");
  EXPECT_FALSE(R.Info.has_value());
}

TEST(SemaTest, NestedMemberChains) {
  // t.end.isend: member access on a member result.
  AnalysisResult R = analyze(
      "prob f(hmm h, state[h] s, int n) =\n"
      "  if n == 0 then 1.0\n"
      "  else sum(t in s.transitionsfrom :\n"
      "           (if t.end.isend then 1.0 else 0.5) * f(t.end, n-1))\n");
  ASSERT_TRUE(R.Info.has_value()) << R.Diags.str();
  EXPECT_TRUE(R.Info->Recurrence.Calls[0].isFreeDim(0));
}

TEST(SemaTest, RejectsMemberOnWrongType) {
  AnalysisResult R = analyze(
      "prob f(hmm h, state[h] s, int n) =\n"
      "  if n == 0 then 1.0 else s.prob * f(s, n - 1)\n");
  EXPECT_FALSE(R.Info.has_value());
  EXPECT_NE(R.Diags.str().find("requires a transition"),
            std::string::npos)
      << R.Diags.str();
}

TEST(SemaTest, RejectsIndexingNonSequence) {
  AnalysisResult R = analyze("int f(int n) = n[0] + f(n - 1)\n");
  EXPECT_FALSE(R.Info.has_value());
  EXPECT_NE(R.Diags.str().find("not a sequence"), std::string::npos);
}

TEST(SemaTest, RejectsMatrixLookupOnNonChars) {
  AnalysisResult R = analyze(
      "int f(matrix[protein] m, int n) =\n"
      "  if n == 0 then 0 else m[n, n] + f(n - 1)\n");
  EXPECT_FALSE(R.Info.has_value());
  EXPECT_NE(R.Diags.str().find("characters"), std::string::npos);
}

TEST(SemaTest, ReductionVariableScoping) {
  // The reduction variable must not escape its body.
  AnalysisResult R = analyze(
      "prob f(hmm h, state[h] s, int i) =\n"
      "  if i == 0 then 1.0\n"
      "  else sum(t in s.transitionsto : t.prob) * t.prob\n");
  EXPECT_FALSE(R.Info.has_value());
}
