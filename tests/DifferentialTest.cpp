//===- DifferentialTest.cpp - Bytecode VM vs AST evaluator ------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluators' correctness contract: for every recursion the
/// bytecode compiles, results AND cost accounting are bit-identical
/// across all three cell evaluators — the AST tree-walker, the bytecode
/// VM and the native JIT kernel — on both backends, with and without
/// the sliding window. Covers the shipped example scripts, the
/// case-study recursions and randomized (seeded) HMMs, sequences and
/// substitution scores.
///
//===----------------------------------------------------------------------===//

#include "bio/HmmZoo.h"
#include "obs/Metrics.h"
#include "runtime/CompiledRecurrence.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include <unistd.h>

using namespace parrec;
using namespace parrec::runtime;
using codegen::ArgValue;

#ifndef PARREC_SCRIPTS_DIR
#error "build must define PARREC_SCRIPTS_DIR"
#endif

namespace {

std::string scriptsPath(const std::string &Relative) {
  return std::string(PARREC_SCRIPTS_DIR) + "/" + Relative;
}

std::string readFileOrDie(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

// The case-study recursions, matching examples/scripts/*.rdsl and the
// pipeline tests verbatim.
const char *SmithWatermanSource =
    "int sw(matrix[dna] m, seq[dna] a, index[a] i, seq[dna] b, index[b] j) =\n"
    "  if i == 0 then 0\n"
    "  else if j == 0 then 0\n"
    "  else 0 max (sw(i-1, j-1) + m[a[i-1], b[j-1]])\n"
    "       max (sw(i-1, j) - 2) max (sw(i, j-1) - 2)\n";

const char *EditDistanceSource =
    "int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =\n"
    "  if i == 0 then j\n"
    "  else if j == 0 then i\n"
    "  else if s[i-1] == t[j-1] then d(i-1, j-1)\n"
    "  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1\n";

const char *CasinoForwardSource =
    "prob forward(hmm h, state[h] s, seq[dice] x, index[x] i) =\n"
    "  if i == 0 then\n"
    "    if s.isstart then 1.0 else 0.0\n"
    "  else\n"
    "    (if s.isend then 1.0 else s.emission[x[i-1]]) *\n"
    "    sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))\n";

const char *DnaForwardSource =
    "prob forward(hmm h, state[h] s, seq[dna] x, index[x] i) =\n"
    "  if i == 0 then\n"
    "    if s.isstart then 1.0 else 0.0\n"
    "  else\n"
    "    (if s.isend then 1.0 else s.emission[x[i-1]]) *\n"
    "    sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))\n";

const char *DnaViterbiSource =
    "prob viterbi(hmm h, state[h] s, seq[dna] x, index[x] i) =\n"
    "  if i == 0 then\n"
    "    if s.isstart then 1.0 else 0.0\n"
    "  else\n"
    "    (if s.isend then 1.0 else s.emission[x[i-1]]) *\n"
    "    max(t in s.transitionsto : t.prob * viterbi(t.start, i - 1))\n";

/// A per-process JIT disk cache so concurrent test shards never share
/// (or pollute) the user's real cache.
const std::string &jitCacheDirForTest() {
  static const std::string Dir =
      "/tmp/parrec-jit-test-" + std::to_string(::getpid());
  return Dir;
}

CompiledRecurrence compileOrDie(const char *Source,
                                std::vector<std::string> Extra = {}) {
  DiagnosticEngine Diags;
  auto Compiled =
      CompiledRecurrence::compile(Source, Diags, std::move(Extra));
  EXPECT_TRUE(Compiled.has_value()) << Diags.str();
  return std::move(*Compiled);
}

/// Asserts every observable of two runs — values, cell counts, cost
/// events, simulated cycles — is bit-identical.
void expectRunsIdentical(const RunResult &Vm, const RunResult &Other,
                         const char *OtherName, const std::string &Where) {
  EXPECT_EQ(Vm.RootValue, Other.RootValue) << OtherName << Where;
  EXPECT_EQ(Vm.TableMax, Other.TableMax) << OtherName << Where;
  EXPECT_EQ(Vm.Cells, Other.Cells) << OtherName << Where;
  EXPECT_EQ(Vm.Partitions, Other.Partitions) << OtherName << Where;
  EXPECT_TRUE(Vm.Cost == Other.Cost)
      << "cost counters diverged" << Where << ": VM {" << Vm.Cost.Ops
      << ", " << Vm.Cost.TableReads << ", " << Vm.Cost.TableWrites << ", "
      << Vm.Cost.ModelReads << ", " << Vm.Cost.Transcendentals << "} vs "
      << OtherName << " {" << Other.Cost.Ops << ", "
      << Other.Cost.TableReads << ", " << Other.Cost.TableWrites << ", "
      << Other.Cost.ModelReads << ", " << Other.Cost.Transcendentals
      << "}";
  EXPECT_EQ(Vm.Cycles, Other.Cycles) << OtherName << Where;
}

/// Runs \p Args through the bytecode VM, the AST tree-walker and the
/// native JIT kernel on both backends, with the sliding window on and
/// off, and asserts every observable — values, cell counts, cost
/// events, simulated cycles — is bit-identical across all three.
void expectEvaluatorsAgree(const CompiledRecurrence &Fn,
                           const std::vector<ArgValue> &Args) {
  // The whole point is to exercise the VM: the recursion must compile.
  ASSERT_NE(Fn.bytecode(), nullptr)
      << "recursion unexpectedly fell back to the AST evaluator";

  gpu::Device Dev;
  gpu::CostModel Model;
  DiagnosticEngine Diags;
  uint64_t FallbacksBefore =
      obs::MetricsRegistry::global().snapshot().counter("jit.fallbacks");
  for (bool Window : {true, false}) {
    for (bool Gpu : {true, false}) {
      RunOptions VmOpts;
      VmOpts.UseSlidingWindow = Window;
      RunOptions AstOpts = VmOpts;
      AstOpts.UseAstEvaluator = true;
      RunOptions JitOpts = VmOpts;
      JitOpts.Evaluator = EvalKind::Jit;
      JitOpts.JitCacheDir = jitCacheDirForTest();

      auto RunWith = [&](const RunOptions &Opts) {
        return Gpu ? Fn.runGpu(Args, Dev, Diags, Opts)
                   : Fn.runCpu(Args, Model, Diags, Opts);
      };
      auto Vm = RunWith(VmOpts);
      auto Ast = RunWith(AstOpts);
      auto Jit = RunWith(JitOpts);
      ASSERT_TRUE(Vm.has_value()) << Diags.str();
      ASSERT_TRUE(Ast.has_value()) << Diags.str();
      ASSERT_TRUE(Jit.has_value()) << Diags.str();

      std::string Where = std::string(" (window=") +
                          (Window ? "on" : "off") +
                          ", backend=" + (Gpu ? "gpu" : "cpu") + ")";
      expectRunsIdentical(*Vm, *Ast, "AST", Where);
      expectRunsIdentical(*Vm, *Jit, "JIT", Where);
    }
  }
  // The JIT legs must have run the compiled kernel, not the silent VM
  // fallback — otherwise the comparison above proves nothing.
  EXPECT_EQ(
      obs::MetricsRegistry::global().snapshot().counter("jit.fallbacks"),
      FallbacksBefore)
      << "a JIT leg silently fell back to the bytecode VM";
}

/// Deterministic pseudo-random string over \p Letters.
std::string randomString(const std::string &Letters, size_t Length,
                         uint64_t Seed) {
  std::string S;
  S.reserve(Length);
  uint64_t X = Seed * 6364136223846793005ull + 1442695040888963407ull;
  for (size_t I = 0; I != Length; ++I) {
    X = X * 6364136223846793005ull + 1442695040888963407ull;
    S.push_back(Letters[(X >> 33) % Letters.size()]);
  }
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// Case-study recursions
//===----------------------------------------------------------------------===//

TEST(DifferentialTest, SmithWaterman) {
  CompiledRecurrence Fn = compileOrDie(SmithWatermanSource);
  const bio::SubstitutionMatrix M =
      bio::SubstitutionMatrix::matchMismatch(bio::Alphabet::dna(), 2, 1);
  bio::Sequence A("a", "acgtacgtggtacacgt");
  bio::Sequence B("b", "tacgtaccgtgacgt");
  expectEvaluatorsAgree(Fn, {ArgValue::ofMatrix(&M), ArgValue::ofSeq(&A),
                             ArgValue(), ArgValue::ofSeq(&B), ArgValue()});
}

TEST(DifferentialTest, EditDistance) {
  CompiledRecurrence Fn = compileOrDie(EditDistanceSource);
  bio::Sequence S("s", "kitten");
  bio::Sequence T("t", "sitting");
  expectEvaluatorsAgree(Fn, {ArgValue::ofSeq(&S), ArgValue(),
                             ArgValue::ofSeq(&T), ArgValue()});
}

TEST(DifferentialTest, CasinoForward) {
  CompiledRecurrence Fn = compileOrDie(CasinoForwardSource, {"dice"});
  bio::Hmm Casino = bio::makeCasinoModel();
  std::string Rolls = Casino.sample(/*Seed=*/7);
  ASSERT_FALSE(Rolls.empty());
  bio::Sequence X("x", Rolls);
  expectEvaluatorsAgree(Fn, {ArgValue::ofHmm(&Casino), ArgValue(),
                             ArgValue::ofSeq(&X), ArgValue()});
}

TEST(DifferentialTest, GeneFinderViterbi) {
  CompiledRecurrence Fn = compileOrDie(DnaViterbiSource);
  bio::Hmm Genes = bio::makeGeneFinderModel();
  std::string Observed = Genes.sample(/*Seed=*/21);
  ASSERT_FALSE(Observed.empty());
  bio::Sequence X("x", Observed);
  expectEvaluatorsAgree(Fn, {ArgValue::ofHmm(&Genes), ArgValue(),
                             ArgValue::ofSeq(&X), ArgValue()});
}

TEST(DifferentialTest, CpgIslandViterbi) {
  CompiledRecurrence Fn = compileOrDie(DnaViterbiSource);
  bio::Hmm Cpg = bio::makeCpgIslandModel();
  std::string Observed = Cpg.sample(/*Seed=*/77);
  ASSERT_FALSE(Observed.empty());
  bio::Sequence X("x", Observed);
  expectEvaluatorsAgree(Fn, {ArgValue::ofHmm(&Cpg), ArgValue(),
                             ArgValue::ofSeq(&X), ArgValue()});
}

TEST(DifferentialTest, ProfileHmmForward) {
  CompiledRecurrence Fn = compileOrDie(DnaForwardSource);
  DiagnosticEngine Diags;
  bio::Hmm Raw =
      bio::makeProfileHmm(/*MatchPositions=*/5, bio::Alphabet::dna(),
                          /*Seed=*/11);
  auto Profile = bio::eliminateSilentStates(Raw, Diags);
  ASSERT_TRUE(Profile.has_value()) << Diags.str();
  std::string Observed = Profile->sample(/*Seed=*/3);
  ASSERT_FALSE(Observed.empty());
  bio::Sequence X("x", Observed);
  expectEvaluatorsAgree(Fn, {ArgValue::ofHmm(&*Profile), ArgValue(),
                             ArgValue::ofSeq(&X), ArgValue()});
}

//===----------------------------------------------------------------------===//
// Randomized inputs (seeded, deterministic)
//===----------------------------------------------------------------------===//

TEST(DifferentialTest, RandomSmithWatermanPairs) {
  CompiledRecurrence Fn = compileOrDie(SmithWatermanSource);
  const bio::SubstitutionMatrix M =
      bio::SubstitutionMatrix::matchMismatch(bio::Alphabet::dna(), 3, 2);
  const std::string &Letters = bio::Alphabet::dna().letters();
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    bio::Sequence A("a", randomString(Letters, 5 + Seed * 4, Seed));
    bio::Sequence B("b", randomString(Letters, 3 + Seed * 5, Seed + 100));
    expectEvaluatorsAgree(Fn,
                          {ArgValue::ofMatrix(&M), ArgValue::ofSeq(&A),
                           ArgValue(), ArgValue::ofSeq(&B), ArgValue()});
  }
}

TEST(DifferentialTest, RandomEditDistancePairs) {
  CompiledRecurrence Fn = compileOrDie(EditDistanceSource);
  const std::string &Letters = bio::Alphabet::english().letters();
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    bio::Sequence S("s", randomString(Letters, 4 + Seed * 3, Seed * 13));
    bio::Sequence T("t", randomString(Letters, 2 + Seed * 6, Seed * 17));
    expectEvaluatorsAgree(Fn, {ArgValue::ofSeq(&S), ArgValue(),
                               ArgValue::ofSeq(&T), ArgValue()});
  }
}

TEST(DifferentialTest, RandomProfileHmms) {
  CompiledRecurrence Forward = compileOrDie(DnaForwardSource);
  CompiledRecurrence Viterbi = compileOrDie(DnaViterbiSource);
  for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
    DiagnosticEngine Diags;
    bio::Hmm Raw = bio::makeProfileHmm(
        /*MatchPositions=*/static_cast<unsigned>(2 + Seed),
        bio::Alphabet::dna(), Seed * 31);
    auto Profile = bio::eliminateSilentStates(Raw, Diags);
    ASSERT_TRUE(Profile.has_value()) << Diags.str();
    std::string Observed = Profile->sample(Seed * 7);
    ASSERT_FALSE(Observed.empty());
    bio::Sequence X("x", Observed);
    std::vector<ArgValue> Args = {ArgValue::ofHmm(&*Profile), ArgValue(),
                                  ArgValue::ofSeq(&X), ArgValue()};
    expectEvaluatorsAgree(Forward, Args);
    expectEvaluatorsAgree(Viterbi, Args);
  }
}

//===----------------------------------------------------------------------===//
// Plumbing: plans carry the program; shipped scripts agree end to end
//===----------------------------------------------------------------------===//

TEST(DifferentialTest, PlansCarryTheCompiledProgram) {
  CompiledRecurrence Fn = compileOrDie(EditDistanceSource);
  ASSERT_NE(Fn.bytecode(), nullptr);
  bio::Sequence S("s", "abc"), T("t", "abd");
  std::vector<ArgValue> Args = {ArgValue::ofSeq(&S), ArgValue(),
                                ArgValue::ofSeq(&T), ArgValue()};
  DiagnosticEngine Diags;
  auto Box = Fn.domainFor(Args, Diags);
  ASSERT_TRUE(Box.has_value()) << Diags.str();
  auto Plan = Fn.planFor(*Box, RunOptions(), nullptr, Diags);
  ASSERT_NE(Plan, nullptr) << Diags.str();
  // The plan shares the function's program — including on cache hits.
  EXPECT_EQ(Plan->Program.get(), Fn.bytecode().get());
  auto Again = Fn.planFor(*Box, RunOptions(), nullptr, Diags);
  EXPECT_EQ(Again.get(), Plan.get());
  EXPECT_EQ(Again->Program.get(), Fn.bytecode().get());
}

TEST(DifferentialTest, JitUnderWorkerNesting) {
  // The JIT composes with both host-parallel axes: one kernel
  // invocation per (partition, simulated-thread-range) slice under
  // ScanWorkers, and per-problem kernels under BatchWorkers — every
  // observable bit-identical to the serial VM run.
  CompiledRecurrence Fn = compileOrDie(SmithWatermanSource);
  const bio::SubstitutionMatrix M =
      bio::SubstitutionMatrix::matchMismatch(bio::Alphabet::dna(), 2, 1);
  bio::Sequence A("a", randomString(bio::Alphabet::dna().letters(), 64, 5));
  bio::Sequence B("b", randomString(bio::Alphabet::dna().letters(), 57, 9));
  std::vector<ArgValue> Args = {ArgValue::ofMatrix(&M),
                                ArgValue::ofSeq(&A), ArgValue(),
                                ArgValue::ofSeq(&B), ArgValue()};
  gpu::Device Dev;
  DiagnosticEngine Diags;

  RunOptions VmOpts;
  VmOpts.ScanWorkers = 1;
  auto Vm = Fn.runGpu(Args, Dev, Diags, VmOpts);
  ASSERT_TRUE(Vm.has_value()) << Diags.str();

  for (unsigned ScanWorkers : {1u, 3u}) {
    RunOptions JitOpts;
    JitOpts.Evaluator = EvalKind::Jit;
    JitOpts.JitCacheDir = jitCacheDirForTest();
    JitOpts.ScanWorkers = ScanWorkers;
    JitOpts.ScanGrainCells = 1; // force the fan-out even on a small box
    auto Jit = Fn.runGpu(Args, Dev, Diags, JitOpts);
    ASSERT_TRUE(Jit.has_value()) << Diags.str();
    expectRunsIdentical(*Vm, *Jit, "JIT",
                        " (scan-workers=" + std::to_string(ScanWorkers) +
                            ")");
  }

  // Batch nesting: the same problem replicated, batch workers > 1.
  std::vector<std::vector<ArgValue>> Problems(4, Args);
  RunOptions VmBatch;
  VmBatch.BatchWorkers = 1;
  RunOptions JitBatch;
  JitBatch.Evaluator = EvalKind::Jit;
  JitBatch.JitCacheDir = jitCacheDirForTest();
  JitBatch.BatchWorkers = 2;
  JitBatch.ScanWorkers = 2;
  auto VmB = Fn.runGpuBatch(Problems, Dev, Diags, VmBatch);
  auto JitB = Fn.runGpuBatch(Problems, Dev, Diags, JitBatch);
  ASSERT_TRUE(VmB.has_value()) << Diags.str();
  ASSERT_TRUE(JitB.has_value()) << Diags.str();
  ASSERT_EQ(VmB->Problems.size(), JitB->Problems.size());
  for (size_t I = 0; I != VmB->Problems.size(); ++I)
    expectRunsIdentical(VmB->Problems[I], JitB->Problems[I], "JIT",
                        " (batch problem " + std::to_string(I) + ")");
  EXPECT_EQ(VmB->TotalCycles, JitB->TotalCycles);
}

TEST(DifferentialTest, ShippedScriptsProduceIdenticalOutput) {
  for (const char *Script :
       {"smith_waterman.rdsl", "edit_distance.rdsl", "casino.rdsl"}) {
    std::string Source = readFileOrDie(scriptsPath(Script));
    auto RunScript = [&](EvalKind Evaluator) {
      DiagnosticEngine Diags;
      Interpreter::Options Opts;
      Opts.BasePath = PARREC_SCRIPTS_DIR;
      Opts.Run.Evaluator = Evaluator;
      Opts.Run.JitCacheDir = jitCacheDirForTest();
      Interpreter Interp(Diags, std::move(Opts));
      auto Output = Interp.run(Source);
      EXPECT_TRUE(Output.has_value())
          << Script << " failed: " << Diags.str();
      return Output.value_or("");
    };
    std::string VmOut = RunScript(EvalKind::Vm);
    std::string AstOut = RunScript(EvalKind::Ast);
    std::string JitOut = RunScript(EvalKind::Jit);
    EXPECT_FALSE(VmOut.empty()) << Script;
    EXPECT_EQ(VmOut, AstOut) << Script;
    EXPECT_EQ(VmOut, JitOut) << Script;
  }
}
