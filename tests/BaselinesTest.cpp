//===- BaselinesTest.cpp - Tests for the comparison systems --------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "baselines/HmmBaselines.h"
#include "baselines/SmithWaterman.h"
#include "bio/Fasta.h"
#include "bio/HmmZoo.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace parrec;
using namespace parrec::baselines;

namespace {

SwParams blosumParams() {
  SwParams Params;
  Params.Matrix = &bio::SubstitutionMatrix::blosum62();
  Params.GapPenalty = 4;
  return Params;
}

/// Brute-force local alignment over all substring pairs; exponential in
/// nothing but tiny inputs.
int bruteForceLocalScore(const std::string &A, const std::string &B,
                         const SwParams &Params) {
  // DP is the standard algorithm; as an *independent* check use a
  // different formulation: best over all start offsets of a
  // global-alignment DP allowed to end anywhere.
  int Best = 0;
  for (size_t I0 = 0; I0 <= A.size(); ++I0)
    for (size_t J0 = 0; J0 <= B.size(); ++J0) {
      // Global DP from (I0, J0), never clamped at zero.
      size_t M = A.size() - I0, N = B.size() - J0;
      std::vector<int> Prev(N + 1), Cur(N + 1);
      for (size_t J = 0; J <= N; ++J)
        Prev[J] = -static_cast<int>(J) * Params.GapPenalty;
      Best = std::max(Best, 0);
      for (size_t I = 1; I <= M; ++I) {
        Cur[0] = -static_cast<int>(I) * Params.GapPenalty;
        for (size_t J = 1; J <= N; ++J) {
          int Diag = Prev[J - 1] + Params.Matrix->score(A[I0 + I - 1],
                                                        B[J0 + J - 1]);
          Cur[J] = std::max({Diag, Prev[J] - Params.GapPenalty,
                             Cur[J - 1] - Params.GapPenalty});
          Best = std::max(Best, Cur[J]);
        }
        std::swap(Prev, Cur);
      }
    }
  return Best;
}

} // namespace

TEST(SmithWatermanScoreTest, KnownAlignments) {
  gpu::CostCounter Cost;
  SwParams Params = blosumParams();
  // Identical sequences score the sum of diagonal matrix entries.
  bio::Sequence A("a", "HEAGAWGHEE");
  EXPECT_EQ(smithWatermanScore(A, A, Params, Cost),
            8 + 5 + 4 + 6 + 4 + 11 + 6 + 8 + 5 + 5);
  // Empty sequences score zero.
  bio::Sequence Empty("e", "");
  EXPECT_EQ(smithWatermanScore(A, Empty, Params, Cost), 0);
  EXPECT_EQ(smithWatermanScore(Empty, Empty, Params, Cost), 0);
}

TEST(SmithWatermanScoreTest, MatchesBruteForceOnSmallCases) {
  SwParams Params = blosumParams();
  SplitMix64 Rng(99);
  for (int Case = 0; Case != 12; ++Case) {
    bio::Sequence A = bio::randomSequence(bio::Alphabet::protein(),
                                          Rng.nextInRange(0, 7),
                                          Rng.next());
    bio::Sequence B = bio::randomSequence(bio::Alphabet::protein(),
                                          Rng.nextInRange(0, 7),
                                          Rng.next());
    gpu::CostCounter Cost;
    EXPECT_EQ(smithWatermanScore(A, B, Params, Cost),
              bruteForceLocalScore(A.data(), B.data(), Params))
        << A.data() << " vs " << B.data();
  }
}

TEST(SmithWatermanSearchTest, AllVariantsAgreeOnScores) {
  SwParams Params = blosumParams();
  bio::Sequence Query =
      bio::randomSequence(bio::Alphabet::protein(), 40, 1);
  bio::SequenceDatabase Db =
      bio::randomDatabase(bio::Alphabet::protein(), 25, 5, 120, 2);

  gpu::Device Device;
  SearchResult Cpu = searchSmithWatermanCpu(Query, Db, Params,
                                            Device.costModel());
  SearchResult Intra = searchCudaSwIntra(Query, Db, Params, Device);
  SearchResult Inter = searchCudaSwInter(Query, Db, Params, Device);
  SearchResult Hybrid = searchCudaSwHybrid(Query, Db, Params, Device);

  ASSERT_EQ(Cpu.Scores.size(), Db.size());
  EXPECT_EQ(Cpu.Scores, Intra.Scores);
  EXPECT_EQ(Cpu.Scores, Inter.Scores);
  EXPECT_EQ(Cpu.Scores, Hybrid.Scores)
      << "hybrid must reassemble scores in database order";
  for (const SearchResult *R : {&Cpu, &Intra, &Inter, &Hybrid})
    EXPECT_GT(R->Seconds, 0.0);
}

TEST(SmithWatermanSearchTest, GpuVariantsBeatCpuAtScale) {
  SwParams Params = blosumParams();
  bio::Sequence Query =
      bio::randomSequence(bio::Alphabet::protein(), 100, 5);
  bio::SequenceDatabase Db =
      bio::randomDatabase(bio::Alphabet::protein(), 100, 50, 200, 6);
  gpu::Device Device;
  double Cpu = searchSmithWatermanCpu(Query, Db, Params,
                                      Device.costModel())
                   .Seconds;
  double Intra = searchCudaSwIntra(Query, Db, Params, Device).Seconds;
  EXPECT_LT(Intra * 5, Cpu);
}

TEST(SmithWatermanSearchTest, HybridNeverWorseThanBothAtScale) {
  SwParams Params = blosumParams();
  bio::Sequence Query =
      bio::randomSequence(bio::Alphabet::protein(), 80, 5);
  // Mixed database: plenty of short reads plus long subjects; big
  // enough to fill the device lanes.
  bio::SequenceDatabase Db =
      bio::randomDatabase(bio::Alphabet::protein(), 3000, 30, 600, 6);
  gpu::Device Device;
  double Intra = searchCudaSwIntra(Query, Db, Params, Device).Seconds;
  double Inter = searchCudaSwInter(Query, Db, Params, Device).Seconds;
  double Hybrid = searchCudaSwHybrid(Query, Db, Params, Device).Seconds;
  EXPECT_LE(Hybrid, Intra * 1.05);
  EXPECT_LE(Hybrid, Inter * 1.05);
}

//===----------------------------------------------------------------------===//
// HMM baselines
//===----------------------------------------------------------------------===//

TEST(ForwardBaselineTest, ProbabilityCalculusUnderFigure11Convention) {
  // The Figure 11 recursion lets the silent end state consume one index
  // step (its "emission" is 1.0 and the recursion still steps i-1), so
  // F(end, i) is the probability of emitting i-1 symbols and then
  // terminating. Every tool in this repository — the DSL backend and all
  // baselines — implements exactly this convention (DESIGN.md), which
  // these identities pin down over the casino model.
  bio::Hmm Model = bio::makeCasinoModel();
  const bio::Alphabet &Alpha = Model.alphabet();

  // Sum of F(end, 2) over all 2-symbol strings: the second symbol is
  // ignored (the end step consumed its slot), so the total is
  // |alphabet| * P(emit exactly one symbol then end) = 6 * 1.0 * 0.01.
  double TotalEnd = 0.0;
  std::string S = "aa";
  for (unsigned C0 = 0; C0 != Alpha.size(); ++C0)
    for (unsigned C1 = 0; C1 != Alpha.size(); ++C1) {
      S[0] = Alpha.charAt(C0);
      S[1] = Alpha.charAt(C1);
      gpu::CostCounter Cost;
      TotalEnd += std::exp(forwardLogLikelihood(
          Model, bio::Sequence("s", S), Cost));
    }
  EXPECT_NEAR(TotalEnd, Alpha.size() * 1.0 * 0.01, 1e-12);
}

TEST(ForwardBaselineTest, AllToolsProduceIdenticalLikelihoods) {
  DiagnosticEngine Diags;
  bio::Hmm Raw = bio::makeProfileHmm(6, bio::Alphabet::protein(), 3);
  auto Model = bio::eliminateSilentStates(Raw, Diags);
  ASSERT_TRUE(Model.has_value());
  bio::SequenceDatabase Db =
      bio::randomDatabase(bio::Alphabet::protein(), 10, 5, 30, 4);

  gpu::Device Device;
  HmmSearchResult Hmmoc = searchHmmocCpu(*Model, Db,
                                         Device.costModel());
  HmmSearchResult Hmmer2 = searchHmmer2Cpu(*Model, Db,
                                           Device.costModel());
  HmmSearchResult Hmmer3 = searchHmmer3Cpu(*Model, Db,
                                           Device.costModel());
  HmmSearchResult Port = searchGpuHmmer(*Model, Db, Device);
  for (size_t I = 0; I != Db.size(); ++I) {
    EXPECT_DOUBLE_EQ(Hmmoc.LogLikelihoods[I],
                     Hmmer2.LogLikelihoods[I]);
    EXPECT_DOUBLE_EQ(Hmmoc.LogLikelihoods[I],
                     Hmmer3.LogLikelihoods[I]);
    EXPECT_DOUBLE_EQ(Hmmoc.LogLikelihoods[I], Port.LogLikelihoods[I]);
  }
}

TEST(ForwardBaselineTest, CostOrderingMatchesToolSophistication) {
  DiagnosticEngine Diags;
  bio::Hmm Raw = bio::makeProfileHmm(10, bio::Alphabet::protein(), 3);
  auto Model = bio::eliminateSilentStates(Raw, Diags);
  ASSERT_TRUE(Model.has_value());
  bio::SequenceDatabase Db =
      bio::randomDatabase(bio::Alphabet::protein(), 200, 60, 120, 4);

  gpu::Device Device;
  double Hmmoc = searchHmmocCpu(*Model, Db, Device.costModel()).Seconds;
  double Hmmer2 =
      searchHmmer2Cpu(*Model, Db, Device.costModel()).Seconds;
  double Hmmer3 =
      searchHmmer3Cpu(*Model, Db, Device.costModel()).Seconds;
  double Port = searchGpuHmmer(*Model, Db, Device).Seconds;

  // Generic < specialised < vectorised+threaded; the GPU port beats the
  // single-threaded CPU tools.
  EXPECT_GT(Hmmoc, Hmmer2);
  EXPECT_GT(Hmmer2, Hmmer3 * 5);
  EXPECT_GT(Hmmer2, Port);
  EXPECT_LT(Hmmer3, Port)
      << "HMMER3's optimised CPU pipeline beats the naive GPU port "
         "(the paper's closing observation)";
}

TEST(ForwardBaselineTest, GeneratedSequencesScoreHigher) {
  bio::Hmm Model = bio::makeCpgIslandModel();
  std::string FromModel = Model.sample(5);
  ASSERT_GT(FromModel.size(), 10u);
  bio::Sequence Sampled("m", FromModel);
  bio::Sequence Random = bio::randomSequence(
      bio::Alphabet::dna(), Sampled.length(), 1234);
  gpu::CostCounter Cost;
  EXPECT_GT(forwardLogLikelihood(Model, Sampled, Cost),
            forwardLogLikelihood(Model, Random, Cost));
}
