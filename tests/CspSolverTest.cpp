//===- CspSolverTest.cpp - Tests for the CSP solver --------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "solver/CspSolver.h"

#include "support/Random.h"

#include <gtest/gtest.h>

using namespace parrec::poly;
using namespace parrec::solver;

TEST(CspSolverTest, FeasibilityOnly) {
  // x + y >= 3, x - y == 1, x,y in [0, 5].
  CspSolver Solver(2, 0, 5);
  Solver.addConstraint(Constraint::ge(AffineExpr({1, 1}, -3)));
  Solver.addConstraint(Constraint::eq(AffineExpr({1, -1}, -1)));
  auto Solution = Solver.solve();
  ASSERT_TRUE(Solution.has_value());
  int64_t X = Solution->Assignment[0], Y = Solution->Assignment[1];
  EXPECT_GE(X + Y, 3);
  EXPECT_EQ(X - Y, 1);
}

TEST(CspSolverTest, Infeasible) {
  CspSolver Solver(1, 0, 3);
  Solver.addConstraint(Constraint::ge(AffineExpr({1}, -10))); // x >= 10.
  EXPECT_FALSE(Solver.solve().has_value());
}

TEST(CspSolverTest, MinimisesObjective) {
  // Minimise 3x + 2y subject to x + y >= 4, x,y in [0, 10].
  CspSolver Solver(2, 0, 10);
  Solver.addConstraint(Constraint::ge(AffineExpr({1, 1}, -4)));
  Solver.setObjective(AffineExpr({3, 2}, 0));
  auto Solution = Solver.solve();
  ASSERT_TRUE(Solution.has_value());
  // Optimum: x = 0, y = 4 with objective 8.
  EXPECT_EQ(Solution->ObjectiveValue, 8);
  EXPECT_EQ(Solution->Assignment[0], 0);
  EXPECT_EQ(Solution->Assignment[1], 4);
}

TEST(CspSolverTest, NegativeRanges) {
  // Minimise x subject to x >= -3 within [-5, 5].
  CspSolver Solver(1, -5, 5);
  Solver.addConstraint(Constraint::ge(AffineExpr({1}, 3)));
  Solver.setObjective(AffineExpr({1}, 0));
  auto Solution = Solver.solve();
  ASSERT_TRUE(Solution.has_value());
  EXPECT_EQ(Solution->Assignment[0], -3);
}

TEST(CspSolverTest, FixAndRestrict) {
  CspSolver Solver(3, -10, 10);
  Solver.fixVar(0, 2);
  Solver.restrictVar(1, 0, 10);
  Solver.addConstraint(Constraint::eq(AffineExpr({1, 1, 1}, 0)));
  Solver.setObjective(AffineExpr({0, 1, 0}, 0));
  auto Solution = Solver.solve();
  ASSERT_TRUE(Solution.has_value());
  EXPECT_EQ(Solution->Assignment[0], 2);
  EXPECT_EQ(Solution->Assignment[1], 0);
  EXPECT_EQ(Solution->Assignment[2], -2);
}

TEST(CspSolverTest, EmptyDomainAfterRestriction) {
  CspSolver Solver(1, 0, 5);
  Solver.restrictVar(0, 3, 2);
  EXPECT_FALSE(Solver.solve().has_value());
}

TEST(CspSolverTest, PropagationNarrowsRanges) {
  // x in [0, 10], y in [0, 10], x + y <= 4, x >= 2.
  CspSolver Solver(2, 0, 10);
  Solver.addConstraint(Constraint::ge(AffineExpr({-1, -1}, 4)));
  Solver.addConstraint(Constraint::ge(AffineExpr({1, 0}, -2)));
  auto Ranges = Solver.propagate();
  ASSERT_TRUE(Ranges.has_value());
  EXPECT_EQ((*Ranges)[0].first, 2);
  EXPECT_EQ((*Ranges)[0].second, 4);
  EXPECT_EQ((*Ranges)[1].first, 0);
  EXPECT_EQ((*Ranges)[1].second, 2);
}

TEST(CspSolverTest, PropagationDetectsInfeasibility) {
  CspSolver Solver(2, 0, 3);
  Solver.addConstraint(Constraint::ge(AffineExpr({1, 1}, -10)));
  EXPECT_FALSE(Solver.propagate().has_value());
}

/// Property: branch-and-bound agrees with exhaustive enumeration on
/// random small CSPs (feasibility and optimal objective value).
TEST(CspSolverTest, AgreesWithBruteForceOnRandomProblems) {
  using parrec::poly::AffineExpr;
  using parrec::poly::Constraint;
  parrec::SplitMix64 Rng(4242);
  for (int Round = 0; Round != 40; ++Round) {
    unsigned NumVars = 2 + static_cast<unsigned>(Rng.nextBelow(2));
    int64_t Low = -4, High = 4;
    CspSolver Solver(NumVars, Low, High);

    unsigned NumConstraints =
        1 + static_cast<unsigned>(Rng.nextBelow(4));
    std::vector<Constraint> Cs;
    for (unsigned C = 0; C != NumConstraints; ++C) {
      AffineExpr E(NumVars);
      for (unsigned V = 0; V != NumVars; ++V)
        E.setCoefficient(V, Rng.nextInRange(-3, 3));
      E.setConstantTerm(Rng.nextInRange(-5, 5));
      Constraint Con = Rng.nextBelow(4) == 0 ? Constraint::eq(E)
                                             : Constraint::ge(E);
      Cs.push_back(Con);
      Solver.addConstraint(Con);
    }
    AffineExpr Objective(NumVars);
    for (unsigned V = 0; V != NumVars; ++V)
      Objective.setCoefficient(V, Rng.nextInRange(-3, 3));
    Solver.setObjective(Objective);

    // Brute force.
    std::optional<int64_t> BestObjective;
    std::vector<int64_t> Point(NumVars, Low);
    while (true) {
      bool Feasible = true;
      for (const Constraint &Con : Cs) {
        int64_t V = Con.Expr.evaluate(Point);
        if (Con.Kind == Constraint::EQ ? V != 0 : V < 0) {
          Feasible = false;
          break;
        }
      }
      if (Feasible) {
        int64_t Obj = Objective.evaluate(Point);
        if (!BestObjective || Obj < *BestObjective)
          BestObjective = Obj;
      }
      unsigned D = 0;
      for (; D != NumVars; ++D) {
        if (++Point[D] <= High)
          break;
        Point[D] = Low;
      }
      if (D == NumVars)
        break;
    }

    auto Solution = Solver.solve();
    ASSERT_EQ(Solution.has_value(), BestObjective.has_value())
        << "round " << Round;
    if (Solution) {
      EXPECT_EQ(Solution->ObjectiveValue, *BestObjective)
          << "round " << Round;
    }
  }
}

TEST(CspSolverTest, PrefersSmallMagnitudes) {
  // Both (1, 1) and (2, 2) satisfy x == y, x >= 1; without an objective
  // the solver should land on the smallest magnitudes.
  CspSolver Solver(2, -10, 10);
  Solver.addConstraint(Constraint::eq(AffineExpr({1, -1}, 0)));
  Solver.addConstraint(Constraint::ge(AffineExpr({1, 0}, -1)));
  auto Solution = Solver.solve();
  ASSERT_TRUE(Solution.has_value());
  EXPECT_EQ(Solution->Assignment[0], 1);
  EXPECT_EQ(Solution->Assignment[1], 1);
}
