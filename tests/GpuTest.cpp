//===- GpuTest.cpp - Tests for the GPU execution-model simulator -------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "gpu/Device.h"

#include <gtest/gtest.h>

using namespace parrec::gpu;

TEST(CostModelTest, CellCycles) {
  CostModel Model;
  CostCounter C;
  C.Ops = 10;
  C.TableReads = 2;
  C.TableWrites = 1;
  C.ModelReads = 3;
  C.Transcendentals = 2;
  EXPECT_EQ(Model.gpuCellCycles(C, /*TableInShared=*/true),
            10 * Model.GpuCyclesPerOp +
                2 * Model.GpuTranscendentalCycles +
                3 * Model.SharedMemLatencyCycles +
                3 * Model.SharedMemLatencyCycles);
  EXPECT_EQ(Model.gpuCellCycles(C, /*TableInShared=*/false),
            10 * Model.GpuCyclesPerOp +
                2 * Model.GpuTranscendentalCycles +
                3 * Model.GlobalMemLatencyCycles +
                3 * Model.SharedMemLatencyCycles);
  EXPECT_EQ(Model.cpuCycles(C),
            10 * Model.CpuCyclesPerOp +
                2 * Model.CpuTranscendentalCycles +
                6 * Model.CpuMemLatencyCycles);
}

TEST(CostModelTest, SecondsConversion) {
  CostModel Model;
  EXPECT_DOUBLE_EQ(Model.gpuSeconds(1400000000ull), 1.0);
  EXPECT_DOUBLE_EQ(Model.cpuSeconds(2260000000ull), 1.0);
  EXPECT_EQ(Model.totalGpuLanes(), 15u * 32u);
}

TEST(CostCounterTest, Arithmetic) {
  CostCounter A{10, 2, 1, 4};
  CostCounter B{3, 1, 1, 2};
  A += B;
  EXPECT_EQ(A.Ops, 13u);
  EXPECT_EQ(A.tableAccesses(), 5u);
  CostCounter D = A - B;
  EXPECT_EQ(D.Ops, 10u);
  EXPECT_EQ(D.ModelReads, 4u);
}

TEST(BlockTimerTest, LockstepMaxPlusSync) {
  BlockTimer Timer(4);
  Timer.addThreadCycles(0, 10);
  Timer.addThreadCycles(1, 25);
  Timer.addThreadCycles(2, 5);
  // Partition advances by the slowest thread plus the barrier.
  EXPECT_EQ(Timer.closePartition(64), 25u + 64u);
  // Accumulators reset between partitions.
  Timer.addThreadCycles(3, 7);
  EXPECT_EQ(Timer.closePartition(64), 7u + 64u);
  EXPECT_EQ(Timer.totalCycles(), 25u + 64u + 7u + 64u);
}

TEST(DeviceTest, DispatchBalancesAcrossMultiprocessors) {
  CostModel Model;
  Model.NumMultiprocessors = 4;
  Model.KernelLaunchCycles = 0;
  Device Dev(Model);

  // Eight equal problems on four MPs: two rounds.
  std::vector<uint64_t> Problems(8, 100);
  EXPECT_EQ(Dev.dispatchProblems(Problems), 200u);

  // One giant problem dominates.
  Problems.push_back(10000);
  EXPECT_EQ(Dev.dispatchProblems(Problems), 10000u);

  EXPECT_EQ(Dev.dispatchProblems({}), 0u);
}

TEST(DeviceTest, DispatchIsNearOptimal) {
  CostModel Model;
  Model.NumMultiprocessors = 3;
  Model.KernelLaunchCycles = 0;
  Device Dev(Model);
  // LPT on {7,6,5,4,3,2}: loads end up (7+2, 6+3, 5+4) — makespan 9,
  // which is optimal here.
  EXPECT_EQ(Dev.dispatchProblems({7, 6, 5, 4, 3, 2}), 9u);
}

TEST(DeviceTest, InterTaskRounds) {
  CostModel Model;
  Model.NumMultiprocessors = 2;
  Model.CoresPerMultiprocessor = 2; // 4 lanes.
  Model.KernelLaunchCycles = 0;
  Device Dev(Model);

  // Six tasks on four lanes: round 1 max(1,2,3,4)=4, round 2 max(5,6)=6.
  EXPECT_EQ(Dev.interTaskCycles({1, 2, 3, 4, 5, 6}), 10u);
  EXPECT_EQ(Dev.interTaskCycles({}), 0u);
}

TEST(DeviceTest, LaunchOverheadCharged) {
  CostModel Model;
  Model.NumMultiprocessors = 2;
  Model.KernelLaunchCycles = 500;
  Device Dev(Model);
  EXPECT_EQ(Dev.dispatchProblems({100}), 600u);
}

TEST(GpuRunMetricsTest, AggregationAndRendering) {
  CostModel Model;
  GpuRunMetrics A;
  A.Cycles = 1000;
  A.Partitions = 5;
  A.CellsComputed = 50;
  A.TableBytes = 100;
  GpuRunMetrics B = A;
  B.TableBytes = 400;
  A += B;
  EXPECT_EQ(A.Cycles, 2000u);
  EXPECT_EQ(A.Partitions, 10u);
  EXPECT_EQ(A.TableBytes, 400u) << "table bytes aggregate by max";
  EXPECT_NE(A.str(Model).find("cells=100"), std::string::npos);
}
