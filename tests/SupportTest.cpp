//===- SupportTest.cpp - Tests for the support library ----------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"
#include "support/Random.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace parrec;

TEST(SourceLocationTest, Rendering) {
  EXPECT_EQ(SourceLocation(3, 7).str(), "3:7");
  EXPECT_EQ(SourceLocation().str(), "<unknown>");
  EXPECT_TRUE(SourceLocation(1, 1).isValid());
  EXPECT_FALSE(SourceLocation().isValid());
}

TEST(DiagnosticsTest, CountsAndRendering) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning({1, 2}, "something odd");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error({2, 5}, "something wrong");
  Diags.note({}, "context");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  std::string Text = Diags.str();
  EXPECT_NE(Text.find("1:2: warning: something odd"), std::string::npos);
  EXPECT_NE(Text.find("2:5: error: something wrong"), std::string::npos);
  EXPECT_NE(Text.find("note: context"), std::string::npos);
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diagnostics().empty());
}

TEST(StringUtilsTest, Split) {
  auto Pieces = splitString("a,b,,c", ',');
  ASSERT_EQ(Pieces.size(), 4u);
  EXPECT_EQ(Pieces[0], "a");
  EXPECT_EQ(Pieces[2], "");
  EXPECT_EQ(Pieces[3], "c");
  EXPECT_EQ(splitString("", ',').size(), 1u);
}

TEST(StringUtilsTest, Trim) {
  EXPECT_EQ(trimString("  hi \t"), "hi");
  EXPECT_EQ(trimString(""), "");
  EXPECT_EQ(trimString(" \n "), "");
}

TEST(StringUtilsTest, Join) {
  EXPECT_EQ(joinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(joinStrings({}, ", "), "");
}

TEST(StringUtilsTest, AffineTerms) {
  std::string Out;
  bool First = true;
  appendAffineTerm(Out, 1, "x", First);
  appendAffineTerm(Out, -2, "y", First);
  appendAffineTerm(Out, 0, "z", First);
  EXPECT_EQ(Out, "x - 2*y");

  Out.clear();
  First = true;
  appendAffineTerm(Out, -1, "x", First);
  EXPECT_EQ(Out, "-x");
}

TEST(RandomTest, Deterministic) {
  SplitMix64 A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RandomTest, RangesRespected) {
  SplitMix64 Rng(7);
  for (int I = 0; I < 1000; ++I) {
    int64_t V = Rng.nextInRange(-5, 9);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 9);
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
    EXPECT_LT(Rng.nextBelow(17), 17u);
  }
}
