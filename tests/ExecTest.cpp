//===- ExecTest.cpp - Tests for the plan/backend execution layer -------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the staged execution architecture: the PlanCache (LRU
/// behaviour, and that a second same-shaped run performs zero schedule
/// synthesis or loop generation), bit-identical results between full
/// and sliding-window tables on the shipped .rdsl example recursions,
/// and determinism of the parallel batch across worker counts.
///
//===----------------------------------------------------------------------===//

#include "bio/Fasta.h"
#include "bio/HmmZoo.h"
#include "exec/ParallelFor.h"
#include "runtime/CompiledRecurrence.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <thread>

using namespace parrec;
using namespace parrec::runtime;
using codegen::ArgValue;

#ifndef PARREC_SCRIPTS_DIR
#error "build must define PARREC_SCRIPTS_DIR"
#endif

namespace {

std::string scriptsPath(const std::string &Relative) {
  return std::string(PARREC_SCRIPTS_DIR) + "/" + Relative;
}

std::string readFileOrDie(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

// The recursions of the shipped examples/scripts/*.rdsl, verbatim.
const char *ShippedSmithWatermanSource =
    "int sw(matrix[dna] m, seq[dna] a, index[a] i, seq[dna] b, index[b] j) =\n"
    "  if i == 0 then 0\n"
    "  else if j == 0 then 0\n"
    "  else 0 max (sw(i-1, j-1) + m[a[i-1], b[j-1]])\n"
    "       max (sw(i-1, j) - 2) max (sw(i, j-1) - 2)\n";

const char *ShippedEditDistanceSource =
    "int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =\n"
    "  if i == 0 then j\n"
    "  else if j == 0 then i\n"
    "  else if s[i-1] == t[j-1] then d(i-1, j-1)\n"
    "  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1\n";

const char *ShippedCasinoForwardSource =
    "prob forward(hmm h, state[h] s, seq[dice] x, index[x] i) =\n"
    "  if i == 0 then\n"
    "    if s.isstart then 1.0 else 0.0\n"
    "  else\n"
    "    (if s.isend then 1.0 else s.emission[x[i-1]]) *\n"
    "    sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))\n";

CompiledRecurrence compileOrDie(const char *Source,
                                std::vector<std::string> Extra = {}) {
  DiagnosticEngine Diags;
  auto Compiled =
      CompiledRecurrence::compile(Source, Diags, std::move(Extra));
  EXPECT_TRUE(Compiled.has_value()) << Diags.str();
  return std::move(*Compiled);
}

/// Runs one problem on the GPU simulator with the sliding window on and
/// off and asserts the observable values are bit-identical.
void expectWindowInvariant(const CompiledRecurrence &Fn,
                           const std::vector<ArgValue> &Args) {
  gpu::Device Dev;
  DiagnosticEngine Diags;
  RunOptions WithWindow, NoWindow;
  WithWindow.UseSlidingWindow = true;
  NoWindow.UseSlidingWindow = false;
  auto A = Fn.runGpu(Args, Dev, Diags, WithWindow);
  auto B = Fn.runGpu(Args, Dev, Diags, NoWindow);
  ASSERT_TRUE(A.has_value()) << Diags.str();
  ASSERT_TRUE(B.has_value()) << Diags.str();
  // Bit-identical, not approximately equal: both runs evaluate the same
  // cells in the same partition order.
  EXPECT_EQ(A->RootValue, B->RootValue);
  EXPECT_EQ(A->TableMax, B->TableMax);
  EXPECT_EQ(A->Cells, B->Cells);
  EXPECT_EQ(A->UsedSchedule, B->UsedSchedule);
  // The window run must actually have used the compressed table.
  EXPECT_LT(A->Metrics.TableBytes, B->Metrics.TableBytes);
}

} // namespace

//===----------------------------------------------------------------------===//
// PlanCache unit behaviour
//===----------------------------------------------------------------------===//

TEST(PlanCacheTest, LruEvictionAndStats) {
  exec::PlanCache Cache(/*Capacity=*/2);
  auto keyFor = [](int64_t Upper) {
    exec::PlanKey Key;
    Key.Lower = {0, 0};
    Key.Upper = {Upper, Upper};
    return Key;
  };
  auto Plan = std::make_shared<const exec::ExecutablePlan>();

  EXPECT_EQ(Cache.lookup(keyFor(1)), nullptr);
  Cache.insert(keyFor(1), Plan);
  Cache.insert(keyFor(2), Plan);
  EXPECT_NE(Cache.lookup(keyFor(1)), nullptr);

  // Key 2 is now least recently used; inserting a third evicts it.
  Cache.insert(keyFor(3), Plan);
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.lookup(keyFor(2)), nullptr);
  EXPECT_NE(Cache.lookup(keyFor(1)), nullptr);
  EXPECT_NE(Cache.lookup(keyFor(3)), nullptr);

  exec::PlanCache::Stats Stats = Cache.stats();
  EXPECT_EQ(Stats.Hits, 3u);
  EXPECT_EQ(Stats.Misses, 2u);
  EXPECT_EQ(Stats.Evictions, 1u);

  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_EQ(Cache.stats().Hits, 0u);
}

TEST(PlanCacheTest, KeyDistinguishesOptionsAndSchedule) {
  solver::DomainBox Box = solver::DomainBox::fromExtents({4, 4});
  solver::Schedule S{{1, 2}};
  exec::PlanKey Minimal = exec::PlanKey::make(Box, true, false, nullptr);
  exec::PlanKey Forced = exec::PlanKey::make(Box, true, false, &S);
  exec::PlanKey NoWindow = exec::PlanKey::make(Box, false, false, nullptr);
  exec::PlanKey Kept = exec::PlanKey::make(Box, true, true, nullptr);
  EXPECT_FALSE(Minimal == Forced);
  EXPECT_FALSE(Minimal == NoWindow);
  EXPECT_FALSE(Minimal == Kept);
  EXPECT_TRUE(Minimal == exec::PlanKey::make(Box, true, false, nullptr));
}

TEST(PlanCacheTest, ConcurrentHammerKeepsCountersConsistent) {
  // Many threads, few fingerprints, a capacity below the key count so
  // eviction churns constantly. The cache is internally synchronised;
  // under TSan this doubles as a data-race check, and the counters must
  // balance exactly against what the threads observed.
  exec::PlanCache Cache(/*Capacity=*/4);
  auto Plan = std::make_shared<const exec::ExecutablePlan>();
  constexpr unsigned Threads = 8;
  constexpr unsigned Iterations = 2000;
  constexpr unsigned Keys = 6;
  auto keyFor = [](unsigned K) {
    exec::PlanKey Key;
    Key.Lower = {0, 0};
    Key.Upper = {static_cast<int64_t>(K + 1),
                 static_cast<int64_t>(2 * K + 1)};
    return Key;
  };

  std::atomic<uint64_t> ObservedHits{0}, ObservedMisses{0};
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([&, T] {
      uint64_t Hits = 0, Misses = 0;
      for (unsigned I = 0; I != Iterations; ++I) {
        unsigned K = (T * 7 + I * 13) % Keys;
        if (Cache.lookup(keyFor(K))) {
          ++Hits;
        } else {
          ++Misses;
          Cache.insert(keyFor(K), Plan);
        }
      }
      ObservedHits += Hits;
      ObservedMisses += Misses;
    });
  for (std::thread &T : Pool)
    T.join();

  exec::PlanCache::Stats Stats = Cache.stats();
  EXPECT_EQ(Stats.Hits, ObservedHits.load());
  EXPECT_EQ(Stats.Misses, ObservedMisses.load());
  EXPECT_EQ(Stats.Hits + Stats.Misses,
            static_cast<uint64_t>(Threads) * Iterations);
  // Inserts only follow misses, and only a full cache evicts.
  EXPECT_LE(Stats.Evictions, Stats.Misses);
  EXPECT_GT(Stats.Evictions, 0u);
  EXPECT_LE(Cache.size(), Cache.capacity());
}

//===----------------------------------------------------------------------===//
// Plan cache on the run path: second run does zero synthesis work
//===----------------------------------------------------------------------===//

TEST(PlanCachePipelineTest, SecondRunHitsCacheAndMatchesFreshSynthesis) {
  CompiledRecurrence Fn = compileOrDie(ShippedEditDistanceSource);
  bio::Sequence S("s", "kitten");
  bio::Sequence T("t", "sitting");
  std::vector<ArgValue> Args = {ArgValue::ofSeq(&S), ArgValue(),
                                ArgValue::ofSeq(&T), ArgValue()};
  gpu::Device Dev;
  DiagnosticEngine Diags;

  auto First = Fn.runGpu(Args, Dev, Diags);
  ASSERT_TRUE(First.has_value()) << Diags.str();
  exec::PlanCache::Stats AfterFirst = Fn.planCacheStats();
  EXPECT_EQ(AfterFirst.Misses, 1u);
  EXPECT_EQ(AfterFirst.Hits, 0u);

  // The second same-shaped run must be served entirely from the plan
  // cache: no schedule synthesis, no loop generation.
  auto Second = Fn.runGpu(Args, Dev, Diags);
  ASSERT_TRUE(Second.has_value()) << Diags.str();
  exec::PlanCache::Stats AfterSecond = Fn.planCacheStats();
  EXPECT_EQ(AfterSecond.Misses, 1u);
  EXPECT_EQ(AfterSecond.Hits, 1u);

  // And the cached plan's schedule is exactly what a fresh synthesis
  // derives for the box.
  EXPECT_EQ(First->UsedSchedule, Second->UsedSchedule);
  EXPECT_EQ(First->Cycles, Second->Cycles);
  auto Box = Fn.domainFor(Args, Diags);
  ASSERT_TRUE(Box.has_value());
  auto Fresh = Fn.scheduleFor(*Box, Diags);
  ASSERT_TRUE(Fresh.has_value()) << Diags.str();
  EXPECT_TRUE(*Fresh == Second->UsedSchedule);

  // A different shape misses; clearing resets the counters.
  bio::Sequence U("u", "weekends");
  std::vector<ArgValue> Other = {ArgValue::ofSeq(&S), ArgValue(),
                                 ArgValue::ofSeq(&U), ArgValue()};
  ASSERT_TRUE(Fn.runGpu(Other, Dev, Diags).has_value());
  EXPECT_EQ(Fn.planCacheStats().Misses, 2u);
  Fn.clearPlanCache();
  EXPECT_EQ(Fn.planCacheStats().Misses, 0u);
}

TEST(PlanCachePipelineTest, BatchSharesOnePlanAcrossSameShapedProblems) {
  CompiledRecurrence Fn = compileOrDie(ShippedEditDistanceSource);
  bio::SequenceDatabase Db = bio::randomDatabase(
      bio::Alphabet::english(), 9, /*MinLength=*/24, /*MaxLength=*/24,
      /*Seed=*/7);
  std::vector<std::vector<ArgValue>> Problems;
  for (size_t I = 1; I != Db.size(); ++I)
    Problems.push_back({ArgValue::ofSeq(&Db[0]), ArgValue(),
                        ArgValue::ofSeq(&Db[I]), ArgValue()});

  gpu::Device Dev;
  DiagnosticEngine Diags;
  auto Batch = Fn.runGpuBatch(Problems, Dev, Diags);
  ASSERT_TRUE(Batch.has_value()) << Diags.str();
  // All 8 problems have the same shape: one plan built, seven cache hits.
  exec::PlanCache::Stats Stats = Fn.planCacheStats();
  EXPECT_EQ(Stats.Misses, 1u);
  EXPECT_EQ(Stats.Hits, 7u);
}

//===----------------------------------------------------------------------===//
// Shipped examples: sliding window vs full table, bit for bit
//===----------------------------------------------------------------------===//

TEST(ShippedScriptsTest, SmithWatermanWindowInvariant) {
  DiagnosticEngine Diags;
  auto Matrix = bio::SubstitutionMatrix::parse(
      readFileOrDie(scriptsPath("data/dna_scores.txt")), Diags);
  ASSERT_TRUE(Matrix.has_value()) << Diags.str();
  auto Db = bio::readFastaFile(scriptsPath("data/reads.fa"), Diags);
  ASSERT_TRUE(Db.has_value() && Db->size() >= 2) << Diags.str();

  CompiledRecurrence Fn = compileOrDie(ShippedSmithWatermanSource);
  for (const bio::Sequence &Subject : *Db)
    expectWindowInvariant(
        Fn, {ArgValue::ofMatrix(&*Matrix), ArgValue::ofSeq(&(*Db)[0]),
             ArgValue(), ArgValue::ofSeq(&Subject), ArgValue()});
}

TEST(ShippedScriptsTest, EditDistanceWindowInvariant) {
  DiagnosticEngine Diags;
  auto Db = bio::readFastaFile(scriptsPath("data/words.fa"), Diags);
  ASSERT_TRUE(Db.has_value() && Db->size() >= 2) << Diags.str();

  CompiledRecurrence Fn = compileOrDie(ShippedEditDistanceSource);
  expectWindowInvariant(Fn,
                        {ArgValue::ofSeq(&(*Db)[0]), ArgValue(),
                         ArgValue::ofSeq(&(*Db)[1]), ArgValue()});
}

TEST(ShippedScriptsTest, CasinoForwardWindowInvariant) {
  DiagnosticEngine Diags;
  auto Db = bio::readFastaFile(scriptsPath("data/rolls.fa"), Diags);
  ASSERT_TRUE(Db.has_value() && !Db->empty()) << Diags.str();
  bio::Hmm Casino = bio::makeCasinoModel();

  CompiledRecurrence Fn =
      compileOrDie(ShippedCasinoForwardSource, {"dice"});
  for (const bio::Sequence &Rolls : *Db)
    expectWindowInvariant(Fn, {ArgValue::ofHmm(&Casino), ArgValue(),
                               ArgValue::ofSeq(&Rolls), ArgValue()});
}

/// The whole shipped scripts, through the interpreter, on the modelled
/// CPU (whose cycle accounting is residency-independent): output must be
/// byte-identical with the window on and off.
TEST(ShippedScriptsTest, ScriptOutputsWindowInvariant) {
  for (const char *Script :
       {"smith_waterman.rdsl", "edit_distance.rdsl", "casino.rdsl"}) {
    std::string Source = readFileOrDie(scriptsPath(Script));
    std::string Outputs[2];
    for (int Pass = 0; Pass != 2; ++Pass) {
      DiagnosticEngine Diags;
      Interpreter::Options Opts;
      Opts.UseGpu = false;
      Opts.BasePath = PARREC_SCRIPTS_DIR;
      Opts.Run.UseSlidingWindow = Pass == 0;
      Interpreter Interp(Diags, std::move(Opts));
      auto Output = Interp.run(Source);
      ASSERT_TRUE(Output.has_value()) << Script << ": " << Diags.str();
      Outputs[Pass] = *Output;
    }
    EXPECT_EQ(Outputs[0], Outputs[1]) << Script;
  }
}

//===----------------------------------------------------------------------===//
// Parallel batch: deterministic for any worker count
//===----------------------------------------------------------------------===//

TEST(ParallelBatchTest, DeterministicAcrossWorkerCounts) {
  CompiledRecurrence Fn = compileOrDie(ShippedSmithWatermanSource);
  const auto &Matrix = bio::SubstitutionMatrix::matchMismatch(
      bio::Alphabet::dna(), 2, -1);
  bio::SequenceDatabase Db = bio::randomDatabase(
      bio::Alphabet::dna(), 12, /*MinLength=*/20, /*MaxLength=*/90,
      /*Seed=*/0xD1CE);
  std::vector<std::vector<ArgValue>> Problems;
  for (size_t I = 1; I != Db.size(); ++I)
    Problems.push_back({ArgValue::ofMatrix(&Matrix),
                        ArgValue::ofSeq(&Db[0]), ArgValue(),
                        ArgValue::ofSeq(&Db[I]), ArgValue()});
  ASSERT_GE(Problems.size(), 8u);

  gpu::Device Dev;
  DiagnosticEngine Diags;
  RunOptions Serial, Parallel;
  Serial.BatchWorkers = 1;
  Parallel.BatchWorkers = std::max(2u, std::thread::hardware_concurrency());

  auto A = Fn.runGpuBatch(Problems, Dev, Diags, Serial);
  auto B = Fn.runGpuBatch(Problems, Dev, Diags, Parallel);
  ASSERT_TRUE(A.has_value()) << Diags.str();
  ASSERT_TRUE(B.has_value()) << Diags.str();

  EXPECT_EQ(A->TotalCycles, B->TotalCycles);
  ASSERT_EQ(A->Problems.size(), B->Problems.size());
  for (size_t I = 0; I != A->Problems.size(); ++I) {
    EXPECT_EQ(A->Problems[I].RootValue, B->Problems[I].RootValue) << I;
    EXPECT_EQ(A->Problems[I].TableMax, B->Problems[I].TableMax) << I;
    EXPECT_EQ(A->Problems[I].Cycles, B->Problems[I].Cycles) << I;
    EXPECT_EQ(A->Problems[I].Cells, B->Problems[I].Cells) << I;
  }
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> Counts(101);
  for (auto &C : Counts)
    C = 0;
  exec::parallelFor(7, Counts.size(),
                    [&](size_t I) { Counts[I].fetch_add(1); });
  for (size_t I = 0; I != Counts.size(); ++I)
    EXPECT_EQ(Counts[I].load(), 1) << I;
}

TEST(ParallelForTest, PropagatesWorkerExceptions) {
  EXPECT_THROW(exec::parallelFor(4, 16,
                                 [](size_t I) {
                                   if (I == 9)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ParallelForTest, ResolvesWorkerCounts) {
  EXPECT_EQ(exec::resolveWorkerCount(4, 100), 4u);
  EXPECT_EQ(exec::resolveWorkerCount(16, 3), 3u);
  EXPECT_GE(exec::resolveWorkerCount(0, 100), 1u);
  EXPECT_EQ(exec::resolveWorkerCount(8, 0), 1u);
}
