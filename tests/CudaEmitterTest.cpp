//===- CudaEmitterTest.cpp - Tests for CUDA source synthesis -----------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "codegen/CudaEmitter.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace parrec;
using namespace parrec::lang;

namespace {

struct Emitted {
  std::unique_ptr<FunctionDecl> Decl;
  FunctionInfo Info;
  std::string Source;
};

Emitted emit(const char *DslSource, solver::Schedule S) {
  DiagnosticEngine Diags;
  Parser P(DslSource, Diags);
  Emitted Result;
  Result.Decl = P.parseFunctionOnly();
  EXPECT_TRUE(Result.Decl != nullptr) << Diags.str();
  Sema Analysis(Diags, {"dna", "rna", "protein", "en"});
  auto Info = Analysis.analyze(*Result.Decl);
  EXPECT_TRUE(Info.has_value()) << Diags.str();
  Result.Info = std::move(*Info);
  Result.Source =
      codegen::emitCudaKernel(*Result.Decl, Result.Info, std::move(S));
  return Result;
}

const char *EditDistanceSource =
    "int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =\n"
    "  if i == 0 then j\n"
    "  else if j == 0 then i\n"
    "  else if s[i-1] == t[j-1] then d(i-1, j-1)\n"
    "  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1\n";

const char *ForwardSource =
    "prob forward(hmm h, state[h] s, seq[dna] x, index[x] i) =\n"
    "  if i == 0 then\n"
    "    if s.isstart then 1.0 else 0.0\n"
    "  else\n"
    "    (if s.isend then 1.0 else s.emission[x[i-1]]) *\n"
    "    sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))\n";

} // namespace

TEST(CudaEmitterTest, EditDistanceKernelStructure) {
  Emitted E = emit(EditDistanceSource, solver::Schedule{{1, 1}});
  const std::string &Src = E.Source;

  // Header comment documents the schedule.
  EXPECT_NE(Src.find("// Schedule: S_d(i, j) = i + j"),
            std::string::npos)
      << Src;
  // Cell function over an int table.
  EXPECT_NE(Src.find("__device__ int d_cell("), std::string::npos);
  // Figure 10's kernel structure: time loop, striped space loop with
  // thread stride, coordinate reconstruction, barrier.
  EXPECT_NE(Src.find("__global__ void d_kernel("), std::string::npos);
  EXPECT_NE(Src.find("for (int p = 0; p <= i_n + j_n - 2; p++)"),
            std::string::npos)
      << Src;
  EXPECT_NE(Src.find("parrec_tid + ("), std::string::npos);
  EXPECT_NE(Src.find("i += parrec_tn"), std::string::npos);
  EXPECT_NE(Src.find("const int j = p - i;"), std::string::npos)
      << "the eliminated dimension must be reconstructed";
  EXPECT_NE(Src.find("__syncthreads();"), std::string::npos);
  // The user's sequence parameter 't' must not collide with thread ids.
  EXPECT_EQ(Src.find("const int t = threadIdx"), std::string::npos);
}

TEST(CudaEmitterTest, EditDistanceCellLowering) {
  Emitted E = emit(EditDistanceSource, solver::Schedule{{1, 1}});
  const std::string &Src = E.Source;
  // Sequence accesses and min-chains appear; recursive calls become
  // row-major table reads with symbolic extents.
  EXPECT_NE(Src.find("s["), std::string::npos);
  EXPECT_NE(Src.find("farr["), std::string::npos);
  EXPECT_NE(Src.find("* j_n + ("), std::string::npos) << Src;
}

TEST(CudaEmitterTest, ForwardKernelLogSpace) {
  Emitted E = emit(ForwardSource, solver::Schedule{{0, 1}});
  const std::string &Src = E.Source;

  EXPECT_NE(Src.find("__device__ float forward_cell("),
            std::string::npos);
  // Probability multiplication lowers to log-space addition, and the sum
  // reduction to a CSR loop with log-add-exp accumulation.
  EXPECT_NE(Src.find("parrec_logaddexpf("), std::string::npos);
  EXPECT_NE(Src.find("h_in_off["), std::string::npos);
  EXPECT_NE(Src.find("h_tr_logprob["), std::string::npos);
  EXPECT_NE(Src.find("h_emis["), std::string::npos);
  // Float literals are valid C ("1.0f", never "1f").
  EXPECT_NE(Src.find("1.0f"), std::string::npos) << Src;
  EXPECT_EQ(Src.find(" 1f"), std::string::npos) << Src;
  // Accumulator starts at log(0).
  EXPECT_NE(Src.find("= -INFINITY;"), std::string::npos);
  // The schedule S = i makes the state loop the striped one.
  EXPECT_NE(Src.find("s += parrec_tn"), std::string::npos) << Src;
}

TEST(CudaEmitterTest, MatrixLoweringAndGuards) {
  const char *Source =
      "int sw(matrix[protein] m, seq[protein] a, index[a] i,\n"
      "       seq[protein] b, index[b] j) =\n"
      "  if i == 0 then 0\n"
      "  else if j == 0 then 0\n"
      "  else 0 max (sw(i-1, j-1) + m[a[i-1], b[j-1]])\n"
      "       max (sw(i-1, j) - 4) max (sw(i, j-1) - 4)\n";
  Emitted E = emit(Source, solver::Schedule{{1, 1}});
  EXPECT_NE(E.Source.find("m[parrec_chr("), std::string::npos)
      << E.Source;
  EXPECT_NE(E.Source.find("* m_dim + parrec_chr("), std::string::npos);
}

TEST(CudaEmitterTest, NonUnitScheduleEmitsDivisibilityGuard) {
  Emitted E = emit(EditDistanceSource, solver::Schedule{{2, 1}});
  // With S = 2i + j, reconstructing a coordinate from the time-step can
  // involve a division: either a fixed level with a divisor guard or
  // ceil/floor-divided bounds must appear.
  bool HasGuard = E.Source.find("% 2 != 0) continue;") !=
                  std::string::npos;
  bool HasDivBounds = E.Source.find("_div(") != std::string::npos;
  EXPECT_TRUE(HasGuard || HasDivBounds) << E.Source;
}

TEST(CudaEmitterTest, HostLaunchStub) {
  DiagnosticEngine Diags;
  Parser P(EditDistanceSource, Diags);
  auto Decl = P.parseFunctionOnly();
  ASSERT_TRUE(Decl != nullptr);
  Sema Analysis(Diags, {"en"});
  auto Info = Analysis.analyze(*Decl);
  ASSERT_TRUE(Info.has_value()) << Diags.str();

  std::string Stub = codegen::emitHostLaunchStub(*Decl, *Info);
  EXPECT_NE(Stub.find("int d_launch("), std::string::npos) << Stub;
  EXPECT_NE(Stub.find("cudaMalloc(&farr, cells * sizeof(int));"),
            std::string::npos)
      << Stub;
  EXPECT_NE(Stub.find("d_kernel<<<1, 32>>>("), std::string::npos)
      << Stub;
  EXPECT_NE(Stub.find("i_n * j_n"), std::string::npos) << Stub;
  // No per-cell coordinates leak into the host signature or call.
  EXPECT_EQ(Stub.find("x0,"), std::string::npos) << Stub;
}

TEST(CudaEmitterTest, DeterministicOutput) {
  Emitted A = emit(EditDistanceSource, solver::Schedule{{1, 1}});
  Emitted B = emit(EditDistanceSource, solver::Schedule{{1, 1}});
  EXPECT_EQ(A.Source, B.Source);
}
