//===- PipelineExecTest.cpp - Systolic batch pipelining tests ----------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pipelined batch dispatcher's contract: RunOptions::Pipeline and
/// PackSmall change only the modelled wall clock. Per-problem results,
/// costs, cycle totals, metrics and schedules are bit-identical to the
/// barrier path across every evaluator, window choice, scan-worker count
/// and packing mode; on a saturated device the pipelined makespan drops
/// strictly and the overlap/idle accounting and trace slices expose why.
///
//===----------------------------------------------------------------------===//

#include "bio/Fasta.h"
#include "bio/SubstitutionMatrix.h"
#include "gpu/Pipeline.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "runtime/CompiledRecurrence.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

using namespace parrec;
using namespace parrec::runtime;
using codegen::ArgValue;

namespace {

const char *SwSource =
    "int sw(matrix[protein] m, seq[protein] a, index[a] i,\n"
    "       seq[protein] b, index[b] j) =\n"
    "  if i == 0 then 0\n"
    "  else if j == 0 then 0\n"
    "  else 0 max (sw(i-1, j-1) + m[a[i-1], b[j-1]])\n"
    "       max (sw(i-1, j) - 4) max (sw(i, j-1) - 4)\n";

CompiledRecurrence compileOrDie(const char *Source) {
  DiagnosticEngine Diags;
  auto Compiled = CompiledRecurrence::compile(Source, Diags);
  EXPECT_TRUE(Compiled.has_value()) << Diags.str();
  return std::move(*Compiled);
}

/// A Smith-Waterman batch: one query against subjects of the given
/// lengths. Sequences live in a deque so ArgValue pointers stay valid.
struct SwBatch {
  CompiledRecurrence Sw = compileOrDie(SwSource);
  std::deque<bio::Sequence> Seqs;
  std::vector<std::vector<ArgValue>> Problems;

  SwBatch(int64_t QueryLen, const std::vector<int64_t> &SubjectLens) {
    const bio::SubstitutionMatrix &Blosum =
        bio::SubstitutionMatrix::blosum62();
    Seqs.push_back(bio::randomSequence(bio::Alphabet::protein(),
                                       QueryLen, /*Seed=*/0xA11CE,
                                       "query"));
    const bio::Sequence *Query = &Seqs.back();
    for (size_t I = 0; I != SubjectLens.size(); ++I) {
      Seqs.push_back(bio::randomSequence(bio::Alphabet::protein(),
                                         SubjectLens[I], 100 + I,
                                         "s" + std::to_string(I)));
      Problems.push_back({ArgValue::ofMatrix(&Blosum),
                          ArgValue::ofSeq(Query), ArgValue(),
                          ArgValue::ofSeq(&Seqs.back()), ArgValue()});
    }
  }
};

/// Every per-problem observable must match bit-for-bit; pipelining only
/// re-times work that already happened.
void expectIdentical(const RunResult &Barrier, const RunResult &Piped) {
  EXPECT_EQ(Barrier.RootValue, Piped.RootValue);
  EXPECT_EQ(Barrier.TableMax, Piped.TableMax);
  EXPECT_EQ(Barrier.Cells, Piped.Cells);
  EXPECT_EQ(Barrier.Partitions, Piped.Partitions);
  EXPECT_TRUE(Barrier.Cost == Piped.Cost);
  EXPECT_EQ(Barrier.Cycles, Piped.Cycles);
  EXPECT_TRUE(Barrier.Metrics == Piped.Metrics);
  EXPECT_EQ(Barrier.UsedSchedule, Piped.UsedSchedule);
}

gpu::Device saturatedDevice() {
  gpu::CostModel Model;
  Model.NumMultiprocessors = 2; // Batches larger than 2 must share.
  return gpu::Device(Model);
}

/// A synthetic profile of \p StageCycles.size() partitions, each costing
/// its entry (no barrier), on a \p Threads-wide block.
gpu::PipelineProfile makeProfile(const std::vector<uint64_t> &StageCycles,
                                 unsigned Threads) {
  std::vector<gpu::PartitionSample> T;
  uint64_t Total = 0;
  for (size_t I = 0; I != StageCycles.size(); ++I) {
    gpu::PartitionSample S;
    S.Partition = static_cast<int64_t>(I);
    S.Cells = Threads;
    S.MaxThreadCycles = StageCycles[I];
    S.SumThreadCycles = StageCycles[I] * Threads;
    S.ActiveThreads = Threads;
    S.Threads = Threads;
    Total += StageCycles[I];
    T.push_back(S);
  }
  return gpu::PipelineProfile::make(
      std::make_shared<const std::vector<gpu::PartitionSample>>(
          std::move(T)),
      Total, Threads);
}

} // namespace

//===----------------------------------------------------------------------===//
// Planner unit tests: mixed stage counts on one multiprocessor
//===----------------------------------------------------------------------===//

TEST(PipelineExecTest, ShortLaunchNeverRegressesMultiprocessorFinish) {
  // A 1-stage launch landing behind a 4-stage one on the same (only)
  // multiprocessor drains at cycle 110 while the predecessor runs to
  // 400. The multiprocessor's finish — and so the batch makespan — must
  // not regress to the short launch's finish.
  gpu::CostModel Model;
  Model.NumMultiprocessors = 1;
  uint64_t Launch = Model.KernelLaunchCycles;

  gpu::PipelinePlanner Planner(Model, /*PackSmall=*/false,
                               /*RecordStageStarts=*/false);
  Planner.add(makeProfile({100, 100, 100, 100}, 32));
  Planner.add(makeProfile({10}, 32));
  Planner.finish();

  EXPECT_EQ(Planner.placement(0).CompletionCycles, 400 + Launch);
  EXPECT_EQ(Planner.placement(1).CompletionCycles, 110 + Launch);
  EXPECT_EQ(Planner.stats().MakespanCycles, 400 + Launch);
  for (size_t I = 0; I != Planner.numProblems(); ++I)
    EXPECT_LE(Planner.placement(I).CompletionCycles,
              Planner.stats().MakespanCycles);
}

TEST(PipelineExecTest, DeepLaunchWaitsOnCarriedPredecessorStages) {
  // Deep, short, deep on one multiprocessor: the second deep launch must
  // still wait on the *first* deep launch's stages 1..3 even though the
  // short launch in between never occupied them, so its stages finish at
  // 210/310/410/510 and the overlap accounting stays exact (no
  // underflow).
  gpu::CostModel Model;
  Model.NumMultiprocessors = 1;
  uint64_t Launch = Model.KernelLaunchCycles;

  gpu::PipelinePlanner Planner(Model, /*PackSmall=*/false,
                               /*RecordStageStarts=*/false);
  Planner.add(makeProfile({100, 100, 100, 100}, 32));
  Planner.add(makeProfile({10}, 32));
  Planner.add(makeProfile({100, 100, 100, 100}, 32));
  Planner.finish();

  EXPECT_EQ(Planner.placement(2).CompletionCycles, 510 + Launch);
  EXPECT_EQ(Planner.stats().MakespanCycles, 510 + Launch);
  // Serial dispatch would take 400 + 10 + 400 = 810 cycles.
  EXPECT_EQ(Planner.stats().OverlapCycles, 810 - 510);
  for (size_t I = 0; I != Planner.numProblems(); ++I)
    EXPECT_LE(Planner.placement(I).CompletionCycles,
              Planner.stats().MakespanCycles);
}

//===----------------------------------------------------------------------===//
// Bit-identity sweep: evaluators x window x scan workers x packing
//===----------------------------------------------------------------------===//

TEST(PipelineExecTest, PipelinedBatchBitIdenticalAcrossSweep) {
  SwBatch B(/*QueryLen=*/32, {20, 28, 20, 28, 28, 36});
  gpu::Device Device;
  std::string JitCache = testing::TempDir() + "parrec-pipeline-jit";

  // The serial CPU backend is the cross-backend oracle for the values.
  std::vector<double> OracleRoot, OracleMax;
  for (const auto &Args : B.Problems) {
    DiagnosticEngine Diags;
    auto R = B.Sw.runCpu(Args, Device.costModel(), Diags);
    ASSERT_TRUE(R.has_value()) << Diags.str();
    OracleRoot.push_back(R->RootValue);
    OracleMax.push_back(R->TableMax);
  }

  for (exec::EvalKind Eval :
       {exec::EvalKind::Ast, exec::EvalKind::Vm, exec::EvalKind::Jit}) {
    for (bool Window : {true, false}) {
      for (unsigned ScanWorkers : {1u, 3u}) {
        for (bool Pack : {false, true}) {
          RunOptions Base;
          Base.Evaluator = Eval;
          Base.UseSlidingWindow = Window;
          Base.ScanWorkers = ScanWorkers;
          Base.JitCacheDir = JitCache;

          DiagnosticEngine Diags;
          auto Barrier =
              B.Sw.runGpuBatch(B.Problems, Device, Diags, Base);
          ASSERT_TRUE(Barrier.has_value()) << Diags.str();

          RunOptions Piped = Base;
          Piped.Pipeline = true;
          Piped.PackSmall = Pack;
          auto Pipelined =
              B.Sw.runGpuBatch(B.Problems, Device, Diags, Piped);
          ASSERT_TRUE(Pipelined.has_value()) << Diags.str();

          SCOPED_TRACE("eval=" + std::to_string(int(Eval)) +
                       " window=" + std::to_string(Window) +
                       " scan=" + std::to_string(ScanWorkers) +
                       " pack=" + std::to_string(Pack));
          ASSERT_EQ(Barrier->Problems.size(), B.Problems.size());
          ASSERT_EQ(Pipelined->Problems.size(), B.Problems.size());
          for (size_t I = 0; I != B.Problems.size(); ++I) {
            expectIdentical(Barrier->Problems[I], Pipelined->Problems[I]);
            EXPECT_EQ(Barrier->Problems[I].RootValue, OracleRoot[I]);
            EXPECT_EQ(Barrier->Problems[I].TableMax, OracleMax[I]);
            // No tracing was requested: the pipeline planner's internal
            // timelines must not leak into the result shape.
            EXPECT_EQ(Barrier->Problems[I].Timeline, nullptr);
            EXPECT_EQ(Pipelined->Problems[I].Timeline, nullptr);
          }

          // Barrier semantics: everything completes at batch end.
          ASSERT_EQ(Barrier->CompletionCycles.size(), B.Problems.size());
          for (uint64_t C : Barrier->CompletionCycles)
            EXPECT_EQ(C, Barrier->TotalCycles);
          EXPECT_EQ(Barrier->OverlapCycles, 0u);

          // Pipelined semantics: the last completion is the makespan and
          // nothing takes longer than back-to-back dispatch (each
          // problem has its own multiprocessor here, so the makespans
          // are in fact equal).
          ASSERT_EQ(Pipelined->CompletionCycles.size(),
                    B.Problems.size());
          EXPECT_EQ(*std::max_element(Pipelined->CompletionCycles.begin(),
                                      Pipelined->CompletionCycles.end()),
                    Pipelined->TotalCycles);
          EXPECT_LE(Pipelined->TotalCycles, Barrier->TotalCycles);
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Saturated device: strict overlap, early completions, accounting
//===----------------------------------------------------------------------===//

TEST(PipelineExecTest, SaturatedDeviceOverlapsStrictly) {
  SwBatch B(/*QueryLen=*/32, {24, 24, 24, 24, 24, 24});
  gpu::Device Device = saturatedDevice();

  DiagnosticEngine Diags;
  auto Barrier = B.Sw.runGpuBatch(B.Problems, Device, Diags, {});
  ASSERT_TRUE(Barrier.has_value()) << Diags.str();

  RunOptions Piped;
  Piped.Pipeline = true;
  auto Pipelined = B.Sw.runGpuBatch(B.Problems, Device, Diags, Piped);
  ASSERT_TRUE(Pipelined.has_value()) << Diags.str();

  for (size_t I = 0; I != B.Problems.size(); ++I)
    expectIdentical(Barrier->Problems[I], Pipelined->Problems[I]);

  // Three multi-partition problems per multiprocessor: every handoff
  // overlaps at least one barrier's worth of cycles, so the drop is
  // strict and the per-multiprocessor accounting sees it.
  EXPECT_LT(Pipelined->TotalCycles, Barrier->TotalCycles);
  EXPECT_GT(Pipelined->OverlapCycles, 0u);

  const auto &Completions = Pipelined->CompletionCycles;
  uint64_t Launch = Device.costModel().KernelLaunchCycles;
  EXPECT_EQ(*std::max_element(Completions.begin(), Completions.end()),
            Pipelined->TotalCycles);
  EXPECT_LT(*std::min_element(Completions.begin(), Completions.end()),
            Pipelined->TotalCycles);
  for (size_t I = 0; I != Completions.size(); ++I)
    EXPECT_GE(Completions[I], Pipelined->Problems[I].Cycles + Launch);
}

TEST(PipelineExecTest, MixedDepthBatchKeepsCompletionsWithinMakespan) {
  // Long and short subjects interleaved (different partition counts) on
  // a saturated two-multiprocessor device: short launches land behind
  // long ones, the configuration where a regressing multiprocessor
  // finish would publish a completion past the reported makespan.
  SwBatch B(/*QueryLen=*/32, {48, 8, 48, 8, 8, 40, 8, 8});
  gpu::Device Device = saturatedDevice();

  DiagnosticEngine Diags;
  auto Barrier = B.Sw.runGpuBatch(B.Problems, Device, Diags, {});
  ASSERT_TRUE(Barrier.has_value()) << Diags.str();

  uint64_t Launch = Device.costModel().KernelLaunchCycles;
  for (bool Pack : {false, true}) {
    SCOPED_TRACE("pack=" + std::to_string(Pack));
    RunOptions Piped;
    Piped.Pipeline = true;
    Piped.PackSmall = Pack;
    auto Pipelined = B.Sw.runGpuBatch(B.Problems, Device, Diags, Piped);
    ASSERT_TRUE(Pipelined.has_value()) << Diags.str();

    uint64_t Longest = 0;
    for (size_t I = 0; I != B.Problems.size(); ++I) {
      expectIdentical(Barrier->Problems[I], Pipelined->Problems[I]);
      Longest = std::max(Longest, Pipelined->Problems[I].Cycles);
    }

    // The makespan covers every member: no completion may exceed it,
    // the last completion is the makespan, and the busiest device runs
    // at least the longest single problem.
    ASSERT_EQ(Pipelined->CompletionCycles.size(), B.Problems.size());
    for (uint64_t C : Pipelined->CompletionCycles)
      EXPECT_LE(C, Pipelined->TotalCycles);
    EXPECT_EQ(*std::max_element(Pipelined->CompletionCycles.begin(),
                                Pipelined->CompletionCycles.end()),
              Pipelined->TotalCycles);
    EXPECT_GE(Pipelined->TotalCycles, Longest + Launch);
    EXPECT_LE(Pipelined->TotalCycles, Barrier->TotalCycles);
  }
}

TEST(PipelineExecTest, PackingRecoversUnderfilledBlocks) {
  // Short sequences against a short query: each problem's widest
  // partition holds ~9 active threads of a 32-wide block, so three pack
  // into one launch.
  SwBatch B(/*QueryLen=*/12, {8, 8, 8, 8});
  gpu::Device Device = saturatedDevice();

  DiagnosticEngine Diags;
  auto Barrier = B.Sw.runGpuBatch(B.Problems, Device, Diags, {});
  ASSERT_TRUE(Barrier.has_value()) << Diags.str();

  RunOptions Piped;
  Piped.Pipeline = true;
  auto NoPack = B.Sw.runGpuBatch(B.Problems, Device, Diags, Piped);
  ASSERT_TRUE(NoPack.has_value()) << Diags.str();

  Piped.PackSmall = true;
  auto Packed = B.Sw.runGpuBatch(B.Problems, Device, Diags, Piped);
  ASSERT_TRUE(Packed.has_value()) << Diags.str();

  for (size_t I = 0; I != B.Problems.size(); ++I) {
    expectIdentical(Barrier->Problems[I], NoPack->Problems[I]);
    expectIdentical(Barrier->Problems[I], Packed->Problems[I]);
  }
  // Packing turns four underfilled launches into two full ones: the
  // makespan drops below both the barrier and the unpacked pipeline.
  EXPECT_LT(NoPack->TotalCycles, Barrier->TotalCycles);
  EXPECT_LT(Packed->TotalCycles, NoPack->TotalCycles);
}

TEST(PipelineExecTest, OverlapAndIdleHistogramsPopulated) {
  SwBatch B(/*QueryLen=*/32, {24, 24, 24, 24});
  gpu::Device Device = saturatedDevice();

  obs::MetricsSnapshot Before = obs::MetricsRegistry::global().snapshot();
  uint64_t OverlapBefore =
      Before.histogramTotal("exec.pipeline_overlap_cycles").Count;
  uint64_t IdleBefore =
      Before.histogramTotal("exec.device_idle_cycles").Count;

  RunOptions Piped;
  Piped.Pipeline = true;
  DiagnosticEngine Diags;
  auto R = B.Sw.runGpuBatch(B.Problems, Device, Diags, Piped);
  ASSERT_TRUE(R.has_value()) << Diags.str();

  obs::MetricsSnapshot After = obs::MetricsRegistry::global().snapshot();
  // One observation per used multiprocessor: both were used.
  EXPECT_EQ(After.histogramTotal("exec.pipeline_overlap_cycles").Count,
            OverlapBefore + 2);
  EXPECT_EQ(After.histogramTotal("exec.device_idle_cycles").Count,
            IdleBefore + 2);
}

//===----------------------------------------------------------------------===//
// Trace: overlapped partition slices on the device lanes
//===----------------------------------------------------------------------===//

namespace {

const std::string *argValue(const obs::DeviceSlice &S, const char *Key) {
  for (const obs::TraceArg &A : S.Args)
    if (A.Key == Key)
      return &A.Json;
  return nullptr;
}

} // namespace

TEST(PipelineExecTest, TraceShowsOverlappedPartitionSlices) {
  SwBatch B(/*QueryLen=*/32, {24, 24, 24, 24});
  gpu::Device Device = saturatedDevice();

  obs::Tracer::instance().disable();
  obs::Tracer::instance().reset();
  obs::Tracer::instance().enable();
  RunOptions Piped;
  Piped.Pipeline = true;
  DiagnosticEngine Diags;
  auto R = B.Sw.runGpuBatch(B.Problems, Device, Diags, Piped);
  obs::Tracer::instance().disable();
  std::vector<obs::DeviceSlice> Slices =
      obs::Tracer::instance().deviceSlices();
  obs::Tracer::instance().reset();
  ASSERT_TRUE(R.has_value()) << Diags.str();

  // Per (block, problem): the executed cycle range of its partition
  // slices.
  std::map<std::pair<uint32_t, std::string>,
           std::pair<uint64_t, uint64_t>>
      Ranges;
  for (const obs::DeviceSlice &S : Slices) {
    const std::string *Problem = argValue(S, "problem");
    if (!Problem || !argValue(S, "partition"))
      continue;
    auto Key = std::make_pair(S.Block, *Problem);
    auto [It, Fresh] = Ranges.emplace(
        Key, std::make_pair(S.StartCycles, S.StartCycles + S.DurCycles));
    if (!Fresh) {
      It->second.first = std::min(It->second.first, S.StartCycles);
      It->second.second =
          std::max(It->second.second, S.StartCycles + S.DurCycles);
    }
  }
  ASSERT_EQ(Ranges.size(), B.Problems.size());

  // Two problems sharing a multiprocessor must have interleaved — not
  // back-to-back — cycle ranges somewhere.
  bool Overlapped = false;
  for (auto AIt = Ranges.begin(); AIt != Ranges.end(); ++AIt)
    for (auto BIt = std::next(AIt); BIt != Ranges.end(); ++BIt) {
      if (AIt->first.first != BIt->first.first)
        continue;
      uint64_t Lo = std::max(AIt->second.first, BIt->second.first);
      uint64_t Hi = std::min(AIt->second.second, BIt->second.second);
      Overlapped |= Lo < Hi;
    }
  EXPECT_TRUE(Overlapped);
}

TEST(PipelineExecTest, PackedProblemsCarryLaneOffsets) {
  SwBatch B(/*QueryLen=*/12, {8, 8, 8});
  gpu::Device Device = saturatedDevice();

  obs::Tracer::instance().disable();
  obs::Tracer::instance().reset();
  obs::Tracer::instance().enable();
  RunOptions Piped;
  Piped.Pipeline = true;
  Piped.PackSmall = true;
  DiagnosticEngine Diags;
  auto R = B.Sw.runGpuBatch(B.Problems, Device, Diags, Piped);
  obs::Tracer::instance().disable();
  std::vector<obs::DeviceSlice> Slices =
      obs::Tracer::instance().deviceSlices();
  obs::Tracer::instance().reset();
  ASSERT_TRUE(R.has_value()) << Diags.str();

  // All three problems packed into one launch: completions coincide and
  // at least one traced problem sits at a non-zero lane offset.
  EXPECT_EQ(R->CompletionCycles[0], R->CompletionCycles[1]);
  EXPECT_EQ(R->CompletionCycles[0], R->CompletionCycles[2]);
  bool NonZeroLane = false;
  for (const obs::DeviceSlice &S : Slices)
    if (const std::string *Lane = argValue(S, "lane_offset"))
      NonZeroLane |= *Lane != "0";
  EXPECT_TRUE(NonZeroLane);
}
