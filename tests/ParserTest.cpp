//===- ParserTest.cpp - Tests for the DSL parser ------------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "support/Random.h"

#include <gtest/gtest.h>

using namespace parrec;
using namespace parrec::lang;

namespace {

ExprPtr parseExpr(std::string_view Source) {
  DiagnosticEngine Diags;
  Parser P(Source, Diags);
  ExprPtr E = P.parseExpressionOnly();
  EXPECT_TRUE(E != nullptr) << Diags.str();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return E;
}

std::unique_ptr<FunctionDecl> parseFunction(std::string_view Source) {
  DiagnosticEngine Diags;
  Parser P(Source, Diags);
  auto F = P.parseFunctionOnly();
  EXPECT_TRUE(F != nullptr) << Diags.str();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return F;
}

} // namespace

TEST(ParserTest, Precedence) {
  // * binds tighter than +, + tighter than min, min tighter than <.
  EXPECT_EQ(parseExpr("a + b * c")->str(), "(a + (b * c))");
  EXPECT_EQ(parseExpr("a min b + 1")->str(), "(a min (b + 1))");
  EXPECT_EQ(parseExpr("a min b min c")->str(), "((a min b) min c)");
  EXPECT_EQ(parseExpr("a + b < c * d")->str(), "((a + b) < (c * d))");
  EXPECT_EQ(parseExpr("(a min b) + 1")->str(), "((a min b) + 1)");
}

TEST(ParserTest, UnaryMinusDesugars) {
  EXPECT_EQ(parseExpr("-x + y")->str(), "((0 - x) + y)");
}

TEST(ParserTest, IfExpression) {
  ExprPtr E = parseExpr("if i == 0 then j else i + 1");
  const auto *If = dyn_cast<IfExpr>(E.get());
  ASSERT_NE(If, nullptr);
  EXPECT_EQ(If->Condition->str(), "(i == 0)");
  EXPECT_EQ(If->ThenExpr->str(), "j");
  EXPECT_EQ(If->ElseExpr->str(), "(i + 1)");
}

TEST(ParserTest, NestedIfChains) {
  ExprPtr E = parseExpr("if a == 0 then 1 else if b == 0 then 2 else 3");
  const auto *Outer = dyn_cast<IfExpr>(E.get());
  ASSERT_NE(Outer, nullptr);
  EXPECT_NE(dyn_cast<IfExpr>(Outer->ElseExpr.get()), nullptr);
}

TEST(ParserTest, CallsAndIndexing) {
  EXPECT_EQ(parseExpr("d(i - 1, j)")->str(), "d((i - 1), j)");
  EXPECT_EQ(parseExpr("s[i - 1]")->str(), "s[(i - 1)]");
  EXPECT_EQ(parseExpr("m[s[i-1], t[j-1]]")->str(),
            "m[s[(i - 1)], t[(j - 1)]]");
}

TEST(ParserTest, MemberAccess) {
  EXPECT_EQ(parseExpr("s.isstart")->str(), "s.isstart");
  EXPECT_EQ(parseExpr("t.prob")->str(), "t.prob");
  EXPECT_EQ(parseExpr("t.start")->str(), "t.start");
  EXPECT_EQ(parseExpr("s.emission[x[i-1]]")->str(),
            "s.emission[x[(i - 1)]]");
}

TEST(ParserTest, Reductions) {
  ExprPtr E =
      parseExpr("sum(t in s.transitionsto : t.prob * f(t.start, i - 1))");
  const auto *R = dyn_cast<ReductionExpr>(E.get());
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->Reduction, ReductionKind::Sum);
  EXPECT_EQ(R->VarName, "t");
  EXPECT_EQ(R->Domain->str(), "s.transitionsto");
  EXPECT_EQ(R->Body->str(), "(t.prob * f(t.start, (i - 1)))");

  // Prefix min/max are reductions; infix remains a binary operator.
  ExprPtr M = parseExpr("max(t in s.transitionsfrom : t.prob)");
  EXPECT_EQ(dyn_cast<ReductionExpr>(M.get())->Reduction,
            ReductionKind::Max);
}

TEST(ParserTest, Figure7EditDistance) {
  auto F = parseFunction(
      "int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =\n"
      "  if i == 0 then j\n"
      "  else if j == 0 then i\n"
      "  else if s[i-1] == t[j-1] then d(i-1, j-1)\n"
      "  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1\n");
  EXPECT_EQ(F->Name, "d");
  EXPECT_EQ(F->ReturnType.Kind, TypeKind::Int);
  ASSERT_EQ(F->Params.size(), 4u);
  EXPECT_EQ(F->Params[0].ParamType.Kind, TypeKind::Seq);
  EXPECT_EQ(F->Params[0].ParamType.AlphabetName, "en");
  EXPECT_EQ(F->Params[1].ParamType.Kind, TypeKind::Index);
  EXPECT_EQ(F->Params[1].ParamType.RefParam, "s");
  EXPECT_EQ(F->signatureStr(),
            "int d(seq[en] s, index[s] i, seq[en] t, index[t] j)");
}

TEST(ParserTest, Figure11Forward) {
  auto F = parseFunction(
      "prob forward(hmm h, state[h] s, seq[*] x, index[x] i) =\n"
      "  if i == 0 then\n"
      "    if s.isstart then 1.0 else 0.0\n"
      "  else\n"
      "    (if s.isend then 1.0 else s.emission[x[i-1]]) *\n"
      "    sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))\n");
  EXPECT_EQ(F->Name, "forward");
  EXPECT_EQ(F->ReturnType.Kind, TypeKind::Prob);
  EXPECT_EQ(F->Params[1].ParamType.Kind, TypeKind::State);
  EXPECT_EQ(F->Params[2].ParamType.AlphabetName, "*");
}

TEST(ParserTest, ScriptStatements) {
  DiagnosticEngine Diags;
  Parser P("alphabet bin = \"01\"\n"
           "seq[bin] s = load \"a.fa\" [2]\n"
           "seqdb[bin] db = load \"b.fa\"\n"
           "matrix[bin] m = load \"m.txt\"\n"
           "int f(seq[bin] q, index[q] i) = if i == 0 then 0 else f(i-1)\n"
           "print f(s)\n"
           "map max f(q, db)\n",
           Diags);
  Script S = P.parseScript();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  ASSERT_EQ(S.Statements.size(), 7u);
  EXPECT_EQ(S.Statements[0].Kind, StmtKind::Alphabet);
  EXPECT_EQ(S.Statements[0].AlphabetLetters, "01");
  EXPECT_EQ(S.Statements[1].Kind, StmtKind::SeqLoad);
  EXPECT_EQ(S.Statements[1].RecordIndex, 2);
  EXPECT_EQ(S.Statements[2].Kind, StmtKind::SeqDbLoad);
  EXPECT_EQ(S.Statements[3].Kind, StmtKind::MatrixLoad);
  EXPECT_EQ(S.Statements[4].Kind, StmtKind::Function);
  EXPECT_NE(S.findFunction("f"), nullptr);
  EXPECT_EQ(S.Statements[5].Kind, StmtKind::Print);
  EXPECT_FALSE(S.Statements[5].TableMax);
  EXPECT_EQ(S.Statements[6].Kind, StmtKind::Map);
  EXPECT_TRUE(S.Statements[6].TableMax);
  EXPECT_EQ(S.Statements[6].CallArgs,
            (std::vector<std::string>{"q", "db"}));
}

TEST(ParserTest, InlineHmmBody) {
  DiagnosticEngine Diags;
  Parser P("hmm h = { alphabet dna ; state begin start ; }", Diags);
  Script S = P.parseScript();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  ASSERT_EQ(S.Statements.size(), 1u);
  EXPECT_EQ(S.Statements[0].Kind, StmtKind::HmmDef);
  EXPECT_NE(S.Statements[0].HmmText.find("alphabet dna"),
            std::string::npos);
  EXPECT_NE(S.Statements[0].HmmText.find("state begin start"),
            std::string::npos);
}

TEST(ParserTest, ErrorsReportedAndRecovered) {
  DiagnosticEngine Diags;
  Parser P("int f(int x = 3\nprint g()", Diags);
  Script S = P.parseScript();
  EXPECT_TRUE(Diags.hasErrors());
  // The parser must recover and still see the print statement.
  bool SawPrint = false;
  for (const Stmt &St : S.Statements)
    SawPrint |= St.Kind == StmtKind::Print;
  EXPECT_TRUE(SawPrint);
}

TEST(ParserFuzzTest, RandomInputsNeverCrash) {
  // Robustness: arbitrary byte soup and random token salads must produce
  // diagnostics, never crashes or hangs.
  parrec::SplitMix64 Rng(0xF022);
  const char *Tokens[] = {"if",   "then", "else", "min",  "max", "sum",
                          "in",   "int",  "prob", "seq",  "(",   ")",
                          "[",    "]",    "{",    "}",    ",",   ":",
                          "=",    "==",   "!=",   "<",    ">",   "+",
                          "-",    "*",    "/",    ".",    "->",  "x",
                          "f",    "42",   "3.5",  "'a'",  "\"s\"",
                          "hmm",  "state", "index", "matrix", "print",
                          "map",  "load", "alphabet"};
  for (int Round = 0; Round != 200; ++Round) {
    std::string Source;
    unsigned Length = 1 + static_cast<unsigned>(Rng.nextBelow(40));
    for (unsigned I = 0; I != Length; ++I) {
      Source += Tokens[Rng.nextBelow(std::size(Tokens))];
      Source += ' ';
    }
    DiagnosticEngine Diags;
    Parser P(Source, Diags);
    Script S = P.parseScript(); // Must terminate without crashing.
    (void)S;
  }
  for (int Round = 0; Round != 200; ++Round) {
    std::string Source;
    unsigned Length = static_cast<unsigned>(Rng.nextBelow(60));
    for (unsigned I = 0; I != Length; ++I)
      Source += static_cast<char>(Rng.nextInRange(1, 127));
    DiagnosticEngine Diags;
    Parser P(Source, Diags);
    P.parseScript();
    DiagnosticEngine Diags2;
    Parser P2(Source, Diags2);
    P2.parseExpressionOnly();
  }
}

TEST(ParserTest, RejectsTrailingGarbage) {
  DiagnosticEngine Diags;
  Parser P("a + b c", Diags);
  P.parseExpressionOnly();
  EXPECT_TRUE(Diags.hasErrors());
}
