//===- PassPipelineTest.cpp - Tests for the compiler pass pipeline -----------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Golden tests for the explicit pass pipeline: registration order of the
/// default pipelines, bit-identical plans and results against a
/// hand-rolled replica of the legacy hardwired chain, deterministic
/// shipped-script output through the pipelined interpreter (with and
/// without the autotuner), the autotuner against the AST-evaluator
/// oracle, plan-cache hits skipping the candidate search entirely, and
/// the --disable-pass debugging knob (clean diagnostics and working
/// fallbacks, never crashes).
///
//===----------------------------------------------------------------------===//

#include "bio/Fasta.h"
#include "bio/HmmZoo.h"
#include "codegen/Evaluator.h"
#include "compiler/Pipeline.h"
#include "exec/ExecutionBackend.h"
#include "exec/Table.h"
#include "gpu/Device.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "obs/Metrics.h"
#include "poly/LoopGen.h"
#include "runtime/CompiledRecurrence.h"
#include "runtime/Interpreter.h"
#include "solver/ScheduleSynthesis.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace parrec;
using namespace parrec::runtime;
using codegen::ArgValue;

#ifndef PARREC_SCRIPTS_DIR
#error "build must define PARREC_SCRIPTS_DIR"
#endif

namespace {

std::string scriptsPath(const std::string &Relative) {
  return std::string(PARREC_SCRIPTS_DIR) + "/" + Relative;
}

std::string readFileOrDie(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

// The recursions of the shipped examples/scripts/*.rdsl, verbatim.
const char *ShippedSmithWatermanSource =
    "int sw(matrix[dna] m, seq[dna] a, index[a] i, seq[dna] b, index[b] j) =\n"
    "  if i == 0 then 0\n"
    "  else if j == 0 then 0\n"
    "  else 0 max (sw(i-1, j-1) + m[a[i-1], b[j-1]])\n"
    "       max (sw(i-1, j) - 2) max (sw(i, j-1) - 2)\n";

const char *ShippedEditDistanceSource =
    "int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =\n"
    "  if i == 0 then j\n"
    "  else if j == 0 then i\n"
    "  else if s[i-1] == t[j-1] then d(i-1, j-1)\n"
    "  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1\n";

const char *ShippedCasinoForwardSource =
    "prob forward(hmm h, state[h] s, seq[dice] x, index[x] i) =\n"
    "  if i == 0 then\n"
    "    if s.isstart then 1.0 else 0.0\n"
    "  else\n"
    "    (if s.isend then 1.0 else s.emission[x[i-1]]) *\n"
    "    sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))\n";

CompiledRecurrence compileOrDie(const char *Source,
                                std::vector<std::string> Extra = {}) {
  DiagnosticEngine Diags;
  auto Compiled =
      CompiledRecurrence::compile(Source, Diags, std::move(Extra));
  EXPECT_TRUE(Compiled.has_value()) << Diags.str();
  return std::move(*Compiled);
}

std::vector<ArgValue> editDistanceArgs(const bio::Sequence &S,
                                       const bio::Sequence &T) {
  return {ArgValue::ofSeq(&S), ArgValue(), ArgValue::ofSeq(&T), ArgValue()};
}

/// RAII guard: whatever a test disables, the knob is clean afterwards.
struct DisabledPassesGuard {
  DisabledPassesGuard() { compiler::setDisabledPasses({}); }
  ~DisabledPassesGuard() { compiler::setDisabledPasses({}); }
};

/// Replays the legacy hardwired chain — Parser, Sema::analyze,
/// validateForExecution, compileToBytecode, findMinimalSchedule, sliding
/// window, generateLoops, timeRange — with no pipeline involved, and
/// executes the resulting plan on the simulated GPU. The pass pipeline
/// must be bit-identical to this.
struct HandRolled {
  std::unique_ptr<lang::FunctionDecl> Decl;
  std::optional<lang::FunctionInfo> Info;
  std::shared_ptr<const codegen::BytecodeProgram> Bytecode;
  exec::ExecutablePlan Plan;

  static std::optional<HandRolled>
  build(const char *Source, const solver::DomainBox &Box,
        std::vector<std::string> Alphabets, DiagnosticEngine &Diags) {
    HandRolled H;
    lang::Parser P(Source, Diags);
    H.Decl = P.parseFunctionOnly();
    if (!H.Decl || Diags.hasErrors())
      return std::nullopt;
    lang::Sema Sema(Diags, Alphabets);
    H.Info = Sema.analyze(*H.Decl);
    if (!H.Info)
      return std::nullopt;
    H.Info->Decl = H.Decl.get();
    if (!codegen::validateForExecution(*H.Decl, Diags))
      return std::nullopt;
    H.Bytecode = codegen::compileToBytecode(*H.Decl, *H.Info);

    const solver::RecurrenceSpec &Rec = H.Info->Recurrence;
    H.Plan.Box = Box;
    H.Plan.Program = H.Bytecode;
    std::optional<solver::Schedule> Minimal =
        solver::findMinimalSchedule(Rec, Box, Diags);
    if (!Minimal)
      return std::nullopt;
    H.Plan.Sched = std::move(*Minimal);
    std::optional<int64_t> Window =
        solver::slidingWindowDepth(Rec, H.Plan.Sched);
    int DropDim = Window ? exec::pickWindowDropDim(H.Plan.Sched, Box) : -1;
    if (Window && DropDim >= 0) {
      H.Plan.UseWindow = true;
      H.Plan.WindowDepth = *Window;
      H.Plan.WindowDropDim = static_cast<unsigned>(DropDim);
    }
    std::vector<std::string> DimNames;
    for (const lang::DimInfo &Dim : H.Info->Dims)
      DimNames.push_back(Dim.Name);
    poly::Polyhedron Domain(DimNames);
    for (unsigned D = 0; D != Box.numDims(); ++D)
      Domain.addBounds(D, Box.Lower[D], Box.Upper[D]);
    H.Plan.Nest = poly::generateLoops(Domain, /*NumParams=*/0,
                                      H.Plan.Sched.toAffineExpr(0));
    auto TimeRange = H.Plan.Nest.timeRange({});
    if (!TimeRange)
      return std::nullopt;
    H.Plan.FirstPartition = TimeRange->first;
    H.Plan.LastPartition = TimeRange->second;
    H.Plan.RootPartition = H.Plan.Sched.apply(Box.Upper);
    return H;
  }

  exec::RunResult execute(const std::vector<ArgValue> &Args,
                          const gpu::Device &Dev) const {
    codegen::Evaluator Eval(*Decl, *Info);
    Eval.bind(Args);
    return exec::SimulatedGpuBackend(Dev.costModel())
        .execute(Plan, Eval, exec::RunOptions{});
  }
};

/// Compiles \p Source through the pass pipeline and asserts the plan and
/// the executed run are bit-identical to the hand-rolled legacy chain.
void expectPipelineMatchesHandRolled(const char *Source,
                                     const std::vector<ArgValue> &Args,
                                     std::vector<std::string> Extra = {}) {
  CompiledRecurrence Fn = compileOrDie(Source, Extra);
  gpu::Device Dev;
  DiagnosticEngine Diags;
  std::optional<solver::DomainBox> Box = Fn.domainFor(Args, Diags);
  ASSERT_TRUE(Box.has_value()) << Diags.str();

  std::vector<std::string> Alphabets = {"dna", "rna", "protein", "en"};
  for (std::string &E : Extra)
    Alphabets.push_back(std::move(E));
  std::optional<HandRolled> Legacy =
      HandRolled::build(Source, *Box, Alphabets, Diags);
  ASSERT_TRUE(Legacy.has_value()) << Diags.str();

  // Plans must agree field for field...
  std::shared_ptr<const exec::ExecutablePlan> Plan =
      Fn.planFor(*Box, {}, /*Preselected=*/nullptr, Diags);
  ASSERT_NE(Plan, nullptr) << Diags.str();
  EXPECT_EQ(Plan->Sched, Legacy->Plan.Sched);
  EXPECT_EQ(Plan->UseWindow, Legacy->Plan.UseWindow);
  EXPECT_EQ(Plan->WindowDepth, Legacy->Plan.WindowDepth);
  EXPECT_EQ(Plan->WindowDropDim, Legacy->Plan.WindowDropDim);
  EXPECT_EQ(Plan->FirstPartition, Legacy->Plan.FirstPartition);
  EXPECT_EQ(Plan->LastPartition, Legacy->Plan.LastPartition);
  EXPECT_EQ(Plan->RootPartition, Legacy->Plan.RootPartition);
  EXPECT_EQ(Plan->TunedThreads, 0u);
  EXPECT_EQ(Plan->Program != nullptr, Legacy->Bytecode != nullptr);

  // ...and so must every observable of the executed runs: values, cell
  // counts, modelled cycles, memory traffic.
  auto Run = Fn.runGpu(Args, Dev, Diags);
  ASSERT_TRUE(Run.has_value()) << Diags.str();
  exec::RunResult Ref = Legacy->execute(Args, Dev);
  EXPECT_EQ(Run->RootValue, Ref.RootValue);
  EXPECT_EQ(Run->TableMax, Ref.TableMax);
  EXPECT_EQ(Run->Cells, Ref.Cells);
  EXPECT_EQ(Run->Partitions, Ref.Partitions);
  EXPECT_EQ(Run->Cycles, Ref.Cycles);
  EXPECT_EQ(Run->UsedSchedule, Ref.UsedSchedule);
  EXPECT_EQ(Run->Metrics.Cycles, Ref.Metrics.Cycles);
  EXPECT_EQ(Run->Metrics.TableBytes, Ref.Metrics.TableBytes);
  EXPECT_EQ(Run->Metrics.SharedAccesses, Ref.Metrics.SharedAccesses);
  EXPECT_EQ(Run->Metrics.GlobalAccesses, Ref.Metrics.GlobalAccesses);
}

} // namespace

//===----------------------------------------------------------------------===//
// Registration order and pass-name registry
//===----------------------------------------------------------------------===//

TEST(PassPipelineTest, RegistrationOrder) {
  std::vector<std::string> Frontend = {"parse", "sema", "dependence",
                                       "validate", "bytecode"};
  std::vector<std::string> Planning = {"schedule_synthesis", "sliding_window",
                                       "loopgen", "finalize"};
  std::vector<std::string> Autotuned = {"schedule_synthesis", "autotune",
                                        "sliding_window", "loopgen",
                                        "finalize"};
  std::vector<std::string> Jitted = {"schedule_synthesis", "sliding_window",
                                     "loopgen", "finalize", "jit"};
  EXPECT_EQ(compiler::frontendPipeline().passNames(), Frontend);
  EXPECT_EQ(compiler::planningPipeline().passNames(), Planning);
  EXPECT_EQ(compiler::autotunePlanningPipeline().passNames(), Autotuned);
  EXPECT_EQ(compiler::jitPlanningPipeline().passNames(), Jitted);

  // allPassNames is the frontend followed by the autotuned + jitted
  // planning passes — the order --dump-passes prints.
  std::vector<std::string> All = Frontend;
  All.insert(All.end(), Autotuned.begin(), Autotuned.end());
  All.push_back("jit");
  EXPECT_EQ(compiler::allPassNames(), All);

  for (const std::string &Name : All)
    EXPECT_TRUE(compiler::isKnownPass(Name)) << Name;
  EXPECT_FALSE(compiler::isKnownPass("nonsense"));
  EXPECT_FALSE(compiler::isKnownPass(""));
  EXPECT_FALSE(compiler::isKnownPass("Parse"));
}

//===----------------------------------------------------------------------===//
// The default pipeline against the legacy hardwired chain, bit for bit
//===----------------------------------------------------------------------===//

TEST(PassPipelineTest, EditDistanceMatchesHandRolledChain) {
  bio::Sequence S("s", "kitten"), T("t", "sitting");
  expectPipelineMatchesHandRolled(ShippedEditDistanceSource,
                                  editDistanceArgs(S, T));
}

TEST(PassPipelineTest, SmithWatermanMatchesHandRolledChain) {
  DiagnosticEngine Diags;
  auto Matrix = bio::SubstitutionMatrix::parse(
      readFileOrDie(scriptsPath("data/dna_scores.txt")), Diags);
  ASSERT_TRUE(Matrix.has_value()) << Diags.str();
  bio::Sequence A("a", "ACGTACGTTGCA"), B("b", "ACGTTGCATGCA");
  expectPipelineMatchesHandRolled(
      ShippedSmithWatermanSource,
      {ArgValue::ofMatrix(&*Matrix), ArgValue::ofSeq(&A), ArgValue(),
       ArgValue::ofSeq(&B), ArgValue()});
}

TEST(PassPipelineTest, CasinoForwardMatchesHandRolledChain) {
  bio::Hmm Casino = bio::makeCasinoModel();
  bio::Sequence Rolls("rolls", "315116246446644245311321631164");
  expectPipelineMatchesHandRolled(ShippedCasinoForwardSource,
                                  {ArgValue::ofHmm(&Casino), ArgValue(),
                                   ArgValue::ofSeq(&Rolls), ArgValue()},
                                  {"dice"});
}

//===----------------------------------------------------------------------===//
// Shipped scripts through the pipelined interpreter
//===----------------------------------------------------------------------===//

/// Every shipped script, run twice through the interpreter (which now
/// compiles through the pass pipeline): output must be byte-identical
/// run to run, and byte-identical with the autotuner on — the autotuner
/// may only change modelled timing, never results.
TEST(PassPipelineTest, ShippedScriptsDeterministicAndAutotuneInvariant) {
  for (const char *Script :
       {"smith_waterman.rdsl", "edit_distance.rdsl", "casino.rdsl"}) {
    std::string Source = readFileOrDie(scriptsPath(Script));
    auto runOnce = [&](bool Autotune) {
      DiagnosticEngine Diags;
      Interpreter::Options Opts;
      Opts.UseGpu = false;
      Opts.BasePath = PARREC_SCRIPTS_DIR;
      Opts.Run.Autotune = Autotune;
      Interpreter Interp(Diags, std::move(Opts));
      auto Output = Interp.run(Source);
      EXPECT_TRUE(Output.has_value()) << Script << ": " << Diags.str();
      return Output ? *Output : std::string();
    };
    std::string First = runOnce(false);
    EXPECT_EQ(First, runOnce(false)) << Script;
    EXPECT_EQ(First, runOnce(true)) << Script << " (autotuned)";
  }
}

//===----------------------------------------------------------------------===//
// The autotuner against the AST-evaluator oracle
//===----------------------------------------------------------------------===//

/// An autotuned run must produce exactly the values of the differential
/// oracle (AST tree-walker, untuned plan): the tuner is free to pick a
/// different schedule, window or thread count, but never a different
/// answer.
TEST(PassPipelineTest, AutotunedRunMatchesAstOracle) {
  bio::Hmm Casino = bio::makeCasinoModel();
  bio::Sequence S("s", "kitten"), T("t", "sitting");
  bio::Sequence Rolls("rolls", "315116246446644245311321631164");
  DiagnosticEngine MatrixDiags;
  auto Matrix = bio::SubstitutionMatrix::parse(
      readFileOrDie(scriptsPath("data/dna_scores.txt")), MatrixDiags);
  ASSERT_TRUE(Matrix.has_value()) << MatrixDiags.str();
  bio::Sequence A("a", "ACGTACGTTGCA"), B("b", "ACGTTGCATGCA");

  struct Case {
    const char *Name;
    const char *Source;
    std::vector<std::string> Extra;
    std::vector<ArgValue> Args;
  };
  std::vector<Case> Cases = {
      {"edit_distance", ShippedEditDistanceSource, {},
       editDistanceArgs(S, T)},
      {"smith_waterman", ShippedSmithWatermanSource, {},
       {ArgValue::ofMatrix(&*Matrix), ArgValue::ofSeq(&A), ArgValue(),
        ArgValue::ofSeq(&B), ArgValue()}},
      {"forward", ShippedCasinoForwardSource, {"dice"},
       {ArgValue::ofHmm(&Casino), ArgValue(), ArgValue::ofSeq(&Rolls),
        ArgValue()}},
  };

  gpu::Device Dev;
  for (const Case &C : Cases) {
    CompiledRecurrence Fn = compileOrDie(C.Source, C.Extra);
    DiagnosticEngine Diags;
    exec::RunOptions Tuned;
    Tuned.Autotune = true;
    exec::RunOptions Oracle;
    Oracle.UseAstEvaluator = true;
    auto TunedRun = Fn.runGpu(C.Args, Dev, Diags, Tuned);
    auto OracleRun = Fn.runGpu(C.Args, Dev, Diags, Oracle);
    ASSERT_TRUE(TunedRun.has_value()) << C.Name << ": " << Diags.str();
    ASSERT_TRUE(OracleRun.has_value()) << C.Name << ": " << Diags.str();
    EXPECT_EQ(TunedRun->RootValue, OracleRun->RootValue) << C.Name;
    EXPECT_EQ(TunedRun->TableMax, OracleRun->TableMax) << C.Name;
    EXPECT_EQ(TunedRun->Cells, OracleRun->Cells) << C.Name;
  }
}

/// The Autotune flag is part of the plan key: the first tuned run pays
/// for the candidate search, a second same-shaped run hits the cache and
/// evaluates zero candidates.
TEST(PassPipelineTest, AutotunePlanCacheSkipsSearch) {
  CompiledRecurrence Fn = compileOrDie(ShippedEditDistanceSource);
  bio::Sequence S("s", "kitten"), T("t", "sitting");
  gpu::Device Dev;
  DiagnosticEngine Diags;
  exec::RunOptions Tuned;
  Tuned.Autotune = true;

  obs::MetricsSnapshot S0 = obs::MetricsRegistry::global().snapshot();
  auto First = Fn.runGpu(editDistanceArgs(S, T), Dev, Diags, Tuned);
  ASSERT_TRUE(First.has_value()) << Diags.str();
  obs::MetricsSnapshot S1 = obs::MetricsRegistry::global().snapshot();
  uint64_t FirstCandidates = S1.counter("compile.autotune.candidates") -
                             S0.counter("compile.autotune.candidates");
  EXPECT_GT(FirstCandidates, 0u);
  EXPECT_EQ(S1.counter("compile.autotune.runs") -
                S0.counter("compile.autotune.runs"),
            1u);

  auto Second = Fn.runGpu(editDistanceArgs(S, T), Dev, Diags, Tuned);
  ASSERT_TRUE(Second.has_value()) << Diags.str();
  obs::MetricsSnapshot S2 = obs::MetricsRegistry::global().snapshot();
  EXPECT_EQ(S2.counter("compile.autotune.candidates"),
            S1.counter("compile.autotune.candidates"))
      << "a plan-cache hit must not re-run the candidate search";
  EXPECT_EQ(S2.counter("compile.autotune.runs"),
            S1.counter("compile.autotune.runs"));
  EXPECT_GE(Fn.planCacheStats().Hits, 1u);

  // And the cached tuned plan reproduces the first run exactly.
  EXPECT_EQ(First->RootValue, Second->RootValue);
  EXPECT_EQ(First->Cells, Second->Cells);
  EXPECT_EQ(First->Cycles, Second->Cycles);
}

//===----------------------------------------------------------------------===//
// Disabling passes: clean diagnostics and working fallbacks
//===----------------------------------------------------------------------===//

TEST(PassPipelineTest, DisabledSemaFailsWithDiagnosticNotCrash) {
  DisabledPassesGuard Guard;
  compiler::setDisabledPasses({"sema"});
  EXPECT_TRUE(compiler::isPassDisabled("sema"));
  EXPECT_FALSE(compiler::isPassDisabled("parse"));
  DiagnosticEngine Diags;
  auto Compiled = CompiledRecurrence::compile(ShippedEditDistanceSource, Diags);
  EXPECT_FALSE(Compiled.has_value());
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("requires"), std::string::npos)
      << "downstream pass must name the missing prerequisite: "
      << Diags.str();
}

TEST(PassPipelineTest, DisabledBytecodeFallsBackToAstEvaluator) {
  bio::Sequence S("s", "kitten"), T("t", "sitting");
  gpu::Device Dev;
  DiagnosticEngine Diags;
  CompiledRecurrence Baseline = compileOrDie(ShippedEditDistanceSource);
  auto Want = Baseline.runGpu(editDistanceArgs(S, T), Dev, Diags);
  ASSERT_TRUE(Want.has_value()) << Diags.str();

  DisabledPassesGuard Guard;
  compiler::setDisabledPasses({"bytecode"});
  CompiledRecurrence Fn = compileOrDie(ShippedEditDistanceSource);
  EXPECT_EQ(Fn.bytecode(), nullptr);
  auto Got = Fn.runGpu(editDistanceArgs(S, T), Dev, Diags);
  ASSERT_TRUE(Got.has_value()) << Diags.str();
  EXPECT_EQ(Got->RootValue, Want->RootValue);
  EXPECT_EQ(Got->TableMax, Want->TableMax);
  EXPECT_EQ(Got->Cells, Want->Cells);
}

TEST(PassPipelineTest, DisabledSlidingWindowKeepsFullTable) {
  bio::Sequence S("s", "kitten"), T("t", "sitting");
  gpu::Device Dev;
  DiagnosticEngine Diags;
  CompiledRecurrence Baseline = compileOrDie(ShippedEditDistanceSource);
  auto Want = Baseline.runGpu(editDistanceArgs(S, T), Dev, Diags);
  ASSERT_TRUE(Want.has_value()) << Diags.str();

  DisabledPassesGuard Guard;
  compiler::setDisabledPasses({"sliding_window"});
  CompiledRecurrence Fn = compileOrDie(ShippedEditDistanceSource);
  std::optional<solver::DomainBox> Box =
      Fn.domainFor(editDistanceArgs(S, T), Diags);
  ASSERT_TRUE(Box.has_value()) << Diags.str();
  std::shared_ptr<const exec::ExecutablePlan> Plan =
      Fn.planFor(*Box, {}, /*Preselected=*/nullptr, Diags);
  ASSERT_NE(Plan, nullptr) << Diags.str();
  EXPECT_FALSE(Plan->UseWindow);
  auto Got = Fn.runGpu(editDistanceArgs(S, T), Dev, Diags);
  ASSERT_TRUE(Got.has_value()) << Diags.str();
  EXPECT_EQ(Got->RootValue, Want->RootValue);
  EXPECT_EQ(Got->TableMax, Want->TableMax);
  EXPECT_EQ(Got->Cells, Want->Cells);
}
