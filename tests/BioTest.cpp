//===- BioTest.cpp - Tests for alphabets, sequences, FASTA, matrices ---------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "bio/Fasta.h"
#include "bio/SubstitutionMatrix.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

using namespace parrec;
using namespace parrec::bio;

TEST(AlphabetTest, Builtins) {
  EXPECT_EQ(Alphabet::dna().size(), 4u);
  EXPECT_EQ(Alphabet::protein().size(), 20u);
  EXPECT_EQ(Alphabet::english().size(), 26u);
  EXPECT_EQ(Alphabet::dna().indexOf('c'), 1);
  EXPECT_EQ(Alphabet::dna().indexOf('z'), -1);
  EXPECT_EQ(Alphabet::dna().charAt(3), 't');
  EXPECT_TRUE(Alphabet::protein().contains('W'));
  EXPECT_FALSE(Alphabet::protein().contains('w'));
}

TEST(SequenceTest, Basics) {
  Sequence S("query", "acgtacgt");
  EXPECT_EQ(S.length(), 8);
  EXPECT_EQ(S.at(0), 'a');
  EXPECT_EQ(S.at(7), 't');
  EXPECT_EQ(S.name(), "query");
}

TEST(FastaTest, ParseRoundTrip) {
  DiagnosticEngine Diags;
  auto Db = parseFasta(">first record\nacgt\nACGT ignored-spaces\n"
                       "; comment\n>second\n\ncccc\n",
                       Diags);
  ASSERT_TRUE(Db.has_value()) << Diags.str();
  ASSERT_EQ(Db->size(), 2u);
  EXPECT_EQ((*Db)[0].name(), "first record");
  EXPECT_EQ((*Db)[0].data(), "acgtACGTignored-spaces");
  EXPECT_EQ((*Db)[1].data(), "cccc");

  std::string Text = writeFasta(*Db);
  DiagnosticEngine Diags2;
  auto Again = parseFasta(Text, Diags2);
  ASSERT_TRUE(Again.has_value());
  EXPECT_EQ((*Again)[0].data(), (*Db)[0].data());
  EXPECT_EQ((*Again)[1].name(), "second");
}

TEST(FastaTest, DataBeforeHeaderIsError) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseFasta("acgt\n>late\nacgt\n", Diags).has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(FastaTest, LongLinesWrapAt60) {
  SequenceDatabase Db = {Sequence("s", std::string(150, 'a'))};
  std::string Text = writeFasta(Db);
  for (const std::string &Line : splitString(Text, '\n'))
    EXPECT_LE(Line.size(), 60u);
}

TEST(FastaTest, RandomDatabaseDeterministic) {
  auto A = randomDatabase(Alphabet::dna(), 10, 50, 100, 7);
  auto B = randomDatabase(Alphabet::dna(), 10, 50, 100, 7);
  ASSERT_EQ(A.size(), 10u);
  for (unsigned I = 0; I != 10; ++I) {
    EXPECT_EQ(A[I].data(), B[I].data());
    EXPECT_GE(A[I].length(), 50);
    EXPECT_LE(A[I].length(), 100);
    for (char C : A[I].data())
      EXPECT_TRUE(Alphabet::dna().contains(C));
  }
  auto C = randomDatabase(Alphabet::dna(), 10, 50, 100, 8);
  EXPECT_NE(A[0].data(), C[0].data());
}

TEST(SubstitutionMatrixTest, Blosum62KnownValues) {
  const SubstitutionMatrix &M = SubstitutionMatrix::blosum62();
  EXPECT_EQ(M.score('A', 'A'), 4);
  EXPECT_EQ(M.score('W', 'W'), 11);
  EXPECT_EQ(M.score('A', 'W'), -3);
  EXPECT_EQ(M.score('W', 'A'), -3);
  EXPECT_EQ(M.score('R', 'K'), 2);
  EXPECT_EQ(M.score('?', 'A'), 0) << "unknown characters score default";
}

TEST(SubstitutionMatrixTest, Symmetry) {
  const SubstitutionMatrix &M = SubstitutionMatrix::blosum62();
  const Alphabet &P = Alphabet::protein();
  for (unsigned A = 0; A != P.size(); ++A)
    for (unsigned B = 0; B != P.size(); ++B)
      EXPECT_EQ(M.scoreByIndex(A, B), M.scoreByIndex(B, A))
          << P.charAt(A) << " vs " << P.charAt(B);
}

TEST(SubstitutionMatrixTest, MatchMismatch) {
  SubstitutionMatrix M =
      SubstitutionMatrix::matchMismatch(Alphabet::dna(), 2, -1);
  EXPECT_EQ(M.score('a', 'a'), 2);
  EXPECT_EQ(M.score('a', 'c'), -1);
}

TEST(SubstitutionMatrixTest, ParseRoundTrip) {
  const SubstitutionMatrix &M = SubstitutionMatrix::blosum62();
  DiagnosticEngine Diags;
  auto Parsed = SubstitutionMatrix::parse(M.str(), Diags);
  ASSERT_TRUE(Parsed.has_value()) << Diags.str();
  for (unsigned A = 0; A != 20; ++A)
    for (unsigned B = 0; B != 20; ++B)
      EXPECT_EQ(Parsed->scoreByIndex(A, B), M.scoreByIndex(A, B));
}

TEST(FastaTest, FileRoundTrip) {
  SequenceDatabase Db = randomDatabase(Alphabet::protein(), 5, 20, 80,
                                       /*Seed=*/31337);
  std::string Path = ::testing::TempDir() + "/parrec_fasta_test.fa";
  {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out.good());
    Out << writeFasta(Db);
  }
  DiagnosticEngine Diags;
  auto Loaded = readFastaFile(Path, Diags);
  ASSERT_TRUE(Loaded.has_value()) << Diags.str();
  ASSERT_EQ(Loaded->size(), Db.size());
  for (size_t I = 0; I != Db.size(); ++I) {
    EXPECT_EQ((*Loaded)[I].name(), Db[I].name());
    EXPECT_EQ((*Loaded)[I].data(), Db[I].data());
  }
  std::remove(Path.c_str());
}

TEST(FastaTest, MissingFileReported) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(
      readFastaFile("/nonexistent/parrec.fa", Diags).has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(SubstitutionMatrixTest, ParseErrors) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(SubstitutionMatrix::parse("", Diags).has_value());
  DiagnosticEngine Diags2;
  EXPECT_FALSE(
      SubstitutionMatrix::parse("ab\na: 1 2\n", Diags2).has_value())
      << "missing row must be rejected";
  DiagnosticEngine Diags3;
  EXPECT_FALSE(
      SubstitutionMatrix::parse("ab\na: 1\nb: 1 2\n", Diags3).has_value())
      << "short row must be rejected";
}
