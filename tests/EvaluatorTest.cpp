//===- EvaluatorTest.cpp - Tests for the cell evaluator ------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "codegen/Evaluator.h"

#include "bio/HmmZoo.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace parrec;
using namespace parrec::codegen;

namespace {

/// A trivial table stub returning a fixed value.
class ConstantTable : public TableView {
public:
  explicit ConstantTable(double Value) : Value(Value) {}
  double get(const int64_t *) const override { return Value; }

private:
  double Value;
};

struct Harness {
  std::unique_ptr<lang::FunctionDecl> Decl;
  lang::FunctionInfo Info;
  std::unique_ptr<Evaluator> Eval;
  DiagnosticEngine Diags;

  bool compile(const char *Source) {
    lang::Parser P(Source, Diags);
    Decl = P.parseFunctionOnly();
    if (!Decl)
      return false;
    lang::Sema S(Diags, {"dna", "rna", "protein", "en"});
    auto MaybeInfo = S.analyze(*Decl);
    if (!MaybeInfo)
      return false;
    Info = std::move(*MaybeInfo);
    Info.Decl = Decl.get();
    Eval = std::make_unique<Evaluator>(*Decl, Info);
    return true;
  }

  double evalAt(std::vector<int64_t> Point, double TableValue,
                gpu::CostCounter *CostOut = nullptr) {
    ConstantTable Table(TableValue);
    gpu::CostCounter Cost;
    double V = Eval->evalCell(Point.data(), Table, Cost);
    if (CostOut)
      *CostOut = Cost;
    return V;
  }
};

} // namespace

TEST(EvaluatorTest, IntegerArithmetic) {
  Harness H;
  ASSERT_TRUE(H.compile(
      "int f(int n) = if n == 0 then 0 else ((n * 3 + 4) / 2 - 1) min "
      "100 max (0 - 5)\n"))
      << H.Diags.str();
  H.Eval->bind({ArgValue::ofInt(10)});
  // n = 7: (7*3+4)/2 - 1 = 11; min 100 -> 11; max -5 -> 11.
  EXPECT_DOUBLE_EQ(H.evalAt({7}, 0.0), 11.0);
  EXPECT_DOUBLE_EQ(H.evalAt({0}, 0.0), 0.0);
}

TEST(EvaluatorTest, ComparisonsAndBooleans) {
  Harness H;
  ASSERT_TRUE(H.compile("int f(int n) =\n"
                        "  if n < 3 then 1\n"
                        "  else if n >= 8 then 2\n"
                        "  else if n != 5 then 3\n"
                        "  else 4 + f(n - 1) * 0\n"))
      << H.Diags.str();
  H.Eval->bind({ArgValue::ofInt(10)});
  EXPECT_DOUBLE_EQ(H.evalAt({2}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(H.evalAt({9}, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(H.evalAt({6}, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(H.evalAt({5}, 0.0), 4.0);
}

TEST(EvaluatorTest, RecursiveLookupUsesTable) {
  Harness H;
  ASSERT_TRUE(H.compile(
      "int f(int n) = if n == 0 then 1 else f(n - 1) + 2\n"));
  H.Eval->bind({ArgValue::ofInt(5)});
  gpu::CostCounter Cost;
  EXPECT_DOUBLE_EQ(H.evalAt({3}, 40.0, &Cost), 42.0);
  EXPECT_EQ(Cost.TableReads, 1u);
  EXPECT_EQ(Cost.TableWrites, 1u);
}

TEST(EvaluatorTest, SequenceAndCharEquality) {
  Harness H;
  ASSERT_TRUE(H.compile(
      "int f(seq[dna] s, index[s] i) =\n"
      "  if i == 0 then 0\n"
      "  else if s[i-1] == 'a' then 1 + f(i-1) * 0 else 2\n"))
      << H.Diags.str();
  bio::Sequence S("s", "acg");
  H.Eval->bind({ArgValue::ofSeq(&S), ArgValue()});
  EXPECT_DOUBLE_EQ(H.evalAt({1}, 0.0), 1.0); // s[0] == 'a'.
  EXPECT_DOUBLE_EQ(H.evalAt({2}, 0.0), 2.0); // s[1] == 'c'.
}

TEST(EvaluatorTest, MatrixLookup) {
  Harness H;
  ASSERT_TRUE(H.compile(
      "int f(matrix[protein] m, seq[protein] a, index[a] i) =\n"
      "  if i == 0 then 0 else m[a[i-1], a[i-1]] + f(i-1) * 0\n"))
      << H.Diags.str();
  bio::Sequence A("a", "WA");
  H.Eval->bind({ArgValue::ofMatrix(&bio::SubstitutionMatrix::blosum62()),
                ArgValue::ofSeq(&A), ArgValue()});
  EXPECT_DOUBLE_EQ(H.evalAt({1}, 0.0), 11.0); // W vs W.
  EXPECT_DOUBLE_EQ(H.evalAt({2}, 0.0), 4.0);  // A vs A.
}

TEST(EvaluatorTest, ProbabilityLogSpace) {
  Harness H;
  ASSERT_TRUE(H.compile(
      "prob f(float p, int n) =\n"
      "  if n == 0 then 0.5 else (f(n-1) * 0.5) + f(n-1)\n"))
      << H.Diags.str();
  H.Eval->bind({ArgValue::ofReal(0.0), ArgValue::ofInt(4)});
  // Base case: stored value is log(0.5).
  EXPECT_NEAR(H.evalAt({0}, 0.0), std::log(0.5), 1e-12);
  // Recursive case with table cell = log(0.25):
  // 0.25*0.5 + 0.25 = 0.375 in linear space.
  gpu::CostCounter Cost;
  double V = H.evalAt({2}, std::log(0.25), &Cost);
  EXPECT_NEAR(V, std::log(0.375), 1e-12);
  EXPECT_GE(Cost.Transcendentals, 1u)
      << "log-space addition must count a transcendental";
}

TEST(EvaluatorTest, HmmMembersAndReductions) {
  Harness H;
  ASSERT_TRUE(H.compile(
      "prob f(hmm h, state[h] s, int n) =\n"
      "  if n == 0 then (if s.isstart then 1.0 else 0.0)\n"
      "  else sum(t in s.transitionsto : t.prob * f(t.start, n - 1))\n"))
      << H.Diags.str();
  bio::Hmm Model = bio::makeCasinoModel();
  H.Eval->bind({ArgValue::ofHmm(&Model), ArgValue(),
                ArgValue::ofInt(3)});

  // Base cases: start state stores log 1 = 0, others log 0 = -inf.
  unsigned Start = Model.startState();
  EXPECT_DOUBLE_EQ(
      H.evalAt({static_cast<int64_t>(Start), 0}, 0.0), 0.0);
  int Fair = Model.findState("fair");
  EXPECT_TRUE(std::isinf(H.evalAt({Fair, 0}, 0.0)));

  // fair at n > 0: incoming from begin (1.0), fair (0.94), loaded (0.1);
  // with all table cells = log(0.5): sum = 0.5 * (1 + 0.94 + 0.1).
  double V = H.evalAt({Fair, 1}, std::log(0.5));
  EXPECT_NEAR(V, std::log(0.5 * (1.0 + 0.94 + 0.1)), 1e-9);
}

TEST(EvaluatorTest, EmptyReductionIdentities) {
  // The begin state has no incoming transitions: sum over the empty set
  // is probability 0 (log -inf), max is -inf, NOT probability 1. (This
  // was a real bug: see the Viterbi example.)
  for (const char *Op : {"sum", "max", "min"}) {
    Harness H;
    std::string Source =
        std::string("prob f(hmm h, state[h] s, int n) =\n"
                    "  if n == 0 then 1.0\n"
                    "  else ") +
        Op + "(t in s.transitionsto : t.prob * f(t.start, n - 1))\n";
    ASSERT_TRUE(H.compile(Source.c_str())) << Op << H.Diags.str();
    bio::Hmm Model = bio::makeCasinoModel();
    H.Eval->bind({ArgValue::ofHmm(&Model), ArgValue(),
                  ArgValue::ofInt(2)});
    int64_t Begin = Model.startState();
    double V = H.evalAt({Begin, 1}, 0.0);
    if (std::string(Op) == "min")
      EXPECT_TRUE(std::isinf(V) && V > 0) << Op;
    else
      EXPECT_TRUE(std::isinf(V) && V < 0) << Op;
  }
}

TEST(EvaluatorTest, TransitionsFromDirection) {
  Harness H;
  ASSERT_TRUE(H.compile(
      "prob f(hmm h, state[h] s, int n) =\n"
      "  if n == 0 then 1.0\n"
      "  else sum(t in s.transitionsfrom : t.prob * f(t.end, n - 1))\n"))
      << H.Diags.str();
  bio::Hmm Model = bio::makeCasinoModel();
  H.Eval->bind({ArgValue::ofHmm(&Model), ArgValue(),
                ArgValue::ofInt(2)});
  // Outgoing probabilities of fair sum to 1 -> with table cells log(1)=0
  // the sum is log(1) = 0.
  int Fair = Model.findState("fair");
  EXPECT_NEAR(H.evalAt({Fair, 1}, 0.0), 0.0, 1e-9);
}

TEST(EvaluatorTest, ValidationRejectsProbSubtraction) {
  DiagnosticEngine Diags;
  lang::Parser P("prob f(int n) = if n == 0 then 0.5 else f(n-1) - "
                 "f(n-1)\n",
                 Diags);
  auto Decl = P.parseFunctionOnly();
  ASSERT_TRUE(Decl != nullptr);
  lang::Sema S(Diags, {});
  auto Info = S.analyze(*Decl);
  ASSERT_TRUE(Info.has_value()) << Diags.str();
  EXPECT_FALSE(validateForExecution(*Decl, Diags));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(EvaluatorTest, CostCountingIsMonotoneInWork) {
  Harness H;
  ASSERT_TRUE(H.compile(
      "int f(int n) = if n == 0 then 0 else f(n-1) + f(n-1) + f(n-1)\n"));
  H.Eval->bind({ArgValue::ofInt(4)});
  gpu::CostCounter Base, Rec;
  H.evalAt({0}, 0.0, &Base);
  H.evalAt({3}, 1.0, &Rec);
  EXPECT_GT(Rec.Ops, Base.Ops);
  EXPECT_EQ(Rec.TableReads, 3u);
}

TEST(HmmLogCacheTest, MatchesModelParameters) {
  bio::Hmm Model = bio::makeCasinoModel();
  HmmLogCache Cache;
  Cache.build(Model);
  ASSERT_EQ(Cache.LogTransitionProbs.size(), Model.numTransitions());
  for (unsigned T = 0; T != Model.numTransitions(); ++T)
    EXPECT_NEAR(Cache.LogTransitionProbs[T],
                std::log(Model.transition(T).Prob), 1e-12);
  unsigned Loaded = static_cast<unsigned>(Model.findState("loaded"));
  EXPECT_NEAR(Cache.LogEmissions[Loaded][5], std::log(0.5), 1e-12);
  EXPECT_TRUE(Cache.LogEmissions[Model.startState()].empty());
}
