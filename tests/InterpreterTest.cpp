//===- InterpreterTest.cpp - Tests for the script interpreter -----------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "runtime/Interpreter.h"

#include "baselines/SmithWaterman.h"
#include "bio/HmmZoo.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

using namespace parrec;
using namespace parrec::runtime;

namespace {

const char *EditDistanceFunction =
    "int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =\n"
    "  if i == 0 then j\n"
    "  else if j == 0 then i\n"
    "  else if s[i-1] == t[j-1] then d(i-1, j-1)\n"
    "  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1\n";

} // namespace

TEST(InterpreterTest, PrintRunsARecursion) {
  DiagnosticEngine Diags;
  Interpreter Interp(Diags);
  Interp.defineSequence("a", bio::Sequence("a", "kitten"));
  Interp.defineSequence("b", bio::Sequence("b", "sitting"));

  std::string Script = std::string(EditDistanceFunction) +
                       "print d(a, b)\n";
  auto Output = Interp.run(Script);
  ASSERT_TRUE(Output.has_value()) << Diags.str();
  EXPECT_NE(Output->find("d(a, b) = 3"), std::string::npos) << *Output;
}

TEST(InterpreterTest, CpuAndGpuModesAgree) {
  for (bool UseGpu : {false, true}) {
    DiagnosticEngine Diags;
    Interpreter::Options Opts;
    Opts.UseGpu = UseGpu;
    Interpreter Interp(Diags, std::move(Opts));
    Interp.defineSequence("a", bio::Sequence("a", "flaw"));
    Interp.defineSequence("b", bio::Sequence("b", "lawn"));
    auto Output = Interp.run(std::string(EditDistanceFunction) +
                             "print d(a, b)\n");
    ASSERT_TRUE(Output.has_value()) << Diags.str();
    EXPECT_NE(Output->find("d(a, b) = 2"), std::string::npos)
        << *Output;
  }
}

TEST(InterpreterTest, TableMaxForSmithWaterman) {
  DiagnosticEngine Diags;
  Interpreter Interp(Diags);
  Interp.defineMatrix("blosum", bio::SubstitutionMatrix::blosum62());
  Interp.defineSequence("q", bio::Sequence("q", "HEAGAWGHEE"));
  Interp.defineSequence("s", bio::Sequence("s", "PAWHEAE"));

  const char *Script =
      "int sw(matrix[protein] m, seq[protein] a, index[a] i,\n"
      "       seq[protein] b, index[b] j) =\n"
      "  if i == 0 then 0\n"
      "  else if j == 0 then 0\n"
      "  else 0 max (sw(i-1, j-1) + m[a[i-1], b[j-1]])\n"
      "       max (sw(i-1, j) - 4) max (sw(i, j-1) - 4)\n"
      "print max sw(blosum, q, s)\n";
  auto Output = Interp.run(Script);
  ASSERT_TRUE(Output.has_value()) << Diags.str();
  // Must equal the hand-written Smith-Waterman implementation.
  baselines::SwParams Params;
  Params.Matrix = &bio::SubstitutionMatrix::blosum62();
  Params.GapPenalty = 4;
  gpu::CostCounter Cost;
  int Expected = baselines::smithWatermanScore(
      bio::Sequence("q", "HEAGAWGHEE"), bio::Sequence("s", "PAWHEAE"),
      Params, Cost);
  EXPECT_NE(Output->find("= " + std::to_string(Expected)),
            std::string::npos)
      << *Output << " expected score " << Expected;
}

TEST(InterpreterTest, InlineHmmAndMap) {
  DiagnosticEngine Diags;
  Interpreter Interp(Diags);
  bio::SequenceDatabase Db = {bio::Sequence("one", "ff"),
                              bio::Sequence("two", "ab")};
  Interp.defineDatabase("rolls", Db);

  const char *Script =
      "hmm casino = {\n"
      "  alphabet letters abcdef ;\n"
      "  state begin start ;\n"
      "  state loaded emits a 0.1 b 0.1 c 0.1 d 0.1 e 0.1 f 0.5 ;\n"
      "  state finish end ;\n"
      "  transition begin -> loaded 1.0 ;\n"
      "  transition loaded -> loaded 0.9 ;\n"
      "  transition loaded -> finish 0.1 ;\n"
      "}\n"
      "prob fwd(hmm h, state[h] s, seq[*] x, index[x] i) =\n"
      "  if i == 0 then (if s.isstart then 1.0 else 0.0)\n"
      "  else (if s.isend then 1.0 else s.emission[x[i-1]]) *\n"
      "    sum(t in s.transitionsto : t.prob * fwd(t.start, i - 1))\n"
      "map fwd(casino, rolls)\n";
  auto Output = Interp.run(Script);
  ASSERT_TRUE(Output.has_value()) << Diags.str();
  // F(end, 2) = P(emit one symbol then end) = 1.0*e(x0)*0.1:
  // "ff" -> 0.5*0.1 = 0.05; "ab" -> 0.1*0.1 = 0.01.
  EXPECT_NE(Output->find("fwd(one) = 0.05"), std::string::npos)
      << *Output;
  EXPECT_NE(Output->find("fwd(two) = 0.01"), std::string::npos)
      << *Output;
  EXPECT_NE(Output->find("map fwd: 2 problems"), std::string::npos);
}

TEST(InterpreterTest, AlphabetStatementEnablesCustomSeqs) {
  DiagnosticEngine Diags;
  Interpreter Interp(Diags);
  Interp.defineSequence("s", bio::Sequence("s", "0110"));
  const char *Script =
      "alphabet bin = \"01\"\n"
      "int ones(seq[bin] s, index[s] i) =\n"
      "  if i == 0 then 0\n"
      "  else ones(i-1) + (if s[i-1] == '1' then 1 else 0)\n"
      "print ones(s)\n";
  auto Output = Interp.run(Script);
  ASSERT_TRUE(Output.has_value()) << Diags.str();
  EXPECT_NE(Output->find("ones(s) = 2"), std::string::npos) << *Output;
}

TEST(InterpreterTest, IntArgumentsBindLiterals) {
  DiagnosticEngine Diags;
  Interpreter Interp(Diags);
  const char *Script =
      "int fib(int n) = if n < 2 then n else fib(n-1) + fib(n-2)\n"
      "print fib(20)\n";
  auto Output = Interp.run(Script);
  ASSERT_TRUE(Output.has_value()) << Diags.str();
  EXPECT_NE(Output->find("fib(20) = 6765"), std::string::npos)
      << *Output;
}

TEST(InterpreterTest, ErrorsAreReported) {
  {
    DiagnosticEngine Diags;
    Interpreter Interp(Diags);
    EXPECT_FALSE(Interp.run("print nosuch(a)\n").has_value());
    EXPECT_TRUE(Diags.hasErrors());
  }
  {
    DiagnosticEngine Diags;
    Interpreter Interp(Diags);
    std::string Script = std::string(EditDistanceFunction) +
                         "print d(a, b)\n";
    EXPECT_FALSE(Interp.run(Script).has_value())
        << "unknown sequences must be reported";
    EXPECT_TRUE(Diags.hasErrors());
  }
  {
    DiagnosticEngine Diags;
    Interpreter Interp(Diags);
    Interp.defineSequence("a", bio::Sequence("a", "x"));
    std::string Script = std::string(EditDistanceFunction) +
                         "print d(a)\n";
    EXPECT_FALSE(Interp.run(Script).has_value())
        << "arity errors must be reported";
  }
  {
    DiagnosticEngine Diags;
    Interpreter Interp(Diags);
    EXPECT_FALSE(
        Interp.run("seq[dna] s = load \"/nonexistent.fa\"\n")
            .has_value());
    EXPECT_TRUE(Diags.hasErrors());
  }
}

TEST(InterpreterTest, LoadStatementsFromFiles) {
  std::string Dir = ::testing::TempDir();
  {
    std::ofstream Fa(Dir + "/parrec_itest.fa");
    Fa << ">first\nkitten\n>second\nsitting\n";
    std::ofstream Mx(Dir + "/parrec_itest.mx");
    Mx << "ab\na: 1 -1\nb: -1 1\n";
    std::ofstream Hm(Dir + "/parrec_itest.hmm");
    Hm << "alphabet letters ab ;\n"
          "state begin start ;\n"
          "state only emits a 0.5 b 0.5 ;\n"
          "state finish end ;\n"
          "transition begin -> only 1.0 ;\n"
          "transition only -> only 0.5 ;\n"
          "transition only -> finish 0.5 ;\n";
  }
  DiagnosticEngine Diags;
  Interpreter::Options Opts;
  Opts.BasePath = Dir;
  Interpreter Interp(Diags, std::move(Opts));
  std::string Script =
      std::string("seq[en] a = load \"parrec_itest.fa\" [0]\n"
                  "seq[en] b = load \"parrec_itest.fa\" [1]\n"
                  "seqdb[en] db = load \"parrec_itest.fa\"\n"
                  "matrix[*] m = load \"parrec_itest.mx\"\n"
                  "hmm h = load \"parrec_itest.hmm\"\n") +
      EditDistanceFunction + "print d(a, b)\n";
  auto Output = Interp.run(Script);
  ASSERT_TRUE(Output.has_value()) << Diags.str();
  EXPECT_NE(Output->find("d(a, b) = 3"), std::string::npos) << *Output;

  std::remove((Dir + "/parrec_itest.fa").c_str());
  std::remove((Dir + "/parrec_itest.mx").c_str());
  std::remove((Dir + "/parrec_itest.hmm").c_str());
}

TEST(InterpreterTest, RecordIndexOutOfRange) {
  std::string Dir = ::testing::TempDir();
  {
    std::ofstream Fa(Dir + "/parrec_itest2.fa");
    Fa << ">only\nacgt\n";
  }
  DiagnosticEngine Diags;
  Interpreter::Options Opts;
  Opts.BasePath = Dir;
  Interpreter Interp(Diags, std::move(Opts));
  EXPECT_FALSE(
      Interp.run("seq[dna] s = load \"parrec_itest2.fa\" [5]\n")
          .has_value());
  EXPECT_TRUE(Diags.hasErrors());
  std::remove((Dir + "/parrec_itest2.fa").c_str());
}

TEST(InterpreterTest, MapRequiresExactlyOneDatabase) {
  DiagnosticEngine Diags;
  Interpreter Interp(Diags);
  Interp.defineSequence("a", bio::Sequence("a", "ab"));
  Interp.defineSequence("b", bio::Sequence("b", "cd"));
  std::string Script = std::string(EditDistanceFunction) +
                       "map d(a, b)\n";
  EXPECT_FALSE(Interp.run(Script).has_value());
  EXPECT_TRUE(Diags.hasErrors());
}
