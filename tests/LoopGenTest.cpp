//===- LoopGenTest.cpp - Tests for CLooG-style loop generation --------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "poly/CPrinter.h"
#include "poly/LoopGen.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace parrec;
using namespace parrec::poly;

namespace {

/// Builds the edit-distance domain of Figure 9: parameters m, n and
/// recursion dimensions x in [0, n], y in [0, m].
Polyhedron editDistanceDomain() {
  Polyhedron P({"m", "n", "x", "y"});
  // x >= 0, n - x >= 0.
  P.addConstraint(Constraint::ge(AffineExpr::dim(4, 2)));
  P.addConstraint(
      Constraint::ge(AffineExpr::dim(4, 1) - AffineExpr::dim(4, 2)));
  // y >= 0, m - y >= 0.
  P.addConstraint(Constraint::ge(AffineExpr::dim(4, 3)));
  P.addConstraint(
      Constraint::ge(AffineExpr::dim(4, 0) - AffineExpr::dim(4, 3)));
  return P;
}

AffineExpr diagonalSchedule() {
  // S = x + y over [m, n, x, y].
  return AffineExpr::dim(4, 2) + AffineExpr::dim(4, 3);
}

using Point = std::vector<int64_t>;

std::multiset<Point> scanAll(const LoopNest &Nest,
                             const std::vector<int64_t> &Params) {
  std::multiset<Point> Seen;
  auto Range = Nest.timeRange(Params);
  if (!Range)
    return Seen;
  for (int64_t P = Range->first; P <= Range->second; ++P)
    Nest.forEachPoint(Params, P, [&](const int64_t *X) {
      Seen.insert(Point(X, X + Nest.NumRecursionDims));
    });
  return Seen;
}

} // namespace

TEST(LoopGenTest, Figure9EditDistance) {
  LoopNest Nest = generateLoops(editDistanceDomain(), /*NumParams=*/2,
                                diagonalSchedule(), "p");
  ASSERT_EQ(Nest.Levels.size(), 3u);
  EXPECT_FALSE(Nest.Levels[0].isFixed()); // p loop.
  EXPECT_FALSE(Nest.Levels[1].isFixed()); // x loop.
  EXPECT_TRUE(Nest.Levels[2].isFixed());  // y = p - x.

  // Instantiate m = 3, n = 2: time range is [0, m + n] = [0, 5].
  auto Range = Nest.timeRange({3, 2});
  ASSERT_TRUE(Range.has_value());
  EXPECT_EQ(Range->first, 0);
  EXPECT_EQ(Range->second, 5);

  // The scan visits exactly the (x, y) box, each point once, in its own
  // partition.
  std::multiset<Point> Seen = scanAll(Nest, {3, 2});
  EXPECT_EQ(Seen.size(), 4u * 3u); // (m+1) * (n+1).
  for (int64_t X = 0; X <= 2; ++X)
    for (int64_t Y = 0; Y <= 3; ++Y)
      EXPECT_EQ(Seen.count({X, Y}), 1u)
          << "point (" << X << "," << Y << ")";
}

TEST(LoopGenTest, Figure9PrintedForm) {
  LoopNest Nest = generateLoops(editDistanceDomain(), 2,
                                diagonalSchedule(), "p");
  std::string Code = printSequentialLoops(Nest, "S1");
  // The canonical CLooG shape: an outer p loop, an inner x loop with
  // max/min bounds mentioning p and the parameters, and the statement
  // reconstructing y as p - x.
  EXPECT_NE(Code.find("for (p="), std::string::npos) << Code;
  EXPECT_NE(Code.find("for (x="), std::string::npos) << Code;
  EXPECT_NE(Code.find("S1(x,p - x);"), std::string::npos) << Code;
  EXPECT_NE(Code.find("max("), std::string::npos) << Code;
  EXPECT_NE(Code.find("min("), std::string::npos) << Code;
}

TEST(LoopGenTest, Figure10ParallelForm) {
  LoopNest Nest = generateLoops(editDistanceDomain(), 2,
                                diagonalSchedule(), "p");
  std::string Code = printParallelLoops(Nest);
  EXPECT_NE(Code.find("parfor threads t in 0..tn"), std::string::npos)
      << Code;
  EXPECT_NE(Code.find("x+=tn"), std::string::npos) << Code;
  EXPECT_NE(Code.find("sync"), std::string::npos) << Code;
  EXPECT_NE(Code.find("farr[x0,x1] = f(x0,x1);"), std::string::npos)
      << Code;
}

TEST(LoopGenTest, ThreadStripingPartitionsTheWork) {
  LoopNest Nest = generateLoops(editDistanceDomain(), 2,
                                diagonalSchedule(), "p");
  std::vector<int64_t> Params = {7, 5};
  auto Range = Nest.timeRange(Params);
  ASSERT_TRUE(Range.has_value());

  for (unsigned Threads : {1u, 2u, 3u, 8u}) {
    std::multiset<Point> Combined;
    for (int64_t P = Range->first; P <= Range->second; ++P)
      for (unsigned T = 0; T != Threads; ++T)
        Nest.forEachPointForThread(Params, P, T, Threads,
                                   [&](const int64_t *X) {
                                     Combined.insert(Point(
                                         X, X + Nest.NumRecursionDims));
                                   });
    EXPECT_EQ(Combined.size(), 8u * 6u) << Threads << " threads";
    // No duplicates: every point exactly once across all threads.
    for (const Point &Pt : Combined)
      EXPECT_EQ(Combined.count(Pt), 1u);
  }
}

/// Property: over random boxes and random valid-looking schedules, the
/// generated nest enumerates exactly the box, each point exactly once,
/// and assigns each point to the partition its schedule value names.
struct RandomScanCase {
  unsigned Dims;
  uint64_t Seed;

  friend std::ostream &operator<<(std::ostream &Os,
                                  const RandomScanCase &C) {
    return Os << C.Dims << "d_seed" << C.Seed;
  }
};

class LoopGenPropertyTest
    : public ::testing::TestWithParam<RandomScanCase> {};

TEST_P(LoopGenPropertyTest, ScansExactlyTheBox) {
  RandomScanCase Case = GetParam();
  SplitMix64 Rng(Case.Seed);
  unsigned N = Case.Dims;

  std::vector<int64_t> Extents;
  std::vector<std::string> Names;
  for (unsigned D = 0; D != N; ++D) {
    Extents.push_back(Rng.nextInRange(1, 6));
    Names.push_back("x" + std::to_string(D));
  }
  Polyhedron Domain(Names);
  for (unsigned D = 0; D != N; ++D)
    Domain.addBounds(D, 0, Extents[D] - 1);

  AffineExpr Schedule(N);
  bool AllZero = true;
  for (unsigned D = 0; D != N; ++D) {
    int64_t C = Rng.nextInRange(-3, 3);
    Schedule.setCoefficient(D, C);
    AllZero &= C == 0;
  }
  if (AllZero)
    Schedule.setCoefficient(0, 1);

  LoopNest Nest = generateLoops(Domain, 0, Schedule);
  auto Range = Nest.timeRange({});
  ASSERT_TRUE(Range.has_value());

  std::map<Point, int64_t> SeenPartition;
  uint64_t Total = 0;
  for (int64_t P = Range->first; P <= Range->second; ++P)
    Nest.forEachPoint({}, P, [&](const int64_t *X) {
      Point Pt(X, X + N);
      EXPECT_EQ(SeenPartition.count(Pt), 0u) << "duplicate point";
      EXPECT_EQ(Schedule.evaluate(Pt), P) << "wrong partition";
      SeenPartition[Pt] = P;
      ++Total;
    });

  uint64_t Expected = 1;
  for (int64_t E : Extents)
    Expected *= static_cast<uint64_t>(E);
  EXPECT_EQ(Total, Expected);
}

INSTANTIATE_TEST_SUITE_P(
    RandomScans, LoopGenPropertyTest,
    ::testing::Values(RandomScanCase{1, 11}, RandomScanCase{1, 12},
                      RandomScanCase{2, 21}, RandomScanCase{2, 22},
                      RandomScanCase{2, 23}, RandomScanCase{3, 31},
                      RandomScanCase{3, 32}, RandomScanCase{3, 33},
                      RandomScanCase{4, 41}, RandomScanCase{4, 42}));

TEST(LoopGenTest, CountPoints) {
  LoopNest Nest = generateLoops(editDistanceDomain(), 2,
                                diagonalSchedule(), "p");
  // Partition p of an (m+1) x (n+1) edit-distance domain holds the p-th
  // anti-diagonal.
  EXPECT_EQ(Nest.countPoints({3, 3}, 0), 1u);
  EXPECT_EQ(Nest.countPoints({3, 3}, 2), 3u);
  EXPECT_EQ(Nest.countPoints({3, 3}, 3), 4u);
  EXPECT_EQ(Nest.countPoints({3, 3}, 6), 1u);
  EXPECT_EQ(Nest.countPoints({3, 3}, 7), 0u);
}

TEST(LoopGenTest, NonUnitScheduleCoefficients) {
  // S = 2x + y on a 3x3 box: partitions are sparse but must still cover
  // the box exactly once.
  Polyhedron Domain({"x", "y"});
  Domain.addBounds(0, 0, 2);
  Domain.addBounds(1, 0, 2);
  AffineExpr S({2, 1}, 0);
  LoopNest Nest = generateLoops(Domain, 0, S);
  std::multiset<Point> Seen = scanAll(Nest, {});
  EXPECT_EQ(Seen.size(), 9u);
  for (int64_t X = 0; X <= 2; ++X)
    for (int64_t Y = 0; Y <= 2; ++Y)
      EXPECT_EQ(Seen.count({X, Y}), 1u);
}

TEST(LoopGenTest, DividedBoundsRenderAsFloorDiv) {
  // S = 2x + y over a square box: the x loop's upper bound involves
  // floor(p / 2), rendered in CLooG's floord style.
  Polyhedron Domain({"n", "x", "y"});
  // 0 <= x <= n, 0 <= y <= n.
  for (unsigned D : {1u, 2u}) {
    Domain.addConstraint(Constraint::ge(AffineExpr::dim(3, D)));
    Domain.addConstraint(
        Constraint::ge(AffineExpr::dim(3, 0) - AffineExpr::dim(3, D)));
  }
  AffineExpr S = AffineExpr::dim(3, 1) * 2 + AffineExpr::dim(3, 2);
  LoopNest Nest = generateLoops(Domain, 1, S);
  std::string Code = printSequentialLoops(Nest);
  EXPECT_NE(Code.find("floord("), std::string::npos) << Code;

  // And the scan is still exact for a concrete instantiation.
  std::multiset<Point> Seen = scanAll(Nest, {4});
  EXPECT_EQ(Seen.size(), 25u);
}

TEST(LoopGenTest, EmptyDomainHasNoTimeRange) {
  Polyhedron Domain({"x"});
  Domain.addBounds(0, 5, 3); // Empty.
  AffineExpr S = AffineExpr::dim(1, 0);
  LoopNest Nest = generateLoops(Domain, 0, S);
  EXPECT_FALSE(Nest.timeRange({}).has_value());
}

TEST(LoopGenTest, NegativeCoefficients) {
  Polyhedron Domain({"x", "y"});
  Domain.addBounds(0, 0, 3);
  Domain.addBounds(1, 0, 2);
  AffineExpr S({1, -1}, 0); // S = x - y.
  LoopNest Nest = generateLoops(Domain, 0, S);
  auto Range = Nest.timeRange({});
  ASSERT_TRUE(Range.has_value());
  EXPECT_EQ(Range->first, -2);
  EXPECT_EQ(Range->second, 3);
  EXPECT_EQ(scanAll(Nest, {}).size(), 12u);
}
