//===- MutualRecurrenceTest.cpp - Tests for system scheduling ----------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the Section 9 (Further Work) implementation: deriving
/// multiple compatible scheduling functions for mutually recursive
/// systems.
///
//===----------------------------------------------------------------------===//

#include "solver/MutualRecurrence.h"

#include <gtest/gtest.h>

using namespace parrec;
using namespace parrec::poly;
using namespace parrec::solver;

namespace {

/// Uniform descent over \p Dims dimensions.
SystemCall callTo(unsigned Callee, std::vector<int64_t> Offsets) {
  SystemCall Call;
  Call.Callee = Callee;
  unsigned N = static_cast<unsigned>(Offsets.size());
  for (unsigned I = 0; I != N; ++I) {
    AffineExpr C = AffineExpr::dim(N, I);
    C.setConstantTerm(Offsets[I]);
    Call.Components.push_back(C);
  }
  return Call;
}

/// The affine-gap alignment system of three 2-D matrices (the structure
/// behind Gotoh's algorithm, and the RNA-adjacent shape the paper's
/// future work aims at):
///   M(i,j)  <- M(i-1,j-1), Ix(i-1,j-1), Iy(i-1,j-1)
///   Ix(i,j) <- M(i-1,j),   Ix(i-1,j)
///   Iy(i,j) <- M(i,j-1),   Iy(i,j-1)
RecurrenceSystem affineGapSystem() {
  RecurrenceSystem System;
  SystemFunction M, Ix, Iy;
  M.Name = "M";
  M.DimNames = {"i", "j"};
  M.Calls = {callTo(0, {-1, -1}), callTo(1, {-1, -1}),
             callTo(2, {-1, -1})};
  Ix.Name = "Ix";
  Ix.DimNames = {"i", "j"};
  Ix.Calls = {callTo(0, {-1, 0}), callTo(1, {-1, 0})};
  Iy.Name = "Iy";
  Iy.DimNames = {"i", "j"};
  Iy.Calls = {callTo(0, {0, -1}), callTo(2, {0, -1})};
  System.Functions = {std::move(M), std::move(Ix), std::move(Iy)};
  return System;
}

} // namespace

TEST(SystemScheduleTest, AffineGapAlignment) {
  RecurrenceSystem System = affineGapSystem();
  std::vector<DomainBox> Boxes(3, DomainBox::fromExtents({6, 6}));

  DiagnosticEngine Diags;
  SystemScheduleOptions Options;
  Options.MaxCoefficient = 3;
  Options.MaxOffset = 4;
  auto S = findSystemSchedule(System, Boxes, Diags, Options);
  ASSERT_TRUE(S.has_value()) << Diags.str();

  // The classic solution: every matrix on the anti-diagonal wavefront
  // with identical offsets.
  for (unsigned F = 0; F != 3; ++F)
    EXPECT_EQ(S->PerFunction[F].Coefficients.Coefficients,
              (std::vector<int64_t>{1, 1}))
        << System.Functions[F].Name << ": "
        << S->PerFunction[F].str({"i", "j"});
  EXPECT_TRUE(verifySystemSchedule(System, *S, Boxes, Diags))
      << Diags.str();
  EXPECT_EQ(S->totalPartitions(Boxes), 11);
}

TEST(SystemScheduleTest, AlternatingChainNeedsOffsets) {
  // f(x) calls g(x); g(x) calls f(x-1). Identical schedules without
  // offsets cannot order f(x) after g(x) in the same step; the solution
  // interleaves them: S_f = 2x + 1, S_g = 2x (up to gauge).
  RecurrenceSystem System;
  SystemFunction F, G;
  F.Name = "f";
  F.DimNames = {"x"};
  F.Calls = {callTo(1, {0})};
  G.Name = "g";
  G.DimNames = {"x"};
  G.Calls = {callTo(0, {-1})};
  System.Functions = {std::move(F), std::move(G)};

  std::vector<DomainBox> Boxes(2, DomainBox::fromExtents({10}));
  DiagnosticEngine Diags;
  SystemScheduleOptions Options;
  Options.MaxCoefficient = 4;
  Options.MaxOffset = 4;
  auto S = findSystemSchedule(System, Boxes, Diags, Options);
  ASSERT_TRUE(S.has_value()) << Diags.str();

  const OffsetSchedule &SF = S->PerFunction[0];
  const OffsetSchedule &SG = S->PerFunction[1];
  // Compatibility conditions rather than one specific solution:
  // S_f(x) > S_g(x) and S_g(x) > S_f(x-1) for all x in [0, 9].
  for (int64_t X = 0; X != 10; ++X) {
    EXPECT_GT(SF.apply({X}), SG.apply({X})) << "f->g at x=" << X;
    if (X > 0) {
      EXPECT_GT(SG.apply({X}), SF.apply({X - 1})) << "g->f at x=" << X;
    }
  }
  // The coefficient must be at least 2: the two functions interleave
  // inside each step of x.
  EXPECT_GE(SF.Coefficients.Coefficients[0], 2);
  EXPECT_TRUE(verifySystemSchedule(System, *S, Boxes, Diags));
}

TEST(SystemScheduleTest, SelfCallWithinSystem) {
  // A system containing an ordinary single recursion reduces to the
  // single-function result.
  RecurrenceSystem System;
  SystemFunction F;
  F.Name = "d";
  F.DimNames = {"x", "y"};
  F.Calls = {callTo(0, {-1, 0}), callTo(0, {0, -1}),
             callTo(0, {-1, -1})};
  System.Functions = {std::move(F)};

  std::vector<DomainBox> Boxes = {DomainBox::fromExtents({3, 3})};
  DiagnosticEngine Diags;
  SystemScheduleOptions Options;
  Options.MaxCoefficient = 3;
  auto S = findSystemSchedule(System, Boxes, Diags, Options);
  ASSERT_TRUE(S.has_value()) << Diags.str();
  EXPECT_EQ(S->PerFunction[0].Coefficients.Coefficients,
            (std::vector<int64_t>{1, 1}));
  EXPECT_EQ(S->PerFunction[0].Offset, 0);
  EXPECT_EQ(S->totalPartitions(Boxes), 5);
}

TEST(SystemScheduleTest, CyclicSystemRejected) {
  // f(x) calls g(x), g(x) calls f(x): a genuine same-point cycle.
  RecurrenceSystem System;
  SystemFunction F, G;
  F.Name = "f";
  F.DimNames = {"x"};
  F.Calls = {callTo(1, {0})};
  G.Name = "g";
  G.DimNames = {"x"};
  G.Calls = {callTo(0, {0})};
  System.Functions = {std::move(F), std::move(G)};

  std::vector<DomainBox> Boxes(2, DomainBox::fromExtents({5}));
  DiagnosticEngine Diags;
  SystemScheduleOptions Options;
  Options.MaxCoefficient = 2;
  Options.MaxOffset = 3;
  EXPECT_FALSE(
      findSystemSchedule(System, Boxes, Diags, Options).has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(SystemScheduleTest, VerifyRejectsBadSchedules) {
  RecurrenceSystem System = affineGapSystem();
  std::vector<DomainBox> Boxes(3, DomainBox::fromExtents({4, 4}));

  SystemSchedule Bad;
  // S = i for every matrix: Iy(i, j) <- Iy(i, j-1) is unordered.
  for (unsigned F = 0; F != 3; ++F) {
    OffsetSchedule OS;
    OS.Coefficients.Coefficients = {1, 0};
    Bad.PerFunction.push_back(OS);
  }
  DiagnosticEngine Diags;
  EXPECT_FALSE(verifySystemSchedule(System, Bad, Boxes, Diags));
  EXPECT_TRUE(Diags.hasErrors());

  SystemSchedule Good;
  for (unsigned F = 0; F != 3; ++F) {
    OffsetSchedule OS;
    OS.Coefficients.Coefficients = {1, 1};
    Good.PerFunction.push_back(OS);
  }
  DiagnosticEngine Diags2;
  EXPECT_TRUE(verifySystemSchedule(System, Good, Boxes, Diags2))
      << Diags2.str();

  SystemSchedule WrongArity;
  WrongArity.PerFunction.resize(1);
  DiagnosticEngine Diags3;
  EXPECT_FALSE(
      verifySystemSchedule(System, WrongArity, Boxes, Diags3));
}

TEST(OffsetScheduleTest, ApplyAndRender) {
  OffsetSchedule S;
  S.Coefficients.Coefficients = {2, -1};
  S.Offset = 3;
  EXPECT_EQ(S.apply({4, 1}), 2 * 4 - 1 + 3);
  EXPECT_EQ(S.str({"i", "j"}), "2*i - j + 3");
  DomainBox Box = DomainBox::fromExtents({5, 5});
  EXPECT_EQ(S.minOver(Box), -4 + 3);
  EXPECT_EQ(S.maxOver(Box), 8 + 3);
}
