//===- ParallelScanTest.cpp - Wavefront-parallel scan determinism ------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wavefront-parallel host scan must be invisible in every
/// observable: results, cost counters, modelled cycles, GPU metrics and
/// per-partition timelines are required to be bit-identical between
/// ScanWorkers=1 and any other worker count, for both backends, with
/// and without the sliding window, under the bytecode VM and the AST
/// tree-walker, and when nested inside a parallel batch. Also covers
/// the WorkerPool / SpinBarrier primitives directly; the whole file
/// runs under the TSan CI job.
///
//===----------------------------------------------------------------------===//

#include "bio/Fasta.h"
#include "bio/HmmZoo.h"
#include "exec/ParallelFor.h"
#include "obs/Metrics.h"
#include "runtime/CompiledRecurrence.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

using namespace parrec;
using namespace parrec::runtime;
using codegen::ArgValue;

namespace {

const char *SmithWatermanSource =
    "int sw(matrix[dna] m, seq[dna] a, index[a] i, seq[dna] b, index[b] j) =\n"
    "  if i == 0 then 0\n"
    "  else if j == 0 then 0\n"
    "  else 0 max (sw(i-1, j-1) + m[a[i-1], b[j-1]])\n"
    "       max (sw(i-1, j) - 2) max (sw(i, j-1) - 2)\n";

const char *CasinoForwardSource =
    "prob forward(hmm h, state[h] s, seq[dice] x, index[x] i) =\n"
    "  if i == 0 then\n"
    "    if s.isstart then 1.0 else 0.0\n"
    "  else\n"
    "    (if s.isend then 1.0 else s.emission[x[i-1]]) *\n"
    "    sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))\n";

CompiledRecurrence compileOrDie(const char *Source,
                                std::vector<std::string> Extra = {}) {
  DiagnosticEngine Diags;
  auto Compiled =
      CompiledRecurrence::compile(Source, Diags, std::move(Extra));
  EXPECT_TRUE(Compiled.has_value()) << Diags.str();
  return std::move(*Compiled);
}

/// Asserts every observable of two runs is bit-identical — EXPECT_EQ on
/// the doubles deliberately, not EXPECT_DOUBLE_EQ.
void expectBitIdentical(const RunResult &A, const RunResult &B) {
  EXPECT_EQ(A.RootValue, B.RootValue);
  EXPECT_EQ(A.TableMax, B.TableMax);
  EXPECT_EQ(A.Cells, B.Cells);
  EXPECT_EQ(A.Partitions, B.Partitions);
  EXPECT_TRUE(A.Cost == B.Cost);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_TRUE(A.Metrics == B.Metrics);
  EXPECT_TRUE(A.UsedSchedule == B.UsedSchedule);
  ASSERT_EQ(A.Timeline != nullptr, B.Timeline != nullptr);
  if (A.Timeline) {
    EXPECT_TRUE(*A.Timeline == *B.Timeline);
  }
}

/// Runs one Smith-Waterman problem with the given options.
RunResult runSw(const CompiledRecurrence &Fn, const RunOptions &Options,
                bool OnCpu, int64_t LenA = 96, int64_t LenB = 133) {
  static const bio::SubstitutionMatrix Matrix =
      bio::SubstitutionMatrix::matchMismatch(bio::Alphabet::dna(), 2, -1);
  bio::SequenceDatabase Db = bio::randomDatabase(
      bio::Alphabet::dna(), 2, std::min(LenA, LenB),
      std::max(LenA, LenB), /*Seed=*/0x5EED);
  std::vector<ArgValue> Args = {ArgValue::ofMatrix(&Matrix),
                                ArgValue::ofSeq(&Db[0]), ArgValue(),
                                ArgValue::ofSeq(&Db[1]), ArgValue()};
  DiagnosticEngine Diags;
  std::optional<RunResult> R;
  if (OnCpu) {
    R = Fn.runCpu(Args, gpu::CostModel(), Diags, Options);
  } else {
    gpu::Device Dev;
    R = Fn.runGpu(Args, Dev, Diags, Options);
  }
  EXPECT_TRUE(R.has_value()) << Diags.str();
  return *R;
}

/// Options that force the parallel machinery on: every partition above
/// one cell forks, and the timeline is recorded for comparison.
RunOptions scanOptions(unsigned Workers) {
  RunOptions Options;
  Options.ScanWorkers = Workers;
  Options.ScanGrainCells = 1;
  Options.Trace = true;
  return Options;
}

} // namespace

//===----------------------------------------------------------------------===//
// WorkerPool / SpinBarrier primitives
//===----------------------------------------------------------------------===//

TEST(WorkerPoolTest, RunsEveryWorkerAndIsReusable) {
  exec::WorkerPool Pool(4);
  EXPECT_EQ(Pool.workers(), 4u);
  for (int Round = 0; Round != 3; ++Round) {
    std::vector<std::atomic<int>> Hits(4);
    for (auto &H : Hits)
      H = 0;
    Pool.run([&](unsigned W) { Hits[W].fetch_add(1); });
    for (unsigned W = 0; W != 4; ++W)
      EXPECT_EQ(Hits[W].load(), 1) << "round " << Round << " worker " << W;
  }
}

TEST(WorkerPoolTest, SingleWorkerPoolRunsInline) {
  exec::WorkerPool Pool(1);
  unsigned Calls = 0;
  Pool.run([&](unsigned W) {
    EXPECT_EQ(W, 0u);
    ++Calls;
  });
  EXPECT_EQ(Calls, 1u);
}

TEST(WorkerPoolTest, PropagatesTaskExceptions) {
  exec::WorkerPool Pool(3);
  EXPECT_THROW(Pool.run([](unsigned W) {
                 if (W == 2)
                   throw std::runtime_error("boom");
               }),
               std::runtime_error);
  // The pool survives a failed task.
  std::atomic<int> Count{0};
  Pool.run([&](unsigned) { Count.fetch_add(1); });
  EXPECT_EQ(Count.load(), 3);
}

TEST(SpinBarrierTest, OrdersWritesAcrossPhases) {
  constexpr unsigned Workers = 3;
  constexpr int Rounds = 200;
  exec::WorkerPool Pool(Workers);
  exec::SpinBarrier Barrier(Workers);
  // Plain (non-atomic) slots: the barrier itself must provide the
  // ordering that makes every phase-R write visible to every reader.
  std::vector<int64_t> Slot(Workers, -1);
  std::atomic<bool> Stale{false};
  Pool.run([&](unsigned W) {
    for (int R = 0; R != Rounds; ++R) {
      Slot[W] = R;
      Barrier.arriveAndWait();
      for (unsigned Other = 0; Other != Workers; ++Other)
        if (Slot[Other] != R)
          Stale.store(true);
      Barrier.arriveAndWait();
    }
  });
  EXPECT_FALSE(Stale.load());
}

//===----------------------------------------------------------------------===//
// Bit-identical scans across worker counts
//===----------------------------------------------------------------------===//

TEST(ParallelScanTest, GpuSmithWatermanIdenticalAcrossWorkerCounts) {
  CompiledRecurrence Fn = compileOrDie(SmithWatermanSource);
  RunResult Serial = runSw(Fn, scanOptions(1), /*OnCpu=*/false);
  EXPECT_GT(Serial.Cells, 0u);
  for (unsigned Workers : {2u, 3u, 8u}) {
    RunResult Parallel = runSw(Fn, scanOptions(Workers), /*OnCpu=*/false);
    expectBitIdentical(Serial, Parallel);
  }
}

TEST(ParallelScanTest, FullTableIdenticalAcrossWorkerCounts) {
  CompiledRecurrence Fn = compileOrDie(SmithWatermanSource);
  RunOptions Base = scanOptions(1);
  Base.UseSlidingWindow = false;
  RunResult Serial = runSw(Fn, Base, /*OnCpu=*/false);
  for (unsigned Workers : {2u, 3u, 8u}) {
    RunOptions Opt = scanOptions(Workers);
    Opt.UseSlidingWindow = false;
    expectBitIdentical(Serial, runSw(Fn, Opt, /*OnCpu=*/false));
  }
}

TEST(ParallelScanTest, AstEvaluatorIdenticalAcrossWorkerCounts) {
  CompiledRecurrence Fn = compileOrDie(SmithWatermanSource);
  RunOptions Base = scanOptions(1);
  Base.UseAstEvaluator = true;
  RunResult Serial = runSw(Fn, Base, /*OnCpu=*/false);
  for (unsigned Workers : {2u, 8u}) {
    RunOptions Opt = scanOptions(Workers);
    Opt.UseAstEvaluator = true;
    expectBitIdentical(Serial, runSw(Fn, Opt, /*OnCpu=*/false));
  }
}

TEST(ParallelScanTest, CpuBackendIdenticalAcrossWorkerCounts) {
  // The CPU reference has one simulated thread, so any requested worker
  // count clamps to a serial scan — results must still be identical.
  CompiledRecurrence Fn = compileOrDie(SmithWatermanSource);
  RunResult Serial = runSw(Fn, scanOptions(1), /*OnCpu=*/true);
  for (unsigned Workers : {2u, 8u})
    expectBitIdentical(Serial, runSw(Fn, scanOptions(Workers),
                                     /*OnCpu=*/true));
}

TEST(ParallelScanTest, LogSpaceForwardIdenticalAcrossWorkerCounts) {
  // The forward algorithm exercises reductions, log-space arithmetic
  // and HMM model reads — a different cost/value profile than SW.
  CompiledRecurrence Fn = compileOrDie(CasinoForwardSource, {"dice"});
  bio::Hmm Casino = bio::makeCasinoModel();
  std::string Rolls;
  for (int I = 0; I != 160; ++I)
    Rolls.push_back(static_cast<char>('1' + (I * 5 + I / 7) % 6));
  bio::Sequence X("x", Rolls);
  std::vector<ArgValue> Args = {ArgValue::ofHmm(&Casino), ArgValue(),
                                ArgValue::ofSeq(&X), ArgValue()};
  gpu::Device Dev;
  DiagnosticEngine Diags;

  auto Serial = Fn.runGpu(Args, Dev, Diags, scanOptions(1));
  ASSERT_TRUE(Serial.has_value()) << Diags.str();
  EXPECT_GT(Serial->Cells, 100u) << "sampled roll sequence too short";
  for (unsigned Workers : {2u, 3u, 8u}) {
    auto Parallel = Fn.runGpu(Args, Dev, Diags, scanOptions(Workers));
    ASSERT_TRUE(Parallel.has_value()) << Diags.str();
    expectBitIdentical(*Serial, *Parallel);
  }
}

TEST(ParallelScanTest, ThreadCountVariantsStayIdentical) {
  // Worker counts that do not divide the simulated block width, and a
  // block narrower than the worker count.
  CompiledRecurrence Fn = compileOrDie(SmithWatermanSource);
  for (unsigned Threads : {5u, 32u}) {
    RunOptions Base = scanOptions(1);
    Base.Threads = Threads;
    RunResult Serial = runSw(Fn, Base, /*OnCpu=*/false);
    for (unsigned Workers : {3u, 7u, 64u}) {
      RunOptions Opt = scanOptions(Workers);
      Opt.Threads = Threads;
      expectBitIdentical(Serial, runSw(Fn, Opt, /*OnCpu=*/false));
    }
  }
}

TEST(ParallelScanTest, SmallDomainsFallBackToSerial) {
  // A domain below 4x the grain never forks: the fork-join counter must
  // not move, and the result still matches the serial run.
  CompiledRecurrence Fn = compileOrDie(SmithWatermanSource);
  RunOptions Serial, Parallel;
  Serial.ScanWorkers = 1;
  Parallel.ScanWorkers = 8; // Default grain: 16x16 is far below 4x256.
  uint64_t ForksBefore = obs::MetricsRegistry::global()
                             .snapshot()
                             .counter("exec.scan_fork_joins");
  RunResult A = runSw(Fn, Serial, /*OnCpu=*/false, 16, 16);
  RunResult B = runSw(Fn, Parallel, /*OnCpu=*/false, 16, 16);
  uint64_t ForksAfter = obs::MetricsRegistry::global()
                            .snapshot()
                            .counter("exec.scan_fork_joins");
  EXPECT_EQ(ForksBefore, ForksAfter);
  EXPECT_EQ(A.RootValue, B.RootValue);
  EXPECT_EQ(A.TableMax, B.TableMax);
  EXPECT_EQ(A.Cycles, B.Cycles);
}

//===----------------------------------------------------------------------===//
// Batch x scan nesting
//===----------------------------------------------------------------------===//

TEST(ParallelScanTest, NestedBatchAndScanDeterministic) {
  CompiledRecurrence Fn = compileOrDie(SmithWatermanSource);
  const auto &Matrix = bio::SubstitutionMatrix::matchMismatch(
      bio::Alphabet::dna(), 2, -1);
  bio::SequenceDatabase Db = bio::randomDatabase(
      bio::Alphabet::dna(), 7, /*MinLength=*/40, /*MaxLength=*/120,
      /*Seed=*/0xBA7C4);
  std::vector<std::vector<ArgValue>> Problems;
  for (size_t I = 1; I != Db.size(); ++I)
    Problems.push_back({ArgValue::ofMatrix(&Matrix),
                        ArgValue::ofSeq(&Db[0]), ArgValue(),
                        ArgValue::ofSeq(&Db[I]), ArgValue()});

  gpu::Device Dev;
  DiagnosticEngine Diags;
  RunOptions Reference;
  Reference.BatchWorkers = 1;
  Reference.ScanWorkers = 1;
  auto Ref = Fn.runGpuBatch(Problems, Dev, Diags, Reference);
  ASSERT_TRUE(Ref.has_value()) << Diags.str();

  const std::pair<unsigned, unsigned> Grid[] = {{1, 3}, {3, 1}, {3, 2},
                                                {2, 8}};
  for (auto [BatchW, ScanW] : Grid) {
    RunOptions Nested;
    Nested.BatchWorkers = BatchW;
    Nested.ScanWorkers = ScanW;
    Nested.ScanGrainCells = 1;
    auto Out = Fn.runGpuBatch(Problems, Dev, Diags, Nested);
    ASSERT_TRUE(Out.has_value()) << Diags.str();
    EXPECT_EQ(Ref->TotalCycles, Out->TotalCycles);
    ASSERT_EQ(Ref->Problems.size(), Out->Problems.size());
    for (size_t I = 0; I != Ref->Problems.size(); ++I) {
      const RunResult &A = Ref->Problems[I];
      const RunResult &B = Out->Problems[I];
      EXPECT_EQ(A.RootValue, B.RootValue) << I;
      EXPECT_EQ(A.TableMax, B.TableMax) << I;
      EXPECT_EQ(A.Cells, B.Cells) << I;
      EXPECT_EQ(A.Cycles, B.Cycles) << I;
      EXPECT_TRUE(A.Cost == B.Cost) << I;
      EXPECT_TRUE(A.Metrics == B.Metrics) << I;
    }
  }
}
