//===- HmmTest.cpp - Tests for the HMM extension -----------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "bio/HmmZoo.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace parrec;
using namespace parrec::bio;

TEST(HmmTest, CasinoStructure) {
  Hmm M = makeCasinoModel();
  EXPECT_EQ(M.numStates(), 4u);
  EXPECT_EQ(M.numTransitions(), 7u);
  EXPECT_EQ(M.state(M.startState()).Name, "begin");
  EXPECT_EQ(M.state(M.endState()).Name, "finish");
  DiagnosticEngine Diags;
  EXPECT_TRUE(M.validate(Diags)) << Diags.str();
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(HmmTest, AdjacencyTables) {
  Hmm M = makeCasinoModel();
  int Fair = M.findState("fair");
  ASSERT_GE(Fair, 0);
  // fair receives from begin, fair, loaded.
  EXPECT_EQ(M.transitionsTo(static_cast<unsigned>(Fair)).size(), 3u);
  // fair sends to fair, loaded, finish.
  EXPECT_EQ(M.transitionsFrom(static_cast<unsigned>(Fair)).size(), 3u);
  for (unsigned T : M.transitionsTo(static_cast<unsigned>(Fair)))
    EXPECT_EQ(M.transition(T).To, static_cast<unsigned>(Fair));
}

TEST(HmmTest, EmissionLookups) {
  Hmm M = makeCasinoModel();
  unsigned Loaded = static_cast<unsigned>(M.findState("loaded"));
  EXPECT_DOUBLE_EQ(M.emission(Loaded, 'f'), 0.5);
  EXPECT_DOUBLE_EQ(M.emission(Loaded, 'a'), 0.1);
  EXPECT_DOUBLE_EQ(M.emission(Loaded, 'z'), 0.0);
  // Silent states emit "probability 1" (the Figure 11 convention).
  EXPECT_DOUBLE_EQ(M.emission(M.endState(), 'a'), 1.0);
}

TEST(HmmTest, SamplingRespectsAlphabet) {
  Hmm M = makeCasinoModel();
  std::string S = M.sample(123);
  EXPECT_FALSE(S.empty());
  for (char C : S)
    EXPECT_TRUE(M.alphabet().contains(C));
  EXPECT_EQ(S, M.sample(123)) << "sampling must be deterministic";
  EXPECT_NE(S, M.sample(124));
}

TEST(HmmTest, TextRoundTrip) {
  Hmm M = makeCasinoModel();
  DiagnosticEngine Diags;
  auto Parsed = Hmm::parse(M.str(), Diags);
  ASSERT_TRUE(Parsed.has_value()) << Diags.str();
  EXPECT_EQ(Parsed->numStates(), M.numStates());
  EXPECT_EQ(Parsed->numTransitions(), M.numTransitions());
  unsigned Loaded = static_cast<unsigned>(Parsed->findState("loaded"));
  EXPECT_NEAR(Parsed->emission(Loaded, 'f'), 0.5, 1e-9);
}

TEST(HmmTest, ParseRejectsBadModels) {
  DiagnosticEngine D1;
  EXPECT_FALSE(Hmm::parse("state s0 ;", D1).has_value())
      << "alphabet must come first";
  DiagnosticEngine D2;
  EXPECT_FALSE(
      Hmm::parse("alphabet dna ; state a start ; state a end ;", D2)
          .has_value())
      << "duplicate state";
  DiagnosticEngine D3;
  EXPECT_FALSE(Hmm::parse("alphabet dna ; state a start ; "
                          "transition a -> b 0.5 ;",
                          D3)
                   .has_value())
      << "unknown transition target";
  DiagnosticEngine D4;
  EXPECT_FALSE(Hmm::parse("alphabet dna ; state a start ;", D4)
                   .has_value())
      << "missing end state";
}

TEST(HmmTest, ValidationWarnsOnBadSums) {
  Hmm M("broken", Alphabet::dna());
  unsigned A = M.addState("a", {}, true, false);
  unsigned B = M.addState("b", {0.5, 0.5, 0.5, 0.5}, false, true);
  M.addTransition(A, B, 0.25);
  M.finalize();
  DiagnosticEngine Diags;
  EXPECT_TRUE(M.validate(Diags));
  // Emission and transition sums are off: two warnings.
  unsigned Warnings = 0;
  for (const Diagnostic &D : Diags.diagnostics())
    Warnings += D.Severity == DiagSeverity::Warning;
  EXPECT_EQ(Warnings, 2u);
}

TEST(HmmTest, GeneFinderAndCpgWellFormed) {
  for (Hmm M : {makeGeneFinderModel(), makeCpgIslandModel()}) {
    DiagnosticEngine Diags;
    EXPECT_TRUE(M.validate(Diags)) << M.name() << ": " << Diags.str();
    for (const Diagnostic &D : Diags.diagnostics())
      EXPECT_NE(D.Severity, DiagSeverity::Warning)
          << M.name() << ": " << D.str();
  }
}

TEST(ProfileHmmTest, StructureScalesWithPositions) {
  for (unsigned Positions : {1u, 5u, 30u}) {
    Hmm M = makeProfileHmm(Positions, Alphabet::protein(), 99);
    EXPECT_EQ(M.numStates(), 3 * Positions + 3) << Positions;
    DiagnosticEngine Diags;
    EXPECT_TRUE(M.validate(Diags)) << Diags.str();
    for (const Diagnostic &D : Diags.diagnostics())
      EXPECT_NE(D.Severity, DiagSeverity::Warning) << D.str();
  }
}

TEST(ProfileHmmTest, DeterministicInSeed) {
  Hmm A = makeProfileHmm(4, Alphabet::protein(), 5);
  Hmm B = makeProfileHmm(4, Alphabet::protein(), 5);
  unsigned M1 = static_cast<unsigned>(A.findState("M1"));
  EXPECT_EQ(A.state(M1).Emissions, B.state(M1).Emissions);
}

TEST(SilentEliminationTest, RemovesDeleteStates) {
  Hmm M = makeProfileHmm(6, Alphabet::protein(), 42);
  DiagnosticEngine Diags;
  auto E = eliminateSilentStates(M, Diags);
  ASSERT_TRUE(E.has_value()) << Diags.str();
  // Only begin, I0, M1..M6, I1..I6 and finish remain.
  EXPECT_EQ(E->numStates(), M.numStates() - 6);
  for (unsigned S = 0; S != E->numStates(); ++S) {
    const HmmState &State = E->state(S);
    EXPECT_TRUE(!State.isSilent() || State.IsStart || State.IsEnd)
        << State.Name;
  }
  // Outgoing probabilities must still sum to 1 for every emitting state.
  DiagnosticEngine Diags2;
  EXPECT_TRUE(E->validate(Diags2));
  for (const Diagnostic &D : Diags2.diagnostics())
    EXPECT_NE(D.Severity, DiagSeverity::Warning) << D.str();
}

TEST(SilentEliminationTest, PreservesPathProbabilities) {
  // A tiny chain: start -> silent -> emit -> end, plus a silent
  // self-loop. The effective start -> emit probability must be
  // p(start->silent) * p(silent->emit) / (1 - selfloop).
  Hmm M("chain", Alphabet::dna());
  unsigned Start = M.addState("s", {}, true, false);
  unsigned Silent = M.addState("mid", {});
  unsigned Emit = M.addState("e", {0.25, 0.25, 0.25, 0.25});
  unsigned End = M.addState("f", {}, false, true);
  M.addTransition(Start, Silent, 1.0);
  M.addTransition(Silent, Silent, 0.2);
  M.addTransition(Silent, Emit, 0.8);
  M.addTransition(Emit, End, 1.0);
  M.finalize();

  DiagnosticEngine Diags;
  auto E = eliminateSilentStates(M, Diags);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->numStates(), 3u);
  int NewStart = E->findState("s");
  int NewEmit = E->findState("e");
  ASSERT_GE(NewStart, 0);
  ASSERT_GE(NewEmit, 0);
  double Effective = 0.0;
  for (unsigned T : E->transitionsFrom(static_cast<unsigned>(NewStart)))
    if (E->transition(T).To == static_cast<unsigned>(NewEmit))
      Effective += E->transition(T).Prob;
  EXPECT_NEAR(Effective, 1.0, 1e-12) << "1.0 * 0.8 / (1 - 0.2)";
}

TEST(SilentEliminationTest, RejectsAbsorbingSilentCycle) {
  Hmm M("cycle", Alphabet::dna());
  unsigned Start = M.addState("s", {}, true, false);
  unsigned Silent = M.addState("mid", {});
  unsigned End = M.addState("f", {}, false, true);
  M.addTransition(Start, Silent, 1.0);
  M.addTransition(Silent, Silent, 1.0);
  (void)End;
  M.finalize();
  DiagnosticEngine Diags;
  EXPECT_FALSE(eliminateSilentStates(M, Diags).has_value());
  EXPECT_TRUE(Diags.hasErrors());
}
