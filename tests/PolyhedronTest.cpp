//===- PolyhedronTest.cpp - Tests for affine expressions & polyhedra --------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "poly/Polyhedron.h"

#include <gtest/gtest.h>

using namespace parrec::poly;

TEST(AffineExprTest, Arithmetic) {
  AffineExpr X = AffineExpr::dim(2, 0);
  AffineExpr Y = AffineExpr::dim(2, 1);
  AffineExpr E = X * 2 + Y - AffineExpr::constant(2, 3);
  EXPECT_EQ(E.coefficient(0), 2);
  EXPECT_EQ(E.coefficient(1), 1);
  EXPECT_EQ(E.constantTerm(), -3);
  EXPECT_EQ(E.evaluate({4, 5}), 2 * 4 + 5 - 3);
  EXPECT_EQ((-E).evaluate({4, 5}), -(2 * 4 + 5 - 3));
}

TEST(AffineExprTest, Rendering) {
  AffineExpr E({1, -2}, 5);
  EXPECT_EQ(E.str({"x", "y"}), "x - 2*y + 5");
  EXPECT_EQ(AffineExpr::constant(2, 0).str({"x", "y"}), "0");
  EXPECT_EQ(AffineExpr({0, 0}, -7).str(), "-7");
}

TEST(AffineExprTest, InsertRemoveSubstitute) {
  AffineExpr E({3, 4}, 1);
  AffineExpr Inserted = E.insertDims(1, 1);
  EXPECT_EQ(Inserted.numDims(), 3u);
  EXPECT_EQ(Inserted.coefficient(0), 3);
  EXPECT_EQ(Inserted.coefficient(1), 0);
  EXPECT_EQ(Inserted.coefficient(2), 4);

  AffineExpr Removed = Inserted.removeDim(1);
  EXPECT_EQ(Removed, E);

  // Substitute y := x + 2 into x + y.
  AffineExpr Sum = AffineExpr::dim(2, 0) + AffineExpr::dim(2, 1);
  AffineExpr Repl = AffineExpr::dim(2, 0) + AffineExpr::constant(2, 2);
  AffineExpr Result = Sum.substitute(1, Repl);
  EXPECT_EQ(Result.coefficient(0), 2);
  EXPECT_EQ(Result.coefficient(1), 0);
  EXPECT_EQ(Result.constantTerm(), 2);
}

TEST(AffineExprTest, DivisionHelpers) {
  EXPECT_EQ(ceilDiv(7, 2), 4);
  EXPECT_EQ(ceilDiv(-7, 2), -3);
  EXPECT_EQ(ceilDiv(6, 3), 2);
  EXPECT_EQ(floorDiv(7, 2), 3);
  EXPECT_EQ(floorDiv(-7, 2), -4);
  EXPECT_EQ(floorDiv(-6, 3), -2);
  EXPECT_EQ(gcd64(12, -18), 6);
  EXPECT_EQ(gcd64(0, 5), 5);
}

namespace {

/// Brute-force reference: enumerate integer points of a box and keep the
/// ones inside the polyhedron.
std::vector<std::vector<int64_t>>
enumeratePoints(const Polyhedron &P, const std::vector<int64_t> &Lo,
                const std::vector<int64_t> &Hi) {
  std::vector<std::vector<int64_t>> Points;
  std::vector<int64_t> Current(Lo);
  while (true) {
    if (P.containsPoint(Current))
      Points.push_back(Current);
    unsigned D = 0;
    for (; D != Current.size(); ++D) {
      if (++Current[D] <= Hi[D])
        break;
      Current[D] = Lo[D];
    }
    if (D == Current.size())
      return Points;
  }
}

} // namespace

TEST(PolyhedronTest, ContainsAndEmptiness) {
  Polyhedron P({"x", "y"});
  P.addBounds(0, 0, 3);
  P.addBounds(1, 0, 3);
  // x + y <= 4.
  P.addConstraint(Constraint::ge(AffineExpr({-1, -1}, 4)));
  EXPECT_TRUE(P.containsPoint({2, 2}));
  EXPECT_FALSE(P.containsPoint({3, 3}));
  EXPECT_FALSE(P.isEmpty());

  // Add x + y >= 9: now empty.
  P.addConstraint(Constraint::ge(AffineExpr({1, 1}, -9)));
  EXPECT_TRUE(P.isEmpty());
}

TEST(PolyhedronTest, EqualityConstraints) {
  Polyhedron P({"x", "y"});
  P.addBounds(0, 0, 10);
  P.addBounds(1, 0, 10);
  // x - y == 3.
  P.addConstraint(Constraint::eq(AffineExpr({1, -1}, -3)));
  EXPECT_TRUE(P.containsPoint({5, 2}));
  EXPECT_FALSE(P.containsPoint({5, 3}));
  EXPECT_FALSE(P.isEmpty());
}

TEST(PolyhedronTest, EliminationMatchesProjection) {
  // Triangle x >= 0, y >= 0, x + 2y <= 7. Project away y: x in [0, 7].
  Polyhedron P({"x", "y"});
  P.addConstraint(Constraint::ge(AffineExpr::dim(2, 0)));
  P.addConstraint(Constraint::ge(AffineExpr::dim(2, 1)));
  P.addConstraint(Constraint::ge(AffineExpr({-1, -2}, 7)));

  Polyhedron Q = P.eliminateDim(1);
  ASSERT_EQ(Q.numDims(), 1u);
  EXPECT_EQ(Q.constantLowerBound(0).value(), 0);
  EXPECT_EQ(Q.constantUpperBound(0).value(), 7);
}

TEST(PolyhedronTest, ConstantBounds) {
  Polyhedron P({"x", "y"});
  P.addBounds(0, -2, 9);
  P.addBounds(1, 1, 4);
  // x <= 2y  =>  x <= 8.
  P.addConstraint(Constraint::ge(AffineExpr({-1, 2}, 0)));
  EXPECT_EQ(P.constantLowerBound(0).value(), -2);
  EXPECT_EQ(P.constantUpperBound(0).value(), 8);
  EXPECT_EQ(P.constantLowerBound(1).value(), 1);
  EXPECT_EQ(P.constantUpperBound(1).value(), 4);
}

TEST(PolyhedronTest, NormalisationTightensIntegerBounds) {
  // 2x - 1 >= 0 over the integers means x >= 1.
  Polyhedron P({"x"});
  P.addConstraint(Constraint::ge(AffineExpr({2}, -1)));
  EXPECT_EQ(P.constantLowerBound(0).value(), 1);
}

TEST(PolyhedronTest, EliminationPreservesIntegerPoints) {
  // A skewed polyhedron; check projected membership by brute force.
  Polyhedron P({"x", "y", "z"});
  P.addBounds(0, 0, 5);
  P.addBounds(1, 0, 5);
  P.addBounds(2, 0, 5);
  P.addConstraint(Constraint::ge(AffineExpr({1, 1, -2}, 1)));  // x+y+1>=2z
  P.addConstraint(Constraint::ge(AffineExpr({-1, 2, 1}, 0)));  // 2y+z>=x

  Polyhedron Q = P.eliminateDim(2);
  auto Original = enumeratePoints(P, {0, 0, 0}, {5, 5, 5});
  // Every (x, y) with a witness z must be in Q.
  for (const auto &Point : Original)
    EXPECT_TRUE(Q.containsPoint({Point[0], Point[1]}))
        << "lost (" << Point[0] << ", " << Point[1] << ")";
}

TEST(PolyhedronTest, UnboundedDirection) {
  Polyhedron P({"x"});
  P.addConstraint(Constraint::ge(AffineExpr::dim(1, 0)));
  EXPECT_EQ(P.constantLowerBound(0).value(), 0);
  EXPECT_FALSE(P.constantUpperBound(0).has_value());
}

TEST(ConstraintTest, Rendering) {
  Constraint C = Constraint::ge(AffineExpr({1, -1}, 2));
  EXPECT_EQ(C.str({"i", "j"}), "i - j + 2 >= 0");
  Constraint E = Constraint::eq(AffineExpr({1, 0}, 0));
  EXPECT_EQ(E.str({"i", "j"}), "i == 0");
}
