//===- TableTest.cpp - Tests for DP-table storage -----------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "exec/Table.h"

#include "poly/LoopGen.h"

#include <gtest/gtest.h>

using namespace parrec;
using namespace parrec::exec;
using solver::DomainBox;
using solver::Schedule;

TEST(FullTableTest, StoreAndLoad) {
  DomainBox Box = DomainBox::fromExtents({4, 5});
  FullTable Table(Box);
  EXPECT_EQ(Table.bytes(), 4u * 5u * sizeof(double));
  for (int64_t X = 0; X != 4; ++X)
    for (int64_t Y = 0; Y != 5; ++Y) {
      int64_t P[2] = {X, Y};
      Table.set(P, static_cast<double>(10 * X + Y));
    }
  for (int64_t X = 0; X != 4; ++X)
    for (int64_t Y = 0; Y != 5; ++Y) {
      int64_t P[2] = {X, Y};
      EXPECT_DOUBLE_EQ(Table.get(P), static_cast<double>(10 * X + Y));
    }
}

TEST(FullTableTest, NonZeroLowerBounds) {
  DomainBox Box;
  Box.Lower = {2, -1};
  Box.Upper = {5, 3};
  FullTable Table(Box);
  int64_t P[2] = {3, -1};
  Table.set(P, 7.0);
  EXPECT_DOUBLE_EQ(Table.get(P), 7.0);
}

TEST(SlidingWindowTableTest, HoldsWindowOfDiagonals) {
  // Edit-distance shape: S = x + y, window 2 -> three live diagonals.
  DomainBox Box = DomainBox::fromExtents({6, 6});
  Schedule S{{1, 1}};
  SlidingWindowTable Table(Box, S, /*Window=*/2, /*DropDim=*/0);

  // Fill in partition order, reading back the dependencies each cell of
  // the edit-distance recursion would need.
  for (int64_t P = 0; P <= 10; ++P) {
    for (int64_t X = 0; X != 6; ++X) {
      int64_t Y = P - X;
      if (Y < 0 || Y > 5)
        continue;
      int64_t Point[2] = {X, Y};
      double Value = static_cast<double>(100 * X + Y);
      Table.set(Point, Value);
      EXPECT_DOUBLE_EQ(Table.get(Point), Value);
      if (X > 0 && Y > 0) {
        int64_t Diag[2] = {X - 1, Y - 1};
        EXPECT_DOUBLE_EQ(Table.get(Diag),
                         static_cast<double>(100 * (X - 1) + Y - 1));
        int64_t Up[2] = {X - 1, Y};
        EXPECT_DOUBLE_EQ(Table.get(Up),
                         static_cast<double>(100 * (X - 1) + Y));
      }
    }
  }
  // Footprint: 3 planes of 6 cells, far below the 36-cell full table.
  EXPECT_EQ(Table.bytes(), 3u * 6u * sizeof(double));
}

TEST(SlidingWindowTableTest, NegativeUnitCoefficient) {
  DomainBox Box = DomainBox::fromExtents({4, 4});
  Schedule S{{-1, 2}}; // Valid drop dim: 0 (coefficient -1).
  SlidingWindowTable Table(Box, S, /*Window=*/3, /*DropDim=*/0);
  // Partitions range over [-3, 6]; write one partition, read it back.
  for (int64_t X = 0; X != 4; ++X)
    for (int64_t Y = 0; Y != 4; ++Y) {
      int64_t P[2] = {X, Y};
      Table.set(P, static_cast<double>(X - Y));
      EXPECT_DOUBLE_EQ(Table.get(P), static_cast<double>(X - Y));
    }
}

TEST(WindowDropDimTest, PrefersLargestUnitExtent) {
  DomainBox Box = DomainBox::fromExtents({10, 50, 20});
  EXPECT_EQ(pickWindowDropDim(Schedule{{1, 1, 1}}, Box), 1);
  EXPECT_EQ(pickWindowDropDim(Schedule{{1, 2, 1}}, Box), 2);
  EXPECT_EQ(pickWindowDropDim(Schedule{{2, 2, 2}}, Box), -1)
      << "no unit coefficient: the window is unavailable";
  EXPECT_EQ(pickWindowDropDim(Schedule{{0, 1, 0}}, Box), 1);
}

/// Property: replaying any valid schedule's partition order, the window
/// table returns exactly what a full table returns for every dependency
/// within the window depth.
TEST(SlidingWindowTableTest, AgreesWithFullTableUnderScheduleOrder) {
  DomainBox Box = DomainBox::fromExtents({7, 5});
  for (Schedule S : {Schedule{{1, 1}}, Schedule{{1, 2}},
                     Schedule{{0, 1}}, Schedule{{1, 0}}}) {
    int Drop = pickWindowDropDim(S, Box);
    ASSERT_GE(Drop, 0);
    int64_t Window = 3;
    SlidingWindowTable WTable(Box, S, Window,
                              static_cast<unsigned>(Drop));
    FullTable FTable(Box);

    poly::Polyhedron Domain({"x", "y"});
    Domain.addBounds(0, 0, Box.Upper[0]);
    Domain.addBounds(1, 0, Box.Upper[1]);
    poly::LoopNest Nest =
        poly::generateLoops(Domain, 0, S.toAffineExpr(0));
    auto Range = Nest.timeRange({});
    ASSERT_TRUE(Range.has_value());

    double Counter = 0.0;
    for (int64_t P = Range->first; P <= Range->second; ++P) {
      Nest.forEachPoint({}, P, [&](const int64_t *Point) {
        WTable.set(Point, Counter);
        FTable.set(Point, Counter);
        Counter += 1.0;
      });
      // After each partition, every cell within the window must agree.
      Nest.forEachPoint({}, P, [&](const int64_t *Point) {
        EXPECT_DOUBLE_EQ(WTable.get(Point), FTable.get(Point));
      });
      for (int64_t Back = 1; Back <= Window; ++Back) {
        if (P - Back < Range->first)
          continue;
        Nest.forEachPoint({}, P - Back, [&](const int64_t *Point) {
          EXPECT_DOUBLE_EQ(WTable.get(Point), FTable.get(Point));
        });
      }
    }
  }
}
