//===- ScheduleSynthesisTest.cpp - Tests for schedule synthesis --------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "solver/ScheduleSynthesis.h"

#include "support/Random.h"

#include <gtest/gtest.h>

using namespace parrec;
using namespace parrec::poly;
using namespace parrec::solver;

namespace {

DescentFunction uniformDescent(std::vector<int64_t> Offsets) {
  DescentFunction D;
  unsigned N = static_cast<unsigned>(Offsets.size());
  for (unsigned I = 0; I != N; ++I) {
    AffineExpr C = AffineExpr::dim(N, I);
    C.setConstantTerm(Offsets[I]);
    D.Components.push_back(C);
  }
  return D;
}

/// The edit-distance recursion: calls (x-1, y), (x, y-1), (x-1, y-1).
RecurrenceSpec editDistanceSpec() {
  RecurrenceSpec Spec;
  Spec.Name = "d";
  Spec.DimNames = {"x", "y"};
  Spec.Calls.push_back(uniformDescent({-1, 0}));
  Spec.Calls.push_back(uniformDescent({0, -1}));
  Spec.Calls.push_back(uniformDescent({-1, -1}));
  return Spec;
}

/// f(x, y) = ... f(x-1, y-1) ... (the Section 4.7 example).
RecurrenceSpec diagonalOnlySpec() {
  RecurrenceSpec Spec;
  Spec.Name = "f";
  Spec.DimNames = {"x", "y"};
  Spec.Calls.push_back(uniformDescent({-1, -1}));
  return Spec;
}

/// The forward algorithm: forward(t.start, i-1) — state dim free.
RecurrenceSpec forwardSpec() {
  RecurrenceSpec Spec;
  Spec.Name = "forward";
  Spec.DimNames = {"s", "i"};
  DescentFunction D = uniformDescent({0, -1});
  D.FreeDims = {true, false};
  Spec.Calls.push_back(D);
  return Spec;
}

} // namespace

TEST(CriteriaTest, UniformCriteria) {
  DiagnosticEngine Diags;
  auto Criteria = buildCriteria(editDistanceSpec(), std::nullopt, Diags);
  ASSERT_TRUE(Criteria.has_value());
  EXPECT_EQ(Criteria->Constraints.size(), 3u);

  // S = x + y satisfies all; S = x fails (independent of y while the
  // recursion steps in y); S = -x - y fails everywhere.
  EXPECT_TRUE(Criteria->isSatisfiedBy(Schedule{{1, 1}}));
  EXPECT_FALSE(Criteria->isSatisfiedBy(Schedule{{1, 0}}));
  EXPECT_FALSE(Criteria->isSatisfiedBy(Schedule{{-1, -1}}));
  EXPECT_TRUE(Criteria->isSatisfiedBy(Schedule{{2, 1}}));
}

TEST(CriteriaTest, FreeDimForcesZeroCoefficient) {
  DiagnosticEngine Diags;
  auto Criteria = buildCriteria(forwardSpec(), std::nullopt, Diags);
  ASSERT_TRUE(Criteria.has_value());
  // S = i is valid; S = s + i is not (the state dimension must be
  // ignored, Section 5.2).
  EXPECT_TRUE(Criteria->isSatisfiedBy(Schedule{{0, 1}}));
  EXPECT_FALSE(Criteria->isSatisfiedBy(Schedule{{1, 1}}));
  EXPECT_FALSE(Criteria->isSatisfiedBy(Schedule{{0, 0}}));
}

TEST(CriteriaTest, AffineDescentNeedsBox) {
  RecurrenceSpec Spec;
  Spec.Name = "g";
  Spec.DimNames = {"x"};
  DescentFunction D;
  D.Components.push_back(AffineExpr({-1}, 0) +
                         AffineExpr::constant(1, 4)); // x' = 4 - x.
  Spec.Calls.push_back(D);

  DiagnosticEngine Diags;
  EXPECT_FALSE(buildCriteria(Spec, std::nullopt, Diags).has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(CriteriaTest, AffineDescentWithBox) {
  // g(x) calls g(x/2-ish): x' = 0*x + c is not expressible; use the
  // halving-style descent x' = x - x = 0 ... instead take x' = 2x - 6
  // over x in [0, 2]: delta = x - (2x - 6) = 6 - x >= 4 > 0, so any
  // a >= 1 works.
  RecurrenceSpec Spec;
  Spec.Name = "g";
  Spec.DimNames = {"x"};
  DescentFunction D;
  D.Components.push_back(AffineExpr({2}, -6));
  Spec.Calls.push_back(D);

  DomainBox Box = DomainBox::fromExtents({3});
  DiagnosticEngine Diags;
  auto Criteria = buildCriteria(Spec, Box, Diags);
  ASSERT_TRUE(Criteria.has_value());
  EXPECT_TRUE(Criteria->isSatisfiedBy(Schedule{{1}}));
  EXPECT_FALSE(Criteria->isSatisfiedBy(Schedule{{-1}}));
}

TEST(ScheduleVerifyTest, AcceptsAndRejects) {
  DiagnosticEngine Diags;
  RecurrenceSpec Spec = editDistanceSpec();
  DomainBox Box = DomainBox::fromExtents({4, 4});
  EXPECT_TRUE(verifySchedule(Spec, Schedule{{1, 1}}, Box, Diags));
  EXPECT_FALSE(verifySchedule(Spec, Schedule{{0, 1}}, Box, Diags));
  EXPECT_TRUE(Diags.hasErrors());

  DiagnosticEngine Diags2;
  EXPECT_FALSE(verifySchedule(Spec, Schedule{{1}}, Box, Diags2))
      << "dimension mismatch must be rejected";
}

TEST(ScheduleSearchTest, EditDistanceDiagonal) {
  // Figure 3: the 3x3 edit-distance problem scheduled diagonally in five
  // partitions.
  DiagnosticEngine Diags;
  DomainBox Box = DomainBox::fromExtents({3, 3});
  auto S = findMinimalSchedule(editDistanceSpec(), Box, Diags);
  ASSERT_TRUE(S.has_value()) << Diags.str();
  EXPECT_EQ(S->Coefficients, (std::vector<int64_t>{1, 1}));
  EXPECT_EQ(S->partitionCount(Box), 5);
}

TEST(ScheduleSearchTest, RectangularDomainPrefersShortAxis) {
  // With only the diagonal call f(x-1, y-1), Sf = x is minimal when the
  // x extent is smaller, Sf = y when the y extent is smaller
  // (Section 4.7's motivating example).
  DiagnosticEngine Diags;
  RecurrenceSpec Spec = diagonalOnlySpec();

  auto Wide = findMinimalSchedule(Spec, DomainBox::fromExtents({3, 10}),
                                  Diags);
  ASSERT_TRUE(Wide.has_value());
  EXPECT_EQ(Wide->Coefficients, (std::vector<int64_t>{1, 0}));

  auto Tall = findMinimalSchedule(Spec, DomainBox::fromExtents({10, 3}),
                                  Diags);
  ASSERT_TRUE(Tall.has_value());
  EXPECT_EQ(Tall->Coefficients, (std::vector<int64_t>{0, 1}));
}

TEST(ScheduleSearchTest, ForwardAlgorithmSchedule) {
  // Section 5.2: the only schedule is S(s, i) = i.
  DiagnosticEngine Diags;
  DomainBox Box = DomainBox::fromExtents({8, 100});
  auto S = findMinimalSchedule(forwardSpec(), Box, Diags);
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->Coefficients, (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(S->partitionCount(Box), 100);
}

TEST(ScheduleSearchTest, FibonacciIsSerial) {
  // fib(x) = fib(x-1) + fib(x-2): the minimal schedule is S = x with one
  // element per partition — no parallelism, exactly Figure 2's analysis.
  RecurrenceSpec Spec;
  Spec.Name = "fib";
  Spec.DimNames = {"x"};
  Spec.Calls.push_back(uniformDescent({-1}));
  Spec.Calls.push_back(uniformDescent({-2}));

  DiagnosticEngine Diags;
  DomainBox Box = DomainBox::fromExtents({20});
  auto S = findMinimalSchedule(Spec, Box, Diags);
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->Coefficients, (std::vector<int64_t>{1}));
  EXPECT_EQ(S->partitionCount(Box), 20);
}

TEST(ScheduleSearchTest, CyclicDependencyFails) {
  // f(x) calls f(x): no valid schedule exists.
  RecurrenceSpec Spec;
  Spec.Name = "f";
  Spec.DimNames = {"x"};
  Spec.Calls.push_back(uniformDescent({0}));

  DiagnosticEngine Diags;
  EXPECT_FALSE(
      findMinimalSchedule(Spec, DomainBox::fromExtents({5}), Diags)
          .has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ScheduleSearchTest, NoCallsSinglePartition) {
  RecurrenceSpec Spec;
  Spec.Name = "f";
  Spec.DimNames = {"x", "y"};
  DiagnosticEngine Diags;
  auto S = findMinimalSchedule(Spec, DomainBox::fromExtents({9, 9}),
                               Diags);
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->partitionCount(DomainBox::fromExtents({9, 9})), 1);
}

TEST(ConditionalScheduleTest, DiagonalRecursionTwoCandidates) {
  // Section 4.7: the minimal schedules of f(x-1, y-1) are (1, 0) and
  // (0, 1); the derivation must find both and only both.
  DiagnosticEngine Diags;
  auto Candidates = findConditionalSchedules(diagonalOnlySpec(), Diags);
  ASSERT_TRUE(Candidates.has_value()) << Diags.str();
  ASSERT_EQ(Candidates->size(), 2u);
  std::vector<std::vector<int64_t>> Found;
  for (const ConditionalSchedule &C : *Candidates)
    Found.push_back(C.S.Coefficients);
  EXPECT_NE(std::find(Found.begin(), Found.end(),
                      std::vector<int64_t>{1, 0}),
            Found.end());
  EXPECT_NE(std::find(Found.begin(), Found.end(),
                      std::vector<int64_t>{0, 1}),
            Found.end());

  // Runtime selection: nx < ny picks S = x, otherwise S = y.
  const ConditionalSchedule &Wide =
      selectSchedule(*Candidates, DomainBox::fromExtents({3, 10}));
  EXPECT_EQ(Wide.S.Coefficients, (std::vector<int64_t>{1, 0}));
  const ConditionalSchedule &Tall =
      selectSchedule(*Candidates, DomainBox::fromExtents({10, 3}));
  EXPECT_EQ(Tall.S.Coefficients, (std::vector<int64_t>{0, 1}));
}

TEST(ConditionalScheduleTest, EditDistanceSingleCandidate) {
  // Edit distance constrains both dimensions, so the diagonal x + y is
  // the only minimal candidate ("in practice the majority of problems
  // have a single schedule").
  DiagnosticEngine Diags;
  auto Candidates = findConditionalSchedules(editDistanceSpec(), Diags);
  ASSERT_TRUE(Candidates.has_value());
  ASSERT_EQ(Candidates->size(), 1u);
  EXPECT_EQ((*Candidates)[0].S.Coefficients,
            (std::vector<int64_t>{1, 1}));
}

TEST(SlidingWindowTest, Depths) {
  // Edit distance under x + y: the deepest dependency is one partition
  // back for (x-1, y) and (x, y-1), two for (x-1, y-1).
  auto Depth =
      slidingWindowDepth(editDistanceSpec(), Schedule{{1, 1}});
  ASSERT_TRUE(Depth.has_value());
  EXPECT_EQ(*Depth, 2);

  // Fibonacci under S = x: depth 2 as well (fib(x-2)).
  RecurrenceSpec Fib;
  Fib.Name = "fib";
  Fib.DimNames = {"x"};
  Fib.Calls.push_back(uniformDescent({-1}));
  Fib.Calls.push_back(uniformDescent({-2}));
  EXPECT_EQ(slidingWindowDepth(Fib, Schedule{{1}}).value(), 2);

  // Affine descents disable the window.
  RecurrenceSpec Affine;
  Affine.Name = "g";
  Affine.DimNames = {"x"};
  DescentFunction D;
  D.Components.push_back(AffineExpr({2}, -6));
  Affine.Calls.push_back(D);
  EXPECT_FALSE(slidingWindowDepth(Affine, Schedule{{1}}).has_value());
}

TEST(SlidingWindowTest, ForwardWindowIsOne) {
  auto Depth = slidingWindowDepth(forwardSpec(), Schedule{{0, 1}});
  ASSERT_TRUE(Depth.has_value());
  EXPECT_EQ(*Depth, 1);
}

/// Soundness property: for random uniform recursions, the derived
/// minimal schedule strictly orders every dependency — for every point x
/// in the box and every call with target x' inside the box,
/// S(x') < S(x). This is the partition ordering condition (1) checked by
/// brute force.
struct RandomRecurrenceCase {
  unsigned Dims;
  unsigned Calls;
  uint64_t Seed;

  friend std::ostream &operator<<(std::ostream &Os,
                                  const RandomRecurrenceCase &C) {
    return Os << C.Dims << "d_" << C.Calls << "calls_seed" << C.Seed;
  }
};

class ScheduleSoundnessTest
    : public ::testing::TestWithParam<RandomRecurrenceCase> {};

TEST_P(ScheduleSoundnessTest, MinimalScheduleOrdersAllDependencies) {
  RandomRecurrenceCase Case = GetParam();
  SplitMix64 Rng(Case.Seed);

  RecurrenceSpec Spec;
  Spec.Name = "r";
  for (unsigned D = 0; D != Case.Dims; ++D)
    Spec.DimNames.push_back("x" + std::to_string(D));
  for (unsigned C = 0; C != Case.Calls; ++C) {
    // Offsets in [-2, 1], at least one negative somewhere so a valid
    // schedule can exist (self-calls are legitimately rejected).
    std::vector<int64_t> Offsets;
    bool HasNegative = false;
    for (unsigned D = 0; D != Case.Dims; ++D) {
      int64_t O = Rng.nextInRange(-2, 1);
      HasNegative |= O < 0;
      Offsets.push_back(O);
    }
    if (!HasNegative)
      Offsets[Rng.nextBelow(Case.Dims)] = -1;
    Spec.Calls.push_back(uniformDescent(Offsets));
  }

  std::vector<int64_t> Extents;
  for (unsigned D = 0; D != Case.Dims; ++D)
    Extents.push_back(Rng.nextInRange(2, 5));
  DomainBox Box = DomainBox::fromExtents(Extents);

  DiagnosticEngine Diags;
  auto S = findMinimalSchedule(Spec, Box, Diags);
  if (!S)
    return; // Cyclic dependencies: correctly rejected.

  // Brute-force check of condition (1) over every point and call.
  std::vector<int64_t> Point(Case.Dims, 0);
  while (true) {
    for (const DescentFunction &Call : Spec.Calls) {
      std::vector<int64_t> Target;
      bool Inside = true;
      for (unsigned D = 0; D != Case.Dims; ++D) {
        int64_t T = Call.Components[D].evaluate(Point);
        Target.push_back(T);
        Inside &= T >= Box.Lower[D] && T <= Box.Upper[D];
      }
      if (Inside) {
        EXPECT_LT(S->apply(Target), S->apply(Point))
            << "dependency not ordered by " << S->str(Spec.DimNames);
      }
    }
    unsigned D = 0;
    for (; D != Case.Dims; ++D) {
      if (++Point[D] <= Box.Upper[D])
        break;
      Point[D] = Box.Lower[D];
    }
    if (D == Case.Dims)
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomRecurrences, ScheduleSoundnessTest,
    ::testing::Values(
        RandomRecurrenceCase{1, 1, 101}, RandomRecurrenceCase{1, 3, 102},
        RandomRecurrenceCase{2, 1, 201}, RandomRecurrenceCase{2, 2, 202},
        RandomRecurrenceCase{2, 4, 203}, RandomRecurrenceCase{2, 4, 204},
        RandomRecurrenceCase{3, 2, 301}, RandomRecurrenceCase{3, 3, 302},
        RandomRecurrenceCase{3, 5, 303}, RandomRecurrenceCase{3, 5, 304},
        RandomRecurrenceCase{4, 3, 401},
        RandomRecurrenceCase{4, 6, 402}));

/// The same soundness property for conditional schedules: every
/// candidate must order every dependency on every box (they are valid
/// everywhere, merely minimal somewhere).
TEST(ConditionalScheduleTest, CandidatesAreValidOnAllBoxes) {
  SplitMix64 Rng(777);
  for (int Round = 0; Round != 8; ++Round) {
    RecurrenceSpec Spec;
    Spec.Name = "r";
    Spec.DimNames = {"x", "y"};
    unsigned NumCalls = 1 + static_cast<unsigned>(Rng.nextBelow(3));
    for (unsigned C = 0; C != NumCalls; ++C) {
      std::vector<int64_t> Offsets = {Rng.nextInRange(-2, 0),
                                      Rng.nextInRange(-2, 0)};
      if (Offsets[0] == 0 && Offsets[1] == 0)
        Offsets[0] = -1;
      Spec.Calls.push_back(uniformDescent(Offsets));
    }
    DiagnosticEngine Diags;
    auto Candidates = findConditionalSchedules(Spec, Diags);
    ASSERT_TRUE(Candidates.has_value()) << Diags.str();
    for (const ConditionalSchedule &C : *Candidates)
      for (int64_t W : {2, 7})
        for (int64_t H : {3, 9}) {
          DiagnosticEngine Local;
          EXPECT_TRUE(verifySchedule(Spec, C.S,
                                     DomainBox::fromExtents({W, H}),
                                     Local))
              << C.S.str(Spec.DimNames) << " on " << W << "x" << H;
        }
  }
}

TEST(RecurrenceTest, DescentRendering) {
  DescentFunction D = uniformDescent({-1, 0});
  EXPECT_EQ(D.str({"x", "y"}), "(x - 1, y)");
  EXPECT_TRUE(D.isUniform());
  EXPECT_FALSE(D.hasFreeDims());
  D.FreeDims = {true, false};
  EXPECT_TRUE(D.hasFreeDims());
  EXPECT_TRUE(D.isFreeDim(0));
  EXPECT_FALSE(D.isFreeDim(1));
}

TEST(RecurrenceTest, DomainBoxGeometry) {
  DomainBox Box = DomainBox::fromExtents({4, 3, 2});
  EXPECT_EQ(Box.numDims(), 3u);
  EXPECT_EQ(Box.extent(0), 4);
  EXPECT_EQ(Box.totalPoints(), 24u);
  EXPECT_EQ(Box.Lower, (std::vector<int64_t>{0, 0, 0}));
  EXPECT_EQ(Box.Upper, (std::vector<int64_t>{3, 2, 1}));
}

TEST(RecurrenceTest, AllUniformDetection) {
  RecurrenceSpec Spec = editDistanceSpec();
  EXPECT_TRUE(Spec.allUniform());
  DescentFunction Affine;
  Affine.Components.push_back(AffineExpr({2, 0}, -6));
  Affine.Components.push_back(AffineExpr::dim(2, 1));
  Spec.Calls.push_back(Affine);
  EXPECT_FALSE(Spec.allUniform());
}

TEST(ScheduleTest, PartitionCounting) {
  Schedule S{{1, 1}};
  DomainBox Box = DomainBox::fromExtents({4, 6});
  EXPECT_EQ(S.minOver(Box), 0);
  EXPECT_EQ(S.maxOver(Box), 3 + 5);
  EXPECT_EQ(S.partitionCount(Box), 9);

  Schedule Neg{{-1, 2}};
  EXPECT_EQ(Neg.minOver(Box), -3);
  EXPECT_EQ(Neg.maxOver(Box), 10);
  EXPECT_EQ(Neg.str({"x", "y"}), "-x + 2*y");
}
