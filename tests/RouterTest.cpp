//===- RouterTest.cpp - Tests for the front router stack ---------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The front-router stack's contract: the fair queue schedules by strict
/// priority and weighted deficit round robin with FIFO per tenant; the
/// memo cache is a bounded LRU whose hits are bit-identical copies; and
/// routed serving — sharding, spilling, rolling restarts, shared
/// memoization — returns responses bit-identical to a direct
/// single-engine run, across evaluators and both dispatch paths.
///
//===----------------------------------------------------------------------===//

#include "bio/Fasta.h"
#include "bio/HmmZoo.h"
#include "bio/SubstitutionMatrix.h"
#include "runtime/CompiledRecurrence.h"
#include "serve/FairQueue.h"
#include "serve/MemoCache.h"
#include "serve/Router.h"

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <string>
#include <vector>

#include <unistd.h>

using namespace parrec;
using namespace parrec::runtime;
using codegen::ArgValue;

namespace {

const char *SwSource =
    "int sw(matrix[protein] m, seq[protein] a, index[a] i,\n"
    "       seq[protein] b, index[b] j) =\n"
    "  if i == 0 then 0\n"
    "  else if j == 0 then 0\n"
    "  else 0 max (sw(i-1, j-1) + m[a[i-1], b[j-1]])\n"
    "       max (sw(i-1, j) - 4) max (sw(i, j-1) - 4)\n";

const char *DnaForwardSource =
    "prob forward(hmm h, state[h] s, seq[dna] x, index[x] i) =\n"
    "  if i == 0 then\n"
    "    if s.isstart then 1.0 else 0.0\n"
    "  else\n"
    "    (if s.isend then 1.0 else s.emission[x[i-1]]) *\n"
    "    sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))\n";

CompiledRecurrence compileOrDie(const char *Source) {
  DiagnosticEngine Diags;
  auto Compiled = CompiledRecurrence::compile(Source, Diags);
  EXPECT_TRUE(Compiled.has_value()) << Diags.str();
  return std::move(*Compiled);
}

void expectIdentical(const exec::RunResult &A, const exec::RunResult &B) {
  EXPECT_EQ(A.RootValue, B.RootValue);
  EXPECT_EQ(A.TableMax, B.TableMax);
  EXPECT_EQ(A.Cells, B.Cells);
  EXPECT_EQ(A.Partitions, B.Partitions);
  EXPECT_TRUE(A.Cost == B.Cost);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_TRUE(A.Metrics == B.Metrics);
  EXPECT_EQ(A.UsedSchedule, B.UsedSchedule);
}

/// A multi-tenant mix with repeated shapes and repeated contents (the
/// repeats are what memoization and coalescing act on).
struct RoutedProblems {
  CompiledRecurrence Sw = compileOrDie(SwSource);
  CompiledRecurrence Forward = compileOrDie(DnaForwardSource);
  bio::Hmm Genes = bio::makeGeneFinderModel();
  std::deque<bio::Sequence> Seqs;
  std::vector<const CompiledRecurrence *> Fns;
  std::vector<std::vector<ArgValue>> Args;
  std::vector<std::string> Tenants;

  RoutedProblems() {
    const bio::SubstitutionMatrix &Blosum =
        bio::SubstitutionMatrix::blosum62();
    Seqs.push_back(bio::randomSequence(bio::Alphabet::protein(), 28,
                                       /*Seed=*/0xF00D, "query"));
    const bio::Sequence *Query = &Seqs.back();
    const char *TenantRing[] = {"alpha", "beta", "gamma"};
    int64_t SubjectLengths[] = {16, 24, 16, 24, 32, 16};
    for (size_t I = 0; I != std::size(SubjectLengths); ++I) {
      Seqs.push_back(bio::randomSequence(bio::Alphabet::protein(),
                                         SubjectLengths[I], 300 + I,
                                         "s" + std::to_string(I)));
      Fns.push_back(&Sw);
      Args.push_back({ArgValue::ofMatrix(&Blosum), ArgValue::ofSeq(Query),
                      ArgValue(), ArgValue::ofSeq(&Seqs.back()),
                      ArgValue()});
      Tenants.push_back(TenantRing[I % 3]);
    }
    int64_t ObservedLengths[] = {32, 44, 32};
    for (size_t I = 0; I != std::size(ObservedLengths); ++I) {
      std::string Observed = Genes.sample(
          /*Seed=*/40 + I, static_cast<size_t>(ObservedLengths[I]));
      Observed.resize(static_cast<size_t>(ObservedLengths[I]), 'a');
      Seqs.emplace_back("x" + std::to_string(I), std::move(Observed));
      Fns.push_back(&Forward);
      Args.push_back({ArgValue::ofHmm(&Genes), ArgValue(),
                      ArgValue::ofSeq(&Seqs.back()), ArgValue()});
      Tenants.push_back(TenantRing[I % 3]);
    }
    // Exact repeats of the first two problems: same function, same plan
    // key, same contents — memo-hit material.
    for (size_t I = 0; I != 2; ++I) {
      Fns.push_back(Fns[I]);
      Args.push_back(Args[I]);
      Tenants.push_back(Tenants[I]);
    }
  }

  size_t size() const { return Fns.size(); }
};

/// FairQueue items for the unit tests; the default traits read these
/// member names directly.
struct QItem {
  std::string Tenant;
  int Priority = 0;
  uint64_t Seq = 0;
  uint64_t Deadline = 0;
  int Tag = 0;
};

serve::FairQueue<QItem> makeQueue() { return {}; }

} // namespace

//===----------------------------------------------------------------------===//
// FairQueue: weights, priority, FIFO, sheds, absorb
//===----------------------------------------------------------------------===//

TEST(FairQueueTest, DeficitRoundRobinHonoursWeights) {
  serve::FairQueue<QItem> Q = makeQueue();
  Q.setWeight("heavy", 10);
  Q.setWeight("light", 1);
  uint64_t Seq = 0;
  for (int I = 0; I != 40; ++I) {
    Q.push({"heavy", 0, Seq++, 0, I});
    Q.push({"light", 0, Seq++, 0, I});
  }
  ASSERT_EQ(Q.size(), 80u);
  EXPECT_EQ(Q.tenantDepth("heavy"), 40u);

  // Under backlog the DRR order is exact: bursts of 10 heavy pops
  // alternate with single light pops (tenants visited in name order).
  std::map<std::string, int> First22;
  std::vector<QItem> Shed;
  for (int I = 0; I != 22; ++I) {
    auto Item = Q.pop(/*Now=*/0, &Shed);
    ASSERT_TRUE(Item.has_value());
    ++First22[Item->Tenant];
  }
  EXPECT_TRUE(Shed.empty());
  EXPECT_EQ(First22["heavy"], 20);
  EXPECT_EQ(First22["light"], 2);

  // Every queued item eventually pops; FIFO holds per tenant.
  std::map<std::string, uint64_t> LastSeq;
  while (auto Item = Q.pop(0, &Shed)) {
    auto It = LastSeq.find(Item->Tenant);
    if (It != LastSeq.end()) {
      EXPECT_GT(Item->Seq, It->second) << "tenant FIFO violated";
    }
    LastSeq[Item->Tenant] = Item->Seq;
  }
  EXPECT_TRUE(Q.empty());
}

TEST(FairQueueTest, StrictPriorityPreemptsLowerClasses) {
  serve::FairQueue<QItem> Q = makeQueue();
  uint64_t Seq = 0;
  Q.push({"t", 0, Seq++, 0, 0});
  Q.push({"t", 5, Seq++, 0, 1});
  Q.push({"u", 5, Seq++, 0, 2});
  Q.push({"t", 0, Seq++, 0, 3});

  std::vector<QItem> Shed;
  std::vector<int> Priorities;
  while (auto Item = Q.pop(0, &Shed))
    Priorities.push_back(Item->Priority);
  EXPECT_EQ(Priorities, (std::vector<int>{5, 5, 0, 0}));
}

TEST(FairQueueTest, ShedsExpiredWithoutChargingDeficit) {
  serve::FairQueue<QItem> Q = makeQueue();
  Q.setWeight("backlogged", 4);
  uint64_t Seq = 0;
  // Two expired heads in front of live work for one tenant; a competing
  // tenant alongside.
  Q.push({"backlogged", 0, Seq++, /*Deadline=*/1, 0});
  Q.push({"backlogged", 0, Seq++, /*Deadline=*/1, 1});
  for (int I = 0; I != 4; ++I)
    Q.push({"backlogged", 0, Seq++, 0, 10 + I});
  for (int I = 0; I != 4; ++I)
    Q.push({"other", 0, Seq++, 0, 20 + I});

  // At Now=5 both heads are expired. Shedding them must not consume the
  // tenant's quantum: the full burst of 4 live items still pops before
  // the cursor moves on.
  std::vector<QItem> Shed;
  std::vector<std::string> Order;
  for (int I = 0; I != 4; ++I) {
    auto Item = Q.pop(/*Now=*/5, &Shed);
    ASSERT_TRUE(Item.has_value());
    Order.push_back(Item->Tenant);
  }
  EXPECT_EQ(Shed.size(), 2u);
  EXPECT_EQ(Order, (std::vector<std::string>(4, "backlogged")));
}

TEST(FairQueueTest, AbsorbExtractsMatchesInSubmissionOrder) {
  serve::FairQueue<QItem> Q = makeQueue();
  uint64_t Seq = 0;
  // Matching items spread across tenants and priorities, interleaved
  // with non-matching ones.
  Q.push({"a", 0, Seq++, 0, /*Tag=*/1});
  Q.push({"b", 1, Seq++, 0, 1});
  Q.push({"a", 0, Seq++, 0, 0});
  Q.push({"c", 0, Seq++, 0, 1});
  Q.push({"b", 0, Seq++, /*Deadline=*/1, 1}); // Expired at Now=5.
  Q.push({"c", 1, Seq++, 0, 1});

  std::vector<QItem> Out, Shed;
  Q.absorb([](const QItem &I) { return I.Tag == 1; }, /*MaxTake=*/2,
           /*Now=*/5, Out, Shed);
  // Seq order among matches: 0, 1 taken (MaxTake), the expired one shed,
  // the overflow pushed back.
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out[0].Seq, 0u);
  EXPECT_EQ(Out[1].Seq, 1u);
  ASSERT_EQ(Shed.size(), 1u);
  EXPECT_EQ(Shed[0].Seq, 4u);
  // 6 - 2 taken - 1 shed = 3 left (one match pushed back, two Tag=0).
  EXPECT_EQ(Q.size(), 3u);

  std::vector<QItem> Rest = Q.drain();
  ASSERT_EQ(Rest.size(), 3u);
  EXPECT_TRUE(Rest[0].Seq < Rest[1].Seq && Rest[1].Seq < Rest[2].Seq);
  EXPECT_TRUE(Q.empty());
}

//===----------------------------------------------------------------------===//
// MemoCache: LRU bound, stats, first-write-wins
//===----------------------------------------------------------------------===//

TEST(MemoCacheTest, LruEvictionAndStats) {
  serve::MemoCache Cache(/*CapacityEntries=*/2);
  auto keyOf = [](uint64_t Digest) {
    serve::MemoCache::Key K;
    K.Fn = 0x1000;
    K.Digest = {Digest, ~Digest};
    K.Threads = 0;
    return K;
  };
  auto entryOf = [](int64_t Value) {
    serve::MemoCache::Entry E;
    E.Result.RootValue = Value;
    E.CompletionCycle = 7;
    return E;
  };

  EXPECT_FALSE(Cache.lookup(keyOf(1)).has_value());
  Cache.insert(keyOf(1), entryOf(10));
  Cache.insert(keyOf(2), entryOf(20));
  // Touch 1 so 2 becomes the LRU victim, then overflow.
  EXPECT_TRUE(Cache.lookup(keyOf(1)).has_value());
  Cache.insert(keyOf(3), entryOf(30));
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_FALSE(Cache.lookup(keyOf(2)).has_value()) << "LRU not evicted";
  ASSERT_TRUE(Cache.lookup(keyOf(1)).has_value());
  ASSERT_TRUE(Cache.lookup(keyOf(3)).has_value());
  EXPECT_EQ(Cache.lookup(keyOf(3))->Result.RootValue, 30);
  EXPECT_EQ(Cache.lookup(keyOf(3))->CompletionCycle, 7u);

  // First write wins: re-inserting an existing key changes nothing.
  Cache.insert(keyOf(1), entryOf(99));
  EXPECT_EQ(Cache.lookup(keyOf(1))->Result.RootValue, 10);

  serve::MemoCache::Stats S = Cache.stats();
  EXPECT_EQ(S.Insertions, 3u);
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_EQ(S.Misses, 2u);
  EXPECT_GT(S.Hits, 0u);
  EXPECT_GT(S.Bytes, 0u);
}

//===----------------------------------------------------------------------===//
// Router: bit-identity, stickiness, spilling, rolling restarts, memo
//===----------------------------------------------------------------------===//

TEST(RouterTest, RoutedServingBitIdenticalAcrossEvaluatorsAndPipeline) {
  RoutedProblems P;
  const std::string JitDir =
      "/tmp/parrec-routertest-jit-" + std::to_string(::getpid());

  // For every evaluator x dispatch path: the full router stack (3
  // shards, weights, continuous batching, shared memoization) must
  // return responses bit-identical to one plain engine.
  for (exec::EvalKind Eval :
       {exec::EvalKind::Ast, exec::EvalKind::Vm, exec::EvalKind::Jit}) {
    for (bool Pipeline : {false, true}) {
      auto makeRequest = [&](size_t I) {
        serve::Request Req;
        Req.Fn = P.Fns[I];
        Req.Args = P.Args[I];
        Req.Tenant = P.Tenants[I];
        Req.Options.Evaluator = Eval;
        if (Eval == exec::EvalKind::Jit)
          Req.Options.JitCacheDir = JitDir;
        return Req;
      };

      serve::Engine::Options Plain;
      Plain.MaxBatch = 4;
      Plain.Pipeline = Pipeline;
      Plain.StartPaused = true;
      serve::Engine Oracle(Plain);
      std::vector<serve::Future> Direct;
      for (size_t I = 0; I != P.size(); ++I)
        Direct.push_back(Oracle.submit(makeRequest(I)));
      Oracle.shutdown(serve::Engine::ShutdownMode::Drain);

      serve::Router::Options RO;
      RO.Shards = 3;
      RO.MemoCapacity = 64;
      RO.Shard = Plain;
      RO.Shard.StartPaused = false;
      RO.Shard.ContinuousBatch = true;
      RO.Shard.TenantWeights = {{"alpha", 4}, {"beta", 1}};
      serve::Router Router(RO);
      std::vector<serve::Future> Routed;
      for (size_t I = 0; I != P.size(); ++I)
        Routed.push_back(Router.submit(makeRequest(I)));
      Router.shutdown(serve::Engine::ShutdownMode::Drain);

      for (size_t I = 0; I != P.size(); ++I) {
        const serve::Response &D = Direct[I].wait();
        const serve::Response &R = Routed[I].wait();
        ASSERT_EQ(D.St, serve::Status::Ok)
            << "eval=" << static_cast<int>(Eval)
            << " pipeline=" << Pipeline << ": " << D.Error;
        ASSERT_EQ(R.St, serve::Status::Ok)
            << "eval=" << static_cast<int>(Eval)
            << " pipeline=" << Pipeline << ": " << R.Error;
        expectIdentical(D.Result, R.Result);
      }
      serve::Router::Stats S = Router.stats();
      EXPECT_EQ(S.Total.Completed, P.size());
      EXPECT_EQ(S.Total.Completed + S.Total.Failed +
                    S.Total.Rejected + S.Total.DeadlineShed,
                P.size());
    }
  }
}

TEST(RouterTest, IdenticalRequestsStickToOneShard) {
  RoutedProblems P;
  serve::Router::Options RO;
  RO.Shards = 4;
  RO.Shard.MaxBatch = 8;
  serve::Router Router(RO);

  // Same tenant, same plan key, same contents: every submission must
  // land on the same shard (stickiness is what keeps repeats batchable).
  std::vector<serve::Future> Futures;
  for (int I = 0; I != 6; ++I) {
    serve::Request Req;
    Req.Fn = P.Fns[0];
    Req.Args = P.Args[0];
    Req.Tenant = "sticky";
    Futures.push_back(Router.submit(std::move(Req)));
  }
  Router.shutdown(serve::Engine::ShutdownMode::Drain);
  for (serve::Future &F : Futures)
    EXPECT_EQ(F.wait().St, serve::Status::Ok);

  serve::Router::Stats S = Router.stats();
  unsigned ShardsUsed = 0;
  for (const serve::Engine::Stats &Shard : S.PerShard)
    if (Shard.Submitted != 0) {
      ++ShardsUsed;
      EXPECT_EQ(Shard.Submitted, 6u);
    }
  EXPECT_EQ(ShardsUsed, 1u);
  EXPECT_EQ(S.Routed, 6u);
  EXPECT_EQ(S.Spilled, 0u);
}

TEST(RouterTest, SpillsToShallowestShardWhenPrimaryBacklogged) {
  RoutedProblems P;
  serve::Router::Options RO;
  RO.Shards = 2;
  RO.SpillQueueDepth = 1;
  RO.Shard.StartPaused = true; // Queues build while paused.
  serve::Router Router(RO);

  std::vector<serve::Future> Futures;
  for (int I = 0; I != 6; ++I) {
    serve::Request Req;
    Req.Fn = P.Fns[0];
    Req.Args = P.Args[0];
    Req.Tenant = "bursty";
    Futures.push_back(Router.submit(std::move(Req)));
  }
  serve::Router::Stats Mid = Router.stats();
  EXPECT_GT(Mid.Spilled, 0u) << "backlog beyond the threshold must spill";
  for (const serve::Engine::Stats &Shard : Mid.PerShard)
    EXPECT_GT(Shard.Submitted, 0u)
        << "spilling must engage the second shard";

  for (unsigned I = 0; I != Router.shards(); ++I)
    Router.shard(I).resume();
  Router.shutdown(serve::Engine::ShutdownMode::Drain);
  for (serve::Future &F : Futures)
    EXPECT_EQ(F.wait().St, serve::Status::Ok);
}

TEST(RouterTest, RollingRestartIsBitIdenticalAndReroutes) {
  RoutedProblems P;

  // Oracle: everything through one plain engine.
  serve::Engine::Options Plain;
  Plain.MaxBatch = 4;
  Plain.StartPaused = true;
  serve::Engine Oracle(Plain);
  std::vector<serve::Future> Direct;
  for (size_t I = 0; I != P.size(); ++I) {
    serve::Request Req;
    Req.Fn = P.Fns[I];
    Req.Args = P.Args[I];
    Req.Tenant = P.Tenants[I];
    Direct.push_back(Oracle.submit(std::move(Req)));
  }
  Oracle.shutdown(serve::Engine::ShutdownMode::Drain);

  serve::Router::Options RO;
  RO.Shards = 2;
  RO.Shard.MaxBatch = 4;
  serve::Router Router(RO);
  auto submitWave = [&](size_t Begin, size_t End,
                        std::vector<serve::Future> &Out) {
    for (size_t I = Begin; I != End && I < P.size(); ++I) {
      serve::Request Req;
      Req.Fn = P.Fns[I];
      Req.Args = P.Args[I];
      Req.Tenant = P.Tenants[I];
      Out.push_back(Router.submit(std::move(Req)));
    }
  };

  std::vector<serve::Future> Routed;
  size_t Third = P.size() / 3;
  // Wave 1 with both shards live; drain shard 0 (blocks until its work
  // completes); wave 2 rides the remaining shard; readmit; wave 3 uses
  // the restarted shard again.
  submitWave(0, Third, Routed);
  ASSERT_TRUE(Router.drainShard(0));
  EXPECT_FALSE(Router.shardLive(0));
  EXPECT_FALSE(Router.drainShard(0)) << "double drain must refuse";
  submitWave(Third, 2 * Third, Routed);
  ASSERT_TRUE(Router.readmitShard(0));
  EXPECT_TRUE(Router.shardLive(0));
  EXPECT_FALSE(Router.readmitShard(0)) << "double readmit must refuse";
  submitWave(2 * Third, P.size(), Routed);
  Router.shutdown(serve::Engine::ShutdownMode::Drain);

  ASSERT_EQ(Routed.size(), P.size());
  for (size_t I = 0; I != P.size(); ++I) {
    const serve::Response &D = Direct[I].wait();
    const serve::Response &R = Routed[I].wait();
    ASSERT_EQ(D.St, serve::Status::Ok) << D.Error;
    ASSERT_EQ(R.St, serve::Status::Ok)
        << "wave request " << I << ": " << R.Error;
    expectIdentical(D.Result, R.Result);
  }
  serve::Router::Stats S = Router.stats();
  EXPECT_EQ(S.Drains, 1u);
  EXPECT_EQ(S.Readmits, 1u);
  EXPECT_EQ(S.Total.Completed, P.size());
}

TEST(RouterTest, MemoCacheIsSharedAcrossShards) {
  RoutedProblems P;
  serve::Router::Options RO;
  RO.Shards = 3;
  RO.MemoCapacity = 32;
  serve::Router Router(RO);

  // Warm the cache under one tenant, then repeat the identical request
  // under other tenants: they hash to different shards, but the shared
  // cache must still serve them without execution.
  serve::Request Warm;
  Warm.Fn = P.Fns[0];
  Warm.Args = P.Args[0];
  Warm.Tenant = "warm";
  const serve::Response First = Router.submit(std::move(Warm)).wait();
  ASSERT_EQ(First.St, serve::Status::Ok) << First.Error;
  EXPECT_FALSE(First.Memoized);

  std::vector<serve::Future> Repeats;
  for (const char *Tenant : {"repeat-a", "repeat-b", "repeat-c"}) {
    serve::Request Req;
    Req.Fn = P.Fns[0];
    Req.Args = P.Args[0];
    Req.Tenant = Tenant;
    Repeats.push_back(Router.submit(std::move(Req)));
  }
  for (serve::Future &F : Repeats) {
    const serve::Response &R = F.wait();
    ASSERT_EQ(R.St, serve::Status::Ok) << R.Error;
    EXPECT_TRUE(R.Memoized);
    expectIdentical(First.Result, R.Result);
    EXPECT_EQ(R.CompletionCycle, First.CompletionCycle)
        << "hits carry the original execution's modelled completion";
  }
  Router.shutdown(serve::Engine::ShutdownMode::Drain);

  serve::Router::Stats S = Router.stats();
  EXPECT_EQ(S.Total.MemoHits, 3u);
  // Exactly one execution ever reached a device.
  uint64_t DeviceRequests = 0;
  for (uint64_t N : S.Total.DeviceRequests)
    DeviceRequests += N;
  EXPECT_EQ(DeviceRequests, 1u);
  ASSERT_TRUE(Router.memoCache() != nullptr);
  EXPECT_EQ(Router.memoCache()->stats().Hits, 3u);
}
