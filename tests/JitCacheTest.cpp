//===- JitCacheTest.cpp - Native JIT disk cache and fallback ----------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native JIT's caching and degradation contract: a warm disk cache
/// means zero compiler invocations, a PlanCache hit means zero JIT work
/// of any kind, a corrupt cache entry is silently recompiled, the
/// ParRec_JIT_CACHE override is honoured, and a broken host compiler
/// degrades to the bytecode VM with identical results and exactly one
/// warning line for the whole process.
///
//===----------------------------------------------------------------------===//

#include "codegen/NativeJit.h"
#include "obs/Metrics.h"
#include "runtime/CompiledRecurrence.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include <unistd.h>

using namespace parrec;
using namespace parrec::runtime;
using codegen::ArgValue;

namespace {

const char *EditDistanceSource =
    "int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =\n"
    "  if i == 0 then j\n"
    "  else if j == 0 then i\n"
    "  else if s[i-1] == t[j-1] then d(i-1, j-1)\n"
    "  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1\n";

/// A fresh per-test cache directory (removed on construction so every
/// test starts cold).
std::string freshCacheDir(const char *Tag) {
  std::string Dir = "/tmp/parrec-jit-cachetest-" +
                    std::to_string(::getpid()) + "-" + Tag;
  std::filesystem::remove_all(Dir);
  return Dir;
}

CompiledRecurrence compileOrDie() {
  DiagnosticEngine Diags;
  auto Compiled = CompiledRecurrence::compile(EditDistanceSource, Diags);
  EXPECT_TRUE(Compiled.has_value()) << Diags.str();
  return std::move(*Compiled);
}

uint64_t counter(const char *Name) {
  return obs::MetricsRegistry::global().snapshot().counter(Name);
}

uint64_t distCount(const char *Name) {
  obs::MetricsSnapshot Snap = obs::MetricsRegistry::global().snapshot();
  auto It = Snap.Distributions.find(Name);
  return It == Snap.Distributions.end() ? 0 : It->second.Count;
}

/// Runs edit distance on \p Fn with the given evaluator and cache dir,
/// returning the root value (the edit distance itself).
double runOnce(const CompiledRecurrence &Fn, exec::EvalKind Evaluator,
               const std::string &CacheDir) {
  bio::Sequence S("s", "kitten"), T("t", "sitting");
  std::vector<ArgValue> Args = {ArgValue::ofSeq(&S), ArgValue(),
                                ArgValue::ofSeq(&T), ArgValue()};
  gpu::Device Dev;
  DiagnosticEngine Diags;
  RunOptions Opts;
  Opts.Evaluator = Evaluator;
  Opts.JitCacheDir = CacheDir;
  auto Result = Fn.runGpu(Args, Dev, Diags, Opts);
  EXPECT_TRUE(Result.has_value()) << Diags.str();
  return Result ? Result->RootValue : -1.0;
}

} // namespace

TEST(JitCacheTest, CompilesAndMatchesVm) {
  std::string Dir = freshCacheDir("compiles");
  CompiledRecurrence Fn = compileOrDie();
  uint64_t MissesBefore = counter("jit.cache_misses");
  double Vm = runOnce(Fn, exec::EvalKind::Vm, "");
  double Jit = runOnce(Fn, exec::EvalKind::Jit, Dir);
  EXPECT_EQ(Vm, Jit);
  EXPECT_GT(counter("jit.cache_misses"), MissesBefore);
  // The cache dir now holds the kernel (.so) and its source (.c).
  bool SawSo = false;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir))
    SawSo |= Entry.path().extension() == ".so";
  EXPECT_TRUE(SawSo) << "no compiled kernel in " << Dir;
}

TEST(JitCacheTest, DiskCacheHitAcrossEngines) {
  std::string Dir = freshCacheDir("warm");
  {
    CompiledRecurrence Cold = compileOrDie();
    runOnce(Cold, exec::EvalKind::Jit, Dir);
  }
  // A fresh CompiledRecurrence has an empty PlanCache, so planning runs
  // the jit pass again — but the disk cache must satisfy it without a
  // single compiler invocation.
  CompiledRecurrence Warm = compileOrDie();
  uint64_t HitsBefore = counter("jit.cache_hits");
  uint64_t CompilesBefore = distCount("jit.compile_ns");
  double Vm = runOnce(Warm, exec::EvalKind::Vm, "");
  double Jit = runOnce(Warm, exec::EvalKind::Jit, Dir);
  EXPECT_EQ(Vm, Jit);
  EXPECT_GT(counter("jit.cache_hits"), HitsBefore);
  EXPECT_EQ(distCount("jit.compile_ns"), CompilesBefore)
      << "a warm disk cache still invoked the host compiler";
}

TEST(JitCacheTest, PlanCacheHitSkipsCompilation) {
  std::string Dir = freshCacheDir("plancache");
  CompiledRecurrence Fn = compileOrDie();
  runOnce(Fn, exec::EvalKind::Jit, Dir);
  // Same function, same box, same options: the PlanCache hit returns
  // the plan with its kernel already attached — the jit pass (and so
  // the whole JIT machinery) must not run at all.
  uint64_t PassRunsBefore = distCount("compile.pass.jit.ns");
  uint64_t HitsBefore = counter("jit.cache_hits");
  uint64_t MissesBefore = counter("jit.cache_misses");
  runOnce(Fn, exec::EvalKind::Jit, Dir);
  EXPECT_EQ(distCount("compile.pass.jit.ns"), PassRunsBefore);
  EXPECT_EQ(counter("jit.cache_hits"), HitsBefore);
  EXPECT_EQ(counter("jit.cache_misses"), MissesBefore);
}

TEST(JitCacheTest, CorruptEntryRecompiles) {
  std::string Dir = freshCacheDir("corrupt");
  {
    CompiledRecurrence Cold = compileOrDie();
    runOnce(Cold, exec::EvalKind::Jit, Dir);
  }
  // Truncate every cached kernel: dlopen must fail, and the entry must
  // be recompiled from scratch rather than poisoning the run.
  for (const auto &Entry : std::filesystem::directory_iterator(Dir))
    if (Entry.path().extension() == ".so")
      std::ofstream(Entry.path(), std::ios::trunc).put('x');
  CompiledRecurrence Fresh = compileOrDie();
  uint64_t CompilesBefore = distCount("jit.compile_ns");
  double Vm = runOnce(Fresh, exec::EvalKind::Vm, "");
  double Jit = runOnce(Fresh, exec::EvalKind::Jit, Dir);
  EXPECT_EQ(Vm, Jit);
  EXPECT_GT(distCount("jit.compile_ns"), CompilesBefore)
      << "the corrupt entry was not recompiled";
}

TEST(JitCacheTest, EnvOverrideSelectsTheCacheDir) {
  std::string Dir = freshCacheDir("env");
  ASSERT_EQ(::setenv("ParRec_JIT_CACHE", Dir.c_str(), 1), 0);
  CompiledRecurrence Fn = compileOrDie();
  // Empty RunOptions::JitCacheDir: the env var decides.
  double Vm = runOnce(Fn, exec::EvalKind::Vm, "");
  double Jit = runOnce(Fn, exec::EvalKind::Jit, "");
  ::unsetenv("ParRec_JIT_CACHE");
  EXPECT_EQ(Vm, Jit);
  bool SawSo = false;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir))
    SawSo |= Entry.path().extension() == ".so";
  EXPECT_TRUE(SawSo) << "ParRec_JIT_CACHE was ignored";
}

TEST(JitCacheTest, BogusCompilerFallsBackToVm) {
  std::string Dir = freshCacheDir("bogus");
  ASSERT_EQ(::setenv("CC", "/nonexistent/bin/not-a-compiler", 1), 0);
  CompiledRecurrence Fn = compileOrDie();
  uint64_t FallbacksBefore = counter("jit.fallbacks");
  double Vm = runOnce(Fn, exec::EvalKind::Vm, "");
  double Jit = runOnce(Fn, exec::EvalKind::Jit, Dir);
  ::unsetenv("CC");
  EXPECT_EQ(Vm, Jit) << "the VM fallback changed the result";
  EXPECT_GT(counter("jit.fallbacks"), FallbacksBefore);
  // Exactly one warning line per process, however many plans fall back.
  EXPECT_EQ(codegen::jitWarningsEmitted(), 1u);
  std::string Dir2 = freshCacheDir("bogus2");
  ASSERT_EQ(::setenv("CC", "/nonexistent/bin/not-a-compiler", 1), 0);
  CompiledRecurrence Again = compileOrDie();
  runOnce(Again, exec::EvalKind::Jit, Dir2);
  ::unsetenv("CC");
  EXPECT_EQ(codegen::jitWarningsEmitted(), 1u);
}
