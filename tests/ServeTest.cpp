//===- ServeTest.cpp - Tests for the serving engine --------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving engine's contract: results routed through submit/coalesce/
/// dispatch are bit-identical to direct CompiledRecurrence runs across
/// device counts and coalescing modes; backpressure, deadline shedding,
/// Drain-vs-Abort shutdown and batch composition are deterministic on the
/// virtual clock (StartPaused + shutdown make every schedule reproducible);
/// and workload specs parse, materialise and replay deterministically.
///
//===----------------------------------------------------------------------===//

#include "bio/Fasta.h"
#include "bio/HmmZoo.h"
#include "bio/SubstitutionMatrix.h"
#include "obs/Export.h"
#include "obs/Json.h"
#include "obs/Trace.h"
#include "runtime/CompiledRecurrence.h"
#include "serve/Engine.h"
#include "serve/Workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <fstream>
#include <iterator>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <thread>

#include <unistd.h>

using namespace parrec;
using namespace parrec::runtime;
using codegen::ArgValue;

namespace {

const char *SwSource =
    "int sw(matrix[protein] m, seq[protein] a, index[a] i,\n"
    "       seq[protein] b, index[b] j) =\n"
    "  if i == 0 then 0\n"
    "  else if j == 0 then 0\n"
    "  else 0 max (sw(i-1, j-1) + m[a[i-1], b[j-1]])\n"
    "       max (sw(i-1, j) - 4) max (sw(i, j-1) - 4)\n";

const char *DnaForwardSource =
    "prob forward(hmm h, state[h] s, seq[dna] x, index[x] i) =\n"
    "  if i == 0 then\n"
    "    if s.isstart then 1.0 else 0.0\n"
    "  else\n"
    "    (if s.isend then 1.0 else s.emission[x[i-1]]) *\n"
    "    sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))\n";

CompiledRecurrence compileOrDie(const char *Source) {
  DiagnosticEngine Diags;
  auto Compiled = CompiledRecurrence::compile(Source, Diags);
  EXPECT_TRUE(Compiled.has_value()) << Diags.str();
  return std::move(*Compiled);
}

/// Every observable of a served result must match the direct run
/// bit-for-bit; the engine changes when and where work runs, never what
/// it computes.
void expectIdentical(const RunResult &Direct, const RunResult &Served) {
  EXPECT_EQ(Direct.RootValue, Served.RootValue);
  EXPECT_EQ(Direct.TableMax, Served.TableMax);
  EXPECT_EQ(Direct.Cells, Served.Cells);
  EXPECT_EQ(Direct.Partitions, Served.Partitions);
  EXPECT_TRUE(Direct.Cost == Served.Cost);
  EXPECT_EQ(Direct.Cycles, Served.Cycles);
  EXPECT_TRUE(Direct.Metrics == Served.Metrics);
  EXPECT_EQ(Direct.UsedSchedule, Served.UsedSchedule);
}

/// A mixed Smith-Waterman / forward problem set with repeated shapes
/// (repeats are what coalescing batches together). Sequences live in
/// deques so ArgValue pointers stay valid for the fixture's lifetime.
struct MixedProblems {
  CompiledRecurrence Sw = compileOrDie(SwSource);
  CompiledRecurrence Forward = compileOrDie(DnaForwardSource);
  bio::Hmm Genes = bio::makeGeneFinderModel();
  std::deque<bio::Sequence> Seqs;
  std::vector<const CompiledRecurrence *> Fns;
  std::vector<std::vector<ArgValue>> Args;

  MixedProblems() {
    const bio::SubstitutionMatrix &Blosum =
        bio::SubstitutionMatrix::blosum62();
    Seqs.push_back(bio::randomSequence(bio::Alphabet::protein(), 32,
                                       /*Seed=*/0xA11CE, "query"));
    const bio::Sequence *Query = &Seqs.back();
    int64_t SubjectLengths[] = {20, 28, 20, 28, 28, 36};
    for (size_t I = 0; I != std::size(SubjectLengths); ++I) {
      Seqs.push_back(bio::randomSequence(bio::Alphabet::protein(),
                                         SubjectLengths[I], 100 + I,
                                         "s" + std::to_string(I)));
      Fns.push_back(&Sw);
      Args.push_back({ArgValue::ofMatrix(&Blosum), ArgValue::ofSeq(Query),
                      ArgValue(), ArgValue::ofSeq(&Seqs.back()),
                      ArgValue()});
    }
    int64_t ObservedLengths[] = {40, 40, 52};
    for (size_t I = 0; I != std::size(ObservedLengths); ++I) {
      std::string Observed = Genes.sample(
          /*Seed=*/7 + I, static_cast<size_t>(ObservedLengths[I]));
      Observed.resize(static_cast<size_t>(ObservedLengths[I]), 'a');
      Seqs.emplace_back("x" + std::to_string(I), std::move(Observed));
      Fns.push_back(&Forward);
      Args.push_back({ArgValue::ofHmm(&Genes), ArgValue(),
                      ArgValue::ofSeq(&Seqs.back()), ArgValue()});
    }
  }

  size_t size() const { return Fns.size(); }
};

/// One trivial forward problem for the control-flow tests.
struct TinyProblem {
  CompiledRecurrence Forward = compileOrDie(DnaForwardSource);
  bio::Hmm Genes = bio::makeGeneFinderModel();
  bio::Sequence X{"x", "acgtacgtacgt"};

  serve::Request request() const {
    serve::Request Req;
    Req.Fn = &Forward;
    Req.Args = {ArgValue::ofHmm(&Genes), ArgValue(),
                ArgValue::ofSeq(&X), ArgValue()};
    return Req;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Differential: served results == direct results, on every topology
//===----------------------------------------------------------------------===//

TEST(ServeEngineTest, ResultsBitIdenticalToDirectRuns) {
  MixedProblems P;

  // Direct single-problem runs are the oracle.
  gpu::Device Direct;
  std::vector<RunResult> Expected;
  for (size_t I = 0; I != P.size(); ++I) {
    DiagnosticEngine Diags;
    auto R = P.Fns[I]->runGpu(P.Args[I], Direct, Diags);
    ASSERT_TRUE(R.has_value()) << Diags.str();
    Expected.push_back(std::move(*R));
  }

  for (unsigned Devices : {1u, 3u}) {
    for (bool Coalesce : {true, false}) {
      serve::Engine::Options Opts;
      Opts.Devices = Devices;
      Opts.Coalesce = Coalesce;
      Opts.MaxBatch = 4;
      Opts.StartPaused = true;
      serve::Engine Engine(Opts);
      std::vector<serve::Future> Futures;
      for (size_t I = 0; I != P.size(); ++I) {
        serve::Request Req;
        Req.Fn = P.Fns[I];
        Req.Args = P.Args[I];
        Futures.push_back(Engine.submit(std::move(Req)));
      }
      Engine.shutdown(serve::Engine::ShutdownMode::Drain);
      for (size_t I = 0; I != Futures.size(); ++I) {
        const serve::Response &Resp = Futures[I].wait();
        ASSERT_EQ(Resp.St, serve::Status::Ok)
            << "devices=" << Devices << " coalesce=" << Coalesce
            << " problem=" << I << ": " << Resp.Error;
        expectIdentical(Expected[I], Resp.Result);
        EXPECT_LT(Resp.Device, Devices);
      }
      serve::Engine::Stats Stats = Engine.stats();
      EXPECT_EQ(Stats.Submitted, P.size());
      EXPECT_EQ(Stats.Completed, P.size());
      EXPECT_EQ(Stats.Rejected, 0u);
    }
  }

  // The engine plans through the same per-function PlanCache the direct
  // runs use: every served shape was already planned above, so serving
  // performed zero fresh synthesis.
  EXPECT_GT(P.Sw.planCacheStats().Hits, 0u);
  EXPECT_GT(P.Forward.planCacheStats().Hits, 0u);
}

//===----------------------------------------------------------------------===//
// Backpressure, deadlines, shutdown modes (virtual-clock deterministic)
//===----------------------------------------------------------------------===//

TEST(ServeEngineTest, QueueFullRejectsDeterministically) {
  TinyProblem P;
  serve::Engine::Options Opts;
  Opts.QueueCapacity = 3;
  Opts.StartPaused = true;
  serve::Engine Engine(Opts);

  std::vector<serve::Future> Admitted;
  for (int I = 0; I != 3; ++I)
    Admitted.push_back(Engine.submit(P.request()));
  EXPECT_EQ(Engine.queueDepth(), 3u);

  // The paused coalescer cannot drain, so the fourth submission must be
  // rejected immediately — backpressure, not buffering.
  serve::Future Rejected = Engine.submit(P.request());
  ASSERT_TRUE(Rejected.valid());
  EXPECT_TRUE(Rejected.ready());
  EXPECT_EQ(Rejected.wait().St, serve::Status::QueueFull);

  Engine.shutdown(serve::Engine::ShutdownMode::Drain);
  for (serve::Future &F : Admitted)
    EXPECT_EQ(F.wait().St, serve::Status::Ok);
  serve::Engine::Stats Stats = Engine.stats();
  EXPECT_EQ(Stats.Rejected, 1u);
  EXPECT_EQ(Stats.Completed, 3u);
  EXPECT_EQ(Stats.MaxQueueDepth, 3u);
}

TEST(ServeEngineTest, ExpiredDeadlinesAreShedAtDequeue) {
  TinyProblem P;
  serve::Engine::Options Opts;
  Opts.StartPaused = true;
  serve::Engine Engine(Opts);

  serve::Request Expiring = P.request();
  Expiring.DeadlineTick = 5;
  serve::Future Late = Engine.submit(std::move(Expiring));

  serve::Request Relaxed = P.request();
  Relaxed.DeadlineTick = 1000;
  serve::Future OnTime = Engine.submit(std::move(Relaxed));

  // Both are queued; the clock passes one deadline before the coalescer
  // ever sees the queue.
  Engine.advanceTo(10);
  Engine.shutdown(serve::Engine::ShutdownMode::Drain);

  EXPECT_EQ(Late.wait().St, serve::Status::Deadline);
  EXPECT_EQ(OnTime.wait().St, serve::Status::Ok);
  serve::Engine::Stats Stats = Engine.stats();
  EXPECT_EQ(Stats.DeadlineShed, 1u);
  EXPECT_EQ(Stats.Completed, 1u);
}

TEST(ServeEngineTest, DrainFinishesWhatAbortDrops) {
  TinyProblem P;

  serve::Engine::Options Opts;
  Opts.StartPaused = true;
  {
    serve::Engine Drained(Opts);
    std::vector<serve::Future> Futures;
    for (int I = 0; I != 3; ++I)
      Futures.push_back(Drained.submit(P.request()));
    Drained.shutdown(serve::Engine::ShutdownMode::Drain);
    for (serve::Future &F : Futures)
      EXPECT_EQ(F.wait().St, serve::Status::Ok);
    EXPECT_EQ(Drained.stats().Completed, 3u);
    EXPECT_EQ(Drained.stats().Aborted, 0u);
  }
  {
    serve::Engine Aborted(Opts);
    std::vector<serve::Future> Futures;
    for (int I = 0; I != 3; ++I)
      Futures.push_back(Aborted.submit(P.request()));
    Aborted.shutdown(serve::Engine::ShutdownMode::Abort);
    for (serve::Future &F : Futures)
      EXPECT_EQ(F.wait().St, serve::Status::Aborted);
    EXPECT_EQ(Aborted.stats().Completed, 0u);
    EXPECT_EQ(Aborted.stats().Aborted, 3u);
  }

  // After shutdown the engine admits nothing new.
  serve::Engine Closed(Opts);
  Closed.shutdown(serve::Engine::ShutdownMode::Drain);
  EXPECT_EQ(Closed.submit(P.request()).wait().St,
            serve::Status::QueueFull);
}

TEST(ServeEngineTest, InvalidRequestFailsWithDiagnostics) {
  TinyProblem P;
  serve::Engine::Options Opts;
  Opts.StartPaused = true;
  serve::Engine Engine(Opts);

  serve::Request Bad = P.request();
  Bad.Args.pop_back();
  Bad.Args.pop_back(); // Wrong arity: the domain cannot be derived.
  const serve::Response &Resp = Engine.submit(std::move(Bad)).wait();
  EXPECT_EQ(Resp.St, serve::Status::Failed);
  EXPECT_FALSE(Resp.Error.empty());
  Engine.shutdown(serve::Engine::ShutdownMode::Drain);
  EXPECT_EQ(Engine.stats().Failed, 1u);
}

//===----------------------------------------------------------------------===//
// Coalescing and dispatch topology
//===----------------------------------------------------------------------===//

TEST(ServeEngineTest, CoalescesSameShapeUpToMaxBatch) {
  TinyProblem P;
  serve::Engine::Options Opts;
  Opts.MaxBatch = 4;
  Opts.StartPaused = true;
  serve::Engine Engine(Opts);
  std::vector<serve::Future> Futures;
  for (int I = 0; I != 6; ++I)
    Futures.push_back(Engine.submit(P.request()));
  Engine.shutdown(serve::Engine::ShutdownMode::Drain);

  std::map<uint64_t, uint64_t> BatchSizes;
  for (serve::Future &F : Futures) {
    const serve::Response &Resp = F.wait();
    ASSERT_EQ(Resp.St, serve::Status::Ok) << Resp.Error;
    BatchSizes[Resp.BatchId] = Resp.BatchSize;
  }
  // Six identical shapes against MaxBatch=4: one full batch, one rest.
  ASSERT_EQ(BatchSizes.size(), 2u);
  EXPECT_EQ(Engine.stats().Batches, 2u);
  std::vector<uint64_t> Sizes;
  for (const auto &[Id, Size] : BatchSizes)
    Sizes.push_back(Size);
  EXPECT_EQ(Sizes, (std::vector<uint64_t>{4, 2}));
}

TEST(ServeEngineTest, CoalescingOffDispatchesSingletons) {
  TinyProblem P;
  serve::Engine::Options Opts;
  Opts.Coalesce = false;
  Opts.StartPaused = true;
  serve::Engine Engine(Opts);
  std::vector<serve::Future> Futures;
  for (int I = 0; I != 5; ++I)
    Futures.push_back(Engine.submit(P.request()));
  Engine.shutdown(serve::Engine::ShutdownMode::Drain);
  for (serve::Future &F : Futures)
    EXPECT_EQ(F.wait().BatchSize, 1u);
  EXPECT_EQ(Engine.stats().Batches, 5u);
}

TEST(ServeEngineTest, RoundRobinsBatchesAcrossDevices) {
  TinyProblem P;
  serve::Engine::Options Opts;
  Opts.Devices = 3;
  Opts.Coalesce = false;
  Opts.StartPaused = true;
  serve::Engine Engine(Opts);
  std::vector<serve::Future> Futures;
  for (int I = 0; I != 6; ++I)
    Futures.push_back(Engine.submit(P.request()));
  Engine.shutdown(serve::Engine::ShutdownMode::Drain);
  for (serve::Future &F : Futures)
    EXPECT_EQ(F.wait().St, serve::Status::Ok);
  serve::Engine::Stats Stats = Engine.stats();
  ASSERT_EQ(Stats.DeviceBatches.size(), 3u);
  for (uint64_t Batches : Stats.DeviceBatches)
    EXPECT_EQ(Batches, 2u);
}

TEST(ServeEngineTest, HigherPriorityDispatchesFirst) {
  MixedProblems P;
  serve::Engine::Options Opts;
  Opts.StartPaused = true;
  serve::Engine Engine(Opts);

  serve::Request Low;
  Low.Fn = P.Fns[0];
  Low.Args = P.Args[0];
  Low.Priority = 0;
  serve::Request High;
  High.Fn = P.Fns.back();
  High.Args = P.Args.back();
  High.Priority = 5;

  serve::Future LowF = Engine.submit(std::move(Low));
  serve::Future HighF = Engine.submit(std::move(High));
  Engine.shutdown(serve::Engine::ShutdownMode::Drain);
  ASSERT_EQ(LowF.wait().St, serve::Status::Ok);
  ASSERT_EQ(HighF.wait().St, serve::Status::Ok);
  // Submitted second, dispatched (and thus completed) first.
  EXPECT_LT(HighF.wait().CompletionSeq, LowF.wait().CompletionSeq);
}

TEST(ServeEngineTest, LingerWindowIsVirtualTime) {
  TinyProblem P;
  serve::Engine::Options Opts;
  Opts.LingerTicks = 10;
  Opts.MaxBatch = 16;
  serve::Engine Engine(Opts);

  // The batch opened at tick 0 stays open until the virtual clock passes
  // tick 10, however long that takes in wall time; both requests land in
  // the same batch regardless of thread scheduling.
  serve::Future A = Engine.submit(P.request());
  serve::Future B = Engine.submit(P.request());
  Engine.advanceTo(11);
  Engine.shutdown(serve::Engine::ShutdownMode::Drain);
  ASSERT_EQ(A.wait().St, serve::Status::Ok);
  ASSERT_EQ(B.wait().St, serve::Status::Ok);
  EXPECT_EQ(A.wait().BatchId, B.wait().BatchId);
  EXPECT_EQ(A.wait().BatchSize, 2u);
  EXPECT_EQ(Engine.stats().Batches, 1u);
}

TEST(ServeEngineTest, CallbackRunsOnCompletion) {
  TinyProblem P;
  serve::Engine::Options Opts;
  Opts.StartPaused = true;
  serve::Engine Engine(Opts);
  std::atomic<int> Calls{0};
  serve::Status Seen = serve::Status::Failed;
  serve::Future F = Engine.submit(P.request(),
                                  [&](const serve::Response &Resp) {
                                    Seen = Resp.St;
                                    ++Calls;
                                  });
  Engine.shutdown(serve::Engine::ShutdownMode::Drain);
  F.wait();
  EXPECT_EQ(Calls.load(), 1);
  EXPECT_EQ(Seen, serve::Status::Ok);
}

//===----------------------------------------------------------------------===//
// Workload specs and replay
//===----------------------------------------------------------------------===//

TEST(ServeWorkloadTest, ParsesSpecsAndRejectsBadOnes) {
  std::string Error;
  auto Doc = obs::parseJson(
      "{\"tenants\": [{\"name\": \"t\", \"kind\": \"forward\","
      " \"requests\": 3, \"min_length\": 16, \"max_length\": 16,"
      " \"mean_gap_ticks\": 2, \"deadline_ticks\": 9,"
      " \"priority\": 1, \"seed\": 42}]}",
      &Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  auto Spec = serve::parseWorkloadSpec(*Doc, &Error);
  ASSERT_TRUE(Spec.has_value()) << Error;
  ASSERT_EQ(Spec->Tenants.size(), 1u);
  EXPECT_EQ(Spec->Tenants[0].Name, "t");
  EXPECT_EQ(Spec->Tenants[0].Kind, "forward");
  EXPECT_EQ(Spec->Tenants[0].Requests, 3u);
  EXPECT_EQ(Spec->Tenants[0].DeadlineTicks, 9u);

  auto BadKind =
      obs::parseJson("{\"tenants\": [{\"kind\": \"nussinov\"}]}");
  ASSERT_TRUE(BadKind.has_value());
  EXPECT_FALSE(serve::parseWorkloadSpec(*BadKind, &Error).has_value());
  EXPECT_NE(Error.find("unknown kind"), std::string::npos);

  auto NoTenants = obs::parseJson("{\"tenants\": []}");
  ASSERT_TRUE(NoTenants.has_value());
  EXPECT_FALSE(serve::parseWorkloadSpec(*NoTenants, &Error).has_value());
}

TEST(ServeWorkloadTest, MaterialisationIsDeterministic) {
  serve::WorkloadSpec Spec;
  serve::TenantSpec Tenant;
  Tenant.Name = "t";
  Tenant.Kind = "viterbi";
  Tenant.Requests = 5;
  Tenant.MinLength = 20;
  Tenant.MaxLength = 30;
  Tenant.MeanGapTicks = 3;
  Tenant.Seed = 99;
  Spec.Tenants.push_back(Tenant);

  DiagnosticEngine Diags;
  auto A = serve::Workload::build(Spec, Diags);
  auto B = serve::Workload::build(Spec, Diags);
  ASSERT_TRUE(A.has_value()) << Diags.str();
  ASSERT_TRUE(B.has_value()) << Diags.str();
  ASSERT_EQ(A->events().size(), 5u);
  ASSERT_EQ(A->events().size(), B->events().size());
  for (size_t I = 0; I != A->events().size(); ++I) {
    EXPECT_EQ(A->events()[I].SubmitTick, B->events()[I].SubmitTick);
    EXPECT_EQ(A->events()[I].Args.size(), B->events()[I].Args.size());
  }
  EXPECT_EQ(A->lastTick(), B->lastTick());
}

TEST(ServeWorkloadTest, ReplayCompletesEverythingAndReportsJson) {
  serve::WorkloadSpec Spec;
  for (const char *Kind : {"smith_waterman", "forward"}) {
    serve::TenantSpec Tenant;
    Tenant.Name = Kind;
    Tenant.Kind = Kind;
    Tenant.Requests = 4;
    Tenant.MinLength = 24;
    Tenant.MaxLength = 24;
    Tenant.MeanGapTicks = 2;
    Tenant.Seed = 7;
    Spec.Tenants.push_back(Tenant);
  }
  DiagnosticEngine Diags;
  auto Workload = serve::Workload::build(Spec, Diags);
  ASSERT_TRUE(Workload.has_value()) << Diags.str();

  serve::Engine::Options Opts;
  Opts.Devices = 2;
  Opts.MaxBatch = 4;
  Opts.LingerTicks = 2;
  serve::Engine Engine(Opts);
  serve::ReplayReport Report = serve::replay(Engine, *Workload);

  EXPECT_EQ(Report.Total, 8u);
  EXPECT_EQ(Report.okCount(), 8u);
  EXPECT_EQ(Report.Stats.Completed, 8u);
  EXPECT_GT(Report.Stats.Batches, 0u);
  EXPECT_GT(Report.ModelledCycles, 0u);

  // The report must round-trip through the JSON parser (the CI smoke
  // validates the same document with python's json.tool).
  std::string Error;
  auto Parsed = obs::parseJson(Report.json(), &Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;
  EXPECT_EQ(Parsed->integerOr("total", -1), 8);
  const obs::JsonValue *Statuses = Parsed->member("by_status");
  ASSERT_NE(Statuses, nullptr);
  EXPECT_EQ(Statuses->integerOr("ok", -1), 8);
}

//===----------------------------------------------------------------------===//
// Request-scoped telemetry: ids, flight recorder, flow events, bit-identity
//===----------------------------------------------------------------------===//

TEST(ServeFutureTest, DefaultConstructedFutureIsSafeToPoll) {
  // Regression: ready() used to dereference the null state. An empty
  // handle must poll as not-ready forever, never crash.
  serve::Future Empty;
  EXPECT_FALSE(Empty.valid());
  EXPECT_FALSE(Empty.ready());
  serve::Future Copy = Empty;
  EXPECT_FALSE(Copy.valid());
  EXPECT_FALSE(Copy.ready());
}

TEST(ServeEngineTest, RequestIdsAreUniqueAndCarriedOntoResponses) {
  TinyProblem P;
  serve::Engine::Options Opts;
  Opts.StartPaused = true;
  serve::Engine Engine(Opts);
  std::vector<serve::Future> Futures;
  for (int I = 0; I != 4; ++I)
    Futures.push_back(Engine.submit(P.request()));
  Engine.shutdown(serve::Engine::ShutdownMode::Drain);

  std::set<uint64_t> Ids;
  for (serve::Future &F : Futures) {
    const serve::Response &Resp = F.wait();
    EXPECT_EQ(Resp.St, serve::Status::Ok);
    EXPECT_GT(Resp.Id, 0u) << "0 is reserved for engine-less responses";
    Ids.insert(Resp.Id);
  }
  EXPECT_EQ(Ids.size(), Futures.size());
}

TEST(ServeEngineTest, FlightRecorderRingWrapsWithoutCorruption) {
  TinyProblem P;
  serve::Engine::Options Opts;
  Opts.StartPaused = true;
  Opts.FlightRecorderSlots = 16; // Tiny on purpose: 12 requests x 4
                                 // lifecycle events wrap the ring twice.
  serve::Engine Engine(Opts);
  std::vector<serve::Future> Futures;
  for (int I = 0; I != 12; ++I) {
    serve::Request Req = P.request();
    Req.Tenant = (I % 2) ? "alpha" : "";
    Futures.push_back(Engine.submit(std::move(Req)));
  }
  Engine.shutdown(serve::Engine::ShutdownMode::Drain);
  for (serve::Future &F : Futures)
    EXPECT_EQ(F.wait().St, serve::Status::Ok);

  std::string Dump = Engine.dumpFlightRecorder();
  std::string Error;
  std::optional<obs::JsonValue> Doc = obs::parseJson(Dump, &Error);
  ASSERT_TRUE(Doc.has_value()) << Error << ": " << Dump;

  const int64_t Capacity = Doc->integerOr("capacity", 0);
  EXPECT_EQ(Capacity, 16);
  // submit + coalesce + dispatch + complete, once per request.
  const int64_t Recorded = Doc->integerOr("recorded", 0);
  EXPECT_EQ(Recorded, 12 * 4);
  EXPECT_EQ(Doc->integerOr("dropped", -1), Recorded - Capacity);

  const obs::JsonValue *Events = Doc->member("events");
  ASSERT_TRUE(Events && Events->isArray());
  ASSERT_EQ(Events->array().size(), static_cast<size_t>(Capacity));
  // Survivors are exactly the newest ring-full, in sequence order, each
  // a well-formed lifecycle record.
  int64_t PrevSeq = -1;
  for (const obs::JsonValue &E : Events->array()) {
    const int64_t Seq = E.integerOr("seq", -1);
    EXPECT_GT(Seq, PrevSeq);
    EXPECT_GE(Seq, Recorded - Capacity);
    EXPECT_LT(Seq, Recorded);
    PrevSeq = Seq;
    EXPECT_GT(E.integerOr("request", 0), 0);
    const std::string Kind = E.stringOr("event", "");
    EXPECT_TRUE(Kind == "submit" || Kind == "coalesce" ||
                Kind == "dispatch" || Kind == "complete")
        << Kind;
    const std::string Tenant = E.stringOr("tenant", "?");
    EXPECT_TRUE(Tenant.empty() || Tenant == "alpha") << Tenant;
  }
}

TEST(ServeEngineTest, TraceFlowEventsLinkTheRequestLifecycle) {
  TinyProblem P;
  obs::Tracer::instance().disable();
  obs::Tracer::instance().reset();
  obs::Tracer::instance().enable();

  std::vector<uint64_t> Ids;
  {
    serve::Engine::Options Opts;
    Opts.StartPaused = true;
    serve::Engine Engine(Opts);
    serve::Future A = Engine.submit(P.request());
    serve::Future B = Engine.submit(P.request());
    Engine.shutdown(serve::Engine::ShutdownMode::Drain);
    EXPECT_EQ(A.wait().St, serve::Status::Ok);
    EXPECT_EQ(B.wait().St, serve::Status::Ok);
    Ids = {A.wait().Id, B.wait().Id};
  }
  obs::Tracer::instance().disable();
  std::string Trace = obs::Tracer::instance().chromeTraceJson();
  obs::Tracer::instance().reset();

  std::string Error;
  std::optional<obs::JsonValue> Doc = obs::parseJson(Trace, &Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  const obs::JsonValue *Events = Doc->member("traceEvents");
  ASSERT_TRUE(Events && Events->isArray());

  // Every request id must thread one flow chain through the trace:
  // a start at enqueue, at least one step, and a finish at the scan.
  std::map<int64_t, std::set<std::string>> PhasesById;
  for (const obs::JsonValue &E : Events->array()) {
    if (E.stringOr("cat", "") != "flow")
      continue;
    EXPECT_EQ(E.stringOr("name", ""), "serve.request");
    PhasesById[E.integerOr("id", -1)].insert(E.stringOr("ph", ""));
  }
  ASSERT_EQ(Ids.size(), 2u);
  EXPECT_NE(Ids[0], Ids[1]);
  for (uint64_t Id : Ids) {
    auto It = PhasesById.find(static_cast<int64_t>(Id));
    ASSERT_NE(It, PhasesById.end()) << "no flow events for request " << Id;
    EXPECT_TRUE(It->second.count("s")) << "missing flow start for " << Id;
    EXPECT_TRUE(It->second.count("t")) << "missing flow step for " << Id;
    EXPECT_TRUE(It->second.count("f")) << "missing flow finish for " << Id;
  }
}

TEST(ServeEngineTest, TelemetryOnOffIsBitIdentical) {
  MixedProblems P;
  const std::string Base =
      "/tmp/parrec-servetest-telemetry-" + std::to_string(::getpid());

  // One full pass over the problem set on every evaluator, with the
  // whole telemetry stack either off or on: tracing, flow events, the
  // labelled registry, the flight recorder and the exporter must change
  // nothing observable about the results.
  auto runAll = [&](bool Telemetry) {
    obs::Tracer::instance().disable();
    obs::Tracer::instance().reset();
    std::optional<obs::MetricsExporter> Exporter;
    if (Telemetry) {
      obs::Tracer::instance().enable();
      obs::MetricsExporter::Options ExportOpts;
      ExportOpts.PromPath = Base + ".prom";
      ExportOpts.JsonlPath = Base + ".jsonl";
      Exporter.emplace(ExportOpts);
    }

    serve::Engine::Options Opts;
    Opts.Devices = 2;
    Opts.MaxBatch = 4;
    Opts.StartPaused = true;
    Opts.FlightRecorderSlots = Telemetry ? 32 : 1024;
    serve::Engine Engine(Opts);
    std::vector<serve::Future> Futures;
    for (exec::EvalKind Eval :
         {exec::EvalKind::Ast, exec::EvalKind::Vm, exec::EvalKind::Jit}) {
      for (size_t I = 0; I != P.size(); ++I) {
        serve::Request Req;
        Req.Fn = P.Fns[I];
        Req.Args = P.Args[I];
        Req.Options.Evaluator = Eval;
        if (Eval == exec::EvalKind::Jit)
          Req.Options.JitCacheDir = Base + "-jit";
        Req.Tenant = Telemetry ? "traced" : "plain";
        Futures.push_back(Engine.submit(std::move(Req)));
      }
    }
    if (Telemetry)
      Exporter->flushNow();
    Engine.shutdown(serve::Engine::ShutdownMode::Drain);
    std::vector<serve::Response> Out;
    for (serve::Future &F : Futures)
      Out.push_back(F.wait());
    if (Telemetry) {
      Exporter->stop();
      EXPECT_GE(Exporter->flushes(), 2u);
      EXPECT_FALSE(Engine.dumpFlightRecorder().empty());
      std::remove((Base + ".prom").c_str());
      std::remove((Base + ".jsonl").c_str());
    }
    obs::Tracer::instance().disable();
    obs::Tracer::instance().reset();
    return Out;
  };

  std::vector<serve::Response> Plain = runAll(/*Telemetry=*/false);
  std::vector<serve::Response> Traced = runAll(/*Telemetry=*/true);
  ASSERT_EQ(Plain.size(), Traced.size());
  for (size_t I = 0; I != Plain.size(); ++I) {
    ASSERT_EQ(Plain[I].St, serve::Status::Ok) << Plain[I].Error;
    ASSERT_EQ(Traced[I].St, serve::Status::Ok) << Traced[I].Error;
    expectIdentical(Plain[I].Result, Traced[I].Result);
  }
}

TEST(ServeWorkloadTest, ReportPercentilesAreHistogramBacked) {
  // The replay report now reads its percentiles off a log-bucketed
  // histogram instead of retaining and sorting every latency (the
  // bounded-error-vs-exact-sort law itself is proven against exact
  // sorts in ObsTest). Here: the percentiles a real replay reports are
  // ordered, positive and inside the observed latency range.
  serve::WorkloadSpec Spec;
  serve::TenantSpec Tenant;
  Tenant.Name = "t";
  Tenant.Kind = "forward";
  Tenant.Requests = 24;
  Tenant.MinLength = 16;
  Tenant.MaxLength = 32;
  Tenant.MeanGapTicks = 1;
  Tenant.Seed = 3;
  Spec.Tenants.push_back(Tenant);

  DiagnosticEngine Diags;
  auto Workload = serve::Workload::build(Spec, Diags);
  ASSERT_TRUE(Workload.has_value()) << Diags.str();
  serve::Engine::Options Opts;
  Opts.MaxBatch = 4;
  serve::Engine Engine(Opts);
  serve::ReplayReport Report = serve::replay(Engine, *Workload);

  ASSERT_EQ(Report.okCount(), 24u);
  EXPECT_GT(Report.P50Seconds, 0.0);
  EXPECT_LE(Report.P50Seconds, Report.P95Seconds);
  EXPECT_LE(Report.P95Seconds, Report.P99Seconds);
  EXPECT_LE(Report.P99Seconds, Report.WallSeconds);
  EXPECT_GT(Report.Throughput, 0.0);
}

TEST(ServeEngineTest, AutoDumpsFlightRecorderOnFirstDeadline) {
  TinyProblem P;
  const std::string Path = "/tmp/parrec-servetest-autodump-" +
                           std::to_string(::getpid()) + ".json";
  std::remove(Path.c_str());

  serve::Engine::Options Opts;
  Opts.StartPaused = true;
  Opts.FlightDumpPath = Path; // What ParRec_FLIGHT_DUMP defaults into.
  serve::Engine Engine(Opts);
  serve::Request Expiring = P.request();
  Expiring.DeadlineTick = 1;
  serve::Future Late = Engine.submit(std::move(Expiring));
  serve::Future Fine = Engine.submit(P.request());
  Engine.advanceTo(5);
  Engine.shutdown(serve::Engine::ShutdownMode::Drain);
  EXPECT_EQ(Late.wait().St, serve::Status::Deadline);
  EXPECT_EQ(Fine.wait().St, serve::Status::Ok);

  // The first Deadline response wrote the post-mortem, exactly once.
  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << "no auto-dump at " << Path;
  std::stringstream Text;
  Text << In.rdbuf();
  std::string Error;
  std::optional<obs::JsonValue> Doc = obs::parseJson(Text.str(), &Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  EXPECT_GT(Doc->integerOr("recorded", 0), 0);
  const obs::JsonValue *Events = Doc->member("events");
  ASSERT_TRUE(Events && Events->isArray());
  bool SawDeadline = false;
  for (const obs::JsonValue &E : Events->array())
    SawDeadline |= E.stringOr("status", "") == "deadline";
  EXPECT_TRUE(SawDeadline);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Pipelined dispatch: early completion, bit-identity, monotone events
//===----------------------------------------------------------------------===//

namespace {

/// Four same-shape Smith-Waterman problems — one coalesced batch.
struct SameShapeProblems {
  CompiledRecurrence Sw = compileOrDie(SwSource);
  std::deque<bio::Sequence> Seqs;
  std::vector<std::vector<ArgValue>> Args;

  explicit SameShapeProblems(size_t Count) {
    const bio::SubstitutionMatrix &Blosum =
        bio::SubstitutionMatrix::blosum62();
    Seqs.push_back(bio::randomSequence(bio::Alphabet::protein(), 32,
                                       /*Seed=*/0xBEE, "query"));
    const bio::Sequence *Query = &Seqs.back();
    for (size_t I = 0; I != Count; ++I) {
      Seqs.push_back(bio::randomSequence(bio::Alphabet::protein(), 24,
                                         200 + I,
                                         "s" + std::to_string(I)));
      Args.push_back({ArgValue::ofMatrix(&Blosum), ArgValue::ofSeq(Query),
                      ArgValue(), ArgValue::ofSeq(&Seqs.back()),
                      ArgValue()});
    }
  }
};

} // namespace

TEST(ServeEngineTest, PipelinedFuturesResolveBeforeBatchEnd) {
  SameShapeProblems P(4);

  // Oracle: direct runs on the same (saturated) cost model.
  gpu::CostModel Model;
  Model.NumMultiprocessors = 2; // 4 problems must share 2 MPs.
  gpu::Device Direct(Model);
  std::vector<RunResult> Expected;
  for (const auto &Args : P.Args) {
    DiagnosticEngine Diags;
    auto R = P.Sw.runGpu(Args, Direct, Diags);
    ASSERT_TRUE(R.has_value()) << Diags.str();
    Expected.push_back(std::move(*R));
  }

  serve::Engine::Options Opts;
  Opts.Model = Model;
  Opts.Devices = 1;
  Opts.MaxBatch = 4;
  Opts.StartPaused = true;
  Opts.Pipeline = true;
  // One worker executes members in submission order, so when problem 0's
  // future resolves the tail of the batch has not even started.
  Opts.BatchWorkersPerDevice = 1;
  serve::Engine Engine(Opts);

  std::vector<serve::Future> Futures(P.Args.size());
  std::atomic<int> LaterReady{-1};
  for (size_t I = 0; I != P.Args.size(); ++I) {
    serve::Request Req;
    Req.Fn = &P.Sw;
    Req.Args = P.Args[I];
    if (I == 0)
      Futures[I] = Engine.submit(
          std::move(Req), [&](const serve::Response &) {
            // Fires the moment problem 0's launch seals: the last batch
            // member must still be unresolved — the early-publication
            // win, observed from the outside.
            LaterReady = Futures.back().ready() ? 1 : 0;
          });
    else
      Futures[I] = Engine.submit(std::move(Req));
  }
  Engine.shutdown(serve::Engine::ShutdownMode::Drain);

  std::vector<uint64_t> Completions;
  for (size_t I = 0; I != Futures.size(); ++I) {
    const serve::Response &Resp = Futures[I].wait();
    ASSERT_EQ(Resp.St, serve::Status::Ok) << Resp.Error;
    expectIdentical(Expected[I], Resp.Result);
    EXPECT_FALSE(Resp.Result.Timeline) << "planner timeline leaked";
    Completions.push_back(Resp.CompletionCycle);
  }
  EXPECT_EQ(LaterReady.load(), 0);

  // One batch ran, so the device's accumulated cycles are its makespan:
  // the earliest problem resolves strictly before batch end, the last
  // one exactly at it.
  serve::Engine::Stats Stats = Engine.stats();
  ASSERT_EQ(Stats.Batches, 1u);
  uint64_t BatchEnd = Stats.DeviceCycles[0];
  EXPECT_EQ(*std::max_element(Completions.begin(), Completions.end()),
            BatchEnd);
  EXPECT_LT(*std::min_element(Completions.begin(), Completions.end()),
            BatchEnd);
}

TEST(ServeEngineTest, PipelinedEngineMatchesBarrierEngineBitForBit) {
  SameShapeProblems P(8);

  auto RunEngine = [&](bool Pipeline, bool PackSmall) {
    serve::Engine::Options Opts;
    Opts.Devices = 1;
    Opts.MaxBatch = 4;
    Opts.StartPaused = true;
    Opts.Pipeline = Pipeline;
    Opts.PackSmall = PackSmall;
    serve::Engine Engine(Opts);
    std::vector<serve::Future> Futures;
    for (const auto &Args : P.Args) {
      serve::Request Req;
      Req.Fn = &P.Sw;
      Req.Args = Args;
      Futures.push_back(Engine.submit(std::move(Req)));
    }
    Engine.shutdown(serve::Engine::ShutdownMode::Drain);
    std::pair<std::vector<serve::Response>, std::string> Out;
    for (serve::Future &F : Futures) {
      EXPECT_EQ(F.wait().St, serve::Status::Ok);
      Out.first.push_back(F.wait());
    }
    Out.second = Engine.dumpFlightRecorder();
    return Out;
  };

  auto [Barrier, BarrierDump] = RunEngine(false, false);
  auto [Piped, PipedDump] = RunEngine(true, false);
  auto [Packed, PackedDump] = RunEngine(true, true);
  (void)BarrierDump;
  ASSERT_EQ(Barrier.size(), Piped.size());
  ASSERT_EQ(Barrier.size(), Packed.size());
  for (size_t I = 0; I != Barrier.size(); ++I) {
    expectIdentical(Barrier[I].Result, Piped[I].Result);
    expectIdentical(Barrier[I].Result, Packed[I].Result);
    // Barrier batches resolve everything at batch end; pipelined
    // completions never pass it.
    EXPECT_LE(Piped[I].CompletionCycle, Barrier[I].CompletionCycle);
    EXPECT_GT(Piped[I].CompletionCycle, 0u);
  }

  // The pipelined engine's early publication must keep the flight
  // recorder's complete events monotone in request id (one device,
  // batches in submission order, members published in order).
  for (const std::string &Dump : {PipedDump, PackedDump}) {
    std::string Error;
    std::optional<obs::JsonValue> Doc = obs::parseJson(Dump, &Error);
    ASSERT_TRUE(Doc.has_value()) << Error;
    const obs::JsonValue *Events = Doc->member("events");
    ASSERT_TRUE(Events && Events->isArray());
    int64_t PrevId = 0;
    size_t Completes = 0;
    for (const obs::JsonValue &E : Events->array()) {
      if (E.stringOr("event", "") != "complete")
        continue;
      ++Completes;
      const int64_t Id = E.integerOr("request", -1);
      EXPECT_GT(Id, PrevId) << "complete events out of request order";
      PrevId = Id;
    }
    EXPECT_EQ(Completes, P.Args.size());
  }
}

//===----------------------------------------------------------------------===//
// Fair queueing, continuous batching, memoization, device placement
//===----------------------------------------------------------------------===//

TEST(ServeEngineTest, PicksLeastLoadedDeviceByModelledCycles) {
  // One big Smith-Waterman problem followed by small ones, singleton
  // batches, two devices. Pure round robin would alternate and leave
  // device 0 the straggler; load-aware placement parks the big batch on
  // device 0 and routes every small one to device 1 until the modelled
  // backlogs even out.
  CompiledRecurrence Sw = compileOrDie(SwSource);
  const bio::SubstitutionMatrix &Blosum = bio::SubstitutionMatrix::blosum62();
  std::deque<bio::Sequence> Seqs;
  Seqs.push_back(bio::randomSequence(bio::Alphabet::protein(), 32,
                                     /*Seed=*/0xD0E, "query"));
  const bio::Sequence *Query = &Seqs.back();
  auto requestWithSubject = [&](int64_t Length, uint64_t Seed) {
    Seqs.push_back(bio::randomSequence(bio::Alphabet::protein(), Length,
                                       Seed, "s"));
    serve::Request Req;
    Req.Fn = &Sw;
    Req.Args = {ArgValue::ofMatrix(&Blosum), ArgValue::ofSeq(Query),
                ArgValue(), ArgValue::ofSeq(&Seqs.back()), ArgValue()};
    return Req;
  };

  serve::Engine::Options Opts;
  Opts.Devices = 2;
  Opts.Coalesce = false;
  Opts.StartPaused = true;
  serve::Engine Engine(Opts);

  // 33x65 = 2145 modelled cells; each small one is 33x5 = 165. Four
  // smalls never catch up, so all of them belong on device 1.
  serve::Future Big = Engine.submit(requestWithSubject(64, 900));
  std::vector<serve::Future> Smalls;
  for (int I = 0; I != 4; ++I)
    Smalls.push_back(Engine.submit(requestWithSubject(4, 901 + I)));
  Engine.shutdown(serve::Engine::ShutdownMode::Drain);

  ASSERT_EQ(Big.wait().St, serve::Status::Ok) << Big.wait().Error;
  EXPECT_EQ(Big.wait().Device, 0u);
  for (serve::Future &F : Smalls) {
    ASSERT_EQ(F.wait().St, serve::Status::Ok) << F.wait().Error;
    EXPECT_EQ(F.wait().Device, 1u);
  }
  serve::Engine::Stats Stats = Engine.stats();
  ASSERT_EQ(Stats.DeviceRequests.size(), 2u);
  EXPECT_EQ(Stats.DeviceRequests[0], 1u);
  EXPECT_EQ(Stats.DeviceRequests[1], 4u);
}

TEST(ServeEngineTest, WeightedTenantsDispatchInDeficitRoundRobinOrder) {
  TinyProblem P;
  serve::Engine::Options Opts;
  Opts.Devices = 1;
  Opts.Coalesce = false; // Singleton batches: dispatch order == pop order.
  Opts.StartPaused = true;
  Opts.TenantWeights = {{"heavy", 10}, {"light", 1}};
  serve::Engine Engine(Opts);

  // 20 + 20 requests interleaved at submission; the schedule must come
  // out in DRR order regardless: bursts of 10 heavy, one light.
  std::vector<serve::Future> Heavy, Light;
  for (int I = 0; I != 20; ++I) {
    serve::Request H = P.request();
    H.Tenant = "heavy";
    Heavy.push_back(Engine.submit(std::move(H)));
    serve::Request L = P.request();
    L.Tenant = "light";
    Light.push_back(Engine.submit(std::move(L)));
  }
  Engine.shutdown(serve::Engine::ShutdownMode::Drain);

  // (CompletionSeq, isHeavy), sorted by completion order.
  std::vector<std::pair<uint64_t, bool>> Order;
  for (serve::Future &F : Heavy) {
    ASSERT_EQ(F.wait().St, serve::Status::Ok) << F.wait().Error;
    Order.push_back({F.wait().CompletionSeq, true});
  }
  for (serve::Future &F : Light) {
    ASSERT_EQ(F.wait().St, serve::Status::Ok) << F.wait().Error;
    Order.push_back({F.wait().CompletionSeq, false});
  }
  std::sort(Order.begin(), Order.end());

  auto heavyIn = [&](size_t First) {
    size_t N = 0;
    for (size_t I = 0; I != First && I != Order.size(); ++I)
      N += Order[I].second;
    return N;
  };
  // First 11 dispatches: a full heavy quantum then one light; first 22:
  // two rounds. After heavy drains, light gets the device to itself.
  EXPECT_EQ(heavyIn(11), 10u);
  EXPECT_EQ(heavyIn(22), 20u);
  EXPECT_EQ(heavyIn(Order.size()), 20u);
}

TEST(ServeEngineTest, ContinuousBatchAdmitsLateArrivalsIntoQueuedBatch) {
  // A plug request blocks the only device inside its completion
  // callback; a seed batch of a different shape queues behind it; late
  // arrivals with the seed's exact PlanKey must join that queued batch
  // instead of opening new ones.
  SameShapeProblems Plug(1);
  TinyProblem P;

  gpu::Device Direct;
  DiagnosticEngine Diags;
  auto Expected = P.Forward.runGpu(
      {ArgValue::ofHmm(&P.Genes), ArgValue(), ArgValue::ofSeq(&P.X),
       ArgValue()},
      Direct, Diags);
  ASSERT_TRUE(Expected.has_value()) << Diags.str();

  serve::Engine::Options Opts;
  Opts.Devices = 1;
  Opts.MaxBatch = 8;
  Opts.LingerTicks = 0;
  Opts.ContinuousBatch = true;
  serve::Engine Engine(Opts);

  std::mutex Mutex;
  std::condition_variable Cv;
  bool PlugDone = false, Released = false;
  serve::Request PlugReq;
  PlugReq.Fn = &Plug.Sw;
  PlugReq.Args = Plug.Args[0];
  serve::Future PlugF =
      Engine.submit(std::move(PlugReq), [&](const serve::Response &) {
        std::unique_lock<std::mutex> Lock(Mutex);
        PlugDone = true;
        Cv.notify_all();
        Cv.wait(Lock, [&] { return Released; });
      });
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Cv.wait(Lock, [&] { return PlugDone; });
  }

  // Device held. Seed the queued batch, wait until the coalescer has
  // formed it, then trickle in the stragglers.
  std::vector<serve::Future> Members;
  Members.push_back(Engine.submit(P.request()));
  auto waitFor = [&](auto Done) {
    for (int Spin = 0; Spin != 2000 && !Done(); ++Spin)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return Done();
  };
  ASSERT_TRUE(waitFor([&] { return Engine.stats().Batches == 2; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (int I = 0; I != 3; ++I)
    Members.push_back(Engine.submit(P.request()));
  ASSERT_TRUE(waitFor([&] { return Engine.stats().ContinuousJoins == 3; }));

  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Released = true;
  }
  Cv.notify_all();
  Engine.shutdown(serve::Engine::ShutdownMode::Drain);

  EXPECT_EQ(PlugF.wait().St, serve::Status::Ok);
  const serve::Response &Seed = Members.front().wait();
  ASSERT_EQ(Seed.St, serve::Status::Ok) << Seed.Error;
  for (serve::Future &F : Members) {
    const serve::Response &R = F.wait();
    ASSERT_EQ(R.St, serve::Status::Ok) << R.Error;
    expectIdentical(*Expected, R.Result);
    EXPECT_EQ(R.BatchId, Seed.BatchId) << "late arrival opened a new batch";
    EXPECT_EQ(R.BatchSize, 4u);
  }
  serve::Engine::Stats Stats = Engine.stats();
  EXPECT_EQ(Stats.Batches, 2u);
  EXPECT_EQ(Stats.ContinuousJoins, 3u);
  EXPECT_EQ(Stats.Completed, 5u);
}

TEST(ServeEngineTest, MemoizedRepeatsAreBitIdenticalAndSkipExecution) {
  TinyProblem P;
  serve::Engine::Options Opts;
  Opts.MemoCapacity = 8;
  serve::Engine Engine(Opts);

  const serve::Response First = Engine.submit(P.request()).wait();
  ASSERT_EQ(First.St, serve::Status::Ok) << First.Error;
  EXPECT_FALSE(First.Memoized);

  // The repeat resolves from the cache: bit-identical payload, honest
  // modelled completion, no device and no queueing.
  const serve::Response Repeat = Engine.submit(P.request()).wait();
  ASSERT_EQ(Repeat.St, serve::Status::Ok) << Repeat.Error;
  EXPECT_TRUE(Repeat.Memoized);
  expectIdentical(First.Result, Repeat.Result);
  EXPECT_EQ(Repeat.CompletionCycle, First.CompletionCycle);
  EXPECT_EQ(Repeat.BatchId, 0u);
  EXPECT_EQ(Repeat.BatchSize, 0u);

  // A request that keeps its table carries run-scoped payload and must
  // never be memoized — in either direction.
  serve::Request Kept = P.request();
  Kept.Options.KeepTable = true;
  const serve::Response KeptResp = Engine.submit(std::move(Kept)).wait();
  ASSERT_EQ(KeptResp.St, serve::Status::Ok) << KeptResp.Error;
  EXPECT_FALSE(KeptResp.Memoized);
  ASSERT_TRUE(KeptResp.Result.Table != nullptr);

  serve::Request KeptAgain = P.request();
  KeptAgain.Options.KeepTable = true;
  EXPECT_FALSE(Engine.submit(std::move(KeptAgain)).wait().Memoized);

  Engine.shutdown(serve::Engine::ShutdownMode::Drain);
  serve::Engine::Stats Stats = Engine.stats();
  EXPECT_EQ(Stats.MemoHits, 1u);
  uint64_t DeviceRequests = 0;
  for (uint64_t N : Stats.DeviceRequests)
    DeviceRequests += N;
  EXPECT_EQ(DeviceRequests, 3u) << "memo hit must not reach a device";
}

TEST(ServeEngineTest, AbortDuringPipelinedFlightResolvesEachExactlyOnce) {
  // Abort while a pipelined batch is mid-execution: the in-flight batch
  // finishes (Ok), everything undispatched resolves as Aborted, every
  // future resolves exactly once, and the flight recorder's complete
  // events for the executed batch stay monotone in request id.
  SameShapeProblems P(4);
  TinyProblem Tail;

  serve::Engine::Options Opts;
  Opts.Devices = 1;
  Opts.MaxBatch = 4;
  Opts.StartPaused = true;
  Opts.Pipeline = true;
  Opts.BatchWorkersPerDevice = 1;
  serve::Engine Engine(Opts);

  std::mutex Mutex;
  std::condition_variable Cv;
  bool InFlight = false, Released = false;
  std::vector<std::unique_ptr<std::atomic<int>>> Fired;
  auto countingCallback = [&](bool Blocks) {
    Fired.push_back(std::make_unique<std::atomic<int>>(0));
    std::atomic<int> *Count = Fired.back().get();
    return [&, Count, Blocks](const serve::Response &) {
      ++*Count;
      if (!Blocks)
        return;
      std::unique_lock<std::mutex> Lock(Mutex);
      InFlight = true;
      Cv.notify_all();
      Cv.wait(Lock, [&] { return Released; });
    };
  };

  std::vector<serve::Future> Batch, Queued;
  for (size_t I = 0; I != P.Args.size(); ++I) {
    serve::Request Req;
    Req.Fn = &P.Sw;
    Req.Args = P.Args[I];
    Batch.push_back(Engine.submit(std::move(Req), countingCallback(I == 0)));
  }
  for (int I = 0; I != 2; ++I)
    Queued.push_back(Engine.submit(Tail.request(), countingCallback(false)));
  Engine.resume();
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Cv.wait(Lock, [&] { return InFlight; });
  }
  // Device wedged inside batch 1. Fire the abort concurrently; it must
  // flush what it can and then wait out the in-flight batch.
  std::thread Aborter([&] {
    Engine.shutdown(serve::Engine::ShutdownMode::Abort);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Released = true;
  }
  Cv.notify_all();
  Aborter.join();

  for (serve::Future &F : Batch) {
    ASSERT_TRUE(F.ready());
    EXPECT_EQ(F.wait().St, serve::Status::Ok) << F.wait().Error;
  }
  for (serve::Future &F : Queued) {
    ASSERT_TRUE(F.ready());
    const serve::Response &R = F.wait();
    EXPECT_TRUE(R.St == serve::Status::Ok || R.St == serve::Status::Aborted);
  }
  for (const auto &Count : Fired)
    EXPECT_EQ(Count->load(), 1) << "a future resolved twice (or never)";
  serve::Engine::Stats Stats = Engine.stats();
  EXPECT_EQ(Stats.Completed + Stats.Aborted, 6u);
  EXPECT_GE(Stats.Completed, 4u);

  // Exactly one terminal flight event per request, monotone ids within
  // the executed pipelined batch.
  std::string Error;
  std::optional<obs::JsonValue> Doc =
      obs::parseJson(Engine.dumpFlightRecorder(), &Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  const obs::JsonValue *Events = Doc->member("events");
  ASSERT_TRUE(Events && Events->isArray());
  std::set<int64_t> CompletedIds;
  int64_t PrevBatchId = 0;
  for (const obs::JsonValue &E : Events->array()) {
    if (E.stringOr("event", "") != "complete")
      continue;
    const int64_t Id = E.integerOr("request", -1);
    EXPECT_TRUE(CompletedIds.insert(Id).second)
        << "request " << Id << " completed twice";
    if (E.stringOr("status", "") == "ok" && Id <= 4) {
      EXPECT_GT(Id, PrevBatchId) << "pipelined completes out of order";
      PrevBatchId = Id;
    }
  }
  EXPECT_EQ(CompletedIds.size(), 6u);
}

TEST(ServeWorkloadTest, ReplayReportsPerTenantLatencyPercentiles) {
  serve::WorkloadSpec Spec;
  for (const char *Name : {"gold", "bronze"}) {
    serve::TenantSpec Tenant;
    Tenant.Name = Name;
    Tenant.Kind = "forward";
    Tenant.Requests = Name[0] == 'g' ? 12u : 8u;
    Tenant.MinLength = 16;
    Tenant.MaxLength = 24;
    Tenant.MeanGapTicks = 1;
    Tenant.Weight = Name[0] == 'g' ? 4 : 1;
    Tenant.Seed = Name[0];
    Spec.Tenants.push_back(Tenant);
  }

  DiagnosticEngine Diags;
  auto Workload = serve::Workload::build(Spec, Diags);
  ASSERT_TRUE(Workload.has_value()) << Diags.str();
  serve::Engine::Options Opts;
  Opts.MaxBatch = 4;
  Opts.TenantWeights = Spec.tenantWeights();
  serve::Engine Engine(Opts);
  serve::ReplayReport Report = serve::replay(Engine, *Workload);

  ASSERT_EQ(Report.okCount(), 20u);
  ASSERT_EQ(Report.ByTenant.size(), 2u);
  ASSERT_TRUE(Report.ByTenant.count("gold"));
  ASSERT_TRUE(Report.ByTenant.count("bronze"));
  EXPECT_EQ(Report.ByTenant["gold"].Ok, 12u);
  EXPECT_EQ(Report.ByTenant["bronze"].Ok, 8u);
  for (auto &[Name, T] : Report.ByTenant) {
    EXPECT_GT(T.P50Seconds, 0.0) << Name;
    EXPECT_LE(T.P50Seconds, T.P95Seconds) << Name;
    EXPECT_LE(T.P95Seconds, T.P99Seconds) << Name;
  }

  // The JSON snapshot carries the same per-tenant block (what
  // serve --stats-out persists).
  std::string Error;
  auto Parsed = obs::parseJson(Report.json(), &Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;
  const obs::JsonValue *Tenants = Parsed->member("tenants");
  ASSERT_TRUE(Tenants != nullptr);
  for (const char *Name : {"gold", "bronze"}) {
    const obs::JsonValue *T = Tenants->member(Name);
    ASSERT_TRUE(T != nullptr) << Name;
    const obs::JsonValue *Latency = T->member("latency_seconds");
    ASSERT_TRUE(Latency != nullptr) << Name;
    EXPECT_GT(Latency->numberOr("p99", 0.0), 0.0) << Name;
  }
}
