//===- SmithWaterman.cpp - Smith-Waterman baselines --------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "baselines/SmithWaterman.h"

#include <algorithm>
#include <cassert>

using namespace parrec;
using namespace parrec::baselines;

namespace {

/// Per-cell events of a hand-written Smith-Waterman inner loop: the three
/// max candidates and the clamp at zero (6 arithmetic ops), three DP
/// reads, one DP write, two sequence characters plus one matrix lookup.
gpu::CostCounter swCellEvents() {
  gpu::CostCounter C;
  C.Ops = 6;
  C.TableReads = 3;
  C.TableWrites = 1;
  C.ModelReads = 3;
  return C;
}

/// True when an inter-task thread's private DP row (4 bytes per cell for
/// every thread of the block) still fits the multiprocessor's shared
/// memory; beyond that the row spills to global memory, which is what
/// makes the inter-task kernel lose on long subjects.
bool interTaskRowInShared(int64_t SubjectLength,
                          const gpu::CostModel &Model) {
  uint64_t RowBytes = static_cast<uint64_t>(SubjectLength) * 4 *
                      Model.CoresPerMultiprocessor;
  return RowBytes <= Model.SharedMemBytes;
}

} // namespace

int parrec::baselines::smithWatermanScore(const bio::Sequence &Query,
                                          const bio::Sequence &Subject,
                                          const SwParams &Params,
                                          gpu::CostCounter &Cost) {
  assert(Params.Matrix && "a substitution matrix is required");
  const int64_t M = Query.length();
  const int64_t N = Subject.length();
  std::vector<int> Prev(static_cast<size_t>(N) + 1, 0);
  std::vector<int> Cur(static_cast<size_t>(N) + 1, 0);
  int Best = 0;
  for (int64_t I = 1; I <= M; ++I) {
    Cur[0] = 0;
    char QC = Query.at(I - 1);
    for (int64_t J = 1; J <= N; ++J) {
      int Diag = Prev[J - 1] + Params.Matrix->score(QC, Subject.at(J - 1));
      int Up = Prev[J] - Params.GapPenalty;
      int Left = Cur[J - 1] - Params.GapPenalty;
      int H = std::max({0, Diag, Up, Left});
      Cur[J] = H;
      Best = std::max(Best, H);
    }
    std::swap(Prev, Cur);
  }
  gpu::CostCounter PerCell = swCellEvents();
  uint64_t Cells = static_cast<uint64_t>(M) * static_cast<uint64_t>(N);
  Cost.Ops += PerCell.Ops * Cells;
  Cost.TableReads += PerCell.TableReads * Cells;
  Cost.TableWrites += PerCell.TableWrites * Cells;
  Cost.ModelReads += PerCell.ModelReads * Cells;
  return Best;
}

SearchResult parrec::baselines::searchSmithWatermanCpu(
    const bio::Sequence &Query, const bio::SequenceDatabase &Db,
    const SwParams &Params, const gpu::CostModel &Model) {
  SearchResult Result;
  gpu::CostCounter Cost;
  for (const bio::Sequence &Subject : Db)
    Result.Scores.push_back(
        smithWatermanScore(Query, Subject, Params, Cost));
  Result.Cycles = Model.cpuCycles(Cost);
  Result.Seconds = Model.cpuSeconds(Result.Cycles);
  return Result;
}

SearchResult parrec::baselines::searchCudaSwIntra(
    const bio::Sequence &Query, const bio::SequenceDatabase &Db,
    const SwParams &Params, const gpu::Device &Device) {
  const gpu::CostModel &Model = Device.costModel();
  SearchResult Result;
  // The intra-task kernel keeps its diagonal buffers in shared memory.
  uint64_t CellCycles =
      Model.gpuCellCycles(swCellEvents(), /*TableInShared=*/true);
  unsigned Threads = Model.CoresPerMultiprocessor;

  std::vector<uint64_t> ProblemCycles;
  ProblemCycles.reserve(Db.size());
  for (const bio::Sequence &Subject : Db) {
    gpu::CostCounter Cost;
    Result.Scores.push_back(
        smithWatermanScore(Query, Subject, Params, Cost));
    // Anti-diagonal wavefront: diagonal d of an M x N grid holds
    // min(d, M, N, M+N-d) cells; the block advances by
    // ceil(cells/threads) cell-times plus a barrier per diagonal.
    int64_t M = Query.length(), N = Subject.length();
    uint64_t Cycles = 0;
    for (int64_t D = 1; D <= M + N - 1; ++D) {
      int64_t Cells = std::min({D, M, N, M + N - D});
      uint64_t Rounds =
          (static_cast<uint64_t>(Cells) + Threads - 1) / Threads;
      Cycles += Rounds * CellCycles + Model.SyncCycles;
    }
    ProblemCycles.push_back(Cycles);
  }
  Result.Cycles = Device.dispatchProblems(ProblemCycles);
  Result.Seconds = Model.gpuSeconds(Result.Cycles);
  return Result;
}

SearchResult parrec::baselines::searchCudaSwInter(
    const bio::Sequence &Query, const bio::SequenceDatabase &Db,
    const SwParams &Params, const gpu::Device &Device) {
  const gpu::CostModel &Model = Device.costModel();
  SearchResult Result;
  std::vector<uint64_t> TaskCycles;
  TaskCycles.reserve(Db.size());
  for (const bio::Sequence &Subject : Db) {
    gpu::CostCounter Cost;
    Result.Scores.push_back(
        smithWatermanScore(Query, Subject, Params, Cost));
    bool Shared = interTaskRowInShared(Subject.length(), Model);
    uint64_t CellCycles = Model.gpuCellCycles(swCellEvents(), Shared);
    uint64_t Cells = static_cast<uint64_t>(Query.length()) *
                     static_cast<uint64_t>(Subject.length());
    TaskCycles.push_back(Cells * CellCycles);
  }
  // CUDASW++ sorts the database by length so the lockstep rounds process
  // similarly-sized alignments; model the same batching.
  std::vector<uint64_t> Sorted = TaskCycles;
  std::sort(Sorted.begin(), Sorted.end());
  Result.Cycles = Device.interTaskCycles(Sorted);
  Result.Seconds = Model.gpuSeconds(Result.Cycles);
  return Result;
}

SearchResult parrec::baselines::searchCudaSwHybrid(
    const bio::Sequence &Query, const bio::SequenceDatabase &Db,
    const SwParams &Params, const gpu::Device &Device,
    int64_t LengthThreshold) {
  const gpu::CostModel &Model = Device.costModel();
  if (LengthThreshold < 0)
    LengthThreshold = static_cast<int64_t>(
        Model.SharedMemBytes / (4 * Model.CoresPerMultiprocessor));

  bio::SequenceDatabase Short, Long;
  std::vector<bool> IsShort;
  IsShort.reserve(Db.size());
  for (const bio::Sequence &Subject : Db) {
    bool S = Subject.length() <= LengthThreshold;
    IsShort.push_back(S);
    (S ? Short : Long).push_back(Subject);
  }

  SearchResult ShortResult =
      Short.empty() ? SearchResult{}
                    : searchCudaSwInter(Query, Short, Params, Device);
  SearchResult LongResult =
      Long.empty() ? SearchResult{}
                   : searchCudaSwIntra(Query, Long, Params, Device);

  // Reassemble scores in database order; the two kernels run back to
  // back, so times add.
  SearchResult Result;
  size_t ShortIndex = 0, LongIndex = 0;
  for (bool S : IsShort)
    Result.Scores.push_back(S ? ShortResult.Scores[ShortIndex++]
                              : LongResult.Scores[LongIndex++]);
  Result.Cycles = ShortResult.Cycles + LongResult.Cycles;
  Result.Seconds = Model.gpuSeconds(Result.Cycles);
  return Result;
}
