//===- HmmBaselines.h - HMM forward-algorithm baselines ------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison systems of the Section 6.2 and 6.3 case studies,
/// rebuilt against the simulator's cost model:
///  * HmmocForwardCpu — HMMoC's role: generated, generic, single-threaded
///    CPU forward code for arbitrary HMMs (log-space).
///  * HmmerProfileCpu — HMMER 2's role: a profile-specialised CPU forward
///    with a fixed-width inner loop.
///  * Hmmer3LikeCpu — HMMER 3 with filters disabled (--max): the same
///    profile recursion with striped-SIMD and multi-threaded cost
///    accounting (the "15 years of optimisation" constant factor).
///  * GpuHmmerInterTask — GPU-HMMER's role: one sequence per thread on
///    the device.
///
/// Every variant computes the same log-likelihoods; only the cost
/// accounting differs.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_BASELINES_HMMBASELINES_H
#define PARREC_BASELINES_HMMBASELINES_H

#include "bio/Hmm.h"
#include "bio/Sequence.h"
#include "gpu/Device.h"

#include <cstdint>
#include <vector>

namespace parrec {
namespace baselines {

/// Database scoring outcome: one log-likelihood per sequence plus the
/// modelled time.
struct HmmSearchResult {
  std::vector<double> LogLikelihoods;
  uint64_t Cycles = 0;
  double Seconds = 0.0;
};

/// The shared numeric core: log-space forward over an emitting-only HMM
/// (interior silent states must have been eliminated first). F(s, i) is
/// the likelihood of emitting the first i symbols and sitting in state s,
/// with the silent end state contributing emission 1 — exactly the
/// Figure 11 recursion. \p Cost accumulates the per-transition events of
/// a generic implementation.
double forwardLogLikelihood(const bio::Hmm &Model,
                            const bio::Sequence &Seq,
                            gpu::CostCounter &Cost);

/// Generic single-threaded CPU forward over the whole database (HMMoC).
HmmSearchResult searchHmmocCpu(const bio::Hmm &Model,
                               const bio::SequenceDatabase &Db,
                               const gpu::CostModel &CostModel);

/// Profile-specialised CPU forward (HMMER 2): same values, but the inner
/// loop is compiled for the fixed match/insert topology, so the
/// per-transition bookkeeping of the generic code disappears.
HmmSearchResult searchHmmer2Cpu(const bio::Hmm &Model,
                                const bio::SequenceDatabase &Db,
                                const gpu::CostModel &CostModel);

/// HMMER 3 with all filters off: profile-specialised like HMMER 2, plus
/// \p SimdWidth -wide striped vector arithmetic and \p NumThreads worker
/// threads. Defaults model SSE2 (8 16-bit lanes) on a 4-core Xeon.
HmmSearchResult searchHmmer3Cpu(const bio::Hmm &Model,
                                const bio::SequenceDatabase &Db,
                                const gpu::CostModel &CostModel,
                                unsigned SimdWidth = 8,
                                unsigned NumThreads = 4);

/// GPU-HMMER: one sequence per thread, DP tables in global memory (the
/// port kept HMMER 2's memory layout).
HmmSearchResult searchGpuHmmer(const bio::Hmm &Model,
                               const bio::SequenceDatabase &Db,
                               const gpu::Device &Device);

} // namespace baselines
} // namespace parrec

#endif // PARREC_BASELINES_HMMBASELINES_H
