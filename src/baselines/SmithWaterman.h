//===- SmithWaterman.h - Smith-Waterman baselines ------------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison systems of the Section 6.1 case study, rebuilt against
/// the simulator's cost model:
///  * SmithWatermanCpu — the Fasta/ssearch role: a serial CPU scan
///    (compiled without vector instructions, as in the paper).
///  * CudaSwIntra — CUDASW++ 2.0's intra-task kernel: hand-coded
///    anti-diagonal parallelisation of one alignment per multiprocessor.
///  * CudaSwInter — CUDASW++'s inter-task kernel: one alignment per
///    thread.
///  * CudaSwHybrid — CUDASW++'s length-thresholded dispatch combining
///    both.
///
/// All variants compute identical scores (linear gap penalty, shared
/// scoring core); they differ in how execution time is accounted, exactly
/// like their real counterparts differ in how they use the hardware.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_BASELINES_SMITHWATERMAN_H
#define PARREC_BASELINES_SMITHWATERMAN_H

#include "bio/Sequence.h"
#include "bio/SubstitutionMatrix.h"
#include "gpu/Device.h"

#include <cstdint>
#include <vector>

namespace parrec {
namespace baselines {

/// The outcome of a database search: one score per database sequence and
/// the modelled execution time.
struct SearchResult {
  std::vector<int> Scores;
  uint64_t Cycles = 0;
  double Seconds = 0.0;
};

/// Scoring parameters shared by every variant.
struct SwParams {
  const bio::SubstitutionMatrix *Matrix = nullptr;
  int GapPenalty = 4; // Linear gap model, subtracted per gap column.
};

/// Best local alignment score of \p Query vs \p Subject; the scoring core
/// every baseline (and the DSL case study) agrees on. \p Cost accumulates
/// the per-cell events of a straightforward implementation.
int smithWatermanScore(const bio::Sequence &Query,
                       const bio::Sequence &Subject, const SwParams &Params,
                       gpu::CostCounter &Cost);

/// Serial CPU database scan (the ssearch role).
SearchResult searchSmithWatermanCpu(const bio::Sequence &Query,
                                    const bio::SequenceDatabase &Db,
                                    const SwParams &Params,
                                    const gpu::CostModel &Model);

/// Hand-coded intra-task GPU kernel: one alignment per multiprocessor,
/// anti-diagonal wavefronts striped over the block's threads, DP rows in
/// shared memory.
SearchResult searchCudaSwIntra(const bio::Sequence &Query,
                               const bio::SequenceDatabase &Db,
                               const SwParams &Params,
                               const gpu::Device &Device);

/// Hand-coded inter-task GPU kernel: one alignment per thread, lockstep
/// rounds across the whole device.
SearchResult searchCudaSwInter(const bio::Sequence &Query,
                               const bio::SequenceDatabase &Db,
                               const SwParams &Params,
                               const gpu::Device &Device);

/// CUDASW++'s hybrid dispatch: subjects no longer than
/// \p LengthThreshold go to the inter-task kernel, the rest to the
/// intra-task kernel. A negative threshold derives the crossover from
/// the cost model (the longest subject whose per-thread DP row still
/// fits shared memory).
SearchResult searchCudaSwHybrid(const bio::Sequence &Query,
                                const bio::SequenceDatabase &Db,
                                const SwParams &Params,
                                const gpu::Device &Device,
                                int64_t LengthThreshold = -1);

} // namespace baselines
} // namespace parrec

#endif // PARREC_BASELINES_SMITHWATERMAN_H
