//===- HmmBaselines.cpp - HMM forward-algorithm baselines --------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "baselines/HmmBaselines.h"

#include <cassert>
#include <cmath>
#include <limits>

using namespace parrec;
using namespace parrec::baselines;

namespace {

constexpr double NegInfinity = -std::numeric_limits<double>::infinity();

double logAddExp(double A, double B) {
  if (A == NegInfinity)
    return B;
  if (B == NegInfinity)
    return A;
  double Hi = A > B ? A : B;
  double Lo = A > B ? B : A;
  return Hi + std::log1p(std::exp(Lo - Hi));
}

/// Counts transitions and cells of one forward pass; used to attribute
/// events per implementation style.
struct ForwardWork {
  uint64_t Cells = 0;
  uint64_t TransitionsProcessed = 0;
};

/// The shared numeric core; also reports the work performed.
double forwardCore(const bio::Hmm &Model, const bio::Sequence &Seq,
                   ForwardWork &Work) {
  unsigned N = Model.numStates();
  int64_t L = Seq.length();
  // Precompute log parameters (every real tool does this once per model;
  // we do it per call, which only pessimises the baselines' wall-clock,
  // not their modelled time).
  std::vector<double> LogTrans(Model.numTransitions());
  for (unsigned T = 0; T != Model.numTransitions(); ++T)
    LogTrans[T] = Model.transition(T).Prob <= 0.0
                      ? NegInfinity
                      : std::log(Model.transition(T).Prob);

  std::vector<double> Prev(N, NegInfinity), Cur(N, NegInfinity);
  for (unsigned S = 0; S != N; ++S)
    Prev[S] = Model.state(S).IsStart ? 0.0 : NegInfinity;

  for (int64_t I = 1; I <= L; ++I) {
    char C = Seq.at(I - 1);
    for (unsigned S = 0; S != N; ++S) {
      double Incoming = NegInfinity;
      for (unsigned T : Model.transitionsTo(S)) {
        const bio::HmmTransition &Tr = Model.transition(T);
        Incoming = logAddExp(Incoming, LogTrans[T] + Prev[Tr.From]);
        ++Work.TransitionsProcessed;
      }
      double Emit;
      if (Model.state(S).IsEnd) {
        Emit = 0.0;
      } else {
        double E = Model.emission(S, C);
        Emit = E <= 0.0 ? NegInfinity : std::log(E);
      }
      Cur[S] = Emit + Incoming;
      ++Work.Cells;
    }
    std::swap(Prev, Cur);
  }
  return Prev[Model.endState()];
}

/// Event profile of HMMoC-style generated code: generic adjacency walks
/// with log-space accumulation. Per transition: add + bookkeeping ops
/// around a log-sum-exp (one exp/log pair); reads of the transition
/// parameter and the source cell. Per cell: the emission lookup/addition
/// and the store.
gpu::CostCounter genericEvents(const ForwardWork &Work) {
  gpu::CostCounter C;
  C.Ops = Work.TransitionsProcessed * 4 + Work.Cells * 2;
  C.Transcendentals = Work.TransitionsProcessed;
  C.TableReads = Work.TransitionsProcessed;
  C.TableWrites = Work.Cells;
  C.ModelReads = Work.TransitionsProcessed * 2 + Work.Cells;
  return C;
}

/// Event profile of profile-specialised code (HMMER 2): the topology is
/// baked in, so the adjacency walk and its indirection disappear; the
/// log-space accumulation stays.
gpu::CostCounter profileEvents(const ForwardWork &Work) {
  gpu::CostCounter C;
  C.Ops = Work.TransitionsProcessed * 2 + Work.Cells * 1;
  C.Transcendentals = Work.TransitionsProcessed;
  C.TableReads = Work.TransitionsProcessed;
  C.TableWrites = Work.Cells;
  C.ModelReads = Work.TransitionsProcessed + Work.Cells;
  return C;
}

/// Event profile of HMMER 3's striped forward (filters off): scaled
/// linear space instead of log space — no transcendentals at all, just a
/// fused multiply-add per transition.
gpu::CostCounter hmmer3Events(const ForwardWork &Work) {
  gpu::CostCounter C;
  C.Ops = Work.TransitionsProcessed * 2 + Work.Cells * 1;
  C.TableReads = Work.TransitionsProcessed;
  C.TableWrites = Work.Cells;
  C.ModelReads = Work.TransitionsProcessed + Work.Cells;
  return C;
}

} // namespace

double parrec::baselines::forwardLogLikelihood(const bio::Hmm &Model,
                                               const bio::Sequence &Seq,
                                               gpu::CostCounter &Cost) {
  ForwardWork Work;
  double LogLik = forwardCore(Model, Seq, Work);
  Cost += genericEvents(Work);
  return LogLik;
}

HmmSearchResult
parrec::baselines::searchHmmocCpu(const bio::Hmm &Model,
                                  const bio::SequenceDatabase &Db,
                                  const gpu::CostModel &CostModel) {
  HmmSearchResult Result;
  gpu::CostCounter Cost;
  for (const bio::Sequence &Seq : Db) {
    ForwardWork Work;
    Result.LogLikelihoods.push_back(forwardCore(Model, Seq, Work));
    Cost += genericEvents(Work);
  }
  Result.Cycles = CostModel.cpuCycles(Cost);
  Result.Seconds = CostModel.cpuSeconds(Result.Cycles);
  return Result;
}

HmmSearchResult
parrec::baselines::searchHmmer2Cpu(const bio::Hmm &Model,
                                   const bio::SequenceDatabase &Db,
                                   const gpu::CostModel &CostModel) {
  HmmSearchResult Result;
  gpu::CostCounter Cost;
  for (const bio::Sequence &Seq : Db) {
    ForwardWork Work;
    Result.LogLikelihoods.push_back(forwardCore(Model, Seq, Work));
    Cost += profileEvents(Work);
  }
  Result.Cycles = CostModel.cpuCycles(Cost);
  Result.Seconds = CostModel.cpuSeconds(Result.Cycles);
  return Result;
}

HmmSearchResult parrec::baselines::searchHmmer3Cpu(
    const bio::Hmm &Model, const bio::SequenceDatabase &Db,
    const gpu::CostModel &CostModel, unsigned SimdWidth,
    unsigned NumThreads) {
  assert(SimdWidth > 0 && NumThreads > 0);
  HmmSearchResult Result;
  gpu::CostCounter Cost;
  for (const bio::Sequence &Seq : Db) {
    ForwardWork Work;
    Result.LogLikelihoods.push_back(forwardCore(Model, Seq, Work));
    Cost += hmmer3Events(Work);
  }
  // Striped SIMD retires SimdWidth lanes per op; the database is sharded
  // across NumThreads cores.
  uint64_t Serial = CostModel.cpuCycles(Cost);
  Result.Cycles = Serial / (static_cast<uint64_t>(SimdWidth) * NumThreads);
  Result.Seconds = CostModel.cpuSeconds(Result.Cycles);
  return Result;
}

HmmSearchResult
parrec::baselines::searchGpuHmmer(const bio::Hmm &Model,
                                  const bio::SequenceDatabase &Db,
                                  const gpu::Device &Device) {
  const gpu::CostModel &CostModel = Device.costModel();
  HmmSearchResult Result;

  // One sequence per thread. The historical port kept HMMER 2's DP
  // layout in device memory: reads are serviced through the texture
  // cache (cheap), stores go straight to global memory — which is why
  // the port never reached hand-tuned shared-memory performance.
  auto portCycles = [&](const gpu::CostCounter &C) {
    return C.Ops * CostModel.GpuCyclesPerOp +
           C.Transcendentals * CostModel.GpuTranscendentalCycles +
           C.TableReads * CostModel.SharedMemLatencyCycles +
           C.TableWrites * CostModel.GlobalMemLatencyCycles +
           C.ModelReads * CostModel.SharedMemLatencyCycles;
  };

  std::vector<uint64_t> TaskCycles;
  TaskCycles.reserve(Db.size());
  for (const bio::Sequence &Seq : Db) {
    ForwardWork Work;
    Result.LogLikelihoods.push_back(forwardCore(Model, Seq, Work));
    TaskCycles.push_back(portCycles(profileEvents(Work)));
  }
  Result.Cycles = Device.interTaskCycles(TaskCycles);
  Result.Seconds = CostModel.gpuSeconds(Result.Cycles);
  return Result;
}
