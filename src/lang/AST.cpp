//===- AST.cpp - Abstract syntax of the DSL --------------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "lang/AST.h"

using namespace parrec;
using namespace parrec::lang;

std::string Type::str() const {
  switch (Kind) {
  case TypeKind::Invalid:
    return "<invalid>";
  case TypeKind::Int:
    return "int";
  case TypeKind::Float:
    return "float";
  case TypeKind::Prob:
    return "prob";
  case TypeKind::Bool:
    return "bool";
  case TypeKind::Char:
    return "char[" + AlphabetName + "]";
  case TypeKind::Seq:
    return "seq[" + AlphabetName + "]";
  case TypeKind::Index:
    return "index[" + RefParam + "]";
  case TypeKind::Alphabet:
    return "alphabet";
  case TypeKind::Matrix:
    return "matrix[" + AlphabetName + "]";
  case TypeKind::Hmm:
    return "hmm";
  case TypeKind::State:
    return "state[" + RefParam + "]";
  case TypeKind::Transition:
    return "transition[" + RefParam + "]";
  case TypeKind::TransitionSet:
    return "transitionset[" + RefParam + "]";
  }
  return "<unknown>";
}

const char *parrec::lang::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Min:
    return "min";
  case BinaryOp::Max:
    return "max";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  }
  return "?";
}

const char *parrec::lang::memberKindSpelling(MemberKind Kind) {
  switch (Kind) {
  case MemberKind::Start:
    return "start";
  case MemberKind::End:
    return "end";
  case MemberKind::IsStart:
    return "isstart";
  case MemberKind::IsEnd:
    return "isend";
  case MemberKind::Prob:
    return "prob";
  case MemberKind::Emission:
    return "emission";
  case MemberKind::TransitionsTo:
    return "transitionsto";
  case MemberKind::TransitionsFrom:
    return "transitionsfrom";
  }
  return "?";
}

const char *parrec::lang::reductionKindSpelling(ReductionKind Kind) {
  switch (Kind) {
  case ReductionKind::Sum:
    return "sum";
  case ReductionKind::Min:
    return "min";
  case ReductionKind::Max:
    return "max";
  }
  return "?";
}

namespace {

void printExpr(const Expr *E, std::string &Out) {
  switch (E->getKind()) {
  case ExprKind::IntLiteral:
    Out += std::to_string(cast<IntLiteralExpr>(E)->Value);
    return;
  case ExprKind::FloatLiteral: {
    std::string Text = std::to_string(cast<FloatLiteralExpr>(E)->Value);
    Out += Text;
    return;
  }
  case ExprKind::BoolLiteral:
    Out += cast<BoolLiteralExpr>(E)->Value ? "true" : "false";
    return;
  case ExprKind::CharLiteral:
    Out += '\'';
    Out += cast<CharLiteralExpr>(E)->Value;
    Out += '\'';
    return;
  case ExprKind::VarRef:
    Out += cast<VarRefExpr>(E)->Name;
    return;
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    Out += '(';
    printExpr(B->Lhs.get(), Out);
    Out += ' ';
    Out += binaryOpSpelling(B->Op);
    Out += ' ';
    printExpr(B->Rhs.get(), Out);
    Out += ')';
    return;
  }
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    Out += "if ";
    printExpr(I->Condition.get(), Out);
    Out += " then ";
    printExpr(I->ThenExpr.get(), Out);
    Out += " else ";
    printExpr(I->ElseExpr.get(), Out);
    return;
  }
  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(E);
    Out += C->Callee;
    Out += '(';
    for (size_t I = 0; I != C->Args.size(); ++I) {
      if (I)
        Out += ", ";
      printExpr(C->Args[I].get(), Out);
    }
    Out += ')';
    return;
  }
  case ExprKind::SeqIndex: {
    const auto *S = cast<SeqIndexExpr>(E);
    Out += S->SeqName;
    Out += '[';
    printExpr(S->Index.get(), Out);
    Out += ']';
    return;
  }
  case ExprKind::MatrixIndex: {
    const auto *M = cast<MatrixIndexExpr>(E);
    Out += M->MatrixName;
    Out += '[';
    printExpr(M->Row.get(), Out);
    Out += ", ";
    printExpr(M->Col.get(), Out);
    Out += ']';
    return;
  }
  case ExprKind::Member: {
    const auto *M = cast<MemberExpr>(E);
    printExpr(M->Base.get(), Out);
    Out += '.';
    Out += memberKindSpelling(M->Member);
    if (M->Arg) {
      Out += '[';
      printExpr(M->Arg.get(), Out);
      Out += ']';
    }
    return;
  }
  case ExprKind::Reduction: {
    const auto *R = cast<ReductionExpr>(E);
    Out += reductionKindSpelling(R->Reduction);
    Out += '(';
    Out += R->VarName;
    Out += " in ";
    printExpr(R->Domain.get(), Out);
    Out += " : ";
    printExpr(R->Body.get(), Out);
    Out += ')';
    return;
  }
  }
}

} // namespace

std::string Expr::str() const {
  std::string Out;
  printExpr(this, Out);
  return Out;
}

std::string FunctionDecl::signatureStr() const {
  std::string Out = ReturnType.str() + " " + Name + "(";
  for (size_t I = 0; I != Params.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Params[I].ParamType.str() + " " + Params[I].Name;
  }
  Out += ")";
  return Out;
}

const FunctionDecl *Script::findFunction(const std::string &Name) const {
  for (const Stmt &S : Statements)
    if (S.Kind == StmtKind::Function && S.Function &&
        S.Function->Name == Name)
      return S.Function.get();
  return nullptr;
}
