//===- Lexer.h - DSL tokenizer ------------------------------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts DSL source text to a token stream. Comments run from '#' or
/// "//" to end of line. The lexer never fails hard: unknown characters
/// produce Error tokens and a diagnostic.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_LANG_LEXER_H
#define PARREC_LANG_LEXER_H

#include "lang/Token.h"
#include "support/Diagnostics.h"

#include <string_view>
#include <vector>

namespace parrec {
namespace lang {

/// Single-pass tokenizer over an in-memory buffer.
class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diags);

  /// Lexes and returns the next token (EndOfFile at the end, repeatedly).
  Token lex();

  /// Lexes the whole buffer, including the trailing EndOfFile token.
  std::vector<Token> lexAll();

private:
  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;

  char peek(unsigned Ahead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Source.size(); }
  SourceLocation location() const { return {Line, Column}; }
  void skipTrivia();

  Token makeToken(TokenKind Kind, SourceLocation Loc, size_t Begin);
  Token lexNumber(SourceLocation Loc);
  Token lexIdentifier(SourceLocation Loc);
  Token lexString(SourceLocation Loc);
  Token lexChar(SourceLocation Loc);
};

} // namespace lang
} // namespace parrec

#endif // PARREC_LANG_LEXER_H
