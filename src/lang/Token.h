//===- Token.h - Lexical tokens of the DSL ------------------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for the host language of Figure 6 plus the statement layer
/// (Section 3) and the domain extensions of Section 5.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_LANG_TOKEN_H
#define PARREC_LANG_TOKEN_H

#include "support/SourceLocation.h"

#include <cstdint>
#include <string>

namespace parrec {
namespace lang {

enum class TokenKind {
  EndOfFile,
  Error,

  Identifier,
  IntegerLiteral,
  FloatLiteral,
  StringLiteral,
  CharLiteral,

  // Keywords.
  KwIf,
  KwThen,
  KwElse,
  KwMin,
  KwMax,
  KwSum,
  KwIn,
  KwInt,
  KwFloat,
  KwProb,
  KwBool,
  KwChar,
  KwSeq,
  KwIndex,
  KwMatrix,
  KwHmm,
  KwState,
  KwTransition,
  KwAlphabet,
  KwPrint,
  KwMap,
  KwLoad,
  KwTrue,
  KwFalse,

  // Punctuation and operators.
  LParen,
  RParen,
  LBracket,
  RBracket,
  LBrace,
  RBrace,
  Comma,
  Colon,
  Semicolon,
  Dot,
  Star,
  Plus,
  Minus,
  Slash,
  Assign,     // =
  EqualEqual, // ==
  NotEqual,   // !=
  Less,
  Greater,
  LessEqual,
  GreaterEqual,
  Arrow, // ->
};

/// Returns a human-readable name for \p Kind ("'if'", "identifier", ...).
const char *tokenKindName(TokenKind Kind);

/// One lexed token. Literal payloads are stored in the fields matching
/// the kind; Text always holds the source spelling.
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  SourceLocation Loc;
  std::string Text;
  int64_t IntValue = 0;
  double FloatValue = 0.0;
  char CharValue = 0;

  bool is(TokenKind K) const { return Kind == K; }
  bool isNot(TokenKind K) const { return Kind != K; }
};

} // namespace lang
} // namespace parrec

#endif // PARREC_LANG_TOKEN_H
