//===- Type.h - The DSL type system -------------------------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simple type system of Section 3.2: integers, characters,
/// sequences, indices on sequences, floats, probabilities, booleans and
/// alphabets, plus the Section 5 extension types (substitution matrices,
/// HMMs, states and transitions). Each type is classified as *calling*
/// (instantiated once per problem, constant over a recursion) and/or
/// *recursive* (varies at every recursive call) — the classification is
/// baked into the compiler exactly as the paper describes.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_LANG_TYPE_H
#define PARREC_LANG_TYPE_H

#include <string>

namespace parrec {
namespace lang {

enum class TypeKind {
  Invalid,
  Int,      // Calling and recursive (the initial value bounds the domain).
  Float,    // Calling only.
  Prob,     // Calling only; computed in log space by the backend.
  Bool,
  Char,       // Value type of s[i]; tied to an alphabet.
  Seq,        // Calling: immutable character sequence over an alphabet.
  Index,      // Recursive: index into a named sequence parameter.
  Alphabet,   // Compile-time character set.
  Matrix,     // Calling: substitution matrix (Section 5.1).
  Hmm,        // Calling: Hidden Markov Model (Section 5.2).
  State,      // Recursive: state of a named HMM parameter.
  Transition, // Recursive: transition of a named HMM parameter.
  TransitionSet, // Value of s.transitionsto / s.transitionsfrom.
};

/// A resolved DSL type. Value semantics; small enough to copy freely.
struct Type {
  TypeKind Kind = TypeKind::Invalid;

  /// For Seq/Char/Matrix: the alphabet name ("*" accepts any alphabet).
  std::string AlphabetName;

  /// For Index: the sequence parameter indexed. For State/Transition/
  /// TransitionSet: the HMM parameter they belong to.
  std::string RefParam;

  Type() = default;
  explicit Type(TypeKind Kind) : Kind(Kind) {}

  static Type makeInt() { return Type(TypeKind::Int); }
  static Type makeFloat() { return Type(TypeKind::Float); }
  static Type makeProb() { return Type(TypeKind::Prob); }
  static Type makeBool() { return Type(TypeKind::Bool); }
  static Type makeChar(std::string Alphabet) {
    Type T(TypeKind::Char);
    T.AlphabetName = std::move(Alphabet);
    return T;
  }
  static Type makeSeq(std::string Alphabet) {
    Type T(TypeKind::Seq);
    T.AlphabetName = std::move(Alphabet);
    return T;
  }
  static Type makeIndex(std::string SeqParam) {
    Type T(TypeKind::Index);
    T.RefParam = std::move(SeqParam);
    return T;
  }
  static Type makeMatrix(std::string Alphabet) {
    Type T(TypeKind::Matrix);
    T.AlphabetName = std::move(Alphabet);
    return T;
  }
  static Type makeHmm() { return Type(TypeKind::Hmm); }
  static Type makeState(std::string HmmParam) {
    Type T(TypeKind::State);
    T.RefParam = std::move(HmmParam);
    return T;
  }
  static Type makeTransition(std::string HmmParam) {
    Type T(TypeKind::Transition);
    T.RefParam = std::move(HmmParam);
    return T;
  }
  static Type makeTransitionSet(std::string HmmParam) {
    Type T(TypeKind::TransitionSet);
    T.RefParam = std::move(HmmParam);
    return T;
  }

  bool isValid() const { return Kind != TypeKind::Invalid; }

  /// Calling types must be instantiated before a run and stay constant
  /// over it (Section 3.2).
  bool isCallingType() const {
    switch (Kind) {
    case TypeKind::Int:
    case TypeKind::Float:
    case TypeKind::Prob:
    case TypeKind::Seq:
    case TypeKind::Matrix:
    case TypeKind::Hmm:
      return true;
    default:
      return false;
    }
  }

  /// Recursive types vary at each recursion and must map to the natural
  /// numbers so the analysis can treat them as integers (Section 3.2).
  bool isRecursiveType() const {
    switch (Kind) {
    case TypeKind::Int:
    case TypeKind::Index:
    case TypeKind::State:
    case TypeKind::Transition:
      return true;
    default:
      return false;
    }
  }

  /// True when values of this type are numbers the arithmetic operators
  /// accept.
  bool isNumeric() const {
    return Kind == TypeKind::Int || Kind == TypeKind::Float ||
           Kind == TypeKind::Prob;
  }

  std::string str() const;

  friend bool operator==(const Type &A, const Type &B) {
    return A.Kind == B.Kind && A.AlphabetName == B.AlphabetName &&
           A.RefParam == B.RefParam;
  }
  friend bool operator!=(const Type &A, const Type &B) { return !(A == B); }
};

} // namespace lang
} // namespace parrec

#endif // PARREC_LANG_TYPE_H
