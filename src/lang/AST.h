//===- AST.h - Abstract syntax of the DSL -------------------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expression and declaration nodes for the grammar of Figure 6 plus the
/// Section 5 domain extensions. Nodes carry an LLVM-style kind tag for
/// cheap casting (no RTTI) and a Type slot the semantic analysis fills.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_LANG_AST_H
#define PARREC_LANG_AST_H

#include "lang/Type.h"
#include "support/SourceLocation.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace parrec {
namespace lang {

//===----------------------------------------------------------------------===//
// Casting helpers (hand-rolled isa/cast/dyn_cast over kind tags).
//===----------------------------------------------------------------------===//

template <typename To, typename From> bool isa(const From *Node) {
  return To::classof(Node);
}
template <typename To, typename From> To *cast(From *Node) {
  assert(To::classof(Node) && "cast to incompatible node kind");
  return static_cast<To *>(Node);
}
template <typename To, typename From> const To *cast(const From *Node) {
  assert(To::classof(Node) && "cast to incompatible node kind");
  return static_cast<const To *>(Node);
}
template <typename To, typename From> To *dyn_cast(From *Node) {
  return To::classof(Node) ? static_cast<To *>(Node) : nullptr;
}
template <typename To, typename From> const To *dyn_cast(const From *Node) {
  return To::classof(Node) ? static_cast<const To *>(Node) : nullptr;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind {
  IntLiteral,
  FloatLiteral,
  BoolLiteral,
  CharLiteral,
  VarRef,
  Binary,
  If,
  Call,
  SeqIndex,
  MatrixIndex,
  Member,
  Reduction,
};

class Expr {
public:
  virtual ~Expr() = default;

  ExprKind getKind() const { return Kind; }
  SourceLocation getLoc() const { return Loc; }

  /// The resolved type; invalid until semantic analysis runs.
  Type ExprType;

  /// Renders the expression as (re-parseable) DSL source.
  std::string str() const;

protected:
  Expr(ExprKind Kind, SourceLocation Loc) : Kind(Kind), Loc(Loc) {}

private:
  const ExprKind Kind;
  SourceLocation Loc;
};

using ExprPtr = std::unique_ptr<Expr>;

class IntLiteralExpr : public Expr {
public:
  int64_t Value;

  IntLiteralExpr(int64_t Value, SourceLocation Loc)
      : Expr(ExprKind::IntLiteral, Loc), Value(Value) {}
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::IntLiteral;
  }
};

class FloatLiteralExpr : public Expr {
public:
  double Value;

  FloatLiteralExpr(double Value, SourceLocation Loc)
      : Expr(ExprKind::FloatLiteral, Loc), Value(Value) {}
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::FloatLiteral;
  }
};

class BoolLiteralExpr : public Expr {
public:
  bool Value;

  BoolLiteralExpr(bool Value, SourceLocation Loc)
      : Expr(ExprKind::BoolLiteral, Loc), Value(Value) {}
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::BoolLiteral;
  }
};

class CharLiteralExpr : public Expr {
public:
  char Value;

  CharLiteralExpr(char Value, SourceLocation Loc)
      : Expr(ExprKind::CharLiteral, Loc), Value(Value) {}
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::CharLiteral;
  }
};

/// A reference to a function parameter or reduction variable.
class VarRefExpr : public Expr {
public:
  std::string Name;

  /// Index of the referenced function parameter, or -1 for a reduction
  /// variable (filled by Sema).
  int ParamIndex = -1;

  VarRefExpr(std::string Name, SourceLocation Loc)
      : Expr(ExprKind::VarRef, Loc), Name(std::move(Name)) {}
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::VarRef;
  }
};

enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Min,
  Max,
  Lt,
  Gt,
  Le,
  Ge,
  Eq,
  Ne,
};

/// Returns the DSL spelling of \p Op ("+", "min", "==", ...).
const char *binaryOpSpelling(BinaryOp Op);

class BinaryExpr : public Expr {
public:
  BinaryOp Op;
  ExprPtr Lhs;
  ExprPtr Rhs;

  BinaryExpr(BinaryOp Op, ExprPtr Lhs, ExprPtr Rhs, SourceLocation Loc)
      : Expr(ExprKind::Binary, Loc), Op(Op), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Binary;
  }
};

/// The branching "if c then a else b" expression.
class IfExpr : public Expr {
public:
  ExprPtr Condition;
  ExprPtr ThenExpr;
  ExprPtr ElseExpr;

  IfExpr(ExprPtr Condition, ExprPtr ThenExpr, ExprPtr ElseExpr,
         SourceLocation Loc)
      : Expr(ExprKind::If, Loc), Condition(std::move(Condition)),
        ThenExpr(std::move(ThenExpr)), ElseExpr(std::move(ElseExpr)) {}
  static bool classof(const Expr *E) { return E->getKind() == ExprKind::If; }
};

/// A recursive call. Only the recursive arguments are written at the call
/// site (Figure 7's "d(i-1, j)"): calling parameters are passed through
/// implicitly.
class CallExpr : public Expr {
public:
  std::string Callee;
  std::vector<ExprPtr> Args;

  CallExpr(std::string Callee, std::vector<ExprPtr> Args, SourceLocation Loc)
      : Expr(ExprKind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Call;
  }
};

/// Sequence element access s[e].
class SeqIndexExpr : public Expr {
public:
  std::string SeqName;
  ExprPtr Index;

  /// Parameter index of the sequence (filled by Sema).
  int SeqParamIndex = -1;

  SeqIndexExpr(std::string SeqName, ExprPtr Index, SourceLocation Loc)
      : Expr(ExprKind::SeqIndex, Loc), SeqName(std::move(SeqName)),
        Index(std::move(Index)) {}
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::SeqIndex;
  }
};

/// Substitution matrix lookup m[a, b] (Section 5.1).
class MatrixIndexExpr : public Expr {
public:
  std::string MatrixName;
  ExprPtr Row;
  ExprPtr Col;

  int MatrixParamIndex = -1; // Filled by Sema.

  MatrixIndexExpr(std::string MatrixName, ExprPtr Row, ExprPtr Col,
                  SourceLocation Loc)
      : Expr(ExprKind::MatrixIndex, Loc), MatrixName(std::move(MatrixName)),
        Row(std::move(Row)), Col(std::move(Col)) {}
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::MatrixIndex;
  }
};

/// Accessors on HMM states and transitions (Section 5.2).
enum class MemberKind {
  Start,           // transition.start: source state.
  End,             // transition.end: destination state.
  IsStart,         // state.isstart.
  IsEnd,           // state.isend.
  Prob,            // transition.prob.
  Emission,        // state.emission[c].
  TransitionsTo,   // state.transitionsto.
  TransitionsFrom, // state.transitionsfrom.
};

const char *memberKindSpelling(MemberKind Kind);

class MemberExpr : public Expr {
public:
  MemberKind Member;
  ExprPtr Base;
  ExprPtr Arg; // Emission index; null otherwise.

  MemberExpr(MemberKind Member, ExprPtr Base, ExprPtr Arg,
             SourceLocation Loc)
      : Expr(ExprKind::Member, Loc), Member(Member), Base(std::move(Base)),
        Arg(std::move(Arg)) {}
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Member;
  }
};

enum class ReductionKind { Sum, Min, Max };

const char *reductionKindSpelling(ReductionKind Kind);

/// "sum(t in s.transitionsto : body)" and the min/max variants.
class ReductionExpr : public Expr {
public:
  ReductionKind Reduction;
  std::string VarName;
  ExprPtr Domain;
  ExprPtr Body;

  ReductionExpr(ReductionKind Reduction, std::string VarName, ExprPtr Domain,
                ExprPtr Body, SourceLocation Loc)
      : Expr(ExprKind::Reduction, Loc), Reduction(Reduction),
        VarName(std::move(VarName)), Domain(std::move(Domain)),
        Body(std::move(Body)) {}
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Reduction;
  }
};

//===----------------------------------------------------------------------===//
// Declarations and script statements
//===----------------------------------------------------------------------===//

struct Param {
  std::string Name;
  Type ParamType;
  SourceLocation Loc;
};

/// A recursive function definition (Figure 7).
struct FunctionDecl {
  std::string Name;
  Type ReturnType;
  std::vector<Param> Params;
  ExprPtr Body;
  SourceLocation Loc;

  /// Indices of the recursive parameters, in declaration order (filled by
  /// Sema). These form the recursion's dimensions.
  std::vector<unsigned> RecursiveParams;

  /// Renders the declaration header "int d(seq[en] s, ...)".
  std::string signatureStr() const;
};

enum class StmtKind {
  Alphabet,
  Function,
  SeqLoad,    // seq[a] s = load "file" [n]
  SeqDbLoad,  // seqdb[a] db = load "file"
  MatrixLoad, // matrix[a] m = load "file"
  HmmDef,     // hmm h = { ... } | hmm h = load "file"
  Print,      // print [max] f(args...)
  Map,        // map [max] f(args...), one arg names a seqdb
};

struct Stmt {
  StmtKind Kind;
  SourceLocation Loc;

  // Alphabet.
  std::string AlphabetName;
  std::string AlphabetLetters;

  // Function.
  std::unique_ptr<FunctionDecl> Function;

  // Loads and model definitions.
  std::string VarName;
  std::string TypeAlphabet;
  std::string Path;    // Empty for inline HMM bodies.
  int64_t RecordIndex = 0;
  std::string HmmText; // Inline HMM body (raw text between braces).

  // Print/Map.
  bool TableMax = false;
  std::string CalleeName;
  std::vector<std::string> CallArgs; // Variable names or literals.
};

/// A parsed script: ordered statements (function declarations included).
struct Script {
  std::vector<Stmt> Statements;

  /// Finds a function statement by name; null when absent.
  const FunctionDecl *findFunction(const std::string &Name) const;
};

} // namespace lang
} // namespace parrec

#endif // PARREC_LANG_AST_H
