//===- Parser.cpp - Recursive-descent parser for the DSL -------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "obs/Trace.h"

using namespace parrec;
using namespace parrec::lang;

Parser::Parser(std::string_view Source, DiagnosticEngine &Diags)
    : Diags(Diags) {
  Lexer Lex(Source, Diags);
  Tokens = Lex.lexAll();
}

const Token &Parser::peekAhead(unsigned Ahead) const {
  size_t Index = Pos + Ahead;
  if (Index >= Tokens.size())
    Index = Tokens.size() - 1; // EndOfFile.
  return Tokens[Index];
}

Token Parser::consume() {
  Token T = Tokens[Pos];
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::consumeIf(TokenKind Kind) {
  if (current().isNot(Kind))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (current().is(Kind)) {
    consume();
    return true;
  }
  Diags.error(current().Loc, std::string("expected ") + tokenKindName(Kind) +
                                 " " + Context + ", found " +
                                 tokenKindName(current().Kind));
  return false;
}

void Parser::skipToStatementStart() {
  while (current().isNot(TokenKind::EndOfFile)) {
    switch (current().Kind) {
    case TokenKind::KwAlphabet:
    case TokenKind::KwPrint:
    case TokenKind::KwMap:
    case TokenKind::KwInt:
    case TokenKind::KwFloat:
    case TokenKind::KwProb:
    case TokenKind::KwBool:
    case TokenKind::KwSeq:
    case TokenKind::KwMatrix:
    case TokenKind::KwHmm:
      return;
    default:
      consume();
    }
  }
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

Script Parser::parseScript() {
  obs::Span PhaseSpan("compile.parse", "compiler");
  Script Result;
  while (current().isNot(TokenKind::EndOfFile)) {
    if (consumeIf(TokenKind::Semicolon))
      continue;
    unsigned ErrorsBefore = Diags.errorCount();
    std::optional<Stmt> S = parseStatement();
    if (S) {
      Result.Statements.push_back(std::move(*S));
    } else if (Diags.errorCount() > ErrorsBefore) {
      skipToStatementStart();
    } else {
      Diags.error(current().Loc, "expected a statement, found " +
                                     std::string(tokenKindName(
                                         current().Kind)));
      consume();
      skipToStatementStart();
    }
  }
  return Result;
}

std::optional<Stmt> Parser::parseStatement() {
  switch (current().Kind) {
  case TokenKind::KwAlphabet:
    return parseAlphabetStmt();
  case TokenKind::KwPrint:
    return parsePrintOrMapStmt(/*IsMap=*/false);
  case TokenKind::KwMap:
    return parsePrintOrMapStmt(/*IsMap=*/true);
  case TokenKind::KwHmm:
    return parseHmmStmt();
  case TokenKind::KwInt:
  case TokenKind::KwFloat:
  case TokenKind::KwProb:
  case TokenKind::KwBool:
  case TokenKind::KwChar:
  case TokenKind::KwSeq:
  case TokenKind::KwMatrix:
    return parseDeclarationOrFunction();
  case TokenKind::Identifier:
    if (current().Text == "seqdb")
      return parseDeclarationOrFunction();
    return std::nullopt;
  default:
    return std::nullopt;
  }
}

std::optional<Stmt> Parser::parseAlphabetStmt() {
  Stmt S;
  S.Kind = StmtKind::Alphabet;
  S.Loc = current().Loc;
  consume(); // 'alphabet'.
  if (current().isNot(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected alphabet name");
    return std::nullopt;
  }
  S.AlphabetName = consume().Text;
  if (!expect(TokenKind::Assign, "in alphabet definition"))
    return std::nullopt;
  if (current().isNot(TokenKind::StringLiteral)) {
    Diags.error(current().Loc,
                "expected string of alphabet letters, found " +
                    std::string(tokenKindName(current().Kind)));
    return std::nullopt;
  }
  S.AlphabetLetters = consume().Text;
  return S;
}

std::optional<Stmt> Parser::parsePrintOrMapStmt(bool IsMap) {
  Stmt S;
  S.Kind = IsMap ? StmtKind::Map : StmtKind::Print;
  S.Loc = current().Loc;
  consume(); // 'print' | 'map'.
  if (consumeIf(TokenKind::KwMax))
    S.TableMax = true;
  if (current().isNot(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected function name");
    return std::nullopt;
  }
  S.CalleeName = consume().Text;
  if (!expect(TokenKind::LParen, "after function name"))
    return std::nullopt;
  if (current().isNot(TokenKind::RParen)) {
    do {
      if (current().is(TokenKind::Identifier)) {
        S.CallArgs.push_back(consume().Text);
      } else if (current().is(TokenKind::IntegerLiteral)) {
        S.CallArgs.push_back(consume().Text);
      } else {
        Diags.error(current().Loc,
                    "expected a variable name or integer literal as "
                    "argument");
        return std::nullopt;
      }
    } while (consumeIf(TokenKind::Comma));
  }
  if (!expect(TokenKind::RParen, "to close the argument list"))
    return std::nullopt;
  return S;
}

std::optional<Stmt> Parser::parseHmmStmt() {
  SourceLocation Loc = current().Loc;
  // "hmm h = load ..." | "hmm h = { ... }" | a function with hmm params is
  // impossible here (functions cannot return hmm), so this is always a
  // model definition.
  consume(); // 'hmm'.
  if (current().isNot(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected HMM variable name");
    return std::nullopt;
  }
  Stmt S;
  S.Kind = StmtKind::HmmDef;
  S.Loc = Loc;
  S.VarName = consume().Text;
  if (!expect(TokenKind::Assign, "in hmm definition"))
    return std::nullopt;
  if (consumeIf(TokenKind::KwLoad)) {
    if (current().isNot(TokenKind::StringLiteral)) {
      Diags.error(current().Loc, "expected file path string after 'load'");
      return std::nullopt;
    }
    S.Path = consume().Text;
    return S;
  }
  if (!expect(TokenKind::LBrace, "to open the hmm body"))
    return std::nullopt;
  // Capture the raw body tokens up to the matching brace; the bio library
  // parses the model text itself.
  unsigned Depth = 1;
  std::string Body;
  while (current().isNot(TokenKind::EndOfFile)) {
    if (current().is(TokenKind::LBrace))
      ++Depth;
    if (current().is(TokenKind::RBrace)) {
      --Depth;
      if (Depth == 0) {
        consume();
        S.HmmText = Body;
        return S;
      }
    }
    Token T = consume();
    if (T.is(TokenKind::StringLiteral)) {
      Body += '"';
      Body += T.Text;
      Body += '"';
    } else {
      Body += T.Text;
    }
    Body += ' ';
  }
  Diags.error(Loc, "unterminated hmm body");
  return std::nullopt;
}

std::optional<std::string> Parser::parseAlphabetRef() {
  if (!expect(TokenKind::LBracket, "before alphabet name"))
    return std::nullopt;
  std::string Name;
  if (current().is(TokenKind::Star)) {
    consume();
    Name = "*";
  } else if (current().is(TokenKind::Identifier)) {
    Name = consume().Text;
  } else {
    Diags.error(current().Loc, "expected alphabet name or '*'");
    return std::nullopt;
  }
  if (!expect(TokenKind::RBracket, "after alphabet name"))
    return std::nullopt;
  return Name;
}

std::optional<Type> Parser::parseTypeSpec() {
  SourceLocation Loc = current().Loc;
  switch (current().Kind) {
  case TokenKind::KwInt:
    consume();
    return Type::makeInt();
  case TokenKind::KwFloat:
    consume();
    return Type::makeFloat();
  case TokenKind::KwProb:
    consume();
    return Type::makeProb();
  case TokenKind::KwBool:
    consume();
    return Type::makeBool();
  case TokenKind::KwChar: {
    consume();
    auto Alpha = parseAlphabetRef();
    if (!Alpha)
      return std::nullopt;
    return Type::makeChar(*Alpha);
  }
  case TokenKind::KwSeq: {
    consume();
    auto Alpha = parseAlphabetRef();
    if (!Alpha)
      return std::nullopt;
    return Type::makeSeq(*Alpha);
  }
  case TokenKind::KwIndex: {
    consume();
    if (!expect(TokenKind::LBracket, "before sequence parameter"))
      return std::nullopt;
    if (current().isNot(TokenKind::Identifier)) {
      Diags.error(current().Loc, "expected the sequence parameter an "
                                 "index refers to");
      return std::nullopt;
    }
    std::string Ref = consume().Text;
    if (!expect(TokenKind::RBracket, "after sequence parameter"))
      return std::nullopt;
    return Type::makeIndex(Ref);
  }
  case TokenKind::KwMatrix: {
    consume();
    auto Alpha = parseAlphabetRef();
    if (!Alpha)
      return std::nullopt;
    return Type::makeMatrix(*Alpha);
  }
  case TokenKind::KwHmm:
    consume();
    return Type::makeHmm();
  case TokenKind::KwState: {
    consume();
    if (!expect(TokenKind::LBracket, "before hmm parameter"))
      return std::nullopt;
    if (current().isNot(TokenKind::Identifier)) {
      Diags.error(current().Loc,
                  "expected the hmm parameter a state belongs to");
      return std::nullopt;
    }
    std::string Ref = consume().Text;
    if (!expect(TokenKind::RBracket, "after hmm parameter"))
      return std::nullopt;
    return Type::makeState(Ref);
  }
  case TokenKind::KwTransition: {
    consume();
    if (!expect(TokenKind::LBracket, "before hmm parameter"))
      return std::nullopt;
    if (current().isNot(TokenKind::Identifier)) {
      Diags.error(current().Loc,
                  "expected the hmm parameter a transition belongs to");
      return std::nullopt;
    }
    std::string Ref = consume().Text;
    if (!expect(TokenKind::RBracket, "after hmm parameter"))
      return std::nullopt;
    return Type::makeTransition(Ref);
  }
  default:
    Diags.error(Loc, "expected a type, found " +
                         std::string(tokenKindName(current().Kind)));
    return std::nullopt;
  }
}

std::optional<Stmt> Parser::parseDeclarationOrFunction() {
  SourceLocation Loc = current().Loc;

  // "seqdb[a] db = load ..." uses a contextual keyword.
  if (current().is(TokenKind::Identifier) && current().Text == "seqdb") {
    consume();
    auto Alpha = parseAlphabetRef();
    if (!Alpha)
      return std::nullopt;
    if (current().isNot(TokenKind::Identifier)) {
      Diags.error(current().Loc, "expected variable name");
      return std::nullopt;
    }
    Stmt S;
    S.Kind = StmtKind::SeqDbLoad;
    S.Loc = Loc;
    S.TypeAlphabet = *Alpha;
    S.VarName = consume().Text;
    if (!expect(TokenKind::Assign, "in seqdb declaration") ||
        !expect(TokenKind::KwLoad, "in seqdb declaration"))
      return std::nullopt;
    if (current().isNot(TokenKind::StringLiteral)) {
      Diags.error(current().Loc, "expected file path string");
      return std::nullopt;
    }
    S.Path = consume().Text;
    return S;
  }

  std::optional<Type> DeclType = parseTypeSpec();
  if (!DeclType)
    return std::nullopt;
  if (current().isNot(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected a name after the type");
    return std::nullopt;
  }
  std::string Name = consume().Text;

  // A '(' begins a function definition; '=' begins a load declaration.
  if (current().is(TokenKind::LParen)) {
    std::unique_ptr<FunctionDecl> F =
        parseFunctionTail(*DeclType, std::move(Name), Loc);
    if (!F)
      return std::nullopt;
    Stmt S;
    S.Kind = StmtKind::Function;
    S.Loc = Loc;
    S.Function = std::move(F);
    return S;
  }

  if (!expect(TokenKind::Assign, "in declaration"))
    return std::nullopt;
  if (!expect(TokenKind::KwLoad, "in declaration"))
    return std::nullopt;
  if (current().isNot(TokenKind::StringLiteral)) {
    Diags.error(current().Loc, "expected file path string");
    return std::nullopt;
  }
  Stmt S;
  S.Loc = Loc;
  S.VarName = std::move(Name);
  S.TypeAlphabet = DeclType->AlphabetName;
  S.Path = consume().Text;
  switch (DeclType->Kind) {
  case TypeKind::Seq:
    S.Kind = StmtKind::SeqLoad;
    if (consumeIf(TokenKind::LBracket)) {
      if (current().isNot(TokenKind::IntegerLiteral)) {
        Diags.error(current().Loc, "expected record index");
        return std::nullopt;
      }
      S.RecordIndex = consume().IntValue;
      if (!expect(TokenKind::RBracket, "after record index"))
        return std::nullopt;
    }
    return S;
  case TypeKind::Matrix:
    S.Kind = StmtKind::MatrixLoad;
    return S;
  default:
    Diags.error(Loc, "only seq, seqdb, matrix and hmm values can be "
                     "loaded from files");
    return std::nullopt;
  }
}

std::unique_ptr<FunctionDecl> Parser::parseFunctionTail(Type ReturnType,
                                                        std::string Name,
                                                        SourceLocation Loc) {
  auto F = std::make_unique<FunctionDecl>();
  F->Name = std::move(Name);
  F->ReturnType = std::move(ReturnType);
  F->Loc = Loc;

  expect(TokenKind::LParen, "to open the parameter list");
  if (current().isNot(TokenKind::RParen)) {
    do {
      std::optional<Type> ParamType = parseTypeSpec();
      if (!ParamType)
        return nullptr;
      if (current().isNot(TokenKind::Identifier)) {
        Diags.error(current().Loc, "expected parameter name");
        return nullptr;
      }
      Param P;
      P.Loc = current().Loc;
      P.Name = consume().Text;
      P.ParamType = std::move(*ParamType);
      F->Params.push_back(std::move(P));
    } while (consumeIf(TokenKind::Comma));
  }
  if (!expect(TokenKind::RParen, "to close the parameter list"))
    return nullptr;
  if (!expect(TokenKind::Assign, "before the function body"))
    return nullptr;
  F->Body = parseExpr();
  if (!F->Body)
    return nullptr;
  return F;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpressionOnly() {
  ExprPtr E = parseExpr();
  if (E && current().isNot(TokenKind::EndOfFile))
    Diags.error(current().Loc, "unexpected trailing input after expression");
  return E;
}

std::unique_ptr<FunctionDecl> Parser::parseFunctionOnly() {
  // Instrumented by the "parse" pass wrapper (compiler/).
  std::optional<Stmt> S = parseDeclarationOrFunction();
  if (!S || S->Kind != StmtKind::Function) {
    if (S)
      Diags.error(S->Loc, "expected a function definition");
    return nullptr;
  }
  if (current().isNot(TokenKind::EndOfFile))
    Diags.error(current().Loc, "unexpected trailing input after function");
  return std::move(S->Function);
}

ExprPtr Parser::parseExpr() { return parseIfExpr(); }

ExprPtr Parser::parseIfExpr() {
  if (current().isNot(TokenKind::KwIf))
    return parseCompare();
  SourceLocation Loc = consume().Loc;
  ExprPtr Cond = parseExpr();
  if (!Cond || !expect(TokenKind::KwThen, "in if expression"))
    return nullptr;
  ExprPtr Then = parseExpr();
  if (!Then || !expect(TokenKind::KwElse, "in if expression"))
    return nullptr;
  ExprPtr Else = parseExpr();
  if (!Else)
    return nullptr;
  return std::make_unique<IfExpr>(std::move(Cond), std::move(Then),
                                  std::move(Else), Loc);
}

ExprPtr Parser::parseCompare() {
  ExprPtr Lhs = parseMinMax();
  if (!Lhs)
    return nullptr;
  BinaryOp Op;
  switch (current().Kind) {
  case TokenKind::Less:
    Op = BinaryOp::Lt;
    break;
  case TokenKind::Greater:
    Op = BinaryOp::Gt;
    break;
  case TokenKind::LessEqual:
    Op = BinaryOp::Le;
    break;
  case TokenKind::GreaterEqual:
    Op = BinaryOp::Ge;
    break;
  case TokenKind::EqualEqual:
    Op = BinaryOp::Eq;
    break;
  case TokenKind::NotEqual:
    Op = BinaryOp::Ne;
    break;
  default:
    return Lhs;
  }
  SourceLocation Loc = consume().Loc;
  ExprPtr Rhs = parseMinMax();
  if (!Rhs)
    return nullptr;
  return std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs),
                                      Loc);
}

ExprPtr Parser::parseMinMax() {
  ExprPtr Lhs = parseAdditive();
  if (!Lhs)
    return nullptr;
  while (current().is(TokenKind::KwMin) || current().is(TokenKind::KwMax)) {
    BinaryOp Op =
        current().is(TokenKind::KwMin) ? BinaryOp::Min : BinaryOp::Max;
    SourceLocation Loc = consume().Loc;
    ExprPtr Rhs = parseAdditive();
    if (!Rhs)
      return nullptr;
    Lhs = std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs),
                                       Loc);
  }
  return Lhs;
}

ExprPtr Parser::parseAdditive() {
  ExprPtr Lhs = parseMultiplicative();
  if (!Lhs)
    return nullptr;
  while (current().is(TokenKind::Plus) || current().is(TokenKind::Minus)) {
    BinaryOp Op =
        current().is(TokenKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
    SourceLocation Loc = consume().Loc;
    ExprPtr Rhs = parseMultiplicative();
    if (!Rhs)
      return nullptr;
    Lhs = std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs),
                                       Loc);
  }
  return Lhs;
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr Lhs = parseUnary();
  if (!Lhs)
    return nullptr;
  while (current().is(TokenKind::Star) || current().is(TokenKind::Slash)) {
    BinaryOp Op =
        current().is(TokenKind::Star) ? BinaryOp::Mul : BinaryOp::Div;
    SourceLocation Loc = consume().Loc;
    ExprPtr Rhs = parseUnary();
    if (!Rhs)
      return nullptr;
    Lhs = std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs),
                                       Loc);
  }
  return Lhs;
}

ExprPtr Parser::parseUnary() {
  if (current().is(TokenKind::Minus)) {
    SourceLocation Loc = consume().Loc;
    ExprPtr Operand = parseUnary();
    if (!Operand)
      return nullptr;
    // Desugar -e to 0 - e.
    return std::make_unique<BinaryExpr>(
        BinaryOp::Sub, std::make_unique<IntLiteralExpr>(0, Loc),
        std::move(Operand), Loc);
  }
  return parsePostfix();
}

std::optional<MemberKind> Parser::parseMemberName() {
  if (current().is(TokenKind::KwProb)) {
    consume();
    return MemberKind::Prob;
  }
  if (current().isNot(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected member name after '.'");
    return std::nullopt;
  }
  std::string Name = consume().Text;
  if (Name == "start")
    return MemberKind::Start;
  if (Name == "end")
    return MemberKind::End;
  if (Name == "isstart")
    return MemberKind::IsStart;
  if (Name == "isend")
    return MemberKind::IsEnd;
  if (Name == "emission")
    return MemberKind::Emission;
  if (Name == "transitionsto")
    return MemberKind::TransitionsTo;
  if (Name == "transitionsfrom")
    return MemberKind::TransitionsFrom;
  Diags.error(current().Loc, "unknown member '" + Name + "'");
  return std::nullopt;
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  if (!E)
    return nullptr;
  while (true) {
    if (current().is(TokenKind::Dot)) {
      SourceLocation Loc = consume().Loc;
      std::optional<MemberKind> Member = parseMemberName();
      if (!Member)
        return nullptr;
      ExprPtr Arg;
      if (*Member == MemberKind::Emission) {
        if (!expect(TokenKind::LBracket, "after 'emission'"))
          return nullptr;
        Arg = parseExpr();
        if (!Arg || !expect(TokenKind::RBracket, "after emission index"))
          return nullptr;
      }
      E = std::make_unique<MemberExpr>(*Member, std::move(E), std::move(Arg),
                                       Loc);
      continue;
    }
    if (current().is(TokenKind::LBracket)) {
      // Only variable bases can be indexed (Var[Expr] in the grammar).
      auto *Var = dyn_cast<VarRefExpr>(E.get());
      if (!Var) {
        Diags.error(current().Loc,
                    "only named sequences and matrices can be indexed");
        return nullptr;
      }
      SourceLocation Loc = consume().Loc;
      ExprPtr First = parseExpr();
      if (!First)
        return nullptr;
      if (consumeIf(TokenKind::Comma)) {
        ExprPtr Second = parseExpr();
        if (!Second || !expect(TokenKind::RBracket, "after matrix indices"))
          return nullptr;
        E = std::make_unique<MatrixIndexExpr>(Var->Name, std::move(First),
                                              std::move(Second), Loc);
      } else {
        if (!expect(TokenKind::RBracket, "after sequence index"))
          return nullptr;
        E = std::make_unique<SeqIndexExpr>(Var->Name, std::move(First), Loc);
      }
      continue;
    }
    return E;
  }
}

ExprPtr Parser::parseReduction(ReductionKind Kind) {
  SourceLocation Loc = consume().Loc; // 'sum' | 'min' | 'max'.
  if (!expect(TokenKind::LParen, "after reduction keyword"))
    return nullptr;
  if (current().isNot(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected reduction variable name");
    return nullptr;
  }
  std::string Var = consume().Text;
  if (!expect(TokenKind::KwIn, "in reduction"))
    return nullptr;
  ExprPtr Domain = parseExpr();
  if (!Domain || !expect(TokenKind::Colon, "before reduction body"))
    return nullptr;
  ExprPtr Body = parseExpr();
  if (!Body || !expect(TokenKind::RParen, "to close the reduction"))
    return nullptr;
  return std::make_unique<ReductionExpr>(Kind, std::move(Var),
                                         std::move(Domain), std::move(Body),
                                         Loc);
}

ExprPtr Parser::parsePrimary() {
  switch (current().Kind) {
  case TokenKind::IntegerLiteral: {
    Token T = consume();
    return std::make_unique<IntLiteralExpr>(T.IntValue, T.Loc);
  }
  case TokenKind::FloatLiteral: {
    Token T = consume();
    return std::make_unique<FloatLiteralExpr>(T.FloatValue, T.Loc);
  }
  case TokenKind::CharLiteral: {
    Token T = consume();
    return std::make_unique<CharLiteralExpr>(T.CharValue, T.Loc);
  }
  case TokenKind::KwTrue: {
    Token T = consume();
    return std::make_unique<BoolLiteralExpr>(true, T.Loc);
  }
  case TokenKind::KwFalse: {
    Token T = consume();
    return std::make_unique<BoolLiteralExpr>(false, T.Loc);
  }
  case TokenKind::KwSum:
    return parseReduction(ReductionKind::Sum);
  case TokenKind::KwMin:
    return parseReduction(ReductionKind::Min);
  case TokenKind::KwMax:
    return parseReduction(ReductionKind::Max);
  case TokenKind::LParen: {
    consume();
    ExprPtr E = parseExpr();
    if (!E || !expect(TokenKind::RParen, "to close the parenthesis"))
      return nullptr;
    return E;
  }
  case TokenKind::Identifier: {
    Token T = consume();
    if (current().is(TokenKind::LParen)) {
      consume();
      std::vector<ExprPtr> Args;
      if (current().isNot(TokenKind::RParen)) {
        do {
          ExprPtr Arg = parseExpr();
          if (!Arg)
            return nullptr;
          Args.push_back(std::move(Arg));
        } while (consumeIf(TokenKind::Comma));
      }
      if (!expect(TokenKind::RParen, "to close the call"))
        return nullptr;
      return std::make_unique<CallExpr>(T.Text, std::move(Args), T.Loc);
    }
    return std::make_unique<VarRefExpr>(T.Text, T.Loc);
  }
  default:
    Diags.error(current().Loc, "expected an expression, found " +
                                   std::string(tokenKindName(
                                       current().Kind)));
    return nullptr;
  }
}
