//===- Sema.cpp - Semantic analysis of DSL functions ------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "lang/Sema.h"

#include <algorithm>
#include <map>

using namespace parrec;
using namespace parrec::lang;
using poly::AffineExpr;

int FunctionInfo::dimOfParam(unsigned ParamIndex) const {
  for (unsigned D = 0; D != Dims.size(); ++D)
    if (Dims[D].ParamIndex == ParamIndex)
      return static_cast<int>(D);
  return -1;
}

Sema::Sema(DiagnosticEngine &Diags, std::vector<std::string> KnownAlphabets)
    : Diags(Diags), KnownAlphabets(std::move(KnownAlphabets)) {}

bool Sema::isKnownAlphabet(const std::string &Name) const {
  if (Name == "*")
    return true;
  return std::find(KnownAlphabets.begin(), KnownAlphabets.end(), Name) !=
         KnownAlphabets.end();
}

/// Per-body state: the function being analysed and the reduction
/// variables in scope.
struct Sema::BodyContext {
  FunctionDecl *Function = nullptr;
  FunctionInfo *Info = nullptr;
  /// Reduction variables: name -> transition type.
  std::map<std::string, Type> ReductionVars;
  /// Depth of nested reductions, to detect reduction-scoped descent args.
  bool SawRecursiveCall = false;
};

bool Sema::checkParams(FunctionDecl &F, FunctionInfo &Info) {
  bool Ok = true;
  for (unsigned I = 0; I != F.Params.size(); ++I) {
    Param &P = F.Params[I];
    const Type &T = P.ParamType;

    // Duplicate names.
    for (unsigned J = 0; J != I; ++J)
      if (F.Params[J].Name == P.Name) {
        Diags.error(P.Loc, "duplicate parameter name '" + P.Name + "'");
        Ok = false;
      }

    if (!T.isCallingType() && !T.isRecursiveType()) {
      Diags.error(P.Loc, "parameter '" + P.Name + "' has type " + T.str() +
                             " which is neither a calling nor a recursive "
                             "type (Section 3.2)");
      Ok = false;
      continue;
    }

    switch (T.Kind) {
    case TypeKind::Seq:
    case TypeKind::Matrix:
      if (!isKnownAlphabet(T.AlphabetName)) {
        Diags.error(P.Loc, "unknown alphabet '" + T.AlphabetName + "'");
        Ok = false;
      }
      break;
    case TypeKind::Index: {
      // The referenced parameter must be an earlier seq parameter.
      int Ref = -1;
      for (unsigned J = 0; J != I; ++J)
        if (F.Params[J].Name == T.RefParam &&
            F.Params[J].ParamType.Kind == TypeKind::Seq)
          Ref = static_cast<int>(J);
      if (Ref < 0) {
        Diags.error(P.Loc, "index parameter '" + P.Name +
                               "' must reference a preceding seq "
                               "parameter; '" +
                               T.RefParam + "' is not one");
        Ok = false;
      }
      break;
    }
    case TypeKind::State:
    case TypeKind::Transition: {
      int Ref = -1;
      for (unsigned J = 0; J != I; ++J)
        if (F.Params[J].Name == T.RefParam &&
            F.Params[J].ParamType.Kind == TypeKind::Hmm)
          Ref = static_cast<int>(J);
      if (Ref < 0) {
        Diags.error(P.Loc, "parameter '" + P.Name +
                               "' must reference a preceding hmm "
                               "parameter; '" +
                               T.RefParam + "' is not one");
        Ok = false;
      }
      break;
    }
    default:
      break;
    }

    if (T.isRecursiveType()) {
      Info.RecursiveParams.push_back(I);
      DimInfo Dim;
      Dim.ParamIndex = I;
      Dim.Name = P.Name;
      Dim.RefParamIndex = -1;
      switch (T.Kind) {
      case TypeKind::Int:
        Dim.Kind = DimKind::IntDim;
        break;
      case TypeKind::Index:
        Dim.Kind = DimKind::IndexDim;
        break;
      case TypeKind::State:
        Dim.Kind = DimKind::StateDim;
        break;
      case TypeKind::Transition:
        Dim.Kind = DimKind::TransitionDim;
        break;
      default:
        Dim.Kind = DimKind::IntDim;
        break;
      }
      for (unsigned J = 0; J != I; ++J)
        if (F.Params[J].Name == T.RefParam)
          Dim.RefParamIndex = static_cast<int>(J);
      Info.Dims.push_back(std::move(Dim));
    }
  }

  if (Info.RecursiveParams.empty()) {
    Diags.error(F.Loc, "function '" + F.Name +
                           "' has no recursive parameters; nothing to "
                           "tabulate");
    Ok = false;
  }
  return Ok;
}

Type Sema::joinTypes(const Type &A, const Type &B, SourceLocation Loc) {
  if (A == B)
    return A;
  auto IsIntLike = [](const Type &T) {
    return T.Kind == TypeKind::Int || T.Kind == TypeKind::Index;
  };
  // Index and int join to int (an index is a natural number).
  if (IsIntLike(A) && IsIntLike(B))
    return Type::makeInt();
  // Numeric promotions: int < float < prob.
  auto Rank = [&](const Type &T) -> int {
    if (IsIntLike(T))
      return 0;
    if (T.Kind == TypeKind::Float)
      return 1;
    if (T.Kind == TypeKind::Prob)
      return 2;
    return -1;
  };
  int RA = Rank(A), RB = Rank(B);
  if (RA >= 0 && RB >= 0)
    return RA > RB ? A : B;
  Diags.error(Loc, "incompatible types " + A.str() + " and " + B.str());
  return Type();
}

Type Sema::checkExpr(Expr *E, BodyContext &Ctx) {
  FunctionDecl &F = *Ctx.Function;
  switch (E->getKind()) {
  case ExprKind::IntLiteral:
    return E->ExprType = Type::makeInt();
  case ExprKind::FloatLiteral:
    return E->ExprType = Type::makeFloat();
  case ExprKind::BoolLiteral:
    return E->ExprType = Type::makeBool();
  case ExprKind::CharLiteral:
    return E->ExprType = Type::makeChar("*");

  case ExprKind::VarRef: {
    auto *V = cast<VarRefExpr>(E);
    auto It = Ctx.ReductionVars.find(V->Name);
    if (It != Ctx.ReductionVars.end()) {
      V->ParamIndex = -1;
      return E->ExprType = It->second;
    }
    for (unsigned I = 0; I != F.Params.size(); ++I)
      if (F.Params[I].Name == V->Name) {
        V->ParamIndex = static_cast<int>(I);
        return E->ExprType = F.Params[I].ParamType;
      }
    Diags.error(E->getLoc(), "unknown variable '" + V->Name + "'");
    return E->ExprType = Type();
  }

  case ExprKind::Binary: {
    auto *B = cast<BinaryExpr>(E);
    Type L = checkExpr(B->Lhs.get(), Ctx);
    Type R = checkExpr(B->Rhs.get(), Ctx);
    if (!L.isValid() || !R.isValid())
      return E->ExprType = Type();
    switch (B->Op) {
    case BinaryOp::Lt:
    case BinaryOp::Gt:
    case BinaryOp::Le:
    case BinaryOp::Ge: {
      Type J = joinTypes(L, R, E->getLoc());
      if (!J.isValid())
        return E->ExprType = Type();
      if (!J.isNumeric() && J.Kind != TypeKind::Index) {
        Diags.error(E->getLoc(), "ordered comparison requires numeric "
                                 "operands, got " +
                                     J.str());
        return E->ExprType = Type();
      }
      return E->ExprType = Type::makeBool();
    }
    case BinaryOp::Eq:
    case BinaryOp::Ne: {
      // Equality also covers characters (Figure 7: s[i-1] == t[j-1]).
      bool BothChars =
          L.Kind == TypeKind::Char && R.Kind == TypeKind::Char;
      if (!BothChars) {
        Type J = joinTypes(L, R, E->getLoc());
        if (!J.isValid())
          return E->ExprType = Type();
      }
      return E->ExprType = Type::makeBool();
    }
    case BinaryOp::Add:
    case BinaryOp::Sub: {
      // index +- int stays an index (used in descent expressions).
      if (L.Kind == TypeKind::Index &&
          (R.Kind == TypeKind::Int))
        return E->ExprType = L;
      if (R.Kind == TypeKind::Index && L.Kind == TypeKind::Int &&
          B->Op == BinaryOp::Add)
        return E->ExprType = R;
      Type J = joinTypes(L, R, E->getLoc());
      if (J.isValid() && !J.isNumeric() && J.Kind != TypeKind::Index) {
        Diags.error(E->getLoc(),
                    "arithmetic requires numeric operands, got " + J.str());
        return E->ExprType = Type();
      }
      return E->ExprType = J;
    }
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Min:
    case BinaryOp::Max: {
      Type J = joinTypes(L, R, E->getLoc());
      if (J.isValid() && !J.isNumeric() && J.Kind != TypeKind::Index) {
        Diags.error(E->getLoc(),
                    "arithmetic requires numeric operands, got " + J.str());
        return E->ExprType = Type();
      }
      return E->ExprType = J;
    }
    }
    return E->ExprType = Type();
  }

  case ExprKind::If: {
    auto *I = cast<IfExpr>(E);
    Type C = checkExpr(I->Condition.get(), Ctx);
    if (C.isValid() && C.Kind != TypeKind::Bool)
      Diags.error(I->Condition->getLoc(),
                  "if condition must be bool, got " + C.str());
    Type T = checkExpr(I->ThenExpr.get(), Ctx);
    Type F2 = checkExpr(I->ElseExpr.get(), Ctx);
    if (!T.isValid() || !F2.isValid())
      return E->ExprType = Type();
    return E->ExprType = joinTypes(T, F2, E->getLoc());
  }

  case ExprKind::Call: {
    auto *C = cast<CallExpr>(E);
    Ctx.SawRecursiveCall = true;
    if (C->Callee != F.Name) {
      Diags.error(E->getLoc(),
                  "call to '" + C->Callee +
                      "': only single self-recursive functions are "
                      "supported (no mutual recursion; Section 3.1)");
      return E->ExprType = Type();
    }
    FunctionInfo &Info = *Ctx.Info;
    if (C->Args.size() != Info.RecursiveParams.size()) {
      Diags.error(E->getLoc(),
                  "recursive call passes " +
                      std::to_string(C->Args.size()) + " arguments; '" +
                      F.Name + "' has " +
                      std::to_string(Info.RecursiveParams.size()) +
                      " recursive parameters");
      return E->ExprType = Type();
    }
    for (unsigned I = 0; I != C->Args.size(); ++I) {
      Type ArgType = checkExpr(C->Args[I].get(), Ctx);
      const Type &Expected =
          F.Params[Info.RecursiveParams[I]].ParamType;
      if (!ArgType.isValid())
        continue;
      bool Compatible = ArgType == Expected;
      if (!Compatible) {
        // Int literals/expressions are acceptable where indices are
        // expected and vice versa; state expressions where states are.
        auto IsIntLike = [](const Type &T) {
          return T.Kind == TypeKind::Int || T.Kind == TypeKind::Index;
        };
        if (IsIntLike(ArgType) && IsIntLike(Expected))
          Compatible = true;
        if (ArgType.Kind == TypeKind::State &&
            Expected.Kind == TypeKind::State)
          Compatible = true;
      }
      if (!Compatible)
        Diags.error(C->Args[I]->getLoc(),
                    "recursive argument " + std::to_string(I + 1) +
                        " has type " + ArgType.str() + "; expected " +
                        Expected.str());
    }
    return E->ExprType = F.ReturnType;
  }

  case ExprKind::SeqIndex: {
    auto *S = cast<SeqIndexExpr>(E);
    int SeqParam = -1;
    for (unsigned I = 0; I != F.Params.size(); ++I)
      if (F.Params[I].Name == S->SeqName) {
        SeqParam = static_cast<int>(I);
        break;
      }
    if (SeqParam < 0 ||
        F.Params[SeqParam].ParamType.Kind != TypeKind::Seq) {
      Diags.error(E->getLoc(),
                  "'" + S->SeqName + "' is not a sequence parameter");
      return E->ExprType = Type();
    }
    S->SeqParamIndex = SeqParam;
    Type IndexType = checkExpr(S->Index.get(), Ctx);
    if (IndexType.isValid() && IndexType.Kind != TypeKind::Int &&
        IndexType.Kind != TypeKind::Index)
      Diags.error(S->Index->getLoc(),
                  "sequence index must be an integer, got " +
                      IndexType.str());
    return E->ExprType =
               Type::makeChar(F.Params[SeqParam].ParamType.AlphabetName);
  }

  case ExprKind::MatrixIndex: {
    auto *M = cast<MatrixIndexExpr>(E);
    int MatrixParam = -1;
    for (unsigned I = 0; I != F.Params.size(); ++I)
      if (F.Params[I].Name == M->MatrixName) {
        MatrixParam = static_cast<int>(I);
        break;
      }
    if (MatrixParam < 0 ||
        F.Params[MatrixParam].ParamType.Kind != TypeKind::Matrix) {
      Diags.error(E->getLoc(),
                  "'" + M->MatrixName + "' is not a matrix parameter");
      return E->ExprType = Type();
    }
    M->MatrixParamIndex = MatrixParam;
    Type RowType = checkExpr(M->Row.get(), Ctx);
    Type ColType = checkExpr(M->Col.get(), Ctx);
    for (const Type *T : {&RowType, &ColType})
      if (T->isValid() && T->Kind != TypeKind::Char)
        Diags.error(E->getLoc(), "matrix lookups take characters, got " +
                                     T->str());
    return E->ExprType = Type::makeInt();
  }

  case ExprKind::Member: {
    auto *M = cast<MemberExpr>(E);
    Type BaseType = checkExpr(M->Base.get(), Ctx);
    if (!BaseType.isValid())
      return E->ExprType = Type();
    switch (M->Member) {
    case MemberKind::Start:
    case MemberKind::End:
      if (BaseType.Kind != TypeKind::Transition) {
        Diags.error(E->getLoc(), ".start/.end require a transition, got " +
                                     BaseType.str());
        return E->ExprType = Type();
      }
      return E->ExprType = Type::makeState(BaseType.RefParam);
    case MemberKind::Prob:
      if (BaseType.Kind != TypeKind::Transition) {
        Diags.error(E->getLoc(),
                    ".prob requires a transition, got " + BaseType.str());
        return E->ExprType = Type();
      }
      return E->ExprType = Type::makeProb();
    case MemberKind::IsStart:
    case MemberKind::IsEnd:
      if (BaseType.Kind != TypeKind::State) {
        Diags.error(E->getLoc(),
                    ".isstart/.isend require a state, got " +
                        BaseType.str());
        return E->ExprType = Type();
      }
      return E->ExprType = Type::makeBool();
    case MemberKind::Emission: {
      if (BaseType.Kind != TypeKind::State) {
        Diags.error(E->getLoc(),
                    ".emission requires a state, got " + BaseType.str());
        return E->ExprType = Type();
      }
      Type ArgType = checkExpr(M->Arg.get(), Ctx);
      if (ArgType.isValid() && ArgType.Kind != TypeKind::Char)
        Diags.error(M->Arg->getLoc(),
                    "emission lookups take a character, got " +
                        ArgType.str());
      return E->ExprType = Type::makeProb();
    }
    case MemberKind::TransitionsTo:
    case MemberKind::TransitionsFrom:
      if (BaseType.Kind != TypeKind::State) {
        Diags.error(E->getLoc(),
                    ".transitionsto/.transitionsfrom require a state, "
                    "got " +
                        BaseType.str());
        return E->ExprType = Type();
      }
      return E->ExprType = Type::makeTransitionSet(BaseType.RefParam);
    }
    return E->ExprType = Type();
  }

  case ExprKind::Reduction: {
    auto *R = cast<ReductionExpr>(E);
    Type DomainType = checkExpr(R->Domain.get(), Ctx);
    if (DomainType.isValid() &&
        DomainType.Kind != TypeKind::TransitionSet) {
      Diags.error(R->Domain->getLoc(),
                  "reductions iterate over transition sets, got " +
                      DomainType.str());
      return E->ExprType = Type();
    }
    if (Ctx.ReductionVars.count(R->VarName)) {
      Diags.error(E->getLoc(),
                  "reduction variable '" + R->VarName + "' shadows an "
                  "enclosing reduction variable");
      return E->ExprType = Type();
    }
    Ctx.ReductionVars.emplace(R->VarName,
                              Type::makeTransition(DomainType.RefParam));
    Type BodyType = checkExpr(R->Body.get(), Ctx);
    Ctx.ReductionVars.erase(R->VarName);
    if (BodyType.isValid() && !BodyType.isNumeric()) {
      Diags.error(R->Body->getLoc(),
                  "reduction body must be numeric, got " + BodyType.str());
      return E->ExprType = Type();
    }
    return E->ExprType = BodyType;
  }
  }
  return E->ExprType = Type();
}

std::optional<AffineExpr>
Sema::extractAffinePart(const Expr *E, const FunctionInfo &Info) {
  unsigned N = Info.numDims();
  switch (E->getKind()) {
  case ExprKind::IntLiteral:
    return AffineExpr::constant(N, cast<IntLiteralExpr>(E)->Value);
  case ExprKind::VarRef: {
    const auto *V = cast<VarRefExpr>(E);
    if (V->ParamIndex < 0)
      return std::nullopt; // Reduction variable: not affine in the dims.
    int Dim = Info.dimOfParam(static_cast<unsigned>(V->ParamIndex));
    if (Dim < 0)
      return std::nullopt; // A calling parameter, not a recursion dim.
    return AffineExpr::dim(N, static_cast<unsigned>(Dim));
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    std::optional<AffineExpr> L = extractAffinePart(B->Lhs.get(), Info);
    std::optional<AffineExpr> R = extractAffinePart(B->Rhs.get(), Info);
    if (!L || !R)
      return std::nullopt;
    switch (B->Op) {
    case BinaryOp::Add:
      return *L + *R;
    case BinaryOp::Sub:
      return *L - *R;
    case BinaryOp::Mul:
      if (L->isConstant())
        return *R * L->constantTerm();
      if (R->isConstant())
        return *L * R->constantTerm();
      return std::nullopt;
    default:
      return std::nullopt;
    }
  }
  default:
    return std::nullopt;
  }
}

std::optional<Sema::DescentComponent>
Sema::extractDescent(const Expr *E, const FunctionInfo &Info,
                     const BodyContext &Ctx, unsigned TargetDim) {
  // A state argument produced from a reduction variable's transition
  // (t.start / t.end) ranges over every state: a free dimension
  // (Section 5.2's analysis of the forward algorithm).
  if (const auto *M = dyn_cast<MemberExpr>(E)) {
    if (M->Member == MemberKind::Start || M->Member == MemberKind::End) {
      DescentComponent C;
      C.Free = true;
      C.Affine = AffineExpr::dim(Info.numDims(), TargetDim);
      return C;
    }
  }
  std::optional<AffineExpr> Affine = extractAffinePart(E, Info);
  if (!Affine)
    return std::nullopt;
  DescentComponent C;
  C.Affine = std::move(*Affine);
  return C;
}

std::optional<FunctionInfo> Sema::analyze(FunctionDecl &F) {
  std::optional<FunctionInfo> Info = analyzeTypes(F);
  if (!Info)
    return std::nullopt;
  if (!analyzeDependence(F, *Info))
    return std::nullopt;
  return Info;
}

std::optional<FunctionInfo> Sema::analyzeTypes(FunctionDecl &F) {
  // Instrumented by the "sema" pass wrapper (compiler/).
  FunctionInfo Info;
  Info.Decl = &F;

  switch (F.ReturnType.Kind) {
  case TypeKind::Int:
  case TypeKind::Float:
  case TypeKind::Prob:
  case TypeKind::Bool:
    break;
  default:
    Diags.error(F.Loc, "function '" + F.Name + "' must return int, "
                       "float, prob or bool; got " +
                           F.ReturnType.str());
    return std::nullopt;
  }

  if (!checkParams(F, Info))
    return std::nullopt;

  BodyContext Ctx;
  Ctx.Function = &F;
  Ctx.Info = &Info;
  Type BodyType = checkExpr(F.Body.get(), Ctx);
  if (Diags.hasErrors())
    return std::nullopt;
  if (BodyType.isValid()) {
    Type J = joinTypes(BodyType, F.ReturnType, F.Loc);
    if (!J.isValid())
      return std::nullopt;
  }

  Info.Recurrence.Name = F.Name;
  for (const DimInfo &Dim : Info.Dims)
    Info.Recurrence.DimNames.push_back(Dim.Name);

  F.RecursiveParams = Info.RecursiveParams;
  return Info;
}

bool Sema::analyzeDependence(FunctionDecl &F, FunctionInfo &Info) {
  // Instrumented by the "dependence" pass wrapper (compiler/). Collect
  // the descent functions of every recursive call (Section 4.4: no
  // branch analysis — every call site contributes dependencies).
  Info.Recurrence.Calls.clear();
  BodyContext Ctx;
  Ctx.Function = &F;
  Ctx.Info = &Info;
  bool DescentsOk = true;
  std::vector<const CallExpr *> Calls;
  // Walk the body collecting calls.
  std::vector<const Expr *> Stack = {F.Body.get()};
  while (!Stack.empty()) {
    const Expr *E = Stack.back();
    Stack.pop_back();
    switch (E->getKind()) {
    case ExprKind::Call:
      Calls.push_back(cast<CallExpr>(E));
      for (const ExprPtr &A : cast<CallExpr>(E)->Args)
        Stack.push_back(A.get());
      break;
    case ExprKind::Binary:
      Stack.push_back(cast<BinaryExpr>(E)->Lhs.get());
      Stack.push_back(cast<BinaryExpr>(E)->Rhs.get());
      break;
    case ExprKind::If:
      Stack.push_back(cast<IfExpr>(E)->Condition.get());
      Stack.push_back(cast<IfExpr>(E)->ThenExpr.get());
      Stack.push_back(cast<IfExpr>(E)->ElseExpr.get());
      break;
    case ExprKind::SeqIndex:
      Stack.push_back(cast<SeqIndexExpr>(E)->Index.get());
      break;
    case ExprKind::MatrixIndex:
      Stack.push_back(cast<MatrixIndexExpr>(E)->Row.get());
      Stack.push_back(cast<MatrixIndexExpr>(E)->Col.get());
      break;
    case ExprKind::Member:
      Stack.push_back(cast<MemberExpr>(E)->Base.get());
      if (cast<MemberExpr>(E)->Arg)
        Stack.push_back(cast<MemberExpr>(E)->Arg.get());
      break;
    case ExprKind::Reduction:
      Stack.push_back(cast<ReductionExpr>(E)->Domain.get());
      Stack.push_back(cast<ReductionExpr>(E)->Body.get());
      break;
    default:
      break;
    }
  }
  // Restore source order (the stack walk reverses it) for stable output.
  std::reverse(Calls.begin(), Calls.end());

  for (const CallExpr *Call : Calls) {
    if (Call->Args.size() != Info.Dims.size())
      continue; // Already diagnosed during type checking.
    solver::DescentFunction Descent;
    Descent.Components.resize(Info.Dims.size());
    Descent.FreeDims.assign(Info.Dims.size(), false);
    for (unsigned I = 0; I != Call->Args.size(); ++I) {
      std::optional<DescentComponent> C =
          extractDescent(Call->Args[I].get(), Info, Ctx, I);
      if (!C) {
        Diags.error(Call->Args[I]->getLoc(),
                    "recursive argument '" + Call->Args[I]->str() +
                        "' is not an affine function of the recursive "
                        "parameters (Section 3.1 restriction)");
        DescentsOk = false;
        break;
      }
      Descent.Components[I] = std::move(C->Affine);
      Descent.FreeDims[I] = C->Free;
    }
    if (DescentsOk)
      Info.Recurrence.Calls.push_back(std::move(Descent));
  }
  return DescentsOk;
}
