//===- Sema.h - Semantic analysis of DSL functions ----------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis: type checking over the Section 3.2 type system,
/// enforcement of the calling/recursive parameter classifications, the
/// single-recursion restriction, and extraction of the affine descent
/// functions that feed the schedule synthesiser (Section 4.4).
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_LANG_SEMA_H
#define PARREC_LANG_SEMA_H

#include "lang/AST.h"
#include "solver/Recurrence.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string>
#include <vector>

namespace parrec {
namespace lang {

/// What a recursion dimension ranges over; determines how the runtime
/// sizes the domain box.
enum class DimKind {
  IntDim,        // [0, initial value].
  IndexDim,      // [0, length of the referenced sequence].
  StateDim,      // [0, number of HMM states - 1].
  TransitionDim, // [0, number of HMM transitions - 1].
};

/// One recursion dimension: the parameter it comes from and, for
/// index/state/transition dimensions, the calling parameter (sequence or
/// HMM) whose size bounds it.
struct DimInfo {
  DimKind Kind;
  unsigned ParamIndex;  // The recursive parameter.
  int RefParamIndex;    // Sequence/HMM parameter, or -1 for IntDim.
  std::string Name;     // Parameter name, used in diagnostics and output.
};

/// The result of analysing one function: annotated AST plus everything
/// the schedule synthesiser and the runtime need.
struct FunctionInfo {
  const FunctionDecl *Decl = nullptr;

  /// Indices of the recursive parameters in declaration order — the
  /// recursion's dimensions.
  std::vector<unsigned> RecursiveParams;
  std::vector<DimInfo> Dims;

  /// The analysis view consumed by solver::buildCriteria and friends.
  solver::RecurrenceSpec Recurrence;

  unsigned numDims() const {
    return static_cast<unsigned>(Dims.size());
  }

  /// Maps a recursive parameter index to its dimension number, or -1.
  int dimOfParam(unsigned ParamIndex) const;
};

/// Performs semantic analysis of function declarations.
class Sema {
public:
  /// \p KnownAlphabets lists alphabet names usable in seq/char/matrix
  /// types (builtins plus script-declared ones).
  Sema(DiagnosticEngine &Diags, std::vector<std::string> KnownAlphabets);

  /// Analyses \p F, annotating expression types in place. Returns the
  /// function summary, or nullopt after reporting errors. Equivalent to
  /// analyzeTypes followed by analyzeDependence — the compiler pipeline
  /// runs the two halves as separate passes ("sema", "dependence").
  std::optional<FunctionInfo> analyze(FunctionDecl &F);

  /// The type-checking half: parameter classification, body typing, and
  /// the recursion's name/dimension summary. Leaves Recurrence.Calls
  /// empty.
  std::optional<FunctionInfo> analyzeTypes(FunctionDecl &F);

  /// The dependence half (Section 4.4): collects every recursive call
  /// site and extracts its affine descent function into
  /// \p Info.Recurrence.Calls. Requires \p F to have passed analyzeTypes.
  bool analyzeDependence(FunctionDecl &F, FunctionInfo &Info);

private:
  DiagnosticEngine &Diags;
  std::vector<std::string> KnownAlphabets;

  bool isKnownAlphabet(const std::string &Name) const;
  bool checkParams(FunctionDecl &F, FunctionInfo &Info);

  struct BodyContext;
  Type checkExpr(Expr *E, BodyContext &Ctx);
  Type joinTypes(const Type &A, const Type &B, SourceLocation Loc);

  /// Extracts an affine descent component over the recursion dimensions,
  /// or marks the dimension free (HMM reductions), or fails.
  struct DescentComponent {
    poly::AffineExpr Affine;
    bool Free = false;
  };
  std::optional<DescentComponent>
  extractDescent(const Expr *E, const FunctionInfo &Info,
                 const BodyContext &Ctx, unsigned TargetDim);
  std::optional<poly::AffineExpr>
  extractAffinePart(const Expr *E, const FunctionInfo &Info);
};

} // namespace lang
} // namespace parrec

#endif // PARREC_LANG_SEMA_H
