//===- Parser.h - Recursive-descent parser for the DSL ------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses scripts in the host language: recursive function definitions
/// over the expression grammar of Figure 6, plus the statement layer
/// (alphabet/matrix/HMM definitions, loads, print and map) described in
/// Sections 3 and 5.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_LANG_PARSER_H
#define PARREC_LANG_PARSER_H

#include "lang/AST.h"
#include "lang/Lexer.h"

#include <optional>

namespace parrec {
namespace lang {

/// Recursive-descent parser. Errors are reported to the diagnostics
/// engine; parsing continues where reasonable so multiple errors surface
/// in one pass.
class Parser {
public:
  Parser(std::string_view Source, DiagnosticEngine &Diags);

  /// Parses a whole script. On error the returned script contains the
  /// statements parsed so far; check Diags.
  Script parseScript();

  /// Parses a single expression (used by tests and the REPL-style API).
  ExprPtr parseExpressionOnly();

  /// Parses a single function definition.
  std::unique_ptr<FunctionDecl> parseFunctionOnly();

private:
  std::vector<Token> Tokens;
  size_t Pos = 0;
  DiagnosticEngine &Diags;

  const Token &current() const { return Tokens[Pos]; }
  const Token &peekAhead(unsigned Ahead) const;
  Token consume();
  bool consumeIf(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  void skipToStatementStart();

  // Statements.
  std::optional<Stmt> parseStatement();
  std::optional<Stmt> parseAlphabetStmt();
  std::optional<Stmt> parsePrintOrMapStmt(bool IsMap);
  std::optional<Stmt> parseDeclarationOrFunction();
  std::optional<Stmt> parseHmmStmt();

  // Functions.
  std::unique_ptr<FunctionDecl> parseFunctionTail(Type ReturnType,
                                                  std::string Name,
                                                  SourceLocation Loc);
  std::optional<Type> parseTypeSpec();
  std::optional<std::string> parseAlphabetRef();

  // Expressions (precedence climbing).
  ExprPtr parseExpr();
  ExprPtr parseIfExpr();
  ExprPtr parseCompare();
  ExprPtr parseMinMax();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();
  ExprPtr parseReduction(ReductionKind Kind);
  std::optional<MemberKind> parseMemberName();
};

} // namespace lang
} // namespace parrec

#endif // PARREC_LANG_PARSER_H
