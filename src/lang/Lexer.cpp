//===- Lexer.cpp - DSL tokenizer -------------------------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace parrec;
using namespace parrec::lang;

const char *parrec::lang::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::EndOfFile:
    return "end of file";
  case TokenKind::Error:
    return "invalid token";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntegerLiteral:
    return "integer literal";
  case TokenKind::FloatLiteral:
    return "float literal";
  case TokenKind::StringLiteral:
    return "string literal";
  case TokenKind::CharLiteral:
    return "character literal";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwThen:
    return "'then'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwMin:
    return "'min'";
  case TokenKind::KwMax:
    return "'max'";
  case TokenKind::KwSum:
    return "'sum'";
  case TokenKind::KwIn:
    return "'in'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwFloat:
    return "'float'";
  case TokenKind::KwProb:
    return "'prob'";
  case TokenKind::KwBool:
    return "'bool'";
  case TokenKind::KwChar:
    return "'char'";
  case TokenKind::KwSeq:
    return "'seq'";
  case TokenKind::KwIndex:
    return "'index'";
  case TokenKind::KwMatrix:
    return "'matrix'";
  case TokenKind::KwHmm:
    return "'hmm'";
  case TokenKind::KwState:
    return "'state'";
  case TokenKind::KwTransition:
    return "'transition'";
  case TokenKind::KwAlphabet:
    return "'alphabet'";
  case TokenKind::KwPrint:
    return "'print'";
  case TokenKind::KwMap:
    return "'map'";
  case TokenKind::KwLoad:
    return "'load'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::EqualEqual:
    return "'=='";
  case TokenKind::NotEqual:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::LessEqual:
    return "'<='";
  case TokenKind::GreaterEqual:
    return "'>='";
  case TokenKind::Arrow:
    return "'->'";
  }
  return "unknown";
}

Lexer::Lexer(std::string_view Source, DiagnosticEngine &Diags)
    : Source(Source), Diags(Diags) {}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

void Lexer::skipTrivia() {
  while (!atEnd()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '#' || (C == '/' && peek(1) == '/')) {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, SourceLocation Loc, size_t Begin) {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  T.Text = std::string(Source.substr(Begin, Pos - Begin));
  return T;
}

Token Lexer::lexNumber(SourceLocation Loc) {
  size_t Begin = Pos;
  while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
    advance();
  bool IsFloat = false;
  if (!atEnd() && peek() == '.' &&
      std::isdigit(static_cast<unsigned char>(peek(1)))) {
    IsFloat = true;
    advance();
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
      advance();
  }
  if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
    size_t Save = Pos;
    advance();
    if (peek() == '+' || peek() == '-')
      advance();
    if (std::isdigit(static_cast<unsigned char>(peek()))) {
      IsFloat = true;
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        advance();
    } else {
      Pos = Save; // Not an exponent after all.
    }
  }
  Token T = makeToken(
      IsFloat ? TokenKind::FloatLiteral : TokenKind::IntegerLiteral, Loc,
      Begin);
  if (IsFloat)
    T.FloatValue = std::strtod(T.Text.c_str(), nullptr);
  else
    T.IntValue = std::strtoll(T.Text.c_str(), nullptr, 10);
  return T;
}

Token Lexer::lexIdentifier(SourceLocation Loc) {
  static const std::unordered_map<std::string_view, TokenKind> Keywords = {
      {"if", TokenKind::KwIf},
      {"then", TokenKind::KwThen},
      {"else", TokenKind::KwElse},
      {"min", TokenKind::KwMin},
      {"max", TokenKind::KwMax},
      {"sum", TokenKind::KwSum},
      {"in", TokenKind::KwIn},
      {"int", TokenKind::KwInt},
      {"float", TokenKind::KwFloat},
      {"prob", TokenKind::KwProb},
      {"bool", TokenKind::KwBool},
      {"char", TokenKind::KwChar},
      {"seq", TokenKind::KwSeq},
      {"index", TokenKind::KwIndex},
      {"matrix", TokenKind::KwMatrix},
      {"hmm", TokenKind::KwHmm},
      {"state", TokenKind::KwState},
      {"transition", TokenKind::KwTransition},
      {"alphabet", TokenKind::KwAlphabet},
      {"print", TokenKind::KwPrint},
      {"map", TokenKind::KwMap},
      {"load", TokenKind::KwLoad},
      {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},
  };
  size_t Begin = Pos;
  while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                      peek() == '_'))
    advance();
  Token T = makeToken(TokenKind::Identifier, Loc, Begin);
  auto It = Keywords.find(T.Text);
  if (It != Keywords.end())
    T.Kind = It->second;
  return T;
}

Token Lexer::lexString(SourceLocation Loc) {
  advance(); // Opening quote.
  std::string Value;
  while (!atEnd() && peek() != '"') {
    char C = advance();
    if (C == '\\' && !atEnd()) {
      char Escaped = advance();
      switch (Escaped) {
      case 'n':
        Value += '\n';
        break;
      case 't':
        Value += '\t';
        break;
      default:
        Value += Escaped;
        break;
      }
    } else {
      Value += C;
    }
  }
  if (atEnd()) {
    Diags.error(Loc, "unterminated string literal");
    Token T;
    T.Kind = TokenKind::Error;
    T.Loc = Loc;
    return T;
  }
  advance(); // Closing quote.
  Token T;
  T.Kind = TokenKind::StringLiteral;
  T.Loc = Loc;
  T.Text = Value;
  return T;
}

Token Lexer::lexChar(SourceLocation Loc) {
  advance(); // Opening quote.
  if (atEnd()) {
    Diags.error(Loc, "unterminated character literal");
    Token T;
    T.Kind = TokenKind::Error;
    T.Loc = Loc;
    return T;
  }
  char Value = advance();
  if (Value == '\\' && !atEnd()) {
    char Escaped = advance();
    Value = Escaped == 'n' ? '\n' : Escaped == 't' ? '\t' : Escaped;
  }
  if (atEnd() || peek() != '\'') {
    Diags.error(Loc, "unterminated character literal");
    Token T;
    T.Kind = TokenKind::Error;
    T.Loc = Loc;
    return T;
  }
  advance(); // Closing quote.
  Token T;
  T.Kind = TokenKind::CharLiteral;
  T.Loc = Loc;
  T.Text = std::string(1, Value);
  T.CharValue = Value;
  return T;
}

Token Lexer::lex() {
  skipTrivia();
  SourceLocation Loc = location();
  if (atEnd()) {
    Token T;
    T.Kind = TokenKind::EndOfFile;
    T.Loc = Loc;
    return T;
  }
  char C = peek();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(Loc);
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifier(Loc);
  if (C == '"')
    return lexString(Loc);
  if (C == '\'')
    return lexChar(Loc);

  size_t Begin = Pos;
  advance();
  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen, Loc, Begin);
  case ')':
    return makeToken(TokenKind::RParen, Loc, Begin);
  case '[':
    return makeToken(TokenKind::LBracket, Loc, Begin);
  case ']':
    return makeToken(TokenKind::RBracket, Loc, Begin);
  case '{':
    return makeToken(TokenKind::LBrace, Loc, Begin);
  case '}':
    return makeToken(TokenKind::RBrace, Loc, Begin);
  case ',':
    return makeToken(TokenKind::Comma, Loc, Begin);
  case ':':
    return makeToken(TokenKind::Colon, Loc, Begin);
  case ';':
    return makeToken(TokenKind::Semicolon, Loc, Begin);
  case '.':
    return makeToken(TokenKind::Dot, Loc, Begin);
  case '*':
    return makeToken(TokenKind::Star, Loc, Begin);
  case '+':
    return makeToken(TokenKind::Plus, Loc, Begin);
  case '/':
    return makeToken(TokenKind::Slash, Loc, Begin);
  case '-':
    if (peek() == '>') {
      advance();
      return makeToken(TokenKind::Arrow, Loc, Begin);
    }
    return makeToken(TokenKind::Minus, Loc, Begin);
  case '=':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::EqualEqual, Loc, Begin);
    }
    return makeToken(TokenKind::Assign, Loc, Begin);
  case '!':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::NotEqual, Loc, Begin);
    }
    break;
  case '<':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::LessEqual, Loc, Begin);
    }
    return makeToken(TokenKind::Less, Loc, Begin);
  case '>':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::GreaterEqual, Loc, Begin);
    }
    return makeToken(TokenKind::Greater, Loc, Begin);
  default:
    break;
  }
  Diags.error(Loc, std::string("unexpected character '") + C + "'");
  Token T = makeToken(TokenKind::Error, Loc, Begin);
  return T;
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Tokens.push_back(lex());
    if (Tokens.back().is(TokenKind::EndOfFile))
      return Tokens;
  }
}
