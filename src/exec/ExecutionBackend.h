//===- ExecutionBackend.h - Pluggable plan executors --------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution stage of the pipeline: backends consume an immutable
/// ExecutablePlan plus a bound Evaluator and produce a RunResult. The
/// serial CPU reference and the simulated GPU (lockstep block, barrier
/// between partitions, shared-vs-global table residency) are the two
/// built-in backends; new targets plug in behind the same interface.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_EXEC_EXECUTIONBACKEND_H
#define PARREC_EXEC_EXECUTIONBACKEND_H

#include "codegen/Evaluator.h"
#include "exec/Plan.h"
#include "gpu/Device.h"

#include <cassert>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

namespace parrec {
namespace exec {

/// Which cell evaluator executes the scan. Ast is the tree-walking
/// oracle, Vm the bytecode interpreter, Jit the natively compiled kernel
/// (NativeJit.h). All three are bit-identical in every observable; they
/// differ only in host wall-clock speed. Jit silently degrades to Vm
/// when the plan carries no kernel (unsupported shape, missing host
/// compiler — the planner already warned and counted the fallback).
enum class EvalKind { Ast, Vm, Jit };

/// Options controlling one execution.
struct RunOptions {
  /// Use the Section 4.8 sliding-window table when the schedule permits.
  bool UseSlidingWindow = true;
  /// Threads per block; 0 means "one per multiprocessor core".
  unsigned Threads = 0;
  /// Host worker threads simulating independent multiprocessors in a
  /// batch; 0 means "one per hardware thread". Results are bit-identical
  /// regardless of the worker count — problems are independent by
  /// construction.
  unsigned BatchWorkers = 0;
  /// Host worker threads for one problem's partition scan: contiguous
  /// ranges of simulated-thread IDs run on real threads (the wavefront
  /// is independent within a partition, Sections 4.2–4.3), with a
  /// deterministic per-partition merge. 0 means "share the host worker
  /// budget" (runGpuBatch divides it by the resolved batch worker count
  /// so batch x scan nesting never oversubscribes); 1 is the serial
  /// path. Results, modelled cycles, metrics, and timelines are
  /// bit-identical for every worker count.
  unsigned ScanWorkers = 0;
  /// Minimum merged cell count of the previous partition for the next
  /// one to be fanned out; smaller partitions (short diagonals) run on
  /// worker 0 alone, skipping two barrier crossings. Runs whose whole
  /// domain is below 4x this threshold stay entirely serial. Affects
  /// scheduling only, never results.
  uint64_t ScanGrainCells = 256;
  /// Override the automatically derived schedule (must be valid).
  std::optional<solver::Schedule> ForcedSchedule;
  /// Keep the full DP table alive in RunResult::Table so arbitrary
  /// cells can be read afterwards (forces full tabulation — useful for
  /// recursions whose interesting value is not at the root corner, e.g.
  /// the backward algorithm's B(start, 0)).
  bool KeepTable = false;
  /// Evaluate cells with the AST tree-walker even when the plan carries a
  /// compiled bytecode program — the differential-testing oracle. The
  /// ParRec_EVAL_AST environment variable forces this globally.
  /// Equivalent to Evaluator = EvalKind::Ast; kept for callers predating
  /// the three-way knob. Either one forces the AST walker.
  bool UseAstEvaluator = false;
  /// The cell evaluator (`parrec run --evaluator=ast|vm|jit`). Jit makes
  /// planning run the native JIT pass and execution dispatch the
  /// compiled kernel; Ast is the oracle; Vm is the default.
  EvalKind Evaluator = EvalKind::Vm;
  /// JIT disk-cache directory override (`--jit-cache-dir=`); empty
  /// resolves to $ParRec_JIT_CACHE then ~/.cache/parrec-jit.
  std::string JitCacheDir;
  /// Run the cost-model schedule autotuner when planning: candidate
  /// schedules / window choices / thread counts are scored with the
  /// simulator's modelled cycles and the winner is cached on the plan.
  /// Never changes results, only the modelled timing. Off until proven.
  bool Autotune = false;
  /// Collect the per-partition timeline into RunResult::Timeline (and,
  /// when the global tracer is on, emit device-lane trace slices).
  /// Implied by an enabled obs::Tracer; never changes results, only
  /// records how they were reached.
  bool Trace = false;
  /// Trace flow id (the serving engine's RequestId): when non-zero and
  /// tracing is on, the exec.scan span finishes this flow so the
  /// request's serve-side slices link to the scan that ran it. Telemetry
  /// only — never part of a plan key, never affects results.
  uint64_t FlowId = 0;
  /// Pipeline batch members across the device (`parrec run --pipeline`):
  /// partition k+1 of problem i+1 overlaps partition k of problem i on
  /// the same multiprocessor instead of waiting for problem i to drain,
  /// and per-problem completion cycles are recorded. Re-times work that
  /// already happened: results, costs and per-problem cycle totals stay
  /// bit-identical; only BatchResult::TotalCycles (modelled wall clock)
  /// may drop. Never part of a plan key.
  bool Pipeline = false;
  /// With Pipeline, pack consecutive problems whose partitions underfill
  /// a block into one simulated launch (per-problem lane offsets). Same
  /// bit-identity guarantee; no effect without Pipeline. Never part of a
  /// plan key.
  bool PackSmall = false;
};

/// The outcome of running one problem.
struct RunResult {
  /// Value at the root point (every recursion dimension at its maximum) —
  /// the paper's d(x, y) / forward(end, n) convention. Log-space for prob
  /// functions.
  double RootValue = 0.0;
  /// Maximum over all table cells (the Smith-Waterman result).
  double TableMax = 0.0;
  uint64_t Cells = 0;
  int64_t Partitions = 0;
  gpu::CostCounter Cost;
  /// Lockstep block cycles for GPU runs; serial cycles for CPU runs.
  uint64_t Cycles = 0;
  solver::Schedule UsedSchedule;
  /// Populated for GPU runs.
  gpu::GpuRunMetrics Metrics;
  /// Per-partition lockstep timeline, when RunOptions::Trace (or the
  /// global tracer) was on: one sample per executed partition, in scan
  /// order. Sum of (MaxThreadCycles + BarrierCycles) equals Cycles.
  std::shared_ptr<const std::vector<gpu::PartitionSample>> Timeline;
  /// The full DP table, when RunOptions::KeepTable was set.
  std::shared_ptr<codegen::TableView> Table;

  /// Reads a cell from the kept table (requires KeepTable).
  double cellValue(const std::vector<int64_t> &Point) const {
    assert(Table && "run without KeepTable");
    return Table->get(Point.data());
  }
};

/// Results of a multi-problem batch (the map primitive): per-problem
/// outcomes plus the device-level makespan.
struct BatchResult {
  std::vector<RunResult> Problems;
  uint64_t TotalCycles = 0;
  double Seconds = 0.0;
  /// Per-problem modelled completion cycle (kernel launch included).
  /// Under the barrier dispatcher every problem completes at batch end
  /// (== TotalCycles); under RunOptions::Pipeline each problem resolves
  /// the moment its last partition drains.
  std::vector<uint64_t> CompletionCycles;
  /// Cycles recovered by cross-problem overlap, summed over
  /// multiprocessors (0 on the barrier path).
  uint64_t OverlapCycles = 0;
  /// Cycles multiprocessors idled waiting for the busiest one, summed
  /// (0 on the barrier path).
  uint64_t IdleCycles = 0;
};

/// Executes planned problems. Implementations are stateless beyond their
/// cost model and thread-safe: one backend instance may execute many
/// plans concurrently (each call gets its own Evaluator and table).
class ExecutionBackend {
public:
  virtual ~ExecutionBackend() = default;

  virtual std::string_view name() const = 0;

  /// Runs one problem. \p Eval must already be bound to the problem's
  /// calling arguments. Cannot fail: every failure mode (bad schedule,
  /// empty domain, unbound argument) is caught at planning time.
  virtual RunResult execute(const ExecutablePlan &Plan,
                            codegen::Evaluator &Eval,
                            const RunOptions &Options) const = 0;
};

/// The serial CPU reference: one thread, CPU cycle accounting, no
/// barrier costs.
class SerialCpuBackend final : public ExecutionBackend {
public:
  explicit SerialCpuBackend(const gpu::CostModel &Model) : Model(Model) {}

  std::string_view name() const override { return "serial-cpu"; }
  RunResult execute(const ExecutablePlan &Plan, codegen::Evaluator &Eval,
                    const RunOptions &Options) const override;

private:
  const gpu::CostModel &Model;
};

/// The simulated GPU: one block on one multiprocessor, threads striped
/// over the partition loop (Figure 10), lockstep timing with a barrier
/// per partition, and shared-memory residency when the table fits.
class SimulatedGpuBackend final : public ExecutionBackend {
public:
  explicit SimulatedGpuBackend(const gpu::CostModel &Model)
      : Model(Model) {}

  std::string_view name() const override { return "simulated-gpu"; }
  RunResult execute(const ExecutablePlan &Plan, codegen::Evaluator &Eval,
                    const RunOptions &Options) const override;

private:
  const gpu::CostModel &Model;
};

} // namespace exec
} // namespace parrec

#endif // PARREC_EXEC_EXECUTIONBACKEND_H
