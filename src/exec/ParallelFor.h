//===- ParallelFor.h - Deterministic host-side fan-out ------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny std::thread fan-out for work that is independent by
/// construction (one simulated multiprocessor per problem). Indices are
/// striped statically across workers and each index writes its own
/// output slot, so results are deterministic and identical for any
/// worker count.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_EXEC_PARALLELFOR_H
#define PARREC_EXEC_PARALLELFOR_H

#include <cstddef>
#include <functional>

namespace parrec {
namespace exec {

/// Resolves a requested worker count: 0 means one per hardware thread,
/// and the result never exceeds \p Jobs (nor drops below 1).
unsigned resolveWorkerCount(unsigned Requested, size_t Jobs);

/// Invokes Body(I) for every I in [0, Jobs), striped across \p Workers
/// host threads (worker W handles W, W + Workers, ...). Runs inline when
/// Workers <= 1. The first exception thrown by any Body is rethrown on
/// the calling thread after all workers join.
void parallelFor(unsigned Workers, size_t Jobs,
                 const std::function<void(size_t)> &Body);

} // namespace exec
} // namespace parrec

#endif // PARREC_EXEC_PARALLELFOR_H
