//===- ParallelFor.h - Deterministic host-side fan-out ------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Host-side threading primitives for work that is independent by
/// construction: a persistent WorkerPool whose threads park between
/// tasks, a SpinBarrier for the per-partition rendezvous of the
/// wavefront scan, and the parallelFor fan-out used by batch execution.
/// Indices are striped statically and each index writes its own output
/// slot, so results are deterministic and identical for any worker
/// count.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_EXEC_PARALLELFOR_H
#define PARREC_EXEC_PARALLELFOR_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace parrec {
namespace exec {

/// The host's total worker budget: one worker per hardware thread, at
/// least 1. Both fan-out axes (problems in a batch, simulated threads in
/// a scan) resolve their "auto" worker counts against this single number
/// so their composition never oversubscribes the machine.
unsigned hostWorkerBudget();

/// Resolves a requested worker count: 0 means the host worker budget,
/// and the result never exceeds \p Jobs (nor drops below 1).
unsigned resolveWorkerCount(unsigned Requested, size_t Jobs);

/// A persistent group of worker threads that run one task functor at a
/// time. Construction parks Workers-1 threads on a condition variable;
/// run() publishes the task, executes slice 0 on the calling thread, and
/// returns once every worker has finished. A pool is reused across many
/// run() calls (the scan loop forks once per execution, not once per
/// partition), so thread creation is paid once.
///
/// Not reentrant: run() must not be called from inside a task, and only
/// one thread may call run() at a time. Each nested fan-out level owns
/// its own pool.
class WorkerPool {
public:
  /// Spawns \p Workers - 1 parked threads (a 1-worker pool spawns none
  /// and run() degenerates to a plain call).
  explicit WorkerPool(unsigned Workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  unsigned workers() const { return NumWorkers; }

  /// Invokes Task(W) for every worker index W in [0, workers()); W == 0
  /// runs on the calling thread. Returns after all workers finish; the
  /// first exception thrown by any task is rethrown here.
  void run(const std::function<void(unsigned)> &Task);

private:
  void workerMain(unsigned Worker);

  unsigned NumWorkers;
  std::mutex Mutex;
  std::condition_variable WakeCv; // Parked workers wait here.
  std::condition_variable DoneCv; // run() waits here.
  const std::function<void(unsigned)> *Task = nullptr;
  uint64_t Epoch = 0;      // Bumped once per run() to publish a task.
  unsigned Unfinished = 0; // Helper threads still inside the task.
  bool Stopping = false;
  std::exception_ptr FirstError;
  std::vector<std::thread> Threads;
};

/// A reusable rendezvous for a fixed set of participants. arriveAndWait
/// blocks until all \p Count participants arrive, then releases them and
/// resets for the next phase. Late arrivals spin briefly (the scan's
/// partitions are microseconds apart), then yield, then sleep on a
/// condition variable — so an oversubscribed or single-core host
/// degrades to scheduler-paced progress instead of burning cycles.
///
/// The barrier is a full memory fence between phases: every write made
/// before an arriveAndWait is visible to every participant after the
/// matching release.
class SpinBarrier {
public:
  explicit SpinBarrier(unsigned Count) : Count(Count) {}

  SpinBarrier(const SpinBarrier &) = delete;
  SpinBarrier &operator=(const SpinBarrier &) = delete;

  void arriveAndWait();

private:
  const unsigned Count;
  std::atomic<unsigned> Arrived{0};
  std::atomic<uint64_t> Phase{0};
  std::mutex Mutex;             // Guards the sleep path only.
  std::condition_variable SleepCv;
  unsigned Sleepers = 0;        // Guarded by Mutex.
};

/// Invokes Body(I) for every I in [0, Jobs), striped across \p Workers
/// host threads (worker W handles W, W + Workers, ...). Runs inline when
/// Workers <= 1. The first exception thrown by any Body is rethrown on
/// the calling thread after all workers join.
void parallelFor(unsigned Workers, size_t Jobs,
                 const std::function<void(size_t)> &Body);

} // namespace exec
} // namespace parrec

#endif // PARREC_EXEC_PARALLELFOR_H
