//===- InputDigest.cpp - Content digest of bound arguments ------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "exec/InputDigest.h"

#include "bio/Hmm.h"
#include "bio/Sequence.h"
#include "bio/SubstitutionMatrix.h"

#include <cstring>

using namespace parrec;
using namespace parrec::exec;

namespace {

/// One FNV-1a stream. The two streams differ in offset basis and in a
/// per-stream tweak mixed into every byte, so they are not merely
/// shifted copies of each other.
class Fnv {
public:
  Fnv(uint64_t Basis, uint8_t Tweak) : State(Basis), Tweak(Tweak) {}

  void byte(uint8_t B) {
    State ^= static_cast<uint64_t>(B ^ Tweak);
    State *= 1099511628211ull;
  }
  void bytes(const void *Data, size_t Size) {
    const uint8_t *P = static_cast<const uint8_t *>(Data);
    for (size_t I = 0; I != Size; ++I)
      byte(P[I]);
  }
  void u64(uint64_t V) { bytes(&V, sizeof V); }
  void f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof Bits);
    u64(Bits);
  }

  uint64_t value() const { return State; }

private:
  uint64_t State;
  uint8_t Tweak;
};

/// Hashes one argument into both streams. A leading tag byte per
/// argument keeps adjacent arguments from melting into one byte stream
/// (e.g. a sequence "ab" + "c" vs "a" + "bc").
void hashArg(const codegen::ArgValue &A, Fnv &L, Fnv &H) {
  auto tag = [&](uint8_t T) {
    L.byte(T);
    H.byte(T);
  };
  if (A.Seq) {
    tag(1);
    const std::string &Data = A.Seq->data();
    L.u64(Data.size());
    H.u64(Data.size());
    L.bytes(Data.data(), Data.size());
    H.bytes(Data.data(), Data.size());
    return;
  }
  if (A.Matrix) {
    tag(2);
    const bio::Alphabet &Alpha = A.Matrix->alphabet();
    L.bytes(Alpha.letters().data(), Alpha.letters().size());
    H.bytes(Alpha.letters().data(), Alpha.letters().size());
    L.u64(static_cast<uint64_t>(A.Matrix->defaultScore()));
    H.u64(static_cast<uint64_t>(A.Matrix->defaultScore()));
    for (unsigned I = 0; I != Alpha.size(); ++I)
      for (unsigned J = 0; J != Alpha.size(); ++J) {
        uint64_t S =
            static_cast<uint64_t>(A.Matrix->scoreByIndex(I, J));
        L.u64(S);
        H.u64(S);
      }
    return;
  }
  if (A.Hmm) {
    tag(3);
    const bio::Alphabet &Alpha = A.Hmm->alphabet();
    L.bytes(Alpha.letters().data(), Alpha.letters().size());
    H.bytes(Alpha.letters().data(), Alpha.letters().size());
    L.u64(A.Hmm->numStates());
    H.u64(A.Hmm->numStates());
    for (unsigned I = 0; I != A.Hmm->numStates(); ++I) {
      const bio::HmmState &S = A.Hmm->state(I);
      uint8_t Flags = static_cast<uint8_t>((S.IsStart ? 1 : 0) |
                                           (S.IsEnd ? 2 : 0));
      L.byte(Flags);
      H.byte(Flags);
      L.u64(S.Emissions.size());
      H.u64(S.Emissions.size());
      for (double E : S.Emissions) {
        L.f64(E);
        H.f64(E);
      }
    }
    L.u64(A.Hmm->numTransitions());
    H.u64(A.Hmm->numTransitions());
    for (unsigned I = 0; I != A.Hmm->numTransitions(); ++I) {
      const bio::HmmTransition &T = A.Hmm->transition(I);
      L.u64(T.From);
      H.u64(T.From);
      L.u64(T.To);
      H.u64(T.To);
      L.f64(T.Prob);
      H.f64(T.Prob);
    }
    return;
  }
  // Scalar (or index placeholder): both fields, tagged.
  tag(4);
  L.u64(static_cast<uint64_t>(A.Int));
  H.u64(static_cast<uint64_t>(A.Int));
  L.f64(A.Real);
  H.f64(A.Real);
}

} // namespace

InputDigest exec::inputDigest(const std::vector<codegen::ArgValue> &Args) {
  Fnv L(14695981039346656037ull, 0x00);
  Fnv H(0x9E3779B97F4A7C15ull, 0x5C);
  L.u64(Args.size());
  H.u64(Args.size());
  for (const codegen::ArgValue &A : Args)
    hashArg(A, L, H);
  return InputDigest{L.value(), H.value()};
}
