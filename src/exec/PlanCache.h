//===- PlanCache.h - Bounded LRU cache of executable plans --------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded, internally synchronised LRU cache from PlanKey to shared
/// immutable ExecutablePlans. Every bench loop and every batch runs the
/// same recursion over a handful of problem shapes; hitting this cache
/// skips schedule synthesis (a CSP search) and CLooG-style loop
/// generation on all but the first run per shape.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_EXEC_PLANCACHE_H
#define PARREC_EXEC_PLANCACHE_H

#include "exec/Plan.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace parrec {
namespace exec {

class PlanCache {
public:
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
  };

  explicit PlanCache(size_t Capacity = DefaultCapacity)
      : Capacity(Capacity ? Capacity : 1) {}

  /// Returns the cached plan for \p Key and marks it most recently used,
  /// or null on a miss. Counts a hit or a miss.
  std::shared_ptr<const ExecutablePlan> lookup(const PlanKey &Key);

  /// Inserts \p Plan under \p Key (replacing any existing entry),
  /// evicting the least recently used entry when full.
  void insert(const PlanKey &Key,
              std::shared_ptr<const ExecutablePlan> Plan);

  Stats stats() const;
  size_t size() const;
  size_t capacity() const { return Capacity; }
  void clear();

  static constexpr size_t DefaultCapacity = 64;

private:
  using Entry = std::pair<PlanKey, std::shared_ptr<const ExecutablePlan>>;

  const size_t Capacity;
  mutable std::mutex Mutex;
  std::list<Entry> Lru; // Front = most recently used.
  std::unordered_map<PlanKey, std::list<Entry>::iterator, PlanKeyHash>
      Index;
  Stats Counters;
};

} // namespace exec
} // namespace parrec

#endif // PARREC_EXEC_PLANCACHE_H
