//===- PlanCache.cpp - Bounded LRU cache of executable plans ----------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "exec/PlanCache.h"

#include "obs/Metrics.h"

using namespace parrec::exec;

std::shared_ptr<const ExecutablePlan>
PlanCache::lookup(const PlanKey &Key) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(Key);
  if (It == Index.end()) {
    ++Counters.Misses;
    parrec::obs::MetricsRegistry::global().add("plan_cache.misses");
    return nullptr;
  }
  ++Counters.Hits;
  parrec::obs::MetricsRegistry::global().add("plan_cache.hits");
  Lru.splice(Lru.begin(), Lru, It->second);
  return It->second->second;
}

void PlanCache::insert(const PlanKey &Key,
                       std::shared_ptr<const ExecutablePlan> Plan) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(Key);
  if (It != Index.end()) {
    It->second->second = std::move(Plan);
    Lru.splice(Lru.begin(), Lru, It->second);
    return;
  }
  if (Lru.size() >= Capacity) {
    Index.erase(Lru.back().first);
    Lru.pop_back();
    ++Counters.Evictions;
    parrec::obs::MetricsRegistry::global().add("plan_cache.evictions");
  }
  Lru.emplace_front(Key, std::move(Plan));
  Index.emplace(Key, Lru.begin());
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Lru.size();
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Lru.clear();
  Index.clear();
  Counters = Stats();
}
