//===- Table.h - Dynamic-programming tables -----------------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Storage for tabulated recursion results: a dense full table, and the
/// sliding-window table of Section 4.8 that keeps only the last w+1
/// partitions alive — the memory reduction that lets intermediate values
/// live in a GPU's shared memory.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_EXEC_TABLE_H
#define PARREC_EXEC_TABLE_H

#include "codegen/Evaluator.h"
#include "solver/Recurrence.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace parrec {
namespace exec {

/// Writable extension of the evaluator's read view.
///
/// Disjoint-write invariant (what makes the wavefront-parallel scan
/// lock-free): within one partition of an affine schedule, every cell is
/// written exactly once and no cell of the partition is read — cells of
/// one partition are independent by the schedule's legality (Sections
/// 4.2–4.3). A full table maps distinct points to distinct slots
/// trivially (and asserts each slot is written once). A sliding window
/// reuses slots, but never *within* a partition: two points sharing a
/// slot differ only in the dropped dimension, whose schedule coefficient
/// is ±1, so their partitions differ — and cross-partition reuse is
/// separated by the barrier that closes each partition. Concurrent
/// workers scanning one partition therefore touch disjoint table
/// addresses, and reads only ever target planes no writer touches.
class DpTable : public codegen::TableView {
public:
  virtual void set(const int64_t *Point, double Value) = 0;
  virtual uint64_t bytes() const = 0;

  /// Base pointer of the flat value storage, for jitted kernels that bake
  /// the slot addressing into generated code (the same flatten/slot math
  /// as get/set). Raw writes bypass the debug-build write-once poisoning
  /// of FullTable; the generated nest preserves the invariant by
  /// construction (it visits each point exactly once).
  virtual double *rawData() = 0;
};

/// Dense row-major storage over the whole domain box.
class FullTable final : public DpTable {
public:
  explicit FullTable(const solver::DomainBox &Box) : Box(Box) {
    Strides.resize(Box.numDims());
    uint64_t Stride = 1;
    for (unsigned D = Box.numDims(); D-- > 0;) {
      Strides[D] = Stride;
      Stride *= static_cast<uint64_t>(Box.extent(D));
    }
    Data.assign(Stride, std::numeric_limits<double>::quiet_NaN());
  }

  double get(const int64_t *Point) const override {
    double V = Data[flatten(Point)];
    assert(!std::isnan(V) && "read of an uncomputed cell: the schedule "
                             "violated a dependency");
    return V;
  }
  void set(const int64_t *Point, double Value) override {
    double &Slot = Data[flatten(Point)];
    assert(std::isnan(Slot) && "cell written twice: the schedule placed "
                               "two scan points on one table slot");
    Slot = Value;
  }
  uint64_t bytes() const override { return Data.size() * sizeof(double); }
  double *rawData() override { return Data.data(); }

private:
  solver::DomainBox Box;
  std::vector<uint64_t> Strides;
  std::vector<double> Data;

  uint64_t flatten(const int64_t *Point) const {
    uint64_t Index = 0;
    for (unsigned D = 0; D != Box.numDims(); ++D) {
      assert(Point[D] >= Box.Lower[D] && Point[D] <= Box.Upper[D] &&
             "point outside the domain box");
      Index += static_cast<uint64_t>(Point[D] - Box.Lower[D]) * Strides[D];
    }
    return Index;
  }
};

/// Ring buffer of the last Window+1 partitions (Section 4.8).
///
/// One dimension with |schedule coefficient| == 1 is dropped from the
/// plane addressing: within a partition, a point is uniquely identified
/// by its remaining coordinates (two points differing only in the dropped
/// dimension lie in different partitions, since the coefficient is ±1).
class SlidingWindowTable final : public DpTable {
public:
  /// \p DropDim must satisfy |Schedule.Coefficients[DropDim]| == 1.
  SlidingWindowTable(const solver::DomainBox &Box,
                     const solver::Schedule &S, int64_t Window,
                     unsigned DropDim)
      : Box(Box), Sched(S), NumPlanes(static_cast<uint64_t>(Window) + 1),
        DropDim(DropDim) {
    assert((S.Coefficients[DropDim] == 1 ||
            S.Coefficients[DropDim] == -1) &&
           "dropped dimension must have a unit schedule coefficient");
    MinPartition = S.minOver(Box);
    // Fuse per-dimension addressing state into one contiguous array so
    // slot() walks a single cache line instead of chasing three vectors.
    Addr.resize(Box.numDims());
    uint64_t Stride = 1;
    for (unsigned D = Box.numDims(); D-- > 0;) {
      Addr[D].Coeff = S.Coefficients[D];
      if (D == DropDim) {
        Addr[D].Stride = 0;
        continue;
      }
      Addr[D].Stride = Stride;
      BaseIndex += static_cast<uint64_t>(Box.Lower[D]) * Stride;
      Stride *= static_cast<uint64_t>(Box.extent(D));
    }
    PlaneSize = Stride;
    // The partition offset fits 32 bits for any table that fits in
    // memory, so the ring lookup can use an exact multiply-based modulus
    // (Lemire's fastmod) instead of a hardware divide on every access.
    assert(S.maxOver(Box) - MinPartition >= 0 &&
           static_cast<uint64_t>(S.maxOver(Box) - MinPartition) <=
               std::numeric_limits<uint32_t>::max() &&
           "partition range exceeds 32 bits");
    ModMagic = std::numeric_limits<uint64_t>::max() / NumPlanes + 1;
    Data.assign(NumPlanes * PlaneSize, 0.0);
  }

  double get(const int64_t *Point) const override {
    return Data[slot(Point)];
  }
  void set(const int64_t *Point, double Value) override {
    Data[slot(Point)] = Value;
  }
  uint64_t bytes() const override { return Data.size() * sizeof(double); }
  double *rawData() override { return Data.data(); }

private:
  struct DimAddr {
    int64_t Coeff = 0;   // Schedule coefficient (partition term).
    uint64_t Stride = 0; // Plane stride; 0 for the dropped dimension.
  };

  solver::DomainBox Box;
  solver::Schedule Sched;
  uint64_t NumPlanes;
  unsigned DropDim;
  int64_t MinPartition = 0;
  uint64_t PlaneSize = 0;
  uint64_t BaseIndex = 0;
  uint64_t ModMagic = 0;
  std::vector<DimAddr> Addr;
  std::vector<double> Data;

  uint64_t slot(const int64_t *Point) const {
    const DimAddr *A = Addr.data();
    unsigned N = static_cast<unsigned>(Addr.size());
    int64_t Partition = 0;
    uint64_t Index = 0;
    for (unsigned D = 0; D != N; ++D) {
      Partition += A[D].Coeff * Point[D];
      Index += A[D].Stride * static_cast<uint64_t>(Point[D]);
    }
    // Exact X % NumPlanes for 32-bit X via the precomputed reciprocal.
    uint64_t X = static_cast<uint64_t>(Partition - MinPartition);
    assert(X <= std::numeric_limits<uint32_t>::max() &&
           "partition offset exceeds 32 bits");
    uint64_t Plane = static_cast<uint64_t>(
        (static_cast<unsigned __int128>(ModMagic * X) * NumPlanes) >> 64);
    return Plane * PlaneSize + (Index - BaseIndex);
  }
};

/// Picks the dimension a sliding-window table should drop: among the unit
/// coefficients, the one with the largest extent minimises the window's
/// footprint. Returns -1 when no unit coefficient exists (the window
/// optimisation then falls back to full tabulation).
inline int pickWindowDropDim(const solver::Schedule &S,
                             const solver::DomainBox &Box) {
  int Best = -1;
  int64_t BestExtent = 0;
  for (unsigned D = 0; D != S.numDims(); ++D) {
    int64_t A = S.Coefficients[D];
    if (A != 1 && A != -1)
      continue;
    if (Box.extent(D) > BestExtent) {
      Best = static_cast<int>(D);
      BestExtent = Box.extent(D);
    }
  }
  return Best;
}

} // namespace exec
} // namespace parrec

#endif // PARREC_EXEC_TABLE_H
