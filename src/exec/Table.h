//===- Table.h - Dynamic-programming tables -----------------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Storage for tabulated recursion results: a dense full table, and the
/// sliding-window table of Section 4.8 that keeps only the last w+1
/// partitions alive — the memory reduction that lets intermediate values
/// live in a GPU's shared memory.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_EXEC_TABLE_H
#define PARREC_EXEC_TABLE_H

#include "codegen/Evaluator.h"
#include "solver/Recurrence.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace parrec {
namespace exec {

/// Writable extension of the evaluator's read view.
class DpTable : public codegen::TableView {
public:
  virtual void set(const int64_t *Point, double Value) = 0;
  virtual uint64_t bytes() const = 0;
};

/// Dense row-major storage over the whole domain box.
class FullTable : public DpTable {
public:
  explicit FullTable(const solver::DomainBox &Box) : Box(Box) {
    Strides.resize(Box.numDims());
    uint64_t Stride = 1;
    for (unsigned D = Box.numDims(); D-- > 0;) {
      Strides[D] = Stride;
      Stride *= static_cast<uint64_t>(Box.extent(D));
    }
    Data.assign(Stride, std::numeric_limits<double>::quiet_NaN());
  }

  double get(const int64_t *Point) const override {
    double V = Data[flatten(Point)];
    assert(!std::isnan(V) && "read of an uncomputed cell: the schedule "
                             "violated a dependency");
    return V;
  }
  void set(const int64_t *Point, double Value) override {
    Data[flatten(Point)] = Value;
  }
  uint64_t bytes() const override { return Data.size() * sizeof(double); }

private:
  solver::DomainBox Box;
  std::vector<uint64_t> Strides;
  std::vector<double> Data;

  uint64_t flatten(const int64_t *Point) const {
    uint64_t Index = 0;
    for (unsigned D = 0; D != Box.numDims(); ++D) {
      assert(Point[D] >= Box.Lower[D] && Point[D] <= Box.Upper[D] &&
             "point outside the domain box");
      Index += static_cast<uint64_t>(Point[D] - Box.Lower[D]) * Strides[D];
    }
    return Index;
  }
};

/// Ring buffer of the last Window+1 partitions (Section 4.8).
///
/// One dimension with |schedule coefficient| == 1 is dropped from the
/// plane addressing: within a partition, a point is uniquely identified
/// by its remaining coordinates (two points differing only in the dropped
/// dimension lie in different partitions, since the coefficient is ±1).
class SlidingWindowTable : public DpTable {
public:
  /// \p DropDim must satisfy |Schedule.Coefficients[DropDim]| == 1.
  SlidingWindowTable(const solver::DomainBox &Box,
                     const solver::Schedule &S, int64_t Window,
                     unsigned DropDim)
      : Box(Box), Sched(S), NumPlanes(static_cast<uint64_t>(Window) + 1),
        DropDim(DropDim) {
    assert((S.Coefficients[DropDim] == 1 ||
            S.Coefficients[DropDim] == -1) &&
           "dropped dimension must have a unit schedule coefficient");
    MinPartition = S.minOver(Box);
    Strides.assign(Box.numDims(), 0);
    uint64_t Stride = 1;
    for (unsigned D = Box.numDims(); D-- > 0;) {
      if (D == DropDim)
        continue;
      Strides[D] = Stride;
      Stride *= static_cast<uint64_t>(Box.extent(D));
    }
    PlaneSize = Stride;
    Data.assign(NumPlanes * PlaneSize, 0.0);
  }

  double get(const int64_t *Point) const override {
    return Data[slot(Point)];
  }
  void set(const int64_t *Point, double Value) override {
    Data[slot(Point)] = Value;
  }
  uint64_t bytes() const override { return Data.size() * sizeof(double); }

private:
  solver::DomainBox Box;
  solver::Schedule Sched;
  uint64_t NumPlanes;
  unsigned DropDim;
  int64_t MinPartition = 0;
  uint64_t PlaneSize = 0;
  std::vector<uint64_t> Strides;
  std::vector<double> Data;

  uint64_t slot(const int64_t *Point) const {
    int64_t Partition = 0;
    for (unsigned D = 0; D != Box.numDims(); ++D)
      Partition += Sched.Coefficients[D] * Point[D];
    uint64_t Plane = static_cast<uint64_t>(Partition - MinPartition) %
                     NumPlanes;
    uint64_t Index = 0;
    for (unsigned D = 0; D != Box.numDims(); ++D) {
      if (D == DropDim)
        continue;
      Index += static_cast<uint64_t>(Point[D] - Box.Lower[D]) * Strides[D];
    }
    return Plane * PlaneSize + Index;
  }
};

/// Picks the dimension a sliding-window table should drop: among the unit
/// coefficients, the one with the largest extent minimises the window's
/// footprint. Returns -1 when no unit coefficient exists (the window
/// optimisation then falls back to full tabulation).
inline int pickWindowDropDim(const solver::Schedule &S,
                             const solver::DomainBox &Box) {
  int Best = -1;
  int64_t BestExtent = 0;
  for (unsigned D = 0; D != S.numDims(); ++D) {
    int64_t A = S.Coefficients[D];
    if (A != 1 && A != -1)
      continue;
    if (Box.extent(D) > BestExtent) {
      Best = static_cast<int>(D);
      BestExtent = Box.extent(D);
    }
  }
  return Best;
}

} // namespace exec
} // namespace parrec

#endif // PARREC_EXEC_TABLE_H
