//===- Plan.cpp - Immutable executable plans ----------------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "exec/Plan.h"

#include "obs/Trace.h"
#include "solver/ScheduleSynthesis.h"

using namespace parrec;
using namespace parrec::exec;
using solver::Schedule;

static uint64_t fnvMix(uint64_t Hash, uint64_t Value) {
  Hash ^= Value;
  return Hash * 0x100000001b3ull;
}

uint64_t PlanKey::hash() const {
  uint64_t Hash = 0xcbf29ce484222325ull;
  for (int64_t V : Lower)
    Hash = fnvMix(Hash, static_cast<uint64_t>(V));
  for (int64_t V : Upper)
    Hash = fnvMix(Hash, static_cast<uint64_t>(V));
  Hash = fnvMix(Hash, Schedule{RequestedSchedule}.fingerprint());
  Hash = fnvMix(Hash, (UseSlidingWindow ? 2u : 0u) | (KeepTable ? 1u : 0u));
  return Hash;
}

PlanKey PlanKey::make(const solver::DomainBox &Box, bool UseSlidingWindow,
                      bool KeepTable, const Schedule *Requested) {
  PlanKey Key;
  Key.Lower = Box.Lower;
  Key.Upper = Box.Upper;
  if (Requested)
    Key.RequestedSchedule = Requested->Coefficients;
  Key.UseSlidingWindow = UseSlidingWindow;
  Key.KeepTable = KeepTable;
  return Key;
}

std::shared_ptr<DpTable> ExecutablePlan::makeTable() const {
  if (UseWindow)
    return std::make_shared<SlidingWindowTable>(Box, Sched, WindowDepth,
                                                WindowDropDim);
  return std::make_shared<FullTable>(Box);
}

std::optional<ExecutablePlan>
exec::buildPlan(const solver::RecurrenceSpec &Rec,
                const std::vector<std::string> &DimNames,
                const solver::DomainBox &Box, const PlanRequest &Req,
                DiagnosticEngine &Diags) {
  obs::Span PlanSpan("exec.build_plan", "exec");
  if (PlanSpan.active()) {
    PlanSpan.arg("function", Rec.Name);
    PlanSpan.arg("dims", static_cast<uint64_t>(Box.numDims()));
  }
  ExecutablePlan Plan;
  Plan.Box = Box;
  Plan.Program = Req.Program;

  // 1. The schedule: forced, preselected (batch), or freshly minimised.
  if (Req.ForcedSchedule) {
    if (!solver::verifySchedule(Rec, *Req.ForcedSchedule, Box, Diags))
      return std::nullopt;
    Plan.Sched = *Req.ForcedSchedule;
  } else if (Req.PreselectedSchedule) {
    Plan.Sched = *Req.PreselectedSchedule;
  } else {
    std::optional<Schedule> Minimal =
        solver::findMinimalSchedule(Rec, Box, Diags);
    if (!Minimal)
      return std::nullopt;
    Plan.Sched = std::move(*Minimal);
  }

  // 2. The table shape: sliding window (Section 4.8) when enabled and
  // legal. Keeping the full table for later reads forbids the window.
  std::optional<int64_t> Window =
      solver::slidingWindowDepth(Rec, Plan.Sched);
  int DropDim = Window ? pickWindowDropDim(Plan.Sched, Box) : -1;
  if (Req.UseSlidingWindow && !Req.KeepTable && Window && DropDim >= 0) {
    Plan.UseWindow = true;
    Plan.WindowDepth = *Window;
    Plan.WindowDropDim = static_cast<unsigned>(DropDim);
  }

  // 3. The loop nest (Section 4.3): scan the box under the schedule.
  poly::Polyhedron Domain(DimNames);
  for (unsigned D = 0; D != Box.numDims(); ++D)
    Domain.addBounds(D, Box.Lower[D], Box.Upper[D]);
  Plan.Nest = poly::generateLoops(Domain, /*NumParams=*/0,
                                  Plan.Sched.toAffineExpr(0));

  auto TimeRange = Plan.Nest.timeRange({});
  if (!TimeRange) {
    Diags.error({}, "empty domain for '" + Rec.Name + "'");
    return std::nullopt;
  }
  Plan.FirstPartition = TimeRange->first;
  Plan.LastPartition = TimeRange->second;
  Plan.RootPartition = Plan.Sched.apply(Box.Upper);
  return Plan;
}
