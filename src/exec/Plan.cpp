//===- Plan.cpp - Immutable executable plans ----------------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "exec/Plan.h"

using namespace parrec;
using namespace parrec::exec;
using solver::Schedule;

static uint64_t fnvMix(uint64_t Hash, uint64_t Value) {
  Hash ^= Value;
  return Hash * 0x100000001b3ull;
}

uint64_t PlanKey::hash() const {
  uint64_t Hash = 0xcbf29ce484222325ull;
  for (int64_t V : Lower)
    Hash = fnvMix(Hash, static_cast<uint64_t>(V));
  for (int64_t V : Upper)
    Hash = fnvMix(Hash, static_cast<uint64_t>(V));
  Hash = fnvMix(Hash, Schedule{RequestedSchedule}.fingerprint());
  Hash = fnvMix(Hash, (Jit ? 8u : 0u) | (Autotune ? 4u : 0u) |
                          (UseSlidingWindow ? 2u : 0u) |
                          (KeepTable ? 1u : 0u));
  return Hash;
}

PlanKey PlanKey::make(const solver::DomainBox &Box, bool UseSlidingWindow,
                      bool KeepTable, const Schedule *Requested,
                      bool Autotune, bool Jit) {
  PlanKey Key;
  Key.Lower = Box.Lower;
  Key.Upper = Box.Upper;
  if (Requested)
    Key.RequestedSchedule = Requested->Coefficients;
  Key.UseSlidingWindow = UseSlidingWindow;
  Key.KeepTable = KeepTable;
  Key.Autotune = Autotune;
  Key.Jit = Jit;
  return Key;
}

std::shared_ptr<DpTable> ExecutablePlan::makeTable() const {
  if (UseWindow)
    return std::make_shared<SlidingWindowTable>(Box, Sched, WindowDepth,
                                                WindowDropDim);
  return std::make_shared<FullTable>(Box);
}

// buildPlan lives in compiler/Pipeline.cpp: it is a thin wrapper over the
// default planning pass pipeline.
