//===- Plan.h - Immutable executable plans ------------------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The planning stage of the execution pipeline: everything derived from
/// a recursion and a concrete domain box *before* any cell is evaluated —
/// the schedule (Section 4.5–4.7), the sliding-window decision (Section
/// 4.8) and the CLooG-style loop nest (Section 4.3) — captured in an
/// immutable ExecutablePlan. Plans are keyed by PlanKey and memoised in a
/// PlanCache so repeated runs over same-shaped problems skip schedule
/// synthesis and loop generation entirely.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_EXEC_PLAN_H
#define PARREC_EXEC_PLAN_H

#include "exec/Table.h"
#include "poly/LoopGen.h"
#include "solver/Recurrence.h"
#include "support/Diagnostics.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace parrec {
namespace codegen {
struct BytecodeProgram;
class JitKernel;
} // namespace codegen
namespace gpu {
struct CostModel;
} // namespace gpu

namespace exec {

/// Identity of a plan: the domain box plus everything in the run request
/// that influences planning. Thread counts and cost models deliberately do
/// not appear — they only affect execution, never the plan. Autotune does:
/// a tuned and an untuned plan for the same box may carry different
/// schedules, and keying on the flag is what lets cache hits skip the
/// candidate search entirely.
struct PlanKey {
  std::vector<int64_t> Lower;
  std::vector<int64_t> Upper;
  /// Coefficients of an explicitly requested schedule (forced or
  /// preselected by conditional parallelisation); empty means "synthesise
  /// the minimal schedule for the box".
  std::vector<int64_t> RequestedSchedule;
  bool UseSlidingWindow = true;
  bool KeepTable = false;
  bool Autotune = false;
  /// Whether the plan carries a native jitted kernel. A jitted and an
  /// uninstalled plan for the same box must not share a cache slot:
  /// a VM-first run would otherwise pin a kernel-less plan that every
  /// later --evaluator=jit run keeps hitting.
  bool Jit = false;

  friend bool operator==(const PlanKey &A, const PlanKey &B) = default;

  /// Stable FNV-1a style hash over all fields.
  uint64_t hash() const;

  static PlanKey make(const solver::DomainBox &Box, bool UseSlidingWindow,
                      bool KeepTable, const solver::Schedule *Requested,
                      bool Autotune = false, bool Jit = false);
};

struct PlanKeyHash {
  size_t operator()(const PlanKey &K) const {
    return static_cast<size_t>(K.hash());
  }
};

/// What the planner is asked for. The two schedule pointers (either may be
/// null) distinguish a user-forced schedule — which must be re-verified
/// against the dependency criteria — from one preselected by the Section
/// 4.7 conditional-schedule machinery, which is valid by construction.
struct PlanRequest {
  bool UseSlidingWindow = true;
  bool KeepTable = false;
  const solver::Schedule *ForcedSchedule = nullptr;
  const solver::Schedule *PreselectedSchedule = nullptr;
  /// The function's compiled cell body (may be null when the body is not
  /// bytecode-compilable). Compiled once per function, handed to every
  /// plan — planning never re-runs the bytecode compiler.
  std::shared_ptr<const codegen::BytecodeProgram> Program;
  /// Run the cost-model schedule autotuner after schedule synthesis
  /// (RunOptions::Autotune / `parrec run --autotune`).
  bool Autotune = false;
  /// Cost model the autotuner scores candidates with; null means the
  /// default-constructed model. Never part of the PlanKey.
  const gpu::CostModel *CostModel = nullptr;
  /// Run the native JIT pass after finalize: render the plan as C,
  /// compile and attach the resolved kernel (RunOptions::Evaluator ==
  /// Jit / `parrec run --evaluator=jit`).
  bool Jit = false;
  /// On-disk shared-object cache directory override for the JIT pass;
  /// empty resolves to $ParRec_JIT_CACHE then ~/.cache/parrec-jit.
  /// Never part of the PlanKey.
  std::string JitCacheDir;
};

/// The immutable product of planning: consumed by ExecutionBackends, safe
/// to share across threads and cache entries.
class ExecutablePlan {
public:
  solver::DomainBox Box;
  solver::Schedule Sched;
  poly::LoopNest Nest;
  /// Inclusive partition (time-step) range of the scan.
  int64_t FirstPartition = 0;
  int64_t LastPartition = 0;
  /// Sliding-window decision: when UseWindow is set the table keeps only
  /// WindowDepth+1 partition planes and drops dimension WindowDropDim
  /// from plane addressing.
  bool UseWindow = false;
  int64_t WindowDepth = 0;
  unsigned WindowDropDim = 0;
  /// The partition containing the root point (every dimension at its
  /// upper bound); lets backends confine root-value capture to one
  /// partition instead of checking every cell.
  int64_t RootPartition = 0;
  /// The compiled cell body executed by the bytecode VM; null means the
  /// backend falls back to the AST evaluator. Shared across plans (and
  /// PlanCache hits), so cache hits skip compilation too.
  std::shared_ptr<const codegen::BytecodeProgram> Program;
  /// Autotuner-selected block thread count; 0 means "not tuned" and the
  /// simulated GPU backend falls back to the model's core count. An
  /// explicit RunOptions::Threads still wins.
  unsigned TunedThreads = 0;
  /// The natively jitted scan kernel (NativeJit.h); null when the jit
  /// pass did not run or fell back. Cached on the plan exactly like
  /// Program, so PlanCache hits skip C emission and compilation too.
  std::shared_ptr<const codegen::JitKernel> Kernel;

  int64_t numPartitions() const { return LastPartition - FirstPartition + 1; }

  /// Allocates the DP table this plan calls for.
  std::shared_ptr<DpTable> makeTable() const;
};

/// Builds a plan for \p Box: resolves the schedule per \p Req, decides the
/// sliding window, and generates the loop nest. Reports diagnostics and
/// returns nullopt on failure (invalid forced schedule, no valid schedule,
/// empty domain).
std::optional<ExecutablePlan>
buildPlan(const solver::RecurrenceSpec &Rec,
          const std::vector<std::string> &DimNames,
          const solver::DomainBox &Box, const PlanRequest &Req,
          DiagnosticEngine &Diags);

} // namespace exec
} // namespace parrec

#endif // PARREC_EXEC_PLAN_H
