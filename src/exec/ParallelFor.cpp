//===- ParallelFor.cpp - Deterministic host-side fan-out --------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "exec/ParallelFor.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

using namespace parrec;

unsigned exec::resolveWorkerCount(unsigned Requested, size_t Jobs) {
  unsigned Workers =
      Requested ? Requested : std::thread::hardware_concurrency();
  if (!Workers)
    Workers = 1;
  if (Jobs < Workers)
    Workers = static_cast<unsigned>(Jobs ? Jobs : 1);
  return Workers;
}

void exec::parallelFor(unsigned Workers, size_t Jobs,
                       const std::function<void(size_t)> &Body) {
  Workers = resolveWorkerCount(Workers ? Workers : 1, Jobs);
  if (Workers <= 1) {
    for (size_t I = 0; I != Jobs; ++I)
      Body(I);
    return;
  }

  std::mutex ErrorMutex;
  std::exception_ptr FirstError;
  auto Run = [&](unsigned Worker) {
    try {
      for (size_t I = Worker; I < Jobs; I += Workers)
        Body(I);
    } catch (...) {
      std::lock_guard<std::mutex> Lock(ErrorMutex);
      if (!FirstError)
        FirstError = std::current_exception();
    }
  };

  std::vector<std::thread> Pool;
  Pool.reserve(Workers - 1);
  for (unsigned W = 1; W != Workers; ++W)
    Pool.emplace_back(Run, W);
  Run(0);
  for (std::thread &T : Pool)
    T.join();
  if (FirstError)
    std::rethrow_exception(FirstError);
}
