//===- ParallelFor.cpp - Deterministic host-side fan-out --------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "exec/ParallelFor.h"

#include <cassert>

using namespace parrec;
using namespace parrec::exec;

unsigned exec::hostWorkerBudget() {
  unsigned Budget = std::thread::hardware_concurrency();
  return Budget ? Budget : 1;
}

unsigned exec::resolveWorkerCount(unsigned Requested, size_t Jobs) {
  unsigned Workers = Requested ? Requested : hostWorkerBudget();
  if (Jobs < Workers)
    Workers = static_cast<unsigned>(Jobs ? Jobs : 1);
  return Workers;
}

//===----------------------------------------------------------------------===//
// WorkerPool
//===----------------------------------------------------------------------===//

WorkerPool::WorkerPool(unsigned Workers)
    : NumWorkers(Workers ? Workers : 1) {
  Threads.reserve(NumWorkers - 1);
  for (unsigned W = 1; W != NumWorkers; ++W)
    Threads.emplace_back(&WorkerPool::workerMain, this, W);
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WakeCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void WorkerPool::workerMain(unsigned Worker) {
  uint64_t SeenEpoch = 0;
  for (;;) {
    const std::function<void(unsigned)> *MyTask;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WakeCv.wait(Lock,
                  [&] { return Stopping || Epoch != SeenEpoch; });
      if (Stopping)
        return;
      SeenEpoch = Epoch;
      MyTask = Task;
    }
    try {
      (*MyTask)(Worker);
    } catch (...) {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (!FirstError)
        FirstError = std::current_exception();
    }
    std::lock_guard<std::mutex> Lock(Mutex);
    if (--Unfinished == 0)
      DoneCv.notify_one();
  }
}

void WorkerPool::run(const std::function<void(unsigned)> &Task) {
  if (NumWorkers == 1) {
    Task(0);
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    assert(Unfinished == 0 && "WorkerPool::run is not reentrant");
    this->Task = &Task;
    Unfinished = NumWorkers - 1;
    ++Epoch;
  }
  WakeCv.notify_all();
  try {
    Task(0);
  } catch (...) {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (!FirstError)
      FirstError = std::current_exception();
  }
  std::exception_ptr Error;
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    DoneCv.wait(Lock, [&] { return Unfinished == 0; });
    this->Task = nullptr;
    Error = FirstError;
    FirstError = nullptr;
  }
  if (Error)
    std::rethrow_exception(Error);
}

//===----------------------------------------------------------------------===//
// SpinBarrier
//===----------------------------------------------------------------------===//

void SpinBarrier::arriveAndWait() {
  uint64_t MyPhase = Phase.load(std::memory_order_acquire);
  if (Arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == Count) {
    // Last arrival: open the next phase. Publishing under the mutex
    // serialises against waiters registering on the sleep path, so a
    // waiter either sees the new phase before sleeping or is woken.
    Arrived.store(0, std::memory_order_relaxed);
    bool Notify;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Phase.store(MyPhase + 1, std::memory_order_release);
      Notify = Sleepers != 0;
    }
    if (Notify)
      SleepCv.notify_all();
    return;
  }
  // Tight spin first: partitions are typically microseconds apart, so
  // the release usually lands within a few hundred loads.
  for (int I = 0; I != 1024; ++I)
    if (Phase.load(std::memory_order_acquire) != MyPhase)
      return;
  // Yield next: on an oversubscribed host the releasing worker needs
  // this core to make progress at all.
  for (int I = 0; I != 64; ++I) {
    std::this_thread::yield();
    if (Phase.load(std::memory_order_acquire) != MyPhase)
      return;
  }
  // Still waiting: sleep until the phase opens.
  std::unique_lock<std::mutex> Lock(Mutex);
  ++Sleepers;
  SleepCv.wait(Lock, [&] {
    return Phase.load(std::memory_order_acquire) != MyPhase;
  });
  --Sleepers;
}

//===----------------------------------------------------------------------===//
// parallelFor
//===----------------------------------------------------------------------===//

void exec::parallelFor(unsigned Workers, size_t Jobs,
                       const std::function<void(size_t)> &Body) {
  Workers = resolveWorkerCount(Workers ? Workers : 1, Jobs);
  if (Workers <= 1) {
    for (size_t I = 0; I != Jobs; ++I)
      Body(I);
    return;
  }
  WorkerPool Pool(Workers);
  Pool.run([&](unsigned Worker) {
    for (size_t I = Worker; I < Jobs; I += Workers)
      Body(I);
  });
}
