//===- InputDigest.h - Content digest of bound arguments ----------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 128-bit content digest over a request's bound arguments (sequences,
/// substitution matrices, HMMs, scalars), for the serving layer's result
/// memoization: together with the exec::PlanKey it identifies a request
/// up to bit-identical results. The digest hashes *contents*, never
/// pointer identity, so two requests binding different Sequence objects
/// with the same residues collide on purpose. Sequence and state names
/// are excluded — they never reach a cell body.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_EXEC_INPUTDIGEST_H
#define PARREC_EXEC_INPUTDIGEST_H

#include "codegen/Evaluator.h"

#include <cstdint>
#include <vector>

namespace parrec {
namespace exec {

/// Two independent 64-bit FNV-1a streams; a single 64-bit hash keying a
/// result cache would make a silent wrong answer merely improbable,
/// 128 bits make it negligible.
struct InputDigest {
  uint64_t Lo = 0;
  uint64_t Hi = 0;

  bool operator==(const InputDigest &O) const {
    return Lo == O.Lo && Hi == O.Hi;
  }
  bool operator!=(const InputDigest &O) const { return !(*this == O); }
};

/// Digests the bound-argument vector of one request on the batch path.
/// Deterministic in the argument contents and their order.
InputDigest inputDigest(const std::vector<codegen::ArgValue> &Args);

} // namespace exec
} // namespace parrec

#endif // PARREC_EXEC_INPUTDIGEST_H
