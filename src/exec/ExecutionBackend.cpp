//===- ExecutionBackend.cpp - Pluggable plan executors ----------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "exec/ExecutionBackend.h"

#include "codegen/BytecodeVM.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <cstdlib>
#include <cstring>
#include <limits>

using namespace parrec;
using namespace parrec::exec;

namespace {

/// The ParRec_EVAL_AST escape hatch: force every execution onto the AST
/// tree-walker (e.g. to bisect a suspected VM miscompile). Checked once.
bool envForcesAstEvaluator() {
  static const bool Forced = std::getenv("ParRec_EVAL_AST") != nullptr ||
                             std::getenv("PARREC_EVAL_AST") != nullptr;
  return Forced;
}

/// The partition-by-partition scan core (Figure 8's template),
/// monomorphised over the concrete table class and the cell evaluator so
/// the per-cell path has no virtual calls and no type-erased callback.
/// \p EvalCell is invoked as (Point, Table, Delta) with \p Delta already
/// reset and must return the value to store.
template <typename TableT, typename EvalCellT>
void scanLoop(const ExecutablePlan &Plan, TableT &Table,
              const gpu::CostModel &Model, bool IsGpu, bool TableInShared,
              unsigned Threads, gpu::BlockTimer &Timer, RunResult &Result,
              const EvalCellT &EvalCell) {
  unsigned N = Plan.Box.numDims();
  const std::vector<int64_t> &Root = Plan.Box.Upper;

  gpu::CostCounter Delta;
  for (int64_t P = Plan.FirstPartition; P <= Plan.LastPartition; ++P) {
    // A sliding window eventually overwrites the root cell's plane, so
    // capture it in flight — but only within its own partition. With a
    // full table the root survives and is read once after the scan.
    bool CheckRoot = Plan.UseWindow && P == Plan.RootPartition;
    uint64_t CellsBefore = Result.Cells;
    for (unsigned T = 0; T != Threads; ++T) {
      Plan.Nest.forEachPointForThread(
          {}, P, T, Threads, [&](const int64_t *Point) {
            Delta.reset();
            double Value = EvalCell(Point, Table, Delta);
            Table.set(Point, Value);
            Result.Cost += Delta;
            Timer.addThreadCycles(
                T, IsGpu ? Model.gpuCellCycles(Delta, TableInShared)
                         : Model.cpuCycles(Delta));
            ++Result.Cells;
            if (Value > Result.TableMax)
              Result.TableMax = Value;
            if (CheckRoot && std::memcmp(Point, Root.data(),
                                         N * sizeof(int64_t)) == 0)
              Result.RootValue = Value;
          });
    }
    Timer.closePartition(IsGpu ? Model.SyncCycles : 0, P,
                         Result.Cells - CellsBefore);
  }
}

/// Dispatches the scan over {bytecode VM, AST walker} x {sliding window,
/// full table} and fills in the result summary. The VM runs whenever the
/// plan carries a compiled program and nothing opts out.
RunResult scanPlan(const ExecutablePlan &Plan, codegen::Evaluator &Eval,
                   const gpu::CostModel &Model, bool IsGpu,
                   unsigned Threads, const RunOptions &Options) {
  bool Trace = Options.Trace || obs::Tracer::enabled();

  std::shared_ptr<DpTable> Table;
  {
    obs::Span AllocSpan("exec.alloc_table", "exec");
    Table = Plan.makeTable();
    if (AllocSpan.active()) {
      AllocSpan.arg("bytes", Table->bytes());
      AllocSpan.arg("window", Plan.UseWindow);
    }
  }
  bool TableInShared = IsGpu && Table->bytes() <= Model.SharedMemBytes;

  obs::Span RunSpan("exec.scan", "exec");
  gpu::BlockTimer Timer(Threads, /*RecordTimeline=*/Trace);
  RunResult Result;
  Result.UsedSchedule = Plan.Sched;
  Result.TableMax = -std::numeric_limits<double>::infinity();

  bool UseVm = Plan.Program != nullptr && !Options.UseAstEvaluator &&
               !envForcesAstEvaluator();

  auto RunOn = [&](auto &ConcreteTable) {
    if (UseVm) {
      codegen::BytecodeVM Vm(Plan.Program);
      Vm.bind(Eval);
      scanLoop(Plan, ConcreteTable, Model, IsGpu, TableInShared, Threads,
               Timer, Result,
               [&Vm](const int64_t *Point, auto &T,
                     gpu::CostCounter &Delta) {
                 return Vm.evalCell(Point, T, Delta);
               });
    } else {
      scanLoop(Plan, ConcreteTable, Model, IsGpu, TableInShared, Threads,
               Timer, Result,
               [&Eval](const int64_t *Point, auto &T,
                       gpu::CostCounter &Delta) {
                 return Eval.evalCell(Point, T, Delta);
               });
    }
  };
  // Monomorphise on the concrete table class (both are final) so every
  // get/set in the hot loop devirtualises.
  if (Plan.UseWindow)
    RunOn(static_cast<SlidingWindowTable &>(*Table));
  else
    RunOn(static_cast<FullTable &>(*Table));

  if (!Plan.UseWindow)
    Result.RootValue = Table->get(Plan.Box.Upper.data());

  Result.Partitions = Plan.numPartitions();
  Result.Cycles = Timer.totalCycles();
  if (IsGpu) {
    Result.Metrics.Cycles = Result.Cycles;
    Result.Metrics.Partitions = static_cast<uint64_t>(Result.Partitions);
    Result.Metrics.CellsComputed = Result.Cells;
    Result.Metrics.TableBytes = Table->bytes();
    if (TableInShared)
      Result.Metrics.SharedAccesses = Result.Cost.tableAccesses();
    else
      Result.Metrics.GlobalAccesses = Result.Cost.tableAccesses();
    Result.Metrics.SharedAccesses += Result.Cost.ModelReads;
    Result.Metrics.BarrierCycles = Timer.barrierCycles();
    Result.Metrics.ThreadCycles = Timer.threadCycleSum();
    Result.Metrics.CriticalCycles = Timer.criticalCycles();
    Result.Metrics.Threads = Threads;
  }
  if (Trace)
    Result.Timeline =
        std::make_shared<const std::vector<gpu::PartitionSample>>(
            Timer.takeTimeline());
  if (Options.KeepTable)
    Result.Table = Table;

  if (RunSpan.active()) {
    RunSpan.arg("backend", IsGpu ? "simulated-gpu" : "serial-cpu");
    RunSpan.arg("vm", UseVm);
    RunSpan.arg("cells", Result.Cells);
    RunSpan.arg("partitions", static_cast<uint64_t>(Result.Partitions));
    RunSpan.arg("cycles", Result.Cycles);
    RunSpan.arg("threads", Threads);
    if (IsGpu)
      RunSpan.arg("occupancy", Result.Metrics.occupancy());
  }

  // Per-run (never per-cell) registry updates.
  obs::MetricsRegistry &M = obs::MetricsRegistry::global();
  M.add("exec.runs");
  M.add("exec.cells_computed", Result.Cells);
  M.add("exec.cycles", Result.Cycles);
  M.add("exec.partitions", static_cast<uint64_t>(Result.Partitions));
  if (IsGpu) {
    M.add("exec.shared_accesses", Result.Metrics.SharedAccesses);
    M.add("exec.global_accesses", Result.Metrics.GlobalAccesses);
    M.add("exec.barrier_cycles", Result.Metrics.BarrierCycles);
    M.record("exec.occupancy", Result.Metrics.occupancy());
  }
  return Result;
}

} // namespace

RunResult SerialCpuBackend::execute(const ExecutablePlan &Plan,
                                    codegen::Evaluator &Eval,
                                    const RunOptions &Options) const {
  return scanPlan(Plan, Eval, Model, /*IsGpu=*/false, /*Threads=*/1,
                  Options);
}

RunResult SimulatedGpuBackend::execute(const ExecutablePlan &Plan,
                                       codegen::Evaluator &Eval,
                                       const RunOptions &Options) const {
  unsigned Threads =
      Options.Threads ? Options.Threads : Model.CoresPerMultiprocessor;
  return scanPlan(Plan, Eval, Model, /*IsGpu=*/true, Threads, Options);
}
