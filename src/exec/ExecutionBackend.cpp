//===- ExecutionBackend.cpp - Pluggable plan executors ----------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Besides the serial reference scan this file hosts the wavefront-
/// parallel scan: the affine schedule already proves every cell of a
/// partition independent (Sections 4.2–4.3), so contiguous ranges of
/// simulated-thread IDs are farmed out to real host workers and merged
/// back in fixed simulated-thread order after each partition. The merge
/// order plus the disjointness of table writes within a partition make
/// every observable — results, cost counters, modelled cycles, metrics,
/// timelines — bit-identical to the serial run for any worker count.
///
//===----------------------------------------------------------------------===//

#include "exec/ExecutionBackend.h"

#include "codegen/BytecodeVM.h"
#include "codegen/NativeJit.h"
#include "exec/ParallelFor.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <mutex>
#include <type_traits>

using namespace parrec;
using namespace parrec::exec;

namespace {

/// The ParRec_EVAL_AST escape hatch: force every execution onto the AST
/// tree-walker (e.g. to bisect a suspected VM miscompile). Checked once.
bool envForcesAstEvaluator() {
  static const bool Forced = std::getenv("ParRec_EVAL_AST") != nullptr ||
                             std::getenv("PARREC_EVAL_AST") != nullptr;
  return Forced;
}

/// How one scan was fanned out, for the run span and the registry.
struct ScanStats {
  unsigned Workers = 1;
  /// Partitions scanned by the full worker set (one fork/join each).
  uint64_t ForkJoins = 0;
  /// Partitions that fell back to worker 0 (below the grain threshold).
  uint64_t SerialPartitions = 0;
};

/// Accumulation state owned by one host worker. Everything the serial
/// scan accumulated per cell lands here first and is merged in worker
/// order (= simulated-thread order) after each partition. Cache-line
/// aligned so neighbouring workers never share a line.
struct alignas(64) WorkerSlot {
  gpu::CostCounter Cost;
  uint64_t Cells = 0;
  double TableMax = -std::numeric_limits<double>::infinity();
  double RootValue = 0.0;
  bool HasRoot = false;

  void reset() {
    Cost.reset();
    Cells = 0;
    TableMax = -std::numeric_limits<double>::infinity();
    HasRoot = false;
  }
};

/// Per-worker cell evaluator over the bytecode VM. The VM has mutable
/// registers, so each worker owns one instance; all instances bind to
/// the same Evaluator (a read-only operation) and therefore share its
/// log-space caches bit-for-bit.
struct VmEval {
  codegen::BytecodeVM Vm;

  template <typename TableT>
  double operator()(const int64_t *Point, const TableT &Table,
                    gpu::CostCounter &Delta) {
    return Vm.evalCell(Point, Table, Delta);
  }
};

/// Cell evaluator over the AST tree-walker. A bound Evaluator is
/// read-only during evalCell, so one instance serves every worker.
struct AstEval {
  const codegen::Evaluator *Eval;

  template <typename TableT>
  double operator()(const int64_t *Point, const TableT &Table,
                    gpu::CostCounter &Delta) {
    return Eval->evalCell(Point, Table, Delta);
  }
};

/// Scans the cells of partition \p P owned by simulated threads
/// [ThreadBegin, ThreadEnd), accumulating results into \p Slot and
/// per-thread cycles into \p Timer.
///
/// Thread safety when called from concurrent host workers: each
/// simulated thread T belongs to exactly one worker, so the
/// Timer.addThreadCycles(T, ...) targets are disjoint; and the affine
/// schedule guarantees no cell of partition P depends on another cell of
/// P, so Table.set targets are disjoint from every other worker's reads
/// and writes (see the DpTable invariant notes in Table.h).
template <bool CheckRoot, typename TableT, typename EvalT>
void scanThreadRange(const ExecutablePlan &Plan, poly::ScanContext &Ctx,
                     TableT &Table, const gpu::CostModel &Model,
                     bool IsGpu, bool TableInShared, unsigned Threads,
                     unsigned ThreadBegin, unsigned ThreadEnd, int64_t P,
                     gpu::BlockTimer &Timer, WorkerSlot &Slot,
                     EvalT &Eval) {
  unsigned N = Plan.Box.numDims();
  const int64_t *Root = Plan.Box.Upper.data();
  gpu::CostCounter Delta;
  for (unsigned T = ThreadBegin; T != ThreadEnd; ++T) {
    uint64_t ThreadCycles = 0;
    Plan.Nest.forEachPointForThread(
        Ctx, P, T, Threads, [&](const int64_t *Point) {
          Delta.reset();
          double Value = Eval(Point, Table, Delta);
          Table.set(Point, Value);
          Slot.Cost += Delta;
          ThreadCycles += IsGpu
                              ? Model.gpuCellCycles(Delta, TableInShared)
                              : Model.cpuCycles(Delta);
          ++Slot.Cells;
          if (Value > Slot.TableMax)
            Slot.TableMax = Value;
          if (CheckRoot && std::memcmp(Point, Root,
                                       N * sizeof(int64_t)) == 0) {
            Slot.RootValue = Value;
            Slot.HasRoot = true;
          }
        });
    if (ThreadCycles)
      Timer.addThreadCycles(T, ThreadCycles);
  }
}

/// The uniform unit of work the scan drivers below dispatch: scan the
/// cells of partition P owned by simulated threads [Begin, End). The
/// cell-wise scanner interprets the loop nest per point; the JIT scanner
/// hands the whole slice to one native kernel invocation.
template <typename TableT, typename EvalT>
struct CellScanner {
  const ExecutablePlan &Plan;
  TableT &Table;
  const gpu::CostModel &Model;
  bool IsGpu;
  bool TableInShared;
  EvalT Eval;
  poly::ScanContext Ctx;

  void operator()(bool CheckRoot, unsigned Threads, unsigned Begin,
                  unsigned End, int64_t P, gpu::BlockTimer &Timer,
                  WorkerSlot &Slot) {
    if (CheckRoot)
      scanThreadRange<true>(Plan, Ctx, Table, Model, IsGpu, TableInShared,
                            Threads, Begin, End, P, Timer, Slot, Eval);
    else
      scanThreadRange<false>(Plan, Ctx, Table, Model, IsGpu,
                             TableInShared, Threads, Begin, End, P, Timer,
                             Slot, Eval);
  }
};

/// Scanner over the natively jitted kernel: one call covers the whole
/// (partition, thread-range) slice — the kernel walks the baked loop
/// nest, writes the table through the baked slot addressing, accumulates
/// the wide cost lanes and per-thread modelled cycles, and captures the
/// running table max and the root cell. The fold below mirrors what
/// scanThreadRange accumulates per cell; one invocation per slot keeps
/// the strict-`>`/first-wins merge semantics exact.
struct JitScanner {
  codegen::JitKernelFn Fn = nullptr;
  codegen::JitArgs Args{};
  std::vector<uint64_t> Cycles; // One slot per simulated thread.

  void operator()(bool CheckRoot, unsigned Threads, unsigned Begin,
                  unsigned End, int64_t P, gpu::BlockTimer &Timer,
                  WorkerSlot &Slot) {
    codegen::JitSlot JS{};
    JS.TableMax = -std::numeric_limits<double>::infinity();
    Fn(&Args, P, Begin, End, Threads, CheckRoot ? 1 : 0, &JS,
       Cycles.data());
    Slot.Cost.Ops += JS.Ops;
    Slot.Cost.TableReads += JS.TableReads;
    Slot.Cost.TableWrites += JS.TableWrites;
    Slot.Cost.ModelReads += JS.ModelReads;
    Slot.Cost.Transcendentals += JS.Transcendentals;
    Slot.Cells += JS.Cells;
    if (JS.TableMax > Slot.TableMax)
      Slot.TableMax = JS.TableMax;
    if (JS.HasRoot) {
      Slot.RootValue = JS.RootValue;
      Slot.HasRoot = true;
    }
    for (unsigned T = Begin; T != End; ++T)
      if (Cycles[T])
        Timer.addThreadCycles(T, Cycles[T]);
  }
};

/// Merges one worker's partition results into the run totals. Callers
/// iterate slots in worker order, which equals simulated-thread order
/// (workers own contiguous thread ranges), which equals the serial
/// encounter order — so the first-among-equals semantics of the `>` max
/// matches the serial scan exactly.
void mergeSlot(const WorkerSlot &Slot, RunResult &Result,
               double &TableMax, uint64_t &PartitionCells) {
  Result.Cost += Slot.Cost;
  PartitionCells += Slot.Cells;
  if (Slot.TableMax > TableMax)
    TableMax = Slot.TableMax;
  if (Slot.HasRoot)
    Result.RootValue = Slot.RootValue;
}

/// The serial partition-by-partition scan core (Figure 8's template),
/// monomorphised over the concrete scanner (which fixes the table class
/// and cell evaluator, or the jitted kernel) so the per-cell path has no
/// virtual calls and no type-erased callback.
template <typename MakeScannerT>
void scanSerial(const ExecutablePlan &Plan, uint64_t SyncCycles,
                unsigned Threads, gpu::BlockTimer &Timer,
                RunResult &Result, const MakeScannerT &MakeScanner) {
  auto Scanner = MakeScanner();
  WorkerSlot Slot;
  double TableMax = -std::numeric_limits<double>::infinity();
  for (int64_t P = Plan.FirstPartition; P <= Plan.LastPartition; ++P) {
    // A sliding window eventually overwrites the root cell's plane, so
    // capture it in flight — but only within its own partition. With a
    // full table the root survives and is read once after the scan.
    uint64_t PartitionCells = 0;
    Slot.reset();
    Scanner(Plan.UseWindow && P == Plan.RootPartition, Threads, 0,
            Threads, P, Timer, Slot);
    mergeSlot(Slot, Result, TableMax, PartitionCells);
    Result.Cells += PartitionCells;
    Timer.closePartition(SyncCycles, P, PartitionCells);
  }
  Result.TableMax = TableMax;
}

/// The wavefront-parallel scan: the pool forks once for the whole run,
/// then every partition runs two barrier phases — scan (workers cover
/// contiguous simulated-thread ranges) and merge (worker 0 folds the
/// slots in worker order, closes the partition's lockstep timing, and
/// decides whether the next partition is worth fanning out). Short
/// partitions run entirely on worker 0 between the same barriers.
///
/// \p MakeScanner constructs one scanner (cell evaluator or jitted
/// kernel state) per worker, on that worker's thread.
template <typename MakeScannerT>
void scanParallel(const ExecutablePlan &Plan, uint64_t SyncCycles,
                  unsigned Threads, unsigned Workers,
                  uint64_t GrainCells, gpu::BlockTimer &Timer,
                  RunResult &Result, ScanStats &Stats,
                  const MakeScannerT &MakeScanner) {
  std::vector<WorkerSlot> Slots(Workers);
  SpinBarrier Barrier(Workers);

  // Scan-wide state. Only worker 0 writes, and only between the two
  // barriers of a partition; everyone else reads after the second
  // barrier, so no field needs to be atomic.
  struct {
    bool FanOut = false; // First partition seeds the estimate serially.
    double TableMax = -std::numeric_limits<double>::infinity();
    uint64_t ForkJoins = 0;
    uint64_t SerialPartitions = 0;
  } Shared;

  // A cell evaluation must not fail (every failure mode is caught at
  // planning time), but if one ever throws, the worker records the
  // error and keeps arriving at the barriers so nobody deadlocks; the
  // error is rethrown after the join.
  std::mutex ErrorMutex;
  std::exception_ptr FirstError;

  WorkerPool Pool(Workers);
  Pool.run([&](unsigned W) {
    WorkerSlot &Slot = Slots[W];
    auto Scanner = MakeScanner();
    for (int64_t P = Plan.FirstPartition; P <= Plan.LastPartition; ++P) {
      bool FanOut = Shared.FanOut;
      // Contiguous simulated-thread ranges keep the merge order equal
      // to the serial encounter order and give each worker whole cache
      // lines of BlockTimer's per-thread accumulators.
      unsigned Begin = 0, End = 0;
      if (FanOut) {
        Begin = static_cast<unsigned>(
            static_cast<uint64_t>(W) * Threads / Workers);
        End = static_cast<unsigned>(
            static_cast<uint64_t>(W + 1) * Threads / Workers);
      } else if (W == 0) {
        End = Threads;
      }
      Slot.reset();
      if (Begin != End) {
        try {
          Scanner(Plan.UseWindow && P == Plan.RootPartition, Threads,
                  Begin, End, P, Timer, Slot);
        } catch (...) {
          std::lock_guard<std::mutex> Lock(ErrorMutex);
          if (!FirstError)
            FirstError = std::current_exception();
        }
      }
      // Phase 1: every cell of partition P is written.
      Barrier.arriveAndWait();
      if (W == 0) {
        uint64_t PartitionCells = 0;
        for (const WorkerSlot &S : Slots)
          mergeSlot(S, Result, Shared.TableMax, PartitionCells);
        Result.Cells += PartitionCells;
        // closePartition reads and resets every thread's cycle
        // accumulator, hence the second barrier below before any worker
        // may charge cycles to the next partition.
        Timer.closePartition(SyncCycles, P, PartitionCells);
        ++(FanOut ? Shared.ForkJoins : Shared.SerialPartitions);
        // The previous partition's size is a cheap, deterministic
        // estimate of the next one's (diagonal lengths change by at
        // most a step): fan out only when the fork/join overhead is
        // worth paying.
        Shared.FanOut = PartitionCells >= GrainCells;
      }
      // Phase 2: the merge and timer reset are visible to everyone.
      Barrier.arriveAndWait();
    }
  });

  Result.TableMax = Shared.TableMax;
  Stats.ForkJoins = Shared.ForkJoins;
  Stats.SerialPartitions = Shared.SerialPartitions;
  if (FirstError)
    std::rethrow_exception(FirstError);
}

/// Resolves how many host workers this scan should use. 0 means the
/// whole host budget (pre-divided by runGpuBatch when nested under a
/// batch). A worker must own at least one simulated thread, and domains
/// too small to amortise thread start-up stay serial.
unsigned resolveScanWorkers(const ExecutablePlan &Plan,
                            const RunOptions &Options, unsigned Threads) {
  unsigned Workers =
      Options.ScanWorkers ? Options.ScanWorkers : hostWorkerBudget();
  Workers = std::min(Workers, Threads);
  if (Workers <= 1)
    return 1;
  uint64_t Volume = 1;
  for (unsigned D = 0; D != Plan.Box.numDims(); ++D) {
    uint64_t Extent = static_cast<uint64_t>(Plan.Box.extent(D));
    if (Extent && Volume > std::numeric_limits<uint64_t>::max() / Extent)
      return Workers; // Saturated: certainly large enough.
    Volume *= Extent;
  }
  if (Volume < 4 * std::max<uint64_t>(Options.ScanGrainCells, 1))
    return 1;
  return Workers;
}

/// Dispatches the scan over {bytecode VM, AST walker} x {sliding window,
/// full table} x {serial, wavefront-parallel} and fills in the result
/// summary. The VM runs whenever the plan carries a compiled program and
/// nothing opts out.
RunResult scanPlan(const ExecutablePlan &Plan, codegen::Evaluator &Eval,
                   const gpu::CostModel &Model, bool IsGpu,
                   unsigned Threads, const RunOptions &Options) {
  bool Trace = Options.Trace || obs::Tracer::enabled();

  std::shared_ptr<DpTable> Table;
  {
    obs::Span AllocSpan("exec.alloc_table", "exec");
    Table = Plan.makeTable();
    if (AllocSpan.active()) {
      AllocSpan.arg("bytes", Table->bytes());
      AllocSpan.arg("window", Plan.UseWindow);
    }
  }
  bool TableInShared = IsGpu && Table->bytes() <= Model.SharedMemBytes;

  obs::Span RunSpan("exec.scan", "exec");
  gpu::BlockTimer Timer(Threads, /*RecordTimeline=*/Trace);
  RunResult Result;
  Result.UsedSchedule = Plan.Sched;
  Result.TableMax = -std::numeric_limits<double>::infinity();

  bool ForceAst = Options.UseAstEvaluator || envForcesAstEvaluator() ||
                  Options.Evaluator == EvalKind::Ast;
  // Jit silently degrades to the VM when the plan carries no kernel:
  // the jit pass already warned and counted the fallback at plan time.
  bool UseJit = !ForceAst && Options.Evaluator == EvalKind::Jit &&
                Plan.Kernel != nullptr && Plan.Kernel->fn() != nullptr &&
                Plan.Program != nullptr;
  bool UseVm = !ForceAst && !UseJit && Plan.Program != nullptr;
  ScanStats Stats;
  Stats.Workers = resolveScanWorkers(Plan, Options, Threads);
  uint64_t Grain = std::max<uint64_t>(Options.ScanGrainCells, 1);
  uint64_t SyncCycles = IsGpu ? Model.SyncCycles : 0;

  // One binding per run (the jitted analogue of BytecodeVM::bind),
  // shared read-only by every worker's JitScanner.
  codegen::JitBinding JitBind;
  if (UseJit)
    JitBind.bind(*Plan.Program, Eval);

  auto Drive = [&](const auto &MakeScanner) {
    if (Stats.Workers <= 1) {
      scanSerial(Plan, SyncCycles, Threads, Timer, Result, MakeScanner);
      return;
    }
    obs::Span ForkSpan("exec.scan_fork", "exec");
    scanParallel(Plan, SyncCycles, Threads, Stats.Workers, Grain, Timer,
                 Result, Stats, MakeScanner);
    if (ForkSpan.active()) {
      ForkSpan.arg("workers", Stats.Workers);
      ForkSpan.arg("fork_joins", Stats.ForkJoins);
      ForkSpan.arg("serial_partitions", Stats.SerialPartitions);
    }
  };

  auto RunOn = [&](auto &ConcreteTable) {
    using TableT = std::remove_reference_t<decltype(ConcreteTable)>;
    if (UseJit) {
      Drive([&] {
        JitScanner S;
        S.Fn = Plan.Kernel->fn();
        S.Args = JitBind.args();
        S.Args.Table = ConcreteTable.rawData();
        // The kernel bakes the cycle *formula*; the weights come from
        // the live cost model so one cached kernel serves both backends
        // and both table residencies.
        S.Args.CycOp = IsGpu ? Model.GpuCyclesPerOp : Model.CpuCyclesPerOp;
        S.Args.CycTrans = IsGpu ? Model.GpuTranscendentalCycles
                                : Model.CpuTranscendentalCycles;
        S.Args.CycTable = IsGpu ? (TableInShared
                                       ? Model.SharedMemLatencyCycles
                                       : Model.GlobalMemLatencyCycles)
                                : Model.CpuMemLatencyCycles;
        S.Args.CycModel =
            IsGpu ? Model.SharedMemLatencyCycles : Model.CpuMemLatencyCycles;
        S.Cycles.assign(Threads, 0);
        return S;
      });
    } else if (UseVm) {
      Drive([&] {
        VmEval E{codegen::BytecodeVM(Plan.Program)};
        E.Vm.bind(Eval);
        return CellScanner<TableT, VmEval>{
            Plan,  ConcreteTable, Model, IsGpu, TableInShared,
            std::move(E), Plan.Nest.makeScanContext({})};
      });
    } else {
      Drive([&] {
        return CellScanner<TableT, AstEval>{
            Plan,  ConcreteTable, Model, IsGpu, TableInShared,
            AstEval{&Eval}, Plan.Nest.makeScanContext({})};
      });
    }
  };
  // Monomorphise on the concrete table class (both are final) so every
  // get/set in the hot loop devirtualises.
  if (Plan.UseWindow)
    RunOn(static_cast<SlidingWindowTable &>(*Table));
  else
    RunOn(static_cast<FullTable &>(*Table));

  if (!Plan.UseWindow)
    Result.RootValue = Table->get(Plan.Box.Upper.data());

  Result.Partitions = Plan.numPartitions();
  Result.Cycles = Timer.totalCycles();
  if (IsGpu) {
    Result.Metrics.Cycles = Result.Cycles;
    Result.Metrics.Partitions = static_cast<uint64_t>(Result.Partitions);
    Result.Metrics.CellsComputed = Result.Cells;
    Result.Metrics.TableBytes = Table->bytes();
    if (TableInShared)
      Result.Metrics.SharedAccesses = Result.Cost.tableAccesses();
    else
      Result.Metrics.GlobalAccesses = Result.Cost.tableAccesses();
    Result.Metrics.SharedAccesses += Result.Cost.ModelReads;
    Result.Metrics.BarrierCycles = Timer.barrierCycles();
    Result.Metrics.ThreadCycles = Timer.threadCycleSum();
    Result.Metrics.CriticalCycles = Timer.criticalCycles();
    Result.Metrics.Threads = Threads;
  }
  if (Trace)
    Result.Timeline =
        std::make_shared<const std::vector<gpu::PartitionSample>>(
            Timer.takeTimeline());
  if (Options.KeepTable)
    Result.Table = Table;

  if (RunSpan.active()) {
    RunSpan.arg("backend", IsGpu ? "simulated-gpu" : "serial-cpu");
    RunSpan.arg("vm", UseVm);
    RunSpan.arg("evaluator", UseJit ? "jit" : (UseVm ? "vm" : "ast"));
    if (Options.FlowId != 0) {
      // Terminal hop of a served request's flow: the serve.enqueue ->
      // coalesce -> dispatch chain arrows end on this scan slice.
      RunSpan.arg("request", Options.FlowId);
      RunSpan.flowEnd(Options.FlowId);
    }
    RunSpan.arg("cells", Result.Cells);
    RunSpan.arg("partitions", static_cast<uint64_t>(Result.Partitions));
    RunSpan.arg("cycles", Result.Cycles);
    RunSpan.arg("threads", Threads);
    RunSpan.arg("scan_workers", Stats.Workers);
    if (IsGpu)
      RunSpan.arg("occupancy", Result.Metrics.occupancy());
  }

  // Per-run (never per-cell) registry updates.
  obs::MetricsRegistry &M = obs::MetricsRegistry::global();
  M.add("exec.runs");
  M.add("exec.runs_by_evaluator",
        obs::Labels{{"evaluator", UseJit ? "jit" : (UseVm ? "vm" : "ast")}});
  M.add("exec.cells_computed", Result.Cells);
  M.add("exec.cycles", Result.Cycles);
  M.add("exec.partitions", static_cast<uint64_t>(Result.Partitions));
  M.record("exec.scan_workers", Stats.Workers);
  if (Stats.Workers > 1) {
    M.add("exec.scan_fork_joins", Stats.ForkJoins);
    M.add("exec.scan_serial_partitions", Stats.SerialPartitions);
  }
  if (IsGpu) {
    M.add("exec.shared_accesses", Result.Metrics.SharedAccesses);
    M.add("exec.global_accesses", Result.Metrics.GlobalAccesses);
    M.add("exec.barrier_cycles", Result.Metrics.BarrierCycles);
    M.record("exec.occupancy", Result.Metrics.occupancy());
  }
  return Result;
}

} // namespace

RunResult SerialCpuBackend::execute(const ExecutablePlan &Plan,
                                    codegen::Evaluator &Eval,
                                    const RunOptions &Options) const {
  // Threads == 1 clamps the scan-worker resolution to 1: the CPU
  // reference is serial by definition.
  return scanPlan(Plan, Eval, Model, /*IsGpu=*/false, /*Threads=*/1,
                  Options);
}

RunResult SimulatedGpuBackend::execute(const ExecutablePlan &Plan,
                                       codegen::Evaluator &Eval,
                                       const RunOptions &Options) const {
  // Precedence: an explicit request wins, then the autotuner's pick
  // stored on the plan, then one thread per multiprocessor core.
  unsigned Threads = Options.Threads
                         ? Options.Threads
                         : (Plan.TunedThreads ? Plan.TunedThreads
                                              : Model.CoresPerMultiprocessor);
  return scanPlan(Plan, Eval, Model, /*IsGpu=*/true, Threads, Options);
}
