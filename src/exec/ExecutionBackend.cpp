//===- ExecutionBackend.cpp - Pluggable plan executors ----------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "exec/ExecutionBackend.h"

#include <cstring>
#include <limits>

using namespace parrec;
using namespace parrec::exec;

namespace {

/// The partition-by-partition scan shared by both backends (Figure 8's
/// template). \p IsGpu selects lockstep GPU cycle accounting (with the
/// table's shared-vs-global residency) over serial CPU accounting.
RunResult scanPlan(const ExecutablePlan &Plan, codegen::Evaluator &Eval,
                   const gpu::CostModel &Model, bool IsGpu,
                   unsigned Threads, bool KeepTable) {
  std::shared_ptr<DpTable> Table = Plan.makeTable();
  bool TableInShared = IsGpu && Table->bytes() <= Model.SharedMemBytes;
  unsigned N = Plan.Box.numDims();

  gpu::BlockTimer Timer(Threads);
  RunResult Result;
  Result.UsedSchedule = Plan.Sched;
  Result.TableMax = -std::numeric_limits<double>::infinity();
  const std::vector<int64_t> &Root = Plan.Box.Upper;

  gpu::CostCounter Cost;
  for (int64_t P = Plan.FirstPartition; P <= Plan.LastPartition; ++P) {
    // A sliding window eventually overwrites the root cell's plane, so
    // capture it in flight — but only within its own partition. With a
    // full table the root survives and is read once after the scan.
    bool CheckRoot = Plan.UseWindow && P == Plan.RootPartition;
    for (unsigned T = 0; T != Threads; ++T) {
      Plan.Nest.forEachPointForThread(
          {}, P, T, Threads, [&](const int64_t *Point) {
            gpu::CostCounter Before = Cost;
            double Value = Eval.evalCell(Point, *Table, Cost);
            Table->set(Point, Value);
            gpu::CostCounter Delta = Cost - Before;
            Timer.addThreadCycles(
                T, IsGpu ? Model.gpuCellCycles(Delta, TableInShared)
                         : Model.cpuCycles(Delta));
            ++Result.Cells;
            if (Value > Result.TableMax)
              Result.TableMax = Value;
            if (CheckRoot && std::memcmp(Point, Root.data(),
                                         N * sizeof(int64_t)) == 0)
              Result.RootValue = Value;
          });
    }
    Timer.closePartition(IsGpu ? Model.SyncCycles : 0);
  }
  if (!Plan.UseWindow)
    Result.RootValue = Table->get(Root.data());

  Result.Partitions = Plan.numPartitions();
  Result.Cost = Cost;
  Result.Cycles = Timer.totalCycles();
  if (IsGpu) {
    Result.Metrics.Cycles = Result.Cycles;
    Result.Metrics.Partitions = static_cast<uint64_t>(Result.Partitions);
    Result.Metrics.CellsComputed = Result.Cells;
    Result.Metrics.TableBytes = Table->bytes();
    if (TableInShared)
      Result.Metrics.SharedAccesses = Cost.tableAccesses();
    else
      Result.Metrics.GlobalAccesses = Cost.tableAccesses();
    Result.Metrics.SharedAccesses += Cost.ModelReads;
  }
  if (KeepTable)
    Result.Table = Table;
  return Result;
}

} // namespace

RunResult SerialCpuBackend::execute(const ExecutablePlan &Plan,
                                    codegen::Evaluator &Eval,
                                    const RunOptions &Options) const {
  return scanPlan(Plan, Eval, Model, /*IsGpu=*/false, /*Threads=*/1,
                  Options.KeepTable);
}

RunResult SimulatedGpuBackend::execute(const ExecutablePlan &Plan,
                                       codegen::Evaluator &Eval,
                                       const RunOptions &Options) const {
  unsigned Threads =
      Options.Threads ? Options.Threads : Model.CoresPerMultiprocessor;
  return scanPlan(Plan, Eval, Model, /*IsGpu=*/true, Threads,
                  Options.KeepTable);
}
