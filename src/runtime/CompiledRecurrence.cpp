//===- CompiledRecurrence.cpp - End-to-end compilation & execution ----------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "runtime/CompiledRecurrence.h"

#include "compiler/Pipeline.h"
#include "exec/ParallelFor.h"
#include "gpu/Pipeline.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <algorithm>

using namespace parrec;
using namespace parrec::runtime;
using codegen::ArgValue;
using codegen::Evaluator;
using lang::DimKind;
using solver::DomainBox;
using solver::Schedule;

static std::vector<std::string>
allAlphabets(std::vector<std::string> Extra) {
  std::vector<std::string> Names = {"dna", "rna", "protein", "en"};
  for (std::string &E : Extra)
    Names.push_back(std::move(E));
  return Names;
}

/// Both compilation entry points funnel through here: run the default
/// frontend pass pipeline (parse -> sema -> dependence -> validate ->
/// bytecode) over \p M and package the artifacts.
std::optional<CompiledRecurrence>
CompiledRecurrence::fromModule(compiler::CompilationModule &M) {
  obs::Span CompileSpan("compile.function", "compiler");
  if (!compiler::runFrontend(M) || !M.Info)
    return std::nullopt;
  if (CompileSpan.active())
    CompileSpan.arg("function", M.Decl->Name);
  CompiledRecurrence C;
  C.Decl = std::move(M.Decl);
  C.Info = std::move(*M.Info);
  C.Info.Decl = C.Decl.get();
  // The cell body compiled to bytecode once per function; null (an
  // unsupported construct) keeps the AST evaluator as the executor.
  C.Bytecode = std::move(M.Bytecode);
  C.Plans = std::make_unique<exec::PlanCache>();
  return C;
}

std::optional<CompiledRecurrence>
CompiledRecurrence::compile(const std::string &Source,
                            DiagnosticEngine &Diags,
                            std::vector<std::string> ExtraAlphabets) {
  compiler::CompilationModule M(Diags);
  M.Source = &Source;
  M.Alphabets = allAlphabets(std::move(ExtraAlphabets));
  return fromModule(M);
}

std::optional<CompiledRecurrence>
CompiledRecurrence::fromDecl(std::unique_ptr<lang::FunctionDecl> Decl,
                             DiagnosticEngine &Diags,
                             std::vector<std::string> ExtraAlphabets) {
  compiler::CompilationModule M(Diags);
  M.Decl = std::move(Decl);
  M.Alphabets = allAlphabets(std::move(ExtraAlphabets));
  return fromModule(M);
}

std::optional<DomainBox>
CompiledRecurrence::domainFor(const std::vector<ArgValue> &Args,
                              DiagnosticEngine &Diags) const {
  if (Args.size() != Decl->Params.size()) {
    Diags.error({}, "expected " + std::to_string(Decl->Params.size()) +
                        " arguments for '" + Decl->Name + "', got " +
                        std::to_string(Args.size()));
    return std::nullopt;
  }
  DomainBox Box;
  for (const lang::DimInfo &Dim : Info.Dims) {
    int64_t Upper = 0;
    switch (Dim.Kind) {
    case DimKind::IntDim:
      Upper = Args[Dim.ParamIndex].Int;
      break;
    case DimKind::IndexDim: {
      const bio::Sequence *Seq =
          Args[static_cast<unsigned>(Dim.RefParamIndex)].Seq;
      if (!Seq) {
        Diags.error({}, "sequence parameter '" +
                            Decl->Params[Dim.RefParamIndex].Name +
                            "' is not bound");
        return std::nullopt;
      }
      Upper = Seq->length(); // Indices run 0..len inclusive.
      break;
    }
    case DimKind::StateDim: {
      const bio::Hmm *Hmm =
          Args[static_cast<unsigned>(Dim.RefParamIndex)].Hmm;
      if (!Hmm) {
        Diags.error({}, "hmm parameter '" +
                            Decl->Params[Dim.RefParamIndex].Name +
                            "' is not bound");
        return std::nullopt;
      }
      Upper = static_cast<int64_t>(Hmm->numStates()) - 1;
      break;
    }
    case DimKind::TransitionDim: {
      const bio::Hmm *Hmm =
          Args[static_cast<unsigned>(Dim.RefParamIndex)].Hmm;
      if (!Hmm) {
        Diags.error({}, "hmm parameter '" +
                            Decl->Params[Dim.RefParamIndex].Name +
                            "' is not bound");
        return std::nullopt;
      }
      Upper = static_cast<int64_t>(Hmm->numTransitions()) - 1;
      break;
    }
    }
    if (Upper < 0) {
      Diags.error({}, "dimension '" + Dim.Name + "' has an empty domain");
      return std::nullopt;
    }
    Box.Lower.push_back(0);
    Box.Upper.push_back(Upper);
  }
  return Box;
}

std::optional<Schedule>
CompiledRecurrence::scheduleFor(const DomainBox &Box,
                                DiagnosticEngine &Diags) const {
  return solver::findMinimalSchedule(Info.Recurrence, Box, Diags);
}

const std::optional<std::vector<solver::ConditionalSchedule>> &
CompiledRecurrence::conditionalSchedules(DiagnosticEngine &Diags) const {
  if (!ConditionalCache) {
    if (Info.Recurrence.allUniform()) {
      ConditionalCache =
          solver::findConditionalSchedules(Info.Recurrence, Diags);
    } else {
      ConditionalCache = std::optional<
          std::vector<solver::ConditionalSchedule>>(std::nullopt);
    }
  }
  return *ConditionalCache;
}

std::shared_ptr<const exec::ExecutablePlan>
CompiledRecurrence::planFor(const DomainBox &Box,
                            const RunOptions &Options,
                            const Schedule *Preselected,
                            DiagnosticEngine &Diags,
                            const gpu::CostModel *CostModel) const {
  // A forced schedule takes precedence over a preselected one, matching
  // the batch path's selection logic.
  const Schedule *Requested =
      Options.ForcedSchedule ? &*Options.ForcedSchedule : Preselected;
  obs::Span PlanSpan("exec.plan_lookup", "exec");
  if (PlanSpan.active())
    PlanSpan.arg("function", Decl->Name);
  // Autotune is part of the key: tuned and untuned plans for the same
  // box may differ, and a hit on a tuned plan skips the whole search.
  // So is Jit: a VM-first run must not pin a kernel-less plan that a
  // later --evaluator=jit run would then hit.
  bool WantJit = Options.Evaluator == exec::EvalKind::Jit;
  exec::PlanKey Key =
      exec::PlanKey::make(Box, Options.UseSlidingWindow, Options.KeepTable,
                          Requested, Options.Autotune, WantJit);
  if (std::shared_ptr<const exec::ExecutablePlan> Cached =
          Plans->lookup(Key)) {
    if (PlanSpan.active())
      PlanSpan.arg("cache", "hit");
    return Cached;
  }
  if (PlanSpan.active())
    PlanSpan.arg("cache", "miss");

  std::vector<std::string> DimNames;
  for (const lang::DimInfo &Dim : Info.Dims)
    DimNames.push_back(Dim.Name);
  exec::PlanRequest Req;
  Req.UseSlidingWindow = Options.UseSlidingWindow;
  Req.KeepTable = Options.KeepTable;
  Req.ForcedSchedule =
      Options.ForcedSchedule ? &*Options.ForcedSchedule : nullptr;
  Req.PreselectedSchedule = Preselected;
  Req.Program = Bytecode;
  Req.Autotune = Options.Autotune;
  Req.Jit = WantJit;
  Req.JitCacheDir = Options.JitCacheDir;
  Req.CostModel = CostModel;
  std::optional<exec::ExecutablePlan> Plan =
      exec::buildPlan(Info.Recurrence, DimNames, Box, Req, Diags);
  if (!Plan)
    return nullptr;
  auto Shared =
      std::make_shared<const exec::ExecutablePlan>(std::move(*Plan));
  Plans->insert(Key, Shared);
  return Shared;
}

std::optional<RunResult>
CompiledRecurrence::runSingle(const std::vector<ArgValue> &Args,
                              const exec::ExecutionBackend &Backend,
                              DiagnosticEngine &Diags,
                              const RunOptions &Options,
                              const gpu::CostModel *CostModel) const {
  std::optional<DomainBox> Box = domainFor(Args, Diags);
  if (!Box)
    return std::nullopt;
  std::shared_ptr<const exec::ExecutablePlan> Plan =
      planFor(*Box, Options, /*Preselected=*/nullptr, Diags, CostModel);
  if (!Plan)
    return std::nullopt;
  Evaluator Eval(*Decl, Info);
  Eval.bind(Args);
  RunResult Result = Backend.execute(*Plan, Eval, Options);
  // A single problem occupies one block: device lane 0 of the trace.
  if (obs::Tracer::enabled() && Result.Timeline)
    gpu::emitBlockTimeline(0, *Result.Timeline);
  return Result;
}

std::optional<RunResult>
CompiledRecurrence::runCpu(const std::vector<ArgValue> &Args,
                           const gpu::CostModel &Model,
                           DiagnosticEngine &Diags,
                           const RunOptions &Options) const {
  return runSingle(Args, exec::SerialCpuBackend(Model), Diags, Options,
                   &Model);
}

std::optional<RunResult>
CompiledRecurrence::runGpu(const std::vector<ArgValue> &Args,
                           const gpu::Device &Device,
                           DiagnosticEngine &Diags,
                           const RunOptions &Options) const {
  return runSingle(Args, exec::SimulatedGpuBackend(Device.costModel()),
                   Diags, Options, &Device.costModel());
}

std::optional<BatchResult> CompiledRecurrence::runGpuBatch(
    const std::vector<std::vector<ArgValue>> &Problems,
    const gpu::Device &Device, DiagnosticEngine &Diags,
    const RunOptions &Options) const {
  obs::Span BatchSpan("exec.batch", "exec");
  if (BatchSpan.active()) {
    BatchSpan.arg("function", Decl->Name);
    BatchSpan.arg("problems", static_cast<uint64_t>(Problems.size()));
  }
  // Conditional parallelisation (Section 4.7): derive the candidate
  // schedule set once, then pick the minimal candidate per problem. When
  // the descents are not uniform this fails and we fall back to
  // per-problem synthesis — a fallback, not an error, so the derivation
  // gets a scratch diagnostic engine.
  DiagnosticEngine Scratch;
  const auto &Candidates = conditionalSchedules(Scratch);

  // Plan every problem up front on this thread: the domain box is
  // computed exactly once per problem, diagnostics stay single-threaded,
  // and same-shaped problems share one cached plan.
  std::vector<std::shared_ptr<const exec::ExecutablePlan>> Plans;
  Plans.reserve(Problems.size());
  for (const std::vector<ArgValue> &Args : Problems) {
    std::optional<DomainBox> Box = domainFor(Args, Diags);
    if (!Box)
      return std::nullopt;
    const Schedule *Preselected = nullptr;
    if (!Options.ForcedSchedule && Candidates)
      Preselected = &solver::selectSchedule(*Candidates, *Box).S;
    std::shared_ptr<const exec::ExecutablePlan> Plan =
        planFor(*Box, Options, Preselected, Diags, &Device.costModel());
    if (!Plan)
      return std::nullopt;
    Plans.push_back(std::move(Plan));
  }

  // Execute: each problem is one simulated multiprocessor, independent
  // by construction, so the simulations fan out across host workers.
  // Index-addressed result slots keep ordering deterministic.
  BatchResult Batch;
  Batch.Problems.resize(Problems.size());
  exec::SimulatedGpuBackend Backend(Device.costModel());
  unsigned BatchWorkers =
      exec::resolveWorkerCount(Options.BatchWorkers, Problems.size());
  // The two fan-out axes share one host budget: an auto (0) scan-worker
  // request resolves to the budget left after the batch stripe, so
  // batch x scan nesting never oversubscribes. An explicit request is
  // obeyed verbatim — results are identical either way.
  RunOptions PerProblem = Options;
  if (!PerProblem.ScanWorkers)
    PerProblem.ScanWorkers =
        std::max(1u, exec::hostWorkerBudget() / BatchWorkers);
  // The pipeline planner re-times the batch from per-partition
  // timelines, so pipelined runs always record them; the extra samples
  // are dropped below unless the caller asked to keep them. A globally
  // enabled tracer does not keep them either — device slices are
  // emitted before the drop, and the barrier path leaves Timeline empty
  // in that case, so keeping it would break bit-identity.
  bool WantTimeline = Options.Trace;
  if (Options.Pipeline)
    PerProblem.Trace = true;
  exec::parallelFor(
      BatchWorkers, Problems.size(), [&](size_t I) {
        Evaluator Eval(*Decl, Info);
        Eval.bind(Problems[I]);
        Batch.Problems[I] = Backend.execute(*Plans[I], Eval, PerProblem);
        // One device lane per problem: each simulates its own block on
        // its own multiprocessor. Pipelined batches emit after planning
        // instead, with overlapped per-stage offsets.
        if (!Options.Pipeline && obs::Tracer::enabled() &&
            Batch.Problems[I].Timeline)
          gpu::emitBlockTimeline(static_cast<unsigned>(I),
                                 *Batch.Problems[I].Timeline);
      });

  {
    obs::Span DispatchSpan("exec.dispatch", "exec");
    if (Options.Pipeline) {
      // Systolic dispatch: feed problems to the planner in submission
      // order; it packs underfilled blocks (when asked), overlaps
      // consecutive launches' partitions on each multiprocessor, and
      // yields per-problem completion cycles.
      gpu::PipelinePlanner Planner(Device.costModel(), Options.PackSmall,
                                   /*RecordStageStarts=*/
                                   obs::Tracer::enabled());
      for (RunResult &R : Batch.Problems)
        Planner.add(gpu::PipelineProfile::make(
            R.Timeline, R.Cycles,
            static_cast<unsigned>(R.Metrics.Threads)));
      Planner.finish();
      const gpu::PipelineStats &S = Planner.stats();
      Batch.TotalCycles = S.MakespanCycles;
      Batch.OverlapCycles = S.OverlapCycles;
      Batch.IdleCycles = S.IdleCycles;
      Batch.CompletionCycles.resize(Batch.Problems.size());
      for (size_t I = 0; I != Batch.Problems.size(); ++I)
        Batch.CompletionCycles[I] = Planner.placement(I).CompletionCycles;
      obs::MetricsRegistry &M = obs::MetricsRegistry::global();
      for (size_t Mp = 0; Mp != S.MultiprocessorFinish.size(); ++Mp) {
        M.observe("exec.pipeline_overlap_cycles",
                  static_cast<double>(S.MultiprocessorOverlap[Mp]));
        M.observe("exec.device_idle_cycles",
                  static_cast<double>(S.MultiprocessorIdle[Mp]));
      }
      if (obs::Tracer::enabled())
        for (size_t I = 0; I != Batch.Problems.size(); ++I)
          if (Batch.Problems[I].Timeline) {
            const gpu::PipelinePlacement &P = Planner.placement(I);
            gpu::emitBlockTimeline(P.Multiprocessor,
                                   *Batch.Problems[I].Timeline,
                                   P.StageStartCycles, P.LaneOffset, I);
          }
      if (!WantTimeline)
        for (RunResult &R : Batch.Problems)
          R.Timeline.reset();
      if (DispatchSpan.active()) {
        DispatchSpan.arg("problems",
                         static_cast<uint64_t>(Batch.Problems.size()));
        DispatchSpan.arg("makespan_cycles", Batch.TotalCycles);
        DispatchSpan.arg("pipelined", uint64_t{1});
        DispatchSpan.arg("groups", S.Groups);
        DispatchSpan.arg("overlap_cycles", S.OverlapCycles);
        DispatchSpan.arg("idle_cycles", S.IdleCycles);
      }
    } else {
      std::vector<uint64_t> ProblemCycles;
      ProblemCycles.reserve(Batch.Problems.size());
      for (const RunResult &R : Batch.Problems)
        ProblemCycles.push_back(R.Cycles);
      Batch.TotalCycles = Device.dispatchProblems(ProblemCycles);
      // Under the barrier dispatcher nothing resolves before the batch
      // drains.
      Batch.CompletionCycles.assign(Batch.Problems.size(),
                                    Batch.TotalCycles);
      if (DispatchSpan.active()) {
        DispatchSpan.arg("problems",
                         static_cast<uint64_t>(ProblemCycles.size()));
        DispatchSpan.arg("makespan_cycles", Batch.TotalCycles);
      }
    }
  }
  Batch.Seconds = Device.costModel().gpuSeconds(Batch.TotalCycles);
  if (BatchSpan.active()) {
    BatchSpan.arg("total_cycles", Batch.TotalCycles);
    BatchSpan.arg("modelled_seconds", Batch.Seconds);
  }
  return Batch;
}
