//===- CompiledRecurrence.cpp - End-to-end compilation & execution ----------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "runtime/CompiledRecurrence.h"

#include "lang/Parser.h"
#include "poly/LoopGen.h"
#include "runtime/Table.h"

#include <algorithm>
#include <cstring>

using namespace parrec;
using namespace parrec::runtime;
using codegen::ArgValue;
using codegen::Evaluator;
using lang::DimKind;
using solver::DomainBox;
using solver::Schedule;

static std::vector<std::string>
allAlphabets(std::vector<std::string> Extra) {
  std::vector<std::string> Names = {"dna", "rna", "protein", "en"};
  for (std::string &E : Extra)
    Names.push_back(std::move(E));
  return Names;
}

std::optional<CompiledRecurrence>
CompiledRecurrence::compile(const std::string &Source,
                            DiagnosticEngine &Diags,
                            std::vector<std::string> ExtraAlphabets) {
  lang::Parser P(Source, Diags);
  std::unique_ptr<lang::FunctionDecl> Decl = P.parseFunctionOnly();
  if (!Decl || Diags.hasErrors())
    return std::nullopt;
  return fromDecl(std::move(Decl), Diags, std::move(ExtraAlphabets));
}

std::optional<CompiledRecurrence>
CompiledRecurrence::fromDecl(std::unique_ptr<lang::FunctionDecl> Decl,
                             DiagnosticEngine &Diags,
                             std::vector<std::string> ExtraAlphabets) {
  lang::Sema S(Diags, allAlphabets(std::move(ExtraAlphabets)));
  std::optional<lang::FunctionInfo> Info = S.analyze(*Decl);
  if (!Info)
    return std::nullopt;
  if (!codegen::validateForExecution(*Decl, Diags))
    return std::nullopt;
  CompiledRecurrence C;
  C.Decl = std::move(Decl);
  C.Info = std::move(*Info);
  C.Info.Decl = C.Decl.get();
  return C;
}

std::optional<DomainBox>
CompiledRecurrence::domainFor(const std::vector<ArgValue> &Args,
                              DiagnosticEngine &Diags) const {
  if (Args.size() != Decl->Params.size()) {
    Diags.error({}, "expected " + std::to_string(Decl->Params.size()) +
                        " arguments for '" + Decl->Name + "', got " +
                        std::to_string(Args.size()));
    return std::nullopt;
  }
  DomainBox Box;
  for (const lang::DimInfo &Dim : Info.Dims) {
    int64_t Upper = 0;
    switch (Dim.Kind) {
    case DimKind::IntDim:
      Upper = Args[Dim.ParamIndex].Int;
      break;
    case DimKind::IndexDim: {
      const bio::Sequence *Seq =
          Args[static_cast<unsigned>(Dim.RefParamIndex)].Seq;
      if (!Seq) {
        Diags.error({}, "sequence parameter '" +
                            Decl->Params[Dim.RefParamIndex].Name +
                            "' is not bound");
        return std::nullopt;
      }
      Upper = Seq->length(); // Indices run 0..len inclusive.
      break;
    }
    case DimKind::StateDim: {
      const bio::Hmm *Hmm =
          Args[static_cast<unsigned>(Dim.RefParamIndex)].Hmm;
      if (!Hmm) {
        Diags.error({}, "hmm parameter '" +
                            Decl->Params[Dim.RefParamIndex].Name +
                            "' is not bound");
        return std::nullopt;
      }
      Upper = static_cast<int64_t>(Hmm->numStates()) - 1;
      break;
    }
    case DimKind::TransitionDim: {
      const bio::Hmm *Hmm =
          Args[static_cast<unsigned>(Dim.RefParamIndex)].Hmm;
      if (!Hmm) {
        Diags.error({}, "hmm parameter '" +
                            Decl->Params[Dim.RefParamIndex].Name +
                            "' is not bound");
        return std::nullopt;
      }
      Upper = static_cast<int64_t>(Hmm->numTransitions()) - 1;
      break;
    }
    }
    if (Upper < 0) {
      Diags.error({}, "dimension '" + Dim.Name + "' has an empty domain");
      return std::nullopt;
    }
    Box.Lower.push_back(0);
    Box.Upper.push_back(Upper);
  }
  return Box;
}

std::optional<Schedule>
CompiledRecurrence::scheduleFor(const DomainBox &Box,
                                DiagnosticEngine &Diags) const {
  return solver::findMinimalSchedule(Info.Recurrence, Box, Diags);
}

const std::optional<std::vector<solver::ConditionalSchedule>> &
CompiledRecurrence::conditionalSchedules(DiagnosticEngine &Diags) const {
  if (!ConditionalCache) {
    if (Info.Recurrence.allUniform()) {
      ConditionalCache =
          solver::findConditionalSchedules(Info.Recurrence, Diags);
    } else {
      ConditionalCache = std::optional<
          std::vector<solver::ConditionalSchedule>>(std::nullopt);
    }
  }
  return *ConditionalCache;
}

std::optional<RunResult> CompiledRecurrence::runInternal(
    const std::vector<ArgValue> &Args, const gpu::CostModel &Model,
    bool IsGpu, DiagnosticEngine &Diags, const RunOptions &Options,
    std::optional<Schedule> PreselectedSchedule) const {
  std::optional<DomainBox> Box = domainFor(Args, Diags);
  if (!Box)
    return std::nullopt;
  unsigned N = Box->numDims();

  // 1. The schedule: forced, preselected (batch), or freshly minimised.
  Schedule Sched;
  if (Options.ForcedSchedule) {
    if (!solver::verifySchedule(Info.Recurrence, *Options.ForcedSchedule,
                                *Box, Diags))
      return std::nullopt;
    Sched = *Options.ForcedSchedule;
  } else if (PreselectedSchedule) {
    Sched = std::move(*PreselectedSchedule);
  } else {
    std::optional<Schedule> Minimal = scheduleFor(*Box, Diags);
    if (!Minimal)
      return std::nullopt;
    Sched = std::move(*Minimal);
  }

  // 2. The table: sliding window (Section 4.8) when enabled and legal.
  std::optional<int64_t> Window =
      solver::slidingWindowDepth(Info.Recurrence, Sched);
  int DropDim = Window ? pickWindowDropDim(Sched, *Box) : -1;
  bool UseWindow = Options.UseSlidingWindow && !Options.KeepTable &&
                   Window && DropDim >= 0;

  std::shared_ptr<DpTable> Table;
  if (UseWindow)
    Table = std::make_shared<SlidingWindowTable>(
        *Box, Sched, *Window, static_cast<unsigned>(DropDim));
  else
    Table = std::make_shared<FullTable>(*Box);
  bool TableInShared = IsGpu && Table->bytes() <= Model.SharedMemBytes;

  // 3. The loop nest (Section 4.3): scan the box under the schedule.
  std::vector<std::string> DimNames;
  for (const lang::DimInfo &Dim : Info.Dims)
    DimNames.push_back(Dim.Name);
  poly::Polyhedron Domain(DimNames);
  for (unsigned D = 0; D != N; ++D)
    Domain.addBounds(D, Box->Lower[D], Box->Upper[D]);
  poly::LoopNest Nest =
      poly::generateLoops(Domain, /*NumParams=*/0, Sched.toAffineExpr(0));

  auto TimeRange = Nest.timeRange({});
  if (!TimeRange) {
    Diags.error({}, "empty domain for '" + Decl->Name + "'");
    return std::nullopt;
  }

  // 4. Execute partition by partition (Figure 8's template).
  Evaluator Eval(*Decl, Info);
  Eval.bind(Args);

  unsigned Threads =
      IsGpu ? (Options.Threads ? Options.Threads
                               : Model.CoresPerMultiprocessor)
            : 1;
  gpu::BlockTimer Timer(Threads);

  RunResult Result;
  Result.UsedSchedule = Sched;
  Result.TableMax = -std::numeric_limits<double>::infinity();
  const std::vector<int64_t> &Root = Box->Upper;

  gpu::CostCounter Cost;
  for (int64_t P = TimeRange->first; P <= TimeRange->second; ++P) {
    for (unsigned T = 0; T != Threads; ++T) {
      Nest.forEachPointForThread(
          {}, P, T, Threads, [&](const int64_t *Point) {
            gpu::CostCounter Before = Cost;
            double Value = Eval.evalCell(Point, *Table, Cost);
            Table->set(Point, Value);
            gpu::CostCounter Delta = Cost - Before;
            Timer.addThreadCycles(
                T, IsGpu ? Model.gpuCellCycles(Delta, TableInShared)
                         : Model.cpuCycles(Delta));
            ++Result.Cells;
            if (Value > Result.TableMax)
              Result.TableMax = Value;
            if (std::memcmp(Point, Root.data(),
                            N * sizeof(int64_t)) == 0)
              Result.RootValue = Value;
          });
    }
    Timer.closePartition(IsGpu ? Model.SyncCycles : 0);
  }

  Result.Partitions = TimeRange->second - TimeRange->first + 1;
  Result.Cost = Cost;
  Result.Cycles = Timer.totalCycles();
  if (IsGpu) {
    Result.Metrics.Cycles = Result.Cycles;
    Result.Metrics.Partitions =
        static_cast<uint64_t>(Result.Partitions);
    Result.Metrics.CellsComputed = Result.Cells;
    Result.Metrics.TableBytes = Table->bytes();
    if (TableInShared)
      Result.Metrics.SharedAccesses = Cost.tableAccesses();
    else
      Result.Metrics.GlobalAccesses = Cost.tableAccesses();
    Result.Metrics.SharedAccesses += Cost.ModelReads;
  }
  if (Options.KeepTable)
    Result.Table = Table;
  return Result;
}

std::optional<RunResult>
CompiledRecurrence::runCpu(const std::vector<ArgValue> &Args,
                           const gpu::CostModel &Model,
                           DiagnosticEngine &Diags,
                           const RunOptions &Options) const {
  return runInternal(Args, Model, /*IsGpu=*/false, Diags, Options,
                     std::nullopt);
}

std::optional<RunResult>
CompiledRecurrence::runGpu(const std::vector<ArgValue> &Args,
                           const gpu::Device &Device,
                           DiagnosticEngine &Diags,
                           const RunOptions &Options) const {
  return runInternal(Args, Device.costModel(), /*IsGpu=*/true, Diags,
                     Options, std::nullopt);
}

std::optional<BatchResult> CompiledRecurrence::runGpuBatch(
    const std::vector<std::vector<ArgValue>> &Problems,
    const gpu::Device &Device, DiagnosticEngine &Diags,
    const RunOptions &Options) const {
  BatchResult Batch;
  Batch.Problems.reserve(Problems.size());

  // Conditional parallelisation (Section 4.7): derive the candidate
  // schedule set once, then pick the minimal candidate per problem. When
  // the descents are not uniform this fails and we fall back to
  // per-problem synthesis — a fallback, not an error, so the derivation
  // gets a scratch diagnostic engine.
  DiagnosticEngine Scratch;
  const auto &Candidates = conditionalSchedules(Scratch);

  std::vector<uint64_t> ProblemCycles;
  ProblemCycles.reserve(Problems.size());
  for (const std::vector<ArgValue> &Args : Problems) {
    std::optional<Schedule> Preselected;
    if (!Options.ForcedSchedule && Candidates) {
      std::optional<DomainBox> Box = domainFor(Args, Diags);
      if (!Box)
        return std::nullopt;
      Preselected = solver::selectSchedule(*Candidates, *Box).S;
    }
    std::optional<RunResult> R =
        runInternal(Args, Device.costModel(), /*IsGpu=*/true, Diags,
                    Options, std::move(Preselected));
    if (!R)
      return std::nullopt;
    ProblemCycles.push_back(R->Cycles);
    Batch.Problems.push_back(std::move(*R));
  }
  Batch.TotalCycles = Device.dispatchProblems(ProblemCycles);
  Batch.Seconds = Device.costModel().gpuSeconds(Batch.TotalCycles);
  return Batch;
}
