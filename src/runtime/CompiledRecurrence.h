//===- CompiledRecurrence.h - End-to-end compilation & execution --*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library's main entry point: compile a DSL recursion, then run
/// problems through the staged execution pipeline — planning (schedule +
/// sliding window + loop nest, memoised in a per-function PlanCache) and
/// execution (a pluggable ExecutionBackend: the serial CPU reference or
/// the simulated GPU with thread striping, Sections 4.3-4.8). Batches
/// simulate the device's independent multiprocessors across host worker
/// threads with bit-identical, order-deterministic results.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_RUNTIME_COMPILEDRECURRENCE_H
#define PARREC_RUNTIME_COMPILEDRECURRENCE_H

#include "codegen/Bytecode.h"
#include "codegen/Evaluator.h"
#include "exec/ExecutionBackend.h"
#include "exec/PlanCache.h"
#include "gpu/Device.h"
#include "lang/Sema.h"
#include "solver/ScheduleSynthesis.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace parrec {
namespace compiler {
struct CompilationModule;
} // namespace compiler
namespace runtime {

// The run request/result types live in the exec layer with the backends;
// they are re-exported here for the library's public API.
using exec::BatchResult;
using exec::EvalKind;
using exec::RunOptions;
using exec::RunResult;

/// A compiled recursive function, ready to run against bindings.
class CompiledRecurrence {
public:
  /// Compiles DSL source containing exactly one function definition.
  /// \p ExtraAlphabets extends the builtin alphabet set (dna, rna,
  /// protein, en).
  static std::optional<CompiledRecurrence>
  compile(const std::string &Source, DiagnosticEngine &Diags,
          std::vector<std::string> ExtraAlphabets = {});

  /// Compiles an already-parsed declaration.
  static std::optional<CompiledRecurrence>
  fromDecl(std::unique_ptr<lang::FunctionDecl> Decl,
           DiagnosticEngine &Diags,
           std::vector<std::string> ExtraAlphabets = {});

  CompiledRecurrence(CompiledRecurrence &&) = default;
  CompiledRecurrence &operator=(CompiledRecurrence &&) = default;

  const lang::FunctionDecl &decl() const { return *Decl; }
  const lang::FunctionInfo &info() const { return Info; }

  /// The cell body compiled to bytecode (built once at compile time and
  /// attached to every plan), or null when the body falls back to the
  /// AST evaluator.
  const std::shared_ptr<const codegen::BytecodeProgram> &bytecode() const {
    return Bytecode;
  }

  /// Derives the domain box for a set of calling arguments (sequence
  /// lengths, state counts, integer initial values).
  std::optional<solver::DomainBox>
  domainFor(const std::vector<codegen::ArgValue> &Args,
            DiagnosticEngine &Diags) const;

  /// The minimal-partition schedule for \p Box (Section 4.6).
  std::optional<solver::Schedule>
  scheduleFor(const solver::DomainBox &Box, DiagnosticEngine &Diags) const;

  /// The compile-time conditional schedule set (Section 4.7); cached.
  /// Empty optional when derivation fails (non-uniform descents).
  const std::optional<std::vector<solver::ConditionalSchedule>> &
  conditionalSchedules(DiagnosticEngine &Diags) const;

  /// The executable plan for \p Box under \p Options: schedule, sliding
  /// window decision, loop nest and partition range. Served from the
  /// function's plan cache when a same-shaped problem already ran;
  /// synthesised, generated and cached otherwise. \p Preselected (may be
  /// null) is a schedule chosen by conditional parallelisation.
  /// \p CostModel (may be null) is the model the autotuner scores
  /// candidates with when RunOptions::Autotune is set. Returns null
  /// after reporting diagnostics on failure.
  std::shared_ptr<const exec::ExecutablePlan>
  planFor(const solver::DomainBox &Box, const RunOptions &Options,
          const solver::Schedule *Preselected, DiagnosticEngine &Diags,
          const gpu::CostModel *CostModel = nullptr) const;

  /// Hit/miss/eviction counters of the plan cache (e.g. to assert that a
  /// repeated run skipped synthesis).
  exec::PlanCache::Stats planCacheStats() const { return Plans->stats(); }

  /// Drops all cached plans and resets the counters.
  void clearPlanCache() const { Plans->clear(); }

  /// Runs one problem serially on the (modelled) CPU.
  std::optional<RunResult> runCpu(const std::vector<codegen::ArgValue> &Args,
                                  const gpu::CostModel &Model,
                                  DiagnosticEngine &Diags,
                                  const RunOptions &Options = {}) const;

  /// Runs one problem on the simulated GPU, one block on one
  /// multiprocessor (the intra-task scheme the paper synthesises).
  std::optional<RunResult> runGpu(const std::vector<codegen::ArgValue> &Args,
                                  const gpu::Device &Device,
                                  DiagnosticEngine &Diags,
                                  const RunOptions &Options = {}) const;

  /// Runs many problems on the simulated GPU, dispatching one problem per
  /// multiprocessor with per-problem conditional schedules (Section 4.7).
  /// With RunOptions::Pipeline the batch is dispatched systolically —
  /// consecutive problems' partitions overlap on each multiprocessor and
  /// BatchResult::CompletionCycles records when each problem resolves;
  /// RunOptions::PackSmall additionally packs underfilled blocks. Either
  /// knob changes only the modelled wall clock, never per-problem
  /// results. Problems are simulated concurrently across host worker threads
  /// (RunOptions::BatchWorkers); results are bit-identical for any
  /// worker count.
  std::optional<BatchResult>
  runGpuBatch(const std::vector<std::vector<codegen::ArgValue>> &Problems,
              const gpu::Device &Device, DiagnosticEngine &Diags,
              const RunOptions &Options = {}) const;

private:
  CompiledRecurrence() = default;

  /// Runs the default frontend pass pipeline over \p M and packages the
  /// resulting artifacts; shared by compile() and fromDecl().
  static std::optional<CompiledRecurrence>
  fromModule(compiler::CompilationModule &M);

  /// Shared single-problem path: plan (cached), bind, execute.
  std::optional<RunResult>
  runSingle(const std::vector<codegen::ArgValue> &Args,
            const exec::ExecutionBackend &Backend, DiagnosticEngine &Diags,
            const RunOptions &Options,
            const gpu::CostModel *CostModel = nullptr) const;

  std::unique_ptr<lang::FunctionDecl> Decl;
  lang::FunctionInfo Info;
  std::shared_ptr<const codegen::BytecodeProgram> Bytecode;
  mutable std::optional<std::optional<std::vector<solver::ConditionalSchedule>>>
      ConditionalCache;
  /// Plans keyed by domain box + options fingerprint; behind a
  /// unique_ptr so the (mutex-holding) cache survives moves.
  mutable std::unique_ptr<exec::PlanCache> Plans;
};

} // namespace runtime
} // namespace parrec

#endif // PARREC_RUNTIME_COMPILEDRECURRENCE_H
