//===- CompiledRecurrence.h - End-to-end compilation & execution --*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library's main entry point: compile a DSL recursion, derive its
/// schedule(s), and execute problems either serially (the CPU reference)
/// or on the simulated GPU with the synthesized partition loop nest,
/// thread striping and optional sliding-window table (Sections 4.3-4.8).
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_RUNTIME_COMPILEDRECURRENCE_H
#define PARREC_RUNTIME_COMPILEDRECURRENCE_H

#include "codegen/Evaluator.h"
#include "gpu/Device.h"
#include "lang/Sema.h"
#include "solver/ScheduleSynthesis.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace parrec {
namespace runtime {

/// Options controlling one execution.
struct RunOptions {
  /// Use the Section 4.8 sliding-window table when the schedule permits.
  bool UseSlidingWindow = true;
  /// Threads per block; 0 means "one per multiprocessor core".
  unsigned Threads = 0;
  /// Override the automatically derived schedule (must be valid).
  std::optional<solver::Schedule> ForcedSchedule;
  /// Keep the full DP table alive in RunResult::Table so arbitrary
  /// cells can be read afterwards (forces full tabulation — useful for
  /// recursions whose interesting value is not at the root corner, e.g.
  /// the backward algorithm's B(start, 0)).
  bool KeepTable = false;
};

/// The outcome of running one problem.
struct RunResult {
  /// Value at the root point (every recursion dimension at its maximum) —
  /// the paper's d(x, y) / forward(end, n) convention. Log-space for prob
  /// functions.
  double RootValue = 0.0;
  /// Maximum over all table cells (the Smith-Waterman result).
  double TableMax = 0.0;
  uint64_t Cells = 0;
  int64_t Partitions = 0;
  gpu::CostCounter Cost;
  /// Lockstep block cycles for GPU runs; serial cycles for CPU runs.
  uint64_t Cycles = 0;
  solver::Schedule UsedSchedule;
  /// Populated for GPU runs.
  gpu::GpuRunMetrics Metrics;
  /// The full DP table, when RunOptions::KeepTable was set.
  std::shared_ptr<codegen::TableView> Table;

  /// Reads a cell from the kept table (requires KeepTable).
  double cellValue(const std::vector<int64_t> &Point) const {
    assert(Table && "run without KeepTable");
    return Table->get(Point.data());
  }
};

/// Results of a multi-problem batch (the map primitive): per-problem
/// outcomes plus the device-level makespan.
struct BatchResult {
  std::vector<RunResult> Problems;
  uint64_t TotalCycles = 0;
  double Seconds = 0.0;
};

/// A compiled recursive function, ready to run against bindings.
class CompiledRecurrence {
public:
  /// Compiles DSL source containing exactly one function definition.
  /// \p ExtraAlphabets extends the builtin alphabet set (dna, rna,
  /// protein, en).
  static std::optional<CompiledRecurrence>
  compile(const std::string &Source, DiagnosticEngine &Diags,
          std::vector<std::string> ExtraAlphabets = {});

  /// Compiles an already-parsed declaration.
  static std::optional<CompiledRecurrence>
  fromDecl(std::unique_ptr<lang::FunctionDecl> Decl,
           DiagnosticEngine &Diags,
           std::vector<std::string> ExtraAlphabets = {});

  CompiledRecurrence(CompiledRecurrence &&) = default;
  CompiledRecurrence &operator=(CompiledRecurrence &&) = default;

  const lang::FunctionDecl &decl() const { return *Decl; }
  const lang::FunctionInfo &info() const { return Info; }

  /// Derives the domain box for a set of calling arguments (sequence
  /// lengths, state counts, integer initial values).
  std::optional<solver::DomainBox>
  domainFor(const std::vector<codegen::ArgValue> &Args,
            DiagnosticEngine &Diags) const;

  /// The minimal-partition schedule for \p Box (Section 4.6).
  std::optional<solver::Schedule>
  scheduleFor(const solver::DomainBox &Box, DiagnosticEngine &Diags) const;

  /// The compile-time conditional schedule set (Section 4.7); cached.
  /// Empty optional when derivation fails (non-uniform descents).
  const std::optional<std::vector<solver::ConditionalSchedule>> &
  conditionalSchedules(DiagnosticEngine &Diags) const;

  /// Runs one problem serially on the (modelled) CPU.
  std::optional<RunResult> runCpu(const std::vector<codegen::ArgValue> &Args,
                                  const gpu::CostModel &Model,
                                  DiagnosticEngine &Diags,
                                  const RunOptions &Options = {}) const;

  /// Runs one problem on the simulated GPU, one block on one
  /// multiprocessor (the intra-task scheme the paper synthesises).
  std::optional<RunResult> runGpu(const std::vector<codegen::ArgValue> &Args,
                                  const gpu::Device &Device,
                                  DiagnosticEngine &Diags,
                                  const RunOptions &Options = {}) const;

  /// Runs many problems on the simulated GPU, dispatching one problem per
  /// multiprocessor with per-problem conditional schedules (Section 4.7).
  std::optional<BatchResult>
  runGpuBatch(const std::vector<std::vector<codegen::ArgValue>> &Problems,
              const gpu::Device &Device, DiagnosticEngine &Diags,
              const RunOptions &Options = {}) const;

private:
  CompiledRecurrence() = default;

  std::unique_ptr<lang::FunctionDecl> Decl;
  lang::FunctionInfo Info;
  mutable std::optional<std::optional<std::vector<solver::ConditionalSchedule>>>
      ConditionalCache;

  std::optional<RunResult>
  runInternal(const std::vector<codegen::ArgValue> &Args,
              const gpu::CostModel &Model, bool IsGpu,
              DiagnosticEngine &Diags, const RunOptions &Options,
              std::optional<solver::Schedule> PreselectedSchedule) const;
};

} // namespace runtime
} // namespace parrec

#endif // PARREC_RUNTIME_COMPILEDRECURRENCE_H
