//===- Interpreter.cpp - Script execution -------------------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "runtime/Interpreter.h"

#include "lang/Parser.h"
#include "obs/Trace.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>

using namespace parrec;
using namespace parrec::runtime;
using codegen::ArgValue;
using lang::Stmt;
using lang::StmtKind;
using lang::TypeKind;

Interpreter::Interpreter(DiagnosticEngine &Diags)
    : Diags(Diags), Opts() {}

Interpreter::Interpreter(DiagnosticEngine &Diags, Options Opts)
    : Diags(Diags), Opts(std::move(Opts)) {}

void Interpreter::defineSequence(const std::string &Name,
                                 bio::Sequence Seq) {
  Sequences[Name] = std::move(Seq);
}
void Interpreter::defineDatabase(const std::string &Name,
                                 bio::SequenceDatabase Db) {
  Databases[Name] = std::move(Db);
}
void Interpreter::defineMatrix(const std::string &Name,
                               bio::SubstitutionMatrix M) {
  Matrices[Name] = std::move(M);
}
void Interpreter::defineHmm(const std::string &Name, bio::Hmm Model) {
  Hmms[Name] = std::move(Model);
}

std::string Interpreter::resolvePath(const std::string &Path) const {
  if (Opts.BasePath.empty() || (!Path.empty() && Path[0] == '/'))
    return Path;
  return Opts.BasePath + "/" + Path;
}

std::vector<std::string> Interpreter::extraAlphabetNames() const {
  std::vector<std::string> Names;
  for (const auto &[Name, Letters] : Alphabets)
    Names.push_back(Name);
  return Names;
}

void Interpreter::printValue(const std::string &Label, double Value,
                             bool IsProb) {
  char Buffer[128];
  if (IsProb)
    snprintf(Buffer, sizeof(Buffer), "%s = %.6g (log %.6g)",
             Label.c_str(), std::exp(Value), Value);
  else
    snprintf(Buffer, sizeof(Buffer), "%s = %.10g", Label.c_str(), Value);
  Output += Buffer;
  Output += '\n';
}

std::optional<std::string> Interpreter::run(const std::string &Source) {
  obs::Span ScriptSpan("run.script", "runtime");
  lang::Parser P(Source, Diags);
  lang::Script Script = P.parseScript();
  if (Diags.hasErrors())
    return std::nullopt;
  for (Stmt &S : Script.Statements)
    if (!executeStatement(S))
      return std::nullopt;
  return Output;
}

bool Interpreter::executeStatement(Stmt &S) {
  switch (S.Kind) {
  case StmtKind::Alphabet:
    Alphabets[S.AlphabetName] = S.AlphabetLetters;
    return true;

  case StmtKind::Function: {
    std::string Name = S.Function->Name;
    auto Compiled = CompiledRecurrence::fromDecl(
        std::move(S.Function), Diags, extraAlphabetNames());
    if (!Compiled)
      return false;
    Functions[Name] =
        std::make_unique<CompiledRecurrence>(std::move(*Compiled));
    return true;
  }

  case StmtKind::SeqLoad: {
    auto Db = bio::readFastaFile(resolvePath(S.Path), Diags);
    if (!Db)
      return false;
    if (S.RecordIndex < 0 ||
        static_cast<size_t>(S.RecordIndex) >= Db->size()) {
      Diags.error(S.Loc, "record index " +
                             std::to_string(S.RecordIndex) +
                             " out of range for '" + S.Path + "'");
      return false;
    }
    Sequences[S.VarName] = (*Db)[static_cast<size_t>(S.RecordIndex)];
    return true;
  }

  case StmtKind::SeqDbLoad: {
    auto Db = bio::readFastaFile(resolvePath(S.Path), Diags);
    if (!Db)
      return false;
    Databases[S.VarName] = std::move(*Db);
    return true;
  }

  case StmtKind::MatrixLoad: {
    std::ifstream In(resolvePath(S.Path));
    if (!In) {
      Diags.error(S.Loc, "cannot open matrix file '" + S.Path + "'");
      return false;
    }
    std::string Text((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
    auto M = bio::SubstitutionMatrix::parse(Text, Diags);
    if (!M)
      return false;
    Matrices[S.VarName] = std::move(*M);
    return true;
  }

  case StmtKind::HmmDef: {
    std::optional<bio::Hmm> Model;
    if (!S.Path.empty()) {
      std::ifstream In(resolvePath(S.Path));
      if (!In) {
        Diags.error(S.Loc, "cannot open hmm file '" + S.Path + "'");
        return false;
      }
      std::string Text((std::istreambuf_iterator<char>(In)),
                       std::istreambuf_iterator<char>());
      Model = bio::Hmm::parse(Text, Diags);
    } else {
      Model = bio::Hmm::parse(S.HmmText, Diags);
    }
    if (!Model)
      return false;
    Hmms[S.VarName] = std::move(*Model);
    return true;
  }

  case StmtKind::Print:
    return executePrint(S);
  case StmtKind::Map:
    return executeMap(S);
  }
  return false;
}

std::optional<std::vector<ArgValue>> Interpreter::bindArguments(
    const CompiledRecurrence &Fn, const std::vector<std::string> &Names,
    bool AllowDatabase, int &DbParamIndex,
    const bio::SequenceDatabase **Db) {
  const lang::FunctionDecl &Decl = Fn.decl();
  DbParamIndex = -1;
  std::vector<ArgValue> Args(Decl.Params.size());

  size_t NextName = 0;
  for (unsigned P = 0; P != Decl.Params.size(); ++P) {
    const lang::Type &T = Decl.Params[P].ParamType;
    bool IsDim = false;
    for (const lang::DimInfo &Dim : Fn.info().Dims)
      IsDim |= Dim.ParamIndex == P;
    if (IsDim && T.Kind != TypeKind::Int)
      continue; // Recursive parameters are implicit at the script level.

    if (NextName >= Names.size()) {
      Diags.error(Decl.Loc, "too few arguments for '" + Decl.Name +
                                "': calling parameter '" +
                                Decl.Params[P].Name + "' is unbound");
      return std::nullopt;
    }
    const std::string &Name = Names[NextName++];

    switch (T.Kind) {
    case TypeKind::Seq: {
      auto SeqIt = Sequences.find(Name);
      if (SeqIt != Sequences.end()) {
        Args[P] = ArgValue::ofSeq(&SeqIt->second);
        break;
      }
      auto DbIt = Databases.find(Name);
      if (AllowDatabase && DbIt != Databases.end()) {
        if (DbParamIndex >= 0) {
          Diags.error(Decl.Loc,
                      "map statements take exactly one database");
          return std::nullopt;
        }
        DbParamIndex = static_cast<int>(P);
        *Db = &DbIt->second;
        break;
      }
      Diags.error(Decl.Loc, "unknown sequence '" + Name + "'");
      return std::nullopt;
    }
    case TypeKind::Matrix: {
      auto It = Matrices.find(Name);
      if (It == Matrices.end()) {
        Diags.error(Decl.Loc, "unknown matrix '" + Name + "'");
        return std::nullopt;
      }
      Args[P] = ArgValue::ofMatrix(&It->second);
      break;
    }
    case TypeKind::Hmm: {
      auto It = Hmms.find(Name);
      if (It == Hmms.end()) {
        Diags.error(Decl.Loc, "unknown hmm '" + Name + "'");
        return std::nullopt;
      }
      Args[P] = ArgValue::ofHmm(&It->second);
      break;
    }
    case TypeKind::Int: {
      // Integer literals bind int parameters (both calling value and
      // domain bound for int recursion dimensions).
      if (!Name.empty() &&
          std::isdigit(static_cast<unsigned char>(Name[0]))) {
        Args[P] = ArgValue::ofInt(std::stoll(Name));
        break;
      }
      Diags.error(Decl.Loc, "expected an integer literal for '" +
                                Decl.Params[P].Name + "'");
      return std::nullopt;
    }
    default:
      Diags.error(Decl.Loc, "cannot bind parameter '" +
                                Decl.Params[P].Name + "' of type " +
                                T.str() + " from a script");
      return std::nullopt;
    }
  }
  if (NextName != Names.size()) {
    Diags.error(Decl.Loc, "too many arguments for '" + Decl.Name + "'");
    return std::nullopt;
  }
  return Args;
}

bool Interpreter::executePrint(const Stmt &S) {
  obs::Span StmtSpan("run.print", "runtime");
  if (StmtSpan.active())
    StmtSpan.arg("callee", S.CalleeName);
  auto It = Functions.find(S.CalleeName);
  if (It == Functions.end()) {
    Diags.error(S.Loc, "unknown function '" + S.CalleeName + "'");
    return false;
  }
  const CompiledRecurrence &Fn = *It->second;
  int DbParam = -1;
  const bio::SequenceDatabase *Db = nullptr;
  auto Args = bindArguments(Fn, S.CallArgs, /*AllowDatabase=*/false,
                            DbParam, &Db);
  if (!Args)
    return false;

  std::optional<RunResult> R =
      Opts.UseGpu
          ? Fn.runGpu(*Args, Opts.Device, Diags, Opts.Run)
          : Fn.runCpu(*Args, Opts.Device.costModel(), Diags, Opts.Run);
  if (!R)
    return false;
  bool IsProb = Fn.decl().ReturnType.Kind == TypeKind::Prob;
  std::string Label = S.CalleeName + "(";
  for (size_t I = 0; I != S.CallArgs.size(); ++I)
    Label += (I ? ", " : "") + S.CallArgs[I];
  Label += ")";
  if (S.TableMax)
    Label = "max " + Label;
  printValue(Label, S.TableMax ? R->TableMax : R->RootValue, IsProb);
  return true;
}

bool Interpreter::executeMap(const Stmt &S) {
  obs::Span StmtSpan("run.map", "runtime");
  if (StmtSpan.active())
    StmtSpan.arg("callee", S.CalleeName);
  auto It = Functions.find(S.CalleeName);
  if (It == Functions.end()) {
    Diags.error(S.Loc, "unknown function '" + S.CalleeName + "'");
    return false;
  }
  const CompiledRecurrence &Fn = *It->second;
  int DbParam = -1;
  const bio::SequenceDatabase *Db = nullptr;
  auto Template = bindArguments(Fn, S.CallArgs, /*AllowDatabase=*/true,
                                DbParam, &Db);
  if (!Template)
    return false;
  if (DbParam < 0 || !Db) {
    Diags.error(S.Loc, "map statements need one database argument");
    return false;
  }

  std::vector<std::vector<ArgValue>> Problems;
  Problems.reserve(Db->size());
  for (const bio::Sequence &Seq : *Db) {
    std::vector<ArgValue> Args = *Template;
    Args[static_cast<size_t>(DbParam)] = ArgValue::ofSeq(&Seq);
    Problems.push_back(std::move(Args));
  }

  bool IsProb = Fn.decl().ReturnType.Kind == TypeKind::Prob;
  if (Opts.UseGpu) {
    auto Batch = Fn.runGpuBatch(Problems, Opts.Device, Diags, Opts.Run);
    if (!Batch)
      return false;
    for (size_t I = 0; I != Batch->Problems.size(); ++I) {
      const RunResult &R = Batch->Problems[I];
      printValue(S.CalleeName + "(" + (*Db)[I].name() + ")",
                 S.TableMax ? R.TableMax : R.RootValue, IsProb);
    }
    char Buffer[96];
    snprintf(Buffer, sizeof(Buffer),
             "map %s: %zu problems, %.6f modelled GPU seconds",
             S.CalleeName.c_str(), Db->size(), Batch->Seconds);
    Output += Buffer;
    Output += '\n';
    return true;
  }

  uint64_t TotalCycles = 0;
  for (size_t I = 0; I != Problems.size(); ++I) {
    auto R = Fn.runCpu(Problems[I], Opts.Device.costModel(), Diags,
                       Opts.Run);
    if (!R)
      return false;
    TotalCycles += R->Cycles;
    printValue(S.CalleeName + "(" + (*Db)[I].name() + ")",
               S.TableMax ? R->TableMax : R->RootValue, IsProb);
  }
  char Buffer[96];
  snprintf(Buffer, sizeof(Buffer),
           "map %s: %zu problems, %.6f modelled CPU seconds",
           S.CalleeName.c_str(), Problems.size(),
           Opts.Device.costModel().cpuSeconds(TotalCycles));
  Output += Buffer;
  Output += '\n';
  return true;
}
