//===- Interpreter.h - Script execution ---------------------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scripting layer of Section 3: a runtime environment that executes
/// whole DSL scripts — alphabet/model/data declarations, function
/// definitions, single executions (print) and the map primitive that
/// spreads problems over the device's multiprocessors.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_RUNTIME_INTERPRETER_H
#define PARREC_RUNTIME_INTERPRETER_H

#include "bio/Fasta.h"
#include "bio/Hmm.h"
#include "bio/SubstitutionMatrix.h"
#include "runtime/CompiledRecurrence.h"

#include <map>
#include <memory>
#include <optional>
#include <string>

namespace parrec {
namespace runtime {

/// Executes scripts statement by statement. Values (sequences, models,
/// matrices, compiled functions) live in a flat name environment.
class Interpreter {
public:
  struct Options {
    /// Execute recursions on the simulated GPU (true) or the modelled
    /// serial CPU (false).
    bool UseGpu = true;
    /// Directory prefix applied to load paths.
    std::string BasePath;
    gpu::Device Device;
    /// Applied to every print/map execution (sliding window, thread
    /// counts, batch workers).
    RunOptions Run;
  };

  explicit Interpreter(DiagnosticEngine &Diags);
  Interpreter(DiagnosticEngine &Diags, Options Opts);

  /// Parses and executes \p Source. Returns the accumulated print output
  /// (one line per printed value), or nullopt after errors.
  std::optional<std::string> run(const std::string &Source);

  /// Pre-binds a value, letting embedders inject data without files.
  void defineSequence(const std::string &Name, bio::Sequence Seq);
  void defineDatabase(const std::string &Name, bio::SequenceDatabase Db);
  void defineMatrix(const std::string &Name, bio::SubstitutionMatrix M);
  void defineHmm(const std::string &Name, bio::Hmm Model);

private:
  DiagnosticEngine &Diags;
  Options Opts;

  std::map<std::string, std::string> Alphabets; // name -> letters.
  std::map<std::string, bio::Sequence> Sequences;
  std::map<std::string, bio::SequenceDatabase> Databases;
  std::map<std::string, bio::SubstitutionMatrix> Matrices;
  std::map<std::string, bio::Hmm> Hmms;
  std::map<std::string, std::unique_ptr<CompiledRecurrence>> Functions;

  std::string Output;

  bool executeStatement(lang::Stmt &S);
  bool executePrint(const lang::Stmt &S);
  bool executeMap(const lang::Stmt &S);

  /// Builds the full argument vector for \p Fn from the statement's
  /// calling-argument names. \p DbParamIndex receives the parameter a
  /// database was bound to (map statements), or -1.
  std::optional<std::vector<codegen::ArgValue>>
  bindArguments(const CompiledRecurrence &Fn,
                const std::vector<std::string> &Names, bool AllowDatabase,
                int &DbParamIndex, const bio::SequenceDatabase **Db);

  std::string resolvePath(const std::string &Path) const;
  std::vector<std::string> extraAlphabetNames() const;
  void printValue(const std::string &Label, double Value, bool IsProb);
};

} // namespace runtime
} // namespace parrec

#endif // PARREC_RUNTIME_INTERPRETER_H
