//===- SubstitutionMatrix.h - Substitution matrices ---------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The substitution-matrix extension of Section 5.1: a table giving the
/// cost/score of substituting one alphabet character for another, indexed
/// as m[a, b] from the DSL. BLOSUM62 is built in for the Smith-Waterman
/// case study.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_BIO_SUBSTITUTIONMATRIX_H
#define PARREC_BIO_SUBSTITUTIONMATRIX_H

#include "bio/Alphabet.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace parrec {
namespace bio {

/// A square score table over an alphabet.
class SubstitutionMatrix {
public:
  SubstitutionMatrix() = default;
  SubstitutionMatrix(std::string Name, Alphabet Alpha,
                     std::vector<int> Scores);

  const std::string &name() const { return Name; }
  const Alphabet &alphabet() const { return Alpha; }

  /// Score of substituting \p A for \p B. Characters outside the alphabet
  /// score the configured default (0).
  int score(char A, char B) const {
    int IA = Alpha.indexOf(A);
    int IB = Alpha.indexOf(B);
    if (IA < 0 || IB < 0)
      return DefaultScore;
    return Scores[static_cast<size_t>(IA) * Alpha.size() +
                  static_cast<size_t>(IB)];
  }

  int scoreByIndex(unsigned A, unsigned B) const {
    return Scores[static_cast<size_t>(A) * Alpha.size() + B];
  }

  void setDefaultScore(int Score) { DefaultScore = Score; }
  int defaultScore() const { return DefaultScore; }

  /// The BLOSUM62 matrix over the 20 standard amino acids.
  static const SubstitutionMatrix &blosum62();

  /// A simple match/mismatch matrix (+Match on the diagonal, -Mismatch
  /// elsewhere) over \p Alpha.
  static SubstitutionMatrix matchMismatch(const Alphabet &Alpha, int Match,
                                          int Mismatch);

  /// Parses the textual form: first line is the column alphabet, each
  /// following line "X: s1 s2 ... sn". Returns nullopt on error.
  static std::optional<SubstitutionMatrix>
  parse(std::string_view Text, DiagnosticEngine &Diags);

  /// Renders in the format parse() accepts.
  std::string str() const;

private:
  std::string Name;
  Alphabet Alpha;
  std::vector<int> Scores;
  int DefaultScore = 0;
};

} // namespace bio
} // namespace parrec

#endif // PARREC_BIO_SUBSTITUTIONMATRIX_H
