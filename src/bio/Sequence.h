//===- Sequence.h - Immutable biological sequences ----------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sequence primitive of the host language: an immutable named string
/// over an alphabet, queried by index only (Section 3.1).
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_BIO_SEQUENCE_H
#define PARREC_BIO_SEQUENCE_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace parrec {
namespace bio {

/// An immutable sequence of characters with a record name.
class Sequence {
public:
  Sequence() = default;
  Sequence(std::string Name, std::string Data)
      : Name(std::move(Name)), Data(std::move(Data)) {}

  const std::string &name() const { return Name; }
  const std::string &data() const { return Data; }
  int64_t length() const { return static_cast<int64_t>(Data.size()); }

  char at(int64_t Index) const {
    assert(Index >= 0 && Index < length() && "sequence index out of range");
    return Data[static_cast<size_t>(Index)];
  }

private:
  std::string Name;
  std::string Data;
};

/// A loaded database: an ordered collection of sequences.
using SequenceDatabase = std::vector<Sequence>;

} // namespace bio
} // namespace parrec

#endif // PARREC_BIO_SEQUENCE_H
