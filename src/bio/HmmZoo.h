//===- HmmZoo.h - Model builders for the case studies -------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ready-made HMMs for tests and the evaluation benches: the classic
/// occasionally-dishonest casino, a CpG-island model, a small gene-finder
/// model in the spirit of the paper's Section 6.2 case study, and the
/// parametric profile HMMs of Section 6.3.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_BIO_HMMZOO_H
#define PARREC_BIO_HMMZOO_H

#include "bio/Hmm.h"

namespace parrec {
namespace bio {

/// The occasionally dishonest casino: fair and loaded "dice" states over
/// a 6-letter alphabet (digits mapped onto acgt... we use a dedicated
/// alphabet of 'abcdef').
Hmm makeCasinoModel();

/// A CpG-island model over DNA: island and non-island copies of the four
/// nucleotide states.
Hmm makeCpgIslandModel();

/// A small gene finder over DNA, in the spirit of the paper's TK gene
/// model: intergenic background, start-codon positions, a 3-periodic
/// coding region and stop-codon positions.
Hmm makeGeneFinderModel();

/// A profile HMM with \p MatchPositions match positions over \p Alpha
/// (match/insert/delete per position, plus flanking begin/end), the model
/// family of the Section 6.3 case study. Emissions are random but
/// deterministic in \p Seed; state count is 3 * MatchPositions + 3.
Hmm makeProfileHmm(unsigned MatchPositions, const Alphabet &Alpha,
                   uint64_t Seed);

} // namespace bio
} // namespace parrec

#endif // PARREC_BIO_HMMZOO_H
