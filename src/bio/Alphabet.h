//===- Alphabet.h - Character alphabets ---------------------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Alphabets define the character sets sequences range over
/// (Section 3.2). Besides user-defined alphabets, the builtins the case
/// studies use are provided: dna, rna, protein and en (English).
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_BIO_ALPHABET_H
#define PARREC_BIO_ALPHABET_H

#include <array>
#include <cstdint>
#include <string>

namespace parrec {
namespace bio {

/// An ordered, case-sensitive character set. The ordering defines each
/// character's index, which is how characters map to natural numbers.
class Alphabet {
public:
  Alphabet() = default;
  Alphabet(std::string Name, std::string Letters);

  const std::string &name() const { return Name; }
  const std::string &letters() const { return Letters; }
  unsigned size() const { return static_cast<unsigned>(Letters.size()); }

  /// Index of \p C, or -1 when the character is not in the alphabet.
  int indexOf(char C) const {
    return CharToIndex[static_cast<unsigned char>(C)];
  }
  bool contains(char C) const { return indexOf(C) >= 0; }

  char charAt(unsigned Index) const { return Letters[Index]; }

  // Builtins.
  static const Alphabet &dna();     // acgt
  static const Alphabet &rna();     // acgu
  static const Alphabet &protein(); // 20 amino acids
  static const Alphabet &english(); // a-z

private:
  std::string Name;
  std::string Letters;
  std::array<int8_t, 256> CharToIndex{};
};

} // namespace bio
} // namespace parrec

#endif // PARREC_BIO_ALPHABET_H
