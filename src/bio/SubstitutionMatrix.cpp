//===- SubstitutionMatrix.cpp - Substitution matrices -----------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "bio/SubstitutionMatrix.h"

#include "support/StringUtils.h"

#include <cassert>
#include <cstdlib>

using namespace parrec;
using namespace parrec::bio;

SubstitutionMatrix::SubstitutionMatrix(std::string Name, Alphabet Alpha,
                                       std::vector<int> Scores)
    : Name(std::move(Name)), Alpha(std::move(Alpha)),
      Scores(std::move(Scores)) {
  assert(this->Scores.size() ==
             static_cast<size_t>(this->Alpha.size()) * this->Alpha.size() &&
         "score table must be square over the alphabet");
}

const SubstitutionMatrix &SubstitutionMatrix::blosum62() {
  // Standard BLOSUM62 over ARNDCQEGHILKMFPSTWYV.
  static const int Table[20][20] = {
      // A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V
      {4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0},
      {-1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3},
      {-2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3},
      {-2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3},
      {0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1},
      {-1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2},
      {-1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2},
      {0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3},
      {-2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3},
      {-1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3},
      {-1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2, -1, 1},
      {-1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3, -2, -2},
      {-1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1, -1, 1},
      {-2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1, 3, -1},
      {-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1, -4, -3, -2},
      {1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2, -2},
      {0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2, -2, 0},
      {-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2, 11, 2, -3},
      {-2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2, 7, -1},
      {0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3, -1, 4},
  };
  static const SubstitutionMatrix M = [] {
    std::vector<int> Scores;
    Scores.reserve(400);
    for (const auto &Row : Table)
      for (int V : Row)
        Scores.push_back(V);
    return SubstitutionMatrix("blosum62", Alphabet::protein(),
                              std::move(Scores));
  }();
  return M;
}

SubstitutionMatrix SubstitutionMatrix::matchMismatch(const Alphabet &Alpha,
                                                     int Match,
                                                     int Mismatch) {
  unsigned N = Alpha.size();
  std::vector<int> Scores(static_cast<size_t>(N) * N, Mismatch);
  for (unsigned I = 0; I != N; ++I)
    Scores[static_cast<size_t>(I) * N + I] = Match;
  return SubstitutionMatrix("matchmismatch", Alpha, std::move(Scores));
}

std::optional<SubstitutionMatrix>
SubstitutionMatrix::parse(std::string_view Text, DiagnosticEngine &Diags) {
  std::vector<std::string> Lines = splitString(Text, '\n');
  std::string LettersLine;
  std::vector<std::pair<char, std::vector<int>>> Rows;

  uint32_t LineNo = 0;
  for (const std::string &Raw : Lines) {
    ++LineNo;
    std::string_view Line = trimString(Raw);
    if (Line.empty() || Line[0] == '#')
      continue;
    if (LettersLine.empty()) {
      // Header: the alphabet, as space-separated characters or one word.
      for (char C : Line)
        if (C != ' ' && C != '\t')
          LettersLine += C;
      continue;
    }
    size_t ColonPos = Line.find(':');
    if (ColonPos == std::string_view::npos || ColonPos == 0) {
      Diags.error({LineNo, 1}, "expected 'X: s1 s2 ...' matrix row");
      return std::nullopt;
    }
    std::string_view RowName = trimString(Line.substr(0, ColonPos));
    if (RowName.size() != 1) {
      Diags.error({LineNo, 1}, "matrix row label must be one character");
      return std::nullopt;
    }
    std::vector<int> Values;
    for (const std::string &Piece :
         splitString(Line.substr(ColonPos + 1), ' ')) {
      std::string_view Trimmed = trimString(Piece);
      if (Trimmed.empty())
        continue;
      Values.push_back(
          static_cast<int>(std::strtol(std::string(Trimmed).c_str(),
                                       nullptr, 10)));
    }
    Rows.emplace_back(RowName[0], std::move(Values));
  }

  if (LettersLine.empty()) {
    Diags.error({}, "substitution matrix has no alphabet header");
    return std::nullopt;
  }
  unsigned N = static_cast<unsigned>(LettersLine.size());
  if (Rows.size() != N) {
    Diags.error({}, "substitution matrix has " +
                        std::to_string(Rows.size()) + " rows; expected " +
                        std::to_string(N));
    return std::nullopt;
  }

  Alphabet Alpha("matrix", LettersLine);
  std::vector<int> Scores(static_cast<size_t>(N) * N, 0);
  for (const auto &[RowChar, Values] : Rows) {
    int Row = Alpha.indexOf(RowChar);
    if (Row < 0) {
      Diags.error({}, std::string("row character '") + RowChar +
                          "' is not in the matrix alphabet");
      return std::nullopt;
    }
    if (Values.size() != N) {
      Diags.error({}, std::string("row '") + RowChar + "' has " +
                          std::to_string(Values.size()) +
                          " scores; expected " + std::to_string(N));
      return std::nullopt;
    }
    for (unsigned Col = 0; Col != N; ++Col)
      Scores[static_cast<size_t>(Row) * N + Col] = Values[Col];
  }
  return SubstitutionMatrix("parsed", std::move(Alpha), std::move(Scores));
}

std::string SubstitutionMatrix::str() const {
  std::string Out;
  for (unsigned I = 0; I != Alpha.size(); ++I) {
    if (I)
      Out += ' ';
    Out += Alpha.charAt(I);
  }
  Out += '\n';
  for (unsigned Row = 0; Row != Alpha.size(); ++Row) {
    Out += Alpha.charAt(Row);
    Out += ':';
    for (unsigned Col = 0; Col != Alpha.size(); ++Col) {
      Out += ' ';
      Out += std::to_string(scoreByIndex(Row, Col));
    }
    Out += '\n';
  }
  return Out;
}
