//===- Alphabet.cpp - Character alphabets -----------------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "bio/Alphabet.h"

#include <cassert>

using namespace parrec;
using namespace parrec::bio;

Alphabet::Alphabet(std::string Name, std::string Letters)
    : Name(std::move(Name)), Letters(std::move(Letters)) {
  CharToIndex.fill(-1);
  assert(this->Letters.size() < 128 && "alphabet too large");
  for (unsigned I = 0; I != this->Letters.size(); ++I) {
    unsigned char C = static_cast<unsigned char>(this->Letters[I]);
    assert(CharToIndex[C] == -1 && "duplicate letter in alphabet");
    CharToIndex[C] = static_cast<int8_t>(I);
  }
}

const Alphabet &Alphabet::dna() {
  static const Alphabet A("dna", "acgt");
  return A;
}

const Alphabet &Alphabet::rna() {
  static const Alphabet A("rna", "acgu");
  return A;
}

const Alphabet &Alphabet::protein() {
  static const Alphabet A("protein", "ARNDCQEGHILKMFPSTWYV");
  return A;
}

const Alphabet &Alphabet::english() {
  static const Alphabet A("en", "abcdefghijklmnopqrstuvwxyz");
  return A;
}
