//===- Hmm.cpp - Hidden Markov Models ----------------------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "bio/Hmm.h"

#include "support/StringUtils.h"

#include <cassert>
#include <cmath>
#include <cstdlib>

using namespace parrec;
using namespace parrec::bio;

unsigned Hmm::addState(std::string StateName, std::vector<double> Emissions,
                       bool IsStart, bool IsEnd) {
  assert((Emissions.empty() || Emissions.size() == Alpha.size()) &&
         "emission table must cover the whole alphabet");
  HmmState S;
  S.Name = std::move(StateName);
  S.IsStart = IsStart;
  S.IsEnd = IsEnd;
  S.Emissions = std::move(Emissions);
  States.push_back(std::move(S));
  IncomingByState.emplace_back();
  OutgoingByState.emplace_back();
  return numStates() - 1;
}

void Hmm::addTransition(unsigned From, unsigned To, double Prob) {
  assert(From < numStates() && To < numStates() && "state out of range");
  Transitions.push_back({From, To, Prob});
}

int Hmm::findState(std::string_view StateName) const {
  for (unsigned I = 0; I != numStates(); ++I)
    if (States[I].Name == StateName)
      return static_cast<int>(I);
  return -1;
}

unsigned Hmm::startState() const {
  for (unsigned I = 0; I != numStates(); ++I)
    if (States[I].IsStart)
      return I;
  assert(false && "model has no start state");
  return 0;
}

unsigned Hmm::endState() const {
  for (unsigned I = 0; I != numStates(); ++I)
    if (States[I].IsEnd)
      return I;
  assert(false && "model has no end state");
  return 0;
}

double Hmm::emission(unsigned StateIndex, char C) const {
  const HmmState &S = States[StateIndex];
  if (S.isSilent())
    return 1.0;
  int Index = Alpha.indexOf(C);
  if (Index < 0)
    return 0.0;
  return S.Emissions[static_cast<size_t>(Index)];
}

void Hmm::finalize() {
  IncomingByState.assign(numStates(), {});
  OutgoingByState.assign(numStates(), {});
  for (unsigned T = 0; T != numTransitions(); ++T) {
    IncomingByState[Transitions[T].To].push_back(T);
    OutgoingByState[Transitions[T].From].push_back(T);
  }
}

bool Hmm::validate(DiagnosticEngine &Diags) const {
  bool HasStart = false, HasEnd = false;
  for (const HmmState &S : States) {
    HasStart |= S.IsStart;
    HasEnd |= S.IsEnd;
    double EmissionSum = 0.0;
    for (double P : S.Emissions) {
      if (P < 0.0 || P > 1.0) {
        Diags.error({}, "state '" + S.Name +
                            "' has an emission probability outside "
                            "[0, 1]");
        return false;
      }
      EmissionSum += P;
    }
    if (!S.isSilent() && std::abs(EmissionSum - 1.0) > 1e-6)
      Diags.warning({}, "emissions of state '" + S.Name +
                            "' sum to " + std::to_string(EmissionSum) +
                            ", not 1");
  }
  if (!HasStart || !HasEnd) {
    Diags.error({}, "model '" + Name + "' must designate start and end "
                    "states");
    return false;
  }
  std::vector<double> OutSums(numStates(), 0.0);
  for (const HmmTransition &T : Transitions) {
    if (T.Prob < 0.0 || T.Prob > 1.0) {
      Diags.error({}, "transition probability outside [0, 1] in model '" +
                          Name + "'");
      return false;
    }
    OutSums[T.From] += T.Prob;
  }
  for (unsigned I = 0; I != numStates(); ++I)
    if (!States[I].IsEnd && !OutgoingByState[I].empty() &&
        std::abs(OutSums[I] - 1.0) > 1e-6)
      Diags.warning({}, "outgoing probabilities of state '" +
                            States[I].Name + "' sum to " +
                            std::to_string(OutSums[I]) + ", not 1");
  return true;
}

std::string Hmm::sample(uint64_t Seed, size_t MaxLength) const {
  SplitMix64 Rng(Seed);
  std::string Out;
  unsigned Current = startState();
  unsigned End = endState();
  while (Current != End && Out.size() < MaxLength) {
    const HmmState &S = States[Current];
    if (!S.isSilent()) {
      double Roll = Rng.nextDouble();
      double Accum = 0.0;
      char Emitted = Alpha.charAt(Alpha.size() - 1);
      for (unsigned C = 0; C != Alpha.size(); ++C) {
        Accum += S.Emissions[C];
        if (Roll < Accum) {
          Emitted = Alpha.charAt(C);
          break;
        }
      }
      Out += Emitted;
    }
    const std::vector<unsigned> &Outgoing = OutgoingByState[Current];
    if (Outgoing.empty())
      break; // Dead end; treat as termination.
    double Roll = Rng.nextDouble();
    double Accum = 0.0;
    unsigned Next = Transitions[Outgoing.back()].To;
    for (unsigned T : Outgoing) {
      Accum += Transitions[T].Prob;
      if (Roll < Accum) {
        Next = Transitions[T].To;
        break;
      }
    }
    Current = Next;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Textual format
//===----------------------------------------------------------------------===//

namespace {

/// Splits \p Text into whitespace-separated words.
std::vector<std::string> tokenizeWords(std::string_view Text) {
  std::vector<std::string> Words;
  std::string Current;
  for (char C : Text) {
    if (C == ' ' || C == '\t' || C == '\n' || C == '\r') {
      if (!Current.empty()) {
        Words.push_back(std::move(Current));
        Current.clear();
      }
      continue;
    }
    if (C == ';') {
      if (!Current.empty()) {
        Words.push_back(std::move(Current));
        Current.clear();
      }
      Words.emplace_back(";");
      continue;
    }
    Current += C;
  }
  if (!Current.empty())
    Words.push_back(std::move(Current));
  return Words;
}

const Alphabet *builtinAlphabet(const std::string &Name) {
  if (Name == "dna")
    return &Alphabet::dna();
  if (Name == "rna")
    return &Alphabet::rna();
  if (Name == "protein")
    return &Alphabet::protein();
  if (Name == "en")
    return &Alphabet::english();
  return nullptr;
}

} // namespace

std::optional<Hmm> Hmm::parse(std::string_view Text,
                              DiagnosticEngine &Diags) {
  std::vector<std::string> Words = tokenizeWords(Text);
  size_t Pos = 0;
  auto AtEnd = [&] { return Pos >= Words.size(); };
  auto Next = [&]() -> const std::string & {
    static const std::string Empty;
    return AtEnd() ? Empty : Words[Pos++];
  };
  auto ExpectSemi = [&]() -> bool {
    if (!AtEnd() && Words[Pos] == ";") {
      ++Pos;
      return true;
    }
    Diags.error({}, "expected ';' in hmm description");
    return false;
  };

  Hmm Model("hmm", Alphabet::dna());
  bool SawAlphabet = false;
  // Transitions are recorded by name and resolved after all states exist.
  struct PendingTransition {
    std::string From, To;
    double Prob;
  };
  std::vector<PendingTransition> Pending;

  while (!AtEnd()) {
    if (Words[Pos] == ";") {
      ++Pos;
      continue;
    }
    std::string Keyword = Next();
    if (Keyword == "alphabet") {
      std::string AlphaName = Next();
      if (AlphaName == "letters") {
        // Custom alphabet: "alphabet letters abcdef ;".
        std::string Letters = Next();
        if (Letters.empty()) {
          Diags.error({}, "expected alphabet letters");
          return std::nullopt;
        }
        Model = Hmm(Model.name(), Alphabet("custom", Letters));
      } else {
        const Alphabet *Builtin = builtinAlphabet(AlphaName);
        if (!Builtin) {
          Diags.error({}, "unknown alphabet '" + AlphaName +
                              "' in hmm description");
          return std::nullopt;
        }
        Model = Hmm(Model.name(), *Builtin);
      }
      SawAlphabet = true;
      if (!ExpectSemi())
        return std::nullopt;
      continue;
    }
    if (Keyword == "state") {
      if (!SawAlphabet) {
        Diags.error({}, "hmm must declare its alphabet before states");
        return std::nullopt;
      }
      std::string StateName = Next();
      if (StateName.empty()) {
        Diags.error({}, "expected state name");
        return std::nullopt;
      }
      bool IsStart = false, IsEnd = false;
      std::vector<double> Emissions;
      while (!AtEnd() && Words[Pos] != ";") {
        std::string Mod = Next();
        if (Mod == "start") {
          IsStart = true;
        } else if (Mod == "end") {
          IsEnd = true;
        } else if (Mod == "emits") {
          Emissions.assign(Model.alphabet().size(), 0.0);
          while (!AtEnd() && Words[Pos] != ";") {
            std::string CharWord = Next();
            if (CharWord.size() != 1 ||
                !Model.alphabet().contains(CharWord[0])) {
              Diags.error({}, "'" + CharWord +
                                  "' is not a character of the model "
                                  "alphabet");
              return std::nullopt;
            }
            std::string ProbWord = Next();
            // The DSL tokenizer splits "0.3" into "0", ".", "3"; accept
            // both a single word and the split form.
            if (ProbWord == "0" || ProbWord == "1") {
              if (!AtEnd() && Words[Pos] == ".") {
                ++Pos;
                ProbWord += "." + Next();
              }
            }
            double P = std::strtod(ProbWord.c_str(), nullptr);
            Emissions[static_cast<size_t>(
                Model.alphabet().indexOf(CharWord[0]))] = P;
          }
        } else {
          Diags.error({}, "unknown state modifier '" + Mod + "'");
          return std::nullopt;
        }
      }
      if (Model.findState(StateName) >= 0) {
        Diags.error({}, "duplicate state '" + StateName + "'");
        return std::nullopt;
      }
      Model.addState(StateName, std::move(Emissions), IsStart, IsEnd);
      if (!ExpectSemi())
        return std::nullopt;
      continue;
    }
    if (Keyword == "transition") {
      std::string From = Next();
      std::string ArrowWord = Next();
      if (ArrowWord != "->") {
        Diags.error({}, "expected '->' in transition");
        return std::nullopt;
      }
      std::string To = Next();
      std::string ProbWord = Next();
      if (ProbWord == "0" || ProbWord == "1") {
        if (!AtEnd() && Words[Pos] == ".") {
          ++Pos;
          ProbWord += "." + Next();
        }
      }
      double P = std::strtod(ProbWord.c_str(), nullptr);
      Pending.push_back({std::move(From), std::move(To), P});
      if (!ExpectSemi())
        return std::nullopt;
      continue;
    }
    Diags.error({}, "unknown hmm statement '" + Keyword + "'");
    return std::nullopt;
  }

  for (const PendingTransition &T : Pending) {
    int From = Model.findState(T.From);
    int To = Model.findState(T.To);
    if (From < 0 || To < 0) {
      Diags.error({}, "transition references unknown state '" +
                          (From < 0 ? T.From : T.To) + "'");
      return std::nullopt;
    }
    Model.addTransition(static_cast<unsigned>(From),
                        static_cast<unsigned>(To), T.Prob);
  }
  Model.finalize();
  if (!Model.validate(Diags))
    return std::nullopt;
  return Model;
}

std::optional<Hmm>
parrec::bio::eliminateSilentStates(const Hmm &Model,
                                   DiagnosticEngine &Diags) {
  unsigned N = Model.numStates();
  // Dense transition matrix; the models here are small (profile HMMs cap
  // out at a few hundred states in the evaluation).
  std::vector<double> P(static_cast<size_t>(N) * N, 0.0);
  for (unsigned T = 0; T != Model.numTransitions(); ++T) {
    const HmmTransition &Tr = Model.transition(T);
    P[static_cast<size_t>(Tr.From) * N + Tr.To] += Tr.Prob;
  }

  std::vector<bool> Removed(N, false);
  for (unsigned S = 0; S != N; ++S) {
    const HmmState &State = Model.state(S);
    if (!State.isSilent() || State.IsStart || State.IsEnd)
      continue;
    double SelfLoop = P[static_cast<size_t>(S) * N + S];
    if (SelfLoop >= 1.0 - 1e-12) {
      Diags.error({}, "silent state '" + State.Name +
                          "' forms an absorbing silent cycle; the model "
                          "cannot be normalised to emitting form");
      return std::nullopt;
    }
    double Scale = 1.0 / (1.0 - SelfLoop);
    for (unsigned U = 0; U != N; ++U) {
      if (U == S || Removed[U])
        continue;
      double In = P[static_cast<size_t>(U) * N + S];
      if (In == 0.0)
        continue;
      for (unsigned V = 0; V != N; ++V) {
        if (V == S)
          continue;
        double Out = P[static_cast<size_t>(S) * N + V];
        if (Out == 0.0)
          continue;
        P[static_cast<size_t>(U) * N + V] += In * Scale * Out;
      }
      P[static_cast<size_t>(U) * N + S] = 0.0;
    }
    for (unsigned V = 0; V != N; ++V)
      P[static_cast<size_t>(S) * N + V] = 0.0;
    Removed[S] = true;
  }

  // Rebuild the model over the surviving states, preserving order.
  Hmm Result(Model.name() + "_emitting", Model.alphabet());
  std::vector<int> NewIndex(N, -1);
  for (unsigned S = 0; S != N; ++S) {
    if (Removed[S])
      continue;
    const HmmState &State = Model.state(S);
    NewIndex[S] = static_cast<int>(Result.addState(
        State.Name, State.Emissions, State.IsStart, State.IsEnd));
  }
  for (unsigned U = 0; U != N; ++U) {
    if (Removed[U])
      continue;
    for (unsigned V = 0; V != N; ++V) {
      if (Removed[V])
        continue;
      double Prob = P[static_cast<size_t>(U) * N + V];
      if (Prob > 0.0)
        Result.addTransition(static_cast<unsigned>(NewIndex[U]),
                             static_cast<unsigned>(NewIndex[V]), Prob);
    }
  }
  Result.finalize();
  return Result;
}

std::string Hmm::str() const {
  bool IsBuiltin = builtinAlphabet(Alpha.name()) != nullptr;
  std::string Out = IsBuiltin
                        ? "alphabet " + Alpha.name() + " ;\n"
                        : "alphabet letters " + Alpha.letters() + " ;\n";
  for (const HmmState &S : States) {
    Out += "state " + S.Name;
    if (S.IsStart)
      Out += " start";
    if (S.IsEnd)
      Out += " end";
    if (!S.isSilent()) {
      Out += " emits";
      for (unsigned C = 0; C != Alpha.size(); ++C) {
        Out += ' ';
        Out += Alpha.charAt(C);
        Out += ' ';
        Out += std::to_string(S.Emissions[C]);
      }
    }
    Out += " ;\n";
  }
  for (const HmmTransition &T : Transitions)
    Out += "transition " + States[T.From].Name + " -> " +
           States[T.To].Name + " " + std::to_string(T.Prob) + " ;\n";
  return Out;
}
