//===- HmmZoo.cpp - Model builders for the case studies ---------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "bio/HmmZoo.h"

#include "support/Random.h"

#include <cmath>

using namespace parrec;
using namespace parrec::bio;

Hmm parrec::bio::makeCasinoModel() {
  static const Alphabet Dice("dice", "abcdef");
  Hmm Model("casino", Dice);
  unsigned Start = Model.addState("begin", {}, /*IsStart=*/true);
  std::vector<double> Fair(6, 1.0 / 6.0);
  std::vector<double> Loaded(6, 0.1);
  Loaded[5] = 0.5;
  unsigned FairState = Model.addState("fair", Fair);
  unsigned LoadedState = Model.addState("loaded", Loaded);
  unsigned End = Model.addState("finish", {}, false, /*IsEnd=*/true);

  Model.addTransition(Start, FairState, 1.0);
  Model.addTransition(FairState, FairState, 0.94);
  Model.addTransition(FairState, LoadedState, 0.05);
  Model.addTransition(FairState, End, 0.01);
  Model.addTransition(LoadedState, LoadedState, 0.89);
  Model.addTransition(LoadedState, FairState, 0.10);
  Model.addTransition(LoadedState, End, 0.01);
  Model.finalize();
  return Model;
}

Hmm parrec::bio::makeCpgIslandModel() {
  const Alphabet &Dna = Alphabet::dna();
  Hmm Model("cpg", Dna);
  unsigned Start = Model.addState("begin", {}, /*IsStart=*/true);

  auto OneHot = [&](char C) {
    std::vector<double> E(Dna.size(), 0.0);
    E[static_cast<size_t>(Dna.indexOf(C))] = 1.0;
    return E;
  };
  // Island (+) and background (-) copies of the four nucleotides.
  unsigned Plus[4], Minus[4];
  const char *Names[] = {"a", "c", "g", "t"};
  for (unsigned I = 0; I != 4; ++I) {
    Plus[I] = Model.addState(std::string(Names[I]) + "_plus",
                             OneHot("acgt"[I]));
    Minus[I] = Model.addState(std::string(Names[I]) + "_minus",
                              OneHot("acgt"[I]));
  }
  unsigned End = Model.addState("finish", {}, false, /*IsEnd=*/true);

  for (unsigned I = 0; I != 4; ++I) {
    Model.addTransition(Start, Plus[I], 0.05);
    Model.addTransition(Start, Minus[I], 0.20);
  }
  // CG-enriched island, AT-enriched background; 1% switch, 0.5% stop.
  const double IslandEm[4] = {0.155, 0.341, 0.350, 0.154};
  const double BackEm[4] = {0.300, 0.205, 0.200, 0.295};
  for (unsigned From = 0; From != 4; ++From) {
    double Stay = 1.0 - 0.01 - 0.005;
    for (unsigned To = 0; To != 4; ++To) {
      Model.addTransition(Plus[From], Plus[To], Stay * IslandEm[To]);
      Model.addTransition(Plus[From], Minus[To], 0.01 * BackEm[To]);
      Model.addTransition(Minus[From], Minus[To], Stay * BackEm[To]);
      Model.addTransition(Minus[From], Plus[To], 0.01 * IslandEm[To]);
    }
    Model.addTransition(Plus[From], End, 0.005);
    Model.addTransition(Minus[From], End, 0.005);
  }
  Model.finalize();
  return Model;
}

Hmm parrec::bio::makeGeneFinderModel() {
  const Alphabet &Dna = Alphabet::dna();
  Hmm Model("genefinder", Dna);

  auto OneHot = [&](char C) {
    std::vector<double> E(Dna.size(), 0.0);
    E[static_cast<size_t>(Dna.indexOf(C))] = 1.0;
    return E;
  };
  std::vector<double> Background = {0.27, 0.23, 0.23, 0.27};
  std::vector<double> Coding1 = {0.30, 0.20, 0.33, 0.17};
  std::vector<double> Coding2 = {0.32, 0.22, 0.17, 0.29};
  std::vector<double> Coding3 = {0.22, 0.28, 0.30, 0.20};
  std::vector<double> StopMid = {0.5, 0.0, 0.5, 0.0};  // a or g.
  std::vector<double> StopLast = {0.5, 0.0, 0.5, 0.0}; // a or g.

  unsigned Start = Model.addState("begin", {}, /*IsStart=*/true);
  unsigned Intergenic = Model.addState("intergenic", Background);
  unsigned StartC1 = Model.addState("startcodon1", OneHot('a'));
  unsigned StartC2 = Model.addState("startcodon2", OneHot('t'));
  unsigned StartC3 = Model.addState("startcodon3", OneHot('g'));
  unsigned Codon1 = Model.addState("codon1", Coding1);
  unsigned Codon2 = Model.addState("codon2", Coding2);
  unsigned Codon3 = Model.addState("codon3", Coding3);
  unsigned StopC1 = Model.addState("stopcodon1", OneHot('t'));
  unsigned StopC2 = Model.addState("stopcodon2", StopMid);
  unsigned StopC3 = Model.addState("stopcodon3", StopLast);
  unsigned End = Model.addState("finish", {}, false, /*IsEnd=*/true);

  Model.addTransition(Start, Intergenic, 1.0);
  Model.addTransition(Intergenic, Intergenic, 0.90);
  Model.addTransition(Intergenic, StartC1, 0.095);
  Model.addTransition(Intergenic, End, 0.005);
  Model.addTransition(StartC1, StartC2, 1.0);
  Model.addTransition(StartC2, StartC3, 1.0);
  Model.addTransition(StartC3, Codon1, 1.0);
  Model.addTransition(Codon1, Codon2, 1.0);
  Model.addTransition(Codon2, Codon3, 1.0);
  Model.addTransition(Codon3, Codon1, 0.95);
  Model.addTransition(Codon3, StopC1, 0.05);
  Model.addTransition(StopC1, StopC2, 1.0);
  Model.addTransition(StopC2, StopC3, 1.0);
  Model.addTransition(StopC3, Intergenic, 1.0);
  Model.finalize();
  return Model;
}

Hmm parrec::bio::makeProfileHmm(unsigned MatchPositions,
                                const Alphabet &Alpha, uint64_t Seed) {
  assert(MatchPositions >= 1 && "profile needs at least one position");
  SplitMix64 Rng(Seed);
  Hmm Model("profile" + std::to_string(MatchPositions), Alpha);

  auto RandomEmissions = [&](double Sharpness) {
    // Dirichlet-ish: one dominant character per position.
    std::vector<double> E(Alpha.size());
    double Sum = 0.0;
    for (double &V : E) {
      V = 0.05 + Rng.nextDouble();
      Sum += V;
    }
    unsigned Dominant =
        static_cast<unsigned>(Rng.nextBelow(Alpha.size()));
    E[Dominant] += Sharpness * Sum;
    Sum += Sharpness * Sum;
    for (double &V : E)
      V /= Sum;
    return E;
  };
  std::vector<double> InsertEmissions(Alpha.size(),
                                      1.0 / Alpha.size());

  unsigned Begin = Model.addState("begin", {}, /*IsStart=*/true);
  std::vector<unsigned> Match(MatchPositions + 1, 0);
  std::vector<unsigned> Insert(MatchPositions + 1, 0);
  std::vector<unsigned> Delete(MatchPositions + 1, 0);
  Insert[0] = Model.addState("I0", InsertEmissions);
  for (unsigned K = 1; K <= MatchPositions; ++K) {
    Match[K] = Model.addState("M" + std::to_string(K),
                              RandomEmissions(/*Sharpness=*/3.0));
    Insert[K] = Model.addState("I" + std::to_string(K), InsertEmissions);
    Delete[K] = Model.addState("D" + std::to_string(K), {});
  }
  unsigned End = Model.addState("finish", {}, false, /*IsEnd=*/true);

  // Plan 7-style topology with fixed, well-formed probabilities.
  Model.addTransition(Begin, Match[1], 0.90);
  Model.addTransition(Begin, Insert[0], 0.05);
  Model.addTransition(Begin, Delete[1], 0.05);
  Model.addTransition(Insert[0], Insert[0], 0.30);
  Model.addTransition(Insert[0], Match[1], 0.70);
  for (unsigned K = 1; K <= MatchPositions; ++K) {
    bool Last = K == MatchPositions;
    unsigned NextMatch = Last ? End : Match[K + 1];
    Model.addTransition(Match[K], NextMatch, Last ? 0.95 : 0.90);
    Model.addTransition(Match[K], Insert[K], 0.05);
    if (!Last)
      Model.addTransition(Match[K], Delete[K + 1], 0.05);
    Model.addTransition(Insert[K], Insert[K], 0.30);
    Model.addTransition(Insert[K], NextMatch, 0.70);
    if (!Last) {
      Model.addTransition(Delete[K], Match[K + 1], 0.70);
      Model.addTransition(Delete[K], Delete[K + 1], 0.30);
    } else {
      Model.addTransition(Delete[K], End, 1.0);
    }
  }
  Model.finalize();
  return Model;
}
