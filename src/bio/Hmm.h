//===- Hmm.h - Hidden Markov Models -------------------------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The HMM extension of Section 5.2: states with emission distributions,
/// probabilistic transitions, designated start and end states, and the
/// arbitrary total ordering over states and transitions that maps them to
/// the natural numbers for tabulation (Section 3.2).
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_BIO_HMM_H
#define PARREC_BIO_HMM_H

#include "bio/Alphabet.h"
#include "support/Diagnostics.h"
#include "support/Random.h"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace parrec {
namespace bio {

/// One HMM state. Silent states (start/end, profile deletes) have an
/// empty emission table.
struct HmmState {
  std::string Name;
  bool IsStart = false;
  bool IsEnd = false;
  /// Linear-space emission probabilities, one per alphabet character;
  /// empty for silent states.
  std::vector<double> Emissions;

  bool isSilent() const { return Emissions.empty(); }
};

/// One directed transition with probability.
struct HmmTransition {
  unsigned From = 0;
  unsigned To = 0;
  double Prob = 0.0;
};

/// A Hidden Markov Model over an alphabet.
///
/// States and transitions are identified by their position in the model's
/// vectors — the total ordering the DSL's analysis relies on.
class Hmm {
public:
  Hmm() = default;
  Hmm(std::string Name, Alphabet Alpha)
      : Name(std::move(Name)), Alpha(std::move(Alpha)) {}

  const std::string &name() const { return Name; }
  const Alphabet &alphabet() const { return Alpha; }

  unsigned numStates() const {
    return static_cast<unsigned>(States.size());
  }
  unsigned numTransitions() const {
    return static_cast<unsigned>(Transitions.size());
  }

  const HmmState &state(unsigned Index) const { return States[Index]; }
  const HmmTransition &transition(unsigned Index) const {
    return Transitions[Index];
  }

  /// Adds a state and returns its index.
  unsigned addState(std::string StateName, std::vector<double> Emissions,
                    bool IsStart = false, bool IsEnd = false);

  /// Adds a transition From -> To with probability \p Prob.
  void addTransition(unsigned From, unsigned To, double Prob);

  /// Index of a state by name, or -1.
  int findState(std::string_view StateName) const;

  /// Transition indices entering state \p To (s.transitionsto).
  const std::vector<unsigned> &transitionsTo(unsigned To) const {
    return IncomingByState[To];
  }
  /// Transition indices leaving state \p From (s.transitionsfrom).
  const std::vector<unsigned> &transitionsFrom(unsigned From) const {
    return OutgoingByState[From];
  }

  /// The designated start/end states (asserts they exist).
  unsigned startState() const;
  unsigned endState() const;

  /// Emission probability of \p StateIndex emitting \p C (0 when the
  /// character is outside the alphabet; 1 for silent states, matching the
  /// Figure 11 convention where the silent end state contributes 1.0).
  double emission(unsigned StateIndex, char C) const;

  /// Rebuilds the adjacency tables; called automatically by the builders
  /// and the parser, and after manual addTransition sequences.
  void finalize();

  /// Checks structural sanity: designated start and end exist, transition
  /// probabilities from each non-end state sum to ~1 (warning otherwise),
  /// probabilities lie in [0, 1]. Returns false on hard errors.
  bool validate(DiagnosticEngine &Diags) const;

  /// Samples an emission sequence by walking the model from start to end
  /// (silent interior states pass through). Deterministic in \p Seed.
  std::string sample(uint64_t Seed, size_t MaxLength = 100000) const;

  /// Parses the textual model format (also used for inline DSL bodies):
  /// \code
  ///   alphabet dna ;
  ///   state begin start ;
  ///   state exon emits a 0.3 c 0.2 g 0.2 t 0.3 ;
  ///   state finish end ;
  ///   transition begin -> exon 0.5 ;
  /// \endcode
  /// Whitespace and newlines are interchangeable; statements end in ';'.
  static std::optional<Hmm> parse(std::string_view Text,
                                  DiagnosticEngine &Diags);

  /// Renders in the format parse() accepts.
  std::string str() const;

private:
  std::string Name;
  Alphabet Alpha;
  std::vector<HmmState> States;
  std::vector<HmmTransition> Transitions;
  std::vector<std::vector<unsigned>> IncomingByState;
  std::vector<std::vector<unsigned>> OutgoingByState;
};

/// Returns an equivalent model in which every interior silent state
/// (anything silent other than the designated start and end) has been
/// eliminated by summing transition probabilities over silent paths.
///
/// The DSL's forward/Viterbi recursions (Figure 11) consume one symbol
/// per step and special-case only the silent end state, so models with
/// interior silent states — e.g. profile-HMM delete states — are
/// preprocessed with this transform before being handed to the DSL.
/// Self-looping silent states are handled via geometric renormalisation;
/// silent cycles with total probability 1 are reported as errors.
std::optional<Hmm> eliminateSilentStates(const Hmm &Model,
                                         DiagnosticEngine &Diags);

} // namespace bio
} // namespace parrec

#endif // PARREC_BIO_HMM_H
