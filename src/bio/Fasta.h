//===- Fasta.h - FASTA I/O and synthetic databases ----------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FASTA reading/writing and seeded random sequence generation. The
/// paper's evaluation runs on genome databases; without access to those,
/// the benches generate deterministic synthetic databases of matching
/// shape (sequence counts and length distributions).
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_BIO_FASTA_H
#define PARREC_BIO_FASTA_H

#include "bio/Alphabet.h"
#include "bio/Sequence.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string>
#include <string_view>

namespace parrec {
namespace bio {

/// Parses FASTA-formatted \p Text. Unknown characters are reported as
/// warnings and dropped; returns nullopt only on structural errors.
std::optional<SequenceDatabase> parseFasta(std::string_view Text,
                                           DiagnosticEngine &Diags);

/// Reads and parses \p Path. Missing files produce an error diagnostic.
std::optional<SequenceDatabase> readFastaFile(const std::string &Path,
                                              DiagnosticEngine &Diags);

/// Renders \p Db in FASTA format (60-column lines).
std::string writeFasta(const SequenceDatabase &Db);

/// Generates a uniform random sequence of \p Length over \p Alpha.
Sequence randomSequence(const Alphabet &Alpha, int64_t Length,
                        uint64_t Seed, std::string Name = "random");

/// Generates \p Count sequences whose lengths are uniform in
/// [MinLength, MaxLength]; deterministic in \p Seed.
SequenceDatabase randomDatabase(const Alphabet &Alpha, unsigned Count,
                                int64_t MinLength, int64_t MaxLength,
                                uint64_t Seed);

} // namespace bio
} // namespace parrec

#endif // PARREC_BIO_FASTA_H
