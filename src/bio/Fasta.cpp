//===- Fasta.cpp - FASTA I/O and synthetic databases ------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "bio/Fasta.h"

#include "support/Random.h"
#include "support/StringUtils.h"

#include <cctype>
#include <fstream>
#include <sstream>

using namespace parrec;
using namespace parrec::bio;

std::optional<SequenceDatabase> parrec::bio::parseFasta(
    std::string_view Text, DiagnosticEngine &Diags) {
  SequenceDatabase Db;
  std::string CurrentName;
  std::string CurrentData;
  bool InRecord = false;
  uint32_t LineNo = 0;

  auto FlushRecord = [&]() {
    if (InRecord)
      Db.emplace_back(CurrentName, CurrentData);
    CurrentName.clear();
    CurrentData.clear();
  };

  for (const std::string &RawLine : splitString(Text, '\n')) {
    ++LineNo;
    std::string_view Line = trimString(RawLine);
    if (Line.empty())
      continue;
    if (Line[0] == '>') {
      FlushRecord();
      InRecord = true;
      CurrentName = std::string(trimString(Line.substr(1)));
      continue;
    }
    if (Line[0] == ';')
      continue; // Classic FASTA comment line.
    if (!InRecord) {
      Diags.error({LineNo, 1},
                  "FASTA data before the first '>' header line");
      return std::nullopt;
    }
    for (char C : Line) {
      if (std::isspace(static_cast<unsigned char>(C)))
        continue;
      CurrentData += C;
    }
  }
  FlushRecord();
  return Db;
}

std::optional<SequenceDatabase>
parrec::bio::readFastaFile(const std::string &Path,
                           DiagnosticEngine &Diags) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Diags.error({}, "cannot open FASTA file '" + Path + "'");
    return std::nullopt;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return parseFasta(Buffer.str(), Diags);
}

std::string parrec::bio::writeFasta(const SequenceDatabase &Db) {
  std::string Out;
  for (const Sequence &S : Db) {
    Out += '>';
    Out += S.name();
    Out += '\n';
    const std::string &Data = S.data();
    for (size_t I = 0; I < Data.size(); I += 60) {
      Out += Data.substr(I, 60);
      Out += '\n';
    }
  }
  return Out;
}

Sequence parrec::bio::randomSequence(const Alphabet &Alpha, int64_t Length,
                                     uint64_t Seed, std::string Name) {
  SplitMix64 Rng(Seed);
  std::string Data;
  Data.reserve(static_cast<size_t>(Length));
  for (int64_t I = 0; I != Length; ++I)
    Data += Alpha.charAt(
        static_cast<unsigned>(Rng.nextBelow(Alpha.size())));
  return Sequence(std::move(Name), std::move(Data));
}

SequenceDatabase parrec::bio::randomDatabase(const Alphabet &Alpha,
                                             unsigned Count,
                                             int64_t MinLength,
                                             int64_t MaxLength,
                                             uint64_t Seed) {
  SplitMix64 Rng(Seed);
  SequenceDatabase Db;
  Db.reserve(Count);
  for (unsigned I = 0; I != Count; ++I) {
    int64_t Length = Rng.nextInRange(MinLength, MaxLength);
    Db.push_back(randomSequence(Alpha, Length, Rng.next(),
                                "seq" + std::to_string(I)));
  }
  return Db;
}
