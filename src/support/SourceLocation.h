//===- SourceLocation.h - Positions within DSL source text ------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight value types describing positions and ranges within the DSL
/// source text, used by the lexer, parser and diagnostics engine.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_SUPPORT_SOURCELOCATION_H
#define PARREC_SUPPORT_SOURCELOCATION_H

#include <cstdint>
#include <string>

namespace parrec {

/// A (line, column) position in a source buffer. Lines and columns are
/// 1-based; a zero line denotes an invalid/unknown location.
struct SourceLocation {
  uint32_t Line = 0;
  uint32_t Column = 0;

  constexpr SourceLocation() = default;
  constexpr SourceLocation(uint32_t Line, uint32_t Column)
      : Line(Line), Column(Column) {}

  bool isValid() const { return Line != 0; }

  friend bool operator==(SourceLocation A, SourceLocation B) {
    return A.Line == B.Line && A.Column == B.Column;
  }
  friend bool operator!=(SourceLocation A, SourceLocation B) {
    return !(A == B);
  }

  /// Renders the location as "line:column" (or "<unknown>").
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Column);
  }
};

/// A half-open range of source text [Begin, End).
struct SourceRange {
  SourceLocation Begin;
  SourceLocation End;

  constexpr SourceRange() = default;
  constexpr SourceRange(SourceLocation Begin, SourceLocation End)
      : Begin(Begin), End(End) {}
  constexpr explicit SourceRange(SourceLocation Loc) : Begin(Loc), End(Loc) {}

  bool isValid() const { return Begin.isValid(); }
};

} // namespace parrec

#endif // PARREC_SUPPORT_SOURCELOCATION_H
