//===- Random.h - Deterministic pseudo-random generation ---------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded SplitMix64 generator used to create synthetic workloads
/// (sequence databases, HMM parameters). All evaluation data must be
/// reproducible bit-for-bit, so std::random_device is never used.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_SUPPORT_RANDOM_H
#define PARREC_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace parrec {

/// SplitMix64: tiny, fast, and identical on every platform.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64 raw bits.
  uint64_t next() {
    State += 0x9E3779B97F4A7C15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow requires a positive bound");
    // Rejection-free modulo is fine for synthetic-data purposes.
    return next() % Bound;
  }

  /// Returns a uniform integer in [Low, High] inclusive.
  int64_t nextInRange(int64_t Low, int64_t High) {
    assert(Low <= High && "empty range");
    return Low + static_cast<int64_t>(
                     nextBelow(static_cast<uint64_t>(High - Low) + 1));
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

private:
  uint64_t State;
};

} // namespace parrec

#endif // PARREC_SUPPORT_RANDOM_H
