//===- Diagnostics.cpp - Error and warning reporting ----------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace parrec;

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::string Out;
  if (Loc.isValid()) {
    Out += Loc.str();
    Out += ": ";
  }
  Out += severityName(Severity);
  Out += ": ";
  Out += Message;
  return Out;
}

void DiagnosticEngine::error(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Warning, Loc, std::move(Message)});
}

void DiagnosticEngine::note(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Note, Loc, std::move(Message)});
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
