//===- Diagnostics.h - Error and warning reporting ---------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostics engine. Library code never throws; recoverable
/// problems (malformed DSL input, unsatisfiable schedules, ...) are reported
/// here and callers test \c hasErrors().
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_SUPPORT_DIAGNOSTICS_H
#define PARREC_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLocation.h"

#include <string>
#include <vector>

namespace parrec {

/// Severity of a reported diagnostic.
enum class DiagSeverity { Note, Warning, Error };

/// A single reported problem: severity, location and message text.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLocation Loc;
  std::string Message;

  /// Renders the diagnostic in the conventional "loc: severity: text" form.
  std::string str() const;
};

/// Collects diagnostics produced while processing one compilation.
///
/// The engine is deliberately simple: diagnostics accumulate in order and
/// can be rendered to a string. It performs no I/O itself so library code
/// stays free of stream dependencies.
class DiagnosticEngine {
public:
  void error(SourceLocation Loc, std::string Message);
  void warning(SourceLocation Loc, std::string Message);
  void note(SourceLocation Loc, std::string Message);

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders every diagnostic, one per line.
  std::string str() const;

  /// Drops all collected diagnostics.
  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace parrec

#endif // PARREC_SUPPORT_DIAGNOSTICS_H
