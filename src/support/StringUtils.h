//===- StringUtils.h - Small string helpers ----------------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared across the compiler: splitting, trimming and a
/// couple of formatting conveniences used when pretty-printing generated
/// code and affine expressions.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_SUPPORT_STRINGUTILS_H
#define PARREC_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace parrec {

/// Splits \p Text on \p Separator. Empty pieces are kept so the result is
/// always Separator-count + 1 entries.
std::vector<std::string> splitString(std::string_view Text, char Separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view trimString(std::string_view Text);

/// True when \p Text begins with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// Joins \p Pieces with \p Separator between consecutive entries.
std::string joinStrings(const std::vector<std::string> &Pieces,
                        std::string_view Separator);

/// Appends a signed coefficient * variable term ("x", "+ 2*y", "- z") to a
/// textual affine expression under construction. \p First tracks whether a
/// term has been emitted yet and is updated.
void appendAffineTerm(std::string &Out, int64_t Coefficient,
                      std::string_view Variable, bool &First);

} // namespace parrec

#endif // PARREC_SUPPORT_STRINGUTILS_H
