//===- StringUtils.cpp - Small string helpers -----------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>

using namespace parrec;

std::vector<std::string> parrec::splitString(std::string_view Text,
                                             char Separator) {
  std::vector<std::string> Pieces;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Separator, Start);
    if (Pos == std::string_view::npos) {
      Pieces.emplace_back(Text.substr(Start));
      return Pieces;
    }
    Pieces.emplace_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string_view parrec::trimString(std::string_view Text) {
  size_t Begin = 0;
  while (Begin < Text.size() &&
         std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  size_t End = Text.size();
  while (End > Begin &&
         std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

bool parrec::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.substr(0, Prefix.size()) == Prefix;
}

std::string parrec::joinStrings(const std::vector<std::string> &Pieces,
                                std::string_view Separator) {
  std::string Out;
  bool First = true;
  for (const std::string &Piece : Pieces) {
    if (!First)
      Out += Separator;
    Out += Piece;
    First = false;
  }
  return Out;
}

void parrec::appendAffineTerm(std::string &Out, int64_t Coefficient,
                              std::string_view Variable, bool &First) {
  if (Coefficient == 0)
    return;
  int64_t Magnitude = Coefficient < 0 ? -Coefficient : Coefficient;
  if (First) {
    if (Coefficient < 0)
      Out += "-";
    First = false;
  } else {
    Out += Coefficient < 0 ? " - " : " + ";
  }
  if (Magnitude != 1) {
    Out += std::to_string(Magnitude);
    Out += "*";
  }
  Out += Variable;
}
