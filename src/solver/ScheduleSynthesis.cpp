//===- ScheduleSynthesis.cpp - Finding and checking schedules --------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "solver/ScheduleSynthesis.h"

#include "obs/Trace.h"
#include "solver/CspSolver.h"

#include <algorithm>
#include <numeric>

using namespace parrec;
using namespace parrec::solver;
using poly::AffineExpr;
using poly::Constraint;

bool ScheduleCriteria::isSatisfiedBy(const Schedule &S) const {
  assert(S.numDims() == NumDims && "schedule dimension mismatch");
  for (const Constraint &C : Constraints) {
    int64_t V = C.Expr.evaluate(S.Coefficients);
    if (C.Kind == Constraint::EQ ? V != 0 : V < 0)
      return false;
  }
  return true;
}

std::optional<ScheduleCriteria>
parrec::solver::buildCriteria(const RecurrenceSpec &Spec,
                              const std::optional<DomainBox> &Box,
                              DiagnosticEngine &Diags) {
  unsigned N = Spec.numDims();
  ScheduleCriteria Criteria;
  Criteria.NumDims = N;

  auto addFreeDimConstraints = [&](const DescentFunction &Call) {
    // A free component can land anywhere in its dimension, so the only
    // schedules that respect it are those ignoring that dimension
    // entirely: a_d == 0 (Section 5.2's conclusion for the forward
    // algorithm's state dimension).
    for (unsigned I = 0; I != N; ++I) {
      if (!Call.isFreeDim(I))
        continue;
      AffineExpr Expr(N);
      Expr.setCoefficient(I, 1);
      bool Duplicate = false;
      for (const Constraint &Existing : Criteria.Constraints)
        if (Existing.Kind == Constraint::EQ && Existing.Expr == Expr) {
          Duplicate = true;
          break;
        }
      if (!Duplicate)
        Criteria.Constraints.push_back(Constraint::eq(Expr));
    }
  };

  for (const DescentFunction &Call : Spec.Calls) {
    assert(Call.Components.size() == N && "descent arity mismatch");
    addFreeDimConstraints(Call);
    if (Call.isUniform()) {
      // Delta = sum_i a_i * (x_i - (x_i + c_i)) = -a . c, a constant, so
      // the criterion is -a . c - 1 >= 0 (Section 4.5).
      std::vector<int64_t> Offsets = Call.uniformOffsets();
      AffineExpr Expr(N);
      for (unsigned I = 0; I != N; ++I)
        Expr.setCoefficient(I, -Offsets[I]);
      Expr.setConstantTerm(-1);
      Criteria.Constraints.push_back(Constraint::ge(Expr));
      continue;
    }

    // General affine descent: Delta(x) is affine in x, so its minimum over
    // the runtime box is attained at a vertex. Emit one criterion per
    // vertex — exactly the paper's 2^n subproblem construction.
    if (!Box) {
      Diags.error({}, "recursive call " + Call.str(Spec.DimNames) +
                          " has a non-uniform affine descent; the runtime "
                          "domain is required to derive schedule criteria");
      return std::nullopt;
    }
    assert(Box->numDims() == N && "box dimension mismatch");
    for (uint64_t Mask = 0, End = uint64_t(1) << N; Mask != End; ++Mask) {
      std::vector<int64_t> Vertex(N);
      for (unsigned I = 0; I != N; ++I)
        Vertex[I] = (Mask >> I) & 1 ? Box->Upper[I] : Box->Lower[I];
      AffineExpr Expr(N);
      for (unsigned I = 0; I != N; ++I) {
        int64_t Delta = Vertex[I] - Call.Components[I].evaluate(Vertex);
        Expr.setCoefficient(I, Delta);
      }
      Expr.setConstantTerm(-1);
      // Drop duplicates as we go; vertex deltas often coincide.
      bool Duplicate = false;
      for (const Constraint &Existing : Criteria.Constraints)
        if (Existing.Expr == Expr) {
          Duplicate = true;
          break;
        }
      if (!Duplicate)
        Criteria.Constraints.push_back(Constraint::ge(Expr));
    }
  }
  return Criteria;
}

bool parrec::solver::verifySchedule(const RecurrenceSpec &Spec,
                                    const Schedule &S,
                                    const std::optional<DomainBox> &Box,
                                    DiagnosticEngine &Diags) {
  if (S.numDims() != Spec.numDims()) {
    Diags.error({}, "schedule for '" + Spec.Name + "' has " +
                        std::to_string(S.numDims()) + " coefficients; the "
                        "recursion has " +
                        std::to_string(Spec.numDims()) + " dimensions");
    return false;
  }
  std::optional<ScheduleCriteria> Criteria = buildCriteria(Spec, Box, Diags);
  if (!Criteria)
    return false;
  for (const Constraint &C : Criteria->Constraints) {
    int64_t V = C.Expr.evaluate(S.Coefficients);
    if (V < 0) {
      std::vector<std::string> CoeffNames;
      for (const std::string &Dim : Spec.DimNames)
        CoeffNames.push_back("a_" + Dim);
      Diags.error({}, "schedule " + S.str(Spec.DimNames) + " for '" +
                          Spec.Name + "' violates dependency criterion " +
                          C.str(CoeffNames));
      return false;
    }
  }
  return true;
}

std::optional<Schedule> parrec::solver::findMinimalSchedule(
    const RecurrenceSpec &Spec, const DomainBox &Box,
    DiagnosticEngine &Diags, const ScheduleSearchOptions &Options) {
  // Instrumented by the schedule_synthesis pass wrapper (compiler/).
  unsigned N = Spec.numDims();
  if (Spec.Calls.empty()) {
    // No recursion: everything is independent and one partition suffices.
    Schedule S;
    S.Coefficients.assign(N, 0);
    return S;
  }

  std::optional<ScheduleCriteria> Criteria =
      buildCriteria(Spec, Box, Diags);
  if (!Criteria)
    return std::nullopt;

  int64_t K = Options.MaxCoefficient;
  std::optional<Schedule> Best;
  int64_t BestPartitions = 0;

  // Enumerate the 2^n sign patterns (Section 4.6): under a fixed pattern,
  // |a_i| is linear and the objective max(S) - min(S) becomes
  // sum_i s_i * a_i * extent_i.
  for (uint64_t Pattern = 0, End = uint64_t(1) << N; Pattern != End;
       ++Pattern) {
    CspSolver Solver(N, -K, K);
    AffineExpr Objective(N);
    for (unsigned I = 0; I != N; ++I) {
      bool Negative = (Pattern >> I) & 1;
      if (Negative)
        Solver.restrictVar(I, -K, 0);
      else
        Solver.restrictVar(I, 0, K);
      int64_t Extent = Box.Upper[I] - Box.Lower[I];
      Objective.setCoefficient(I, Negative ? -Extent : Extent);
    }
    for (const Constraint &C : Criteria->Constraints)
      Solver.addConstraint(C);
    Solver.setObjective(Objective);

    std::optional<CspSolution> Solution = Solver.solve();
    if (!Solution)
      continue;
    int64_t Partitions = Solution->ObjectiveValue + 1;
    if (!Best || Partitions < BestPartitions) {
      Best = Schedule{Solution->Assignment};
      BestPartitions = Partitions;
    }
  }

  if (!Best)
    Diags.error({}, "no valid schedule with coefficients in [-" +
                        std::to_string(K) + ", " + std::to_string(K) +
                        "] exists for '" + Spec.Name +
                        "'; the recursion's dependencies are cyclic");
  return Best;
}

namespace {

/// Values 0, 1, -1, 2, -2, ... within [-K, K]: magnitude-lexicographic
/// with positive preferred, the order the conditional derivation fixes
/// coefficients in.
std::vector<int64_t> magnitudeOrder(int64_t K) {
  std::vector<int64_t> Order;
  Order.push_back(0);
  for (int64_t V = 1; V <= K; ++V) {
    Order.push_back(V);
    Order.push_back(-V);
  }
  return Order;
}

bool feasibleWithFixed(const ScheduleCriteria &Criteria, int64_t K,
                       const std::vector<std::optional<int64_t>> &Fixed) {
  CspSolver Solver(Criteria.NumDims, -K, K);
  for (unsigned I = 0; I != Criteria.NumDims; ++I)
    if (Fixed[I])
      Solver.fixVar(I, *Fixed[I]);
  for (const Constraint &C : Criteria.Constraints)
    Solver.addConstraint(C);
  return Solver.solve().has_value();
}

} // namespace

std::optional<std::vector<ConditionalSchedule>>
parrec::solver::findConditionalSchedules(
    const RecurrenceSpec &Spec, DiagnosticEngine &Diags,
    const ScheduleSearchOptions &Options) {
  obs::Span PhaseSpan("compile.conditional_schedules", "compiler");
  if (PhaseSpan.active())
    PhaseSpan.arg("function", Spec.Name);
  if (!Spec.allUniform()) {
    Diags.error({}, "conditional parallelisation requires uniform descent "
                    "functions (Section 4.7); '" +
                        Spec.Name + "' has a general affine descent");
    return std::nullopt;
  }
  unsigned N = Spec.numDims();
  std::optional<ScheduleCriteria> Criteria =
      buildCriteria(Spec, std::nullopt, Diags);
  if (!Criteria)
    return std::nullopt;

  int64_t K = Options.MaxCoefficient;
  std::vector<int64_t> ValueOrder = magnitudeOrder(K);

  std::vector<ConditionalSchedule> Candidates;
  std::vector<unsigned> Perm(N);
  std::iota(Perm.begin(), Perm.end(), 0);

  // For each permutation, find the first lexicographic solution: minimise
  // each dimension in turn, propagating the already-fixed values.
  do {
    std::vector<std::optional<int64_t>> Fixed(N);
    bool Failed = false;
    for (unsigned Dim : Perm) {
      bool Assigned = false;
      for (int64_t V : ValueOrder) {
        Fixed[Dim] = V;
        if (feasibleWithFixed(*Criteria, K, Fixed)) {
          Assigned = true;
          break;
        }
      }
      if (!Assigned) {
        Failed = true;
        break;
      }
    }
    if (Failed)
      continue;

    Schedule S;
    S.Coefficients.reserve(N);
    for (unsigned I = 0; I != N; ++I)
      S.Coefficients.push_back(*Fixed[I]);
    bool Duplicate = false;
    for (const ConditionalSchedule &C : Candidates)
      if (C.S == S) {
        Duplicate = true;
        break;
      }
    if (!Duplicate)
      Candidates.push_back({std::move(S)});
  } while (std::next_permutation(Perm.begin(), Perm.end()));

  if (Candidates.empty()) {
    Diags.error({}, "no valid conditional schedules with coefficients in "
                    "[-" +
                        std::to_string(K) + ", " + std::to_string(K) +
                        "] exist for '" + Spec.Name + "'");
    return std::nullopt;
  }
  return Candidates;
}

const ConditionalSchedule &parrec::solver::selectSchedule(
    const std::vector<ConditionalSchedule> &Candidates,
    const DomainBox &Box) {
  assert(!Candidates.empty() && "no candidates to select from");
  const ConditionalSchedule *Best = &Candidates[0];
  int64_t BestCount = Best->S.partitionCount(Box);
  for (const ConditionalSchedule &C : Candidates) {
    int64_t Count = C.S.partitionCount(Box);
    if (Count < BestCount) {
      Best = &C;
      BestCount = Count;
    }
  }
  return *Best;
}

std::vector<Schedule>
parrec::solver::enumerateCandidateSchedules(const RecurrenceSpec &Spec,
                                            const DomainBox &Box,
                                            size_t MaxCandidates) {
  std::vector<Schedule> Candidates;
  auto push = [&](Schedule S) {
    if (Candidates.size() >= MaxCandidates)
      return;
    if (std::find(Candidates.begin(), Candidates.end(), S) ==
        Candidates.end())
      Candidates.push_back(std::move(S));
  };

  // This is a speculative enumeration: failures are expected (e.g. no
  // conditional candidates for affine descents) and must not leak
  // diagnostics to the caller's engine.
  DiagnosticEngine Scratch;
  std::optional<Schedule> Minimal = findMinimalSchedule(Spec, Box, Scratch);
  if (!Minimal)
    return Candidates;
  push(std::move(*Minimal));
  if (Spec.Calls.empty())
    return Candidates; // One partition covers everything; done.

  if (Spec.allUniform()) {
    Scratch.clear();
    if (auto Conditional = findConditionalSchedules(Spec, Scratch))
      for (const ConditionalSchedule &C : *Conditional)
        push(C.S);
  }

  // All {0,1}-coefficient schedules satisfying the criteria: cheap wavefront
  // shapes the minimisation may have skipped over for partition count but
  // which the cost model can rank differently (load balance, window size).
  std::optional<ScheduleCriteria> Criteria =
      buildCriteria(Spec, Box, Scratch);
  if (Criteria) {
    unsigned N = Spec.numDims();
    for (uint64_t Mask = 1, End = uint64_t(1) << N; Mask != End; ++Mask) {
      Schedule S;
      S.Coefficients.reserve(N);
      for (unsigned I = 0; I != N; ++I)
        S.Coefficients.push_back((Mask >> I) & 1);
      if (Criteria->isSatisfiedBy(S))
        push(std::move(S));
    }
  }
  return Candidates;
}

std::optional<int64_t>
parrec::solver::slidingWindowDepth(const RecurrenceSpec &Spec,
                                   const Schedule &S) {
  int64_t Depth = 0;
  for (const DescentFunction &Call : Spec.Calls) {
    if (!Call.isUniform())
      return std::nullopt; // Affine descents force full tabulation.
    std::vector<int64_t> Offsets = Call.uniformOffsets();
    int64_t Lag = 0;
    for (unsigned I = 0, E = S.numDims(); I != E; ++I)
      Lag += -S.Coefficients[I] * Offsets[I];
    assert(Lag >= 1 && "sliding window requires a valid schedule");
    Depth = std::max(Depth, Lag);
  }
  return Depth;
}
