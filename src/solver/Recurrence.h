//===- Recurrence.h - Analysis view of a recursive function -------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The language-neutral description of a recursion that the schedule
/// synthesiser consumes (Section 4.4): the recursion dimensions and, for
/// every recursive call site, the affine descent functions mapping the
/// current arguments to the callee's arguments.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_SOLVER_RECURRENCE_H
#define PARREC_SOLVER_RECURRENCE_H

#include "poly/AffineExpr.h"

#include <optional>
#include <string>
#include <vector>

namespace parrec {
namespace solver {

/// The argument map of one recursive call site: component i gives the
/// callee's i-th recursive argument as an affine function of the caller's
/// recursive arguments.
///
/// A component may instead be marked *free*: the callee's argument can
/// take any value in that dimension's domain. This encodes the paper's
/// Section 5.2 analysis of reductions over HMM transitions — for
/// "forward(t.start, i-1)" inside a sum, t.start varies over every state,
/// which forces the schedule coefficient of the state dimension to zero.
/// Free components store the identity expression x_d as a placeholder.
struct DescentFunction {
  std::vector<poly::AffineExpr> Components;
  std::vector<bool> FreeDims; // Empty means "no free dimensions".

  unsigned numDims() const {
    return Components.empty() ? 0 : Components[0].numDims();
  }

  bool isFreeDim(unsigned Dim) const {
    return Dim < FreeDims.size() && FreeDims[Dim];
  }
  bool hasFreeDims() const {
    for (bool B : FreeDims)
      if (B)
        return true;
    return false;
  }

  /// True when every non-free component has the form x_i + c_i (the
  /// "uniform" descents of Section 4.5, covering the majority of
  /// practical cases). Free components are stored as the identity and so
  /// count as uniform.
  bool isUniform() const;

  /// For a uniform descent, the per-dimension offsets c_i.
  std::vector<int64_t> uniformOffsets() const;

  std::string str(const std::vector<std::string> &DimNames) const;
};

/// A complete recursion: dimension names plus every call site's descent.
struct RecurrenceSpec {
  std::string Name = "f";
  std::vector<std::string> DimNames;
  std::vector<DescentFunction> Calls;

  unsigned numDims() const {
    return static_cast<unsigned>(DimNames.size());
  }

  /// True when every call site has a uniform descent; required by the
  /// compile-time conditional parallelisation of Section 4.7.
  bool allUniform() const;
};

/// The inclusive integer box [Lower_i, Upper_i] the recursion ranges over.
/// Known only at runtime (sequence lengths, model sizes).
struct DomainBox {
  std::vector<int64_t> Lower;
  std::vector<int64_t> Upper;

  unsigned numDims() const {
    return static_cast<unsigned>(Lower.size());
  }
  /// Extent of dimension \p Dim (number of integer points).
  int64_t extent(unsigned Dim) const {
    return Upper[Dim] - Lower[Dim] + 1;
  }
  uint64_t totalPoints() const {
    uint64_t N = 1;
    for (unsigned I = 0; I != numDims(); ++I)
      N *= static_cast<uint64_t>(extent(I));
    return N;
  }

  /// A box [0, Extent_i - 1] per dimension.
  static DomainBox fromExtents(const std::vector<int64_t> &Extents);
};

/// An affine scheduling function Sf = a1*x1 + ... + an*xn (Section 4.2).
struct Schedule {
  std::vector<int64_t> Coefficients;

  unsigned numDims() const {
    return static_cast<unsigned>(Coefficients.size());
  }

  int64_t apply(const std::vector<int64_t> &Point) const;

  /// Minimum and maximum time-step over \p Box.
  int64_t minOver(const DomainBox &Box) const;
  int64_t maxOver(const DomainBox &Box) const;

  /// Number of partitions needed to cover \p Box: max - min + 1. This is
  /// the paper's efficiency heuristic (Section 4.6, equation (4)).
  int64_t partitionCount(const DomainBox &Box) const;

  /// The schedule as an affine expression over [params..., x...] space
  /// with \p NumParams leading parameter dimensions (for loop generation).
  poly::AffineExpr toAffineExpr(unsigned NumParams) const;

  /// Stable FNV-1a fingerprint of the coefficient vector. Execution
  /// layers use it to key caches of per-schedule work (plans, loop
  /// nests) without owning a coefficient copy per key component.
  uint64_t fingerprint() const;

  std::string str(const std::vector<std::string> &DimNames) const;

  friend bool operator==(const Schedule &A, const Schedule &B) {
    return A.Coefficients == B.Coefficients;
  }
};

} // namespace solver
} // namespace parrec

#endif // PARREC_SOLVER_RECURRENCE_H
