//===- Recurrence.cpp - Analysis view of a recursive function --------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "solver/Recurrence.h"

#include "support/StringUtils.h"

using namespace parrec;
using namespace parrec::solver;

bool DescentFunction::isUniform() const {
  for (unsigned I = 0, E = static_cast<unsigned>(Components.size()); I != E;
       ++I) {
    const poly::AffineExpr &C = Components[I];
    for (unsigned J = 0, N = C.numDims(); J != N; ++J) {
      int64_t Expected = (I == J) ? 1 : 0;
      if (C.coefficient(J) != Expected)
        return false;
    }
  }
  return true;
}

std::vector<int64_t> DescentFunction::uniformOffsets() const {
  assert(isUniform() && "offsets only defined for uniform descents");
  std::vector<int64_t> Offsets;
  Offsets.reserve(Components.size());
  for (const poly::AffineExpr &C : Components)
    Offsets.push_back(C.constantTerm());
  return Offsets;
}

std::string
DescentFunction::str(const std::vector<std::string> &DimNames) const {
  std::string Out = "(";
  for (size_t I = 0; I != Components.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Components[I].str(DimNames);
  }
  Out += ")";
  return Out;
}

bool RecurrenceSpec::allUniform() const {
  for (const DescentFunction &D : Calls)
    if (!D.isUniform())
      return false;
  return true;
}

DomainBox DomainBox::fromExtents(const std::vector<int64_t> &Extents) {
  DomainBox Box;
  Box.Lower.assign(Extents.size(), 0);
  Box.Upper.reserve(Extents.size());
  for (int64_t E : Extents) {
    assert(E > 0 && "extents must be positive");
    Box.Upper.push_back(E - 1);
  }
  return Box;
}

int64_t Schedule::apply(const std::vector<int64_t> &Point) const {
  assert(Point.size() == Coefficients.size() && "dimension mismatch");
  int64_t Sum = 0;
  for (unsigned I = 0, E = numDims(); I != E; ++I)
    Sum += Coefficients[I] * Point[I];
  return Sum;
}

int64_t Schedule::minOver(const DomainBox &Box) const {
  assert(Box.numDims() == numDims() && "dimension mismatch");
  int64_t Sum = 0;
  for (unsigned I = 0, E = numDims(); I != E; ++I)
    Sum += Coefficients[I] *
           (Coefficients[I] >= 0 ? Box.Lower[I] : Box.Upper[I]);
  return Sum;
}

int64_t Schedule::maxOver(const DomainBox &Box) const {
  assert(Box.numDims() == numDims() && "dimension mismatch");
  int64_t Sum = 0;
  for (unsigned I = 0, E = numDims(); I != E; ++I)
    Sum += Coefficients[I] *
           (Coefficients[I] >= 0 ? Box.Upper[I] : Box.Lower[I]);
  return Sum;
}

int64_t Schedule::partitionCount(const DomainBox &Box) const {
  return maxOver(Box) - minOver(Box) + 1;
}

uint64_t Schedule::fingerprint() const {
  uint64_t Hash = 0xcbf29ce484222325ull;
  for (int64_t C : Coefficients) {
    Hash ^= static_cast<uint64_t>(C);
    Hash *= 0x100000001b3ull;
  }
  return Hash;
}

poly::AffineExpr Schedule::toAffineExpr(unsigned NumParams) const {
  poly::AffineExpr E(NumParams + numDims());
  for (unsigned I = 0, N = numDims(); I != N; ++I)
    E.setCoefficient(NumParams + I, Coefficients[I]);
  return E;
}

std::string Schedule::str(const std::vector<std::string> &DimNames) const {
  std::string Out;
  bool First = true;
  for (unsigned I = 0, E = numDims(); I != E; ++I) {
    std::string Fallback;
    std::string_view Name;
    if (I < DimNames.size()) {
      Name = DimNames[I];
    } else {
      Fallback = "x" + std::to_string(I);
      Name = Fallback;
    }
    appendAffineTerm(Out, Coefficients[I], Name, First);
  }
  if (First)
    Out = "0";
  return Out;
}
