//===- MutualRecurrence.cpp - Schedules for mutual recursion ----------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "solver/MutualRecurrence.h"

#include "solver/CspSolver.h"
#include "support/StringUtils.h"

using namespace parrec;
using namespace parrec::solver;
using poly::AffineExpr;
using poly::Constraint;

std::string
OffsetSchedule::str(const std::vector<std::string> &DimNames) const {
  std::string Out = Coefficients.str(DimNames);
  if (Offset > 0)
    Out += " + " + std::to_string(Offset);
  else if (Offset < 0)
    Out += " - " + std::to_string(-Offset);
  return Out;
}

int64_t SystemSchedule::totalPartitions(
    const std::vector<DomainBox> &Boxes) const {
  assert(Boxes.size() == PerFunction.size() && "box per function");
  int64_t Min = 0, Max = 0;
  bool First = true;
  for (size_t F = 0; F != PerFunction.size(); ++F) {
    int64_t Lo = PerFunction[F].minOver(Boxes[F]);
    int64_t Hi = PerFunction[F].maxOver(Boxes[F]);
    if (First) {
      Min = Lo;
      Max = Hi;
      First = false;
    } else {
      Min = std::min(Min, Lo);
      Max = std::max(Max, Hi);
    }
  }
  return Max - Min + 1;
}

namespace {

/// Variable layout of the system CSP: the coefficient variables of every
/// function in order, then one offset variable per function.
struct VarLayout {
  std::vector<unsigned> CoeffBase; // Per function.
  unsigned OffsetBase = 0;
  unsigned Total = 0;

  explicit VarLayout(const RecurrenceSystem &System) {
    unsigned Next = 0;
    for (const SystemFunction &F : System.Functions) {
      CoeffBase.push_back(Next);
      Next += F.numDims();
    }
    OffsetBase = Next;
    Total = Next + static_cast<unsigned>(System.Functions.size());
  }

  unsigned coeff(unsigned Function, unsigned Dim) const {
    return CoeffBase[Function] + Dim;
  }
  unsigned offset(unsigned Function) const {
    return OffsetBase + Function;
  }
};

/// Emits the vertex criteria of one call into \p Constraints:
/// S_f(v) - S_g(descent(v)) >= 1 at every vertex v of the caller's box,
/// plus a_g,k == 0 for the call's free callee dimensions.
void buildCallCriteria(const RecurrenceSystem &System,
                       const std::vector<DomainBox> &Boxes,
                       const VarLayout &Layout, unsigned Caller,
                       const SystemCall &Call,
                       std::vector<Constraint> &Constraints) {
  const SystemFunction &F = System.Functions[Caller];
  const SystemFunction &G = System.Functions[Call.Callee];
  unsigned NF = F.numDims();
  unsigned NG = G.numDims();
  const DomainBox &Box = Boxes[Caller];

  for (unsigned K = 0; K != NG; ++K)
    if (Call.isFreeDim(K)) {
      AffineExpr Zero(Layout.Total);
      Zero.setCoefficient(Layout.coeff(Call.Callee, K), 1);
      Constraints.push_back(Constraint::eq(Zero));
    }

  for (uint64_t Mask = 0, End = uint64_t(1) << NF; Mask != End; ++Mask) {
    std::vector<int64_t> Vertex(NF);
    for (unsigned J = 0; J != NF; ++J)
      Vertex[J] = (Mask >> J) & 1 ? Box.Upper[J] : Box.Lower[J];

    AffineExpr Expr(Layout.Total);
    for (unsigned J = 0; J != NF; ++J)
      Expr.setCoefficient(Layout.coeff(Caller, J), Vertex[J]);
    for (unsigned K = 0; K != NG; ++K) {
      if (Call.isFreeDim(K))
        continue; // Coefficient is forced to zero.
      int64_t Target = Call.Components[K].evaluate(Vertex);
      Expr.setCoefficient(
          Layout.coeff(Call.Callee, K),
          Expr.coefficient(Layout.coeff(Call.Callee, K)) - Target);
    }
    Expr.setCoefficient(Layout.offset(Caller),
                        Expr.coefficient(Layout.offset(Caller)) + 1);
    Expr.setCoefficient(Layout.offset(Call.Callee),
                        Expr.coefficient(Layout.offset(Call.Callee)) -
                            1);
    Expr.setConstantTerm(-1);
    Constraints.push_back(Constraint::ge(Expr));
  }
}

} // namespace

bool parrec::solver::verifySystemSchedule(
    const RecurrenceSystem &System, const SystemSchedule &S,
    const std::vector<DomainBox> &Boxes, DiagnosticEngine &Diags) {
  if (S.PerFunction.size() != System.Functions.size()) {
    Diags.error({}, "system schedule must assign one schedule per "
                    "function");
    return false;
  }
  for (unsigned F = 0; F != System.Functions.size(); ++F) {
    const SystemFunction &Fn = System.Functions[F];
    for (const SystemCall &Call : Fn.Calls) {
      const SystemFunction &G = System.Functions[Call.Callee];
      const OffsetSchedule &SF = S.PerFunction[F];
      const OffsetSchedule &SG = S.PerFunction[Call.Callee];
      for (unsigned K = 0; K != G.numDims(); ++K)
        if (Call.isFreeDim(K) &&
            SG.Coefficients.Coefficients[K] != 0) {
          Diags.error({}, "schedule of '" + G.Name +
                              "' must ignore dimension '" +
                              G.DimNames[K] +
                              "' (free in a call from '" + Fn.Name +
                              "')");
          return false;
        }
      // Delta is affine in the caller's point; vertices suffice.
      unsigned NF = Fn.numDims();
      for (uint64_t Mask = 0, End = uint64_t(1) << NF; Mask != End;
           ++Mask) {
        std::vector<int64_t> Vertex(NF);
        for (unsigned J = 0; J != NF; ++J)
          Vertex[J] =
              (Mask >> J) & 1 ? Boxes[F].Upper[J] : Boxes[F].Lower[J];
        std::vector<int64_t> Target(G.numDims(), 0);
        int64_t CalleeValue = SG.Offset;
        for (unsigned K = 0; K != G.numDims(); ++K) {
          if (Call.isFreeDim(K))
            continue;
          CalleeValue += SG.Coefficients.Coefficients[K] *
                         Call.Components[K].evaluate(Vertex);
        }
        if (SF.apply(Vertex) <= CalleeValue) {
          Diags.error({}, "system schedule violates the dependency '" +
                              Fn.Name + " -> " + G.Name + "'");
          return false;
        }
      }
    }
  }
  return true;
}

std::optional<SystemSchedule> parrec::solver::findSystemSchedule(
    const RecurrenceSystem &System, const std::vector<DomainBox> &Boxes,
    DiagnosticEngine &Diags, const SystemScheduleOptions &Options) {
  assert(Boxes.size() == System.Functions.size() &&
         "one box per function");
  VarLayout Layout(System);

  std::vector<Constraint> Criteria;
  for (unsigned F = 0; F != System.Functions.size(); ++F)
    for (const SystemCall &Call : System.Functions[F].Calls)
      buildCallCriteria(System, Boxes, Layout, F, Call, Criteria);

  unsigned NumCoeffs = Layout.OffsetBase;
  int64_t K = Options.MaxCoefficient;

  std::optional<SystemSchedule> Best;
  int64_t BestObjective = 0;

  // Sign-pattern decomposition over every coefficient variable, as in
  // the single-function search (Section 4.6); offsets cancel within a
  // function's span so they are free in the objective and resolved to
  // small magnitudes by the search order.
  for (uint64_t Pattern = 0, End = uint64_t(1) << NumCoeffs;
       Pattern != End; ++Pattern) {
    CspSolver Solver(Layout.Total, -K, K);
    AffineExpr Objective(Layout.Total);
    for (unsigned F = 0; F != System.Functions.size(); ++F) {
      for (unsigned J = 0; J != System.Functions[F].numDims(); ++J) {
        unsigned Var = Layout.coeff(F, J);
        bool Negative = (Pattern >> Var) & 1;
        if (Negative)
          Solver.restrictVar(Var, -K, 0);
        else
          Solver.restrictVar(Var, 0, K);
        int64_t Extent = Boxes[F].Upper[J] - Boxes[F].Lower[J];
        Objective.setCoefficient(Var, Negative ? -Extent : Extent);
      }
      Solver.restrictVar(Layout.offset(F), -Options.MaxOffset,
                         Options.MaxOffset);
    }
    // Gauge freedom: the first function's offset is zero.
    Solver.fixVar(Layout.offset(0), 0);
    for (const Constraint &C : Criteria)
      Solver.addConstraint(C);
    Solver.setObjective(Objective);

    std::optional<CspSolution> Solution = Solver.solve();
    if (!Solution)
      continue;
    if (!Best || Solution->ObjectiveValue < BestObjective) {
      SystemSchedule S;
      for (unsigned F = 0; F != System.Functions.size(); ++F) {
        OffsetSchedule OS;
        for (unsigned J = 0; J != System.Functions[F].numDims(); ++J)
          OS.Coefficients.Coefficients.push_back(
              Solution->Assignment[Layout.coeff(F, J)]);
        OS.Offset = Solution->Assignment[Layout.offset(F)];
        S.PerFunction.push_back(std::move(OS));
      }
      Best = std::move(S);
      BestObjective = Solution->ObjectiveValue;
    }
  }

  if (!Best)
    Diags.error({}, "no compatible system schedule exists within the "
                    "coefficient and offset bounds; the system's "
                    "dependencies are cyclic");
  return Best;
}
