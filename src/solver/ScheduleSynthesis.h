//===- ScheduleSynthesis.h - Finding and checking schedules -------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sections 4.5–4.8 of the paper:
///  * deriving validity criteria on scheduling functions from the
///    recursion's descent functions,
///  * verifying a user-provided schedule against those criteria,
///  * automatically finding the minimal-partition schedule with a CSP,
///  * deriving a set of conditional schedules for multiple problem sizes,
///  * computing the sliding-window depth for table compression.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_SOLVER_SCHEDULESYNTHESIS_H
#define PARREC_SOLVER_SCHEDULESYNTHESIS_H

#include "poly/Polyhedron.h"
#include "solver/Recurrence.h"
#include "support/Diagnostics.h"

#include <optional>
#include <vector>

namespace parrec {
namespace solver {

/// Linear validity criteria over the n schedule coefficients: every
/// constraint must hold for Sf to respect the recursion's dependencies
/// (the inductive condition (3) of Section 4.5).
struct ScheduleCriteria {
  unsigned NumDims = 0;
  std::vector<poly::Constraint> Constraints;

  /// True when \p S satisfies every criterion.
  bool isSatisfiedBy(const Schedule &S) const;
};

/// Derives validity criteria for \p Spec.
///
/// Uniform descents contribute the box-independent criterion
/// -a.c >= 1. General affine descents require the runtime \p Box: the
/// delta expression is affine in x, so its minimum over the box is at a
/// vertex, and one criterion is emitted per box vertex (the paper's "up
/// to 2^n constraint problems"). Reports an error when an affine descent
/// is present but no box is supplied.
std::optional<ScheduleCriteria>
buildCriteria(const RecurrenceSpec &Spec, const std::optional<DomainBox> &Box,
              DiagnosticEngine &Diags);

/// Verifies a user-provided schedule (Section 4.5). Returns true when
/// valid; otherwise reports which criterion failed.
bool verifySchedule(const RecurrenceSpec &Spec, const Schedule &S,
                    const std::optional<DomainBox> &Box,
                    DiagnosticEngine &Diags);

/// Options controlling the automatic search.
struct ScheduleSearchOptions {
  /// Coefficients are searched in [-MaxCoefficient, MaxCoefficient]; the
  /// paper fixes this to a small user-customisable number (10).
  int64_t MaxCoefficient = 10;
};

/// Finds the valid schedule minimising the partition count over \p Box
/// (Section 4.6). Implements the paper's decomposition into 2^n
/// sign-pattern subproblems, each a linear CSP. Returns nullopt when no
/// valid schedule exists within the coefficient bound (e.g. Fibonacci-like
/// recursions whose every partition has one element... which still yields
/// Sf = x; genuine failures are cyclic dependencies).
std::optional<Schedule>
findMinimalSchedule(const RecurrenceSpec &Spec, const DomainBox &Box,
                    DiagnosticEngine &Diags,
                    const ScheduleSearchOptions &Options = {});

/// One compile-time candidate from the conditional parallelisation of
/// Section 4.7, minimal for some region of problem sizes.
struct ConditionalSchedule {
  Schedule S;
};

/// Derives the candidate schedule set for unknown problem sizes
/// (Section 4.7): for each of the n! dimension permutations, the first
/// lexicographic solution with non-negative coefficients. Requires all
/// descents to be uniform. The returned set is deduplicated.
std::optional<std::vector<ConditionalSchedule>>
findConditionalSchedules(const RecurrenceSpec &Spec, DiagnosticEngine &Diags,
                         const ScheduleSearchOptions &Options = {});

/// Picks the conditional schedule with the fewest partitions for the
/// runtime \p Box (evaluated per problem, Section 4.7).
const ConditionalSchedule &
selectSchedule(const std::vector<ConditionalSchedule> &Candidates,
               const DomainBox &Box);

/// Enumerates valid candidate schedules for the autotuner: the
/// minimal-partition schedule for \p Box, the Section 4.7 conditional
/// candidates (when all descents are uniform), and every {0,1}-coefficient
/// schedule satisfying the dependency criteria. Deduplicated, minimal
/// first, capped at \p MaxCandidates. Never reports diagnostics; an
/// unschedulable recursion yields an empty set.
std::vector<Schedule>
enumerateCandidateSchedules(const RecurrenceSpec &Spec, const DomainBox &Box,
                            size_t MaxCandidates = 16);

/// Computes the sliding-window depth for \p S (Section 4.8): the number
/// of preceding partitions any element may depend on. Only defined when
/// all descents are uniform; affine descents force full tabulation
/// (returns nullopt).
std::optional<int64_t> slidingWindowDepth(const RecurrenceSpec &Spec,
                                          const Schedule &S);

} // namespace solver
} // namespace parrec

#endif // PARREC_SOLVER_SCHEDULESYNTHESIS_H
