//===- MutualRecurrence.h - Schedules for mutual recursion --------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 9 (Further Work), implemented at the analysis
/// level: scheduling *systems* of mutually recursive functions by
/// deriving one scheduling function per function whose partition
/// time-steps are compatible — "if S_f(x) < S_g(y) then f(x) must be
/// computed before g(y)". Schedules here carry a constant offset,
/// S_f = a_f . x + c_f, so functions can interleave within the shared
/// time axis (needed e.g. for affine-gap alignment's M/Ix/Iy matrices
/// and for f -> g -> f chains that alternate within one step of x).
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_SOLVER_MUTUALRECURRENCE_H
#define PARREC_SOLVER_MUTUALRECURRENCE_H

#include "solver/ScheduleSynthesis.h"

namespace parrec {
namespace solver {

/// One call site inside a system: the callee and the affine map from the
/// caller's dimensions to the callee's dimensions.
struct SystemCall {
  unsigned Callee = 0;
  /// Component k gives the callee's k-th dimension as an affine function
  /// of the *caller's* dimensions. FreeDims (over the callee's
  /// dimensions) mark reduction-scoped arguments as in DescentFunction.
  std::vector<poly::AffineExpr> Components;
  std::vector<bool> FreeDims;

  bool isFreeDim(unsigned Dim) const {
    return Dim < FreeDims.size() && FreeDims[Dim];
  }
};

/// One function of the system.
struct SystemFunction {
  std::string Name;
  std::vector<std::string> DimNames;
  std::vector<SystemCall> Calls;

  unsigned numDims() const {
    return static_cast<unsigned>(DimNames.size());
  }
};

/// A system of mutually recursive functions.
struct RecurrenceSystem {
  std::vector<SystemFunction> Functions;
};

/// A schedule with a constant offset: S(x) = a . x + c. The offset is
/// what lets two functions' partitions interleave.
struct OffsetSchedule {
  Schedule Coefficients;
  int64_t Offset = 0;

  int64_t apply(const std::vector<int64_t> &Point) const {
    return Coefficients.apply(Point) + Offset;
  }
  int64_t minOver(const DomainBox &Box) const {
    return Coefficients.minOver(Box) + Offset;
  }
  int64_t maxOver(const DomainBox &Box) const {
    return Coefficients.maxOver(Box) + Offset;
  }
  std::string str(const std::vector<std::string> &DimNames) const;
};

/// A compatible schedule assignment for the whole system.
struct SystemSchedule {
  std::vector<OffsetSchedule> PerFunction;

  /// Global number of partitions across all functions' boxes.
  int64_t totalPartitions(const std::vector<DomainBox> &Boxes) const;
};

/// Options for the system search.
struct SystemScheduleOptions {
  int64_t MaxCoefficient = 10;
  /// Offsets are searched in [-MaxOffset, MaxOffset]; mutual chains of
  /// length k need offsets up to ~k, so small bounds suffice.
  int64_t MaxOffset = 20;
};

/// Verifies that \p S orders every cross-function dependency of
/// \p System over the given per-function boxes: for every call f -> g
/// and every x in f's box, S_f(x) > S_g(descent(x)). Reports the first
/// violated criterion.
bool verifySystemSchedule(const RecurrenceSystem &System,
                          const SystemSchedule &S,
                          const std::vector<DomainBox> &Boxes,
                          DiagnosticEngine &Diags);

/// Finds a compatible system schedule minimising the sum of the
/// functions' partition spans (a proxy for the global makespan; the
/// offsets are then the smallest feasible). Returns nullopt (with an
/// error) when the system's dependencies are cyclic within a partition.
std::optional<SystemSchedule>
findSystemSchedule(const RecurrenceSystem &System,
                   const std::vector<DomainBox> &Boxes,
                   DiagnosticEngine &Diags,
                   const SystemScheduleOptions &Options = {});

} // namespace solver
} // namespace parrec

#endif // PARREC_SOLVER_MUTUALRECURRENCE_H
