//===- CspSolver.h - Bounded-integer constraint solver ------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small Constraint Satisfaction Problem solver over bounded integer
/// variables with linear constraints and an optional linear objective to
/// minimise. The schedule-search CSPs of Section 4.6 have two or three
/// variables with coefficients restricted to a small fixed range (the
/// paper uses 10), so branch-and-bound with interval propagation is ample.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_SOLVER_CSPSOLVER_H
#define PARREC_SOLVER_CSPSOLVER_H

#include "poly/Polyhedron.h"

#include <optional>
#include <vector>

namespace parrec {
namespace solver {

/// Result of a solved CSP: the assignment and, when an objective was set,
/// its value.
struct CspSolution {
  std::vector<int64_t> Assignment;
  int64_t ObjectiveValue = 0;
};

/// Branch-and-bound solver for linear constraints over bounded integers.
class CspSolver {
public:
  /// Creates a solver with \p NumVars variables, each in [Low, High].
  CspSolver(unsigned NumVars, int64_t Low, int64_t High);

  unsigned numVars() const { return NumVars; }

  /// Narrows the domain of variable \p Var to [Low, High] (intersected
  /// with the existing range).
  void restrictVar(unsigned Var, int64_t Low, int64_t High);

  /// Fixes variable \p Var to \p Value.
  void fixVar(unsigned Var, int64_t Value) { restrictVar(Var, Value, Value); }

  /// Adds a linear constraint over the variables (Expr >= 0 or == 0).
  void addConstraint(poly::Constraint C);

  /// Sets the linear objective to minimise. Without an objective, solve()
  /// returns the first feasible assignment found.
  void setObjective(poly::AffineExpr Objective);

  /// Solves the CSP. Returns nullopt when infeasible.
  std::optional<CspSolution> solve() const;

  /// Propagates interval bounds without search, returning the narrowed
  /// (Low, High) range for each variable, or nullopt when propagation
  /// detects infeasibility. Used by the conditional-schedule derivation of
  /// Section 4.7 to obtain valid coefficient ranges.
  std::optional<std::vector<std::pair<int64_t, int64_t>>> propagate() const;

private:
  unsigned NumVars;
  std::vector<std::pair<int64_t, int64_t>> Ranges;
  std::vector<poly::Constraint> Constraints;
  std::optional<poly::AffineExpr> Objective;

  struct SearchState;
  void search(SearchState &State, unsigned Depth,
              std::vector<int64_t> &Partial) const;
};

} // namespace solver
} // namespace parrec

#endif // PARREC_SOLVER_CSPSOLVER_H
