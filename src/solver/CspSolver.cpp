//===- CspSolver.cpp - Bounded-integer constraint solver -------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "solver/CspSolver.h"

#include <algorithm>

using namespace parrec;
using namespace parrec::solver;
using poly::AffineExpr;
using poly::Constraint;

CspSolver::CspSolver(unsigned NumVars, int64_t Low, int64_t High)
    : NumVars(NumVars), Ranges(NumVars, {Low, High}) {
  assert(Low <= High && "empty variable domain");
}

void CspSolver::restrictVar(unsigned Var, int64_t Low, int64_t High) {
  assert(Var < NumVars && "variable out of range");
  Ranges[Var].first = std::max(Ranges[Var].first, Low);
  Ranges[Var].second = std::min(Ranges[Var].second, High);
}

void CspSolver::addConstraint(Constraint C) {
  assert(C.Expr.numDims() == NumVars && "constraint dimension mismatch");
  Constraints.push_back(std::move(C));
}

void CspSolver::setObjective(AffineExpr Objective) {
  assert(Objective.numDims() == NumVars && "objective dimension mismatch");
  this->Objective = std::move(Objective);
}

namespace {

/// Interval bounds of an affine expression when variables 0..Fixed-1 take
/// \p Partial values and the rest range over \p Ranges.
std::pair<int64_t, int64_t>
exprBounds(const AffineExpr &Expr, const std::vector<int64_t> &Partial,
           unsigned Fixed,
           const std::vector<std::pair<int64_t, int64_t>> &Ranges) {
  int64_t Min = Expr.constantTerm();
  int64_t Max = Expr.constantTerm();
  for (unsigned I = 0, E = Expr.numDims(); I != E; ++I) {
    int64_t A = Expr.coefficient(I);
    if (A == 0)
      continue;
    if (I < Fixed) {
      Min += A * Partial[I];
      Max += A * Partial[I];
    } else if (A > 0) {
      Min += A * Ranges[I].first;
      Max += A * Ranges[I].second;
    } else {
      Min += A * Ranges[I].second;
      Max += A * Ranges[I].first;
    }
  }
  return {Min, Max};
}

} // namespace

struct CspSolver::SearchState {
  std::optional<CspSolution> Best;
};

void CspSolver::search(SearchState &State, unsigned Depth,
                       std::vector<int64_t> &Partial) const {
  // Prune: every constraint must still be satisfiable, and when minimising
  // the objective's optimistic value must beat the incumbent.
  for (const Constraint &C : Constraints) {
    auto [Min, Max] = exprBounds(C.Expr, Partial, Depth, Ranges);
    if (C.Kind == Constraint::EQ ? (Min > 0 || Max < 0) : Max < 0)
      return;
  }
  if (Objective && State.Best) {
    auto [Min, Max] = exprBounds(*Objective, Partial, Depth, Ranges);
    (void)Max;
    if (Min >= State.Best->ObjectiveValue)
      return;
  }

  if (Depth == NumVars) {
    CspSolution Solution;
    Solution.Assignment = Partial;
    Solution.ObjectiveValue =
        Objective ? Objective->evaluate(Partial) : 0;
    if (!State.Best || !Objective ||
        Solution.ObjectiveValue < State.Best->ObjectiveValue)
      State.Best = std::move(Solution);
    return;
  }

  // Try small-magnitude values first: ties in the objective then resolve
  // toward simpler schedules (x + y rather than 2x + y), matching the
  // paper's examples.
  std::vector<int64_t> Order;
  for (int64_t V = Ranges[Depth].first; V <= Ranges[Depth].second; ++V)
    Order.push_back(V);
  std::stable_sort(Order.begin(), Order.end(), [](int64_t A, int64_t B) {
    int64_t AA = A < 0 ? -A : A, AB = B < 0 ? -B : B;
    return AA < AB;
  });

  for (int64_t V : Order) {
    Partial.push_back(V);
    search(State, Depth + 1, Partial);
    Partial.pop_back();
    if (State.Best && !Objective)
      return; // Feasibility-only: first solution wins.
  }
}

std::optional<CspSolution> CspSolver::solve() const {
  for (const auto &[Low, High] : Ranges)
    if (Low > High)
      return std::nullopt;
  SearchState State;
  std::vector<int64_t> Partial;
  Partial.reserve(NumVars);
  search(State, 0, Partial);
  return State.Best;
}

std::optional<std::vector<std::pair<int64_t, int64_t>>>
CspSolver::propagate() const {
  std::vector<std::pair<int64_t, int64_t>> Narrowed = Ranges;
  bool Changed = true;
  std::vector<int64_t> Empty;
  while (Changed) {
    Changed = false;
    for (const Constraint &C : Constraints) {
      for (unsigned V = 0; V != NumVars; ++V) {
        int64_t A = C.Expr.coefficient(V);
        if (A == 0)
          continue;
        // Bound of the expression without variable V's contribution.
        AffineExpr Rest = C.Expr;
        Rest.setCoefficient(V, 0);
        auto [RMin, RMax] = exprBounds(Rest, Empty, 0, Narrowed);
        // A*v + rest >= 0 (and == 0 additionally needs A*v + rest <= 0).
        // From rest <= RMax: v >= ceil(-RMax / A) when A > 0, etc.
        if (A > 0) {
          int64_t NewLow = poly::ceilDiv(-RMax, A);
          if (NewLow > Narrowed[V].first) {
            Narrowed[V].first = NewLow;
            Changed = true;
          }
          if (C.Kind == Constraint::EQ) {
            int64_t NewHigh = poly::floorDiv(-RMin, A);
            if (NewHigh < Narrowed[V].second) {
              Narrowed[V].second = NewHigh;
              Changed = true;
            }
          }
        } else {
          int64_t NewHigh = poly::floorDiv(RMax, -A);
          if (NewHigh < Narrowed[V].second) {
            Narrowed[V].second = NewHigh;
            Changed = true;
          }
          if (C.Kind == Constraint::EQ) {
            int64_t NewLow = poly::ceilDiv(RMin, -A);
            if (NewLow > Narrowed[V].first) {
              Narrowed[V].first = NewLow;
              Changed = true;
            }
          }
        }
        if (Narrowed[V].first > Narrowed[V].second)
          return std::nullopt;
      }
    }
  }
  return Narrowed;
}
