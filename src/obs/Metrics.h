//===- Metrics.h - Named counters and distributions ---------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-global registry of named monotonic counters and value
/// distributions, fed at coarse (per-run / per-plan) granularity by the
/// execution pipeline: plan-cache hits and misses, bytecode programs
/// compiled, cells computed, shared/global accesses, cycles, occupancy.
/// Snapshots are deterministic (names sorted) and serialisable to JSON
/// for `parrec --stats=json` and the bench metrics files.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_OBS_METRICS_H
#define PARREC_OBS_METRICS_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace parrec {
namespace obs {

/// Summary of a recorded value distribution.
struct Distribution {
  uint64_t Count = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;

  double mean() const { return Count ? Sum / static_cast<double>(Count) : 0.0; }
};

/// A point-in-time copy of the registry, detached from its locks.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, Distribution> Distributions;

  /// Deterministic JSON: {"counters":{...},"distributions":{name:
  /// {"count":..,"sum":..,"min":..,"max":..,"mean":..}}}, names sorted.
  std::string json() const;

  /// Human-readable one-metric-per-line rendering, names sorted.
  std::string str() const;

  uint64_t counter(std::string_view Name) const {
    auto It = Counters.find(std::string(Name));
    return It == Counters.end() ? 0 : It->second;
  }
};

/// Thread-safe registry. Updates take one mutex; they happen at per-run,
/// per-plan and per-compile granularity, never per cell, so the registry
/// is always on.
class MetricsRegistry {
public:
  static MetricsRegistry &global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// Adds \p Delta to the monotonic counter \p Name (created at 0).
  void add(std::string_view Name, uint64_t Delta = 1);

  /// Records one sample of the distribution \p Name.
  void record(std::string_view Name, double Value);

  MetricsSnapshot snapshot() const;
  void reset();

private:
  mutable std::mutex Mutex;
  std::map<std::string, uint64_t, std::less<>> Counters;
  std::map<std::string, Distribution, std::less<>> Distributions;
};

} // namespace obs
} // namespace parrec

#endif // PARREC_OBS_METRICS_H
