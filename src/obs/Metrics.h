//===- Metrics.h - Named counters, histograms and label sets ------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-global registry of named monotonic counters, value
/// distributions, labelled counter families and fixed log-bucketed
/// histogram families, fed at coarse (per-run / per-plan / per-request)
/// granularity by the execution pipeline and the serving engine.
///
/// Labels are bounded-cardinality: a family keeps at most
/// MetricsRegistry::MaxSeriesPerFamily distinct label sets; once the cap
/// is hit, new label sets collapse to a single overflow series whose
/// values are all "other", so a hostile tenant name stream cannot grow
/// the registry without bound.
///
/// Histograms use fixed log-spaced buckets (LogBucketsPerOctave per
/// doubling), so p50/p95/p99 read directly off the registry with a
/// bounded relative error of Histogram::relativeError() and O(occupied
/// buckets) memory — no sample retention, soak-safe.
///
/// Snapshots are deterministic (names and rendered label sets sorted)
/// and serialisable to JSON for `parrec --stats=json`, the bench metrics
/// files and the continuous exporter (Export.h).
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_OBS_METRICS_H
#define PARREC_OBS_METRICS_H

#include <cstdint>
#include <initializer_list>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace parrec {
namespace obs {

/// Summary of a recorded value distribution.
struct Distribution {
  uint64_t Count = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;

  double mean() const { return Count ? Sum / static_cast<double>(Count) : 0.0; }
};

/// A small set of key/value labels attached to a counter or histogram
/// sample ({tenant, device, pass, evaluator, status} in practice). Keys
/// are kept sorted so two logically equal sets render identically.
class Labels {
public:
  Labels() = default;
  Labels(std::initializer_list<std::pair<std::string_view, std::string_view>>
             Pairs);

  bool empty() const { return Pairs.empty(); }
  const std::vector<std::pair<std::string, std::string>> &pairs() const {
    return Pairs;
  }

  /// Canonical rendering: {k1="v1",k2="v2"}, keys sorted, values escaped
  /// (\\, \" and \n); "" for the empty set. Used as the series key in
  /// snapshots and directly valid as a Prometheus label block.
  std::string render() const;

  /// The same keys with every value replaced by "other": the series an
  /// over-cardinality label set collapses to.
  Labels collapsed() const;

private:
  std::vector<std::pair<std::string, std::string>> Pairs; // Sorted by key.
};

/// A fixed log-bucketed histogram: bucket I covers values in
/// [2^(I/LogBucketsPerOctave), 2^((I+1)/LogBucketsPerOctave)), values
/// <= 0 land in a dedicated non-positive bucket that sorts before every
/// log bucket. Occupied buckets only are stored, so memory is bounded by
/// the value range, never the sample count.
struct Histogram {
  /// Log buckets per doubling of the value; 8 gives a bucket width
  /// (and thus worst-case percentile relative error) of 2^(1/8)-1 ~ 9%.
  static constexpr int LogBucketsPerOctave = 8;

  uint64_t Count = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;
  uint64_t NonPositive = 0;            ///< Samples with value <= 0.
  std::map<int32_t, uint64_t> Buckets; ///< Bucket index -> count.

  /// Index of the log bucket containing \p Value (> 0).
  static int32_t bucketIndex(double Value);
  /// Inclusive lower / exclusive upper bound of bucket \p Index.
  static double bucketLower(int32_t Index);
  static double bucketUpper(int32_t Index);
  /// Worst-case relative error of percentile(): one bucket's width,
  /// 2^(1/LogBucketsPerOctave) - 1.
  static double relativeError();

  void record(double Value);
  /// Merges \p Other into this histogram (for cross-series totals).
  void merge(const Histogram &Other);

  double mean() const { return Count ? Sum / static_cast<double>(Count) : 0.0; }

  /// The value at quantile \p Q in [0, 1]: the geometric midpoint of the
  /// bucket holding the rank-ceil(Q*Count) sample (exact Min for the
  /// non-positive bucket, clamped into [Min, Max]). Within one bucket's
  /// relative error of the exact-sort percentile.
  double percentile(double Q) const;
};

/// A point-in-time copy of the registry, detached from its locks.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, Distribution> Distributions;
  /// Family name -> rendered label set -> value.
  std::map<std::string, std::map<std::string, uint64_t>> LabelledCounters;
  /// Family name -> rendered label set ("" when unlabelled) -> histogram.
  std::map<std::string, std::map<std::string, Histogram>> Histograms;

  /// Deterministic JSON: {"counters":{...},"distributions":{...},
  /// "labelled_counters":{family:{series:value}},
  /// "histograms":{family:{series:{count,...,p50,p95,p99,buckets}}}},
  /// names and series sorted.
  std::string json() const;

  /// Human-readable one-metric-per-line rendering, names sorted.
  std::string str() const;

  uint64_t counter(std::string_view Name) const {
    auto It = Counters.find(std::string(Name));
    return It == Counters.end() ? 0 : It->second;
  }

  /// One labelled series of \p Family (\p Rendered as Labels::render()
  /// produces it); 0 when absent.
  uint64_t labelled(std::string_view Family, std::string_view Rendered) const;
  /// Sum of every series of the labelled counter family \p Family.
  uint64_t labelledTotal(std::string_view Family) const;

  /// One series of a histogram family; null when absent.
  const Histogram *histogram(std::string_view Family,
                             std::string_view Rendered = "") const;
  /// All series of \p Family merged into one histogram.
  Histogram histogramTotal(std::string_view Family) const;
};

/// Thread-safe registry. Updates take one mutex; they happen at per-run,
/// per-plan, per-compile and per-request granularity, never per cell, so
/// the registry is always on.
class MetricsRegistry {
public:
  /// Distinct label sets kept per family before new sets collapse to the
  /// all-"other" overflow series.
  static constexpr size_t MaxSeriesPerFamily = 64;

  static MetricsRegistry &global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// Adds \p Delta to the monotonic counter \p Name (created at 0).
  void add(std::string_view Name, uint64_t Delta = 1);
  /// Adds \p Delta to the series of \p Name labelled \p L.
  void add(std::string_view Name, const Labels &L, uint64_t Delta = 1);

  /// Records one sample of the distribution \p Name.
  void record(std::string_view Name, double Value);

  /// Records one sample into the (optionally labelled) histogram family
  /// \p Name.
  void observe(std::string_view Name, double Value);
  void observe(std::string_view Name, const Labels &L, double Value);

  MetricsSnapshot snapshot() const;
  void reset();

private:
  /// Resolves the series key for \p L inside \p Series, applying the
  /// cardinality cap. Caller holds Mutex.
  template <typename MapT>
  static std::string seriesKeyLocked(MapT &Series, const Labels &L);

  mutable std::mutex Mutex;
  std::map<std::string, uint64_t, std::less<>> Counters;
  std::map<std::string, Distribution, std::less<>> Distributions;
  std::map<std::string, std::map<std::string, uint64_t>, std::less<>>
      LabelledCounters;
  std::map<std::string, std::map<std::string, Histogram>, std::less<>>
      Histograms;
};

} // namespace obs
} // namespace parrec

#endif // PARREC_OBS_METRICS_H
