//===- Json.cpp - Minimal JSON writer -----------------------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace parrec;
using namespace parrec::obs;

std::string obs::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void JsonWriter::comma() {
  if (NeedComma)
    Out += ',';
  NeedComma = false;
}

JsonWriter &JsonWriter::beginObject() {
  comma();
  Out += '{';
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  Out += '}';
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  comma();
  Out += '[';
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  Out += ']';
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::key(std::string_view Key) {
  comma();
  Out += '"';
  Out += jsonEscape(Key);
  Out += "\":";
  return *this;
}

JsonWriter &JsonWriter::value(std::string_view S) {
  comma();
  Out += '"';
  Out += jsonEscape(S);
  Out += '"';
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::value(int64_t V) {
  comma();
  Out += std::to_string(V);
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::value(uint64_t V) {
  comma();
  Out += std::to_string(V);
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::value(double V) {
  comma();
  // JSON has no NaN/Infinity; clamp to null like Chrome's own tracer.
  if (!std::isfinite(V)) {
    Out += "null";
  } else {
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.17g", V);
    Out += Buf;
  }
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::value(bool V) {
  comma();
  Out += V ? "true" : "false";
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::rawValue(std::string_view Json) {
  comma();
  Out += Json;
  NeedComma = true;
  return *this;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

JsonValue JsonValue::makeBool(bool B) {
  JsonValue V;
  V.K = Kind::Bool;
  V.Bool = B;
  return V;
}

JsonValue JsonValue::makeNumber(double N) {
  JsonValue V;
  V.K = Kind::Number;
  V.Num = N;
  return V;
}

JsonValue JsonValue::makeString(std::string S) {
  JsonValue V;
  V.K = Kind::String;
  V.Str = std::move(S);
  return V;
}

JsonValue JsonValue::makeArray(std::vector<JsonValue> A) {
  JsonValue V;
  V.K = Kind::Array;
  V.Arr = std::move(A);
  return V;
}

JsonValue JsonValue::makeObject(std::map<std::string, JsonValue> O) {
  JsonValue V;
  V.K = Kind::Object;
  V.Obj = std::move(O);
  return V;
}

namespace {

class Parser {
public:
  Parser(std::string_view Text, std::string *Error)
      : Text(Text), Error(Error) {}

  std::optional<JsonValue> parse() {
    skipWs();
    std::optional<JsonValue> V = value();
    if (!V)
      return std::nullopt;
    skipWs();
    if (Pos != Text.size()) {
      fail("trailing characters after the document");
      return std::nullopt;
    }
    return V;
  }

private:
  std::string_view Text;
  std::string *Error;
  size_t Pos = 0;

  bool eof() const { return Pos >= Text.size(); }
  char peek() const { return Text[Pos]; }

  void fail(const std::string &Message) {
    if (Error && Error->empty())
      *Error = Message + " at byte " + std::to_string(Pos);
  }

  void skipWs() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++Pos;
  }

  bool literal(std::string_view Word) {
    if (Text.compare(Pos, Word.size(), Word) != 0)
      return false;
    Pos += Word.size();
    return true;
  }

  std::optional<JsonValue> value() {
    if (eof()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    switch (peek()) {
    case '{':
      return object();
    case '[':
      return array();
    case '"': {
      std::optional<std::string> S = string();
      if (!S)
        return std::nullopt;
      return JsonValue::makeString(std::move(*S));
    }
    case 't':
      if (literal("true"))
        return JsonValue::makeBool(true);
      break;
    case 'f':
      if (literal("false"))
        return JsonValue::makeBool(false);
      break;
    case 'n':
      if (literal("null"))
        return JsonValue::makeNull();
      break;
    default:
      return number();
    }
    fail("unexpected token");
    return std::nullopt;
  }

  std::optional<JsonValue> number() {
    size_t Start = Pos;
    if (!eof() && peek() == '-')
      ++Pos;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
      ++Pos;
    if (Pos == Start || (Text[Start] == '-' && Pos == Start + 1)) {
      fail("invalid number");
      return std::nullopt;
    }
    if (!eof() && peek() == '.') {
      ++Pos;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("invalid number");
        return std::nullopt;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++Pos;
      if (!eof() && (peek() == '+' || peek() == '-'))
        ++Pos;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("invalid number");
        return std::nullopt;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    return JsonValue::makeNumber(
        std::strtod(std::string(Text.substr(Start, Pos - Start)).c_str(),
                    nullptr));
  }

  std::optional<std::string> string() {
    // Caller checked the opening quote.
    ++Pos;
    std::string Out;
    while (!eof() && peek() != '"') {
      char C = peek();
      if (static_cast<unsigned char>(C) < 0x20) {
        fail("unescaped control character in string");
        return std::nullopt;
      }
      if (C == '\\') {
        ++Pos;
        if (eof())
          break;
        switch (peek()) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u': {
          unsigned Code = 0;
          for (int I = 0; I != 4; ++I) {
            ++Pos;
            if (eof() ||
                !std::isxdigit(static_cast<unsigned char>(peek()))) {
              fail("invalid \\u escape");
              return std::nullopt;
            }
            char H = peek();
            Code = Code * 16 +
                   static_cast<unsigned>(
                       H <= '9' ? H - '0' : (H | 0x20) - 'a' + 10);
          }
          // Configuration files are ASCII in practice; encode the BMP
          // code point as UTF-8 without surrogate-pair handling.
          if (Code < 0x80) {
            Out += static_cast<char>(Code);
          } else if (Code < 0x800) {
            Out += static_cast<char>(0xC0 | (Code >> 6));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          } else {
            Out += static_cast<char>(0xE0 | (Code >> 12));
            Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape sequence");
          return std::nullopt;
        }
      } else {
        Out += C;
      }
      ++Pos;
    }
    if (eof()) {
      fail("unterminated string");
      return std::nullopt;
    }
    ++Pos; // Closing quote.
    return Out;
  }

  std::optional<JsonValue> array() {
    ++Pos; // '['
    std::vector<JsonValue> Items;
    skipWs();
    if (!eof() && peek() == ']') {
      ++Pos;
      return JsonValue::makeArray(std::move(Items));
    }
    while (true) {
      skipWs();
      std::optional<JsonValue> V = value();
      if (!V)
        return std::nullopt;
      Items.push_back(std::move(*V));
      skipWs();
      if (eof()) {
        fail("unterminated array");
        return std::nullopt;
      }
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']') {
        ++Pos;
        return JsonValue::makeArray(std::move(Items));
      }
      fail("expected ',' or ']' in array");
      return std::nullopt;
    }
  }

  std::optional<JsonValue> object() {
    ++Pos; // '{'
    std::map<std::string, JsonValue> Members;
    skipWs();
    if (!eof() && peek() == '}') {
      ++Pos;
      return JsonValue::makeObject(std::move(Members));
    }
    while (true) {
      skipWs();
      if (eof() || peek() != '"') {
        fail("expected object key");
        return std::nullopt;
      }
      std::optional<std::string> Key = string();
      if (!Key)
        return std::nullopt;
      skipWs();
      if (eof() || peek() != ':') {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      ++Pos;
      skipWs();
      std::optional<JsonValue> V = value();
      if (!V)
        return std::nullopt;
      Members.insert_or_assign(std::move(*Key), std::move(*V));
      skipWs();
      if (eof()) {
        fail("unterminated object");
        return std::nullopt;
      }
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}') {
        ++Pos;
        return JsonValue::makeObject(std::move(Members));
      }
      fail("expected ',' or '}' in object");
      return std::nullopt;
    }
  }
};

} // namespace

std::optional<JsonValue> obs::parseJson(std::string_view Text,
                                        std::string *Error) {
  if (Error)
    Error->clear();
  return Parser(Text, Error).parse();
}
