//===- Json.cpp - Minimal JSON writer -----------------------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <cmath>
#include <cstdio>

using namespace parrec;
using namespace parrec::obs;

std::string obs::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void JsonWriter::comma() {
  if (NeedComma)
    Out += ',';
  NeedComma = false;
}

JsonWriter &JsonWriter::beginObject() {
  comma();
  Out += '{';
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  Out += '}';
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  comma();
  Out += '[';
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  Out += ']';
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::key(std::string_view Key) {
  comma();
  Out += '"';
  Out += jsonEscape(Key);
  Out += "\":";
  return *this;
}

JsonWriter &JsonWriter::value(std::string_view S) {
  comma();
  Out += '"';
  Out += jsonEscape(S);
  Out += '"';
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::value(int64_t V) {
  comma();
  Out += std::to_string(V);
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::value(uint64_t V) {
  comma();
  Out += std::to_string(V);
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::value(double V) {
  comma();
  // JSON has no NaN/Infinity; clamp to null like Chrome's own tracer.
  if (!std::isfinite(V)) {
    Out += "null";
  } else {
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.17g", V);
    Out += Buf;
  }
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::value(bool V) {
  comma();
  Out += V ? "true" : "false";
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::rawValue(std::string_view Json) {
  comma();
  Out += Json;
  NeedComma = true;
  return *this;
}
