//===- Json.h - Minimal JSON writer -------------------------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny streaming JSON writer shared by the observability exporters
/// (Chrome trace events, metrics snapshots) and the bench result files.
/// Handles commas, nesting and string escaping; nothing else. Output is
/// deterministic: values appear exactly in the order they were written.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_OBS_JSON_H
#define PARREC_OBS_JSON_H

#include <cstdint>
#include <string>
#include <string_view>

namespace parrec {
namespace obs {

/// Escapes \p S for inclusion inside a JSON string literal (no quotes).
std::string jsonEscape(std::string_view S);

/// Builds a JSON document into an internal string. Scopes (objects and
/// arrays) must be closed in LIFO order; inside an object every value
/// needs a preceding key().
class JsonWriter {
public:
  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Emits the key of the next object member.
  JsonWriter &key(std::string_view Key);

  JsonWriter &value(std::string_view S);
  JsonWriter &value(const char *S) { return value(std::string_view(S)); }
  JsonWriter &value(int64_t V);
  JsonWriter &value(uint64_t V);
  JsonWriter &value(int V) { return value(static_cast<int64_t>(V)); }
  JsonWriter &value(unsigned V) { return value(static_cast<uint64_t>(V)); }
  JsonWriter &value(double V);
  JsonWriter &value(bool V);

  /// Splices a pre-rendered JSON fragment in as the next value.
  JsonWriter &rawValue(std::string_view Json);

  const std::string &str() const { return Out; }
  std::string take() { return std::move(Out); }

private:
  void comma();

  std::string Out;
  bool NeedComma = false;
};

} // namespace obs
} // namespace parrec

#endif // PARREC_OBS_JSON_H
