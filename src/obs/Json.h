//===- Json.h - Minimal JSON writer -------------------------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny streaming JSON writer shared by the observability exporters
/// (Chrome trace events, metrics snapshots) and the bench result files,
/// plus a matching recursive-descent parser used to read configuration
/// documents back in (the serving engine's workload replay files).
/// Handles commas, nesting and string escaping; nothing else. Writer
/// output is deterministic: values appear exactly in the order they were
/// written.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_OBS_JSON_H
#define PARREC_OBS_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace parrec {
namespace obs {

/// Escapes \p S for inclusion inside a JSON string literal (no quotes).
std::string jsonEscape(std::string_view S);

/// Builds a JSON document into an internal string. Scopes (objects and
/// arrays) must be closed in LIFO order; inside an object every value
/// needs a preceding key().
class JsonWriter {
public:
  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Emits the key of the next object member.
  JsonWriter &key(std::string_view Key);

  JsonWriter &value(std::string_view S);
  JsonWriter &value(const char *S) { return value(std::string_view(S)); }
  JsonWriter &value(int64_t V);
  JsonWriter &value(uint64_t V);
  JsonWriter &value(int V) { return value(static_cast<int64_t>(V)); }
  JsonWriter &value(unsigned V) { return value(static_cast<uint64_t>(V)); }
  JsonWriter &value(double V);
  JsonWriter &value(bool V);

  /// Splices a pre-rendered JSON fragment in as the next value.
  JsonWriter &rawValue(std::string_view Json);

  const std::string &str() const { return Out; }
  std::string take() { return std::move(Out); }

private:
  void comma();

  std::string Out;
  bool NeedComma = false;
};

/// A parsed JSON value. Objects keep their members in a sorted map —
/// replay files are configuration, not ordered streams — and numbers are
/// stored as doubles (the replay format only needs integers well below
/// 2^53).
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool boolean() const { return Bool; }
  double number() const { return Num; }
  int64_t integer() const { return static_cast<int64_t>(Num); }
  const std::string &string() const { return Str; }
  const std::vector<JsonValue> &array() const { return Arr; }
  const std::map<std::string, JsonValue> &object() const { return Obj; }

  /// Member lookup on an object; null for missing keys or non-objects.
  const JsonValue *member(std::string_view Key) const {
    if (K != Kind::Object)
      return nullptr;
    auto It = Obj.find(std::string(Key));
    return It == Obj.end() ? nullptr : &It->second;
  }

  /// Typed member accessors with defaults, for configuration reads.
  double numberOr(std::string_view Key, double Default) const {
    const JsonValue *V = member(Key);
    return V && V->isNumber() ? V->Num : Default;
  }
  int64_t integerOr(std::string_view Key, int64_t Default) const {
    const JsonValue *V = member(Key);
    return V && V->isNumber() ? V->integer() : Default;
  }
  std::string stringOr(std::string_view Key, std::string Default) const {
    const JsonValue *V = member(Key);
    return V && V->isString() ? V->Str : Default;
  }

  static JsonValue makeNull() { return JsonValue(); }
  static JsonValue makeBool(bool B);
  static JsonValue makeNumber(double N);
  static JsonValue makeString(std::string S);
  static JsonValue makeArray(std::vector<JsonValue> A);
  static JsonValue makeObject(std::map<std::string, JsonValue> O);

private:
  Kind K = Kind::Null;
  bool Bool = false;
  double Num = 0.0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::map<std::string, JsonValue> Obj;
};

/// Parses \p Text as exactly one JSON document. On failure returns
/// nullopt and, when \p Error is non-null, stores a one-line message
/// with the byte offset of the problem.
std::optional<JsonValue> parseJson(std::string_view Text,
                                   std::string *Error = nullptr);

} // namespace obs
} // namespace parrec

#endif // PARREC_OBS_JSON_H
