//===- Metrics.cpp - Named counters, histograms and label sets ----------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "obs/Json.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace parrec;
using namespace parrec::obs;

//===----------------------------------------------------------------------===//
// Labels
//===----------------------------------------------------------------------===//

Labels::Labels(
    std::initializer_list<std::pair<std::string_view, std::string_view>> Init) {
  Pairs.reserve(Init.size());
  for (const auto &[Key, Value] : Init)
    Pairs.emplace_back(std::string(Key), std::string(Value));
  std::sort(Pairs.begin(), Pairs.end());
}

static void appendEscaped(std::string &Out, const std::string &Value) {
  for (char C : Value) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '"':
      Out += "\\\"";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
}

std::string Labels::render() const {
  if (Pairs.empty())
    return "";
  std::string Out = "{";
  bool First = true;
  for (const auto &[Key, Value] : Pairs) {
    if (!First)
      Out += ',';
    First = false;
    Out += Key;
    Out += "=\"";
    appendEscaped(Out, Value);
    Out += '"';
  }
  Out += '}';
  return Out;
}

Labels Labels::collapsed() const {
  Labels Other;
  Other.Pairs.reserve(Pairs.size());
  for (const auto &[Key, Value] : Pairs) {
    (void)Value;
    Other.Pairs.emplace_back(Key, "other");
  }
  return Other;
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

int32_t Histogram::bucketIndex(double Value) {
  return static_cast<int32_t>(
      std::floor(std::log2(Value) * LogBucketsPerOctave));
}

double Histogram::bucketLower(int32_t Index) {
  return std::exp2(static_cast<double>(Index) / LogBucketsPerOctave);
}

double Histogram::bucketUpper(int32_t Index) {
  return std::exp2(static_cast<double>(Index + 1) / LogBucketsPerOctave);
}

double Histogram::relativeError() {
  return std::exp2(1.0 / LogBucketsPerOctave) - 1.0;
}

void Histogram::record(double Value) {
  if (Count == 0) {
    Min = Max = Value;
  } else {
    if (Value < Min)
      Min = Value;
    if (Value > Max)
      Max = Value;
  }
  ++Count;
  Sum += Value;
  if (Value > 0.0)
    ++Buckets[bucketIndex(Value)];
  else
    ++NonPositive;
}

void Histogram::merge(const Histogram &Other) {
  if (Other.Count == 0)
    return;
  if (Count == 0) {
    Min = Other.Min;
    Max = Other.Max;
  } else {
    Min = std::min(Min, Other.Min);
    Max = std::max(Max, Other.Max);
  }
  Count += Other.Count;
  Sum += Other.Sum;
  NonPositive += Other.NonPositive;
  for (const auto &[Index, N] : Other.Buckets)
    Buckets[Index] += N;
}

double Histogram::percentile(double Q) const {
  if (Count == 0)
    return 0.0;
  Q = std::min(std::max(Q, 0.0), 1.0);
  // Rank of the requested sample in sorted order, 1-based: the same
  // convention an exact nearest-rank percentile over the sorted samples
  // would use.
  uint64_t Rank =
      static_cast<uint64_t>(std::ceil(Q * static_cast<double>(Count)));
  if (Rank < 1)
    Rank = 1;
  uint64_t Seen = NonPositive;
  if (Rank <= Seen)
    return std::min(Min, 0.0);
  for (const auto &[Index, N] : Buckets) {
    Seen += N;
    if (Rank <= Seen) {
      // Geometric midpoint of the bucket halves the worst-case error
      // relative to either edge; clamp into the observed range so a
      // single-sample bucket reports an exact Min/Max.
      double Mid = std::sqrt(bucketLower(Index) * bucketUpper(Index));
      return std::min(std::max(Mid, Min), Max);
    }
  }
  return Max;
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry R;
  return R;
}

void MetricsRegistry::add(std::string_view Name, uint64_t Delta) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Counters.find(Name);
  if (It == Counters.end())
    Counters.emplace(std::string(Name), Delta);
  else
    It->second += Delta;
}

template <typename MapT>
std::string MetricsRegistry::seriesKeyLocked(MapT &Series, const Labels &L) {
  std::string Key = L.render();
  if (Series.size() < MaxSeriesPerFamily || Series.count(Key))
    return Key;
  return L.collapsed().render();
}

void MetricsRegistry::add(std::string_view Name, const Labels &L,
                          uint64_t Delta) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto FamilyIt = LabelledCounters.find(Name);
  if (FamilyIt == LabelledCounters.end())
    FamilyIt =
        LabelledCounters
            .emplace(std::string(Name), std::map<std::string, uint64_t>())
            .first;
  FamilyIt->second[seriesKeyLocked(FamilyIt->second, L)] += Delta;
}

void MetricsRegistry::record(std::string_view Name, double Value) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Distributions.find(Name);
  if (It == Distributions.end()) {
    Distributions.emplace(std::string(Name),
                          Distribution{1, Value, Value, Value});
    return;
  }
  Distribution &D = It->second;
  ++D.Count;
  D.Sum += Value;
  if (Value < D.Min)
    D.Min = Value;
  if (Value > D.Max)
    D.Max = Value;
}

void MetricsRegistry::observe(std::string_view Name, double Value) {
  observe(Name, Labels(), Value);
}

void MetricsRegistry::observe(std::string_view Name, const Labels &L,
                              double Value) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto FamilyIt = Histograms.find(Name);
  if (FamilyIt == Histograms.end())
    FamilyIt =
        Histograms
            .emplace(std::string(Name), std::map<std::string, Histogram>())
            .first;
  FamilyIt->second[seriesKeyLocked(FamilyIt->second, L)].record(Value);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  MetricsSnapshot S;
  S.Counters.insert(Counters.begin(), Counters.end());
  S.Distributions.insert(Distributions.begin(), Distributions.end());
  S.LabelledCounters.insert(LabelledCounters.begin(), LabelledCounters.end());
  S.Histograms.insert(Histograms.begin(), Histograms.end());
  return S;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Counters.clear();
  Distributions.clear();
  LabelledCounters.clear();
  Histograms.clear();
}

//===----------------------------------------------------------------------===//
// MetricsSnapshot
//===----------------------------------------------------------------------===//

uint64_t MetricsSnapshot::labelled(std::string_view Family,
                                   std::string_view Rendered) const {
  auto FamilyIt = LabelledCounters.find(std::string(Family));
  if (FamilyIt == LabelledCounters.end())
    return 0;
  auto It = FamilyIt->second.find(std::string(Rendered));
  return It == FamilyIt->second.end() ? 0 : It->second;
}

uint64_t MetricsSnapshot::labelledTotal(std::string_view Family) const {
  auto FamilyIt = LabelledCounters.find(std::string(Family));
  if (FamilyIt == LabelledCounters.end())
    return 0;
  uint64_t Total = 0;
  for (const auto &[Rendered, Value] : FamilyIt->second)
    Total += Value;
  return Total;
}

const Histogram *MetricsSnapshot::histogram(std::string_view Family,
                                            std::string_view Rendered) const {
  auto FamilyIt = Histograms.find(std::string(Family));
  if (FamilyIt == Histograms.end())
    return nullptr;
  auto It = FamilyIt->second.find(std::string(Rendered));
  return It == FamilyIt->second.end() ? nullptr : &It->second;
}

Histogram MetricsSnapshot::histogramTotal(std::string_view Family) const {
  Histogram Total;
  auto FamilyIt = Histograms.find(std::string(Family));
  if (FamilyIt == Histograms.end())
    return Total;
  for (const auto &[Rendered, H] : FamilyIt->second)
    Total.merge(H);
  return Total;
}

static void writeHistogram(JsonWriter &W, const Histogram &H) {
  W.beginObject();
  W.key("count").value(H.Count);
  W.key("sum").value(H.Sum);
  W.key("min").value(H.Min);
  W.key("max").value(H.Max);
  W.key("mean").value(H.mean());
  W.key("p50").value(H.percentile(0.50));
  W.key("p95").value(H.percentile(0.95));
  W.key("p99").value(H.percentile(0.99));
  W.key("nonpositive").value(H.NonPositive);
  W.key("buckets").beginObject();
  for (const auto &[Index, N] : H.Buckets) {
    W.key(std::to_string(Index));
    W.value(N);
  }
  W.endObject();
  W.endObject();
}

std::string MetricsSnapshot::json() const {
  JsonWriter W;
  W.beginObject();
  W.key("counters").beginObject();
  for (const auto &[Name, Value] : Counters) {
    W.key(Name);
    W.value(Value);
  }
  W.endObject();
  W.key("distributions").beginObject();
  for (const auto &[Name, D] : Distributions) {
    W.key(Name).beginObject();
    W.key("count").value(D.Count);
    W.key("sum").value(D.Sum);
    W.key("min").value(D.Min);
    W.key("max").value(D.Max);
    W.key("mean").value(D.mean());
    W.endObject();
  }
  W.endObject();
  W.key("labelled_counters").beginObject();
  for (const auto &[Name, Series] : LabelledCounters) {
    W.key(Name).beginObject();
    for (const auto &[Rendered, Value] : Series) {
      W.key(Rendered);
      W.value(Value);
    }
    W.endObject();
  }
  W.endObject();
  W.key("histograms").beginObject();
  for (const auto &[Name, Series] : Histograms) {
    W.key(Name).beginObject();
    for (const auto &[Rendered, H] : Series) {
      W.key(Rendered);
      writeHistogram(W, H);
    }
    W.endObject();
  }
  W.endObject();
  W.endObject();
  return W.take();
}

std::string MetricsSnapshot::str() const {
  std::string Out;
  for (const auto &[Name, Value] : Counters)
    Out += Name + " = " + std::to_string(Value) + "\n";
  for (const auto &[Name, D] : Distributions) {
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "%s = {count %llu, mean %.6g, min %.6g, max %.6g}\n",
                  Name.c_str(), static_cast<unsigned long long>(D.Count),
                  D.mean(), D.Min, D.Max);
    Out += Buf;
  }
  for (const auto &[Name, Series] : LabelledCounters)
    for (const auto &[Rendered, Value] : Series)
      Out += Name + Rendered + " = " + std::to_string(Value) + "\n";
  for (const auto &[Name, Series] : Histograms) {
    for (const auto &[Rendered, H] : Series) {
      char Buf[200];
      std::snprintf(Buf, sizeof(Buf),
                    "%s%s = {count %llu, p50 %.6g, p95 %.6g, p99 %.6g}\n",
                    Name.c_str(), Rendered.c_str(),
                    static_cast<unsigned long long>(H.Count),
                    H.percentile(0.50), H.percentile(0.95), H.percentile(0.99));
      Out += Buf;
    }
  }
  return Out;
}
