//===- Metrics.cpp - Named counters and distributions -------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "obs/Json.h"

#include <cstdio>

using namespace parrec;
using namespace parrec::obs;

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry R;
  return R;
}

void MetricsRegistry::add(std::string_view Name, uint64_t Delta) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Counters.find(Name);
  if (It == Counters.end())
    Counters.emplace(std::string(Name), Delta);
  else
    It->second += Delta;
}

void MetricsRegistry::record(std::string_view Name, double Value) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Distributions.find(Name);
  if (It == Distributions.end()) {
    Distributions.emplace(std::string(Name),
                          Distribution{1, Value, Value, Value});
    return;
  }
  Distribution &D = It->second;
  ++D.Count;
  D.Sum += Value;
  if (Value < D.Min)
    D.Min = Value;
  if (Value > D.Max)
    D.Max = Value;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  MetricsSnapshot S;
  S.Counters.insert(Counters.begin(), Counters.end());
  S.Distributions.insert(Distributions.begin(), Distributions.end());
  return S;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Counters.clear();
  Distributions.clear();
}

std::string MetricsSnapshot::json() const {
  JsonWriter W;
  W.beginObject();
  W.key("counters").beginObject();
  for (const auto &[Name, Value] : Counters) {
    W.key(Name);
    W.value(Value);
  }
  W.endObject();
  W.key("distributions").beginObject();
  for (const auto &[Name, D] : Distributions) {
    W.key(Name).beginObject();
    W.key("count").value(D.Count);
    W.key("sum").value(D.Sum);
    W.key("min").value(D.Min);
    W.key("max").value(D.Max);
    W.key("mean").value(D.mean());
    W.endObject();
  }
  W.endObject();
  W.endObject();
  return W.take();
}

std::string MetricsSnapshot::str() const {
  std::string Out;
  for (const auto &[Name, Value] : Counters)
    Out += Name + " = " + std::to_string(Value) + "\n";
  for (const auto &[Name, D] : Distributions) {
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "%s = {count %llu, mean %.6g, min %.6g, max %.6g}\n",
                  Name.c_str(), static_cast<unsigned long long>(D.Count),
                  D.mean(), D.Min, D.Max);
    Out += Buf;
  }
  return Out;
}
