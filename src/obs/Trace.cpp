//===- Trace.cpp - Pipeline tracing facility ----------------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "obs/Json.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace parrec;
using namespace parrec::obs;

std::atomic<bool> Tracer::EnabledFlag{false};

Tracer &Tracer::instance() {
  static Tracer T;
  return T;
}

uint64_t Tracer::nowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point Epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           Epoch)
          .count());
}

uint32_t Tracer::laneForCurrentThreadLocked() {
  auto [It, Inserted] = Lanes.try_emplace(
      std::this_thread::get_id(), static_cast<uint32_t>(Lanes.size()));
  (void)Inserted;
  return It->second;
}

void Tracer::record(TraceEvent Event) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Event.Lane = laneForCurrentThreadLocked();
  Event.Seq = NextSeq++;
  Events.push_back(std::move(Event));
}

void Tracer::recordDevice(DeviceSlice Slice) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Slices.push_back(std::move(Slice));
}

void Tracer::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Events.clear();
  Slices.clear();
  Lanes.clear();
  NextSeq = 0;
}

std::vector<TraceEvent> Tracer::hostEvents() const {
  std::vector<TraceEvent> Out;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Out = Events;
  }
  std::sort(Out.begin(), Out.end(),
            [](const TraceEvent &A, const TraceEvent &B) {
              if (A.Lane != B.Lane)
                return A.Lane < B.Lane;
              if (A.StartNs != B.StartNs)
                return A.StartNs < B.StartNs;
              if (A.DurNs != B.DurNs)
                return A.DurNs > B.DurNs; // Parents first.
              return A.Seq > B.Seq; // Equal-extent nesting: outer ends last.
            });
  return Out;
}

std::vector<DeviceSlice> Tracer::deviceSlices() const {
  std::vector<DeviceSlice> Out;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Out = Slices;
  }
  std::sort(Out.begin(), Out.end(),
            [](const DeviceSlice &A, const DeviceSlice &B) {
              if (A.Block != B.Block)
                return A.Block < B.Block;
              return A.StartCycles < B.StartCycles;
            });
  return Out;
}

static void writeArgs(JsonWriter &W, const std::vector<TraceArg> &Args) {
  W.key("args").beginObject();
  for (const TraceArg &A : Args) {
    W.key(A.Key);
    W.rawValue(A.Json);
  }
  W.endObject();
}

std::string Tracer::chromeTraceJson() const {
  std::vector<TraceEvent> Host = hostEvents();
  std::vector<DeviceSlice> Device = deviceSlices();

  constexpr int HostPid = 1;
  constexpr int DevicePid = 2;

  JsonWriter W;
  W.beginObject();
  W.key("displayTimeUnit").value("ms");
  W.key("traceEvents").beginArray();

  auto Metadata = [&W](const char *Name, int Pid, int64_t Tid,
                       std::string_view Value) {
    W.beginObject();
    W.key("ph").value("M");
    W.key("name").value(Name);
    W.key("pid").value(static_cast<int64_t>(Pid));
    if (Tid >= 0)
      W.key("tid").value(Tid);
    W.key("args").beginObject().key("name").value(Value).endObject();
    W.endObject();
  };

  Metadata("process_name", HostPid, -1, "parrec host (wall clock)");
  Metadata("process_sort_index", HostPid, -1, "0");
  if (!Device.empty())
    Metadata("process_name", DevicePid, -1,
             "simulated device (ts = modelled cycles)");

  uint32_t MaxLane = 0;
  for (const TraceEvent &E : Host)
    MaxLane = std::max(MaxLane, E.Lane);
  for (uint32_t L = 0; Host.size() && L <= MaxLane; ++L)
    Metadata("thread_name", HostPid, L,
             L == 0 ? std::string("host main")
                    : "host worker " + std::to_string(L));
  uint32_t LastBlock = ~0u;
  for (const DeviceSlice &S : Device)
    if (S.Block != LastBlock) {
      LastBlock = S.Block;
      Metadata("thread_name", DevicePid, S.Block,
               "block " + std::to_string(S.Block));
    }

  for (const TraceEvent &E : Host) {
    W.beginObject();
    W.key("ph").value("X");
    W.key("name").value(E.Name);
    W.key("cat").value(E.Category);
    W.key("pid").value(static_cast<int64_t>(HostPid));
    W.key("tid").value(static_cast<uint64_t>(E.Lane));
    // Chrome trace timestamps are microseconds.
    W.key("ts").value(static_cast<double>(E.StartNs) / 1000.0);
    W.key("dur").value(static_cast<double>(E.DurNs) / 1000.0);
    writeArgs(W, E.Args);
    W.endObject();
    // Flow events share one name/category per flow id chain and sit at
    // the midpoint of their owning slice so the viewer binds each to the
    // enclosing slice on this pid/tid ("bp":"e" on the finish).
    for (const TraceFlow &F : E.Flows) {
      W.beginObject();
      W.key("ph").value(std::string_view(&F.Phase, 1));
      W.key("name").value("serve.request");
      W.key("cat").value("flow");
      W.key("id").value(F.Id);
      W.key("pid").value(static_cast<int64_t>(HostPid));
      W.key("tid").value(static_cast<uint64_t>(E.Lane));
      W.key("ts").value(
          static_cast<double>(E.StartNs + E.DurNs / 2) / 1000.0);
      if (F.Phase == 'f')
        W.key("bp").value("e");
      W.endObject();
    }
  }
  for (const DeviceSlice &S : Device) {
    W.beginObject();
    W.key("ph").value("X");
    W.key("name").value(S.Name);
    W.key("cat").value("device");
    W.key("pid").value(static_cast<int64_t>(DevicePid));
    W.key("tid").value(static_cast<uint64_t>(S.Block));
    // One modelled cycle renders as one microsecond.
    W.key("ts").value(S.StartCycles);
    W.key("dur").value(S.DurCycles);
    writeArgs(W, S.Args);
    W.endObject();
  }

  W.endArray();
  W.endObject();
  return W.take();
}

bool Tracer::writeChromeTrace(const std::string &Path) const {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return false;
  Out << chromeTraceJson() << '\n';
  return static_cast<bool>(Out);
}

static std::string formatDurationNs(uint64_t Ns) {
  char Buf[32];
  if (Ns < 1000000)
    std::snprintf(Buf, sizeof(Buf), "%.1fus",
                  static_cast<double>(Ns) / 1000.0);
  else
    std::snprintf(Buf, sizeof(Buf), "%.3fms",
                  static_cast<double>(Ns) / 1000000.0);
  return Buf;
}

std::string Tracer::spanTree() const {
  std::vector<TraceEvent> Host = hostEvents();
  std::vector<DeviceSlice> Device = deviceSlices();
  std::string Out;

  uint32_t CurrentLane = ~0u;
  // Open ancestors on the current lane as [start, end] intervals; an
  // event nests under the innermost interval containing it.
  std::vector<std::pair<uint64_t, uint64_t>> Stack;
  for (const TraceEvent &E : Host) {
    if (E.Lane != CurrentLane) {
      CurrentLane = E.Lane;
      Stack.clear();
      Out += "[host lane " + std::to_string(E.Lane) + "]\n";
    }
    while (!Stack.empty() && !(E.StartNs >= Stack.back().first &&
                               E.endNs() <= Stack.back().second))
      Stack.pop_back();
    Out.append(2 * (Stack.size() + 1), ' ');
    Out += E.Name + " " + formatDurationNs(E.DurNs);
    for (const TraceArg &A : E.Args)
      Out += " " + A.Key + "=" + A.Json;
    Out += '\n';
    Stack.emplace_back(E.StartNs, E.endNs());
  }

  if (!Device.empty()) {
    Out += "[simulated device]\n";
    uint32_t Block = ~0u;
    uint64_t Slices = 0, Cycles = 0;
    auto Flush = [&] {
      if (Block != ~0u)
        Out += "  block " + std::to_string(Block) + ": " +
               std::to_string(Slices) + " slices, " +
               std::to_string(Cycles) + " cycles\n";
    };
    for (const DeviceSlice &S : Device) {
      if (S.Block != Block) {
        Flush();
        Block = S.Block;
        Slices = 0;
        Cycles = 0;
      }
      ++Slices;
      Cycles = std::max(Cycles, S.StartCycles + S.DurCycles);
    }
    Flush();
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Span
//===----------------------------------------------------------------------===//

Span::Span(std::string_view Name, std::string_view Category)
    : Active(Tracer::enabled()) {
  if (!Active)
    return;
  Event.Name = Name;
  Event.Category = Category;
  Event.StartNs = Tracer::nowNs();
}

Span::~Span() {
  if (!Active)
    return;
  Event.DurNs = Tracer::nowNs() - Event.StartNs;
  Tracer::instance().record(std::move(Event));
}

void Span::arg(std::string_view Key, std::string_view Value) {
  if (!Active)
    return;
  Event.Args.push_back(
      {std::string(Key), "\"" + jsonEscape(Value) + "\""});
}

void Span::arg(std::string_view Key, int64_t Value) {
  if (!Active)
    return;
  Event.Args.push_back({std::string(Key), std::to_string(Value)});
}

void Span::arg(std::string_view Key, uint64_t Value) {
  if (!Active)
    return;
  Event.Args.push_back({std::string(Key), std::to_string(Value)});
}

void Span::arg(std::string_view Key, double Value) {
  if (!Active)
    return;
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", Value);
  Event.Args.push_back({std::string(Key), Buf});
}

void Span::arg(std::string_view Key, bool Value) {
  if (!Active)
    return;
  Event.Args.push_back({std::string(Key), Value ? "true" : "false"});
}

void Span::flow(uint64_t Id, char Phase) {
  if (!Active)
    return;
  Event.Flows.push_back({Id, Phase});
}

//===----------------------------------------------------------------------===//
// ParRec_TRACE environment activation
//===----------------------------------------------------------------------===//

namespace {

/// Enables tracing before main when ParRec_TRACE is set: a path value
/// auto-exports Chrome trace JSON at process exit; the value "1" prints
/// the span tree to stderr instead.
struct TraceEnvActivation {
  static std::string &exportPath() {
    static std::string Path;
    return Path;
  }

  TraceEnvActivation() {
    const char *Value = std::getenv("ParRec_TRACE");
    if (!Value)
      Value = std::getenv("PARREC_TRACE");
    if (!Value || !*Value)
      return;
    exportPath() = Value;
    Tracer::instance().enable();
    std::atexit([] {
      const std::string &Path = exportPath();
      if (Path == "1") {
        std::fputs(Tracer::instance().spanTree().c_str(), stderr);
        return;
      }
      if (!Tracer::instance().writeChromeTrace(Path))
        std::fprintf(stderr, "parrec: cannot write trace to '%s'\n",
                     Path.c_str());
    });
  }
} TraceEnvActivationInstance;

} // namespace
