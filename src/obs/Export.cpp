//===- Export.cpp - Continuous metrics export ---------------------------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "obs/Export.h"

#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <chrono>
#include <cstdio>
#include <fstream>

using namespace parrec;
using namespace parrec::obs;

//===----------------------------------------------------------------------===//
// Prometheus text format
//===----------------------------------------------------------------------===//

/// Prometheus metric names allow [a-zA-Z0-9_:]; dots (and anything else)
/// become underscores, and everything gets a parrec_ prefix.
static std::string promName(const std::string &Name) {
  std::string Out = "parrec_";
  for (char C : Name) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_' || C == ':';
    Out += Ok ? C : '_';
  }
  return Out;
}

static std::string promDouble(double V) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

static void promHistogram(std::string &Out, const std::string &Name,
                          const std::string &Rendered, const Histogram &H) {
  // Labelled bucket series need the le label merged into the existing
  // block: {tenant="x"} + le -> {tenant="x",le="..."}.
  auto BucketSeries = [&](const std::string &Le) {
    std::string S = Name + "_bucket";
    if (Rendered.empty())
      return S + "{le=\"" + Le + "\"}";
    S += Rendered.substr(0, Rendered.size() - 1);
    S += ",le=\"" + Le + "\"}";
    return S;
  };
  uint64_t Cumulative = H.NonPositive;
  if (H.NonPositive)
    Out += BucketSeries("0") + " " + std::to_string(Cumulative) + "\n";
  for (const auto &[Index, N] : H.Buckets) {
    Cumulative += N;
    Out += BucketSeries(promDouble(Histogram::bucketUpper(Index))) + " " +
           std::to_string(Cumulative) + "\n";
  }
  Out += BucketSeries("+Inf") + " " + std::to_string(H.Count) + "\n";
  Out += Name + "_sum" + Rendered + " " + promDouble(H.Sum) + "\n";
  Out += Name + "_count" + Rendered + " " + std::to_string(H.Count) + "\n";
}

std::string parrec::obs::prometheusText(const MetricsSnapshot &S) {
  std::string Out;
  for (const auto &[Name, Value] : S.Counters) {
    std::string N = promName(Name);
    Out += "# TYPE " + N + " counter\n";
    Out += N + " " + std::to_string(Value) + "\n";
  }
  for (const auto &[Name, Series] : S.LabelledCounters) {
    std::string N = promName(Name);
    Out += "# TYPE " + N + " counter\n";
    for (const auto &[Rendered, Value] : Series)
      Out += N + Rendered + " " + std::to_string(Value) + "\n";
  }
  for (const auto &[Name, D] : S.Distributions) {
    std::string N = promName(Name);
    Out += "# TYPE " + N + " summary\n";
    Out += N + "_sum " + promDouble(D.Sum) + "\n";
    Out += N + "_count " + std::to_string(D.Count) + "\n";
  }
  for (const auto &[Name, Series] : S.Histograms) {
    std::string N = promName(Name);
    Out += "# TYPE " + N + " histogram\n";
    for (const auto &[Rendered, H] : Series)
      promHistogram(Out, N, Rendered, H);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// MetricsExporter
//===----------------------------------------------------------------------===//

MetricsExporter::MetricsExporter(Options O) : Opts(std::move(O)) {
  if (Opts.IntervalMs > 0)
    Thread = std::thread([this] { threadMain(); });
}

MetricsExporter::~MetricsExporter() { stop(); }

void MetricsExporter::threadMain() {
  std::unique_lock<std::mutex> Lock(WaitMutex);
  while (!Stopping) {
    WaitCv.wait_for(Lock, std::chrono::milliseconds(Opts.IntervalMs),
                    [this] { return Stopping; });
    if (Stopping)
      break;
    Lock.unlock();
    flushNow();
    Lock.lock();
  }
}

void MetricsExporter::flushNow() {
  std::lock_guard<std::mutex> Lock(FlushMutex);
  MetricsSnapshot S = MetricsRegistry::global().snapshot();
  uint64_t Seq = FlushCount.fetch_add(1, std::memory_order_relaxed);

  if (!Opts.PromPath.empty()) {
    // Write-then-rename so a scraper never sees a half-written file.
    std::string Tmp = Opts.PromPath + ".tmp";
    {
      std::ofstream PromOut(Tmp, std::ios::binary | std::ios::trunc);
      if (PromOut)
        PromOut << prometheusText(S);
    }
    if (std::rename(Tmp.c_str(), Opts.PromPath.c_str()) != 0)
      std::remove(Tmp.c_str());
  }

  if (!Opts.JsonlPath.empty()) {
    std::ofstream JsonlOut(Opts.JsonlPath, std::ios::binary | std::ios::app);
    if (JsonlOut) {
      JsonWriter W;
      W.beginObject();
      W.key("seq").value(Seq);
      if (Opts.TickSource)
        W.key("tick").value(Opts.TickSource());
      W.key("host_ns").value(Tracer::nowNs());
      W.key("metrics").rawValue(S.json());
      W.endObject();
      JsonlOut << W.take() << '\n';
    }
  }
}

void MetricsExporter::stop() {
  bool FirstStop;
  {
    std::lock_guard<std::mutex> Lock(WaitMutex);
    FirstStop = !Stopping;
    Stopping = true;
  }
  WaitCv.notify_all();
  if (Thread.joinable())
    Thread.join();
  // One final snapshot so short runs and clean shutdowns always leave
  // complete outputs behind.
  if (FirstStop)
    flushNow();
}
