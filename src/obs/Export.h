//===- Export.h - Continuous metrics export ------------------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders MetricsSnapshot as Prometheus text exposition format and runs
/// a background snapshot thread that rewrites a scrape file (atomic
/// tmp-and-rename) and appends a JSONL time series at a configurable
/// interval — the watch-a-soak path behind `parrec serve --prom-out= /
/// --export-interval=`. Flushes are also callable synchronously
/// (flushNow), which is how virtual-clock tests drive the exporter
/// without waiting on wall time.
///
/// Exporting reads the registry; it never writes it, so export on vs off
/// cannot change any counter, result or modelled cycle count.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_OBS_EXPORT_H
#define PARREC_OBS_EXPORT_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace parrec {
namespace obs {

struct MetricsSnapshot;

/// Renders \p S in Prometheus text exposition format: one `# TYPE` line
/// per family, `parrec_`-prefixed sanitised names, labelled series
/// rendered `{k="v",...}`, histograms as cumulative `_bucket{le="..."}`
/// series plus `_sum`/`_count`, distributions as summaries. Output is
/// deterministic (families and series sorted) and never contains a
/// duplicate (name, label set) sample.
std::string prometheusText(const MetricsSnapshot &S);

/// Background exporter of the global metrics registry.
class MetricsExporter {
public:
  struct Options {
    /// Prometheus scrape file, atomically replaced each flush ("" = off).
    std::string PromPath;
    /// JSONL time series, one snapshot object appended per flush ("" = off).
    std::string JsonlPath;
    /// Flush period for the background thread; 0 runs no thread (flushes
    /// happen only via flushNow() and the final one in stop()).
    uint64_t IntervalMs = 0;
    /// Stamps each JSONL record with a caller-defined clock (the serving
    /// engine's virtual tick under test); may be null.
    std::function<uint64_t()> TickSource;
  };

  explicit MetricsExporter(Options O);
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter &) = delete;
  MetricsExporter &operator=(const MetricsExporter &) = delete;

  /// Takes one snapshot and writes every configured output. Safe from
  /// any thread; serialised against the background thread.
  void flushNow();

  /// Stops the background thread (if any) and writes one final flush.
  /// Idempotent; the destructor calls it.
  void stop();

  uint64_t flushes() const { return FlushCount.load(std::memory_order_relaxed); }

private:
  void threadMain();

  Options Opts;
  std::mutex FlushMutex; ///< Serialises file writes across callers.
  std::mutex WaitMutex;
  std::condition_variable WaitCv;
  bool Stopping = false;
  std::atomic<uint64_t> FlushCount{0};
  std::thread Thread;
};

} // namespace obs
} // namespace parrec

#endif // PARREC_OBS_EXPORT_H
