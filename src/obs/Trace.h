//===- Trace.h - Pipeline tracing facility ------------------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight spans for the compile and execution pipeline plus
/// cycle-domain slices for the simulated device, collected by a global
/// Tracer and exported as Chrome trace-event JSON (loadable in Perfetto /
/// chrome://tracing) or a human-readable span tree.
///
/// Tracing is off by default and costs one relaxed atomic load per span
/// when disabled. Enable it programmatically (Tracer::instance().enable()),
/// via the `parrec --trace-out=<file>` flag, or with the ParRec_TRACE
/// environment variable (a file path to auto-export at process exit, or
/// "1" to print the span tree to stderr at exit).
///
/// Two clock domains share one trace:
///   - host lanes (pid 1): wall-clock spans, one lane per host thread —
///     compiler phases and execution stages;
///   - device lanes (pid 2): modelled-cycle slices, one lane per
///     simulated multiprocessor/block, one slice per partition.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_OBS_TRACE_H
#define PARREC_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace parrec {
namespace obs {

/// One key/value annotation on a span or slice. The value is stored as a
/// pre-rendered JSON fragment (quoted string, number or bool) so export
/// is a plain concatenation.
struct TraceArg {
  std::string Key;
  std::string Json;
};

/// A flow-event binding attached to a host span: exported as a Chrome
/// flow event (ph "s"/"t"/"f") anchored inside the span's slice, so every
/// slice carrying the same flow id links up as one arrowed chain in the
/// trace viewer. The serving engine uses the RequestId as the flow id to
/// connect a request's enqueue -> coalesce -> dispatch -> scan spans.
struct TraceFlow {
  uint64_t Id = 0;
  char Phase = 's'; ///< 's' start, 't' step, 'f' finish.
};

/// A completed host span (wall-clock domain).
struct TraceEvent {
  std::string Name;
  std::string Category;
  uint64_t StartNs = 0;
  uint64_t DurNs = 0;
  uint32_t Lane = 0; ///< Host lane (one per recording thread).
  uint64_t Seq = 0;  ///< Recording order; tie-breaker for sorting.
  std::vector<TraceArg> Args;
  std::vector<TraceFlow> Flows;

  uint64_t endNs() const { return StartNs + DurNs; }
};

/// A slice on a simulated-device lane (modelled-cycle domain).
struct DeviceSlice {
  uint32_t Block = 0; ///< Simulated multiprocessor/block lane.
  std::string Name;
  uint64_t StartCycles = 0;
  uint64_t DurCycles = 0;
  std::vector<TraceArg> Args;
};

/// The process-global trace collector. Thread-safe; recording threads are
/// assigned stable host lanes in first-recording order.
class Tracer {
public:
  static Tracer &instance();

  /// The single disabled-path branch: a relaxed atomic load.
  static bool enabled() {
    return EnabledFlag.load(std::memory_order_relaxed);
  }

  void enable() { EnabledFlag.store(true, std::memory_order_relaxed); }
  void disable() { EnabledFlag.store(false, std::memory_order_relaxed); }

  void record(TraceEvent Event);
  void recordDevice(DeviceSlice Slice);

  /// Drops all recorded events and lane assignments (tests).
  void reset();

  /// Snapshots, sorted for display: host events by (lane, start, longest
  /// first), device slices by (block, start).
  std::vector<TraceEvent> hostEvents() const;
  std::vector<DeviceSlice> deviceSlices() const;

  /// Renders the whole trace as Chrome trace-event JSON.
  std::string chromeTraceJson() const;

  /// Writes chromeTraceJson() to \p Path; false on I/O failure.
  bool writeChromeTrace(const std::string &Path) const;

  /// Renders host spans as an indented tree (one block per lane) and
  /// appends a per-block summary of device slices.
  std::string spanTree() const;

  /// Nanoseconds since the tracer's epoch (first use in the process).
  static uint64_t nowNs();

private:
  Tracer() = default;

  static std::atomic<bool> EnabledFlag;

  mutable std::mutex Mutex;
  std::vector<TraceEvent> Events;
  std::vector<DeviceSlice> Slices;
  std::map<std::thread::id, uint32_t> Lanes;
  uint64_t NextSeq = 0;

  uint32_t laneForCurrentThreadLocked();
};

/// RAII span: constructed at a phase/stage entry, recorded at scope exit.
/// When tracing is disabled construction is a single branch and args are
/// no-ops.
class Span {
public:
  explicit Span(std::string_view Name,
                std::string_view Category = "host");
  ~Span();

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  bool active() const { return Active; }

  void arg(std::string_view Key, std::string_view Value);
  void arg(std::string_view Key, const char *Value) {
    arg(Key, std::string_view(Value));
  }
  void arg(std::string_view Key, int64_t Value);
  void arg(std::string_view Key, uint64_t Value);
  void arg(std::string_view Key, int Value) {
    arg(Key, static_cast<int64_t>(Value));
  }
  void arg(std::string_view Key, unsigned Value) {
    arg(Key, static_cast<uint64_t>(Value));
  }
  void arg(std::string_view Key, double Value);
  void arg(std::string_view Key, bool Value);

  /// Attaches a flow binding to this span: the exported trace links every
  /// slice carrying flow id \p Id into one chain. Start on the span that
  /// originates the flow (serve.enqueue), step on intermediate hops
  /// (serve.coalesce, serve.dispatch), end on the terminal hop
  /// (exec.scan). No-ops when tracing is disabled.
  void flowStart(uint64_t Id) { flow(Id, 's'); }
  void flowStep(uint64_t Id) { flow(Id, 't'); }
  void flowEnd(uint64_t Id) { flow(Id, 'f'); }

private:
  void flow(uint64_t Id, char Phase);

  bool Active;
  TraceEvent Event;
};

} // namespace obs
} // namespace parrec

#endif // PARREC_OBS_TRACE_H
