//===- Evaluator.cpp - Executable form of compiled DSL functions ------------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "codegen/Evaluator.h"

#include "codegen/LogSpace.h"

#include <cmath>
#include <limits>

using namespace parrec;
using namespace parrec::codegen;
using namespace parrec::lang;

void HmmLogCache::build(const bio::Hmm &Hmm) {
  Model = &Hmm;
  LogTransitionProbs.resize(Hmm.numTransitions());
  for (unsigned T = 0; T != Hmm.numTransitions(); ++T)
    LogTransitionProbs[T] = toLog(Hmm.transition(T).Prob);
  LogEmissions.resize(Hmm.numStates());
  unsigned AlphaSize = Hmm.alphabet().size();
  for (unsigned S = 0; S != Hmm.numStates(); ++S) {
    const bio::HmmState &State = Hmm.state(S);
    if (State.isSilent())
      continue;
    LogEmissions[S].resize(AlphaSize);
    for (unsigned C = 0; C != AlphaSize; ++C)
      LogEmissions[S][C] = toLog(State.Emissions[C]);
  }
}

bool parrec::codegen::validateForExecution(const FunctionDecl &F,
                                           DiagnosticEngine &Diags) {
  bool Ok = true;
  std::vector<const Expr *> Stack = {F.Body.get()};
  while (!Stack.empty()) {
    const Expr *E = Stack.back();
    Stack.pop_back();
    switch (E->getKind()) {
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      if (B->ExprType.Kind == TypeKind::Prob &&
          B->Op == BinaryOp::Sub) {
        Diags.error(E->getLoc(),
                    "subtraction of probabilities is not supported by "
                    "the log-space backend");
        Ok = false;
      }
      Stack.push_back(B->Lhs.get());
      Stack.push_back(B->Rhs.get());
      break;
    }
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      Stack.push_back(I->Condition.get());
      Stack.push_back(I->ThenExpr.get());
      Stack.push_back(I->ElseExpr.get());
      break;
    }
    case ExprKind::Call:
      for (const ExprPtr &A : cast<CallExpr>(E)->Args)
        Stack.push_back(A.get());
      break;
    case ExprKind::SeqIndex:
      Stack.push_back(cast<SeqIndexExpr>(E)->Index.get());
      break;
    case ExprKind::MatrixIndex:
      Stack.push_back(cast<MatrixIndexExpr>(E)->Row.get());
      Stack.push_back(cast<MatrixIndexExpr>(E)->Col.get());
      break;
    case ExprKind::Member:
      Stack.push_back(cast<MemberExpr>(E)->Base.get());
      if (cast<MemberExpr>(E)->Arg)
        Stack.push_back(cast<MemberExpr>(E)->Arg.get());
      break;
    case ExprKind::Reduction: {
      const auto *R = cast<ReductionExpr>(E);
      const auto *Domain = dyn_cast<MemberExpr>(R->Domain.get());
      if (!Domain || (Domain->Member != MemberKind::TransitionsTo &&
                      Domain->Member != MemberKind::TransitionsFrom)) {
        Diags.error(R->Domain->getLoc(),
                    "reduction domains must be .transitionsto or "
                    ".transitionsfrom expressions");
        Ok = false;
      }
      Stack.push_back(R->Domain.get());
      Stack.push_back(R->Body.get());
      break;
    }
    default:
      break;
    }
  }
  return Ok;
}

//===----------------------------------------------------------------------===//
// Evaluation
//===----------------------------------------------------------------------===//

/// A dynamic value during evaluation. Probabilities live in the Real slot
/// in log space; states and transitions are integer indices.
struct Evaluator::RuntimeValue {
  enum class Kind { Int, Real, Bool, Char } K = Kind::Int;
  int64_t I = 0;
  double D = 0.0;
  bool B = false;
  char C = 0;

  static RuntimeValue ofInt(int64_t V) {
    RuntimeValue R;
    R.K = Kind::Int;
    R.I = V;
    return R;
  }
  static RuntimeValue ofReal(double V) {
    RuntimeValue R;
    R.K = Kind::Real;
    R.D = V;
    return R;
  }
  static RuntimeValue ofBool(bool V) {
    RuntimeValue R;
    R.K = Kind::Bool;
    R.B = V;
    return R;
  }
  static RuntimeValue ofChar(char V) {
    RuntimeValue R;
    R.K = Kind::Char;
    R.C = V;
    return R;
  }

  double asDouble() const { return K == Kind::Int ? double(I) : D; }
};

struct Evaluator::EvalContext {
  const int64_t *Point = nullptr;
  const TableView *Table = nullptr;
  gpu::CostCounter *Cost = nullptr;
  // Reduction bindings, innermost last. Tiny in practice.
  struct Binding {
    const std::string *Name;
    int64_t TransitionIndex;
    const bio::Hmm *Hmm;
    const HmmLogCache *Cache;
  };
  std::vector<Binding> Reductions;
};

Evaluator::Evaluator(const FunctionDecl &F, const FunctionInfo &Info)
    : Decl(F), Info(Info) {
  ParamToDim.assign(F.Params.size(), -1);
  for (unsigned D = 0; D != Info.Dims.size(); ++D)
    ParamToDim[Info.Dims[D].ParamIndex] = static_cast<int>(D);
}

void Evaluator::bind(std::vector<ArgValue> Args) {
  assert(Args.size() == Decl.Params.size() &&
         "one argument per declared parameter");
  this->Args = std::move(Args);
  HmmCaches.assign(this->Args.size(), {});
  for (unsigned I = 0; I != this->Args.size(); ++I)
    if (Decl.Params[I].ParamType.Kind == TypeKind::Hmm &&
        this->Args[I].Hmm)
      HmmCaches[I].build(*this->Args[I].Hmm);
}

double Evaluator::evalCell(const int64_t *Point, const TableView &Table,
                           gpu::CostCounter &Cost) const {
  EvalContext Ctx;
  Ctx.Point = Point;
  Ctx.Table = &Table;
  Ctx.Cost = &Cost;
  RuntimeValue V = evalExpr(Decl.Body.get(), Ctx);
  Cost.TableWrites += 1;
  switch (Decl.ReturnType.Kind) {
  case TypeKind::Prob: {
    // The body's static type may be float (literals); convert linear ->
    // log if needed.
    if (Decl.Body->ExprType.Kind == TypeKind::Prob)
      return V.asDouble();
    return toLog(V.asDouble());
  }
  case TypeKind::Bool:
    return V.K == RuntimeValue::Kind::Bool ? (V.B ? 1.0 : 0.0)
                                           : V.asDouble();
  default:
    return V.asDouble();
  }
}

Evaluator::RuntimeValue Evaluator::evalExpr(const Expr *E,
                                            EvalContext &Ctx) const {
  using RV = RuntimeValue;
  switch (E->getKind()) {
  case ExprKind::IntLiteral:
    return RV::ofInt(cast<IntLiteralExpr>(E)->Value);
  case ExprKind::FloatLiteral:
    return RV::ofReal(cast<FloatLiteralExpr>(E)->Value);
  case ExprKind::BoolLiteral:
    return RV::ofBool(cast<BoolLiteralExpr>(E)->Value);
  case ExprKind::CharLiteral:
    return RV::ofChar(cast<CharLiteralExpr>(E)->Value);

  case ExprKind::VarRef: {
    const auto *V = cast<VarRefExpr>(E);
    if (V->ParamIndex < 0) {
      // A reduction variable: the bound transition index.
      for (auto It = Ctx.Reductions.rbegin(); It != Ctx.Reductions.rend();
           ++It)
        if (*It->Name == V->Name)
          return RV::ofInt(It->TransitionIndex);
      assert(false && "unbound reduction variable");
      return RV::ofInt(0);
    }
    unsigned P = static_cast<unsigned>(V->ParamIndex);
    int Dim = ParamToDim[P];
    if (Dim >= 0)
      return RV::ofInt(Ctx.Point[Dim]);
    const Type &T = Decl.Params[P].ParamType;
    switch (T.Kind) {
    case TypeKind::Int:
      return RV::ofInt(Args[P].Int);
    case TypeKind::Float:
      return RV::ofReal(Args[P].Real);
    case TypeKind::Prob:
      return RV::ofReal(Args[P].Real); // Already log space by contract.
    default:
      // Seq/matrix/hmm references are consumed by their parent nodes.
      return RV::ofInt(static_cast<int64_t>(P));
    }
  }

  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    RV L = evalExpr(B->Lhs.get(), Ctx);
    RV R = evalExpr(B->Rhs.get(), Ctx);
    Ctx.Cost->Ops += 1;
    const Type &ResultType = B->ExprType;

    // Comparisons.
    switch (B->Op) {
    case BinaryOp::Lt:
      return RV::ofBool(L.asDouble() < R.asDouble());
    case BinaryOp::Gt:
      return RV::ofBool(L.asDouble() > R.asDouble());
    case BinaryOp::Le:
      return RV::ofBool(L.asDouble() <= R.asDouble());
    case BinaryOp::Ge:
      return RV::ofBool(L.asDouble() >= R.asDouble());
    case BinaryOp::Eq:
    case BinaryOp::Ne: {
      bool Equal;
      if (L.K == RV::Kind::Char && R.K == RV::Kind::Char)
        Equal = L.C == R.C;
      else if (L.K == RV::Kind::Bool && R.K == RV::Kind::Bool)
        Equal = L.B == R.B;
      else
        Equal = L.asDouble() == R.asDouble();
      return RV::ofBool(B->Op == BinaryOp::Eq ? Equal : !Equal);
    }
    default:
      break;
    }

    // Probability arithmetic in log space.
    if (ResultType.Kind == TypeKind::Prob) {
      auto AsLog = [&](const RV &V, const Expr *Operand) {
        if (Operand->ExprType.Kind == TypeKind::Prob)
          return V.asDouble();
        return toLog(V.asDouble());
      };
      double A = AsLog(L, B->Lhs.get());
      double C = AsLog(R, B->Rhs.get());
      switch (B->Op) {
      case BinaryOp::Mul:
        return RV::ofReal(A + C);
      case BinaryOp::Div:
        return RV::ofReal(A - C);
      case BinaryOp::Add:
        Ctx.Cost->Ops += 2; // Compare + add around the exp/log pair.
        Ctx.Cost->Transcendentals += 1;
        return RV::ofReal(logAddExp(A, C));
      case BinaryOp::Min:
        return RV::ofReal(A < C ? A : C);
      case BinaryOp::Max:
        return RV::ofReal(A > C ? A : C);
      default:
        assert(false && "unsupported probability operation");
        return RV::ofReal(NegInfinity);
      }
    }

    // Integer arithmetic stays integral.
    if (L.K == RV::Kind::Int && R.K == RV::Kind::Int) {
      switch (B->Op) {
      case BinaryOp::Add:
        return RV::ofInt(L.I + R.I);
      case BinaryOp::Sub:
        return RV::ofInt(L.I - R.I);
      case BinaryOp::Mul:
        return RV::ofInt(L.I * R.I);
      case BinaryOp::Div:
        return RV::ofInt(R.I == 0 ? 0 : L.I / R.I);
      case BinaryOp::Min:
        return RV::ofInt(L.I < R.I ? L.I : R.I);
      case BinaryOp::Max:
        return RV::ofInt(L.I > R.I ? L.I : R.I);
      default:
        break;
      }
    }
    double A = L.asDouble(), C = R.asDouble();
    switch (B->Op) {
    case BinaryOp::Add:
      return RV::ofReal(A + C);
    case BinaryOp::Sub:
      return RV::ofReal(A - C);
    case BinaryOp::Mul:
      return RV::ofReal(A * C);
    case BinaryOp::Div:
      return RV::ofReal(A / C);
    case BinaryOp::Min:
      return RV::ofReal(A < C ? A : C);
    case BinaryOp::Max:
      return RV::ofReal(A > C ? A : C);
    default:
      assert(false && "unhandled binary operator");
      return RV::ofReal(0.0);
    }
  }

  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    RV Cond = evalExpr(I->Condition.get(), Ctx);
    Ctx.Cost->Ops += 1;
    const Expr *Chosen =
        Cond.B ? I->ThenExpr.get() : I->ElseExpr.get();
    RV V = evalExpr(Chosen, Ctx);
    // Convert linear branches feeding a prob-typed if.
    if (I->ExprType.Kind == TypeKind::Prob &&
        Chosen->ExprType.Kind != TypeKind::Prob)
      return RV::ofReal(toLog(V.asDouble()));
    return V;
  }

  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(E);
    int64_t Target[8];
    assert(C->Args.size() <= 8 && "recursion arity limit");
    for (unsigned I = 0; I != C->Args.size(); ++I) {
      RV A = evalExpr(C->Args[I].get(), Ctx);
      Target[I] = A.I;
    }
    Ctx.Cost->TableReads += 1;
    double Stored = Ctx.Table->get(Target);
    switch (Decl.ReturnType.Kind) {
    case TypeKind::Prob:
    case TypeKind::Float:
      return RV::ofReal(Stored);
    case TypeKind::Bool:
      return RV::ofBool(Stored != 0.0);
    default:
      return RV::ofInt(static_cast<int64_t>(std::llround(Stored)));
    }
  }

  case ExprKind::SeqIndex: {
    const auto *S = cast<SeqIndexExpr>(E);
    RV IndexValue = evalExpr(S->Index.get(), Ctx);
    const bio::Sequence *Seq =
        Args[static_cast<unsigned>(S->SeqParamIndex)].Seq;
    assert(Seq && "sequence parameter not bound");
    Ctx.Cost->ModelReads += 1;
    return RV::ofChar(Seq->at(IndexValue.I));
  }

  case ExprKind::MatrixIndex: {
    const auto *M = cast<MatrixIndexExpr>(E);
    RV Row = evalExpr(M->Row.get(), Ctx);
    RV Col = evalExpr(M->Col.get(), Ctx);
    const bio::SubstitutionMatrix *Matrix =
        Args[static_cast<unsigned>(M->MatrixParamIndex)].Matrix;
    assert(Matrix && "matrix parameter not bound");
    Ctx.Cost->ModelReads += 1;
    return RV::ofInt(Matrix->score(Row.C, Col.C));
  }

  case ExprKind::Member: {
    const auto *M = cast<MemberExpr>(E);
    // Locate the HMM this member operates on: the base is either a state
    // parameter (a recursion dimension), a reduction variable, or a
    // nested member (t.start.isend).
    RV Base = evalExpr(M->Base.get(), Ctx);
    const bio::Hmm *Hmm = nullptr;
    const HmmLogCache *Cache = nullptr;
    const Type &BaseType = M->Base->ExprType;
    // Resolve the hmm parameter by name from the base's type.
    for (unsigned P = 0; P != Decl.Params.size(); ++P)
      if (Decl.Params[P].Name == BaseType.RefParam) {
        Hmm = Args[P].Hmm;
        Cache = &HmmCaches[P];
        break;
      }
    assert(Hmm && "member access on unbound hmm");
    switch (M->Member) {
    case MemberKind::Start:
      Ctx.Cost->ModelReads += 1;
      return RV::ofInt(
          Hmm->transition(static_cast<unsigned>(Base.I)).From);
    case MemberKind::End:
      Ctx.Cost->ModelReads += 1;
      return RV::ofInt(
          Hmm->transition(static_cast<unsigned>(Base.I)).To);
    case MemberKind::Prob:
      Ctx.Cost->ModelReads += 1;
      return RV::ofReal(
          Cache->LogTransitionProbs[static_cast<size_t>(Base.I)]);
    case MemberKind::IsStart:
      Ctx.Cost->Ops += 1;
      return RV::ofBool(Hmm->state(static_cast<unsigned>(Base.I)).IsStart);
    case MemberKind::IsEnd:
      Ctx.Cost->Ops += 1;
      return RV::ofBool(Hmm->state(static_cast<unsigned>(Base.I)).IsEnd);
    case MemberKind::Emission: {
      RV C = evalExpr(M->Arg.get(), Ctx);
      Ctx.Cost->ModelReads += 1;
      unsigned State = static_cast<unsigned>(Base.I);
      const std::vector<double> &Row = Cache->LogEmissions[State];
      if (Row.empty())
        return RV::ofReal(0.0); // Silent states emit with log-prob 0.
      int Index = Hmm->alphabet().indexOf(C.C);
      if (Index < 0)
        return RV::ofReal(NegInfinity);
      return RV::ofReal(Row[static_cast<size_t>(Index)]);
    }
    case MemberKind::TransitionsTo:
    case MemberKind::TransitionsFrom:
      // Consumed by ReductionExpr; the state index flows through.
      return Base;
    }
    return RV::ofInt(0);
  }

  case ExprKind::Reduction: {
    const auto *R = cast<ReductionExpr>(E);
    const auto *Domain = cast<MemberExpr>(R->Domain.get());
    RV StateValue = evalExpr(Domain->Base.get(), Ctx);
    const bio::Hmm *Hmm = nullptr;
    const HmmLogCache *Cache = nullptr;
    const Type &BaseType = Domain->Base->ExprType;
    for (unsigned P = 0; P != Decl.Params.size(); ++P)
      if (Decl.Params[P].Name == BaseType.RefParam) {
        Hmm = Args[P].Hmm;
        Cache = &HmmCaches[P];
        break;
      }
    assert(Hmm && "reduction over unbound hmm");
    unsigned State = static_cast<unsigned>(StateValue.I);
    const std::vector<unsigned> &Set =
        Domain->Member == MemberKind::TransitionsTo
            ? Hmm->transitionsTo(State)
            : Hmm->transitionsFrom(State);

    bool IsProb = R->ExprType.Kind == TypeKind::Prob;
    bool First = true;
    // Identities for empty sets: sum -> 0 (log 0 = -inf for probs),
    // max -> -inf / INT64_MIN, min -> +inf / INT64_MAX.
    double AccumReal = 0.0;
    int64_t AccumInt = 0;
    switch (R->Reduction) {
    case ReductionKind::Sum:
      if (IsProb)
        AccumReal = NegInfinity;
      break;
    case ReductionKind::Max:
      AccumReal = NegInfinity;
      AccumInt = std::numeric_limits<int64_t>::min();
      break;
    case ReductionKind::Min:
      AccumReal = std::numeric_limits<double>::infinity();
      AccumInt = std::numeric_limits<int64_t>::max();
      break;
    }

    Ctx.Reductions.push_back({&R->VarName, 0, Hmm, Cache});
    for (unsigned T : Set) {
      Ctx.Reductions.back().TransitionIndex = static_cast<int64_t>(T);
      RV Body = evalExpr(R->Body.get(), Ctx);
      double BodyLog = 0.0;
      if (IsProb)
        BodyLog = R->Body->ExprType.Kind == TypeKind::Prob
                      ? Body.asDouble()
                      : toLog(Body.asDouble());
      switch (R->Reduction) {
      case ReductionKind::Sum:
        if (IsProb) {
          Ctx.Cost->Ops += 2;
          Ctx.Cost->Transcendentals += 1;
          AccumReal = logAddExp(AccumReal, BodyLog);
        } else if (Body.K == RV::Kind::Int) {
          Ctx.Cost->Ops += 1;
          AccumInt += Body.I;
        } else {
          Ctx.Cost->Ops += 1;
          AccumReal += Body.asDouble();
        }
        break;
      case ReductionKind::Min:
        Ctx.Cost->Ops += 1;
        if (IsProb) {
          AccumReal = First ? BodyLog : std::min(AccumReal, BodyLog);
        } else if (Body.K == RV::Kind::Int) {
          AccumInt = First ? Body.I : std::min(AccumInt, Body.I);
        } else {
          AccumReal =
              First ? Body.asDouble() : std::min(AccumReal, Body.asDouble());
        }
        break;
      case ReductionKind::Max:
        Ctx.Cost->Ops += 1;
        if (IsProb) {
          AccumReal = First ? BodyLog : std::max(AccumReal, BodyLog);
        } else if (Body.K == RV::Kind::Int) {
          AccumInt = First ? Body.I : std::max(AccumInt, Body.I);
        } else {
          AccumReal =
              First ? Body.asDouble() : std::max(AccumReal, Body.asDouble());
        }
        break;
      }
      First = false;
    }
    Ctx.Reductions.pop_back();

    if (IsProb || R->ExprType.Kind == TypeKind::Float)
      return RV::ofReal(AccumReal);
    return RV::ofInt(AccumInt);
  }
  }
  assert(false && "unhandled expression kind");
  return RuntimeValue::ofInt(0);
}
