//===- CudaEmitter.h - CUDA C source synthesis --------------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits the synthesized CUDA C source for a compiled recursion: a
/// __device__ cell function lowered from the DSL body (prob arithmetic in
/// log space, reductions as loops over CSR transition tables) and a
/// __global__ kernel with the Figure 10 structure — the partition time
/// loop, the thread-striped space loop, the reconstructed coordinates and
/// the __syncthreads() barrier.
///
/// In this reproduction the kernel is documentation and a golden-test
/// artifact; execution happens in the simulator (Evaluator.h), which
/// implements the same semantics.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_CODEGEN_CUDAEMITTER_H
#define PARREC_CODEGEN_CUDAEMITTER_H

#include "lang/Sema.h"
#include "solver/Recurrence.h"

#include <string>

namespace parrec {
namespace codegen {

/// Renders the complete CUDA translation unit for \p F under schedule
/// \p S: parameter marshalling comments, the cell function and the
/// kernel. Domain extents appear as symbolic kernel arguments
/// ("<dim>_n"), so one emission serves every problem size.
std::string emitCudaKernel(const lang::FunctionDecl &F,
                           const lang::FunctionInfo &Info,
                           const solver::Schedule &S);

/// Renders a host-side launch sketch for the kernel emitted by
/// emitCudaKernel: device-table allocation, one block per problem
/// (Section 4.7's problem-per-multiprocessor mapping) and the final
/// table read-back. Documentation-quality output for users porting the
/// synthesized kernel into their own build.
std::string emitHostLaunchStub(const lang::FunctionDecl &F,
                               const lang::FunctionInfo &Info);

} // namespace codegen
} // namespace parrec

#endif // PARREC_CODEGEN_CUDAEMITTER_H
