//===- Bytecode.cpp - One-pass compiler from typed ASTs to bytecode ---------==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
//
// The compiler mirrors Evaluator::evalExpr case by case: every dynamic
// decision the tree-walker makes from RuntimeValue kinds is made here
// statically (kinds are fully determined by the expression structure),
// and every cost event the tree-walker charges is attached to the
// instruction that replaces the charging subtree. Where the walker's
// dynamic behaviour cannot be pinned down statically — mismatched branch
// kinds, non-boolean conditions, exotic kind coercions — compilation
// throws Unsupported and the caller keeps the AST evaluator.
//
//===----------------------------------------------------------------------===//

#include "codegen/Bytecode.h"

#include "codegen/LogSpace.h"
#include "obs/Metrics.h"

#include <cstring>
#include <limits>
#include <optional>

using namespace parrec;
using namespace parrec::codegen;
using namespace parrec::lang;

namespace {

/// Internal bail-out: the body uses a construct the bytecode cannot
/// reproduce bit-exactly. Never escapes compileToBytecode.
struct Unsupported {};

/// The static runtime kind of a value, mirroring RuntimeValue::Kind.
enum class VKind : uint8_t { Int, Real, Bool, Char };

/// A compiled (sub)expression: either a known constant that has not been
/// materialised yet (enabling constant folding), or a register. Constants
/// carry the cost the tree-walker would have charged computing the folded
/// subtree; it is attached to the eventual immediate load so totals never
/// drift.
struct Value {
  VKind Kind = VKind::Int;
  bool IsConst = false;
  int64_t CI = 0; // Const payload for Int/Bool/Char.
  double CD = 0.0; // Const payload for Real.
  InstrCost Cost;  // Pending cost (constants only).
  int32_t Reg = -1;
};

/// Adds \p B into \p A; fails (no fold) on uint16 overflow.
bool addCost(InstrCost &A, const InstrCost &B) {
  auto Fits = [](uint32_t X) { return X <= 0xFFFFu; };
  if (!Fits(A.Ops + B.Ops) || !Fits(A.TableReads + B.TableReads) ||
      !Fits(A.TableWrites + B.TableWrites) ||
      !Fits(A.ModelReads + B.ModelReads) ||
      !Fits(A.Transcendentals + B.Transcendentals))
    return false;
  A += B;
  return true;
}

class Compiler {
public:
  Compiler(const FunctionDecl &F, const FunctionInfo &Info)
      : F(F), Info(Info) {
    ParamToDim.assign(F.Params.size(), -1);
    DimReg.assign(Info.Dims.size(), -1);
    for (unsigned D = 0; D != Info.Dims.size(); ++D)
      ParamToDim[Info.Dims[D].ParamIndex] = static_cast<int>(D);
    P.NumDims = static_cast<uint32_t>(Info.Dims.size());
  }

  std::shared_ptr<const BytecodeProgram> run() {
    Value Result = compileExpr(F.Body.get());
    finishResult(Result);
    P.NumRegs = static_cast<uint32_t>(NextReg);
    P.ParamClasses.reserve(F.Params.size());
    for (const Param &Pm : F.Params)
      P.ParamClasses.push_back(classify(Pm.ParamType));
    // The VM accumulates the packed cost lanes in one uint64; forward-only
    // jumps mean one pass executes each instruction at most once, so lane
    // carries are impossible exactly when every whole-code lane total
    // fits 16 bits. Anything bigger falls back to the tree-walker.
    uint64_t LaneTotals[4] = {0, 0, 0, 0};
    for (const Instr &I : P.Code)
      for (unsigned L = 0; L != 4; ++L)
        LaneTotals[L] += (I.Cost >> (16 * L)) & 0xFFFF;
    for (unsigned L = 0; L != 4; ++L)
      if (LaneTotals[L] > 0xFFFF)
        throw Unsupported{};
    return std::make_shared<const BytecodeProgram>(std::move(P));
  }

private:
  const FunctionDecl &F;
  const FunctionInfo &Info;
  BytecodeProgram P;
  std::vector<int> ParamToDim;
  int32_t NextReg = 0;

  struct Scope {
    const std::string *Name;
    int32_t Reg;
  };
  std::vector<Scope> ReduceScopes; // Innermost last.

  // Local value numbering for the two cheapest, most re-referenced value
  // classes: recursion-dimension loads and cost-free constants. Registers
  // are single-assignment, so a cached register stays valid for as long
  // as its defining instruction dominates the use — entries created
  // inside an if-branch or a reduction body are rolled back on exit.
  std::vector<int32_t> DimReg; // dim -> register holding Point[dim]
  struct ConstEntry {
    bool IsReal;
    int64_t Bits;
    int32_t Reg;
  };
  std::vector<ConstEntry> ConstCache;

  struct CseSnapshot {
    std::vector<int32_t> Dims;
    size_t NumConsts;
  };
  CseSnapshot saveCse() const { return {DimReg, ConstCache.size()}; }
  void restoreCse(const CseSnapshot &S) {
    DimReg = S.Dims;
    ConstCache.resize(S.NumConsts);
  }

  static bool isFree(const InstrCost &C) {
    return C.Ops == 0 && C.TableReads == 0 && C.TableWrites == 0 &&
           C.ModelReads == 0 && C.Transcendentals == 0;
  }

  static ParamClass classify(const Type &T) {
    switch (T.Kind) {
    case TypeKind::Seq:
      return ParamClass::Seq;
    case TypeKind::Matrix:
      return ParamClass::Matrix;
    case TypeKind::Hmm:
      return ParamClass::Hmm;
    case TypeKind::Int:
      return ParamClass::Int;
    case TypeKind::Float:
    case TypeKind::Prob:
      return ParamClass::Real;
    default:
      return ParamClass::Unused;
    }
  }

  int32_t newReg() {
    if (NextReg >= std::numeric_limits<int16_t>::max())
      throw Unsupported{};
    return NextReg++;
  }

  /// Narrows an operand into the packed 16-bit instruction field,
  /// bailing to the AST evaluator on (absurdly large) overflow.
  static int16_t operand(int32_t V) {
    if (V < std::numeric_limits<int16_t>::min() ||
        V > std::numeric_limits<int16_t>::max())
      throw Unsupported{};
    return static_cast<int16_t>(V);
  }

  size_t emit(Opcode Op, InstrCost Cost, int32_t A, int32_t B = 0,
              int32_t C = 0, int32_t D = 0) {
    // Expression costs never include table writes (only the per-cell
    // store does), which is what lets the packed encoding drop the lane.
    if (Cost.TableWrites != 0)
      throw Unsupported{};
    Instr I;
    I.Op = Op;
    I.Cost = packInstrCost(Cost);
    I.A = operand(A);
    I.B = operand(B);
    I.C = operand(C);
    I.D = operand(D);
    if (P.Code.size() >=
        static_cast<size_t>(std::numeric_limits<int16_t>::max()))
      throw Unsupported{};
    P.Code.push_back(I);
    return P.Code.size() - 1;
  }

  size_t emitImmI(Opcode Op, InstrCost Cost, int32_t A, int64_t Imm) {
    size_t Pc = emit(Op, Cost, A);
    P.Code[Pc].Imm.I = Imm;
    return Pc;
  }

  size_t emitImmD(Opcode Op, InstrCost Cost, int32_t A, double Imm) {
    size_t Pc = emit(Op, Cost, A);
    P.Code[Pc].Imm.D = Imm;
    return Pc;
  }

  static Value constInt(VKind K, int64_t V, InstrCost Cost = {}) {
    Value R;
    R.Kind = K;
    R.IsConst = true;
    R.CI = V;
    R.Cost = Cost;
    return R;
  }
  static Value constReal(double V, InstrCost Cost = {}) {
    Value R;
    R.Kind = VKind::Real;
    R.IsConst = true;
    R.CD = V;
    R.Cost = Cost;
    return R;
  }
  static Value regValue(VKind K, int32_t Reg) {
    Value R;
    R.Kind = K;
    R.Reg = Reg;
    return R;
  }

  /// Emits the immediate load for a pending constant (or returns the
  /// existing register). The constant's accumulated cost rides on the
  /// load instruction.
  int32_t materialize(Value &V) {
    if (!V.IsConst)
      return V.Reg;
    // Cost-free constants can share one register per distinct bit
    // pattern (pending-cost constants must charge their cost at every
    // materialisation site, so they always load fresh).
    bool Cacheable = isFree(V.Cost);
    bool IsReal = V.Kind == VKind::Real;
    int64_t Bits = IsReal ? bitsOfDouble(V.CD) : V.CI;
    if (Cacheable)
      for (const ConstEntry &E : ConstCache)
        if (E.IsReal == IsReal && E.Bits == Bits) {
          V.IsConst = false;
          V.Reg = E.Reg;
          return E.Reg;
        }
    int32_t Dst = newReg();
    materializeInto(V, Dst);
    if (Cacheable)
      ConstCache.push_back({IsReal, Bits, Dst});
    V.IsConst = false;
    V.Reg = Dst;
    V.Cost = {};
    return Dst;
  }

  static int64_t bitsOfDouble(double D) {
    int64_t Bits;
    static_assert(sizeof(Bits) == sizeof(D), "double must be 64-bit");
    std::memcpy(&Bits, &D, sizeof(Bits));
    return Bits;
  }

  void materializeInto(const Value &V, int32_t Dst) {
    if (V.IsConst) {
      if (V.Kind == VKind::Real)
        emitImmD(Opcode::ConstReal, V.Cost, Dst, V.CD);
      else
        emitImmI(Opcode::ConstInt, V.Cost, Dst, V.CI);
      return;
    }
    emit(Opcode::Move, {}, Dst, V.Reg);
  }

  /// RuntimeValue::asDouble, statically: Int converts, Real passes, and
  /// Bool/Char read the never-written D field — always 0.0 (the
  /// tree-walker's exact behaviour).
  Value coerceAsDouble(Value V) {
    switch (V.Kind) {
    case VKind::Real:
      return V;
    case VKind::Int:
      if (V.IsConst)
        return constReal(static_cast<double>(V.CI), V.Cost);
      else {
        int32_t Dst = newReg();
        emit(Opcode::IntToReal, {}, Dst, V.Reg);
        return regValue(VKind::Real, Dst);
      }
    case VKind::Bool:
    case VKind::Char:
      // Side effects (cost events) of a register value were already
      // emitted; only a constant still carries pending cost.
      return constReal(0.0, V.IsConst ? V.Cost : InstrCost{});
    }
    throw Unsupported{};
  }

  /// The evaluator's AsLog: prob-typed operands are already log-space,
  /// anything else is converted with toLog (cost-free in the walker).
  Value asLogProb(Value V, const Expr *Operand) {
    if (Operand->ExprType.Kind == TypeKind::Prob) {
      if (V.Kind != VKind::Real)
        throw Unsupported{};
      return V;
    }
    return logOfValue(coerceAsDouble(V));
  }

  Value logOfValue(Value Real) {
    if (Real.IsConst)
      return constReal(toLog(Real.CD), Real.Cost);
    int32_t Dst = newReg();
    emit(Opcode::LogOf, {}, Dst, Real.Reg);
    return regValue(VKind::Real, Dst);
  }

  /// Feeds \p V into a consumer that reads the tree-walker's I (or C)
  /// union field: kinds that store there pass through, any other kind
  /// reads the never-written field — always 0.
  int32_t slotOf(Value &V, VKind Want) {
    if (V.Kind == Want)
      return materialize(V);
    Value Zero = constInt(Want, 0, V.IsConst ? V.Cost : InstrCost{});
    if (!V.IsConst)
      (void)V.Reg; // Register side effects are already in the stream.
    return materialize(Zero);
  }

  //===--------------------------------------------------------------------===//
  // Expression compilation
  //===--------------------------------------------------------------------===//

  Value compileExpr(const Expr *E) {
    switch (E->getKind()) {
    case ExprKind::IntLiteral:
      return constInt(VKind::Int, cast<IntLiteralExpr>(E)->Value);
    case ExprKind::FloatLiteral:
      return constReal(cast<FloatLiteralExpr>(E)->Value);
    case ExprKind::BoolLiteral:
      return constInt(VKind::Bool, cast<BoolLiteralExpr>(E)->Value ? 1 : 0);
    case ExprKind::CharLiteral:
      return constInt(VKind::Char, cast<CharLiteralExpr>(E)->Value);
    case ExprKind::VarRef:
      return compileVarRef(cast<VarRefExpr>(E));
    case ExprKind::Binary:
      return compileBinary(cast<BinaryExpr>(E));
    case ExprKind::If:
      return compileIf(cast<IfExpr>(E));
    case ExprKind::Call:
      return compileCall(cast<CallExpr>(E));
    case ExprKind::SeqIndex:
      return compileSeqIndex(cast<SeqIndexExpr>(E));
    case ExprKind::MatrixIndex:
      return compileMatrixIndex(cast<MatrixIndexExpr>(E));
    case ExprKind::Member:
      return compileMember(cast<MemberExpr>(E));
    case ExprKind::Reduction:
      return compileReduction(cast<ReductionExpr>(E));
    }
    throw Unsupported{};
  }

  Value compileVarRef(const VarRefExpr *V) {
    if (V->ParamIndex < 0) {
      for (auto It = ReduceScopes.rbegin(); It != ReduceScopes.rend(); ++It)
        if (*It->Name == V->Name)
          return regValue(VKind::Int, It->Reg);
      throw Unsupported{}; // Unbound reduction variable.
    }
    unsigned Pi = static_cast<unsigned>(V->ParamIndex);
    if (ParamToDim[Pi] >= 0) {
      int D = ParamToDim[Pi];
      if (DimReg[D] >= 0)
        return regValue(VKind::Int, DimReg[D]);
      int32_t Dst = newReg();
      emit(Opcode::LoadPoint, {}, Dst, D);
      DimReg[D] = Dst;
      return regValue(VKind::Int, Dst);
    }
    switch (F.Params[Pi].ParamType.Kind) {
    case TypeKind::Int: {
      int32_t Dst = newReg();
      emit(Opcode::LoadArgInt, {}, Dst, static_cast<int32_t>(Pi));
      return regValue(VKind::Int, Dst);
    }
    case TypeKind::Float:
    case TypeKind::Prob: {
      int32_t Dst = newReg();
      emit(Opcode::LoadArgReal, {}, Dst, static_cast<int32_t>(Pi));
      return regValue(VKind::Real, Dst);
    }
    default:
      // Seq/matrix/hmm references are consumed by their parent nodes;
      // the walker yields the parameter index.
      return constInt(VKind::Int, static_cast<int64_t>(Pi));
    }
  }

  static int64_t foldIntOp(BinaryOp Op, int64_t L, int64_t R) {
    switch (Op) {
    case BinaryOp::Add:
      return L + R;
    case BinaryOp::Sub:
      return L - R;
    case BinaryOp::Mul:
      return L * R;
    case BinaryOp::Div:
      return R == 0 ? 0 : L / R;
    case BinaryOp::Min:
      return L < R ? L : R;
    case BinaryOp::Max:
      return L > R ? L : R;
    default:
      throw Unsupported{};
    }
  }

  static double foldRealOp(BinaryOp Op, double L, double R) {
    switch (Op) {
    case BinaryOp::Add:
      return L + R;
    case BinaryOp::Sub:
      return L - R;
    case BinaryOp::Mul:
      return L * R;
    case BinaryOp::Div:
      return L / R;
    case BinaryOp::Min:
      return L < R ? L : R;
    case BinaryOp::Max:
      return L > R ? L : R;
    default:
      throw Unsupported{};
    }
  }

  Value emitBinary(Opcode Op, InstrCost Cost, VKind ResKind, Value L,
                   Value R) {
    int32_t LR = materialize(L);
    int32_t RR = materialize(R);
    int32_t Dst = newReg();
    emit(Op, Cost, Dst, LR, RR);
    return regValue(ResKind, Dst);
  }

  /// Folds a two-operand operation when both operands are pending
  /// constants and the combined cost fits; returns nullopt otherwise.
  template <typename FoldFn>
  std::optional<Value> tryFold(const Value &L, const Value &R,
                               InstrCost OpCost, FoldFn &&Fold) {
    if (!L.IsConst || !R.IsConst)
      return std::nullopt;
    InstrCost Total = L.Cost;
    if (!addCost(Total, R.Cost) || !addCost(Total, OpCost))
      return std::nullopt;
    Value V = Fold();
    V.Cost = Total;
    return V;
  }

  Value compileBinary(const BinaryExpr *B) {
    Value L = compileExpr(B->Lhs.get());
    Value R = compileExpr(B->Rhs.get());
    const InstrCost Op1{1, 0, 0, 0, 0};

    // Comparisons (the walker converts both sides with asDouble, except
    // like-kind char/bool equality).
    switch (B->Op) {
    case BinaryOp::Lt:
    case BinaryOp::Gt:
    case BinaryOp::Le:
    case BinaryOp::Ge: {
      Value A = coerceAsDouble(L), C = coerceAsDouble(R);
      if (auto V = tryFold(A, C, Op1, [&] {
            bool Res;
            switch (B->Op) {
            case BinaryOp::Lt:
              Res = A.CD < C.CD;
              break;
            case BinaryOp::Gt:
              Res = A.CD > C.CD;
              break;
            case BinaryOp::Le:
              Res = A.CD <= C.CD;
              break;
            default:
              Res = A.CD >= C.CD;
              break;
            }
            return constInt(VKind::Bool, Res);
          }))
        return *V;
      Opcode Op = B->Op == BinaryOp::Lt   ? Opcode::CmpLtReal
                  : B->Op == BinaryOp::Gt ? Opcode::CmpGtReal
                  : B->Op == BinaryOp::Le ? Opcode::CmpLeReal
                                          : Opcode::CmpGeReal;
      return emitBinary(Op, Op1, VKind::Bool, A, C);
    }
    case BinaryOp::Eq:
    case BinaryOp::Ne: {
      bool Negate = B->Op == BinaryOp::Ne;
      if ((L.Kind == VKind::Char && R.Kind == VKind::Char) ||
          (L.Kind == VKind::Bool && R.Kind == VKind::Bool)) {
        if (auto V = tryFold(L, R, Op1, [&] {
              return constInt(VKind::Bool, (L.CI == R.CI) != Negate);
            }))
          return *V;
        return emitBinary(Negate ? Opcode::CmpNeInt : Opcode::CmpEqInt,
                          Op1, VKind::Bool, L, R);
      }
      Value A = coerceAsDouble(L), C = coerceAsDouble(R);
      if (auto V = tryFold(A, C, Op1, [&] {
            return constInt(VKind::Bool, (A.CD == C.CD) != Negate);
          }))
        return *V;
      return emitBinary(Negate ? Opcode::CmpNeReal : Opcode::CmpEqReal,
                        Op1, VKind::Bool, A, C);
    }
    default:
      break;
    }

    // Probability arithmetic in log space.
    if (B->ExprType.Kind == TypeKind::Prob) {
      Value A = asLogProb(L, B->Lhs.get());
      Value C = asLogProb(R, B->Rhs.get());
      Opcode Op;
      InstrCost Cost = Op1;
      switch (B->Op) {
      case BinaryOp::Mul:
        Op = Opcode::LogMul;
        break;
      case BinaryOp::Div:
        Op = Opcode::LogDiv;
        break;
      case BinaryOp::Add:
        Op = Opcode::LogSum;
        Cost = InstrCost{3, 0, 0, 0, 1}; // 1 + 2 ops around the exp/log.
        break;
      case BinaryOp::Min:
        Op = Opcode::MinReal;
        break;
      case BinaryOp::Max:
        Op = Opcode::MaxReal;
        break;
      default:
        throw Unsupported{}; // The walker asserts here.
      }
      if (auto V = tryFold(A, C, Cost, [&] {
            switch (B->Op) {
            case BinaryOp::Mul:
              return constReal(A.CD + C.CD);
            case BinaryOp::Div:
              return constReal(A.CD - C.CD);
            case BinaryOp::Add:
              return constReal(logAddExp(A.CD, C.CD));
            case BinaryOp::Min:
              return constReal(A.CD < C.CD ? A.CD : C.CD);
            default:
              return constReal(A.CD > C.CD ? A.CD : C.CD);
            }
          }))
        return *V;
      return emitBinary(Op, Cost, VKind::Real, A, C);
    }

    // Integer arithmetic stays integral when both operands are.
    if (L.Kind == VKind::Int && R.Kind == VKind::Int) {
      if (auto V = tryFold(L, R, Op1, [&] {
            return constInt(VKind::Int, foldIntOp(B->Op, L.CI, R.CI));
          }))
        return *V;
      Opcode Op;
      switch (B->Op) {
      case BinaryOp::Add:
        Op = Opcode::AddInt;
        break;
      case BinaryOp::Sub:
        Op = Opcode::SubInt;
        break;
      case BinaryOp::Mul:
        Op = Opcode::MulInt;
        break;
      case BinaryOp::Div:
        Op = Opcode::DivInt;
        break;
      case BinaryOp::Min:
        Op = Opcode::MinInt;
        break;
      case BinaryOp::Max:
        Op = Opcode::MaxInt;
        break;
      default:
        throw Unsupported{};
      }
      return emitBinary(Op, Op1, VKind::Int, L, R);
    }

    // Mixed/real arithmetic via asDouble.
    Value A = coerceAsDouble(L), C = coerceAsDouble(R);
    if (auto V = tryFold(A, C, Op1, [&] {
          return constReal(foldRealOp(B->Op, A.CD, C.CD));
        }))
      return *V;
    Opcode Op;
    switch (B->Op) {
    case BinaryOp::Add:
      Op = Opcode::AddReal;
      break;
    case BinaryOp::Sub:
      Op = Opcode::SubReal;
      break;
    case BinaryOp::Mul:
      Op = Opcode::MulReal;
      break;
    case BinaryOp::Div:
      Op = Opcode::DivReal;
      break;
    case BinaryOp::Min:
      Op = Opcode::MinReal;
      break;
    case BinaryOp::Max:
      Op = Opcode::MaxReal;
      break;
    default:
      throw Unsupported{};
    }
    return emitBinary(Op, Op1, VKind::Real, A, C);
  }

  Value compileIf(const IfExpr *I) {
    Value Cond = compileExpr(I->Condition.get());
    if (Cond.Kind != VKind::Bool)
      throw Unsupported{}; // The walker would read an unset B field.
    int32_t CondReg = materialize(Cond);
    // The if's Ops charge rides on the branch instruction.
    size_t JumpFalse =
        emit(Opcode::JumpIfFalse, InstrCost{1, 0, 0, 0, 0}, CondReg);

    // Values defined inside a branch only exist when that branch runs;
    // roll the reuse caches back to the pre-branch state on exit.
    CseSnapshot Snap = saveCse();
    Value Then = compileExpr(I->ThenExpr.get());
    if (I->ExprType.Kind == TypeKind::Prob &&
        I->ThenExpr->ExprType.Kind != TypeKind::Prob)
      Then = logOfValue(coerceAsDouble(Then));
    int32_t Dst = newReg();
    materializeInto(Then, Dst);
    size_t JumpEnd = emit(Opcode::Jump, {}, 0);
    P.Code[JumpFalse].B = operand(static_cast<int32_t>(P.Code.size()));

    restoreCse(Snap);
    Value Else = compileExpr(I->ElseExpr.get());
    if (I->ExprType.Kind == TypeKind::Prob &&
        I->ElseExpr->ExprType.Kind != TypeKind::Prob)
      Else = logOfValue(coerceAsDouble(Else));
    if (Else.Kind != Then.Kind)
      throw Unsupported{}; // Branch kinds must agree statically.
    materializeInto(Else, Dst);
    P.Code[JumpEnd].A = operand(static_cast<int32_t>(P.Code.size()));
    restoreCse(Snap);

    return regValue(Then.Kind, Dst);
  }

  /// Affine form of an integer argument expression over the recursion
  /// point, with the walker's cost for evaluating it.
  struct Affine {
    std::vector<int64_t> Coeffs;
    int64_t Bias = 0;
    InstrCost Cost;
  };

  std::optional<Affine> tryAffine(const Expr *E) {
    switch (E->getKind()) {
    case ExprKind::IntLiteral: {
      Affine A;
      A.Coeffs.assign(P.NumDims, 0);
      A.Bias = cast<IntLiteralExpr>(E)->Value;
      return A;
    }
    case ExprKind::VarRef: {
      const auto *V = cast<VarRefExpr>(E);
      if (V->ParamIndex < 0)
        return std::nullopt;
      int Dim = ParamToDim[static_cast<unsigned>(V->ParamIndex)];
      if (Dim < 0)
        return std::nullopt;
      Affine A;
      A.Coeffs.assign(P.NumDims, 0);
      A.Coeffs[static_cast<unsigned>(Dim)] = 1;
      return A;
    }
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      if (B->Op != BinaryOp::Add && B->Op != BinaryOp::Sub &&
          B->Op != BinaryOp::Mul)
        return std::nullopt;
      std::optional<Affine> L = tryAffine(B->Lhs.get());
      std::optional<Affine> R = tryAffine(B->Rhs.get());
      if (!L || !R)
        return std::nullopt;
      Affine A;
      A.Cost = L->Cost;
      if (!addCost(A.Cost, R->Cost) ||
          !addCost(A.Cost, InstrCost{1, 0, 0, 0, 0}))
        return std::nullopt;
      auto IsConst = [](const Affine &X) {
        for (int64_t C : X.Coeffs)
          if (C != 0)
            return false;
        return true;
      };
      switch (B->Op) {
      case BinaryOp::Add:
      case BinaryOp::Sub: {
        int64_t Sign = B->Op == BinaryOp::Add ? 1 : -1;
        A.Coeffs = L->Coeffs;
        for (unsigned D = 0; D != P.NumDims; ++D)
          A.Coeffs[D] += Sign * R->Coeffs[D];
        A.Bias = L->Bias + Sign * R->Bias;
        return A;
      }
      case BinaryOp::Mul: {
        const Affine *Scalar = IsConst(*L) ? &*L : IsConst(*R) ? &*R : nullptr;
        const Affine *Other = Scalar == &*L ? &*R : &*L;
        if (!Scalar)
          return std::nullopt;
        A.Coeffs = Other->Coeffs;
        for (int64_t &C : A.Coeffs)
          C *= Scalar->Bias;
        A.Bias = Other->Bias * Scalar->Bias;
        return A;
      }
      default:
        return std::nullopt;
      }
    }
    default:
      return std::nullopt;
    }
  }

  Value compileCall(const CallExpr *C) {
    if (C->Args.size() > 8 || C->Args.size() != P.NumDims)
      throw Unsupported{};
    CallDesc Desc;
    Desc.FirstArg = static_cast<uint32_t>(P.CallArgsPool.size());
    Desc.NumArgs = static_cast<uint32_t>(C->Args.size());
    InstrCost Cost{0, 1, 0, 0, 0}; // The table read itself.
    for (const ExprPtr &ArgExpr : C->Args) {
      CallArg Arg;
      if (std::optional<Affine> Aff = tryAffine(ArgExpr.get())) {
        if (!addCost(Cost, Aff->Cost))
          throw Unsupported{};
        Arg.Reg = -1;
        Arg.CoeffOffset = static_cast<uint32_t>(P.AffinePool.size());
        Arg.Bias = Aff->Bias;
        P.AffinePool.insert(P.AffinePool.end(), Aff->Coeffs.begin(),
                            Aff->Coeffs.end());
      } else {
        Value V = compileExpr(ArgExpr.get());
        Arg.Reg = slotOf(V, VKind::Int);
      }
      P.CallArgsPool.push_back(Arg);
    }
    int32_t DescIdx = static_cast<int32_t>(P.Calls.size());
    P.Calls.push_back(Desc);

    int32_t Dst = newReg();
    switch (F.ReturnType.Kind) {
    case TypeKind::Prob:
    case TypeKind::Float:
      emit(Opcode::TableReadReal, Cost, Dst, DescIdx);
      return regValue(VKind::Real, Dst);
    case TypeKind::Bool:
      emit(Opcode::TableReadBool, Cost, Dst, DescIdx);
      return regValue(VKind::Bool, Dst);
    default:
      emit(Opcode::TableReadInt, Cost, Dst, DescIdx);
      return regValue(VKind::Int, Dst);
    }
  }

  Value compileSeqIndex(const SeqIndexExpr *S) {
    Value Idx = compileExpr(S->Index.get());
    int32_t IdxReg = slotOf(Idx, VKind::Int);
    int32_t Dst = newReg();
    emit(Opcode::SeqChar, InstrCost{0, 0, 0, 1, 0}, Dst, S->SeqParamIndex,
         IdxReg);
    return regValue(VKind::Char, Dst);
  }

  Value compileMatrixIndex(const MatrixIndexExpr *M) {
    Value Row = compileExpr(M->Row.get());
    Value Col = compileExpr(M->Col.get());
    int32_t RowReg = slotOf(Row, VKind::Char);
    int32_t ColReg = slotOf(Col, VKind::Char);
    int32_t Dst = newReg();
    emit(Opcode::MatrixScore, InstrCost{0, 0, 0, 1, 0}, Dst,
         M->MatrixParamIndex, RowReg, ColReg);
    return regValue(VKind::Int, Dst);
  }

  /// Resolves the HMM parameter a state/transition-typed base belongs
  /// to, exactly as the walker does by name — but once, at compile time.
  int32_t resolveHmmParam(const Type &BaseType) {
    for (unsigned Pi = 0; Pi != F.Params.size(); ++Pi)
      if (F.Params[Pi].Name == BaseType.RefParam)
        return static_cast<int32_t>(Pi);
    throw Unsupported{}; // The walker would assert.
  }

  Value compileMember(const MemberExpr *M) {
    Value Base = compileExpr(M->Base.get());
    if (M->Member == MemberKind::TransitionsTo ||
        M->Member == MemberKind::TransitionsFrom)
      return Base; // Consumed by Reduce; the state index flows through.

    int32_t Hp = resolveHmmParam(M->Base->ExprType);
    int32_t BaseReg = slotOf(Base, VKind::Int);
    int32_t Dst = newReg();
    const InstrCost Read{0, 0, 0, 1, 0};
    const InstrCost Op1{1, 0, 0, 0, 0};
    switch (M->Member) {
    case MemberKind::Start:
      emit(Opcode::TransStart, Read, Dst, Hp, BaseReg);
      return regValue(VKind::Int, Dst);
    case MemberKind::End:
      emit(Opcode::TransEnd, Read, Dst, Hp, BaseReg);
      return regValue(VKind::Int, Dst);
    case MemberKind::Prob:
      emit(Opcode::TransLogProb, Read, Dst, Hp, BaseReg);
      return regValue(VKind::Real, Dst);
    case MemberKind::IsStart:
      emit(Opcode::StateIsStart, Op1, Dst, Hp, BaseReg);
      return regValue(VKind::Bool, Dst);
    case MemberKind::IsEnd:
      emit(Opcode::StateIsEnd, Op1, Dst, Hp, BaseReg);
      return regValue(VKind::Bool, Dst);
    case MemberKind::Emission: {
      Value Arg = compileExpr(M->Arg.get());
      int32_t CharReg = slotOf(Arg, VKind::Char);
      emit(Opcode::Emission, Read, Dst, Hp, BaseReg, CharReg);
      return regValue(VKind::Real, Dst);
    }
    default:
      throw Unsupported{};
    }
  }

  Value compileReduction(const ReductionExpr *R) {
    const auto *Domain = dyn_cast<MemberExpr>(R->Domain.get());
    if (!Domain || (Domain->Member != MemberKind::TransitionsTo &&
                    Domain->Member != MemberKind::TransitionsFrom))
      throw Unsupported{}; // validateForExecution rejects these anyway.

    Value StateV = compileExpr(Domain->Base.get());
    int32_t StateReg = slotOf(StateV, VKind::Int);
    int32_t Hp = resolveHmmParam(Domain->Base->ExprType);

    ReduceDesc Desc;
    Desc.HmmParam = static_cast<uint16_t>(Hp);
    Desc.OverIncoming = Domain->Member == MemberKind::TransitionsTo;
    Desc.Kind = R->Reduction;
    Desc.StateReg = StateReg;
    Desc.VarReg = newReg();
    Desc.DstReg = newReg();

    int32_t DescIdx = static_cast<int32_t>(P.Reduces.size());
    P.Reduces.push_back(Desc); // Placeholder; patched below.
    size_t ReducePc = emit(Opcode::Reduce, {}, DescIdx);

    // The body range [ReducePc+1, BodyEnd) is skipped by the outer pass,
    // so registers first defined inside it must not leak into the cache
    // of the surrounding straight-line code.
    CseSnapshot Snap = saveCse();
    ReduceScopes.push_back({&R->VarName, Desc.VarReg});
    Value Body = compileExpr(R->Body.get());
    ReduceScopes.pop_back();

    bool IsProb = R->ExprType.Kind == TypeKind::Prob;
    VKind ResKind;
    if (IsProb) {
      // The walker converts non-prob bodies with toLog per element.
      if (R->Body->ExprType.Kind == TypeKind::Prob) {
        if (Body.Kind != VKind::Real)
          throw Unsupported{};
      } else {
        Body = logOfValue(coerceAsDouble(Body));
      }
      Desc.AccKind = ReduceDesc::Acc::Prob;
      ResKind = VKind::Real;
    } else if (Body.Kind == VKind::Int) {
      if (R->ExprType.Kind == TypeKind::Float)
        throw Unsupported{}; // Walker would return the untouched real acc.
      Desc.AccKind = ReduceDesc::Acc::Int;
      ResKind = VKind::Int;
    } else if (Body.Kind == VKind::Real) {
      if (R->ExprType.Kind != TypeKind::Float)
        throw Unsupported{}; // Walker would return the untouched int acc.
      Desc.AccKind = ReduceDesc::Acc::Real;
      ResKind = VKind::Real;
    } else {
      throw Unsupported{}; // Bool/char bodies hit the asDouble quirk.
    }
    Desc.BodyReg = materialize(Body);
    Desc.BodyEnd = static_cast<uint32_t>(P.Code.size());
    restoreCse(Snap);
    Desc.ElemCost = (Desc.Kind == lang::ReductionKind::Sum && IsProb)
                        ? InstrCost{2, 0, 0, 0, 1}
                        : InstrCost{1, 0, 0, 0, 0};
    (void)ReducePc;
    P.Reduces[static_cast<size_t>(DescIdx)] = Desc;

    return regValue(ResKind, Desc.DstReg);
  }

  void finishResult(Value &Result) {
    P.ResultReg = materialize(Result);
    switch (F.ReturnType.Kind) {
    case TypeKind::Prob:
      if (F.Body->ExprType.Kind == TypeKind::Prob) {
        if (Result.Kind != VKind::Real)
          throw Unsupported{};
        P.Conv = ResultConv::RealSlot;
      } else if (Result.Kind == VKind::Real) {
        P.Conv = ResultConv::LogRealSlot;
      } else if (Result.Kind == VKind::Int) {
        P.Conv = ResultConv::LogIntSlot;
      } else {
        throw Unsupported{};
      }
      return;
    case TypeKind::Bool:
      if (Result.Kind == VKind::Bool)
        P.Conv = ResultConv::BoolSlot;
      else if (Result.Kind == VKind::Int)
        P.Conv = ResultConv::IntSlot;
      else if (Result.Kind == VKind::Real)
        P.Conv = ResultConv::RealSlot;
      else
        throw Unsupported{};
      return;
    default:
      if (Result.Kind == VKind::Int)
        P.Conv = ResultConv::IntSlot;
      else if (Result.Kind == VKind::Real)
        P.Conv = ResultConv::RealSlot;
      else
        throw Unsupported{};
      return;
    }
  }
};

} // namespace

std::shared_ptr<const BytecodeProgram>
parrec::codegen::compileToBytecode(const FunctionDecl &F,
                                   const FunctionInfo &Info) {
  // Instrumented by the "bytecode" pass wrapper (compiler/).
  try {
    std::shared_ptr<const BytecodeProgram> Program =
        Compiler(F, Info).run();
    obs::MetricsRegistry::global().add("bytecode.programs_compiled");
    return Program;
  } catch (const Unsupported &) {
    obs::MetricsRegistry::global().add("bytecode.ast_fallbacks");
    return nullptr;
  }
}
