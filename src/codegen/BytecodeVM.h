//===- BytecodeVM.h - Register VM for compiled cell bodies --------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes BytecodeProgram instruction streams. A VM is bound to one
/// problem (one Evaluator binding) and then evaluates cells through a
/// single switch-dispatch loop — no recursion, no variant values, no
/// per-cell name resolution.
///
/// bind() precomputes everything the tree-walker re-derives per cell:
/// raw sequence pointers, the log-space HMM transition table base
/// pointer (shared with the Evaluator's own cache, so the values are
/// bit-identical), a dense log-emission matrix with a trailing
/// invalid-character column, and a 256-entry character -> column table.
/// Per-cell model reads are then single indexed loads.
///
/// evalCell is templated over the concrete table type so the recursive
/// lookups devirtualise; the cost of every instruction is accumulated in
/// plain integer lanes and flushed to the CostCounter once per cell,
/// preserving the tree-walker's totals exactly.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_CODEGEN_BYTECODEVM_H
#define PARREC_CODEGEN_BYTECODEVM_H

#include "codegen/Bytecode.h"
#include "codegen/Evaluator.h"
#include "codegen/LogSpace.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <limits>

namespace parrec {
namespace codegen {

class BytecodeVM {
public:
  explicit BytecodeVM(std::shared_ptr<const BytecodeProgram> Program)
      : Prog(std::move(Program)) {
    assert(Prog && "VM requires a compiled program");
    Regs.resize(Prog->NumRegs);
  }

  /// Captures \p Eval's bound arguments and model caches. The VM borrows
  /// the Evaluator's log-space tables, so \p Eval must stay alive and
  /// bound for as long as cells are evaluated.
  void bind(const Evaluator &Eval);

  /// Computes the cell at \p Point exactly like Evaluator::evalCell,
  /// including its cost events. \p TableT is the concrete table class so
  /// the lookup calls devirtualise.
  template <typename TableT>
  double evalCell(const int64_t *Point, const TableT &Table,
                  gpu::CostCounter &Cost) {
    CostAcc Acc;
    execRange(0, static_cast<uint32_t>(Prog->Code.size()), Point, Table,
              Acc);
    Cost.Ops += Acc.Ops;
    Cost.TableReads += Acc.TableReads;
    Cost.TableWrites += Acc.TableWrites + 1; // The cell's own store.
    Cost.ModelReads += Acc.ModelReads;
    Cost.Transcendentals += Acc.Transcendentals;
    const Slot &R = Regs[static_cast<size_t>(Prog->ResultReg)];
    switch (Prog->Conv) {
    case ResultConv::RealSlot:
      return R.D;
    case ResultConv::IntSlot:
      return static_cast<double>(R.I);
    case ResultConv::BoolSlot:
      return R.I ? 1.0 : 0.0;
    case ResultConv::LogRealSlot:
      return toLog(R.D);
    case ResultConv::LogIntSlot:
      return toLog(static_cast<double>(R.I));
    }
    return 0.0;
  }

  const BytecodeProgram &program() const { return *Prog; }

private:
  union Slot {
    int64_t I;
    double D;
  };

  /// Per-cell cost lanes; uint64 so no folded cost can overflow before
  /// the per-cell flush.
  struct CostAcc {
    uint64_t Ops = 0;
    uint64_t TableReads = 0;
    uint64_t TableWrites = 0;
    uint64_t ModelReads = 0;
    uint64_t Transcendentals = 0;

    void add(const InstrCost &C) {
      Ops += C.Ops;
      TableReads += C.TableReads;
      TableWrites += C.TableWrites;
      ModelReads += C.ModelReads;
      Transcendentals += C.Transcendentals;
    }

    /// Spreads a packInstrCost lane accumulator into the wide lanes.
    void flushPacked(uint64_t P) {
      Ops += P & 0xFFFF;
      TableReads += (P >> 16) & 0xFFFF;
      ModelReads += (P >> 32) & 0xFFFF;
      Transcendentals += P >> 48;
    }
  };

  struct BoundSeq {
    const char *Data = nullptr;
    int64_t Len = 0;
  };

  struct BoundHmm {
    const bio::Hmm *H = nullptr;
    /// Borrowed from the Evaluator's HmmLogCache: identical values mean
    /// identical bits in every probability the VM produces.
    const double *LogTrans = nullptr;
    /// Dense [numStates x (alphabet size + 1)] log emissions. Silent
    /// states are all-zero rows (they emit with log-prob 0); the last
    /// column holds the out-of-alphabet value (-inf for emitting
    /// states).
    std::vector<double> Emissions;
    uint32_t Stride = 0;
    /// Character -> emission column; out-of-alphabet characters map to
    /// the trailing column.
    std::array<uint16_t, 256> CharCol{};
  };

  // Threaded (computed-goto) dispatch gives every opcode handler its own
  // indirect branch, so the branch predictor learns per-opcode successor
  // patterns instead of sharing one jump for the whole switch. GCC and
  // Clang support labels-as-values; everything else gets the portable
  // switch with identical handler bodies (the handlers are written once,
  // below, behind the VM_CASE/VM_NEXT/VM_DISPATCH macros).
#if defined(__GNUC__) || defined(__clang__)
#define PARREC_VM_THREADED_DISPATCH 1
#else
#define PARREC_VM_THREADED_DISPATCH 0
#endif

  template <typename TableT>
  void execRange(uint32_t Pc, uint32_t End, const int64_t *Point,
                 const TableT &Table, CostAcc &Acc) {
    const Instr *Code = Prog->Code.data();
    Slot *R = Regs.data();
    const Instr *In;
    // Packed cost lanes for this pass; one add per instruction, spread
    // into the wide accumulator on exit. Forward-only jumps plus the
    // compiler's whole-code lane-total check make carries impossible.
    uint64_t Packed = 0;
#if PARREC_VM_THREADED_DISPATCH
    // One label per opcode, in exact Opcode declaration order.
    static const void *const Labels[] = {
        &&Op_ConstInt,      &&Op_ConstReal,  &&Op_Move,
        &&Op_LoadPoint,     &&Op_LoadArgInt, &&Op_LoadArgReal,
        &&Op_IntToReal,     &&Op_LogOf,      &&Op_AddInt,
        &&Op_SubInt,        &&Op_MulInt,     &&Op_DivInt,
        &&Op_MinInt,        &&Op_MaxInt,     &&Op_AddReal,
        &&Op_SubReal,       &&Op_MulReal,    &&Op_DivReal,
        &&Op_MinReal,       &&Op_MaxReal,    &&Op_LogMul,
        &&Op_LogDiv,        &&Op_LogSum,     &&Op_CmpLtReal,
        &&Op_CmpLeReal,     &&Op_CmpGtReal,  &&Op_CmpGeReal,
        &&Op_CmpEqReal,     &&Op_CmpNeReal,  &&Op_CmpEqInt,
        &&Op_CmpNeInt,      &&Op_JumpIfFalse, &&Op_Jump,
        &&Op_TableReadReal, &&Op_TableReadBool, &&Op_TableReadInt,
        &&Op_SeqChar,       &&Op_MatrixScore, &&Op_TransStart,
        &&Op_TransEnd,      &&Op_TransLogProb, &&Op_StateIsStart,
        &&Op_StateIsEnd,    &&Op_Emission,   &&Op_Reduce};
#define VM_CASE(Name) Op_##Name
#define VM_DISPATCH()                                                     \
  do {                                                                    \
    if (Pc >= End) {                                                      \
      Acc.flushPacked(Packed);                                            \
      return;                                                             \
    }                                                                     \
    In = &Code[Pc];                                                       \
    Packed += In->Cost;                                                   \
    goto *Labels[static_cast<unsigned>(In->Op)];                          \
  } while (0)
#define VM_NEXT()                                                         \
  do {                                                                    \
    ++Pc;                                                                 \
    VM_DISPATCH();                                                        \
  } while (0)
    VM_DISPATCH();
#else
#define VM_CASE(Name) case Opcode::Name
#define VM_DISPATCH() continue
#define VM_NEXT()                                                         \
  do {                                                                    \
    ++Pc;                                                                 \
    continue;                                                             \
  } while (0)
    while (Pc < End) {
      In = &Code[Pc];
      Packed += In->Cost;
      switch (In->Op) {
#endif

    VM_CASE(ConstInt) : { R[In->A].I = In->Imm.I; }
      VM_NEXT();
    VM_CASE(ConstReal) : { R[In->A].D = In->Imm.D; }
      VM_NEXT();
    VM_CASE(Move) : { R[In->A] = R[In->B]; }
      VM_NEXT();
    VM_CASE(LoadPoint) : { R[In->A].I = Point[In->B]; }
      VM_NEXT();
    VM_CASE(LoadArgInt) : {
      R[In->A].I = IntArgs[static_cast<size_t>(In->B)];
    }
      VM_NEXT();
    VM_CASE(LoadArgReal) : {
      R[In->A].D = RealArgs[static_cast<size_t>(In->B)];
    }
      VM_NEXT();
    VM_CASE(IntToReal) : { R[In->A].D = static_cast<double>(R[In->B].I); }
      VM_NEXT();
    VM_CASE(LogOf) : { R[In->A].D = toLog(R[In->B].D); }
      VM_NEXT();
    VM_CASE(AddInt) : { R[In->A].I = R[In->B].I + R[In->C].I; }
      VM_NEXT();
    VM_CASE(SubInt) : { R[In->A].I = R[In->B].I - R[In->C].I; }
      VM_NEXT();
    VM_CASE(MulInt) : { R[In->A].I = R[In->B].I * R[In->C].I; }
      VM_NEXT();
    VM_CASE(DivInt) : {
      R[In->A].I = R[In->C].I == 0 ? 0 : R[In->B].I / R[In->C].I;
    }
      VM_NEXT();
    VM_CASE(MinInt) : {
      R[In->A].I = R[In->B].I < R[In->C].I ? R[In->B].I : R[In->C].I;
    }
      VM_NEXT();
    VM_CASE(MaxInt) : {
      R[In->A].I = R[In->B].I > R[In->C].I ? R[In->B].I : R[In->C].I;
    }
      VM_NEXT();
    VM_CASE(AddReal) : { R[In->A].D = R[In->B].D + R[In->C].D; }
      VM_NEXT();
    VM_CASE(SubReal) : { R[In->A].D = R[In->B].D - R[In->C].D; }
      VM_NEXT();
    VM_CASE(MulReal) : { R[In->A].D = R[In->B].D * R[In->C].D; }
      VM_NEXT();
    VM_CASE(DivReal) : { R[In->A].D = R[In->B].D / R[In->C].D; }
      VM_NEXT();
    VM_CASE(MinReal) : {
      R[In->A].D = R[In->B].D < R[In->C].D ? R[In->B].D : R[In->C].D;
    }
      VM_NEXT();
    VM_CASE(MaxReal) : {
      R[In->A].D = R[In->B].D > R[In->C].D ? R[In->B].D : R[In->C].D;
    }
      VM_NEXT();
    VM_CASE(LogMul) : { R[In->A].D = R[In->B].D + R[In->C].D; }
      VM_NEXT();
    VM_CASE(LogDiv) : { R[In->A].D = R[In->B].D - R[In->C].D; }
      VM_NEXT();
    VM_CASE(LogSum) : { R[In->A].D = logAddExp(R[In->B].D, R[In->C].D); }
      VM_NEXT();
    VM_CASE(CmpLtReal) : { R[In->A].I = R[In->B].D < R[In->C].D; }
      VM_NEXT();
    VM_CASE(CmpLeReal) : { R[In->A].I = R[In->B].D <= R[In->C].D; }
      VM_NEXT();
    VM_CASE(CmpGtReal) : { R[In->A].I = R[In->B].D > R[In->C].D; }
      VM_NEXT();
    VM_CASE(CmpGeReal) : { R[In->A].I = R[In->B].D >= R[In->C].D; }
      VM_NEXT();
    VM_CASE(CmpEqReal) : { R[In->A].I = R[In->B].D == R[In->C].D; }
      VM_NEXT();
    VM_CASE(CmpNeReal) : { R[In->A].I = R[In->B].D != R[In->C].D; }
      VM_NEXT();
    VM_CASE(CmpEqInt) : { R[In->A].I = R[In->B].I == R[In->C].I; }
      VM_NEXT();
    VM_CASE(CmpNeInt) : { R[In->A].I = R[In->B].I != R[In->C].I; }
      VM_NEXT();
    VM_CASE(JumpIfFalse) : {
      if (!R[In->A].I) {
        Pc = static_cast<uint32_t>(In->B);
        VM_DISPATCH();
      }
    }
      VM_NEXT();
    VM_CASE(Jump) : {
      Pc = static_cast<uint32_t>(In->A);
      VM_DISPATCH();
    }
    VM_CASE(TableReadReal) : {
      R[In->A].D = readTable(In->B, Point, Table);
    }
      VM_NEXT();
    VM_CASE(TableReadBool) : {
      R[In->A].I = readTable(In->B, Point, Table) != 0.0;
    }
      VM_NEXT();
    VM_CASE(TableReadInt) : {
      R[In->A].I = static_cast<int64_t>(
          std::llround(readTable(In->B, Point, Table)));
    }
      VM_NEXT();
    VM_CASE(SeqChar) : {
      const BoundSeq &S = Seqs[static_cast<size_t>(In->B)];
      int64_t Index = R[In->C].I;
      assert(S.Data && "sequence parameter not bound");
      assert(Index >= 0 && Index < S.Len && "sequence index out of range");
      R[In->A].I = static_cast<int64_t>(S.Data[Index]);
    }
      VM_NEXT();
    VM_CASE(MatrixScore) : {
      const bio::SubstitutionMatrix *M =
          Matrices[static_cast<size_t>(In->B)];
      assert(M && "matrix parameter not bound");
      R[In->A].I = M->score(static_cast<char>(R[In->C].I),
                            static_cast<char>(R[In->D].I));
    }
      VM_NEXT();
    VM_CASE(TransStart) : {
      R[In->A].I = Hmms[static_cast<size_t>(In->B)]
                       .H->transition(static_cast<unsigned>(R[In->C].I))
                       .From;
    }
      VM_NEXT();
    VM_CASE(TransEnd) : {
      R[In->A].I = Hmms[static_cast<size_t>(In->B)]
                       .H->transition(static_cast<unsigned>(R[In->C].I))
                       .To;
    }
      VM_NEXT();
    VM_CASE(TransLogProb) : {
      R[In->A].D = Hmms[static_cast<size_t>(In->B)]
                       .LogTrans[static_cast<size_t>(R[In->C].I)];
    }
      VM_NEXT();
    VM_CASE(StateIsStart) : {
      R[In->A].I = Hmms[static_cast<size_t>(In->B)]
                       .H->state(static_cast<unsigned>(R[In->C].I))
                       .IsStart;
    }
      VM_NEXT();
    VM_CASE(StateIsEnd) : {
      R[In->A].I = Hmms[static_cast<size_t>(In->B)]
                       .H->state(static_cast<unsigned>(R[In->C].I))
                       .IsEnd;
    }
      VM_NEXT();
    VM_CASE(Emission) : {
      const BoundHmm &BH = Hmms[static_cast<size_t>(In->B)];
      size_t State = static_cast<size_t>(R[In->C].I);
      unsigned Col = BH.CharCol[static_cast<unsigned char>(
          static_cast<char>(R[In->D].I))];
      R[In->A].D = BH.Emissions[State * BH.Stride + Col];
    }
      VM_NEXT();
    VM_CASE(Reduce) : {
      const ReduceDesc &Rd = Prog->Reduces[static_cast<size_t>(In->A)];
      const BoundHmm &BH = Hmms[Rd.HmmParam];
      assert(BH.H && "reduction over unbound hmm");
      unsigned State = static_cast<unsigned>(R[Rd.StateReg].I);
      const std::vector<unsigned> &Set =
          Rd.OverIncoming ? BH.H->transitionsTo(State)
                          : BH.H->transitionsFrom(State);
      // Identities for empty sets, exactly as the tree-walker
      // initialises its accumulators.
      double AccumReal = 0.0;
      int64_t AccumInt = 0;
      switch (Rd.Kind) {
      case lang::ReductionKind::Sum:
        if (Rd.AccKind == ReduceDesc::Acc::Prob)
          AccumReal = NegInfinity;
        break;
      case lang::ReductionKind::Max:
        AccumReal = NegInfinity;
        AccumInt = std::numeric_limits<int64_t>::min();
        break;
      case lang::ReductionKind::Min:
        AccumReal = std::numeric_limits<double>::infinity();
        AccumInt = std::numeric_limits<int64_t>::max();
        break;
      }
      bool First = true;
      for (unsigned T : Set) {
        R[Rd.VarReg].I = static_cast<int64_t>(T);
        execRange(Pc + 1, Rd.BodyEnd, Point, Table, Acc);
        Acc.add(Rd.ElemCost);
        const Slot Body = R[Rd.BodyReg];
        switch (Rd.Kind) {
        case lang::ReductionKind::Sum:
          if (Rd.AccKind == ReduceDesc::Acc::Prob)
            AccumReal = logAddExp(AccumReal, Body.D);
          else if (Rd.AccKind == ReduceDesc::Acc::Int)
            AccumInt += Body.I;
          else
            AccumReal += Body.D;
          break;
        case lang::ReductionKind::Min:
          if (Rd.AccKind == ReduceDesc::Acc::Int)
            AccumInt = First ? Body.I : std::min(AccumInt, Body.I);
          else
            AccumReal = First ? Body.D : std::min(AccumReal, Body.D);
          break;
        case lang::ReductionKind::Max:
          if (Rd.AccKind == ReduceDesc::Acc::Int)
            AccumInt = First ? Body.I : std::max(AccumInt, Body.I);
          else
            AccumReal = First ? Body.D : std::max(AccumReal, Body.D);
          break;
        }
        First = false;
      }
      if (Rd.AccKind == ReduceDesc::Acc::Int)
        R[Rd.DstReg].I = AccumInt;
      else
        R[Rd.DstReg].D = AccumReal;
      Pc = Rd.BodyEnd;
      VM_DISPATCH();
    }

#if !PARREC_VM_THREADED_DISPATCH
      }
    }
    Acc.flushPacked(Packed);
#endif
#undef VM_CASE
#undef VM_DISPATCH
#undef VM_NEXT
  }
#undef PARREC_VM_THREADED_DISPATCH

  template <typename TableT>
  double readTable(int32_t CallIdx, const int64_t *Point,
                   const TableT &Table) {
    const CallDesc &Cd = Prog->Calls[static_cast<size_t>(CallIdx)];
    const CallArg *Args = &Prog->CallArgsPool[Cd.FirstArg];
    int64_t Target[8];
    for (unsigned A = 0; A != Cd.NumArgs; ++A) {
      const CallArg &Ca = Args[A];
      if (Ca.Reg >= 0) {
        Target[A] = Regs[static_cast<size_t>(Ca.Reg)].I;
      } else {
        const int64_t *Coeffs = &Prog->AffinePool[Ca.CoeffOffset];
        int64_t V = Ca.Bias;
        for (unsigned D = 0; D != Prog->NumDims; ++D)
          V += Coeffs[D] * Point[D];
        Target[A] = V;
      }
    }
    return Table.get(Target);
  }

  std::shared_ptr<const BytecodeProgram> Prog;
  std::vector<Slot> Regs;

  // Bound per-parameter state (indexed by parameter).
  std::vector<BoundSeq> Seqs;
  std::vector<const bio::SubstitutionMatrix *> Matrices;
  std::vector<BoundHmm> Hmms;
  std::vector<int64_t> IntArgs;
  std::vector<double> RealArgs;
};

} // namespace codegen
} // namespace parrec

#endif // PARREC_CODEGEN_BYTECODEVM_H
