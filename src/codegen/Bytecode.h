//===- Bytecode.h - Register bytecode for cell bodies -------------*- C++ -*-==//
//
// Part of ParRec, a reproduction of "Synthesising Graphics Card Programs
// from DSLs" (Cartey, Lyngsø, de Moor; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat, register-based instruction stream compiled from an analysed
/// FunctionDecl body. The per-cell hot path executes this instead of
/// re-walking the typed AST: one pass over fixed-size instructions with
/// all name resolution (parameter -> dimension, HMM parameter lookup by
/// name, sequence/matrix parameter indices) done at compile time.
///
/// The compiler additionally
///   - folds constant subexpressions (and the type conversions between
///     them) into immediate loads,
///   - strength-reduces recursive table lookups whose arguments are
///     affine in the recursion point into precomputed coefficient
///     vectors (no per-cell argument evaluation at all),
/// while preserving the abstract cost accounting *exactly*: every
/// instruction carries the static gpu::CostCounter delta the AST
/// evaluator would have charged for the subtree it replaces, so cycle
/// totals — and therefore every figure in the evaluation — are unchanged.
///
/// Compilation is conservative: any construct whose dynamic-kind
/// behaviour cannot be proven statically (e.g. an `if` whose branches
/// produce different runtime kinds) makes compileToBytecode return null
/// and the caller falls back to the AST evaluator, which remains the
/// semantics oracle.
///
//===----------------------------------------------------------------------===//

#ifndef PARREC_CODEGEN_BYTECODE_H
#define PARREC_CODEGEN_BYTECODE_H

#include "lang/Sema.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace parrec {
namespace codegen {

/// Static cost delta charged when an instruction executes. Mirrors
/// gpu::CostCounter field-for-field; uint16 is ample for any folded
/// subtree (the compiler refuses folds that would overflow).
struct InstrCost {
  uint16_t Ops = 0;
  uint16_t TableReads = 0;
  uint16_t TableWrites = 0;
  uint16_t ModelReads = 0;
  uint16_t Transcendentals = 0;

  InstrCost &operator+=(const InstrCost &O) {
    Ops += O.Ops;
    TableReads += O.TableReads;
    TableWrites += O.TableWrites;
    ModelReads += O.ModelReads;
    Transcendentals += O.Transcendentals;
    return *this;
  }
};

enum class Opcode : uint8_t {
  // Loads. A = dst register.
  ConstInt,    // R[A].I = Imm.I (also bools 0/1 and chars)
  ConstReal,   // R[A].D = Imm.D
  Move,        // R[A] = R[B]
  LoadPoint,   // R[A].I = Point[B] (pre-resolved recursion dimension)
  LoadArgInt,  // R[A].I = bound int argument of parameter B
  LoadArgReal, // R[A].D = bound float/prob argument of parameter B

  // Conversions.
  IntToReal, // R[A].D = double(R[B].I)
  LogOf,     // R[A].D = toLog(R[B].D)

  // Integer arithmetic. A = dst, B, C = operands.
  AddInt,
  SubInt,
  MulInt,
  DivInt, // 0 when the divisor is 0 (the evaluator's convention)
  MinInt,
  MaxInt,

  // Real arithmetic.
  AddReal,
  SubReal,
  MulReal,
  DivReal,
  MinReal, // B < C ? B : C, matching the tree-walker exactly
  MaxReal,

  // Log-space probability arithmetic.
  LogMul, // R[A].D = R[B].D + R[C].D
  LogDiv, // R[A].D = R[B].D - R[C].D
  LogSum, // R[A].D = logAddExp(R[B].D, R[C].D)

  // Comparisons; the boolean result lands in the I slot (0/1).
  CmpLtReal,
  CmpLeReal,
  CmpGtReal,
  CmpGeReal,
  CmpEqReal,
  CmpNeReal,
  CmpEqInt, // char/char and bool/bool equality on the I slot
  CmpNeInt,

  // Control flow. Structured: only forward jumps within one range.
  JumpIfFalse, // if !R[A].I then pc = B; charges the if's Ops
  Jump,        // pc = A

  // Recursive table lookups (strength-reduced; see CallDesc). The
  // variants bake in the function's return-type conversion.
  TableReadReal, // R[A].D = T(target of CallDesc[B])
  TableReadBool, // R[A].I = T(...) != 0.0
  TableReadInt,  // R[A].I = llround(T(...))

  // Model reads, pre-resolved to parameter slots at compile time.
  SeqChar,      // R[A].I = seq param B at index R[C].I
  MatrixScore,  // R[A].I = matrix param B score(char R[C].I, char R[D].I)
  TransStart,   // R[A].I = hmm param B transition(R[C].I).From
  TransEnd,     // R[A].I = hmm param B transition(R[C].I).To
  TransLogProb, // R[A].D = precomputed log transition prob
  StateIsStart, // R[A].I = hmm param B state(R[C].I).IsStart
  StateIsEnd,   // R[A].I = hmm param B state(R[C].I).IsEnd
  Emission,     // R[A].D = dense log-emission[state R[C].I][char R[D].I]

  // Reduction over a transition set; A = index into Reduces. The body
  // is the instruction range [pc+1, ReduceDesc.BodyEnd), executed once
  // per transition with ReduceDesc.VarReg bound to the transition.
  Reduce,
};

/// One fixed-size instruction. Imm holds an integer or double immediate
/// depending on the opcode.
/// Instruction costs ride in one uint64 with four 16-bit lanes
/// (Ops | TableReads<<16 | ModelReads<<32 | Transcendentals<<48), so the
/// dispatch loop accumulates a whole cost vector with a single add.
/// TableWrites never occurs inside an expression (only the per-cell
/// store charges one), so it needs no lane. Lane sums cannot carry into
/// a neighbour: jumps are forward-only, so one pass executes each
/// instruction at most once, and the compiler rejects programs whose
/// whole-code lane totals don't fit 16 bits.
inline uint64_t packInstrCost(const InstrCost &C) {
  return static_cast<uint64_t>(C.Ops) |
         static_cast<uint64_t>(C.TableReads) << 16 |
         static_cast<uint64_t>(C.ModelReads) << 32 |
         static_cast<uint64_t>(C.Transcendentals) << 48;
}

/// One instruction, packed to 32 bytes (two per cache line): 16-bit
/// operands are plenty — the compiler bails out on any body needing more
/// than 32k registers or instructions, far beyond any real recursion.
struct Instr {
  Opcode Op;
  int16_t A = 0;
  int16_t B = 0;
  int16_t C = 0;
  int16_t D = 0;
  uint64_t Cost = 0; // packInstrCost lanes
  union {
    int64_t I;
    double D;
  } Imm = {0};
};
static_assert(sizeof(Instr) <= 32, "keep the dispatch loop cache-dense");

/// One argument of a recursive lookup: either precomputed affine
/// coefficients over the recursion point (Reg < 0) or a register
/// computed by ordinary instructions (Reg >= 0).
struct CallArg {
  int32_t Reg = -1;
  uint32_t CoeffOffset = 0; // Into BytecodeProgram::AffinePool; NumDims
                            // consecutive coefficients.
  int64_t Bias = 0;
};

/// A recursive lookup's argument list (slice of CallArgsPool).
struct CallDesc {
  uint32_t FirstArg = 0;
  uint32_t NumArgs = 0;
};

/// A reduction over s.transitionsto / s.transitionsfrom.
struct ReduceDesc {
  enum class Acc : uint8_t { Prob, Int, Real };

  uint16_t HmmParam = 0;
  bool OverIncoming = true; // transitionsto (vs transitionsfrom)
  lang::ReductionKind Kind = lang::ReductionKind::Sum;
  Acc AccKind = Acc::Prob;
  uint32_t BodyEnd = 0; // Body = [reduce pc + 1, BodyEnd).
  int32_t StateReg = 0; // Input: the state whose set is iterated.
  int32_t VarReg = 0;   // Receives each transition index.
  int32_t BodyReg = 0;  // Body result (for Prob: already log-space).
  int32_t DstReg = 0;
  InstrCost ElemCost;   // Accumulation cost charged per element.
};

/// How the final register is converted into the stored table value,
/// replicating Evaluator::evalCell's return-type switch statically.
enum class ResultConv : uint8_t {
  RealSlot,    // R.D as-is
  IntSlot,     // double(R.I)
  BoolSlot,    // R.I ? 1.0 : 0.0
  LogRealSlot, // toLog(R.D) (linear body feeding a prob function)
  LogIntSlot,  // toLog(double(R.I))
};

/// How each declared parameter is consumed at bind time.
enum class ParamClass : uint8_t {
  Unused, // Recursion dimensions and anything never read from Args.
  Seq,
  Matrix,
  Hmm,
  Int,
  Real, // float and (log-space) prob scalars
};

/// The compiled, immutable form of one recursion body. Built once per
/// CompiledRecurrence, attached to every ExecutablePlan (so PlanCache
/// hits skip compilation too), and executed by BytecodeVM.
struct BytecodeProgram {
  std::vector<Instr> Code;
  std::vector<CallArg> CallArgsPool;
  std::vector<CallDesc> Calls;
  std::vector<ReduceDesc> Reduces;
  std::vector<int64_t> AffinePool;
  std::vector<ParamClass> ParamClasses; // One per declared parameter.

  uint32_t NumRegs = 0;
  uint32_t NumDims = 0;
  int32_t ResultReg = 0;
  ResultConv Conv = ResultConv::RealSlot;
};

/// Compiles \p F's body to bytecode. Returns null when the body uses a
/// construct the compiler does not model bit-exactly; callers then keep
/// using the AST evaluator.
std::shared_ptr<const BytecodeProgram>
compileToBytecode(const lang::FunctionDecl &F,
                  const lang::FunctionInfo &Info);

} // namespace codegen
} // namespace parrec

#endif // PARREC_CODEGEN_BYTECODE_H
